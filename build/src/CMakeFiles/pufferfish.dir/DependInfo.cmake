
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/ops_basic.cc" "src/CMakeFiles/pufferfish.dir/autograd/ops_basic.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/autograd/ops_basic.cc.o.d"
  "/root/repo/src/autograd/ops_conv.cc" "src/CMakeFiles/pufferfish.dir/autograd/ops_conv.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/autograd/ops_conv.cc.o.d"
  "/root/repo/src/autograd/ops_loss.cc" "src/CMakeFiles/pufferfish.dir/autograd/ops_loss.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/autograd/ops_loss.cc.o.d"
  "/root/repo/src/autograd/ops_matmul.cc" "src/CMakeFiles/pufferfish.dir/autograd/ops_matmul.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/autograd/ops_matmul.cc.o.d"
  "/root/repo/src/autograd/ops_misc.cc" "src/CMakeFiles/pufferfish.dir/autograd/ops_misc.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/autograd/ops_misc.cc.o.d"
  "/root/repo/src/autograd/ops_norm.cc" "src/CMakeFiles/pufferfish.dir/autograd/ops_norm.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/autograd/ops_norm.cc.o.d"
  "/root/repo/src/autograd/variable.cc" "src/CMakeFiles/pufferfish.dir/autograd/variable.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/autograd/variable.cc.o.d"
  "/root/repo/src/baselines/eb_train.cc" "src/CMakeFiles/pufferfish.dir/baselines/eb_train.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/baselines/eb_train.cc.o.d"
  "/root/repo/src/baselines/lth.cc" "src/CMakeFiles/pufferfish.dir/baselines/lth.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/baselines/lth.cc.o.d"
  "/root/repo/src/compress/compressor.cc" "src/CMakeFiles/pufferfish.dir/compress/compressor.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/compress/compressor.cc.o.d"
  "/root/repo/src/core/amp.cc" "src/CMakeFiles/pufferfish.dir/core/amp.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/core/amp.cc.o.d"
  "/root/repo/src/core/factorize.cc" "src/CMakeFiles/pufferfish.dir/core/factorize.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/core/factorize.cc.o.d"
  "/root/repo/src/core/rank_policy.cc" "src/CMakeFiles/pufferfish.dir/core/rank_policy.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/core/rank_policy.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/CMakeFiles/pufferfish.dir/core/trainer.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/core/trainer.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/pufferfish.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/data/synthetic.cc.o.d"
  "/root/repo/src/dist/cluster.cc" "src/CMakeFiles/pufferfish.dir/dist/cluster.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/dist/cluster.cc.o.d"
  "/root/repo/src/dist/cost_model.cc" "src/CMakeFiles/pufferfish.dir/dist/cost_model.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/dist/cost_model.cc.o.d"
  "/root/repo/src/dist/ring_sim.cc" "src/CMakeFiles/pufferfish.dir/dist/ring_sim.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/dist/ring_sim.cc.o.d"
  "/root/repo/src/linalg/svd.cc" "src/CMakeFiles/pufferfish.dir/linalg/svd.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/linalg/svd.cc.o.d"
  "/root/repo/src/metrics/ascii_chart.cc" "src/CMakeFiles/pufferfish.dir/metrics/ascii_chart.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/metrics/ascii_chart.cc.o.d"
  "/root/repo/src/metrics/metrics.cc" "src/CMakeFiles/pufferfish.dir/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/metrics/metrics.cc.o.d"
  "/root/repo/src/models/lstm_lm.cc" "src/CMakeFiles/pufferfish.dir/models/lstm_lm.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/models/lstm_lm.cc.o.d"
  "/root/repo/src/models/resnet.cc" "src/CMakeFiles/pufferfish.dir/models/resnet.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/models/resnet.cc.o.d"
  "/root/repo/src/models/transformer_mt.cc" "src/CMakeFiles/pufferfish.dir/models/transformer_mt.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/models/transformer_mt.cc.o.d"
  "/root/repo/src/models/vgg.cc" "src/CMakeFiles/pufferfish.dir/models/vgg.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/models/vgg.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/pufferfish.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/pufferfish.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/CMakeFiles/pufferfish.dir/nn/lstm.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/nn/lstm.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/pufferfish.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/pufferfish.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/nn/serialize.cc.o.d"
  "/root/repo/src/nn/transformer.cc" "src/CMakeFiles/pufferfish.dir/nn/transformer.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/nn/transformer.cc.o.d"
  "/root/repo/src/optim/optim.cc" "src/CMakeFiles/pufferfish.dir/optim/optim.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/optim/optim.cc.o.d"
  "/root/repo/src/tensor/im2col.cc" "src/CMakeFiles/pufferfish.dir/tensor/im2col.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/tensor/im2col.cc.o.d"
  "/root/repo/src/tensor/matmul.cc" "src/CMakeFiles/pufferfish.dir/tensor/matmul.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/tensor/matmul.cc.o.d"
  "/root/repo/src/tensor/rng.cc" "src/CMakeFiles/pufferfish.dir/tensor/rng.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/tensor/rng.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/pufferfish.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/pufferfish.dir/tensor/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
