# Empty dependencies file for pufferfish.
# This may be replaced when dependencies are built.
