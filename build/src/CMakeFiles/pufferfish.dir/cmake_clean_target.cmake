file(REMOVE_RECURSE
  "libpufferfish.a"
)
