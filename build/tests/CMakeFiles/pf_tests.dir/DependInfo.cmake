
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autograd_test.cc" "tests/CMakeFiles/pf_tests.dir/autograd_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/autograd_test.cc.o.d"
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/pf_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/compressor_test.cc" "tests/CMakeFiles/pf_tests.dir/compressor_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/compressor_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/pf_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/dist_test.cc" "tests/CMakeFiles/pf_tests.dir/dist_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/dist_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/pf_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/factorize_test.cc" "tests/CMakeFiles/pf_tests.dir/factorize_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/factorize_test.cc.o.d"
  "/root/repo/tests/fuzz_gradcheck_test.cc" "tests/CMakeFiles/pf_tests.dir/fuzz_gradcheck_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/fuzz_gradcheck_test.cc.o.d"
  "/root/repo/tests/im2col_test.cc" "tests/CMakeFiles/pf_tests.dir/im2col_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/im2col_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/pf_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/lstm_test.cc" "tests/CMakeFiles/pf_tests.dir/lstm_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/lstm_test.cc.o.d"
  "/root/repo/tests/matmul_test.cc" "tests/CMakeFiles/pf_tests.dir/matmul_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/matmul_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/pf_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/models_test.cc" "tests/CMakeFiles/pf_tests.dir/models_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/models_test.cc.o.d"
  "/root/repo/tests/nn_layers_test.cc" "tests/CMakeFiles/pf_tests.dir/nn_layers_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/nn_layers_test.cc.o.d"
  "/root/repo/tests/optim_test.cc" "tests/CMakeFiles/pf_tests.dir/optim_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/optim_test.cc.o.d"
  "/root/repo/tests/rank_policy_test.cc" "tests/CMakeFiles/pf_tests.dir/rank_policy_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/rank_policy_test.cc.o.d"
  "/root/repo/tests/reference_test.cc" "tests/CMakeFiles/pf_tests.dir/reference_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/reference_test.cc.o.d"
  "/root/repo/tests/ring_sim_test.cc" "tests/CMakeFiles/pf_tests.dir/ring_sim_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/ring_sim_test.cc.o.d"
  "/root/repo/tests/rng_test.cc" "tests/CMakeFiles/pf_tests.dir/rng_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/rng_test.cc.o.d"
  "/root/repo/tests/serialize_test.cc" "tests/CMakeFiles/pf_tests.dir/serialize_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/serialize_test.cc.o.d"
  "/root/repo/tests/svd_test.cc" "tests/CMakeFiles/pf_tests.dir/svd_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/svd_test.cc.o.d"
  "/root/repo/tests/tensor_test.cc" "tests/CMakeFiles/pf_tests.dir/tensor_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/tensor_test.cc.o.d"
  "/root/repo/tests/trainer_test.cc" "tests/CMakeFiles/pf_tests.dir/trainer_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/trainer_test.cc.o.d"
  "/root/repo/tests/transformer_test.cc" "tests/CMakeFiles/pf_tests.dir/transformer_test.cc.o" "gcc" "tests/CMakeFiles/pf_tests.dir/transformer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pufferfish.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
