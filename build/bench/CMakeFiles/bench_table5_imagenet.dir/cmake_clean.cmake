file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_imagenet.dir/bench_table5_imagenet.cc.o"
  "CMakeFiles/bench_table5_imagenet.dir/bench_table5_imagenet.cc.o.d"
  "bench_table5_imagenet"
  "bench_table5_imagenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_imagenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
