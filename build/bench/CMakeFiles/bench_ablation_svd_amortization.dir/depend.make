# Empty dependencies file for bench_ablation_svd_amortization.
# This may be replaced when dependencies are built.
