file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_mitigation.dir/bench_fig3_mitigation.cc.o"
  "CMakeFiles/bench_fig3_mitigation.dir/bench_fig3_mitigation.cc.o.d"
  "bench_fig3_mitigation"
  "bench_fig3_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
