# Empty dependencies file for bench_table9_ablation_lstm.
# This may be replaced when dependencies are built.
