file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_ablation_lstm.dir/bench_table9_ablation_lstm.cc.o"
  "CMakeFiles/bench_table9_ablation_lstm.dir/bench_table9_ablation_lstm.cc.o.d"
  "bench_table9_ablation_lstm"
  "bench_table9_ablation_lstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_ablation_lstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
