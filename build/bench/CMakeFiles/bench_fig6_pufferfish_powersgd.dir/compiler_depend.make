# Empty compiler generated dependencies file for bench_fig6_pufferfish_powersgd.
# This may be replaced when dependencies are built.
