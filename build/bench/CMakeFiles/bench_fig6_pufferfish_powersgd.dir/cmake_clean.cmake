file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_pufferfish_powersgd.dir/bench_fig6_pufferfish_powersgd.cc.o"
  "CMakeFiles/bench_fig6_pufferfish_powersgd.dir/bench_fig6_pufferfish_powersgd.cc.o.d"
  "bench_fig6_pufferfish_powersgd"
  "bench_fig6_pufferfish_powersgd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_pufferfish_powersgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
