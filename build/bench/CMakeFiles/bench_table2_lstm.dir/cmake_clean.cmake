file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_lstm.dir/bench_table2_lstm.cc.o"
  "CMakeFiles/bench_table2_lstm.dir/bench_table2_lstm.cc.o.d"
  "bench_table2_lstm"
  "bench_table2_lstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_lstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
