file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_minibench.dir/bench_table6_minibench.cc.o"
  "CMakeFiles/bench_table6_minibench.dir/bench_table6_minibench.cc.o.d"
  "bench_table6_minibench"
  "bench_table6_minibench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_minibench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
