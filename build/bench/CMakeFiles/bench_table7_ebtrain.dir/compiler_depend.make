# Empty compiler generated dependencies file for bench_table7_ebtrain.
# This may be replaced when dependencies are built.
