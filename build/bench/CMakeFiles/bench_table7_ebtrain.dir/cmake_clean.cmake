file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_ebtrain.dir/bench_table7_ebtrain.cc.o"
  "CMakeFiles/bench_table7_ebtrain.dir/bench_table7_ebtrain.cc.o.d"
  "bench_table7_ebtrain"
  "bench_table7_ebtrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_ebtrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
