file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_binary_quant.dir/bench_fig7_binary_quant.cc.o"
  "CMakeFiles/bench_fig7_binary_quant.dir/bench_fig7_binary_quant.cc.o.d"
  "bench_fig7_binary_quant"
  "bench_fig7_binary_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_binary_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
