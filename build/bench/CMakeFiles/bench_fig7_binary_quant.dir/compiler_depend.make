# Empty compiler generated dependencies file for bench_fig7_binary_quant.
# This may be replaced when dependencies are built.
