# Empty dependencies file for bench_table21_22_ablation_more.
# This may be replaced when dependencies are built.
