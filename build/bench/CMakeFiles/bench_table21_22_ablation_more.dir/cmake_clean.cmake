file(REMOVE_RECURSE
  "CMakeFiles/bench_table21_22_ablation_more.dir/bench_table21_22_ablation_more.cc.o"
  "CMakeFiles/bench_table21_22_ablation_more.dir/bench_table21_22_ablation_more.cc.o.d"
  "bench_table21_22_ablation_more"
  "bench_table21_22_ablation_more.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table21_22_ablation_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
