# Empty compiler generated dependencies file for bench_table8_ablation_resnet18.
# This may be replaced when dependencies are built.
