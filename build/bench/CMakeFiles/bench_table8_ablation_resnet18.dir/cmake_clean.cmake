file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_ablation_resnet18.dir/bench_table8_ablation_resnet18.cc.o"
  "CMakeFiles/bench_table8_ablation_resnet18.dir/bench_table8_ablation_resnet18.cc.o.d"
  "bench_table8_ablation_resnet18"
  "bench_table8_ablation_resnet18.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_ablation_resnet18.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
