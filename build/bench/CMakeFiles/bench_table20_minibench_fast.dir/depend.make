# Empty dependencies file for bench_table20_minibench_fast.
# This may be replaced when dependencies are built.
