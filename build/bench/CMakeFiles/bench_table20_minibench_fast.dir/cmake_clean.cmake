file(REMOVE_RECURSE
  "CMakeFiles/bench_table20_minibench_fast.dir/bench_table20_minibench_fast.cc.o"
  "CMakeFiles/bench_table20_minibench_fast.dir/bench_table20_minibench_fast.cc.o.d"
  "bench_table20_minibench_fast"
  "bench_table20_minibench_fast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table20_minibench_fast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
