# Empty dependencies file for bench_fig4_distributed.
# This may be replaced when dependencies are built.
