file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_cifar.dir/bench_table4_cifar.cc.o"
  "CMakeFiles/bench_table4_cifar.dir/bench_table4_cifar.cc.o.d"
  "bench_table4_cifar"
  "bench_table4_cifar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_cifar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
