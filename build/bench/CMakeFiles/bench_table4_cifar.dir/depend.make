# Empty dependencies file for bench_table4_cifar.
# This may be replaced when dependencies are built.
