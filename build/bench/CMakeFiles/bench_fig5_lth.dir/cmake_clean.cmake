file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_lth.dir/bench_fig5_lth.cc.o"
  "CMakeFiles/bench_fig5_lth.dir/bench_fig5_lth.cc.o.d"
  "bench_fig5_lth"
  "bench_fig5_lth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_lth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
