# Empty dependencies file for bench_table19_svd_cost.
# This may be replaced when dependencies are built.
