file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_transformer.dir/bench_table3_transformer.cc.o"
  "CMakeFiles/bench_table3_transformer.dir/bench_table3_transformer.cc.o.d"
  "bench_table3_transformer"
  "bench_table3_transformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
