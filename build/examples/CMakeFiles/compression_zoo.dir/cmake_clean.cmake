file(REMOVE_RECURSE
  "CMakeFiles/compression_zoo.dir/compression_zoo.cpp.o"
  "CMakeFiles/compression_zoo.dir/compression_zoo.cpp.o.d"
  "compression_zoo"
  "compression_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
