# Empty compiler generated dependencies file for compression_zoo.
# This may be replaced when dependencies are built.
