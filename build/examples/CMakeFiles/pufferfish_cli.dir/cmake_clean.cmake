file(REMOVE_RECURSE
  "CMakeFiles/pufferfish_cli.dir/pufferfish_cli.cpp.o"
  "CMakeFiles/pufferfish_cli.dir/pufferfish_cli.cpp.o.d"
  "pufferfish_cli"
  "pufferfish_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pufferfish_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
