# Empty compiler generated dependencies file for pufferfish_cli.
# This may be replaced when dependencies are built.
