file(REMOVE_RECURSE
  "CMakeFiles/distributed_lowrank.dir/distributed_lowrank.cpp.o"
  "CMakeFiles/distributed_lowrank.dir/distributed_lowrank.cpp.o.d"
  "distributed_lowrank"
  "distributed_lowrank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_lowrank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
