# Empty compiler generated dependencies file for distributed_lowrank.
# This may be replaced when dependencies are built.
