file(REMOVE_RECURSE
  "CMakeFiles/lm_factorized.dir/lm_factorized.cpp.o"
  "CMakeFiles/lm_factorized.dir/lm_factorized.cpp.o.d"
  "lm_factorized"
  "lm_factorized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lm_factorized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
