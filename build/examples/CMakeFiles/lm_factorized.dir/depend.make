# Empty dependencies file for lm_factorized.
# This may be replaced when dependencies are built.
