# Empty compiler generated dependencies file for translation_factorized.
# This may be replaced when dependencies are built.
