file(REMOVE_RECURSE
  "CMakeFiles/translation_factorized.dir/translation_factorized.cpp.o"
  "CMakeFiles/translation_factorized.dir/translation_factorized.cpp.o.d"
  "translation_factorized"
  "translation_factorized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translation_factorized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
