// 6-layer encoder-decoder Transformer for translation (appendix
// Tables 16/17): shared source/target embedding, sinusoidal positional
// encoding, post-LN blocks, a final LayerNorm on each stack, and an output
// projection tied to the embedding (no bias). The hybrid keeps the first
// encoder and first decoder layer dense and factorizes the rest at rank 128.
// At paper scale the vanilla model has exactly 48,978,432 parameters and the
// hybrid 26,696,192 (Table 3; unit-tested).
#pragma once

#include <memory>

#include "nn/transformer.h"

namespace pf::models {

struct TransformerConfig {
  int64_t vocab = 9521;
  int64_t dm = 512;
  int64_t heads = 8;
  int64_t layers = 6;
  float dropout = 0.1f;
  int64_t max_len = 256;
  // 1-based index of the first factorized encoder/decoder layer;
  // 0 = fully vanilla. The paper's hybrid uses 2.
  int first_lowrank_layer = 0;
  double rank_ratio = 0.25;

  int64_t rank() const {
    return std::max<int64_t>(1, static_cast<int64_t>(dm * rank_ratio));
  }

  static TransformerConfig paper_vanilla() { return {}; }
  static TransformerConfig paper_pufferfish() {
    TransformerConfig c;
    c.first_lowrank_layer = 2;
    return c;
  }
  static TransformerConfig tiny(int first_lowrank = 0) {
    TransformerConfig c;
    c.vocab = 64;
    c.dm = 32;
    c.heads = 4;
    c.layers = 2;
    c.max_len = 32;
    c.first_lowrank_layer = first_lowrank;
    return c;
  }
};

class TransformerMT : public nn::Module {
 public:
  TransformerMT(const TransformerConfig& cfg, Rng& rng);
  std::string type_name() const override { return "TransformerMT"; }

  // src/tgt: (B * L) row-major token ids (B rows of L columns). Pads are
  // `pad_id`. Returns logits (B * tgt_len, vocab) for next-token prediction.
  ag::Var forward(const std::vector<int64_t>& src, int64_t src_len,
                  const std::vector<int64_t>& tgt, int64_t tgt_len, int64_t b,
                  int64_t pad_id = 0);

  // Greedy decode for BLEU evaluation: returns generated ids per batch row.
  std::vector<std::vector<int64_t>> greedy_decode(
      const std::vector<int64_t>& src, int64_t src_len, int64_t b,
      int64_t bos_id, int64_t eos_id, int64_t max_len, int64_t pad_id = 0);

  // Beam-search decode (length-normalized log-prob scoring) for a single
  // source sentence; returns the best hypothesis including BOS (and EOS if
  // emitted). beam_width == 1 degenerates to greedy.
  std::vector<int64_t> beam_decode(const std::vector<int64_t>& src,
                                   int64_t src_len, int64_t bos_id,
                                   int64_t eos_id, int64_t max_len,
                                   int64_t beam_width = 4,
                                   int64_t pad_id = 0);

  const TransformerConfig& config() const { return cfg_; }

 private:
  ag::Var embed(const std::vector<int64_t>& ids, int64_t b, int64_t len);
  ag::Var encode(const std::vector<int64_t>& src, int64_t src_len, int64_t b,
                 Tensor* src_mask_out, int64_t pad_id);

  TransformerConfig cfg_;
  nn::Embedding embed_;
  Tensor pos_enc_;  // (max_len, dm) constant
  std::vector<std::unique_ptr<nn::EncoderLayer>> enc_;
  std::vector<std::unique_ptr<nn::DecoderLayer>> dec_;
  nn::LayerNorm enc_ln_, dec_ln_;
  nn::Dropout drop_src_, drop_tgt_;
};

}  // namespace pf::models
