#include "models/vgg.h"

#include <algorithm>
#include <cmath>

namespace pf::models {

namespace {

// VGG-19 plan: channel width per conv layer; `true` = max-pool after.
struct Plan {
  int64_t width;
  bool pool_after;
};
constexpr Plan kVgg19Plan[] = {
    {64, false},  {64, true},    // conv1-2
    {128, false}, {128, true},   // conv3-4
    {256, false}, {256, false}, {256, false}, {256, true},   // conv5-8
    {512, false}, {512, false}, {512, false}, {512, true},   // conv9-12
    {512, false}, {512, false}, {512, false}, {512, true},   // conv13-16
};

constexpr Plan kVgg11Plan[] = {
    {64, true},                  // conv1
    {128, true},                 // conv2
    {256, false}, {256, true},   // conv3-4
    {512, false}, {512, true},   // conv5-6
    {512, false}, {512, true},   // conv7-8
};

int64_t scaled(int64_t w, double mult) {
  return std::max<int64_t>(1, static_cast<int64_t>(std::lround(w * mult)));
}

// Paper's rank rule: rank = ratio * min(c_in*k^2, c_out), the "initial rank"
// of the unrolled layer.
int64_t conv_rank(int64_t c_in, int64_t c_out, int64_t k, double ratio) {
  const int64_t full = std::min(c_in * k * k, c_out);
  return std::max<int64_t>(1, static_cast<int64_t>(full * ratio));
}

}  // namespace

Vgg19::Vgg19(const VggConfig& cfg, Rng& rng) : cfg_(cfg) {
  register_child(&features_);
  register_child(&classifier_);

  int64_t c_in = cfg.in_channels;
  int layer_idx = 1;
  const Plan* plan = kVgg19Plan;
  size_t plan_size = std::size(kVgg19Plan);
  if (cfg.variant == VggVariant::kVgg11) {
    plan = kVgg11Plan;
    plan_size = std::size(kVgg11Plan);
  }
  for (size_t pi = 0; pi < plan_size; ++pi) {
    const Plan& p = plan[pi];
    const int64_t c_out = scaled(p.width, cfg.width_mult);
    const bool low_rank =
        cfg.k_first_lowrank > 0 && layer_idx >= cfg.k_first_lowrank;
    int64_t rank = 0;
    if (low_rank) {
      rank = conv_rank(c_in, c_out, 3, cfg.rank_ratio);
      features_.emplace<nn::LowRankConv2d>(c_in, c_out, 3, 1, 1, rank, rng);
    } else {
      features_.emplace<nn::Conv2d>(c_in, c_out, 3, 1, 1, rng);
    }
    features_.emplace<nn::BatchNorm2d>(c_out);
    features_.emplace<nn::ReLU>();
    if (p.pool_after) features_.emplace<nn::MaxPool2d>(2, 2);
    conv_specs_.push_back(ConvSpec{c_in, c_out, rank, p.pool_after});
    c_in = c_out;
    ++layer_idx;
  }

  classifier_.emplace<nn::Flatten>();
  const int64_t feat = c_in;  // 1x1 spatial after five pools on 32x32
  if (cfg.lth_classifier) {
    classifier_.emplace<nn::Linear>(feat, cfg.num_classes, rng);
    fc_specs_.push_back({feat, cfg.num_classes});
    fc_ranks_.push_back(0);
  } else {
    const bool fc_lr = cfg.factorize_fc && cfg.k_first_lowrank > 0;
    const int64_t fc_rank = std::max<int64_t>(
        1, static_cast<int64_t>(feat * cfg.rank_ratio));
    for (int i = 0; i < 2; ++i) {
      if (fc_lr) {
        classifier_.emplace<nn::LowRankLinear>(feat, feat, fc_rank, rng);
        fc_ranks_.push_back(fc_rank);
      } else {
        classifier_.emplace<nn::Linear>(feat, feat, rng);
        fc_ranks_.push_back(0);
      }
      classifier_.emplace<nn::ReLU>();
      fc_specs_.push_back({feat, feat});
    }
    // Last FC stays dense: "its rank is equal to the number of classes"
    // (Section 3).
    classifier_.emplace<nn::Linear>(feat, cfg.num_classes, rng);
    fc_specs_.push_back({feat, cfg.num_classes});
    fc_ranks_.push_back(0);
  }
}

ag::Var Vgg19::forward(const ag::Var& x) {
  return classifier_.forward(features_.forward(x));
}

int64_t Vgg19::forward_macs(int64_t h, int64_t w) const {
  int64_t macs = 0;
  for (const ConvSpec& s : conv_specs_) {
    if (s.rank == 0) {
      macs += s.c_in * s.c_out * 9 * h * w;
    } else {
      macs += s.c_in * s.rank * 9 * h * w;  // thin kxk conv
      macs += s.rank * s.c_out * h * w;     // 1x1 up-projection
    }
    if (s.pool_after) {
      h /= 2;
      w /= 2;
    }
  }
  for (size_t i = 0; i < fc_specs_.size(); ++i) {
    const auto [in, out] = fc_specs_[i];
    const int64_t r = fc_ranks_[i];
    macs += r == 0 ? in * out : r * (in + out);
  }
  return macs;
}

}  // namespace pf::models
