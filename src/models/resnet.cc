#include "models/resnet.h"

#include <algorithm>
#include <cmath>

namespace pf::models {

namespace {

int64_t scaled(int64_t w, double mult) {
  return std::max<int64_t>(1, static_cast<int64_t>(std::lround(w * mult)));
}

std::unique_ptr<nn::UnaryModule> make_conv(int64_t c_in, int64_t c_out,
                                           int64_t k, int64_t stride,
                                           int64_t pad, int64_t rank,
                                           Rng& rng) {
  if (rank <= 0)
    return std::make_unique<nn::Conv2d>(c_in, c_out, k, stride, pad, rng);
  return std::make_unique<nn::LowRankConv2d>(c_in, c_out, k, stride, pad,
                                             rank, rng);
}

int64_t conv_macs(int64_t c_in, int64_t c_out, int64_t k, int64_t rank,
                  int64_t oh, int64_t ow) {
  if (rank <= 0) return c_in * c_out * k * k * oh * ow;
  return c_in * rank * k * k * oh * ow + rank * c_out * oh * ow;
}

}  // namespace

int64_t pufferfish_rank(int64_t c_in, int64_t c_out, int64_t k,
                        double ratio) {
  const int64_t full = std::min(c_in * k * k, c_out);
  return std::max<int64_t>(1, static_cast<int64_t>(full * ratio));
}

// ---------------- BasicBlock ----------------

BasicBlock::BasicBlock(int64_t c_in, int64_t c_out, int64_t stride,
                       bool low_rank, double rank_ratio, Rng& rng)
    : c_in_(c_in),
      c_out_(c_out),
      stride_(stride),
      r1_(low_rank ? pufferfish_rank(c_in, c_out, 3, rank_ratio) : 0),
      r2_(low_rank ? pufferfish_rank(c_out, c_out, 3, rank_ratio) : 0),
      conv1_(make_conv(c_in, c_out, 3, stride, 1, r1_, rng)),
      conv2_(make_conv(c_out, c_out, 3, 1, 1, r2_, rng)),
      bn1_(c_out),
      bn2_(c_out) {
  register_child(conv1_.get());
  register_child(&bn1_);
  register_child(conv2_.get());
  register_child(&bn2_);
  if (stride != 1 || c_in != c_out) {
    down_conv_ = std::make_unique<nn::Conv2d>(c_in, c_out, 1, stride, 0, rng);
    down_bn_ = std::make_unique<nn::BatchNorm2d>(c_out);
    register_child(down_conv_.get());
    register_child(down_bn_.get());
  }
}

ag::Var BasicBlock::forward(const ag::Var& x) {
  ag::Var out = ag::relu(bn1_.forward(conv1_->forward(x)));
  out = bn2_.forward(conv2_->forward(out));
  ag::Var shortcut = x;
  if (down_conv_) shortcut = down_bn_->forward(down_conv_->forward(x));
  return ag::relu(ag::add(out, shortcut));
}

int64_t BasicBlock::forward_macs(int64_t h, int64_t w, int64_t* out_h,
                                 int64_t* out_w) const {
  const int64_t oh = (h + 2 - 3) / stride_ + 1;
  const int64_t ow = (w + 2 - 3) / stride_ + 1;
  int64_t macs = conv_macs(c_in_, c_out_, 3, r1_, oh, ow) +
                 conv_macs(c_out_, c_out_, 3, r2_, oh, ow);
  if (down_conv_) macs += c_in_ * c_out_ * oh * ow;
  *out_h = oh;
  *out_w = ow;
  return macs;
}

// ---------------- Bottleneck ----------------

Bottleneck::Bottleneck(int64_t c_in, int64_t mid, int64_t c_out,
                       int64_t stride, bool low_rank,
                       bool factorize_downsample, double rank_ratio, Rng& rng)
    : c_in_(c_in),
      mid_(mid),
      c_out_(c_out),
      stride_(stride),
      low_rank_(low_rank),
      bn1_(mid),
      bn2_(mid),
      bn3_(c_out) {
  if (low_rank) {
    r1_ = pufferfish_rank(c_in, mid, 1, rank_ratio);
    r2_ = pufferfish_rank(mid, mid, 3, rank_ratio);
    r3_ = pufferfish_rank(mid, c_out, 1, rank_ratio);
  }
  conv1_ = make_conv(c_in, mid, 1, 1, 0, r1_, rng);
  conv2_ = make_conv(mid, mid, 3, stride, 1, r2_, rng);
  conv3_ = make_conv(mid, c_out, 1, 1, 0, r3_, rng);
  register_child(conv1_.get());
  register_child(&bn1_);
  register_child(conv2_.get());
  register_child(&bn2_);
  register_child(conv3_.get());
  register_child(&bn3_);
  if (stride != 1 || c_in != c_out) {
    if (low_rank && factorize_downsample)
      rd_ = pufferfish_rank(c_in, c_out, 1, rank_ratio);
    down_conv_ = make_conv(c_in, c_out, 1, stride, 0, rd_, rng);
    down_bn_ = std::make_unique<nn::BatchNorm2d>(c_out);
    register_child(down_conv_.get());
    register_child(down_bn_.get());
  }
}

ag::Var Bottleneck::forward(const ag::Var& x) {
  ag::Var out = ag::relu(bn1_.forward(conv1_->forward(x)));
  out = ag::relu(bn2_.forward(conv2_->forward(out)));
  out = bn3_.forward(conv3_->forward(out));
  ag::Var shortcut = x;
  if (down_conv_) shortcut = down_bn_->forward(down_conv_->forward(x));
  return ag::relu(ag::add(out, shortcut));
}

int64_t Bottleneck::forward_macs(int64_t h, int64_t w, int64_t* out_h,
                                 int64_t* out_w) const {
  const int64_t oh = stride_ == 1 ? h : (h + 2 - 3) / stride_ + 1;
  const int64_t ow = stride_ == 1 ? w : (w + 2 - 3) / stride_ + 1;
  int64_t macs = conv_macs(c_in_, mid_, 1, r1_, h, w);
  macs += conv_macs(mid_, mid_, 3, r2_, oh, ow);
  macs += conv_macs(mid_, c_out_, 1, r3_, oh, ow);
  if (down_conv_) macs += conv_macs(c_in_, c_out_, 1, rd_, oh, ow);
  *out_h = oh;
  *out_w = ow;
  return macs;
}

// ---------------- ResNet18 (CIFAR) ----------------

ResNet18Cifar::ResNet18Cifar(const ResNetCifarConfig& cfg, Rng& rng)
    : cfg_(cfg),
      conv1_(3, scaled(64, cfg.width_mult), 3, 1, 1, rng),
      bn1_(scaled(64, cfg.width_mult)),
      fc_(scaled(512, cfg.width_mult), cfg.num_classes, rng) {
  register_child(&conv1_);
  register_child(&bn1_);
  const int64_t widths[4] = {scaled(64, cfg.width_mult),
                             scaled(128, cfg.width_mult),
                             scaled(256, cfg.width_mult),
                             scaled(512, cfg.width_mult)};
  int64_t c_in = widths[0];
  int block_idx = 1;  // 1-based over the 8 basic blocks
  for (int stage = 0; stage < 4; ++stage) {
    for (int b = 0; b < 2; ++b) {
      const int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      const bool lr = cfg.first_lowrank_block > 0 &&
                      block_idx >= cfg.first_lowrank_block;
      blocks_.push_back(std::make_unique<BasicBlock>(
          c_in, widths[stage], stride, lr, cfg.rank_ratio, rng));
      register_child(blocks_.back().get());
      c_in = widths[stage];
      ++block_idx;
    }
  }
  register_child(&fc_);
}

ag::Var ResNet18Cifar::forward(const ag::Var& x) {
  ag::Var out = ag::relu(bn1_.forward(conv1_.forward(x)));
  for (auto& b : blocks_) out = b->forward(out);
  out = ag::global_avgpool(out);
  return fc_.forward(out);
}

int64_t ResNet18Cifar::forward_macs(int64_t h, int64_t w) const {
  int64_t macs = conv1_.c_in() * conv1_.c_out() * 9 * h * w;
  for (const auto& b : blocks_) macs += b->forward_macs(h, w, &h, &w);
  macs += fc_.in_features() * fc_.out_features();
  return macs;
}

// ---------------- ResNet50 / WideResNet-50-2 (ImageNet) ----------------

ResNet50::ResNet50(const ResNetImageNetConfig& cfg, Rng& rng)
    : cfg_(cfg),
      conv1_(3, scaled(64, cfg.width_mult), 7, 2, 3, rng),
      bn1_(scaled(64, cfg.width_mult)),
      fc_(scaled(2048, cfg.width_mult), cfg.num_classes, rng) {
  register_child(&conv1_);
  register_child(&bn1_);
  const int64_t base_mid = cfg.wide ? 128 : 64;
  const int kBlocks[4] = {3, 4, 6, 3};
  int64_t c_in = scaled(64, cfg.width_mult);
  for (int stage = 0; stage < 4; ++stage) {
    const int64_t mid = scaled(base_mid << stage, cfg.width_mult);
    const int64_t out = scaled(256 << stage, cfg.width_mult);
    const bool lr =
        cfg.factorize_all || (cfg.factorize_stage4 && stage == 3);
    for (int b = 0; b < kBlocks[stage]; ++b) {
      const int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      blocks_.push_back(std::make_unique<Bottleneck>(
          c_in, mid, out, stride, lr, /*factorize_downsample=*/lr,
          cfg.rank_ratio, rng));
      register_child(blocks_.back().get());
      c_in = out;
    }
  }
  register_child(&fc_);
}

ag::Var ResNet50::forward(const ag::Var& x) {
  ag::Var out = ag::relu(bn1_.forward(conv1_.forward(x)));
  out = ag::maxpool2d(out, 3, 2);
  for (auto& b : blocks_) out = b->forward(out);
  out = ag::global_avgpool(out);
  return fc_.forward(out);
}

int64_t ResNet50::forward_macs(int64_t h, int64_t w) const {
  int64_t oh = (h + 6 - 7) / 2 + 1, ow = (w + 6 - 7) / 2 + 1;
  int64_t macs = 3 * conv1_.c_out() * 49 * oh * ow;
  oh = (oh - 3) / 2 + 1;
  ow = (ow - 3) / 2 + 1;
  for (const auto& b : blocks_) macs += b->forward_macs(oh, ow, &oh, &ow);
  macs += fc_.in_features() * fc_.out_features();
  return macs;
}

}  // namespace pf::models
