// ResNet-18 (CIFAR, appendix Table 13), ResNet-50 and WideResNet-50-2
// (ImageNet, appendix Tables 14/15), with Pufferfish hybrid factorization.
//
// Factorization policy (verified against the paper's exact counts):
//   rank = rank_ratio * min(c_in * k^2, c_out)  -- the "initial rank".
// ResNet-18: hybrid keeps conv1 and the first basic block dense and
// factorizes from the 2nd block on; downsample convs stay dense ("we did
// not handle the downsample weights").
// ResNet-50/WRN-50-2: only the conv5_x stage is factorized, *including* its
// downsample (shapes (1024,256,1,1)/(256,2048,1,1) as in Table 14). With
// this policy our Pufferfish ResNet-50 has exactly 15,202,344 parameters
// (paper Table 7); our vanilla count (25,557,032, the torchvision count)
// differs from the paper's printed 25,610,205 -- see EXPERIMENTS.md.
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.h"

namespace pf::models {

// Shared rank rule.
int64_t pufferfish_rank(int64_t c_in, int64_t c_out, int64_t k, double ratio);

// 3x3-3x3 residual block (ResNet-18/34 style).
class BasicBlock : public nn::UnaryModule {
 public:
  BasicBlock(int64_t c_in, int64_t c_out, int64_t stride, bool low_rank,
             double rank_ratio, Rng& rng);
  std::string type_name() const override { return "BasicBlock"; }
  ag::Var forward(const ag::Var& x) override;
  int64_t forward_macs(int64_t h, int64_t w, int64_t* out_h,
                       int64_t* out_w) const;

 private:
  int64_t c_in_, c_out_, stride_;
  int64_t r1_ = 0, r2_ = 0;  // 0 = dense
  std::unique_ptr<nn::UnaryModule> conv1_, conv2_;
  nn::BatchNorm2d bn1_, bn2_;
  std::unique_ptr<nn::Conv2d> down_conv_;  // dense 1x1 (never factorized)
  std::unique_ptr<nn::BatchNorm2d> down_bn_;
};

// 1x1-3x3-1x1 bottleneck block (ResNet-50 style).
class Bottleneck : public nn::UnaryModule {
 public:
  Bottleneck(int64_t c_in, int64_t mid, int64_t c_out, int64_t stride,
             bool low_rank, bool factorize_downsample, double rank_ratio,
             Rng& rng);
  std::string type_name() const override { return "Bottleneck"; }
  ag::Var forward(const ag::Var& x) override;
  int64_t forward_macs(int64_t h, int64_t w, int64_t* out_h,
                       int64_t* out_w) const;

 private:
  int64_t c_in_, mid_, c_out_, stride_;
  bool low_rank_;
  std::unique_ptr<nn::UnaryModule> conv1_, conv2_, conv3_, down_conv_;
  nn::BatchNorm2d bn1_, bn2_, bn3_;
  std::unique_ptr<nn::BatchNorm2d> down_bn_;
  int64_t r1_ = 0, r2_ = 0, r3_ = 0, rd_ = 0;
};

struct ResNetCifarConfig {
  int64_t num_classes = 10;
  // 1-based index of the first factorized basic block (of 8); 0 = vanilla.
  // The paper's hybrid uses 2 (K = 4 in conv-layer numbering).
  int first_lowrank_block = 0;
  double rank_ratio = 0.25;
  double width_mult = 1.0;

  static ResNetCifarConfig vanilla() { return {}; }
  static ResNetCifarConfig pufferfish() {
    ResNetCifarConfig c;
    c.first_lowrank_block = 2;
    return c;
  }
  // Fully factorized except conv1 / last FC (Fig. 2 "low-rank" ablation).
  static ResNetCifarConfig low_rank_all() {
    ResNetCifarConfig c;
    c.first_lowrank_block = 1;
    return c;
  }
};

class ResNet18Cifar : public nn::UnaryModule {
 public:
  ResNet18Cifar(const ResNetCifarConfig& cfg, Rng& rng);
  std::string type_name() const override { return "ResNet18Cifar"; }
  ag::Var forward(const ag::Var& x) override;
  int64_t forward_macs(int64_t h, int64_t w) const;
  const ResNetCifarConfig& config() const { return cfg_; }

 private:
  ResNetCifarConfig cfg_;
  nn::Conv2d conv1_;
  nn::BatchNorm2d bn1_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  nn::Linear fc_;
};

struct ResNetImageNetConfig {
  int64_t num_classes = 1000;
  bool wide = false;  // WideResNet-50-2
  // Factorize the conv5_x stage (the paper's hybrid); false = vanilla.
  bool factorize_stage4 = false;
  // Factorize EVERY bottleneck stage (the appendix L "low-rank ResNet-50"
  // from-scratch arm); overrides factorize_stage4.
  bool factorize_all = false;
  double rank_ratio = 0.25;
  double width_mult = 1.0;
  // Input spatial size the MACs are quoted for (224 at paper scale).
  int64_t input_hw = 224;

  static ResNetImageNetConfig resnet50_vanilla() { return {}; }
  static ResNetImageNetConfig resnet50_pufferfish() {
    ResNetImageNetConfig c;
    c.factorize_stage4 = true;
    return c;
  }
  static ResNetImageNetConfig wrn50_vanilla() {
    ResNetImageNetConfig c;
    c.wide = true;
    return c;
  }
  static ResNetImageNetConfig wrn50_pufferfish() {
    ResNetImageNetConfig c;
    c.wide = true;
    c.factorize_stage4 = true;
    return c;
  }
};

class ResNet50 : public nn::UnaryModule {
 public:
  ResNet50(const ResNetImageNetConfig& cfg, Rng& rng);
  std::string type_name() const override { return "ResNet50"; }
  ag::Var forward(const ag::Var& x) override;
  int64_t forward_macs(int64_t h, int64_t w) const;
  const ResNetImageNetConfig& config() const { return cfg_; }

 private:
  ResNetImageNetConfig cfg_;
  nn::Conv2d conv1_;
  nn::BatchNorm2d bn1_;
  std::vector<std::unique_ptr<Bottleneck>> blocks_;
  nn::Linear fc_;
};

}  // namespace pf::models
