#include "models/lstm_lm.h"

namespace pf::models {

LstmLm::LstmLm(const LstmLmConfig& cfg, Rng& rng)
    : cfg_(cfg),
      embed_(cfg.vocab, cfg.hidden, rng),
      drop_in_(cfg.dropout, rng.next_u64()),
      drop_mid_(cfg.dropout, rng.next_u64()),
      drop_out_(cfg.dropout, rng.next_u64()) {
  register_child(&embed_);
  for (int64_t l = 0; l < cfg.layers; ++l) {
    if (cfg.rank > 0) {
      lstm_.push_back(std::make_unique<nn::LowRankLSTMLayer>(
          cfg.hidden, cfg.hidden, cfg.rank, rng));
    } else {
      lstm_.push_back(
          std::make_unique<nn::LSTMLayer>(cfg.hidden, cfg.hidden, rng));
    }
    register_child(lstm_.back().get());
  }
  register_child(&drop_in_);
  register_child(&drop_mid_);
  register_child(&drop_out_);
  decoder_bias_ =
      add_param("decoder_bias", Tensor::zeros(Shape{cfg.vocab}),
                /*no_decay=*/true);
}

ag::Var LstmLm::forward(const std::vector<int64_t>& ids, int64_t t_len,
                        int64_t b, std::vector<nn::LstmState>* state) {
  if (state && state->empty()) state->resize(lstm_.size());
  ag::Var x = embed_.forward(ids);  // (T*B, H)
  x = ag::reshape(x, Shape{t_len, b, cfg_.hidden});
  x = drop_in_.forward(x);
  for (size_t l = 0; l < lstm_.size(); ++l) {
    nn::LstmState* st = state ? &(*state)[l] : nullptr;
    x = lstm_[l]->forward(x, st);
    if (l + 1 < lstm_.size()) x = drop_mid_.forward(x);
  }
  x = drop_out_.forward(x);
  x = ag::reshape(x, Shape{t_len * b, cfg_.hidden});
  // Tied decoder: logits = h E^T + bias.
  ag::Var logits = ag::matmul_nt(x, embed_.weight);
  return ag::add(logits, decoder_bias_);
}

void LstmLm::detach(std::vector<nn::LstmState>& state) {
  for (nn::LstmState& s : state) {
    if (s.h) s.h = ag::leaf(s.h->value);
    if (s.c) s.c = ag::leaf(s.c->value);
  }
}

int64_t LstmLm::macs_per_token_per_layer() const {
  const int64_t h = cfg_.hidden, r = cfg_.rank;
  // Vanilla: 4(dh + h^2) with d == h. Factorized: 4dr + 12hr (Table 1).
  return r > 0 ? 4 * h * r + 12 * h * r : 8 * h * h;
}

int64_t LstmLm::macs_per_token() const {
  // All layers plus the tied decoder matvec (embedding lookup excluded,
  // following the Table 2 caption).
  return cfg_.layers * macs_per_token_per_layer() + cfg_.hidden * cfg_.vocab;
}

}  // namespace pf::models
