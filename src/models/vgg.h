// VGG-19-BN for CIFAR-scale inputs, exactly as the paper's appendix
// Table 11 configures it: 16 conv layers (each followed by BatchNorm+ReLU),
// max-pools after convs 2/4/8/12/16, then FC 512-512-512-classes.
// The hybrid variant factorizes conv layers with index >= K and the two
// hidden FC layers at rank ratio 0.25; the classifier FC is never factorized
// (its rank equals the class count). The LTH-comparison variant (appendix
// Table 18) replaces the three FC layers with a single 512 -> classes FC.
//
// Vanilla VGG-19-BN here has exactly 20,560,330 parameters and the hybrid
// (K = 10) exactly 8,370,634 -- the paper's Table 4 numbers (unit-tested).
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.h"

namespace pf::models {

enum class VggVariant { kVgg19, kVgg11 };

struct VggConfig {
  VggVariant variant = VggVariant::kVgg19;
  int64_t num_classes = 10;
  int64_t in_channels = 3;
  // 1-based index of the first factorized conv layer; 0 = fully vanilla;
  // 1 = every conv except none kept (the "low-rank from scratch" ablation
  // keeps conv1 full-rank per Section 3, so the minimum useful K is 2).
  int k_first_lowrank = 0;
  double rank_ratio = 0.25;
  // Factorize the two hidden FC layers (ignored for lth_classifier).
  bool factorize_fc = true;
  // Single-FC classifier head used for the LTH comparison (Table 18).
  bool lth_classifier = false;
  // Width multiplier for CPU-scale training runs (1.0 = paper size).
  double width_mult = 1.0;

  static VggConfig vanilla() { return {}; }
  static VggConfig pufferfish(int k = 10) {
    VggConfig c;
    c.k_first_lowrank = k;
    return c;
  }
  // VGG-11-BN (Figure 2(a) uses it for the from-scratch low-rank study).
  static VggConfig vgg11(int k_first_lowrank = 0) {
    VggConfig c;
    c.variant = VggVariant::kVgg11;
    c.k_first_lowrank = k_first_lowrank;
    return c;
  }
};

class Vgg19 : public nn::UnaryModule {
 public:
  Vgg19(const VggConfig& cfg, Rng& rng);
  std::string type_name() const override { return "Vgg"; }
  // (N, C, H, W) -> (N, classes) logits. H = W = 32 at paper scale.
  ag::Var forward(const ag::Var& x) override;

  // Analytic forward multiply-accumulate count for an h x w input
  // (the paper's "MACs" metric; Table 4 reports 0.4 G vanilla, 0.29 G
  // Pufferfish for 32x32 inputs).
  int64_t forward_macs(int64_t h, int64_t w) const;

  const VggConfig& config() const { return cfg_; }

 private:
  VggConfig cfg_;
  nn::Sequential features_;
  nn::Sequential classifier_;
  // Geometry of every conv, recorded for MAC accounting.
  struct ConvSpec {
    int64_t c_in, c_out, rank;  // rank 0 = dense
    bool pool_after;
  };
  std::vector<ConvSpec> conv_specs_;
  std::vector<std::pair<int64_t, int64_t>> fc_specs_;  // (in, out)
  std::vector<int64_t> fc_ranks_;                      // 0 = dense
};

}  // namespace pf::models
