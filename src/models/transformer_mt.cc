#include "models/transformer_mt.h"

#include <algorithm>
#include <cmath>

namespace pf::models {

namespace {

// Additive attention mask of shape (B*H, Lq, Lk): -1e9 where the key token
// is padding, plus (optionally) the causal constraint.
Tensor build_mask(const std::vector<int64_t>& key_ids, int64_t b,
                  int64_t heads, int64_t lq, int64_t lk, int64_t pad_id,
                  bool causal) {
  Tensor m(Shape{b * heads, lq, lk});
  for (int64_t i = 0; i < b; ++i)
    for (int64_t h = 0; h < heads; ++h) {
      float* plane = m.data() + (i * heads + h) * lq * lk;
      for (int64_t q = 0; q < lq; ++q)
        for (int64_t k = 0; k < lk; ++k) {
          const bool pad =
              key_ids[static_cast<size_t>(i * lk + k)] == pad_id;
          const bool future = causal && k > q;
          plane[q * lk + k] = (pad || future) ? -1e9f : 0.0f;
        }
    }
  return m;
}

}  // namespace

TransformerMT::TransformerMT(const TransformerConfig& cfg, Rng& rng)
    : cfg_(cfg),
      embed_(cfg.vocab, cfg.dm, rng),
      pos_enc_(nn::positional_encoding(cfg.max_len, cfg.dm)),
      enc_ln_(cfg.dm),
      dec_ln_(cfg.dm),
      drop_src_(cfg.dropout, rng.next_u64()),
      drop_tgt_(cfg.dropout, rng.next_u64()) {
  register_child(&embed_);
  for (int64_t l = 0; l < cfg.layers; ++l) {
    const bool lr = cfg.first_lowrank_layer > 0 &&
                    l + 1 >= cfg.first_lowrank_layer;
    const int64_t rank = lr ? cfg.rank() : 0;
    enc_.push_back(std::make_unique<nn::EncoderLayer>(
        cfg.dm, cfg.heads, cfg.dropout, rank, rng, rng.next_u64()));
    dec_.push_back(std::make_unique<nn::DecoderLayer>(
        cfg.dm, cfg.heads, cfg.dropout, rank, rng, rng.next_u64()));
    register_child(enc_.back().get());
    register_child(dec_.back().get());
  }
  register_child(&enc_ln_);
  register_child(&dec_ln_);
  register_child(&drop_src_);
  register_child(&drop_tgt_);
}

ag::Var TransformerMT::embed(const std::vector<int64_t>& ids, int64_t b,
                             int64_t len) {
  ag::Var x = embed_.forward(ids);  // (B*L, dm)
  x = ag::mul_scalar(x, std::sqrt(static_cast<float>(cfg_.dm)));
  // Add positional encoding (constant, broadcast over batch).
  Tensor pos(Shape{b * len, cfg_.dm});
  for (int64_t i = 0; i < b; ++i)
    std::copy(pos_enc_.data(), pos_enc_.data() + len * cfg_.dm,
              pos.data() + i * len * cfg_.dm);
  x = ag::add_constant(x, pos);
  return ag::reshape(x, Shape{b, len, cfg_.dm});
}

ag::Var TransformerMT::encode(const std::vector<int64_t>& src,
                              int64_t src_len, int64_t b,
                              Tensor* self_mask_out, int64_t pad_id) {
  *self_mask_out =
      build_mask(src, b, cfg_.heads, src_len, src_len, pad_id, false);
  ag::Var x = drop_src_.forward(embed(src, b, src_len));
  for (auto& layer : enc_) x = layer->forward(x, self_mask_out);
  return enc_ln_.forward(x);
}

ag::Var TransformerMT::forward(const std::vector<int64_t>& src,
                               int64_t src_len,
                               const std::vector<int64_t>& tgt,
                               int64_t tgt_len, int64_t b, int64_t pad_id) {
  Tensor enc_self_mask;
  ag::Var memory = encode(src, src_len, b, &enc_self_mask, pad_id);
  const Tensor tgt_mask =
      build_mask(tgt, b, cfg_.heads, tgt_len, tgt_len, pad_id, true);
  const Tensor cross_mask =
      build_mask(src, b, cfg_.heads, tgt_len, src_len, pad_id, false);

  ag::Var x = drop_tgt_.forward(embed(tgt, b, tgt_len));
  for (auto& layer : dec_)
    x = layer->forward(x, memory, &tgt_mask, &cross_mask);
  x = dec_ln_.forward(x);
  x = ag::reshape(x, Shape{b * tgt_len, cfg_.dm});
  // Tied output projection, no bias.
  return ag::matmul_nt(x, embed_.weight);
}

std::vector<std::vector<int64_t>> TransformerMT::greedy_decode(
    const std::vector<int64_t>& src, int64_t src_len, int64_t b,
    int64_t bos_id, int64_t eos_id, int64_t max_len, int64_t pad_id) {
  ag::NoGradGuard ng;
  std::vector<std::vector<int64_t>> out(static_cast<size_t>(b),
                                        std::vector<int64_t>{bos_id});
  for (int64_t step = 1; step < max_len; ++step) {
    // Re-run the full decoder on the sequences so far (O(L^2) decode; fine
    // at benchmark scale).
    std::vector<int64_t> tgt(static_cast<size_t>(b * step), pad_id);
    for (int64_t i = 0; i < b; ++i)
      for (int64_t t = 0; t < step; ++t)
        tgt[static_cast<size_t>(i * step + t)] =
            out[static_cast<size_t>(i)][static_cast<size_t>(t)];
    ag::Var logits = forward(src, src_len, tgt, step, b, pad_id);
    // Last position of each row decides the next token.
    bool all_done = true;
    for (int64_t i = 0; i < b; ++i) {
      auto& seq = out[static_cast<size_t>(i)];
      // Keep all rows the same length: finished rows grow with padding.
      if (seq.back() == eos_id || seq.back() == pad_id) {
        seq.push_back(pad_id);
        continue;
      }
      const float* row =
          logits->value.data() + ((i * step) + (step - 1)) * cfg_.vocab;
      int64_t best = 0;
      for (int64_t v = 1; v < cfg_.vocab; ++v)
        if (row[v] > row[best]) best = v;
      seq.push_back(best);
      if (best != eos_id) all_done = false;
    }
    if (all_done) break;
  }
  return out;
}

std::vector<int64_t> TransformerMT::beam_decode(
    const std::vector<int64_t>& src, int64_t src_len, int64_t bos_id,
    int64_t eos_id, int64_t max_len, int64_t beam_width, int64_t pad_id) {
  ag::NoGradGuard ng;
  struct Hypothesis {
    std::vector<int64_t> ids;
    double log_prob = 0;
    bool done = false;
    double score(double eos_bonus = 0) const {
      // Length-normalized log-probability.
      return (log_prob + eos_bonus) /
             std::max<size_t>(1, ids.size() - 1);
    }
  };
  std::vector<Hypothesis> beam = {Hypothesis{{bos_id}, 0.0, false}};

  for (int64_t step = 1; step < max_len; ++step) {
    std::vector<Hypothesis> candidates;
    for (const Hypothesis& h : beam) {
      if (h.done) {
        candidates.push_back(h);
        continue;
      }
      const int64_t len = static_cast<int64_t>(h.ids.size());
      ag::Var logits = forward(src, src_len, h.ids, len, 1, pad_id);
      // Log-softmax over the last position.
      const float* row = logits->value.data() + (len - 1) * cfg_.vocab;
      float mx = row[0];
      for (int64_t v = 1; v < cfg_.vocab; ++v) mx = std::max(mx, row[v]);
      double z = 0;
      for (int64_t v = 0; v < cfg_.vocab; ++v) z += std::exp(row[v] - mx);
      const double logz = std::log(z) + mx;
      // Expand with the beam_width best next tokens.
      std::vector<int64_t> order(static_cast<size_t>(cfg_.vocab));
      for (int64_t v = 0; v < cfg_.vocab; ++v)
        order[static_cast<size_t>(v)] = v;
      std::partial_sort(order.begin(),
                        order.begin() + std::min<int64_t>(beam_width,
                                                          cfg_.vocab),
                        order.end(),
                        [row](int64_t a, int64_t b) { return row[a] > row[b]; });
      for (int64_t i = 0; i < std::min<int64_t>(beam_width, cfg_.vocab);
           ++i) {
        const int64_t tok = order[static_cast<size_t>(i)];
        Hypothesis next = h;
        next.ids.push_back(tok);
        next.log_prob += static_cast<double>(row[tok]) - logz;
        next.done = tok == eos_id;
        candidates.push_back(std::move(next));
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Hypothesis& a, const Hypothesis& b) {
                return a.score() > b.score();
              });
    if (static_cast<int64_t>(candidates.size()) > beam_width)
      candidates.resize(static_cast<size_t>(beam_width));
    beam = std::move(candidates);
    bool all_done = true;
    for (const Hypothesis& h : beam) all_done = all_done && h.done;
    if (all_done) break;
  }
  return beam.front().ids;
}

}  // namespace pf::models
