// 2-layer stacked LSTM language model (appendix Table 12): tied
// encoder/decoder embedding (Press & Wolf), dropout 0.65 around and between
// the LSTM layers, and a decoder bias. With the paper's dimensions
// (vocab 33278, hidden 1500, rank 375) the vanilla model has exactly
// 85,962,278 parameters and the Pufferfish model 67,962,278 (Table 2).
#pragma once

#include <memory>

#include "nn/lstm.h"

namespace pf::models {

struct LstmLmConfig {
  int64_t vocab = 33278;
  int64_t hidden = 1500;  // embedding dim == hidden dim (tied weights)
  int64_t layers = 2;
  float dropout = 0.65f;
  // 0 = vanilla; otherwise the per-gate factorization rank (paper: 375).
  int64_t rank = 0;

  static LstmLmConfig paper_vanilla() { return {}; }
  static LstmLmConfig paper_pufferfish() {
    LstmLmConfig c;
    c.rank = 375;
    return c;
  }
  // CPU-trainable scale used by the benches.
  static LstmLmConfig tiny(int64_t rank = 0) {
    LstmLmConfig c;
    c.vocab = 200;
    c.hidden = 64;
    c.dropout = 0.2f;
    c.rank = rank;
    return c;
  }
};

class LstmLm : public nn::Module {
 public:
  LstmLm(const LstmLmConfig& cfg, Rng& rng);
  std::string type_name() const override { return "LstmLm"; }

  // ids: (T*B) time-major token ids laid out as T rows of B columns.
  // Returns logits (T*B, vocab). `state` carries hidden state across
  // truncated-BPTT segments (pass nullptr for stateless use).
  ag::Var forward(const std::vector<int64_t>& ids, int64_t t_len, int64_t b,
                  std::vector<nn::LstmState>* state);

  // Detach a carried state so gradients do not flow across segments.
  static void detach(std::vector<nn::LstmState>& state);

  // MACs per token. The paper's Table 2 reports the per-layer figure
  // (18M vanilla / 9M Pufferfish at paper scale: 4(dh+h^2) vs 4dr+12hr);
  // `macs_per_token` additionally includes all layers + tied decoder.
  int64_t macs_per_token_per_layer() const;
  int64_t macs_per_token() const;

  const LstmLmConfig& config() const { return cfg_; }

 private:
  LstmLmConfig cfg_;
  nn::Embedding embed_;
  std::vector<std::unique_ptr<nn::LstmBase>> lstm_;
  nn::Dropout drop_in_, drop_mid_, drop_out_;
  ag::Var decoder_bias_;  // decoder weight is tied to embed_.weight
};

}  // namespace pf::models
