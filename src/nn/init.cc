#include "nn/init.h"

#include <cmath>

namespace pf::nn::init {

Tensor kaiming_normal_conv(Shape shape, Rng& rng) {
  // fan_out = c_out * k * k for a (c_out, c_in, k, k) weight.
  const int64_t fan_out = shape[0] * shape[2] * shape[3];
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_out));
  return rng.randn(std::move(shape), 0.0f, stddev);
}

Tensor kaiming_uniform_default(Shape shape, int64_t fan_in, Rng& rng) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
  return rng.rand(std::move(shape), -bound, bound);
}

Tensor uniform(Shape shape, float bound, Rng& rng) {
  return rng.rand(std::move(shape), -bound, bound);
}

Tensor xavier_uniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return rng.rand(std::move(shape), -bound, bound);
}

Tensor normal(Shape shape, float stddev, Rng& rng) {
  return rng.randn(std::move(shape), 0.0f, stddev);
}

}  // namespace pf::nn::init
