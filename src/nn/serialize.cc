#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "fault/fault.h"

namespace pf::nn {

namespace {

// Collect parameter and buffer tensors depth-first, params first per module
// (the same order the module tree exposes them).
void collect(Module& m, std::vector<Tensor*>& out) {
  for (Param& p : m.local_params()) out.push_back(&p.var->value);
  for (Buffer& b : m.local_buffers()) out.push_back(&b.value);
  for (Module* c : m.children()) collect(*c, out);
}

// Every checkpoint byte goes through here: the fault hook lets tests crash
// a write at an exact byte offset (simulated kill -9), which is what the
// temp-file + rename protocol below must survive.
void write_bytes(std::ofstream& os, const char* p, size_t n) {
  fault::on_write_bytes(static_cast<int64_t>(n));
  os.write(p, static_cast<std::streamsize>(n));
}

void write_u64(std::ofstream& os, uint64_t v) {
  write_bytes(os, reinterpret_cast<const char*>(&v), sizeof(v));
}

uint64_t read_u64(std::ifstream& is) {
  uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("checkpoint: unexpected end of file");
  return v;
}

// Append helpers for the in-memory v1 payload.
void put_u64(std::vector<char>& buf, uint64_t v) {
  const char* p = reinterpret_cast<const char*>(&v);
  buf.insert(buf.end(), p, p + sizeof(v));
}

// Cursor-based reads over the verified payload buffer.
struct PayloadReader {
  const char* p;
  size_t left;
  uint64_t u64() {
    if (left < sizeof(uint64_t))
      throw std::runtime_error("checkpoint: truncated payload");
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    p += sizeof(v);
    left -= sizeof(v);
    return v;
  }
  void floats(float* dst, size_t n) {
    const size_t bytes = n * sizeof(float);
    if (left < bytes)
      throw std::runtime_error("checkpoint: truncated tensor data");
    std::memcpy(dst, p, bytes);
    p += bytes;
    left -= bytes;
  }
};

// Shared by the v0 stream path and the v1 payload path.
void check_count(uint64_t count, size_t model_count) {
  if (count != model_count)
    throw std::runtime_error(
        "checkpoint: tensor count mismatch (file " + std::to_string(count) +
        ", model " + std::to_string(model_count) + ")");
}

void check_shape(const Shape& file_shape, const Tensor& t) {
  if (file_shape != t.shape())
    throw std::runtime_error("checkpoint: shape mismatch: file " +
                             shape_str(file_shape) + " vs model " +
                             shape_str(t.shape()));
}

}  // namespace

uint64_t fnv1a(const char* p, size_t n) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= 0x100000001B3ull;
  }
  return h;
}

void atomic_write(const std::string& path,
                  const std::function<void(std::ofstream&)>& fill) {
  // Crash safety: write the whole file to `<path>.tmp`, then rename over the
  // target. rename(2) replaces atomically on POSIX, so at every instant
  // `path` holds either the complete previous file or the complete new one
  // -- a kill -9 mid-write can only ever orphan a temp file. (Writing the
  // target in place was the bug: a crash left a truncated checkpoint at the
  // only path.)
  const std::string tmp = path + ".tmp";
  try {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("checkpoint: cannot open " + tmp);
    fill(os);
    os.flush();
    if (!os) throw std::runtime_error("checkpoint: write failed: " + tmp);
  } catch (...) {
    std::remove(tmp.c_str());  // never leave half-written temp files behind
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: rename to " + path + " failed");
  }
}

void save_checkpoint(Module& module, const std::string& path, int version) {
  if (version != 0 && version != 1)
    throw std::runtime_error("checkpoint: unknown format version " +
                             std::to_string(version));
  std::vector<Tensor*> tensors;
  collect(module, tensors);

  atomic_write(path, [&](std::ofstream& os) {
    if (version == 0) {
      // Legacy layout, kept so older tooling can still be fed.
      write_u64(os, kCheckpointMagicV0);
      write_u64(os, tensors.size());
      for (Tensor* t : tensors) {
        write_u64(os, static_cast<uint64_t>(t->dim()));
        for (int64_t d = 0; d < t->dim(); ++d)
          write_u64(os, static_cast<uint64_t>(t->size(d)));
        write_bytes(os, reinterpret_cast<const char*>(t->data()),
                    static_cast<size_t>(t->numel()) * sizeof(float));
      }
    } else {
      // v1: build the payload in memory so it can be checksummed as one blob.
      std::vector<char> payload;
      put_u64(payload, tensors.size());
      for (Tensor* t : tensors) {
        put_u64(payload, static_cast<uint64_t>(t->dim()));
        for (int64_t d = 0; d < t->dim(); ++d)
          put_u64(payload, static_cast<uint64_t>(t->size(d)));
        const char* data = reinterpret_cast<const char*>(t->data());
        payload.insert(payload.end(), data,
                       data + t->numel() * sizeof(float));
      }
      write_u64(os, kCheckpointMagicV1);
      const char ver = static_cast<char>(kCheckpointVersion);
      write_bytes(os, &ver, 1);
      write_u64(os, fnv1a(payload.data(), payload.size()));
      write_u64(os, payload.size());
      write_bytes(os, payload.data(), payload.size());
    }
  });
}

void load_checkpoint(Module& module, const std::string& path) {
  std::vector<Tensor*> tensors;
  collect(module, tensors);
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);

  const uint64_t magic = read_u64(is);
  if (magic == kCheckpointMagicV0) {
    // Legacy unchecksummed stream.
    check_count(read_u64(is), tensors.size());
    for (Tensor* t : tensors) {
      const uint64_t dim = read_u64(is);
      Shape shape(dim);
      for (uint64_t d = 0; d < dim; ++d)
        shape[d] = static_cast<int64_t>(read_u64(is));
      check_shape(shape, *t);
      is.read(reinterpret_cast<char*>(t->data()),
              static_cast<std::streamsize>(t->numel() * sizeof(float)));
      if (!is) throw std::runtime_error("checkpoint: truncated tensor data");
    }
    return;
  }
  if (magic != kCheckpointMagicV1)
    throw std::runtime_error("checkpoint: bad magic in " + path);

  char ver = 0;
  is.read(&ver, 1);
  if (!is || static_cast<uint8_t>(ver) != kCheckpointVersion)
    throw std::runtime_error("checkpoint: unsupported format version in " +
                             path);
  const uint64_t checksum = read_u64(is);
  const uint64_t payload_bytes = read_u64(is);
  std::vector<char> payload(payload_bytes);
  is.read(payload.data(), static_cast<std::streamsize>(payload_bytes));
  if (!is || static_cast<uint64_t>(is.gcount()) != payload_bytes)
    throw std::runtime_error("checkpoint: truncated payload in " + path);
  if (fnv1a(payload.data(), payload.size()) != checksum)
    throw std::runtime_error("checkpoint: checksum mismatch in " + path +
                             " (corrupt or truncated artifact)");

  PayloadReader r{payload.data(), payload.size()};
  check_count(r.u64(), tensors.size());
  for (Tensor* t : tensors) {
    const uint64_t dim = r.u64();
    Shape shape(dim);
    for (uint64_t d = 0; d < dim; ++d)
      shape[d] = static_cast<int64_t>(r.u64());
    check_shape(shape, *t);
    r.floats(t->data(), static_cast<size_t>(t->numel()));
  }
}

}  // namespace pf::nn
