#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace pf::nn {

namespace {

constexpr uint64_t kMagic = 0x50554646434B5031ull;  // "PUFFCKP1"

// Collect parameter and buffer tensors depth-first, params first per module
// (the same order the module tree exposes them).
void collect(Module& m, std::vector<Tensor*>& out) {
  for (Param& p : m.local_params()) out.push_back(&p.var->value);
  for (Buffer& b : m.local_buffers()) out.push_back(&b.value);
  for (Module* c : m.children()) collect(*c, out);
}

void write_u64(std::ofstream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint64_t read_u64(std::ifstream& is) {
  uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("checkpoint: unexpected end of file");
  return v;
}

}  // namespace

void save_checkpoint(Module& module, const std::string& path) {
  std::vector<Tensor*> tensors;
  collect(module, tensors);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("checkpoint: cannot open " + path);
  write_u64(os, kMagic);
  write_u64(os, tensors.size());
  for (Tensor* t : tensors) {
    write_u64(os, static_cast<uint64_t>(t->dim()));
    for (int64_t d = 0; d < t->dim(); ++d)
      write_u64(os, static_cast<uint64_t>(t->size(d)));
    os.write(reinterpret_cast<const char*>(t->data()),
             static_cast<std::streamsize>(t->numel() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("checkpoint: write failed: " + path);
}

void load_checkpoint(Module& module, const std::string& path) {
  std::vector<Tensor*> tensors;
  collect(module, tensors);
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  if (read_u64(is) != kMagic)
    throw std::runtime_error("checkpoint: bad magic in " + path);
  const uint64_t count = read_u64(is);
  if (count != tensors.size())
    throw std::runtime_error(
        "checkpoint: tensor count mismatch (file " + std::to_string(count) +
        ", model " + std::to_string(tensors.size()) + ")");
  for (Tensor* t : tensors) {
    const uint64_t dim = read_u64(is);
    Shape shape(dim);
    for (uint64_t d = 0; d < dim; ++d)
      shape[d] = static_cast<int64_t>(read_u64(is));
    if (shape != t->shape())
      throw std::runtime_error("checkpoint: shape mismatch: file " +
                               shape_str(shape) + " vs model " +
                               shape_str(t->shape()));
    is.read(reinterpret_cast<char*>(t->data()),
            static_cast<std::streamsize>(t->numel() * sizeof(float)));
    if (!is) throw std::runtime_error("checkpoint: truncated tensor data");
  }
}

}  // namespace pf::nn
