#include "nn/lstm.h"

#include <cmath>
#include <stdexcept>

#include "nn/init.h"

namespace pf::nn {

namespace {

void check_lstm_quantized_eval_only(const char* layer) {
  if (ag::grad_enabled())
    throw std::runtime_error(std::string(layer) +
                             ": quantized weights are eval-only (tape-free "
                             "forwards); dequantize before training");
}

// Shared cell update: takes pre-activation gates (B, 4h) and previous cell
// state, returns (h_t, c_t).
std::pair<ag::Var, ag::Var> lstm_cell(const ag::Var& gates, const ag::Var& c,
                                      int64_t h) {
  ag::Var gi = ag::sigmoid(ag::slice(gates, 1, 0 * h, h));
  ag::Var gf = ag::sigmoid(ag::slice(gates, 1, 1 * h, h));
  ag::Var gg = ag::tanh(ag::slice(gates, 1, 2 * h, h));
  ag::Var go = ag::sigmoid(ag::slice(gates, 1, 3 * h, h));
  ag::Var ct = ag::add(ag::mul(gf, c), ag::mul(gi, gg));
  ag::Var ht = ag::mul(go, ag::tanh(ct));
  return {ht, ct};
}

ag::Var zeros_state(int64_t b, int64_t h) {
  return ag::leaf(Tensor::zeros(Shape{b, h}));
}

}  // namespace

LSTMLayer::LSTMLayer(int64_t input_dim, int64_t hidden, Rng& rng)
    : d_(input_dim), h_(hidden) {
  // PyTorch LSTM init: U(-1/sqrt(h), 1/sqrt(h)) on every weight.
  const float bound = 1.0f / std::sqrt(static_cast<float>(hidden));
  w_ih = add_param("w_ih", init::uniform(Shape{4 * hidden, input_dim}, bound, rng));
  w_hh = add_param("w_hh", init::uniform(Shape{4 * hidden, hidden}, bound, rng));
  bias = add_param("bias", init::uniform(Shape{4 * hidden}, bound, rng),
                   /*no_decay=*/true);
}

ag::Var LSTMLayer::forward(const ag::Var& x, LstmState* state) {
  const int64_t t_len = x->value.size(0), b = x->value.size(1);
  ag::Var h = (state && state->h) ? state->h : zeros_state(b, h_);
  ag::Var c = (state && state->c) ? state->c : zeros_state(b, h_);
  std::vector<ag::Var> outputs;
  outputs.reserve(static_cast<size_t>(t_len));
  if (q_wih) check_lstm_quantized_eval_only("LSTMLayer");
  for (int64_t t = 0; t < t_len; ++t) {
    ag::Var xt = ag::reshape(ag::slice(x, 0, t, 1), Shape{b, d_});
    ag::Var gates;
    if (q_wih) {
      Tensor g = kernels::qmatmul_nt(xt->value, *q_wih);
      g.add_(kernels::qmatmul_nt(h->value, *q_whh));
      gates = ag::add(ag::leaf(std::move(g)), bias);
    } else {
      gates = ag::add(
          ag::add(ag::matmul_nt(xt, w_ih), ag::matmul_nt(h, w_hh)), bias);
    }
    auto [ht, ct] = lstm_cell(gates, c, h_);
    h = ht;
    c = ct;
    outputs.push_back(ag::reshape(ht, Shape{1, b, h_}));
  }
  if (state) {
    state->h = h;
    state->c = c;
  }
  return ag::concat(outputs, 0);
}

LowRankLSTMLayer::LowRankLSTMLayer(int64_t input_dim, int64_t hidden,
                                   int64_t rank, Rng& rng)
    : d_(input_dim), h_(hidden), r_(rank) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(hidden));
  // Factor pairs get sqrt(bound)-scaled entries so the product U V^T has the
  // same scale as a vanilla weight.
  const float fb = std::sqrt(bound);
  static const char* kGate = "ifgo";
  for (int gate = 0; gate < 4; ++gate) {
    const std::string g(1, kGate[gate]);
    u_ih[static_cast<size_t>(gate)] = add_param(
        "u_i" + g, init::uniform(Shape{hidden, rank}, fb, rng));
    v_ih[static_cast<size_t>(gate)] = add_param(
        "v_i" + g, init::uniform(Shape{input_dim, rank}, fb, rng));
    u_hh[static_cast<size_t>(gate)] = add_param(
        "u_h" + g, init::uniform(Shape{hidden, rank}, fb, rng));
    v_hh[static_cast<size_t>(gate)] = add_param(
        "v_h" + g, init::uniform(Shape{hidden, rank}, fb, rng));
  }
  bias = add_param("bias", init::uniform(Shape{4 * hidden}, bound, rng),
                   /*no_decay=*/true);
}

ag::Var LowRankLSTMLayer::forward(const ag::Var& x, LstmState* state) {
  const int64_t t_len = x->value.size(0), b = x->value.size(1);
  ag::Var h = (state && state->h) ? state->h : zeros_state(b, h_);
  ag::Var c = (state && state->c) ? state->c : zeros_state(b, h_);
  std::vector<ag::Var> outputs;
  outputs.reserve(static_cast<size_t>(t_len));
  if (q_u_ih[0]) check_lstm_quantized_eval_only("LowRankLSTMLayer");
  for (int64_t t = 0; t < t_len; ++t) {
    ag::Var xt = ag::reshape(ag::slice(x, 0, t, 1), Shape{b, d_});
    std::vector<ag::Var> gate_parts;
    gate_parts.reserve(4);
    for (size_t gate = 0; gate < 4; ++gate) {
      if (q_u_ih[0]) {
        Tensor z = kernels::qlowrank_matmul(xt->value, *q_vt_ih[gate],
                                            *q_u_ih[gate]);
        z.add_(kernels::qlowrank_matmul(h->value, *q_vt_hh[gate],
                                        *q_u_hh[gate]));
        gate_parts.push_back(ag::leaf(std::move(z)));
        continue;
      }
      ag::Var zi = ag::lowrank_linear(xt, v_ih[gate], u_ih[gate]);
      ag::Var zh = ag::lowrank_linear(h, v_hh[gate], u_hh[gate]);
      gate_parts.push_back(ag::add(zi, zh));
    }
    ag::Var gates = ag::add(ag::concat(gate_parts, 1), bias);
    auto [ht, ct] = lstm_cell(gates, c, h_);
    h = ht;
    c = ct;
    outputs.push_back(ag::reshape(ht, Shape{1, b, h_}));
  }
  if (state) {
    state->h = h;
    state->c = c;
  }
  return ag::concat(outputs, 0);
}

}  // namespace pf::nn
