// LSTM layers: vanilla and per-gate low-rank factorized (paper Section 2.3,
// appendix Table 12). Gate order follows PyTorch: input, forget, cell, output.
//
// The vanilla layer keeps the four gates fused in one (4h, d) / (4h, h)
// matrix pair (one GEMM per timestep per matrix); the factorized layer
// stores per-gate (U, V) pairs exactly as the paper's Table 12 lists them
// (lstm.weight.i{i,f,g,o}_u/v, lstm.weight.h{i,f,g,o}_u/v). A single
// combined bias of size 4h per layer matches the paper's parameter count.
#pragma once

#include <array>

#include "nn/layers.h"

namespace pf::nn {

// Recurrent state carried across forward calls (both tensors are (B, h)).
struct LstmState {
  ag::Var h;
  ag::Var c;
};

// Common interface so models can hold either variant.
class LstmBase : public Module {
 public:
  // x: (T, B, input_dim) -> (T, B, hidden). `state` (if non-null) supplies
  // the initial state and receives the final one (truncated BPTT style:
  // callers detach by re-leafing the tensors).
  virtual ag::Var forward(const ag::Var& x, LstmState* state) = 0;
  virtual int64_t hidden() const = 0;
  virtual int64_t input_dim() const = 0;
};

class LSTMLayer : public LstmBase {
 public:
  LSTMLayer(int64_t input_dim, int64_t hidden, Rng& rng);
  std::string type_name() const override { return "LSTMLayer"; }
  ag::Var forward(const ag::Var& x, LstmState* state) override;
  int64_t hidden() const override { return h_; }
  int64_t input_dim() const override { return d_; }

  ag::Var w_ih;  // (4h, d)
  ag::Var w_hh;  // (4h, h)
  ag::Var bias;  // (4h)
  // Quantized slots (set together or not at all; see nn/layers.h QWeight).
  QWeight q_wih;  // (4h, d), per-row scales
  QWeight q_whh;  // (4h, h), per-row scales

 private:
  int64_t d_, h_;
};

class LowRankLSTMLayer : public LstmBase {
 public:
  LowRankLSTMLayer(int64_t input_dim, int64_t hidden, int64_t rank, Rng& rng);
  std::string type_name() const override { return "LowRankLSTMLayer"; }
  ag::Var forward(const ag::Var& x, LstmState* state) override;
  int64_t hidden() const override { return h_; }
  int64_t input_dim() const override { return d_; }
  int64_t rank() const { return r_; }

  // Index by gate: 0=i, 1=f, 2=g, 3=o.
  std::array<ag::Var, 4> u_ih, v_ih;  // (h, r), (d, r)
  std::array<ag::Var, 4> u_hh, v_hh;  // (h, r), (h, r)
  ag::Var bias;                       // (4h)
  // Quantized slots, all 16 set together or none (see nn/layers.h QWeight).
  std::array<QWeight, 4> q_u_ih, q_vt_ih;  // (h, r), V^T (r, d)
  std::array<QWeight, 4> q_u_hh, q_vt_hh;  // (h, r), V^T (r, h)

 private:
  int64_t d_, h_, r_;
};

}  // namespace pf::nn
