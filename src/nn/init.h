// Weight initialization schemes (PyTorch-compatible defaults, since the
// paper's models are "initialized following the PyTorch example" recipes).
#pragma once

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace pf::nn::init {

// Kaiming-normal with fan_out mode and ReLU gain: N(0, sqrt(2/fan_out)).
// PyTorch's ResNet example initializes conv weights this way.
Tensor kaiming_normal_conv(Shape shape, Rng& rng);

// PyTorch nn.Linear / nn.Conv2d default: kaiming_uniform(a=sqrt(5)), which
// reduces to U(-1/sqrt(fan_in), 1/sqrt(fan_in)).
Tensor kaiming_uniform_default(Shape shape, int64_t fan_in, Rng& rng);

// U(-bound, bound).
Tensor uniform(Shape shape, float bound, Rng& rng);

// Xavier/Glorot uniform: U(+-sqrt(6/(fan_in+fan_out))).
Tensor xavier_uniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng);

// N(0, stddev).
Tensor normal(Shape shape, float stddev, Rng& rng);

}  // namespace pf::nn::init
