// Core layers: dense and low-rank linear / convolution, normalization,
// pooling, dropout, embedding, and the Sequential container.
//
// The low-rank layers implement the paper's Section 2 factorizations:
//   FC:   W (out,in) ~= U (out,r) V(in,r)^T          -> y = (x V) U^T
//   Conv: W (c_out,c_in,k,k) unrolled to (c_in k^2, c_out) ~= U V^T, giving
//         a thin k x k convolution with r filters followed by a 1x1
//         convolution ("linear combination of r basis filters").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kernels/qmat.h"
#include "nn/module.h"

namespace pf::nn {

// Quantized-weight slot (DESIGN.md §14). When quant::quantize_module sets a
// layer's slot(s), tape-free forwards (eval / frozen serve) run the fused
// dequant-GEMM kernels instead of the fp32 params; after quant::commit the
// fp32 weight tensors are released entirely. Quantized layers are
// serving-only: forward throws if called with gradients enabled.
using QWeight = std::shared_ptr<const kernels::QuantizedMat>;

class Linear : public UnaryModule {
 public:
  // weight (out, in); bias optional.
  Linear(int64_t in, int64_t out, Rng& rng, bool bias = true);
  std::string type_name() const override { return "Linear"; }
  ag::Var forward(const ag::Var& x) override;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }
  ag::Var weight;  // (out, in)
  ag::Var bias;    // (out) or null
  QWeight qweight; // (out, in), per-out scales

 private:
  int64_t in_, out_;
};

class LowRankLinear : public UnaryModule {
 public:
  LowRankLinear(int64_t in, int64_t out, int64_t rank, Rng& rng,
                bool bias = true);
  std::string type_name() const override { return "LowRankLinear"; }
  ag::Var forward(const ag::Var& x) override;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }
  int64_t rank() const { return rank_; }
  // Re-targets the rank (AB-style re-projection, nn/reproject.h). Updates
  // only the bookkeeping: the caller must immediately re-factorize (or
  // apply_ranks-reshape) so u/v take their new (out, r)/(in, r) shapes.
  void set_rank(int64_t r) { rank_ = r; }
  ag::Var u;     // (out, r)
  ag::Var v;     // (in, r)
  ag::Var bias;  // (out) or null
  QWeight qu;    // (out, r), per-out scales
  QWeight qvt;   // V^T stored (r, in), per-r scales

 private:
  int64_t in_, out_, rank_;
};

class Conv2d : public UnaryModule {
 public:
  Conv2d(int64_t c_in, int64_t c_out, int64_t kernel, int64_t stride,
         int64_t pad, Rng& rng);
  std::string type_name() const override { return "Conv2d"; }
  ag::Var forward(const ag::Var& x) override;

  int64_t c_in() const { return c_in_; }
  int64_t c_out() const { return c_out_; }
  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }
  int64_t pad() const { return pad_; }
  ag::Var weight;  // (c_out, c_in, k, k), bias-free (BN follows every conv)
  QWeight qweight; // unrolled (c_out, c_in*k*k), per-c_out scales

 private:
  int64_t c_in_, c_out_, kernel_, stride_, pad_;
};

class LowRankConv2d : public UnaryModule {
 public:
  LowRankConv2d(int64_t c_in, int64_t c_out, int64_t kernel, int64_t stride,
                int64_t pad, int64_t rank, Rng& rng);
  std::string type_name() const override { return "LowRankConv2d"; }
  ag::Var forward(const ag::Var& x) override;

  int64_t c_in() const { return c_in_; }
  int64_t c_out() const { return c_out_; }
  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }
  int64_t pad() const { return pad_; }
  int64_t rank() const { return rank_; }
  // See LowRankLinear::set_rank; u/v must be re-factorized right after.
  void set_rank(int64_t r) { rank_ = r; }
  ag::Var u;  // (r, c_in, k, k): thin convolution
  ag::Var v;  // (c_out, r, 1, 1): channel up-projection
  QWeight qu; // unrolled (r, c_in*k*k), per-r scales
  QWeight qv; // (c_out, r), per-c_out scales

 private:
  int64_t c_in_, c_out_, kernel_, stride_, pad_, rank_;
};

class BatchNorm2d : public UnaryModule {
 public:
  explicit BatchNorm2d(int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);
  std::string type_name() const override { return "BatchNorm2d"; }
  ag::Var forward(const ag::Var& x) override;

  int64_t channels() const { return channels_; }
  ag::Var gamma, beta;
  Tensor* running_mean;
  Tensor* running_var;

 private:
  int64_t channels_;
  float momentum_, eps_;
};

class LayerNorm : public UnaryModule {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-6f);
  std::string type_name() const override { return "LayerNorm"; }
  ag::Var forward(const ag::Var& x) override;
  ag::Var gamma, beta;

 private:
  float eps_;
};

class ReLU : public UnaryModule {
 public:
  std::string type_name() const override { return "ReLU"; }
  ag::Var forward(const ag::Var& x) override { return ag::relu(x); }
};

class MaxPool2d : public UnaryModule {
 public:
  MaxPool2d(int64_t kernel, int64_t stride)
      : kernel_(kernel), stride_(stride) {}
  std::string type_name() const override { return "MaxPool2d"; }
  ag::Var forward(const ag::Var& x) override {
    return ag::maxpool2d(x, kernel_, stride_);
  }

 private:
  int64_t kernel_, stride_;
};

class Dropout : public UnaryModule {
 public:
  Dropout(float p, uint64_t seed) : p_(p), rng_(seed) {}
  std::string type_name() const override { return "Dropout"; }
  ag::Var forward(const ag::Var& x) override {
    return ag::dropout(x, p_, is_training(), rng_);
  }

 private:
  float p_;
  Rng rng_;
};

// Flattens (N, C, H, W) -> (N, C*H*W).
class Flatten : public UnaryModule {
 public:
  std::string type_name() const override { return "Flatten"; }
  ag::Var forward(const ag::Var& x) override {
    return ag::reshape(x, Shape{x->value.size(0), -1});
  }
};

class Embedding : public Module {
 public:
  Embedding(int64_t vocab, int64_t dim, Rng& rng);
  std::string type_name() const override { return "Embedding"; }
  // ids (flat) -> (len, dim).
  ag::Var forward(const std::vector<int64_t>& ids);

  int64_t vocab() const { return vocab_; }
  int64_t dim() const { return dim_; }
  ag::Var weight;  // (V, D)

 private:
  int64_t vocab_, dim_;
};

class Sequential : public UnaryModule {
 public:
  Sequential() = default;
  std::string type_name() const override { return "Sequential"; }
  // Adds a layer and returns a raw pointer for further wiring.
  template <typename T, typename... Args>
  T* emplace(Args&&... args) {
    auto layer = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = layer.get();
    register_child(raw);
    layers_.push_back(std::move(layer));
    return raw;
  }
  ag::Var forward(const ag::Var& x) override {
    ag::Var cur = x;
    for (auto& l : layers_) cur = l->forward(cur);
    return cur;
  }
  size_t size() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<UnaryModule>> layers_;
};

}  // namespace pf::nn
