#include "nn/reproject.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/factorize.h"
#include "nn/layers.h"
#include "nn/lstm.h"
#include "tensor/matmul.h"

namespace pf::nn {

namespace {

void check(bool cond, const std::string& msg) {
  if (!cond) throw std::runtime_error("reproject: " + msg);
}

// Densify a low-rank conv back to (c_out, c_in, k, k) through the same
// unrolled-matrix convention factorize_conv uses.
Tensor densify_conv(const LowRankConv2d& lr) {
  const int64_t c_in = lr.c_in(), c_out = lr.c_out(), k = lr.kernel();
  const int64_t r = lr.rank();
  // U (r, c_in, k, k) -> unrolled factor (c_in*k*k, r).
  Tensor fu = Tensor::uninit(Shape{c_in * k * k, r});
  const float* u4p = std::as_const(lr.u->value).data();
  float* fup = fu.data();
  for (int64_t rr = 0; rr < r; ++rr)
    for (int64_t ci = 0; ci < c_in; ++ci)
      for (int64_t ki = 0; ki < k; ++ki)
        for (int64_t kj = 0; kj < k; ++kj)
          fup[((ci * k + ki) * k + kj) * r + rr] =
              u4p[((rr * c_in + ci) * k + ki) * k + kj];
  // V (c_out, r, 1, 1) is already the (c_out, r) factor, flat.
  Tensor fv(Shape{c_out, r},
            std::vector<float>(std::as_const(lr.v->value).data(),
                               std::as_const(lr.v->value).data() + c_out * r));
  Tensor rec = pf::matmul_nt(fu, fv);  // (c_in*k*k, c_out)
  // Re-roll column co into filter co.
  Tensor w = Tensor::uninit(Shape{c_out, c_in, k, k});
  const float* rp = std::as_const(rec).data();
  float* wp = w.data();
  for (int64_t co = 0; co < c_out; ++co)
    for (int64_t ci = 0; ci < c_in; ++ci)
      for (int64_t ki = 0; ki < k; ++ki)
        for (int64_t kj = 0; kj < k; ++kj)
          wp[((co * c_in + ci) * k + ki) * k + kj] =
              rp[((ci * k + ki) * k + kj) * c_out + co];
  return w;
}

// Unroll a dense conv weight to (c_in*k*k, c_out) -- factorize_conv's
// convention, needed here so the policy can rank the unrolled matrix.
Tensor unroll_conv(const Conv2d& conv) {
  const int64_t c_in = conv.c_in(), c_out = conv.c_out(), k = conv.kernel();
  Tensor unrolled = Tensor::uninit(Shape{c_in * k * k, c_out});
  const float* wp = std::as_const(conv.weight->value).data();
  float* unp = unrolled.data();
  for (int64_t co = 0; co < c_out; ++co)
    for (int64_t ci = 0; ci < c_in; ++ci)
      for (int64_t ki = 0; ki < k; ++ki)
        for (int64_t kj = 0; kj < k; ++kj)
          unp[((ci * k + ki) * k + kj) * c_out + co] =
              wp[((co * c_in + ci) * k + ki) * k + kj];
  return unrolled;
}

void copy_same_type(Module& src, Module& dst, const std::string& type) {
  auto& sp = src.local_params();
  auto& dp = dst.local_params();
  check(sp.size() == dp.size(), "param count mismatch in " + type);
  for (size_t i = 0; i < sp.size(); ++i) {
    check(sp[i].var->value.shape() == dp[i].var->value.shape(),
          "param shape mismatch in " + type + "." + sp[i].name);
    dp[i].var->value = sp[i].var->value;
  }
  auto& sb = src.local_buffers();
  auto& db = dst.local_buffers();
  check(sb.size() == db.size(), "buffer count mismatch in " + type);
  for (size_t i = 0; i < sb.size(); ++i) db[i].value = sb[i].value;
}

}  // namespace

void defactorize(Module& hybrid, Module& vanilla) {
  const std::string st = hybrid.type_name(), dt = vanilla.type_name();
  if (st == dt) {
    copy_same_type(hybrid, vanilla, st);
    const auto& sc = hybrid.children();
    const auto& dc = vanilla.children();
    check(sc.size() == dc.size(), "child count mismatch in " + st);
    for (size_t i = 0; i < sc.size(); ++i) defactorize(*sc[i], *dc[i]);
    return;
  }
  if (st == "LowRankLinear" && dt == "Linear") {
    auto& lr = static_cast<LowRankLinear&>(hybrid);
    auto& fc = static_cast<Linear&>(vanilla);
    check(lr.in_features() == fc.in_features() &&
              lr.out_features() == fc.out_features(),
          "linear shape mismatch");
    fc.weight->value = pf::matmul_nt(lr.u->value, lr.v->value);  // (out, in)
    if (lr.bias && fc.bias) fc.bias->value = lr.bias->value;
    return;
  }
  if (st == "LowRankConv2d" && dt == "Conv2d") {
    auto& lr = static_cast<LowRankConv2d&>(hybrid);
    auto& conv = static_cast<Conv2d&>(vanilla);
    check(lr.c_in() == conv.c_in() && lr.c_out() == conv.c_out() &&
              lr.kernel() == conv.kernel(),
          "conv shape mismatch");
    conv.weight->value = densify_conv(lr);
    return;
  }
  if (st == "LowRankLSTMLayer" && dt == "LSTMLayer") {
    auto& lr = static_cast<LowRankLSTMLayer&>(hybrid);
    auto& lstm = static_cast<LSTMLayer&>(vanilla);
    check(lr.hidden() == lstm.hidden() &&
              lr.input_dim() == lstm.input_dim(),
          "lstm shape mismatch");
    const int64_t h = lr.hidden(), d = lr.input_dim();
    Tensor w_ih = Tensor::uninit(Shape{4 * h, d});
    Tensor w_hh = Tensor::uninit(Shape{4 * h, h});
    for (size_t gate = 0; gate < 4; ++gate) {
      Tensor gi = pf::matmul_nt(lr.u_ih[gate]->value,
                                lr.v_ih[gate]->value);  // (h, d)
      Tensor gh = pf::matmul_nt(lr.u_hh[gate]->value,
                                lr.v_hh[gate]->value);  // (h, h)
      std::memcpy(w_ih.data() + static_cast<int64_t>(gate) * h * d,
                  std::as_const(gi).data(),
                  static_cast<size_t>(h * d) * sizeof(float));
      std::memcpy(w_hh.data() + static_cast<int64_t>(gate) * h * h,
                  std::as_const(gh).data(),
                  static_cast<size_t>(h * h) * sizeof(float));
    }
    lstm.w_ih->value = std::move(w_ih);
    lstm.w_hh->value = std::move(w_hh);
    lstm.bias->value = lr.bias->value;
    return;
  }
  check(false, "unsupported pair " + st + " -> " + dt);
}

namespace {

void reproject_walk(Module& src, Module& dst, const core::RankPolicy& policy,
                    Rng& rng, ReprojectReport& report) {
  const std::string st = src.type_name(), dt = dst.type_name();
  if (st == dt) {
    copy_same_type(src, dst, st);
    const auto& sc = src.children();
    const auto& dc = dst.children();
    check(sc.size() == dc.size(), "child count mismatch in " + st);
    for (size_t i = 0; i < sc.size(); ++i)
      reproject_walk(*sc[i], *dc[i], policy, rng, report);
    return;
  }
  if (st == "Conv2d" && dt == "LowRankConv2d") {
    auto& conv = static_cast<Conv2d&>(src);
    auto& lr = static_cast<LowRankConv2d&>(dst);
    Tensor unrolled = unroll_conv(conv);
    ReprojectEntry e;
    e.layer = "LowRankConv2d " + std::to_string(unrolled.size(0)) + "x" +
              std::to_string(unrolled.size(1));
    e.old_rank = lr.rank();
    e.new_rank = policy.rank_for(unrolled);
    lr.set_rank(e.new_rank);
    core::factorize_conv(conv, lr, rng);
    report.entries.push_back(std::move(e));
    return;
  }
  if (st == "Linear" && dt == "LowRankLinear") {
    auto& fc = static_cast<Linear&>(src);
    auto& lr = static_cast<LowRankLinear&>(dst);
    ReprojectEntry e;
    e.layer = "LowRankLinear " + std::to_string(fc.out_features()) + "x" +
              std::to_string(fc.in_features());
    e.old_rank = lr.rank();
    e.new_rank = policy.rank_for(fc.weight->value);
    lr.set_rank(e.new_rank);
    core::factorize_linear(fc, lr, rng);
    report.entries.push_back(std::move(e));
    return;
  }
  if (st == "LSTMLayer" && dt == "LowRankLSTMLayer") {
    // Per-gate factor arrays share one rank; re-SVD at the existing rank
    // (the refresh still re-bases the factors on the dense-trained weight).
    auto& lstm = static_cast<LSTMLayer&>(src);
    auto& lr = static_cast<LowRankLSTMLayer&>(dst);
    ReprojectEntry e;
    e.layer = "LowRankLSTMLayer h=" + std::to_string(lr.hidden());
    e.old_rank = e.new_rank = lr.rank();
    core::factorize_lstm(lstm, lr, rng);
    report.entries.push_back(std::move(e));
    return;
  }
  check(false, "unsupported pair " + st + " -> " + dt);
}

template <typename Fn>
void visit_low_rank(Module& m, Fn&& fn) {
  const std::string t = m.type_name();
  if (t == "LowRankConv2d" || t == "LowRankLinear" ||
      t == "LowRankLSTMLayer")
    fn(m, t);
  for (Module* c : m.children()) visit_low_rank(*c, fn);
}

}  // namespace

ReprojectReport reproject(Module& vanilla, Module& hybrid,
                          const core::RankPolicy& policy, Rng& rng) {
  ReprojectReport report;
  const double svd_before = core::last_warm_start_svd_seconds();
  reproject_walk(vanilla, hybrid, policy, rng, report);
  report.svd_seconds = core::last_warm_start_svd_seconds() - svd_before;
  return report;
}

std::vector<int64_t> collect_ranks(Module& hybrid) {
  std::vector<int64_t> ranks;
  visit_low_rank(hybrid, [&](Module& m, const std::string& t) {
    if (t == "LowRankConv2d")
      ranks.push_back(static_cast<LowRankConv2d&>(m).rank());
    else if (t == "LowRankLinear")
      ranks.push_back(static_cast<LowRankLinear&>(m).rank());
    else
      ranks.push_back(static_cast<LowRankLSTMLayer&>(m).rank());
  });
  return ranks;
}

void apply_ranks(Module& hybrid, const std::vector<int64_t>& ranks) {
  size_t i = 0;
  visit_low_rank(hybrid, [&](Module& m, const std::string& t) {
    check(i < ranks.size(), "rank list shorter than the model's layer list");
    const int64_t r = ranks[i++];
    if (t == "LowRankConv2d") {
      auto& lr = static_cast<LowRankConv2d&>(m);
      const int64_t full = std::min(
          lr.c_in() * lr.kernel() * lr.kernel(), lr.c_out());
      check(r >= 1 && r <= full,
            "rank " + std::to_string(r) + " outside [1, " +
                std::to_string(full) + "] for " + t);
      lr.set_rank(r);
      lr.u->value =
          Tensor::zeros(Shape{r, lr.c_in(), lr.kernel(), lr.kernel()});
      lr.v->value = Tensor::zeros(Shape{lr.c_out(), r, 1, 1});
    } else if (t == "LowRankLinear") {
      auto& lr = static_cast<LowRankLinear&>(m);
      const int64_t full = std::min(lr.in_features(), lr.out_features());
      check(r >= 1 && r <= full,
            "rank " + std::to_string(r) + " outside [1, " +
                std::to_string(full) + "] for " + t);
      lr.set_rank(r);
      lr.u->value = Tensor::zeros(Shape{lr.out_features(), r});
      lr.v->value = Tensor::zeros(Shape{lr.in_features(), r});
    } else {
      // LSTM rank is structural (per-gate arrays); it never moves, so the
      // snapshot's entry must simply match.
      auto& lr = static_cast<LowRankLSTMLayer&>(m);
      check(r == lr.rank(),
            "snapshot LSTM rank " + std::to_string(r) +
                " != model rank " + std::to_string(lr.rank()));
    }
  });
  check(i == ranks.size(), "rank list longer than the model's layer list");
}

}  // namespace pf::nn
