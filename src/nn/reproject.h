// AB-Training-style periodic re-projection (DESIGN.md §15).
//
// Pufferfish freezes each layer's rank at the warm-up -> SVD boundary. The
// AB-Training follow-on alternates low-rank phases with occasional
// *full-rank refresh rounds*: reconstruct the dense weights (defactorize),
// train them dense for one epoch so the spectrum can move, then re-SVD
// each layer (reproject), letting its rank shrink or grow under the energy
// criterion. The trainer drives this every `RankPolicy::reproject_every`
// epochs for the kAbReproject policy; the flat-param layout is re-bucketed
// afterwards (the optimizer re-derives its slots via SGD::rebind_slots).
//
// collect_ranks/apply_ranks make the moving ranks snapshot-able: TrainState
// stores the per-layer ranks, and resume re-shapes a freshly built hybrid
// to match before loading the tensor payload (nn::load_checkpoint verifies
// shapes, so the re-shape must happen first).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/rank_policy.h"
#include "nn/module.h"
#include "tensor/rng.h"

namespace pf::nn {

struct ReprojectEntry {
  std::string layer;  // e.g. "LowRankConv2d 576x64"
  int64_t old_rank = 0;
  int64_t new_rank = 0;
};

struct ReprojectReport {
  std::vector<ReprojectEntry> entries;
  double svd_seconds = 0;  // wall-clock spent re-SVD-ing
  bool any_rank_changed() const {
    for (const ReprojectEntry& e : entries)
      if (e.old_rank != e.new_rank) return true;
    return false;
  }
};

// Reconstructs a structurally parallel vanilla model from a hybrid one:
// identical module types are copied (params and buffers, so BN running
// stats survive the round trip); low-rank layers are densified, W = U V^T
// (convolutions through the unrolled-matrix convention of factorize_conv).
// The exact inverse of core::warm_start's transfer direction.
void defactorize(Module& hybrid, Module& vanilla);

// Re-initializes `hybrid` from the (refresh-trained) `vanilla` model:
// same-type modules are copied; each factorizable layer is re-SVD-ed at
// the rank `policy` assigns its *current* dense weight (clamped to
// [1, min(m, n)] by RankPolicy::rank_for), resizing the layer's U/V.
// LSTM layers re-SVD at their existing rank (their per-gate factor arrays
// keep a single shared rank). Returns what moved.
ReprojectReport reproject(Module& vanilla, Module& hybrid,
                          const core::RankPolicy& policy, Rng& rng);

// Per-layer ranks of every low-rank layer in visit order (the order
// reproject/apply_ranks use). Snapshot payload for TrainState.
std::vector<int64_t> collect_ranks(Module& hybrid);

// Re-targets every low-rank layer to `ranks` (same visit order), resizing
// its U/V tensors to the new shapes WITHOUT meaningful contents -- callers
// must immediately load a checkpoint over them. Validates each rank
// against [1, min(m, n)] and throws on count or bound mismatches.
void apply_ranks(Module& hybrid, const std::vector<int64_t>& ranks);

}  // namespace pf::nn
