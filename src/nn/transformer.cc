#include "nn/transformer.h"

#include <cmath>

namespace pf::nn {

std::unique_ptr<UnaryModule> make_projection(int64_t in, int64_t out,
                                             int64_t rank, bool bias,
                                             Rng& rng) {
  if (rank <= 0) return std::make_unique<Linear>(in, out, rng, bias);
  return std::make_unique<LowRankLinear>(in, out, rank, rng, bias);
}

MultiHeadAttention::MultiHeadAttention(int64_t dm, int64_t heads,
                                       float dropout_p, int64_t rank, Rng& rng,
                                       uint64_t dropout_seed)
    : dm_(dm),
      heads_(heads),
      dh_(dm / heads),
      wq_(make_projection(dm, dm, rank, /*bias=*/false, rng)),
      wk_(make_projection(dm, dm, rank, /*bias=*/false, rng)),
      wv_(make_projection(dm, dm, rank, /*bias=*/false, rng)),
      wo_(make_projection(dm, dm, rank, /*bias=*/false, rng)),
      attn_dropout_(dropout_p, dropout_seed) {
  register_child(wq_.get());
  register_child(wk_.get());
  register_child(wv_.get());
  register_child(wo_.get());
  register_child(&attn_dropout_);
}

ag::Var MultiHeadAttention::project(UnaryModule& proj, const ag::Var& x,
                                    int64_t out_dim) {
  const int64_t b = x->value.size(0), l = x->value.size(1);
  ag::Var flat = ag::reshape(x, Shape{b * l, x->value.size(2)});
  return ag::reshape(proj.forward(flat), Shape{b, l, out_dim});
}

ag::Var MultiHeadAttention::forward(const ag::Var& q, const ag::Var& k,
                                    const ag::Var& v, const Tensor* mask) {
  const int64_t b = q->value.size(0);
  const int64_t lq = q->value.size(1), lk = k->value.size(1);

  auto split_heads = [&](const ag::Var& x, int64_t l) {
    // (B, L, dm) -> (B*H, L, dh)
    ag::Var r = ag::reshape(x, Shape{b, l, heads_, dh_});
    r = ag::transpose(r, {0, 2, 1, 3});  // (B, H, L, dh)
    return ag::reshape(r, Shape{b * heads_, l, dh_});
  };

  ag::Var qh = split_heads(project(*wq_, q, dm_), lq);
  ag::Var kh = split_heads(project(*wk_, k, dm_), lk);
  ag::Var vh = split_heads(project(*wv_, v, dm_), lk);

  // Scaled dot-product attention.
  ag::Var scores = ag::mul_scalar(
      ag::bmm_nt(qh, kh), 1.0f / std::sqrt(static_cast<float>(dh_)));
  if (mask) scores = ag::add_constant(scores, *mask);
  ag::Var weights = attn_dropout_.forward(ag::softmax(scores));
  ag::Var ctx = ag::bmm(weights, vh);  // (B*H, Lq, dh)

  // Merge heads back: (B*H, Lq, dh) -> (B, Lq, dm).
  ctx = ag::reshape(ctx, Shape{b, heads_, lq, dh_});
  ctx = ag::transpose(ctx, {0, 2, 1, 3});
  ctx = ag::reshape(ctx, Shape{b, lq, dm_});
  return project(*wo_, ctx, dm_);
}

FeedForward::FeedForward(int64_t dm, int64_t hidden, int64_t rank, Rng& rng)
    : dm_(dm),
      w1_(make_projection(dm, hidden, rank, /*bias=*/true, rng)),
      w2_(make_projection(hidden, dm, rank, /*bias=*/true, rng)) {
  register_child(w1_.get());
  register_child(w2_.get());
}

ag::Var FeedForward::forward(const ag::Var& x) {
  const int64_t b = x->value.size(0), l = x->value.size(1);
  ag::Var flat = ag::reshape(x, Shape{b * l, dm_});
  ag::Var h = ag::relu(w1_->forward(flat));
  return ag::reshape(w2_->forward(h), Shape{b, l, dm_});
}

EncoderLayer::EncoderLayer(int64_t dm, int64_t heads, float dropout_p,
                           int64_t rank, Rng& rng, uint64_t seed)
    : attn_(dm, heads, dropout_p, rank, rng, seed),
      ffn_(dm, 4 * dm, rank, rng),
      ln1_(dm),
      ln2_(dm),
      drop1_(dropout_p, seed + 1),
      drop2_(dropout_p, seed + 2) {
  register_child(&attn_);
  register_child(&ffn_);
  register_child(&ln1_);
  register_child(&ln2_);
  register_child(&drop1_);
  register_child(&drop2_);
}

ag::Var EncoderLayer::forward(const ag::Var& x, const Tensor* src_mask) {
  ag::Var a = drop1_.forward(attn_.forward(x, x, x, src_mask));
  ag::Var h = ln1_.forward(ag::add(x, a));
  ag::Var f = drop2_.forward(ffn_.forward(h));
  return ln2_.forward(ag::add(h, f));
}

DecoderLayer::DecoderLayer(int64_t dm, int64_t heads, float dropout_p,
                           int64_t rank, Rng& rng, uint64_t seed)
    : self_attn_(dm, heads, dropout_p, rank, rng, seed),
      cross_attn_(dm, heads, dropout_p, rank, rng, seed + 10),
      ffn_(dm, 4 * dm, rank, rng),
      ln1_(dm),
      ln2_(dm),
      ln3_(dm),
      drop1_(dropout_p, seed + 11),
      drop2_(dropout_p, seed + 12),
      drop3_(dropout_p, seed + 13) {
  register_child(&self_attn_);
  register_child(&cross_attn_);
  register_child(&ffn_);
  register_child(&ln1_);
  register_child(&ln2_);
  register_child(&ln3_);
  register_child(&drop1_);
  register_child(&drop2_);
  register_child(&drop3_);
}

ag::Var DecoderLayer::forward(const ag::Var& x, const ag::Var& memory,
                              const Tensor* tgt_mask, const Tensor* src_mask) {
  ag::Var a = drop1_.forward(self_attn_.forward(x, x, x, tgt_mask));
  ag::Var h = ln1_.forward(ag::add(x, a));
  ag::Var ca = drop2_.forward(cross_attn_.forward(h, memory, memory, src_mask));
  h = ln2_.forward(ag::add(h, ca));
  ag::Var f = drop3_.forward(ffn_.forward(h));
  return ln3_.forward(ag::add(h, f));
}

Tensor positional_encoding(int64_t max_len, int64_t dm) {
  Tensor pe(Shape{max_len, dm});
  for (int64_t pos = 0; pos < max_len; ++pos)
    for (int64_t i = 0; i < dm; i += 2) {
      const double angle =
          pos / std::pow(10000.0, static_cast<double>(i) / dm);
      pe[pos * dm + i] = static_cast<float>(std::sin(angle));
      if (i + 1 < dm) pe[pos * dm + i + 1] = static_cast<float>(std::cos(angle));
    }
  return pe;
}

Tensor causal_mask(int64_t len) {
  Tensor m(Shape{len, len});
  for (int64_t i = 0; i < len; ++i)
    for (int64_t j = 0; j < len; ++j)
      m[i * len + j] = j > i ? -1e9f : 0.0f;
  return m;
}

}  // namespace pf::nn
