#include "nn/layers.h"

#include <cmath>
#include <stdexcept>

#include "nn/init.h"

namespace pf::nn {

namespace {

// Quantized layers are a serving construct: their fp32 weights may already
// be released (quant::commit), so a taped forward has nothing to train.
void check_quantized_eval_only(const char* layer) {
  if (ag::grad_enabled())
    throw std::runtime_error(std::string(layer) +
                             ": quantized weights are eval-only (tape-free "
                             "forwards); dequantize before training");
}

}  // namespace

Linear::Linear(int64_t in, int64_t out, Rng& rng, bool with_bias)
    : in_(in), out_(out) {
  weight = add_param(
      "weight", init::kaiming_uniform_default(Shape{out, in}, in, rng));
  if (with_bias)
    bias = add_param("bias",
                     init::kaiming_uniform_default(Shape{out}, in, rng),
                     /*no_decay=*/true);
}

ag::Var Linear::forward(const ag::Var& x) {
  if (qweight) {
    check_quantized_eval_only("Linear");
    ag::Var y = ag::leaf(kernels::qmatmul_nt(x->value, *qweight));
    if (bias) y = ag::add(y, bias);
    return y;
  }
  ag::Var y = ag::matmul_nt(x, weight);  // (N, in) x (out, in)^T
  if (bias) y = ag::add(y, bias);
  return y;
}

LowRankLinear::LowRankLinear(int64_t in, int64_t out, int64_t rank, Rng& rng,
                             bool with_bias)
    : in_(in), out_(out), rank_(rank) {
  // Initialized so that U V^T has roughly the variance of a default Linear:
  // each factor gets the fourth root of the product scale.
  const float bound =
      std::sqrt(1.0f / std::sqrt(static_cast<float>(in) *
                                 static_cast<float>(rank)));
  u = add_param("u", init::uniform(Shape{out, rank}, bound, rng));
  v = add_param("v", init::uniform(Shape{in, rank}, bound, rng));
  if (with_bias)
    bias = add_param("bias",
                     init::kaiming_uniform_default(Shape{out}, in, rng),
                     /*no_decay=*/true);
}

ag::Var LowRankLinear::forward(const ag::Var& x) {
  if (qu) {
    check_quantized_eval_only("LowRankLinear");
    ag::Var y = ag::leaf(kernels::qlowrank_matmul(x->value, *qvt, *qu));
    if (bias) y = ag::add(y, bias);
    return y;
  }
  // Fused (x @ v) @ u^T: one kernel launch; when taped it materializes the
  // (N, r) intermediate for the backward pass, when not (eval / frozen
  // serve) the intermediate stays a per-row-block scratch buffer.
  ag::Var y = ag::lowrank_linear(x, v, u);
  if (bias) y = ag::add(y, bias);
  return y;
}

Conv2d::Conv2d(int64_t c_in, int64_t c_out, int64_t kernel, int64_t stride,
               int64_t pad, Rng& rng)
    : c_in_(c_in), c_out_(c_out), kernel_(kernel), stride_(stride), pad_(pad) {
  weight = add_param("weight", init::kaiming_normal_conv(
                                   Shape{c_out, c_in, kernel, kernel}, rng));
}

ag::Var Conv2d::forward(const ag::Var& x) {
  if (qweight) {
    check_quantized_eval_only("Conv2d");
    return ag::leaf(
        kernels::qconv2d(x->value, *qweight, c_out_, kernel_, stride_, pad_));
  }
  return ag::conv2d(x, weight, stride_, pad_);
}

LowRankConv2d::LowRankConv2d(int64_t c_in, int64_t c_out, int64_t kernel,
                             int64_t stride, int64_t pad, int64_t rank,
                             Rng& rng)
    : c_in_(c_in),
      c_out_(c_out),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      rank_(rank) {
  u = add_param("u", init::kaiming_normal_conv(
                         Shape{rank, c_in, kernel, kernel}, rng));
  v = add_param("v",
                init::kaiming_normal_conv(Shape{c_out, rank, 1, 1}, rng));
}

ag::Var LowRankConv2d::forward(const ag::Var& x) {
  if (qu) {
    check_quantized_eval_only("LowRankConv2d");
    return ag::leaf(
        kernels::qlowrank_conv2d(x->value, *qu, *qv, kernel_, stride_, pad_));
  }
  // Tape-free forwards (eval, frozen serve) fuse the two convolutions per
  // sample, skipping the full (N, r, oh, ow) intermediate and the 1x1
  // im2col copy over it. Training keeps the two-node composition so the
  // backward pass stays on the gradient-checked conv2d adjoints.
  if (!ag::grad_enabled())
    return ag::lowrank_conv2d(x, u, v, stride_, pad_);
  ag::Var mid = ag::conv2d(x, u, stride_, pad_);
  return ag::conv2d(mid, v, /*stride=*/1, /*pad=*/0);
}

BatchNorm2d::BatchNorm2d(int64_t channels, float momentum, float eps)
    : channels_(channels), momentum_(momentum), eps_(eps) {
  gamma = add_param("gamma", Tensor::ones(Shape{channels}),
                    /*no_decay=*/true);
  beta = add_param("beta", Tensor::zeros(Shape{channels}),
                   /*no_decay=*/true);
  running_mean = add_buffer("running_mean", Tensor::zeros(Shape{channels}));
  running_var = add_buffer("running_var", Tensor::ones(Shape{channels}));
}

ag::Var BatchNorm2d::forward(const ag::Var& x) {
  return ag::batchnorm2d(x, gamma, beta, running_mean, running_var,
                         is_training(), momentum_, eps_);
}

LayerNorm::LayerNorm(int64_t dim, float eps) : eps_(eps) {
  gamma = add_param("gamma", Tensor::ones(Shape{dim}), /*no_decay=*/true);
  beta = add_param("beta", Tensor::zeros(Shape{dim}), /*no_decay=*/true);
}

ag::Var LayerNorm::forward(const ag::Var& x) {
  return ag::layernorm(x, gamma, beta, eps_);
}

Embedding::Embedding(int64_t vocab, int64_t dim, Rng& rng)
    : vocab_(vocab), dim_(dim) {
  // N(0, 1/sqrt(dim)) keeps tied-softmax logits at O(1) scale.
  weight = add_param(
      "weight",
      init::normal(Shape{vocab, dim},
                   1.0f / std::sqrt(static_cast<float>(dim)), rng));
}

ag::Var Embedding::forward(const std::vector<int64_t>& ids) {
  return ag::embedding(ids, weight);
}

}  // namespace pf::nn
