// Module hierarchy: parameter registration, train/eval mode, and a
// structural tree walk used by the Pufferfish warm-start (core/factorize)
// to pair vanilla layers with their low-rank counterparts.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "tensor/rng.h"

namespace pf::nn {

// A learnable parameter. `no_decay` marks parameters excluded from L2
// weight decay (BatchNorm/LayerNorm weights and all biases -- the paper
// follows Goyal et al. and regularizes "model weights instead of the
// BatchNorm layers").
struct Param {
  std::string name;
  ag::Var var;
  bool no_decay = false;
};

// A non-learnable persistent tensor (BN running statistics).
struct Buffer {
  std::string name;
  Tensor value;
};

class Module {
 public:
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // Short structural type tag ("Conv2d", "LowRankLinear", ...) used by the
  // warm-start pairing walk and debug dumps.
  virtual std::string type_name() const = 0;

  // Direct children in construction order. The vanilla and hybrid variants
  // of a model produce structurally parallel trees.
  const std::vector<Module*>& children() const { return children_; }

  // Parameters registered directly on this module (not children's).
  std::deque<Param>& local_params() { return params_; }
  // Buffers live in a deque so the Tensor* handles handed out by
  // add_buffer stay valid as more buffers are registered.
  std::deque<Buffer>& local_buffers() { return buffers_; }

  // All parameters in the subtree, depth-first.
  std::vector<Param*> parameters();
  // Total learnable scalar count in the subtree.
  int64_t num_params();

  // Recursively set training mode (affects dropout, batchnorm).
  void train(bool mode = true);
  bool is_training() const { return training_; }

  // Zero all gradients in the subtree.
  void zero_grad();

  // Gather/scatter all parameter *values* as one flat vector (used by the
  // distributed simulator to broadcast replicas) and all *gradients*
  // (used to build the flat allreduce buffer, the paper's packing trick).
  Tensor flat_params();
  void set_flat_params(const Tensor& flat);
  Tensor flat_grads();
  void set_flat_grads(const Tensor& flat);

 protected:
  Module() = default;
  // Registers and returns a learnable parameter.
  ag::Var add_param(std::string name, Tensor init, bool no_decay = false);
  Tensor* add_buffer(std::string name, Tensor init);
  void register_child(Module* child) { children_.push_back(child); }

  bool training_ = true;

 private:
  std::vector<Module*> children_;
  std::deque<Param> params_;
  std::deque<Buffer> buffers_;
};

// A module with the common unary Var -> Var forward (conv/linear layers,
// activations, containers); sequence models define their own entry points.
class UnaryModule : public Module {
 public:
  virtual ag::Var forward(const ag::Var& x) = 0;
};

}  // namespace pf::nn
