// Checkpointing: save/load all parameters and buffers of a module tree to a
// simple binary format. The format stores per-tensor shapes so mismatched
// architectures fail loudly instead of loading garbage -- the usual failure
// mode when checkpointing a vanilla model and loading it into a hybrid.
#pragma once

#include <string>

#include "nn/module.h"

namespace pf::nn {

// Writes every parameter and buffer (depth-first order) to `path`.
// Throws std::runtime_error on I/O failure.
void save_checkpoint(Module& module, const std::string& path);

// Loads a checkpoint written by save_checkpoint into a structurally
// identical module tree. Throws on I/O failure, magic/shape/count mismatch.
void load_checkpoint(Module& module, const std::string& path);

}  // namespace pf::nn
