// Checkpointing: save/load all parameters and buffers of a module tree to a
// simple binary format. The format stores per-tensor shapes so mismatched
// architectures fail loudly instead of loading garbage -- the usual failure
// mode when checkpointing a vanilla model and loading it into a hybrid.
//
// Two on-disk versions exist:
//   v0 ("PUFFCKP1"): magic | count | tensors          (legacy, still read)
//   v1 ("PUFFCKP2"): magic | version byte | payload checksum (FNV-1a) |
//                    payload bytes | payload(count | tensors)
// v1 is what save_checkpoint writes by default; the checksum makes
// truncated or bit-flipped artifacts fail loudly at load time instead of
// silently serving garbage weights (serving artifacts are copied between
// machines far more often than training checkpoints).
//
// Crash safety: every write goes to `<path>.tmp` first and is renamed over
// the target only once complete (atomic on POSIX), so a crash -- real or
// injected via fault::ScopedWriteCrash -- mid-write never destroys the
// previous good file at `path`.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

#include "nn/module.h"

namespace pf::nn {

// On-disk magics (exposed so tests can craft version-0 files).
inline constexpr uint64_t kCheckpointMagicV0 = 0x50554646434B5031ull;
inline constexpr uint64_t kCheckpointMagicV1 = 0x50554646434B5032ull;
inline constexpr uint8_t kCheckpointVersion = 1;

// Writes every parameter and buffer (depth-first order) to `path`.
// `version` selects the on-disk format (1 = checksummed, 0 = legacy).
// Throws std::runtime_error on I/O failure or unknown version.
void save_checkpoint(Module& module, const std::string& path,
                     int version = kCheckpointVersion);

// Loads a checkpoint written by save_checkpoint (either version) into a
// structurally identical module tree. Throws on I/O failure, magic /
// version / checksum / shape / count mismatch.
void load_checkpoint(Module& module, const std::string& path);

// FNV-1a over payload bytes: cheap, dependency-free, and sensitive to both
// bit flips and truncation. Shared by checkpoint v1 and the TrainState
// snapshot format (core/checkpoint.h).
uint64_t fnv1a(const char* p, size_t n);

// The crash-safe write protocol itself, exposed so other on-disk artifacts
// (TrainState snapshots) get the same guarantee: `fill` writes the complete
// contents to a stream opened on `<path>.tmp`; on success the temp file is
// renamed over `path`. On any failure the temp file is removed and `path`
// is left untouched.
void atomic_write(const std::string& path,
                  const std::function<void(std::ofstream&)>& fill);

}  // namespace pf::nn
