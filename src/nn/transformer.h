// Transformer building blocks (paper Section 2.4, appendix Tables 16/17).
//
// Attention projections are bias-free (matching the paper's 4p^2d^2 count);
// FFN layers keep their biases; normalization is post-LN as in the original
// Transformer. Low-rank variants factorize the *combined* (pd x pd)
// projection matrices and both FFN matrices at the given rank, exactly as
// the appendix configures (U^Q in R^{512x128}, V^{Q^T} in R^{128x512}, ...).
#pragma once

#include <memory>

#include "nn/layers.h"

namespace pf::nn {

// Creates a dense Linear when rank == 0, else a LowRankLinear.
std::unique_ptr<UnaryModule> make_projection(int64_t in, int64_t out,
                                             int64_t rank, bool bias,
                                             Rng& rng);

class MultiHeadAttention : public Module {
 public:
  // dm = model dim (= p*d in the paper's notation); rank 0 = full-rank.
  MultiHeadAttention(int64_t dm, int64_t heads, float dropout_p, int64_t rank,
                     Rng& rng, uint64_t dropout_seed);
  std::string type_name() const override { return "MultiHeadAttention"; }

  // q: (B, Lq, dm); k, v: (B, Lk, dm). `mask` (optional) is an additive
  // tensor broadcastable to (B*heads, Lq, Lk) with 0 = keep, -1e9 = drop.
  ag::Var forward(const ag::Var& q, const ag::Var& k, const ag::Var& v,
                  const Tensor* mask);

  int64_t dm() const { return dm_; }
  int64_t heads() const { return heads_; }

 private:
  // Applies a projection over the last dim of a (B, L, dm) tensor.
  ag::Var project(UnaryModule& proj, const ag::Var& x, int64_t out_dim);

  int64_t dm_, heads_, dh_;
  std::unique_ptr<UnaryModule> wq_, wk_, wv_, wo_;
  Dropout attn_dropout_;
};

class FeedForward : public Module {
 public:
  FeedForward(int64_t dm, int64_t hidden, int64_t rank, Rng& rng);
  std::string type_name() const override { return "FeedForward"; }
  // (B, L, dm) -> (B, L, dm).
  ag::Var forward(const ag::Var& x);

 private:
  int64_t dm_;
  std::unique_ptr<UnaryModule> w1_, w2_;
};

class EncoderLayer : public Module {
 public:
  EncoderLayer(int64_t dm, int64_t heads, float dropout_p, int64_t rank,
               Rng& rng, uint64_t seed);
  std::string type_name() const override { return "EncoderLayer"; }
  ag::Var forward(const ag::Var& x, const Tensor* src_mask);

 private:
  MultiHeadAttention attn_;
  FeedForward ffn_;
  LayerNorm ln1_, ln2_;
  Dropout drop1_, drop2_;
};

class DecoderLayer : public Module {
 public:
  DecoderLayer(int64_t dm, int64_t heads, float dropout_p, int64_t rank,
               Rng& rng, uint64_t seed);
  std::string type_name() const override { return "DecoderLayer"; }
  ag::Var forward(const ag::Var& x, const ag::Var& memory,
                  const Tensor* tgt_mask, const Tensor* src_mask);

 private:
  MultiHeadAttention self_attn_, cross_attn_;
  FeedForward ffn_;
  LayerNorm ln1_, ln2_, ln3_;
  Dropout drop1_, drop2_, drop3_;
};

// Sinusoidal positional encoding table: (max_len, dm), constant.
Tensor positional_encoding(int64_t max_len, int64_t dm);

// Causal (subsequent-position) mask: (len, len), 0 on/below diagonal,
// -1e9 above.
Tensor causal_mask(int64_t len);

}  // namespace pf::nn
