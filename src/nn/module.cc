#include "nn/module.h"

#include <stdexcept>

namespace pf::nn {

std::vector<Param*> Module::parameters() {
  std::vector<Param*> out;
  for (Param& p : params_) out.push_back(&p);
  for (Module* c : children_) {
    auto sub = c->parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

int64_t Module::num_params() {
  int64_t n = 0;
  for (Param* p : parameters()) n += p->var->numel();
  return n;
}

void Module::train(bool mode) {
  training_ = mode;
  for (Module* c : children_) c->train(mode);
}

void Module::zero_grad() {
  for (Param* p : parameters()) p->var->zero_grad();
}

Tensor Module::flat_params() {
  Tensor flat = Tensor::uninit(Shape{num_params()});
  float* fp = flat.data();
  int64_t off = 0;
  for (Param* p : parameters()) {
    const Tensor& v = p->var->value;
    std::copy(v.data(), v.data() + v.numel(), fp + off);
    off += v.numel();
  }
  return flat;
}

void Module::set_flat_params(const Tensor& flat) {
  if (flat.numel() != num_params())
    throw std::runtime_error("set_flat_params: size mismatch");
  int64_t off = 0;
  for (Param* p : parameters()) {
    Tensor& v = p->var->value;
    std::copy(flat.data() + off, flat.data() + off + v.numel(), v.data());
    off += v.numel();
  }
}

Tensor Module::flat_grads() {
  Tensor flat(Shape{num_params()});  // zero-filled: grad-less params stay 0
  float* fp = flat.data();
  int64_t off = 0;
  for (Param* p : parameters()) {
    if (p->var->has_grad()) {
      const Tensor& g = p->var->grad;
      std::copy(g.data(), g.data() + g.numel(), fp + off);
    }
    off += p->var->numel();
  }
  return flat;
}

void Module::set_flat_grads(const Tensor& flat) {
  if (flat.numel() != num_params())
    throw std::runtime_error("set_flat_grads: size mismatch");
  int64_t off = 0;
  for (Param* p : parameters()) {
    const int64_t n = p->var->numel();
    // Zero-copy window into `flat`; set_grad_from copies it into the node's
    // existing grad buffer (never aliasing `flat`, which the shm ring path
    // mutates concurrently across workers).
    p->var->set_grad_from(flat.narrow(off, n).reshape(p->var->value.shape()));
    off += n;
  }
}

ag::Var Module::add_param(std::string name, Tensor init, bool no_decay) {
  ag::Var v = ag::leaf(std::move(init), /*requires_grad=*/true);
  params_.push_back(Param{std::move(name), v, no_decay});
  return v;
}

Tensor* Module::add_buffer(std::string name, Tensor init) {
  buffers_.push_back(Buffer{std::move(name), std::move(init)});
  return &buffers_.back().value;
}

}  // namespace pf::nn
