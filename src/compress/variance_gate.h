// Variance-gated gradient transmission (Tsuzuku et al., "Variance-based
// Gradient Compression for Efficient Distributed Deep Learning").
//
// Pufferfish's rank decision is frozen at the warm-up -> SVD boundary, but
// during warm-up every step still ships the full dense gradient. This
// reducer trims that phase: it maintains per-coordinate running moments of
// the aggregated gradient (Welford over steps) and, per parameter tensor
// (one segment of the flat layout, per `shapes`), transmits the layer only
// when its signal is unambiguous -- when the squared mass of the mean
// gradient exceeds threshold^2 times the variance estimate. Skipped layers
// are not lost: their gradients accumulate into an error-feedback residual
// that is replayed (added in) the next time the layer is sent, so the total
// applied update is conserved and only its timing is deferred.
//
// The payload is the sent layers' floats plus a 1-bit-per-layer send mask;
// dense floats still sum, so the collective stays allreduce (the mask is
// metadata in the header). All evolving buffers -- moments, residual, step
// and send counters -- round-trip through state()/set_state() so resumed
// runs replay bitwise.
#pragma once

#include "compress/compressor.h"

namespace pf::compress {

class VarianceGateReducer : public Reducer {
 public:
  // `threshold`: a layer sends when sum(mean^2) >= threshold^2 *
  // sum(var)/step; larger thresholds skip more. `warmup_steps`: the first
  // steps always send (the moment estimates are still warming up).
  explicit VarianceGateReducer(double threshold, int64_t warmup_steps = 8)
      : threshold_(threshold), warmup_steps_(warmup_steps) {}

  std::string name() const override { return "variance-gate"; }
  Tensor reduce(const std::vector<Tensor>& grads,
                const std::vector<Shape>& shapes, ReduceStats* stats) override;
  ReducerState state() const override;
  void set_state(const ReducerState& st) override;

  // Cumulative gate decisions (for the bench's frontier table).
  int64_t layers_sent() const { return layers_sent_; }
  int64_t layers_skipped() const { return layers_skipped_; }

 private:
  double threshold_;
  int64_t warmup_steps_;

  // Welford moments over the per-step aggregated mean gradient, flat over
  // all coordinates; the residual holds skipped layers' deferred mass.
  // (The residual of the *mean* gradient equals the mean of per-worker
  // residuals under the mean convention, so one buffer suffices.)
  Tensor mean_;
  Tensor m2_;
  Tensor residual_;
  int64_t step_ = 0;
  int64_t layers_sent_ = 0;
  int64_t layers_skipped_ = 0;
};

}  // namespace pf::compress
