// Gradient reducers: the communication strategies the paper benchmarks
// Pufferfish against (Section 4, Figures 4/6/7).
//
// Every reducer consumes the per-worker flat gradients of one step and
// produces the aggregated gradient the optimizer applies, while reporting
// (a) the *real* bytes each worker would transmit, (b) which collective the
// encoding is compatible with (the paper leans on allreduce-vs-allgather:
// sign/sparse encodings do not sum, so they must be allgathered and decoded
// per peer), and (c) measured encode/decode wall-clock. The distributed
// simulator combines these with the alpha-beta cost model to produce the
// per-epoch breakdowns of Fig. 4.
//
// Contract for the time fields: `encode_seconds` is the total across all
// workers (the cluster divides by the node count, since real workers encode
// in parallel); `decode_seconds` is the cost *one* worker pays to decode
// (for allgather this already includes decoding all peers' payloads, which
// is exactly the linear-in-workers effect of appendix F).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace pf::compress {

enum class Collective { kAllreduce, kAllgather };

struct ReduceStats {
  int64_t payload_bytes_per_worker = 0;
  Collective collective = Collective::kAllreduce;
  int n_messages = 1;  // collective invocations this step
  double encode_seconds = 0;
  double decode_seconds = 0;
};

class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual std::string name() const = 0;
  // `grads[i]` is worker i's flat gradient; `shapes` is the per-parameter
  // layout of that flat buffer (matrix-aware reducers need it). Returns the
  // aggregated gradient (mean convention) and fills `stats`.
  virtual Tensor reduce(const std::vector<Tensor>& grads,
                        const std::vector<Shape>& shapes,
                        ReduceStats* stats) = 0;
};

// Uncompressed flat-buffer allreduce (the paper's optimized vanilla
// baseline and what Pufferfish itself uses on the factorized model).
class AllreduceReducer : public Reducer {
 public:
  std::string name() const override { return "allreduce"; }
  Tensor reduce(const std::vector<Tensor>& grads,
                const std::vector<Shape>& shapes, ReduceStats* stats) override;
};

// PowerSGD (Vogels et al.): per-matrix rank-r factorization with warm-started
// Q, Gram-Schmidt orthogonalization, per-worker error feedback, and two
// allreduce rounds (P then Q). 1-D parameters ride along uncompressed.
class PowerSgdReducer : public Reducer {
 public:
  PowerSgdReducer(int64_t rank, uint64_t seed);
  std::string name() const override;
  Tensor reduce(const std::vector<Tensor>& grads,
                const std::vector<Shape>& shapes, ReduceStats* stats) override;

 private:
  int64_t rank_;
  Rng rng_;
  // Warm-started Q per matrix param (index = param position in `shapes`).
  std::vector<Tensor> q_;
  // Per-worker, per-param error memory (flat segments).
  std::vector<std::vector<Tensor>> error_;
  bool initialized_ = false;
};

// SIGNUM (Bernstein et al.): sign of the per-worker momentum, majority vote.
// Signs do not sum, so the encoding allgathers 1 bit/coordinate/worker.
class SignumReducer : public Reducer {
 public:
  explicit SignumReducer(float beta = 0.9f) : beta_(beta) {}
  std::string name() const override { return "signum"; }
  Tensor reduce(const std::vector<Tensor>& grads,
                const std::vector<Shape>& shapes, ReduceStats* stats) override;

 private:
  float beta_;
  std::vector<Tensor> momentum_;  // per worker
};

// Top-k sparsification of the flat gradient with error feedback; payload is
// (index, value) pairs, allgathered.
class TopKReducer : public Reducer {
 public:
  explicit TopKReducer(double keep_ratio) : keep_ratio_(keep_ratio) {}
  std::string name() const override { return "topk"; }
  Tensor reduce(const std::vector<Tensor>& grads,
                const std::vector<Shape>& shapes, ReduceStats* stats) override;

 private:
  double keep_ratio_;
  std::vector<Tensor> error_;  // per worker
};

// Stochastic binary quantization (Suresh et al., appendix F): each worker
// sends per-coordinate bits plus (min, max); every worker dequantizes and
// averages all peers' payloads -- the decode cost that kills it at scale.
class BinaryQuantReducer : public Reducer {
 public:
  explicit BinaryQuantReducer(uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "binary-quant"; }
  Tensor reduce(const std::vector<Tensor>& grads,
                const std::vector<Shape>& shapes, ReduceStats* stats) override;

 private:
  Rng rng_;
};

// ATOMO (Wang et al., spectral variant): per step, each worker SVDs every
// matrix-shaped gradient and transmits an UNBIASED random sample of the
// singular triplets (importance sampling with probabilities p_i ~ s_i,
// value scaled by 1/p_i). This is the paper's Section 1 example of a
// compressor whose ENCODE cost (an SVD per matrix per step!) dominates --
// the cost Pufferfish pays exactly once per training run instead.
class AtomoReducer : public Reducer {
 public:
  // `budget` = number of singular triplets kept per matrix.
  AtomoReducer(int64_t budget, uint64_t seed) : budget_(budget), rng_(seed) {}
  std::string name() const override;
  Tensor reduce(const std::vector<Tensor>& grads,
                const std::vector<Shape>& shapes, ReduceStats* stats) override;

 private:
  int64_t budget_;
  Rng rng_;
};

}  // namespace pf::compress
