// Gradient reducers: the communication strategies the paper benchmarks
// Pufferfish against (Section 4, Figures 4/6/7).
//
// Every reducer consumes the per-worker flat gradients of one step and
// produces the aggregated gradient the optimizer applies, while reporting
// (a) the *real* bytes each worker would transmit, (b) which collective the
// encoding is compatible with (the paper leans on allreduce-vs-allgather:
// sign/sparse encodings do not sum, so they must be allgathered and decoded
// per peer), and (c) measured encode/decode wall-clock. The distributed
// simulator combines these with the alpha-beta cost model to produce the
// per-epoch breakdowns of Fig. 4.
//
// Contract for the time fields: `encode_seconds` is the total across all
// workers (the cluster divides by the node count, since real workers encode
// in parallel); `decode_seconds` is the cost *one* worker pays to decode
// (for allgather this already includes decoding all peers' payloads, which
// is exactly the linear-in-workers effect of appendix F).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace pf::compress {

enum class Collective { kAllreduce, kAllgather };

struct ReduceStats {
  int64_t payload_bytes_per_worker = 0;
  Collective collective = Collective::kAllreduce;
  int n_messages = 1;  // collective invocations this step
  double encode_seconds = 0;
  double decode_seconds = 0;
};

// Snapshot of a stateful reducer (error-feedback residuals, sign momentum,
// variance-gate moments). Captured into TrainState by core/checkpoint so a
// resumed run replays bitwise -- dropping a residual buffer on resume would
// silently re-lose the gradient mass error feedback exists to preserve.
struct ReducerState {
  std::vector<int64_t> scalars;
  std::vector<Tensor> tensors;
  bool empty() const { return scalars.empty() && tensors.empty(); }
};

class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual std::string name() const = 0;
  // `grads[i]` is worker i's flat gradient; `shapes` is the per-parameter
  // layout of that flat buffer (matrix-aware reducers need it). Returns the
  // aggregated gradient (mean convention) and fills `stats`.
  virtual Tensor reduce(const std::vector<Tensor>& grads,
                        const std::vector<Shape>& shapes,
                        ReduceStats* stats) = 0;

  // Deep-copied evolving state for snapshots; empty for stateless reducers
  // (and for stateful ones before their lazily initialized first step).
  virtual ReducerState state() const { return {}; }
  // Restores a state() capture. The base implementation accepts only an
  // empty state: handing a stateful snapshot to a reducer that cannot
  // replay it must fail loudly, not resume with silently reset buffers.
  virtual void set_state(const ReducerState& st);
};

// Uncompressed flat-buffer allreduce (the paper's optimized vanilla
// baseline and what Pufferfish itself uses on the factorized model).
class AllreduceReducer : public Reducer {
 public:
  std::string name() const override { return "allreduce"; }
  Tensor reduce(const std::vector<Tensor>& grads,
                const std::vector<Shape>& shapes, ReduceStats* stats) override;
};

// PowerSGD (Vogels et al.): per-matrix rank-r factorization with warm-started
// Q, Gram-Schmidt orthogonalization, per-worker error feedback, and two
// allreduce rounds (P then Q). 1-D parameters ride along uncompressed.
class PowerSgdReducer : public Reducer {
 public:
  PowerSgdReducer(int64_t rank, uint64_t seed);
  std::string name() const override;
  Tensor reduce(const std::vector<Tensor>& grads,
                const std::vector<Shape>& shapes, ReduceStats* stats) override;

 private:
  int64_t rank_;
  Rng rng_;
  // Warm-started Q per matrix param (index = param position in `shapes`).
  std::vector<Tensor> q_;
  // Per-worker, per-param error memory (flat segments).
  std::vector<std::vector<Tensor>> error_;
  bool initialized_ = false;
};

// SIGNUM (Bernstein et al.): sign of the per-worker momentum, majority vote.
// Signs do not sum, so the encoding allgathers 1 bit/coordinate/worker.
//
// Plain SIGNUM drops all gradient *magnitude* on the floor each step. With
// `error_feedback` set it becomes EF-signSGD (Karimireddy et al.): each
// worker sends its sign bits plus one mean-|.| scale, keeps the residual
// c_w - scale * sign(c_w) in a per-worker buffer, and replays it next step
// -- the update is then a scaled mean of signs rather than a bare majority
// vote. The flag defaults off so seed behaviour stays bitwise-identical.
class SignumReducer : public Reducer {
 public:
  explicit SignumReducer(float beta = 0.9f, bool error_feedback = false)
      : beta_(beta), error_feedback_(error_feedback) {}
  std::string name() const override {
    return error_feedback_ ? "signum-ef" : "signum";
  }
  Tensor reduce(const std::vector<Tensor>& grads,
                const std::vector<Shape>& shapes, ReduceStats* stats) override;
  ReducerState state() const override;
  void set_state(const ReducerState& st) override;

 private:
  float beta_;
  bool error_feedback_;
  std::vector<Tensor> momentum_;  // per worker
  std::vector<Tensor> error_;     // per worker (error_feedback_ only)
};

// Top-k sparsification of the flat gradient; payload is (index, value)
// pairs, allgathered. `error_feedback` (default on, the seed behaviour)
// accumulates the un-sent coordinates into a per-worker residual replayed
// on later steps; turning it off drops that mass -- kept as a switch so the
// convergence regression test can measure exactly what the residual buys.
class TopKReducer : public Reducer {
 public:
  explicit TopKReducer(double keep_ratio, bool error_feedback = true)
      : keep_ratio_(keep_ratio), error_feedback_(error_feedback) {}
  std::string name() const override {
    return error_feedback_ ? "topk" : "topk-noef";
  }
  Tensor reduce(const std::vector<Tensor>& grads,
                const std::vector<Shape>& shapes, ReduceStats* stats) override;
  ReducerState state() const override;
  void set_state(const ReducerState& st) override;

 private:
  double keep_ratio_;
  bool error_feedback_;
  std::vector<Tensor> error_;  // per worker (error_feedback_ only)
};

// Stochastic binary quantization (Suresh et al., appendix F): each worker
// sends per-coordinate bits plus (min, max); every worker dequantizes and
// averages all peers' payloads -- the decode cost that kills it at scale.
class BinaryQuantReducer : public Reducer {
 public:
  explicit BinaryQuantReducer(uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "binary-quant"; }
  Tensor reduce(const std::vector<Tensor>& grads,
                const std::vector<Shape>& shapes, ReduceStats* stats) override;

 private:
  Rng rng_;
};

// ATOMO (Wang et al., spectral variant): per step, each worker SVDs every
// matrix-shaped gradient and transmits an UNBIASED random sample of the
// singular triplets (importance sampling with probabilities p_i ~ s_i,
// value scaled by 1/p_i). This is the paper's Section 1 example of a
// compressor whose ENCODE cost (an SVD per matrix per step!) dominates --
// the cost Pufferfish pays exactly once per training run instead.
class AtomoReducer : public Reducer {
 public:
  // `budget` = number of singular triplets kept per matrix.
  AtomoReducer(int64_t budget, uint64_t seed) : budget_(budget), rng_(seed) {}
  std::string name() const override;
  Tensor reduce(const std::vector<Tensor>& grads,
                const std::vector<Shape>& shapes, ReduceStats* stats) override;

 private:
  int64_t budget_;
  Rng rng_;
};

}  // namespace pf::compress
