#include "compress/compressor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "linalg/svd.h"
#include "metrics/metrics.h"
#include "tensor/matmul.h"

namespace pf::compress {

namespace {

Tensor mean_of(const std::vector<Tensor>& grads) {
  Tensor out = grads[0];
  for (size_t i = 1; i < grads.size(); ++i) out.add_(grads[i]);
  out.mul_(1.0f / static_cast<float>(grads.size()));
  return out;
}

Tensor deep_copy(const Tensor& t) {
  Tensor c = Tensor::uninit(t.shape());
  std::memcpy(c.data(), std::as_const(t).data(),
              static_cast<size_t>(t.numel()) * sizeof(float));
  return c;
}

std::vector<Tensor> deep_copy_all(const std::vector<Tensor>& ts) {
  std::vector<Tensor> out;
  out.reserve(ts.size());
  for (const Tensor& t : ts) out.push_back(deep_copy(t));
  return out;
}

}  // namespace

void Reducer::set_state(const ReducerState& st) {
  if (!st.empty())
    throw std::runtime_error(
        "reducer '" + name() +
        "' cannot restore snapshot state (it keeps no state, or its state "
        "is not snapshot-capable) -- the snapshot was written by a "
        "different reducer configuration");
}

Tensor AllreduceReducer::reduce(const std::vector<Tensor>& grads,
                                const std::vector<Shape>& /*shapes*/,
                                ReduceStats* stats) {
  metrics::Timer t;
  Tensor out = mean_of(grads);
  if (stats) {
    stats->payload_bytes_per_worker = grads[0].numel() * 4;
    stats->collective = Collective::kAllreduce;
    stats->n_messages = 1;  // flat-buffer packing (paper Section 4.1)
    stats->encode_seconds = 0;
    stats->decode_seconds = t.seconds();  // the local summation stand-in
  }
  return out;
}

// ---------------- PowerSGD ----------------

PowerSgdReducer::PowerSgdReducer(int64_t rank, uint64_t seed)
    : rank_(rank), rng_(seed) {}

std::string PowerSgdReducer::name() const {
  return "powersgd(r=" + std::to_string(rank_) + ")";
}

Tensor PowerSgdReducer::reduce(const std::vector<Tensor>& grads,
                               const std::vector<Shape>& shapes,
                               ReduceStats* stats) {
  const size_t workers = grads.size();
  const int64_t total = grads[0].numel();

  if (!initialized_) {
    q_.resize(shapes.size());
    error_.assign(workers, std::vector<Tensor>(shapes.size()));
    int64_t off = 0;
    for (size_t p = 0; p < shapes.size(); ++p) {
      const int64_t n = shape_numel(shapes[p]);
      if (shapes[p].size() >= 2) {
        const int64_t rows = shapes[p][0];
        const int64_t cols = n / rows;
        const int64_t r = std::min({rank_, rows, cols});
        q_[p] = rng_.randn(Shape{cols, r});
        linalg::orthonormalize_columns(q_[p]);
        for (size_t w = 0; w < workers; ++w)
          error_[w][p] = Tensor::zeros(Shape{rows, cols});
      }
      off += n;
    }
    (void)off;
    initialized_ = true;
  }

  Tensor out(Shape{total});
  int64_t payload = 0;
  double encode_s = 0, decode_s = 0;

  int64_t off = 0;
  for (size_t p = 0; p < shapes.size(); ++p) {
    const int64_t n = shape_numel(shapes[p]);
    if (shapes[p].size() < 2) {
      // 1-D riders: plain allreduce mean.
      for (int64_t j = 0; j < n; ++j) {
        double acc = 0;
        for (size_t w = 0; w < workers; ++w) acc += grads[w][off + j];
        out[off + j] = static_cast<float>(acc / workers);
      }
      payload += n * 4;
      off += n;
      continue;
    }
    const int64_t rows = shapes[p][0];
    const int64_t cols = n / rows;
    const int64_t r = q_[p].size(1);

    metrics::Timer te;
    // Per worker: M_w = grad_w + error_w; P_w = M_w Q.
    std::vector<Tensor> m(workers);
    Tensor p_sum(Shape{rows, r});
    for (size_t w = 0; w < workers; ++w) {
      m[w] = Tensor(Shape{rows, cols},
                    std::vector<float>(grads[w].data() + off,
                                       grads[w].data() + off + n));
      m[w].add_(error_[w][p]);
      Tensor pw = pf::matmul(m[w], q_[p]);
      p_sum.add_(pw);
    }
    p_sum.mul_(1.0f / static_cast<float>(workers));
    encode_s += te.seconds();

    metrics::Timer td;
    linalg::orthonormalize_columns(p_sum);  // P-hat, identical on all workers
    // Q update: mean over workers of M_w^T P-hat.
    Tensor q_new(Shape{cols, r});
    for (size_t w = 0; w < workers; ++w) {
      Tensor qw = pf::matmul_tn(m[w], p_sum);
      q_new.add_(qw);
    }
    q_new.mul_(1.0f / static_cast<float>(workers));
    // Reconstruction and error feedback.
    Tensor approx = pf::matmul_nt(p_sum, q_new);  // (rows, cols)
    for (size_t w = 0; w < workers; ++w) {
      Tensor& e = error_[w][p];
      for (int64_t j = 0; j < n; ++j) e[j] = m[w][j] - approx[j];
    }
    q_[p] = q_new;
    decode_s += td.seconds();

    std::copy(approx.data(), approx.data() + n, out.data() + off);
    payload += (rows * r + cols * r) * 4;  // two allreduce rounds
    off += n;
  }

  if (stats) {
    stats->payload_bytes_per_worker = payload;
    stats->collective = Collective::kAllreduce;
    stats->n_messages = 2;  // P round + Q round (both packed flat)
    stats->encode_seconds = encode_s * 1.0;  // total across workers
    stats->decode_seconds = decode_s;
  }
  return out;
}

// ---------------- SIGNUM ----------------

Tensor SignumReducer::reduce(const std::vector<Tensor>& grads,
                             const std::vector<Shape>& /*shapes*/,
                             ReduceStats* stats) {
  const size_t workers = grads.size();
  const int64_t n = grads[0].numel();
  if (momentum_.empty())
    momentum_.assign(workers, Tensor::zeros(Shape{n}));
  if (error_feedback_ && error_.empty())
    error_.assign(workers, Tensor::zeros(Shape{n}));

  metrics::Timer te;
  // Per worker: momentum update + sign encoding into a packed bitset. With
  // error feedback the encoded value is c_w = momentum + residual, the
  // payload carries one per-worker scale (mean |c_w|), and the residual
  // keeps what the sign quantization lost.
  std::vector<std::vector<uint8_t>> payloads(workers);
  std::vector<float> scales(workers, 1.0f);
  for (size_t w = 0; w < workers; ++w) {
    Tensor& m = momentum_[w];
    for (int64_t j = 0; j < n; ++j)
      m[j] = beta_ * m[j] + (1 - beta_) * grads[w][j];
    Tensor c = m;  // COW: unshared below only when error feedback mutates
    if (error_feedback_) {
      c = deep_copy(m);
      c.add_(error_[w]);
      double abs_sum = 0;
      for (int64_t j = 0; j < n; ++j)
        abs_sum += std::fabs(static_cast<double>(c[j]));
      scales[w] = static_cast<float>(abs_sum / static_cast<double>(n));
    }
    auto& bits = payloads[w];
    bits.assign(static_cast<size_t>((n + 7) / 8), 0);
    for (int64_t j = 0; j < n; ++j)
      if (c[j] >= 0)
        bits[static_cast<size_t>(j / 8)] |=
            static_cast<uint8_t>(1u << (j % 8));
    if (error_feedback_) {
      Tensor& e = error_[w];
      for (int64_t j = 0; j < n; ++j)
        e[j] = c[j] - (c[j] >= 0 ? scales[w] : -scales[w]);
    }
  }
  const double encode_s = te.seconds();

  metrics::Timer td;
  Tensor out(Shape{n});
  if (error_feedback_) {
    // Scaled mean of signs: each peer's payload decodes to scale_w *
    // sign(c_w); the aggregate keeps first-order magnitude information.
    const float inv = 1.0f / static_cast<float>(workers);
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0;
      for (size_t w = 0; w < workers; ++w)
        acc += (payloads[w][static_cast<size_t>(j / 8)] >> (j % 8)) & 1
                   ? scales[w]
                   : -scales[w];
      out[j] = acc * inv;
    }
  } else {
    // Majority vote: every worker decodes all peers' sign bitsets.
    for (int64_t j = 0; j < n; ++j) {
      int vote = 0;
      for (size_t w = 0; w < workers; ++w)
        vote +=
            (payloads[w][static_cast<size_t>(j / 8)] >> (j % 8)) & 1 ? 1 : -1;
      out[j] = vote >= 0 ? 1.0f : -1.0f;
    }
  }
  const double decode_s = td.seconds();

  if (stats) {
    stats->payload_bytes_per_worker =
        (n + 7) / 8 + (error_feedback_ ? 4 : 0);  // + the scale float
    stats->collective = Collective::kAllgather;
    stats->n_messages = 1;
    stats->encode_seconds = encode_s;
    stats->decode_seconds = decode_s;  // one worker's majority-vote decode
  }
  return out;
}

ReducerState SignumReducer::state() const {
  ReducerState st;
  if (momentum_.empty()) return st;
  st.scalars = {static_cast<int64_t>(momentum_.size()),
                error_feedback_ ? 1 : 0};
  st.tensors = deep_copy_all(momentum_);
  for (const Tensor& e : deep_copy_all(error_))
    st.tensors.push_back(e);
  return st;
}

void SignumReducer::set_state(const ReducerState& st) {
  if (st.empty()) {
    momentum_.clear();
    error_.clear();
    return;
  }
  if (st.scalars.size() != 2 ||
      (st.scalars[1] != 0) != error_feedback_ ||
      st.tensors.size() !=
          static_cast<size_t>(st.scalars[0]) * (error_feedback_ ? 2 : 1))
    throw std::runtime_error(
        "signum: snapshot state does not match this reducer's "
        "configuration (worker count or error-feedback flag)");
  const size_t workers = static_cast<size_t>(st.scalars[0]);
  momentum_ = deep_copy_all(
      {st.tensors.begin(), st.tensors.begin() + workers});
  error_.clear();
  if (error_feedback_)
    error_ = deep_copy_all(
        {st.tensors.begin() + workers, st.tensors.end()});
}

// ---------------- Top-k ----------------

Tensor TopKReducer::reduce(const std::vector<Tensor>& grads,
                           const std::vector<Shape>& /*shapes*/,
                           ReduceStats* stats) {
  const size_t workers = grads.size();
  const int64_t n = grads[0].numel();
  const int64_t k =
      std::max<int64_t>(1, static_cast<int64_t>(n * keep_ratio_));
  if (error_feedback_ && error_.empty())
    error_.assign(workers, Tensor::zeros(Shape{n}));

  metrics::Timer te;
  struct Payload {
    std::vector<int64_t> idx;
    std::vector<float> val;
  };
  std::vector<Payload> payloads(workers);
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (size_t w = 0; w < workers; ++w) {
    Tensor m = grads[w];
    if (error_feedback_) m.add_(error_[w]);
    std::iota(order.begin(), order.end(), 0);
    std::nth_element(order.begin(), order.begin() + k, order.end(),
                     [&](int64_t a, int64_t b) {
                       return std::fabs(m[a]) > std::fabs(m[b]);
                     });
    Payload& p = payloads[w];
    p.idx.assign(order.begin(), order.begin() + k);
    p.val.resize(static_cast<size_t>(k));
    if (error_feedback_) {
      // Error feedback: remember everything not sent.
      error_[w] = m;
      for (int64_t j = 0; j < k; ++j) {
        const int64_t id = p.idx[static_cast<size_t>(j)];
        p.val[static_cast<size_t>(j)] = m[id];
        error_[w][id] = 0.0f;
      }
    } else {
      // Un-sent coordinates are simply dropped -- the behaviour the
      // convergence regression test measures against.
      for (int64_t j = 0; j < k; ++j)
        p.val[static_cast<size_t>(j)] = m[p.idx[static_cast<size_t>(j)]];
    }
  }
  const double encode_s = te.seconds();

  metrics::Timer td;
  Tensor out(Shape{n});
  for (size_t w = 0; w < workers; ++w)
    for (int64_t j = 0; j < k; ++j)
      out[payloads[w].idx[static_cast<size_t>(j)]] +=
          payloads[w].val[static_cast<size_t>(j)];
  out.mul_(1.0f / static_cast<float>(workers));
  const double decode_s = td.seconds();

  if (stats) {
    stats->payload_bytes_per_worker = k * 8;  // 4B index + 4B value
    stats->collective = Collective::kAllgather;
    stats->n_messages = 1;
    stats->encode_seconds = encode_s;
    stats->decode_seconds = decode_s;
  }
  return out;
}

ReducerState TopKReducer::state() const {
  ReducerState st;
  if (error_.empty()) return st;
  st.scalars = {static_cast<int64_t>(error_.size())};
  st.tensors = deep_copy_all(error_);
  return st;
}

void TopKReducer::set_state(const ReducerState& st) {
  if (st.empty()) {
    error_.clear();
    return;
  }
  if (!error_feedback_ || st.scalars.size() != 1 ||
      st.tensors.size() != static_cast<size_t>(st.scalars[0]))
    throw std::runtime_error(
        "topk: snapshot state does not match this reducer's configuration "
        "(worker count or error-feedback flag)");
  error_ = deep_copy_all(st.tensors);
}

// ---------------- Stochastic binary quantization ----------------

Tensor BinaryQuantReducer::reduce(const std::vector<Tensor>& grads,
                                  const std::vector<Shape>& shapes,
                                  ReduceStats* stats) {
  const size_t workers = grads.size();
  const int64_t n = grads[0].numel();

  // Quantization is applied PER PARAMETER TENSOR (a (lo, hi) pair per
  // segment), matching how these schemes are deployed -- a single global
  // range would be dominated by whichever layer has the widest gradients.
  std::vector<std::pair<int64_t, int64_t>> segments;  // (offset, len)
  {
    int64_t off = 0;
    for (const Shape& s : shapes) {
      const int64_t len = shape_numel(s);
      segments.emplace_back(off, len);
      off += len;
    }
    if (off != n) segments.assign(1, {0, n});  // fallback: one segment
  }

  metrics::Timer te;
  struct Payload {
    std::vector<uint8_t> bits;
    std::vector<float> lo, hi;  // per segment
  };
  std::vector<Payload> payloads(workers);
  // Stochastic rounding uses an inline LCG: one multiply-add per element,
  // which is what makes the ENCODE side of this scheme genuinely cheap
  // (the paper's appendix F: 12.1 s encode vs 118.4 s decode per epoch).
  uint64_t lcg = rng_.next_u64() | 1;
  for (size_t w = 0; w < workers; ++w) {
    const Tensor& g = grads[w];
    Payload& p = payloads[w];
    p.bits.assign(static_cast<size_t>((n + 7) / 8), 0);
    for (const auto& [off, len] : segments) {
      float lo = g[off], hi = g[off];
      for (int64_t j = off; j < off + len; ++j) {
        lo = std::min(lo, g[j]);
        hi = std::max(hi, g[j]);
      }
      p.lo.push_back(lo);
      p.hi.push_back(hi);
      const float inv_range = 1.0f / std::max(1e-12f, hi - lo);
      for (int64_t j = off; j < off + len; ++j) {
        const float prob = (g[j] - lo) * inv_range;
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const float u = static_cast<float>(lcg >> 40) * 0x1.0p-24f;
        if (u < prob)
          p.bits[static_cast<size_t>(j / 8)] |=
              static_cast<uint8_t>(1u << (j % 8));
      }
    }
  }
  const double encode_s = te.seconds();

  metrics::Timer td;
  // Each worker dequantizes *every* peer's payload and averages -- this is
  // the expensive part appendix F measures (118 s/epoch at 16 nodes).
  Tensor out(Shape{n});
  for (size_t w = 0; w < workers; ++w) {
    const Payload& p = payloads[w];
    for (size_t seg = 0; seg < segments.size(); ++seg) {
      const auto [off, len] = segments[seg];
      const float lo = p.lo[seg];
      const float range = p.hi[seg] - lo;
      for (int64_t j = off; j < off + len; ++j) {
        const int bit = (p.bits[static_cast<size_t>(j / 8)] >> (j % 8)) & 1;
        out[j] += lo + static_cast<float>(bit) * range;
      }
    }
  }
  out.mul_(1.0f / static_cast<float>(workers));
  const double decode_s = td.seconds();

  if (stats) {
    stats->payload_bytes_per_worker =
        (n + 7) / 8 + 8 * static_cast<int64_t>(segments.size());
    stats->collective = Collective::kAllgather;
    stats->n_messages = 1;
    stats->encode_seconds = encode_s;
    stats->decode_seconds = decode_s;
  }
  return out;
}

// ---------------- ATOMO (spectral) ----------------

std::string AtomoReducer::name() const {
  return "atomo(k=" + std::to_string(budget_) + ")";
}

Tensor AtomoReducer::reduce(const std::vector<Tensor>& grads,
                            const std::vector<Shape>& shapes,
                            ReduceStats* stats) {
  const size_t workers = grads.size();
  const int64_t total = grads[0].numel();
  Tensor out(Shape{total});
  int64_t payload = 0;
  double encode_s = 0, decode_s = 0;

  int64_t off = 0;
  for (const Shape& shape : shapes) {
    const int64_t n = shape_numel(shape);
    if (shape.size() < 2) {
      // 1-D riders allgathered raw (signs/sparsity don't apply).
      for (int64_t j = 0; j < n; ++j) {
        double acc = 0;
        for (size_t w = 0; w < workers; ++w) acc += grads[w][off + j];
        out[off + j] = static_cast<float>(acc / workers);
      }
      payload += n * 4;
      off += n;
      continue;
    }
    const int64_t rows = shape[0];
    const int64_t cols = n / rows;
    const int64_t full = std::min(rows, cols);
    const int64_t k = std::min(budget_, full);

    struct Triplet {
      std::vector<float> u, v;
      float scale;
    };
    std::vector<std::vector<Triplet>> payloads(workers);

    metrics::Timer te;
    for (size_t w = 0; w < workers; ++w) {
      Tensor m(Shape{rows, cols},
               std::vector<float>(grads[w].data() + off,
                                  grads[w].data() + off + n));
      // The per-step SVD: this is the expensive part ATOMO pays every
      // iteration and Pufferfish pays once per training run.
      linalg::SvdResult svd = linalg::gram_svd(m, full);
      // Importance sampling: keep triplet i with probability
      // p_i = min(1, k * s_i / sum(s)), send s_i / p_i for unbiasedness.
      double s_sum = 0;
      for (int64_t i = 0; i < full; ++i) s_sum += svd.s[i];
      for (int64_t i = 0; i < full && s_sum > 0; ++i) {
        const double p =
            std::min(1.0, budget_ * static_cast<double>(svd.s[i]) / s_sum);
        if (p <= 0 || !rng_.bernoulli(p)) continue;
        Triplet t;
        t.scale = static_cast<float>(svd.s[i] / p);
        t.u.resize(static_cast<size_t>(rows));
        t.v.resize(static_cast<size_t>(cols));
        for (int64_t r = 0; r < rows; ++r)
          t.u[static_cast<size_t>(r)] = svd.u[r * full + i];
        for (int64_t cidx = 0; cidx < cols; ++cidx)
          t.v[static_cast<size_t>(cidx)] = svd.v[cidx * full + i];
        payloads[w].push_back(std::move(t));
      }
    }
    encode_s += te.seconds();

    metrics::Timer td;
    // Every worker reconstructs every peer's sampled triplets and averages.
    std::vector<double> acc(static_cast<size_t>(n), 0.0);
    for (size_t w = 0; w < workers; ++w)
      for (const Triplet& t : payloads[w])
        for (int64_t r = 0; r < rows; ++r) {
          const double us = static_cast<double>(t.u[static_cast<size_t>(r)]) *
                            t.scale;
          for (int64_t cidx = 0; cidx < cols; ++cidx)
            acc[static_cast<size_t>(r * cols + cidx)] +=
                us * t.v[static_cast<size_t>(cidx)];
        }
    for (int64_t j = 0; j < n; ++j)
      out[off + j] = static_cast<float>(acc[static_cast<size_t>(j)] / workers);
    decode_s += td.seconds();

    // Payload: sampled triplets (expected ~k of them).
    int64_t triplets = 0;
    for (const auto& p : payloads) triplets += static_cast<int64_t>(p.size());
    payload += (triplets / static_cast<int64_t>(workers)) *
               (rows + cols + 1) * 4;
    (void)k;
    off += n;
  }

  if (stats) {
    stats->payload_bytes_per_worker = payload;
    stats->collective = Collective::kAllgather;  // triplets don't sum
    stats->n_messages = 1;
    stats->encode_seconds = encode_s;
    stats->decode_seconds = decode_s;
  }
  return out;
}

}  // namespace pf::compress
