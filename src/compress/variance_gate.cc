#include "compress/variance_gate.h"

#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "metrics/metrics.h"

namespace pf::compress {

namespace {

Tensor deep_copy(const Tensor& t) {
  Tensor c = Tensor::uninit(t.shape());
  std::memcpy(c.data(), std::as_const(t).data(),
              static_cast<size_t>(t.numel()) * sizeof(float));
  return c;
}

}  // namespace

Tensor VarianceGateReducer::reduce(const std::vector<Tensor>& grads,
                                   const std::vector<Shape>& shapes,
                                   ReduceStats* stats) {
  const size_t workers = grads.size();
  const int64_t n = grads[0].numel();
  if (mean_.empty()) {
    mean_ = Tensor::zeros(Shape{n});
    m2_ = Tensor::zeros(Shape{n});
    residual_ = Tensor::zeros(Shape{n});
  }

  // Segment the flat buffer per parameter tensor; fall back to one segment
  // if the declared shapes do not tile the buffer exactly.
  std::vector<std::pair<int64_t, int64_t>> segments;  // (offset, len)
  {
    int64_t off = 0;
    for (const Shape& s : shapes) {
      const int64_t len = shape_numel(s);
      segments.emplace_back(off, len);
      off += len;
    }
    if (off != n) segments.assign(1, {0, n});
  }

  metrics::Timer te;
  // Aggregate first (dense gradients sum, so this is what allreduce would
  // deliver), then gate the *aggregated* gradient. Gating after aggregation
  // keeps one residual buffer exact: the residual of the mean equals the
  // mean of per-worker residuals under the mean convention.
  Tensor g = grads[0];
  for (size_t w = 1; w < workers; ++w) g.add_(grads[w]);
  g.mul_(1.0f / static_cast<float>(workers));

  step_ += 1;
  // Welford: mean_ and m2_ track the per-coordinate running moments of the
  // aggregated gradient across steps.
  const float inv_step = 1.0f / static_cast<float>(step_);
  for (int64_t j = 0; j < n; ++j) {
    const float delta = g[j] - mean_[j];
    mean_[j] += delta * inv_step;
    m2_[j] += delta * (g[j] - mean_[j]);
  }

  Tensor out = Tensor::zeros(Shape{n});
  int64_t sent_floats = 0;
  const double var_scale =
      1.0 / (static_cast<double>(std::max<int64_t>(1, step_ - 1)) *
             static_cast<double>(step_));
  for (const auto& [off, len] : segments) {
    bool send = step_ <= warmup_steps_;
    if (!send) {
      // Ambiguity criterion: transmit when the mean's squared mass
      // dominates the variance of the mean estimate (var/step), i.e.
      // sum(mean^2) >= threshold^2 * sum(m2/(step-1))/step.
      double mass = 0, var = 0;
      for (int64_t j = off; j < off + len; ++j) {
        mass += static_cast<double>(mean_[j]) * mean_[j];
        var += static_cast<double>(m2_[j]);
      }
      send = mass >= threshold_ * threshold_ * var * var_scale;
    }
    if (send) {
      for (int64_t j = off; j < off + len; ++j) {
        out[j] = g[j] + residual_[j];
        residual_[j] = 0.0f;
      }
      sent_floats += len;
      layers_sent_ += 1;
    } else {
      // Error feedback: defer this layer's mass to its next send.
      for (int64_t j = off; j < off + len; ++j) residual_[j] += g[j];
      layers_skipped_ += 1;
    }
  }
  const double encode_s = te.seconds();

  if (stats) {
    // Sent floats still sum across workers, so the collective stays
    // allreduce; the per-layer send mask rides in the header.
    stats->payload_bytes_per_worker =
        sent_floats * 4 +
        (static_cast<int64_t>(segments.size()) + 7) / 8;
    stats->collective = Collective::kAllreduce;
    stats->n_messages = 1;
    stats->encode_seconds = encode_s;
    stats->decode_seconds = 0;  // dense floats need no per-peer decode
  }
  return out;
}

ReducerState VarianceGateReducer::state() const {
  ReducerState st;
  if (mean_.empty()) return st;
  st.scalars = {step_, layers_sent_, layers_skipped_};
  st.tensors = {deep_copy(mean_), deep_copy(m2_), deep_copy(residual_)};
  return st;
}

void VarianceGateReducer::set_state(const ReducerState& st) {
  if (st.empty()) {
    mean_ = Tensor();
    m2_ = Tensor();
    residual_ = Tensor();
    step_ = layers_sent_ = layers_skipped_ = 0;
    return;
  }
  if (st.scalars.size() != 3 || st.tensors.size() != 3)
    throw std::runtime_error(
        "variance-gate: snapshot state has the wrong layout (expected 3 "
        "scalars + 3 tensors)");
  step_ = st.scalars[0];
  layers_sent_ = st.scalars[1];
  layers_skipped_ = st.scalars[2];
  mean_ = deep_copy(st.tensors[0]);
  m2_ = deep_copy(st.tensors[1]);
  residual_ = deep_copy(st.tensors[2]);
}

}  // namespace pf::compress
