// Optimizers and learning-rate schedules used across the paper's recipes:
// SGD with momentum + L2 (excluded on BN/bias, per Goyal et al.), plain SGD
// with gradient-norm clipping (LSTM recipe), Adam (Transformer recipe), step
// decay, linear warm-up, and decay-on-plateau.
#pragma once

#include <limits>
#include <vector>

#include "nn/module.h"

namespace pf::optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<nn::Param*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad();
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  // The optimizer's slot buffers (SGD velocity, Adam moments) in a stable
  // order, and its integer state (Adam's step count). core/checkpoint
  // snapshots these so a resumed run steps bitwise-identically to an
  // uninterrupted one; a stateless optimizer returns empty vectors.
  virtual std::vector<Tensor*> state_tensors() { return {}; }
  virtual std::vector<int64_t> state_scalars() const { return {}; }
  virtual void set_state_scalars(const std::vector<int64_t>&) {}

 protected:
  std::vector<nn::Param*> params_;
  float lr_ = 0.1f;
};

class SGD : public Optimizer {
 public:
  // momentum 0 disables the velocity buffer; weight_decay is applied as L2
  // on parameters not marked no_decay.
  SGD(std::vector<nn::Param*> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);
  void step() override;
  std::vector<Tensor*> state_tensors() override;

  // Re-derives the velocity slots after a re-projection changed some
  // parameter shapes (nn/reproject.h): slots whose shape still matches
  // their param keep their contents; changed ones restart from zero (the
  // re-SVD re-based those factors, so old momentum no longer applies).
  void rebind_slots();

 private:
  float momentum_, weight_decay_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<nn::Param*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;
  std::vector<Tensor*> state_tensors() override;      // m then v, per param
  std::vector<int64_t> state_scalars() const override;  // {t}
  void set_state_scalars(const std::vector<int64_t>& s) override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

// Clips the global gradient norm across all params to max_norm; returns the
// pre-clip norm (the LSTM recipe clips at 0.25).
float clip_grad_norm(const std::vector<nn::Param*>& params, float max_norm);

// ---- Schedules. All return the lr for a given epoch. ----

// Step decay: lr0 * factor^(#milestones passed).
class StepDecay {
 public:
  StepDecay(float lr0, std::vector<int> milestones, float factor = 0.1f)
      : lr0_(lr0), milestones_(std::move(milestones)), factor_(factor) {}
  float at_epoch(int epoch) const;

 private:
  float lr0_;
  std::vector<int> milestones_;
  float factor_;
};

// Linear warm-up from `start` to `peak` over `warmup_epochs`, then delegate
// to a StepDecay on the peak lr (the large-batch recipe of Goyal et al.).
class WarmupThenStep {
 public:
  WarmupThenStep(float start, float peak, int warmup_epochs,
                 std::vector<int> milestones, float factor = 0.1f)
      : start_(start),
        peak_(peak),
        warmup_(warmup_epochs),
        step_(peak, std::move(milestones), factor) {}
  float at_epoch(int epoch) const;

 private:
  float start_, peak_;
  int warmup_;
  StepDecay step_;
};

// Decay-on-plateau: multiply lr by `factor` whenever the monitored value
// fails to improve (the WikiText-2 recipe: lr 20, factor 0.25).
class ReduceOnPlateau {
 public:
  ReduceOnPlateau(float lr0, float factor) : lr_(lr0), factor_(factor) {}
  // Report a new validation metric (lower is better); returns current lr.
  float observe(float metric);
  float lr() const { return lr_; }

 private:
  float lr_, factor_;
  float best_ = std::numeric_limits<float>::infinity();
};

}  // namespace pf::optim
