#include "optim/optim.h"

#include <cmath>
#include <stdexcept>

namespace pf::optim {

void Optimizer::zero_grad() {
  for (nn::Param* p : params_) p->var->zero_grad();
}

SGD::SGD(std::vector<nn::Param*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  lr_ = lr;
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (nn::Param* p : params_)
      velocity_.emplace_back(p->var->value.shape());
  }
}

void SGD::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    nn::Param* p = params_[i];
    if (!p->var->has_grad()) continue;
    Tensor& w = p->var->value;
    const Tensor& g = p->var->grad;
    const float wd = p->no_decay ? 0.0f : weight_decay_;
    const int64_t n = w.numel();
    float* wp = w.data();  // unshare (COW) once, not per element
    const float* gp = g.data();
    if (momentum_ != 0.0f) {
      float* vp = velocity_[i].data();
      for (int64_t j = 0; j < n; ++j) {
        const float grad = gp[j] + wd * wp[j];
        vp[j] = momentum_ * vp[j] + grad;
        wp[j] -= lr_ * vp[j];
      }
    } else {
      for (int64_t j = 0; j < n; ++j) wp[j] -= lr_ * (gp[j] + wd * wp[j]);
    }
  }
}

std::vector<Tensor*> SGD::state_tensors() {
  std::vector<Tensor*> out;
  out.reserve(velocity_.size());
  for (Tensor& v : velocity_) out.push_back(&v);
  return out;
}

void SGD::rebind_slots() {
  if (momentum_ == 0.0f) return;
  for (size_t i = 0; i < params_.size(); ++i)
    if (velocity_[i].shape() != params_[i]->var->value.shape())
      velocity_[i] = Tensor::zeros(params_[i]->var->value.shape());
}

Adam::Adam(std::vector<nn::Param*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (nn::Param* p : params_) {
    m_.emplace_back(p->var->value.shape());
    v_.emplace_back(p->var->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    nn::Param* p = params_[i];
    if (!p->var->has_grad()) continue;
    Tensor& w = p->var->value;
    const Tensor& g = p->var->grad;
    const float wd = p->no_decay ? 0.0f : weight_decay_;
    const int64_t n = w.numel();
    float* wp = w.data();  // unshare (COW) once, not per element
    const float* gp = g.data();
    float* mp = m_[i].data();
    float* vp = v_[i].data();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = gp[j] + wd * wp[j];
      mp[j] = beta1_ * mp[j] + (1 - beta1_) * grad;
      vp[j] = beta2_ * vp[j] + (1 - beta2_) * grad * grad;
      const float mhat = mp[j] / bc1;
      const float vhat = vp[j] / bc2;
      wp[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

std::vector<Tensor*> Adam::state_tensors() {
  std::vector<Tensor*> out;
  out.reserve(m_.size() + v_.size());
  for (Tensor& m : m_) out.push_back(&m);
  for (Tensor& v : v_) out.push_back(&v);
  return out;
}

std::vector<int64_t> Adam::state_scalars() const { return {t_}; }

void Adam::set_state_scalars(const std::vector<int64_t>& s) {
  if (s.size() != 1)
    throw std::runtime_error("Adam: expected one state scalar (step count)");
  t_ = s[0];
}

float clip_grad_norm(const std::vector<nn::Param*>& params, float max_norm) {
  double total = 0;
  for (nn::Param* p : params) {
    if (!p->var->has_grad()) continue;
    const Tensor& g = p->var->grad;
    const float* gp = g.data();
    for (int64_t j = 0; j < g.numel(); ++j)
      total += static_cast<double>(gp[j]) * gp[j];
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0) {
    const float scale = max_norm / norm;
    for (nn::Param* p : params) {
      if (!p->var->has_grad()) continue;
      p->var->grad.mul_(scale);
    }
  }
  return norm;
}

float StepDecay::at_epoch(int epoch) const {
  float lr = lr0_;
  for (int m : milestones_)
    if (epoch >= m) lr *= factor_;
  return lr;
}

float WarmupThenStep::at_epoch(int epoch) const {
  if (epoch < warmup_) {
    const float frac = static_cast<float>(epoch + 1) / warmup_;
    return start_ + (peak_ - start_) * frac;
  }
  return step_.at_epoch(epoch);
}

float ReduceOnPlateau::observe(float metric) {
  if (metric < best_) {
    best_ = metric;
  } else {
    lr_ *= factor_;
  }
  return lr_;
}

}  // namespace pf::optim
