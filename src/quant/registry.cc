#include "quant/registry.h"

#include <unordered_map>

namespace pf::quant::detail {

namespace {

struct SlotInfo {
  nn::QWeight* slot;
  int64_t qrows, qcols;
  bool transpose;
};

// Maps each quantizable param (by autograd node identity) of one layer to
// its slot and quantized storage shape.
void layer_slots(nn::Module& m,
                 std::unordered_map<const ag::Node*, SlotInfo>& out) {
  if (auto* l = dynamic_cast<nn::Linear*>(&m)) {
    out[l->weight.get()] = {&l->qweight, l->out_features(), l->in_features(),
                            false};
  } else if (auto* l = dynamic_cast<nn::LowRankLinear*>(&m)) {
    out[l->u.get()] = {&l->qu, l->out_features(), l->rank(), false};
    out[l->v.get()] = {&l->qvt, l->rank(), l->in_features(), true};
  } else if (auto* l = dynamic_cast<nn::Conv2d*>(&m)) {
    out[l->weight.get()] = {&l->qweight, l->c_out(),
                            l->c_in() * l->kernel() * l->kernel(), false};
  } else if (auto* l = dynamic_cast<nn::LowRankConv2d*>(&m)) {
    out[l->u.get()] = {&l->qu, l->rank(),
                       l->c_in() * l->kernel() * l->kernel(), false};
    out[l->v.get()] = {&l->qv, l->c_out(), l->rank(), false};
  } else if (auto* l = dynamic_cast<nn::LSTMLayer*>(&m)) {
    out[l->w_ih.get()] = {&l->q_wih, 4 * l->hidden(), l->input_dim(), false};
    out[l->w_hh.get()] = {&l->q_whh, 4 * l->hidden(), l->hidden(), false};
  } else if (auto* l = dynamic_cast<nn::LowRankLSTMLayer*>(&m)) {
    for (size_t g = 0; g < 4; ++g) {
      out[l->u_ih[g].get()] = {&l->q_u_ih[g], l->hidden(), l->rank(), false};
      out[l->v_ih[g].get()] = {&l->q_vt_ih[g], l->rank(), l->input_dim(),
                               true};
      out[l->u_hh[g].get()] = {&l->q_u_hh[g], l->hidden(), l->rank(), false};
      out[l->v_hh[g].get()] = {&l->q_vt_hh[g], l->rank(), l->hidden(), true};
    }
  }
}

void collect(nn::Module& m, std::vector<Entry>& out) {
  std::unordered_map<const ag::Node*, SlotInfo> slots;
  layer_slots(m, slots);
  for (nn::Param& p : m.local_params()) {
    Entry e;
    e.tensor = &p.var->value;
    e.param = &p;
    auto it = slots.find(p.var.get());
    if (it != slots.end()) {
      e.slot = it->second.slot;
      e.owner = &m;
      e.qrows = it->second.qrows;
      e.qcols = it->second.qcols;
      e.transpose = it->second.transpose;
    }
    out.push_back(e);
  }
  for (nn::Buffer& b : m.local_buffers()) {
    Entry e;
    e.tensor = &b.value;
    out.push_back(e);
  }
  for (nn::Module* c : m.children()) collect(*c, out);
}

}  // namespace

std::vector<Entry> collect_entries(nn::Module& m) {
  std::vector<Entry> out;
  collect(m, out);
  return out;
}

Tensor storage_view(const Entry& e) {
  // V factors live as (in, r) fp32 but serve as V^T (r, in) so the per-row
  // scale sits on the non-contracted GEMM axis; everything else is a plain
  // 2-D reshape (convs unroll to (c_out, c_in*k*k) etc.).
  Tensor w2 = e.tensor->reshape(
      e.transpose ? Shape{e.qcols, e.qrows} : Shape{e.qrows, e.qcols});
  return e.transpose ? w2.t() : w2;
}

}  // namespace pf::quant::detail
