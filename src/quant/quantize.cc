#include "quant/quantize.h"

#include <memory>
#include <stdexcept>
#include <unordered_map>

namespace pf::quant {

int64_t quantize_module(nn::Module& m, const QuantSpec& spec) {
  std::vector<detail::Entry> entries = detail::collect_entries(m);
  // min_numel gates whole LAYERS, not tensors: the forward fast paths test a
  // single slot per layer, so a low-rank layer with a big U and a tiny V
  // must quantize both factors or neither.
  std::unordered_map<const void*, int64_t> group_numel;
  for (const detail::Entry& e : entries)
    if (e.slot) group_numel[e.owner] += e.tensor->numel();
  int64_t count = 0;
  for (detail::Entry& e : entries) {
    if (!e.slot) continue;
    // A set slot over an empty master = commit() (or load_quantized) already
    // released the fp32 weights; the group-numel gate must not mask that.
    if (*e.slot && e.tensor->empty())
      throw std::runtime_error(
          "quantize_module: fp32 master already released (commit ran); "
          "cannot re-quantize");
    if (group_numel[e.owner] < spec.min_numel) continue;
    if (e.tensor->empty())
      throw std::runtime_error(
          "quantize_module: fp32 master already released (commit ran); "
          "cannot re-quantize");
    Tensor w2 = detail::storage_view(e);
    *e.slot = std::make_shared<const kernels::QuantizedMat>(
        kernels::quantize_tensor(w2, spec.mode));
    ++count;
  }
  return count;
}

void commit(nn::Module& m) {
  for (detail::Entry& e : detail::collect_entries(m)) {
    if (!e.slot || !*e.slot) continue;
    e.param->var->value = Tensor();
    e.param->var->requires_grad = false;
  }
}

void rollback(nn::Module& m) {
  for (detail::Entry& e : detail::collect_entries(m)) {
    if (!e.slot || !*e.slot) continue;
    if (e.tensor->empty())
      throw std::runtime_error(
          "rollback: fp32 master already released (commit ran)");
    e.slot->reset();
  }
}

int64_t quantized_bytes(nn::Module& m) {
  int64_t bytes = 0;
  for (const detail::Entry& e : detail::collect_entries(m))
    if (e.slot && *e.slot) bytes += (*e.slot)->bytes();
  return bytes;
}

int64_t fp32_bytes(nn::Module& m) {
  int64_t bytes = 0;
  for (const detail::Entry& e : detail::collect_entries(m))
    bytes += e.tensor->numel() * static_cast<int64_t>(sizeof(float));
  return bytes;
}

int64_t serving_bytes(nn::Module& m) {
  return quantized_bytes(m) + fp32_bytes(m);
}

GateResult quantize_if(nn::Module& m, const QuantSpec& spec, double eps,
                       const std::function<double(nn::Module&)>& eval) {
  GateResult r;
  r.bytes_fp32 = serving_bytes(m);
  r.fp32_metric = eval(m);
  r.quantized = quantize_module(m, spec);
  r.quant_metric = eval(m);
  // Footprint if committed: total now, minus the fp32 masters commit() would
  // release (every entry whose slot is set).
  int64_t masters = 0;
  for (const detail::Entry& e : detail::collect_entries(m))
    if (e.slot && *e.slot)
      masters += e.tensor->numel() * static_cast<int64_t>(sizeof(float));
  r.bytes_quant = serving_bytes(m) - masters;
  r.accepted = (r.fp32_metric - r.quant_metric) <= eps;
  if (!r.accepted) rollback(m);
  return r;
}

}  // namespace pf::quant
