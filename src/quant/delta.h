// Delta-compressed model variants (DESIGN.md §14).
//
// A per-tenant fine-tune rarely moves far from its base model, so the
// residual R = W_ft - W_base is much lower rank than the weights themselves.
// compute_delta() factorizes each residual with the existing truncated-SVD
// path (core::factorize_matrix) at the rank the energy criterion picks
// (core::choose_rank_for_energy), falling back to a dense residual whenever
// the factors would not actually be smaller. apply_delta() reconstructs
// W_base + U V^T in place, so N variants ship as one shared base artifact
// plus N small deltas and are materialized lazily per serving engine.
#pragma once

#include <string>
#include <vector>

#include "quant/registry.h"

namespace pf::quant {

struct DeltaSpec {
  // Retained squared spectral mass of each residual (rank via
  // core::choose_rank_for_energy).
  double energy = 0.95;
  int64_t max_rank = 0;     // 0 = uncapped
  int64_t min_numel = 4096; // smaller tensors are stored dense
  uint64_t seed = 0x5EEDD17Aull;  // sign-disambiguation seed for the SVD
};

struct DeltaEntry {
  bool lowrank = false;
  Shape shape;   // fp32 shape of the target tensor
  Tensor dense;  // residual (dense mode)
  Tensor u, v;   // (rows, r), (cols, r) of the 2-D residual (lowrank mode)
};

struct DeltaModel {
  std::vector<DeltaEntry> entries;
  int64_t bytes() const;           // payload floats * sizeof(float)
  int64_t lowrank_entries() const;
};

// base and variant must be structurally identical module trees.
DeltaModel compute_delta(nn::Module& base, nn::Module& variant,
                         const DeltaSpec& spec = {});

// In place: m (holding base weights) += reconstructed residuals. Must run
// before quantization -- the masters have to be fp32.
void apply_delta(nn::Module& m, const DeltaModel& d);

}  // namespace pf::quant
