// Post-training weights-only quantization of module trees (DESIGN.md §14).
//
// quantize_module() walks the tree and fills every eligible layer's
// quantized-weight slot (nn::QWeight) with per-output-row int8 symmetric
// codes or bf16, computed from the trained fp32 weights. The fp32 masters
// are kept, so eval runs the fused dequant-GEMM kernels (slots take
// priority in tape-free forwards) while rollback() can restore the fp32
// path bit-for-bit. commit() releases the fp32 masters entirely: the
// serving footprint becomes the quantized codes plus whatever stayed fp32
// (biases, norms, embeddings).
//
// quantize_if() is the accuracy-drop gate from the issue: quantize, re-run
// the caller's eval metric, and roll back (fp32 fallback) when the metric
// drops by more than eps.
#pragma once

#include <functional>

#include "quant/registry.h"

namespace pf::quant {

struct QuantSpec {
  kernels::QMode mode = kernels::QMode::kInt8;
  // Layers whose quantizable weights total fewer elements than this stay
  // fp32: the scale/metadata overhead and accuracy risk are not worth the
  // few bytes saved. The threshold is per LAYER (all factors of a low-rank
  // layer quantize together or not at all -- the forwards assume it).
  int64_t min_numel = 1024;
};

// Fills the quantized slot of every eligible weight matrix. Returns the
// number of matrices quantized. Idempotent (re-quantizes from the fp32
// masters); throws if a master was already released by commit().
int64_t quantize_module(nn::Module& m, const QuantSpec& spec = {});

// Releases the fp32 master of every quantized weight (value becomes an
// empty tensor). The module is serving-only afterwards: taped forwards
// throw, serve::detail::freeze_and_pack skips the empty params.
void commit(nn::Module& m);

// Clears every quantized slot so forwards use the fp32 masters again.
// Throws if commit() already released a master the slot was covering.
void rollback(nn::Module& m);

// Bytes held by quantized slots (codes + scales).
int64_t quantized_bytes(nn::Module& m);
// Bytes held by fp32 params and buffers (4 * numel; released masters are 0).
int64_t fp32_bytes(nn::Module& m);
// Total resident serving footprint: quantized_bytes + fp32_bytes.
int64_t serving_bytes(nn::Module& m);

struct GateResult {
  bool accepted = false;
  double fp32_metric = 0.0;   // eval() before quantization
  double quant_metric = 0.0;  // eval() with quantized slots active
  int64_t quantized = 0;      // matrices quantized (kept even on reject)
  int64_t bytes_fp32 = 0;     // serving bytes before quantization
  int64_t bytes_quant = 0;    // serving bytes if committed
};

// Accuracy gate: evaluates `eval` (higher is better, e.g. top-1 accuracy in
// [0,1]) on the fp32 module, quantizes, evaluates again, and rolls back if
// the metric dropped by more than `eps`. On accept the slots stay set and
// the caller decides whether to commit(). The module must be in eval mode.
GateResult quantize_if(nn::Module& m, const QuantSpec& spec, double eps,
                       const std::function<double(nn::Module&)>& eval);

}  // namespace pf::quant
