#include "quant/qcheckpoint.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <vector>

#include "fault/fault.h"
#include "nn/serialize.h"

namespace pf::quant {

namespace {

// Entry kind bytes (see qcheckpoint.h header comment).
constexpr uint8_t kEntryFp32 = 0;
constexpr uint8_t kEntryInt8 = 1;
constexpr uint8_t kEntryBf16 = 2;
constexpr uint8_t kEntryDeltaLowRank = 3;

void put_u8(std::vector<char>& buf, uint8_t v) {
  buf.push_back(static_cast<char>(v));
}

void put_u64(std::vector<char>& buf, uint64_t v) {
  const char* p = reinterpret_cast<const char*>(&v);
  buf.insert(buf.end(), p, p + sizeof(v));
}

void put_bytes(std::vector<char>& buf, const void* p, size_t n) {
  const char* c = static_cast<const char*>(p);
  buf.insert(buf.end(), c, c + n);
}

void put_shape(std::vector<char>& buf, const Shape& s) {
  put_u64(buf, s.size());
  for (int64_t d : s) put_u64(buf, static_cast<uint64_t>(d));
}

struct PayloadReader {
  const char* p;
  size_t left;
  uint8_t u8() {
    if (left < 1) throw std::runtime_error("qcheckpoint: truncated payload");
    uint8_t v = static_cast<uint8_t>(*p);
    ++p;
    --left;
    return v;
  }
  uint64_t u64() {
    if (left < sizeof(uint64_t))
      throw std::runtime_error("qcheckpoint: truncated payload");
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    p += sizeof(v);
    left -= sizeof(v);
    return v;
  }
  void bytes(void* dst, size_t n) {
    if (left < n) throw std::runtime_error("qcheckpoint: truncated payload");
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
  }
  Shape shape() {
    const uint64_t dim = u64();
    if (dim > 16) throw std::runtime_error("qcheckpoint: implausible rank");
    Shape s(dim);
    for (uint64_t d = 0; d < dim; ++d) s[d] = static_cast<int64_t>(u64());
    return s;
  }
};

// The header + checksummed payload protocol shared by both artifact kinds.
void write_artifact(const std::string& path, uint8_t kind,
                    const std::vector<char>& payload) {
  nn::atomic_write(path, [&](std::ofstream& os) {
    auto wr = [&](const void* p, size_t n) {
      fault::on_write_bytes(static_cast<int64_t>(n));
      os.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    };
    const uint64_t magic = kQCheckpointMagic;
    wr(&magic, sizeof(magic));
    const char ver = static_cast<char>(kQCheckpointVersion);
    wr(&ver, 1);
    const char k = static_cast<char>(kind);
    wr(&k, 1);
    const uint64_t checksum = nn::fnv1a(payload.data(), payload.size());
    wr(&checksum, sizeof(checksum));
    const uint64_t bytes = payload.size();
    wr(&bytes, sizeof(bytes));
    wr(payload.data(), payload.size());
  });
}

std::vector<char> read_artifact(const std::string& path, uint8_t want_kind) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("qcheckpoint: cannot open " + path);
  auto rd_u64 = [&]() {
    uint64_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!is) throw std::runtime_error("qcheckpoint: unexpected end of file");
    return v;
  };
  if (rd_u64() != kQCheckpointMagic)
    throw std::runtime_error("qcheckpoint: bad magic in " + path);
  char ver = 0, kind = 0;
  is.read(&ver, 1);
  is.read(&kind, 1);
  if (!is || static_cast<uint8_t>(ver) != kQCheckpointVersion)
    throw std::runtime_error("qcheckpoint: unsupported version in " + path);
  if (static_cast<uint8_t>(kind) != want_kind)
    throw std::runtime_error("qcheckpoint: wrong artifact kind in " + path);
  const uint64_t checksum = rd_u64();
  const uint64_t bytes = rd_u64();
  std::vector<char> payload(bytes);
  is.read(payload.data(), static_cast<std::streamsize>(bytes));
  if (!is || static_cast<uint64_t>(is.gcount()) != bytes)
    throw std::runtime_error("qcheckpoint: truncated payload in " + path);
  if (nn::fnv1a(payload.data(), payload.size()) != checksum)
    throw std::runtime_error("qcheckpoint: checksum mismatch in " + path +
                             " (corrupt or truncated artifact)");
  return payload;
}

}  // namespace

void save_quantized(nn::Module& m, const std::string& path) {
  std::vector<detail::Entry> es = detail::collect_entries(m);
  std::vector<char> payload;
  put_u64(payload, es.size());
  for (const detail::Entry& e : es) {
    const kernels::QuantizedMat* q =
        (e.slot && *e.slot) ? e.slot->get() : nullptr;
    if (!q) {
      if (e.tensor->empty())
        throw std::runtime_error(
            "save_quantized: fp32 master released without a quantized slot");
      put_u8(payload, kEntryFp32);
      put_shape(payload, e.tensor->shape());
      put_bytes(payload, e.tensor->data(),
                static_cast<size_t>(e.tensor->numel()) * sizeof(float));
      continue;
    }
    const bool int8 = q->mode == kernels::QMode::kInt8;
    put_u8(payload, int8 ? kEntryInt8 : kEntryBf16);
    // The fp32 shape travels too so a mismatched architecture fails loudly
    // even when the master is already released.
    Shape s = e.tensor->empty()
                  ? (e.transpose ? Shape{e.qcols, e.qrows}
                                 : Shape{e.qrows, e.qcols})
                  : e.tensor->shape();
    put_shape(payload, s);
    put_u64(payload, static_cast<uint64_t>(q->rows));
    put_u64(payload, static_cast<uint64_t>(q->cols));
    if (int8) {
      put_bytes(payload, q->scales.data(), q->scales.size() * sizeof(float));
      put_bytes(payload, q->q.data(), q->q.size());
    } else {
      put_bytes(payload, q->b16.data(), q->b16.size() * sizeof(uint16_t));
    }
  }
  write_artifact(path, kArtifactQuantized, payload);
}

void load_quantized(nn::Module& m, const std::string& path) {
  std::vector<char> payload = read_artifact(path, kArtifactQuantized);
  PayloadReader r{payload.data(), payload.size()};
  std::vector<detail::Entry> es = detail::collect_entries(m);
  const uint64_t count = r.u64();
  if (count != es.size())
    throw std::runtime_error(
        "qcheckpoint: tensor count mismatch (file " + std::to_string(count) +
        ", model " + std::to_string(es.size()) + ")");
  for (detail::Entry& e : es) {
    const uint8_t kind = r.u8();
    const Shape shape = r.shape();
    if (kind == kEntryFp32) {
      if (shape != e.tensor->shape())
        throw std::runtime_error("qcheckpoint: shape mismatch: file " +
                                 shape_str(shape) + " vs model " +
                                 shape_str(e.tensor->shape()));
      r.bytes(e.tensor->data(),
              static_cast<size_t>(e.tensor->numel()) * sizeof(float));
      continue;
    }
    if (kind != kEntryInt8 && kind != kEntryBf16)
      throw std::runtime_error("qcheckpoint: unknown entry kind");
    if (!e.slot)
      throw std::runtime_error(
          "qcheckpoint: quantized entry for a non-quantizable tensor "
          "(architecture mismatch)");
    // A module saved AFTER commit no longer knows the fp32 shape and writes
    // the canonical 2-D storage shape instead; accept either spelling.
    const Shape storage = e.transpose ? Shape{e.qcols, e.qrows}
                                      : Shape{e.qrows, e.qcols};
    if (shape != e.tensor->shape() && shape != storage)
      throw std::runtime_error("qcheckpoint: shape mismatch: file " +
                               shape_str(shape) + " vs model " +
                               shape_str(e.tensor->shape()));
    kernels::QuantizedMat q;
    q.mode = kind == kEntryInt8 ? kernels::QMode::kInt8
                                : kernels::QMode::kBf16;
    q.rows = static_cast<int64_t>(r.u64());
    q.cols = static_cast<int64_t>(r.u64());
    if (q.rows != e.qrows || q.cols != e.qcols)
      throw std::runtime_error(
          "qcheckpoint: quantized storage shape mismatch");
    const size_t n = static_cast<size_t>(q.rows) * static_cast<size_t>(q.cols);
    if (q.mode == kernels::QMode::kInt8) {
      q.scales.resize(static_cast<size_t>(q.rows));
      r.bytes(q.scales.data(), q.scales.size() * sizeof(float));
      q.q.resize(n);
      r.bytes(q.q.data(), n);
    } else {
      q.b16.resize(n);
      r.bytes(q.b16.data(), n * sizeof(uint16_t));
    }
    *e.slot = std::make_shared<const kernels::QuantizedMat>(std::move(q));
    // Same state as quant::commit: the slot serves, the master is gone.
    e.param->var->value = Tensor();
    e.param->var->requires_grad = false;
  }
}

void save_delta(const DeltaModel& d, const std::string& path) {
  std::vector<char> payload;
  put_u64(payload, d.entries.size());
  for (const DeltaEntry& e : d.entries) {
    put_u8(payload, e.lowrank ? kEntryDeltaLowRank : kEntryFp32);
    put_shape(payload, e.shape);
    if (e.lowrank) {
      put_u64(payload, static_cast<uint64_t>(e.u.size(1)));
      put_bytes(payload, e.u.data(),
                static_cast<size_t>(e.u.numel()) * sizeof(float));
      put_bytes(payload, e.v.data(),
                static_cast<size_t>(e.v.numel()) * sizeof(float));
    } else {
      put_bytes(payload, e.dense.data(),
                static_cast<size_t>(e.dense.numel()) * sizeof(float));
    }
  }
  write_artifact(path, kArtifactDelta, payload);
}

DeltaModel load_delta(const std::string& path) {
  std::vector<char> payload = read_artifact(path, kArtifactDelta);
  PayloadReader r{payload.data(), payload.size()};
  DeltaModel d;
  const uint64_t count = r.u64();
  d.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DeltaEntry e;
    const uint8_t kind = r.u8();
    e.shape = r.shape();
    const int64_t numel = shape_numel(e.shape);
    if (kind == kEntryDeltaLowRank) {
      e.lowrank = true;
      const int64_t rows = e.shape.empty() ? 1 : e.shape[0];
      const int64_t cols = rows > 0 ? numel / rows : 0;
      const int64_t rank = static_cast<int64_t>(r.u64());
      if (rank < 1 || rank > std::min(rows, cols))
        throw std::runtime_error("qcheckpoint: implausible delta rank");
      e.u = Tensor::uninit(Shape{rows, rank});
      e.v = Tensor::uninit(Shape{cols, rank});
      r.bytes(e.u.data(), static_cast<size_t>(e.u.numel()) * sizeof(float));
      r.bytes(e.v.data(), static_cast<size_t>(e.v.numel()) * sizeof(float));
    } else if (kind == kEntryFp32) {
      e.dense = Tensor::uninit(e.shape);
      r.bytes(e.dense.data(), static_cast<size_t>(numel) * sizeof(float));
    } else {
      throw std::runtime_error("qcheckpoint: unknown delta entry kind");
    }
    d.entries.push_back(std::move(e));
  }
  return d;
}

int64_t file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw std::runtime_error("qcheckpoint: cannot open " + path);
  return static_cast<int64_t>(is.tellg());
}

}  // namespace pf::quant
