#include "quant/delta.h"

#include <algorithm>
#include <stdexcept>

#include "core/factorize.h"
#include "kernels/kernels.h"

namespace pf::quant {

int64_t DeltaModel::bytes() const {
  int64_t floats = 0;
  for (const DeltaEntry& e : entries)
    floats += e.lowrank ? e.u.numel() + e.v.numel() : e.dense.numel();
  return floats * static_cast<int64_t>(sizeof(float));
}

int64_t DeltaModel::lowrank_entries() const {
  int64_t n = 0;
  for (const DeltaEntry& e : entries) n += e.lowrank ? 1 : 0;
  return n;
}

DeltaModel compute_delta(nn::Module& base, nn::Module& variant,
                         const DeltaSpec& spec) {
  std::vector<detail::Entry> be = detail::collect_entries(base);
  std::vector<detail::Entry> ve = detail::collect_entries(variant);
  if (be.size() != ve.size())
    throw std::runtime_error("compute_delta: module trees differ in size");

  Rng rng(spec.seed);
  DeltaModel out;
  out.entries.reserve(be.size());
  for (size_t i = 0; i < be.size(); ++i) {
    const Tensor& wb = *be[i].tensor;
    const Tensor& wv = *ve[i].tensor;
    if (wb.shape() != wv.shape())
      throw std::runtime_error("compute_delta: tensor shape mismatch at " +
                               std::to_string(i));
    DeltaEntry e;
    e.shape = wb.shape();
    Tensor r = sub(wv, wb);
    const int64_t n = r.numel();
    if (n >= spec.min_numel && r.dim() >= 2) {
      // Factorize the 2-D view (size0, numel/size0) -- the same convention
      // quantization and the conv unrolling use.
      const int64_t rows = r.size(0), cols = n / r.size(0);
      Tensor r2 = r.reshape(Shape{rows, cols});
      int64_t rank = core::choose_rank_for_energy(r2, spec.energy);
      if (spec.max_rank > 0) rank = std::min(rank, spec.max_rank);
      if (rank * (rows + cols) < rows * cols) {
        core::FactorPair f = core::factorize_matrix(r2, rank, rng);
        e.lowrank = true;
        e.u = std::move(f.u);
        e.v = std::move(f.v);
        out.entries.push_back(std::move(e));
        continue;
      }
    }
    e.dense = std::move(r);
    out.entries.push_back(std::move(e));
  }
  return out;
}

void apply_delta(nn::Module& m, const DeltaModel& d) {
  std::vector<detail::Entry> es = detail::collect_entries(m);
  if (es.size() != d.entries.size())
    throw std::runtime_error("apply_delta: entry count mismatch (delta " +
                             std::to_string(d.entries.size()) + ", model " +
                             std::to_string(es.size()) + ")");
  for (size_t i = 0; i < es.size(); ++i) {
    Tensor& w = *es[i].tensor;
    const DeltaEntry& e = d.entries[i];
    if (w.shape() != e.shape)
      throw std::runtime_error("apply_delta: shape mismatch at " +
                               std::to_string(i));
    if (w.empty())
      throw std::runtime_error(
          "apply_delta: target master is released (apply before quantizing)");
    if (!e.lowrank) {
      w.add_(e.dense);
      continue;
    }
    const int64_t rows = e.u.size(0), rank = e.u.size(1), cols = e.v.size(0);
    Tensor rec(Shape{rows, cols});  // zero-filled: gemm_nt contract
    kernels::active().gemm_nt(e.u.data(), e.v.data(), rec.data(), rows, rank,
                              cols);
    w.add_(rec.reshape(e.shape));
  }
}

}  // namespace pf::quant
