// Internal slot registry shared by quantize.cc, delta.cc and qcheckpoint.cc.
//
// Walks a module tree in the exact order nn/serialize.cc's collect() uses
// (per module: params, then buffers, then children, depth-first) and
// annotates each tensor with the owning layer's quantized-weight slot when
// the tensor is a quantizable weight matrix. Keeping one registry guarantees
// that quantization, delta compression and the v2 checkpoint format all
// agree on which tensor maps to which slot.
#pragma once

#include <vector>

#include "nn/lstm.h"

namespace pf::quant::detail {

// One serializable tensor in checkpoint order.
struct Entry {
  Tensor* tensor = nullptr;     // fp32 master (param value or buffer)
  nn::Param* param = nullptr;   // null for buffers
  nn::QWeight* slot = nullptr;  // layer slot; null = never quantized
  const void* owner = nullptr;  // owning layer, when slot != null. The
                                // forward fast paths check ONE slot per
                                // layer, so quantization must be
                                // all-or-nothing per owner group.
  int64_t qrows = 0;            // quantized storage shape (scales per qrow)
  int64_t qcols = 0;
  bool transpose = false;  // stored transposed vs the fp32 master (V factors)
};

std::vector<Entry> collect_entries(nn::Module& m);

// The fp32 master materialized in the (qrows, qcols) quantized storage
// layout (2-D reshape, transposed for V factors).
Tensor storage_view(const Entry& e);

}  // namespace pf::quant::detail
