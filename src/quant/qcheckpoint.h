// Checkpoint format v2 ("PUFFCKP3"): quantized-model artifacts and
// delta-compressed variant artifacts.
//
// Layout (shared by both artifact kinds):
//   magic u64 | format version byte (2) | artifact kind byte |
//   payload checksum u64 (FNV-1a) | payload bytes u64 | payload
//
// Quantized-model payload: count | per tensor (checkpoint collect order):
//   entry kind byte (0 fp32, 1 int8, 2 bf16) | dim | shape dims |
//   fp32: float data
//   int8: qrows, qcols, per-row scales (f32), codes (int8)
//   bf16: qrows, qcols, codes (u16)
//
// Delta payload: count | per tensor:
//   entry kind byte (0 dense, 3 delta-lowrank) | dim | shape dims |
//   dense: float residual
//   lowrank: rank | U floats (rows*rank) | V floats (cols*rank)
//
// Writes reuse nn::atomic_write (tmp + rename crash safety) and route every
// byte through fault::on_write_bytes so the torn-write tests cover v2 the
// same way they cover v0/v1. Loads verify magic, version, kind, checksum
// and per-tensor shapes before touching the module.
#pragma once

#include <string>

#include "quant/delta.h"

namespace pf::quant {

inline constexpr uint64_t kQCheckpointMagic = 0x50554646434B5033ull;
inline constexpr uint8_t kQCheckpointVersion = 2;
inline constexpr uint8_t kArtifactQuantized = 0;
inline constexpr uint8_t kArtifactDelta = 1;

// Saves the module: tensors with an active quantized slot are written as
// codes + scales, everything else (biases, norms, buffers, non-quantized
// weights) as fp32. Works before or after quant::commit.
void save_quantized(nn::Module& m, const std::string& path);

// Loads a v2 quantized checkpoint into a structurally identical fresh
// module: fp32 entries load in place, quantized entries set the layer slots
// and release the fp32 masters (the module comes back serving-only, exactly
// as after quant::commit).
void load_quantized(nn::Module& m, const std::string& path);

void save_delta(const DeltaModel& d, const std::string& path);
DeltaModel load_delta(const std::string& path);

// On-disk artifact size (what the models-per-GB accounting charges).
int64_t file_bytes(const std::string& path);

}  // namespace pf::quant
