// Singular value decomposition and friends, built from scratch.
//
// Pufferfish needs one truncated SVD per layer, once per training run
// (Algorithm 1). The layers it factorizes unroll to (c_in*k^2, c_out)
// matrices whose *smaller* dimension is at most a couple thousand, so the
// Gram-matrix route (eigendecompose A^T A with cyclic Jacobi, back-project)
// is exact to float tolerance and avoids a full bidiagonalization. A
// randomized range-finder SVD is provided for the very large matrices
// (e.g. the LSTM's 6000x1500 blocks) and is what `truncated_svd` dispatches
// to above a size threshold. PowerSGD's orthonormalization reuses the
// Gram-Schmidt QR here.
#pragma once

#include <cstdint>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace pf::linalg {

struct EigResult {
  Tensor values;   // (n), descending
  Tensor vectors;  // (n, n), columns are eigenvectors
};

// Cyclic Jacobi eigendecomposition of a symmetric matrix.
// Iterates sweeps until off-diagonal Frobenius mass is below tol.
EigResult jacobi_eigh(const Tensor& a, int max_sweeps = 64,
                      double tol = 1e-12);

// Householder tridiagonalization + implicit-QL eigendecomposition
// (tred2/tqli). O(n^3) with vectorizable inner loops -- much faster than
// Jacobi for the Gram matrices the big layers produce; same contract.
EigResult tridiag_eigh(const Tensor& a);

// Dispatches to jacobi (small) or tridiag (large) -- what gram_svd uses.
EigResult eigh(const Tensor& a);

struct SvdResult {
  Tensor u;  // (m, r)
  Tensor s;  // (r), descending, non-negative
  Tensor v;  // (n, r); A ~= U diag(s) V^T
};

// Exact (to fp tolerance) SVD via the Gram matrix of the smaller side.
// rank <= min(m, n); rank <= 0 means full min(m, n).
SvdResult gram_svd(const Tensor& a, int64_t rank = -1);

// Randomized truncated SVD (Halko et al.): Gaussian range finder with
// `power_iters` subspace iterations and `oversample` extra columns.
// rank <= 0 means full min(m, n), matching gram_svd.
SvdResult randomized_svd(const Tensor& a, int64_t rank, Rng& rng,
                         int64_t oversample = 8, int power_iters = 1);

// Dispatches to gram_svd for small problems and randomized_svd for large.
SvdResult truncated_svd(const Tensor& a, int64_t rank, Rng& rng);

// Reconstruct U diag(s) V^T.
Tensor svd_reconstruct(const SvdResult& r);

// In-place Gram-Schmidt orthonormalization of the columns of m (rows x cols,
// cols <= rows). Degenerate columns are replaced with deterministic unit
// vectors so the result always has orthonormal columns. Used by PowerSGD.
void orthonormalize_columns(Tensor& m);

// Frobenius norm of (a - b).
float frobenius_diff(const Tensor& a, const Tensor& b);

}  // namespace pf::linalg
