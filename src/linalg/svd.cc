#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "tensor/matmul.h"

namespace pf::linalg {

namespace {

void check(bool cond, const char* msg) {
  if (!cond) throw std::runtime_error(msg);
}

}  // namespace

EigResult jacobi_eigh(const Tensor& a, int max_sweeps, double tol) {
  check(a.dim() == 2 && a.size(0) == a.size(1), "jacobi_eigh: square matrix");
  const int64_t n = a.size(0);
  // Work in double internally: Jacobi rotations accumulate rounding error and
  // the singular values feed sqrt() later.
  std::vector<double> m(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n * n; ++i) m[static_cast<size_t>(i)] = a[i];
  std::vector<double> v(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) v[static_cast<size_t>(i * n + i)] = 1.0;

  auto off_norm = [&]() {
    double acc = 0;
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = i + 1; j < n; ++j) {
        const double x = m[static_cast<size_t>(i * n + j)];
        acc += 2 * x * x;
      }
    return std::sqrt(acc);
  };
  const double scale = std::max(1e-300, std::sqrt([&] {
    double acc = 0;
    for (double x : m) acc += x * x;
    return acc;
  }()));

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_norm() <= tol * scale) break;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = m[static_cast<size_t>(p * n + q)];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = m[static_cast<size_t>(p * n + p)];
        const double aqq = m[static_cast<size_t>(q * n + q)];
        const double theta = (aqq - app) / (2 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1));
        const double c = 1.0 / std::sqrt(t * t + 1);
        const double s = t * c;
        // Rotate rows/cols p and q of m.
        for (int64_t k = 0; k < n; ++k) {
          const double mkp = m[static_cast<size_t>(k * n + p)];
          const double mkq = m[static_cast<size_t>(k * n + q)];
          m[static_cast<size_t>(k * n + p)] = c * mkp - s * mkq;
          m[static_cast<size_t>(k * n + q)] = s * mkp + c * mkq;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double mpk = m[static_cast<size_t>(p * n + k)];
          const double mqk = m[static_cast<size_t>(q * n + k)];
          m[static_cast<size_t>(p * n + k)] = c * mpk - s * mqk;
          m[static_cast<size_t>(q * n + k)] = s * mpk + c * mqk;
        }
        // Accumulate eigenvectors.
        for (int64_t k = 0; k < n; ++k) {
          const double vkp = v[static_cast<size_t>(k * n + p)];
          const double vkq = v[static_cast<size_t>(k * n + q)];
          v[static_cast<size_t>(k * n + p)] = c * vkp - s * vkq;
          v[static_cast<size_t>(k * n + q)] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort by descending eigenvalue.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return m[static_cast<size_t>(x * n + x)] > m[static_cast<size_t>(y * n + y)];
  });
  EigResult r{Tensor(Shape{n}), Tensor(Shape{n, n})};
  for (int64_t i = 0; i < n; ++i) {
    const int64_t src = order[static_cast<size_t>(i)];
    r.values[i] = static_cast<float>(m[static_cast<size_t>(src * n + src)]);
    for (int64_t k = 0; k < n; ++k)
      r.vectors[k * n + i] =
          static_cast<float>(v[static_cast<size_t>(k * n + src)]);
  }
  return r;
}

EigResult tridiag_eigh(const Tensor& a) {
  check(a.dim() == 2 && a.size(0) == a.size(1), "tridiag_eigh: square");
  const int64_t n = a.size(0);
  // z starts as a copy of A (double); tred2 overwrites it with the
  // accumulated orthogonal transform.
  std::vector<double> z(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n * n; ++i) z[static_cast<size_t>(i)] = a[i];
  std::vector<double> d(static_cast<size_t>(n), 0.0);
  std::vector<double> e(static_cast<size_t>(n), 0.0);
  auto Z = [&](int64_t r, int64_t c) -> double& {
    return z[static_cast<size_t>(r * n + c)];
  };

  // --- Householder reduction to tridiagonal form (tred2). ---
  for (int64_t i = n - 1; i > 0; --i) {
    const int64_t l = i - 1;
    double h = 0, scale = 0;
    if (l > 0) {
      for (int64_t k = 0; k <= l; ++k) scale += std::fabs(Z(i, k));
      if (scale == 0.0) {
        e[static_cast<size_t>(i)] = Z(i, l);
      } else {
        for (int64_t k = 0; k <= l; ++k) {
          Z(i, k) /= scale;
          h += Z(i, k) * Z(i, k);
        }
        double f = Z(i, l);
        double g = f >= 0 ? -std::sqrt(h) : std::sqrt(h);
        e[static_cast<size_t>(i)] = scale * g;
        h -= f * g;
        Z(i, l) = f - g;
        f = 0;
        for (int64_t j = 0; j <= l; ++j) {
          Z(j, i) = Z(i, j) / h;
          g = 0;
          for (int64_t k = 0; k <= j; ++k) g += Z(j, k) * Z(i, k);
          for (int64_t k = j + 1; k <= l; ++k) g += Z(k, j) * Z(i, k);
          e[static_cast<size_t>(j)] = g / h;
          f += e[static_cast<size_t>(j)] * Z(i, j);
        }
        const double hh = f / (h + h);
        for (int64_t j = 0; j <= l; ++j) {
          f = Z(i, j);
          e[static_cast<size_t>(j)] = g = e[static_cast<size_t>(j)] - hh * f;
          for (int64_t k = 0; k <= j; ++k)
            Z(j, k) -= f * e[static_cast<size_t>(k)] + g * Z(i, k);
        }
      }
    } else {
      e[static_cast<size_t>(i)] = Z(i, l);
    }
    d[static_cast<size_t>(i)] = h;
  }
  d[0] = 0;
  e[0] = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (d[static_cast<size_t>(i)] != 0.0) {
      for (int64_t j = 0; j < i; ++j) {
        double g = 0;
        for (int64_t k = 0; k < i; ++k) g += Z(i, k) * Z(k, j);
        for (int64_t k = 0; k < i; ++k) Z(k, j) -= g * Z(k, i);
      }
    }
    d[static_cast<size_t>(i)] = Z(i, i);
    Z(i, i) = 1.0;
    for (int64_t j = 0; j < i; ++j) {
      Z(j, i) = 0.0;
      Z(i, j) = 0.0;
    }
  }

  // --- Implicit-shift QL on the tridiagonal (tqli). ---
  for (int64_t i = 1; i < n; ++i)
    e[static_cast<size_t>(i - 1)] = e[static_cast<size_t>(i)];
  e[static_cast<size_t>(n - 1)] = 0.0;
  auto pythag = [](double x, double y) {
    const double ax = std::fabs(x), ay = std::fabs(y);
    if (ax > ay) {
      const double r = ay / ax;
      return ax * std::sqrt(1.0 + r * r);
    }
    if (ay == 0.0) return 0.0;
    const double r = ax / ay;
    return ay * std::sqrt(1.0 + r * r);
  };
  for (int64_t l = 0; l < n; ++l) {
    int iter = 0;
    int64_t m;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::fabs(d[static_cast<size_t>(m)]) +
                          std::fabs(d[static_cast<size_t>(m + 1)]);
        if (std::fabs(e[static_cast<size_t>(m)]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        if (++iter == 60)
          throw std::runtime_error("tridiag_eigh: too many QL iterations");
        double g = (d[static_cast<size_t>(l + 1)] - d[static_cast<size_t>(l)]) /
                   (2.0 * e[static_cast<size_t>(l)]);
        double r = pythag(g, 1.0);
        g = d[static_cast<size_t>(m)] - d[static_cast<size_t>(l)] +
            e[static_cast<size_t>(l)] /
                (g + (g >= 0 ? std::fabs(r) : -std::fabs(r)));
        double s = 1.0, c = 1.0, p = 0.0;
        for (int64_t i = m - 1; i >= l; --i) {
          double f = s * e[static_cast<size_t>(i)];
          const double b = c * e[static_cast<size_t>(i)];
          r = pythag(f, g);
          e[static_cast<size_t>(i + 1)] = r;
          if (r == 0.0) {
            d[static_cast<size_t>(i + 1)] -= p;
            e[static_cast<size_t>(m)] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[static_cast<size_t>(i + 1)] - p;
          r = (d[static_cast<size_t>(i)] - g) * s + 2.0 * c * b;
          p = s * r;
          d[static_cast<size_t>(i + 1)] = g + p;
          g = c * r - b;
          for (int64_t k = 0; k < n; ++k) {
            f = Z(k, i + 1);
            Z(k, i + 1) = s * Z(k, i) + c * f;
            Z(k, i) = c * Z(k, i) - s * f;
          }
        }
        if (r == 0.0 && m - 1 >= l) continue;
        d[static_cast<size_t>(l)] -= p;
        e[static_cast<size_t>(l)] = g;
        e[static_cast<size_t>(m)] = 0.0;
      }
    } while (m != l);
  }

  // Sort descending and emit float tensors.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return d[static_cast<size_t>(x)] > d[static_cast<size_t>(y)];
  });
  EigResult r{Tensor(Shape{n}), Tensor(Shape{n, n})};
  for (int64_t i = 0; i < n; ++i) {
    const int64_t src = order[static_cast<size_t>(i)];
    r.values[i] = static_cast<float>(d[static_cast<size_t>(src)]);
    for (int64_t k = 0; k < n; ++k)
      r.vectors[k * n + i] = static_cast<float>(Z(k, src));
  }
  return r;
}

EigResult eigh(const Tensor& a) {
  // Jacobi is more accurate for tiny matrices and has no convergence edge
  // cases; tred2/tqli wins decisively past ~96.
  return a.size(0) <= 96 ? jacobi_eigh(a) : tridiag_eigh(a);
}

SvdResult gram_svd(const Tensor& a, int64_t rank) {
  check(a.dim() == 2, "gram_svd: 2-D matrix required");
  const int64_t m = a.size(0), n = a.size(1);
  const int64_t full = std::min(m, n);
  if (rank <= 0 || rank > full) rank = full;

  const bool tall = m >= n;
  // Work with G = A^T A (n x n) if tall, else G = A A^T (m x m).
  Tensor g = tall ? matmul_tn(a, a) : matmul_nt(a, a);
  EigResult eig = eigh(g);

  SvdResult out;
  out.s = Tensor::uninit(Shape{rank});
  float* sp = out.s.data();
  std::vector<float> sigma(static_cast<size_t>(rank));
  const Tensor& evals = eig.values;
  for (int64_t i = 0; i < rank; ++i) {
    const float lam = std::max(0.0f, evals[i]);
    sigma[static_cast<size_t>(i)] = std::sqrt(lam);
    sp[i] = sigma[static_cast<size_t>(i)];
  }

  // Right (or left) factor: leading eigenvectors.
  Tensor small = Tensor::uninit(Shape{tall ? n : m, rank});
  const Tensor& evecs = eig.vectors;
  const float* evp = evecs.data();
  float* smp = small.data();
  for (int64_t i = 0; i < small.size(0); ++i)
    for (int64_t j = 0; j < rank; ++j)
      smp[i * rank + j] = evp[i * (tall ? n : m) + j];

  // Back-project the other factor: U = A V / sigma (tall) or V = A^T U / sigma.
  Tensor big = tall ? matmul(a, small) : matmul_tn(a, small);
  float* bigp = big.data();
  const int64_t brows = big.size(0);
  for (int64_t j = 0; j < rank; ++j) {
    const float s = sigma[static_cast<size_t>(j)];
    if (s > 1e-12f) {
      const float inv = 1.0f / s;
      for (int64_t i = 0; i < brows; ++i) bigp[i * rank + j] *= inv;
    } else {
      // Null direction: emit a deterministic unit vector (contribution to the
      // reconstruction is zero anyway because sigma ~ 0).
      for (int64_t i = 0; i < brows; ++i)
        bigp[i * rank + j] = (i == j % brows) ? 1.0f : 0.0f;
    }
  }

  if (tall) {
    out.u = std::move(big);
    out.v = std::move(small);
  } else {
    out.u = std::move(small);
    out.v = std::move(big);
  }
  return out;
}

SvdResult randomized_svd(const Tensor& a, int64_t rank, Rng& rng,
                         int64_t oversample, int power_iters) {
  check(a.dim() == 2, "randomized_svd: 2-D matrix required");
  const int64_t m = a.size(0), n = a.size(1);
  const int64_t full = std::min(m, n);
  // Same clamp as gram_svd: rank <= 0 means "full rank", and it also guards
  // the sketch width below -- an unclamped rank <= 0 would request a
  // zero/negative-column Omega.
  if (rank <= 0 || rank > full) rank = full;
  const int64_t l = std::min(rank + oversample, full);

  // Range finder: Y = A * Omega, orthonormalize; power iterations sharpen the
  // spectrum for slowly decaying singular values.
  Tensor omega = rng.randn(Shape{n, l});
  Tensor q = matmul(a, omega);
  orthonormalize_columns(q);
  for (int p = 0; p < power_iters; ++p) {
    Tensor z = matmul_tn(a, q);  // (n, l)
    orthonormalize_columns(z);
    q = matmul(a, z);
    orthonormalize_columns(q);
  }

  // Project: B = Q^T A is (l, n); its SVD gives the top singular triplets.
  Tensor b = matmul_tn(q, a);
  SvdResult sb = gram_svd(b, rank);
  SvdResult out;
  out.u = matmul(q, sb.u);  // (m, rank)
  out.s = std::move(sb.s);
  out.v = std::move(sb.v);
  return out;
}

SvdResult truncated_svd(const Tensor& a, int64_t rank, Rng& rng) {
  const int64_t small_side = std::min(a.size(0), a.size(1));
  // Jacobi on the Gram matrix is O(small^3) per sweep, so past ~300 the
  // randomized range finder is much faster whenever the requested rank
  // leaves room for oversampling; otherwise fall back to the exact path.
  if (small_side <= 300 || rank + 16 >= small_side) return gram_svd(a, rank);
  return randomized_svd(a, rank, rng);
}

Tensor svd_reconstruct(const SvdResult& r) {
  const int64_t rank = r.s.numel();
  Tensor us = r.u;        // scale columns of U by s
  float* usp = us.data();  // unshares from r.u once, not per element
  const float* sp = r.s.data();
  for (int64_t i = 0; i < us.size(0); ++i)
    for (int64_t j = 0; j < rank; ++j) usp[i * rank + j] *= sp[j];
  return matmul_nt(us, r.v);
}

namespace {

// Gram-Schmidt over the ROWS of a (k, n) row-major matrix: contiguous dot
// products and AXPYs, which is why orthonormalize_columns transposes first.
void orthonormalize_rows(float* data, int64_t k, int64_t n) {
  for (int64_t j = 0; j < k; ++j) {
    float* row_j = data + j * n;
    // Two passes of classical Gram-Schmidt ("twice is enough").
    for (int pass = 0; pass < 2; ++pass) {
      for (int64_t r = 0; r < j; ++r) {
        const float* row_r = data + r * n;
        double dot = 0;
        for (int64_t i = 0; i < n; ++i)
          dot += static_cast<double>(row_j[i]) * row_r[i];
        const float d = static_cast<float>(dot);
        for (int64_t i = 0; i < n; ++i) row_j[i] -= d * row_r[i];
      }
    }
    double nrm = 0;
    for (int64_t i = 0; i < n; ++i)
      nrm += static_cast<double>(row_j[i]) * row_j[i];
    nrm = std::sqrt(nrm);
    if (nrm > 1e-10) {
      const float inv = static_cast<float>(1.0 / nrm);
      for (int64_t i = 0; i < n; ++i) row_j[i] *= inv;
    } else {
      // Degenerate row: substitute a canonical basis vector and
      // re-orthogonalize it against the previous rows.
      for (int64_t i = 0; i < n; ++i) row_j[i] = (i == j % n) ? 1.0f : 0.0f;
      for (int64_t r = 0; r < j; ++r) {
        const float* row_r = data + r * n;
        double dot = 0;
        for (int64_t i = 0; i < n; ++i)
          dot += static_cast<double>(row_j[i]) * row_r[i];
        const float d = static_cast<float>(dot);
        for (int64_t i = 0; i < n; ++i) row_j[i] -= d * row_r[i];
      }
      double n2 = 0;
      for (int64_t i = 0; i < n; ++i)
        n2 += static_cast<double>(row_j[i]) * row_j[i];
      n2 = std::max(n2, 1e-30);
      const float inv = static_cast<float>(1.0 / std::sqrt(n2));
      for (int64_t i = 0; i < n; ++i) row_j[i] *= inv;
    }
  }
}

}  // namespace

void orthonormalize_columns(Tensor& m) {
  check(m.dim() == 2, "orthonormalize_columns: 2-D matrix required");
  // Transpose so each vector is a contiguous row, orthonormalize, transpose
  // back: two copies buy cache-friendly inner loops.
  Tensor mt = m.t();
  orthonormalize_rows(mt.data(), mt.size(0), mt.size(1));
  m = mt.t();
}

float frobenius_diff(const Tensor& a, const Tensor& b) {
  check(a.shape() == b.shape(), "frobenius_diff: shape mismatch");
  double acc = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc));
}

}  // namespace pf::linalg
