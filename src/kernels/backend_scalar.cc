// The reference backend: the seed triple-loop kernels, expressed through the
// shared gemm_panel driver. Bitwise-identical to pre-refactor pf::matmul*
// for every shape and PF_THREADS setting -- golden tests and convergence
// gates are defined against this backend.
#include "kernels/gemm_panels.h"
#include "kernels/kernels.h"
#include "runtime/thread_pool.h"

namespace pf::kernels {

namespace {

class ScalarBackend final : public Backend {
 public:
  const char* name() const override { return "scalar"; }

  void gemm_nn(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) const override {
    runtime::parallel_for(0, m, row_grain(k, n), [=](int64_t r0, int64_t r1) {
      gemm_panel<Trans::N, Trans::N>(a + r0 * k, k, b, n, c + r0 * n, n,
                                     r1 - r0, k, n);
    });
  }

  void gemm_tn(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) const override {
    // a is stored (k, m): chunk r0's panel starts at column r0, ld m.
    runtime::parallel_for(0, m, row_grain(k, n), [=](int64_t r0, int64_t r1) {
      gemm_panel<Trans::T, Trans::N>(a + r0, m, b, n, c + r0 * n, n, r1 - r0,
                                     k, n);
    });
  }

  void gemm_nt(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) const override {
    // b is stored (n, k); the panel overwrites c rows (seed semantics).
    runtime::parallel_for(0, m, row_grain(k, n), [=](int64_t r0, int64_t r1) {
      gemm_panel<Trans::N, Trans::T>(a + r0 * k, k, b, k, c + r0 * n, n,
                                     r1 - r0, k, n);
    });
  }
};

}  // namespace

namespace detail {

const Backend* scalar_backend_ptr() {
  static ScalarBackend backend;
  return &backend;
}

}  // namespace detail

}  // namespace pf::kernels
