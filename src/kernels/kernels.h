// Pluggable kernel backends with runtime dispatch.
//
// Every heavy-math entry point in the repo (matmul/bmm wrappers, im2col
// convolution lowering, the fused low-rank forward) bottoms out in a
// pf::kernels::Backend. Two backends exist:
//
//  * "scalar" -- the reference backend: the seed triple-loop kernels,
//    bit-for-bit. Golden values, convergence gates, and cross-run
//    reproducibility are defined against it.
//  * "avx2"   -- a cache-blocked, register-tiled, operand-packing AVX2+FMA
//    GEMM (backend_avx2.cc). Only registered when the compiler can target
//    AVX2 *and* the host CPU reports avx2+fma at runtime.
//
// Selection: PF_BACKEND=scalar|avx2|auto (default auto = avx2 when
// available, else scalar), read once on first use; set_backend() overrides
// at any point. Determinism contract, in tiers:
//  * within a backend, results are bitwise identical across PF_THREADS --
//    mandatory, tested;
//  * across backends, results agree to a per-op ulp tolerance (different
//    accumulation orders), gated by the kernels_test tolerance tier.
#pragma once

#include <cstdint>

#include "tensor/im2col.h"
#include "tensor/tensor.h"

namespace pf::kernels {

// Weight quantization modes (qmat.h holds the owning QuantizedMat type).
enum class QMode : uint8_t { kInt8 = 0, kBf16 = 1 };

// Non-owning view of one quantized operand. Exactly one of `q` (int8 codes,
// with `scales` holding one fp32 scale per stored row) or `b16` (bf16 bit
// patterns, no scales) is non-null. The stored-row axis is always the
// non-contracted axis of the GEMM the view feeds.
struct QView {
  const int8_t* q = nullptr;
  const uint16_t* b16 = nullptr;
  const float* scales = nullptr;
};

// A kernel implementation. GEMM methods take tightly-packed row-major
// operands (lda == k etc.); they parallelize internally over output rows via
// runtime::parallel_for, so callers invoke them once per logical GEMM, not
// once per row chunk.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual const char* name() const = 0;

  // c[m,n] += a[m,k] @ b[k,n].
  virtual void gemm_nn(const float* a, const float* b, float* c, int64_t m,
                       int64_t k, int64_t n) const = 0;
  // c[m,n] += a[k,m]^T @ b[k,n].
  virtual void gemm_tn(const float* a, const float* b, float* c, int64_t m,
                       int64_t k, int64_t n) const = 0;
  // c[m,n] <- a[m,k] @ b[n,k]^T over a zero-filled c. The scalar backend
  // overwrites c (seed semantics, preserving +0/-0 bits); the avx2 backend
  // accumulates. Callers must pass a zeroed c.
  virtual void gemm_nt(const float* a, const float* b, float* c, int64_t m,
                       int64_t k, int64_t n) const = 0;

  // Convolution lowering. The defaults are the seed scalar loops
  // (kernels.cc); a backend may override with a vectorized copy. Layout and
  // zero-padding semantics are fixed by tensor/im2col.h.
  virtual void im2col(const float* img, const ConvGeom& g, float* col) const;
  virtual void col2im(const float* col, const ConvGeom& g, float* img) const;

  // Quantized-weight GEMMs (the serving dequant-GEMM path; see qmat.h for
  // the layout contract). Defaults dequantize the quantized operand into
  // pooled scratch and call this backend's own float GEMM -- the reference
  // semantics every fused override must match bit-for-bit.
  //
  // c[m,n] <- a[m,k] @ qb^T where qb is stored (n, k) with per-n scales.
  // Same zero-filled-c contract as gemm_nt.
  virtual void gemm_nt_q(const float* a, const QView& b, float* c, int64_t m,
                         int64_t k, int64_t n) const;
  // c[m,n] += qa @ b[k,n] where qa is stored (m, k) with per-m scales.
  virtual void gemm_qa_nn(const QView& a, const float* b, float* c, int64_t m,
                          int64_t k, int64_t n) const;
};

// The active backend (resolves PF_BACKEND on first call; thread-safe).
const Backend& active();
const char* backend_name();  // == active().name()

// Select a backend by name: "scalar", "avx2", or "auto". Returns false (and
// leaves the active backend unchanged) when the request names an unknown or
// unavailable backend. Intended for tests, benches, and calibration; not
// synchronized against concurrently running kernels.
bool set_backend(const char* name);

// Compile-time / runtime AVX2 availability, split so tests can
// skip-with-message precisely.
bool avx2_compiled();   // translation units carry the AVX2 microkernel
bool avx2_supported();  // ...and this CPU can execute it

// Fused low-rank forward: y[m,out] = (x[m,in] @ v[in,r]) @ u[out,r]^T,
// computed in row blocks so the (rows, r) intermediate stays cache-resident
// instead of materializing a full (m, r) tensor. When `t_out` is non-null
// the intermediate IS materialized there (shape (m, r)) for the backward
// pass; the fused path is then purely a fusion of the two kernel launches.
// Bitwise-identical to matmul(x, v) followed by matmul_nt(t, u) under the
// scalar backend (row-independent chunking, same per-element orders).
Tensor lowrank_matmul(const Tensor& x, const Tensor& v, const Tensor& u,
                      Tensor* t_out = nullptr);

namespace detail {
// Defined in backend_scalar.cc / backend_avx2.cc. avx2_backend_or_null()
// returns nullptr when the microkernel was compiled out or the CPU lacks
// avx2/fma.
const Backend* scalar_backend_ptr();
const Backend* avx2_backend_or_null();
bool avx2_compiled_in();
}  // namespace detail

}  // namespace pf::kernels
