// The single templated micro-panel GEMM driver behind every scalar-path
// kernel in the repo.
//
// Before the kernel-backend refactor, src/tensor/matmul.cc carried six
// copy-pasted triple loops (matmul / matmul_tn / matmul_nt and their bmm_*
// twins). They collapse to the three `if constexpr` bodies below, shared by
// the 2-D wrappers, the batched wrappers, and the scalar Backend -- and each
// body keeps the *exact* accumulation order of the seed loops, so the scalar
// backend stays bitwise identical to pre-refactor training.
//
// Operands are addressed through a leading dimension so callers can hand the
// driver a row chunk of a larger matrix (the parallel runtime partitions
// GEMMs over output rows; see backend_scalar.cc).
#pragma once

#include <algorithm>
#include <cstdint>

namespace pf::kernels {

// Memory layout of a GEMM operand: N = row-major (rows, cols) with element
// (r, c) at [r * ld + c]; T = stored transposed, element (r, c) at
// [c * ld + r].
enum class Trans { N, T };

// Cache-block extents of the blocked-ikj (N, N) body. Blocking only affects
// locality, never results: each output element accumulates in ascending-k
// order regardless of the block walk.
inline constexpr int64_t kBlockK = 128;
inline constexpr int64_t kBlockN = 256;

// Rows per parallel chunk: target ~256k multiply-adds per chunk so small
// GEMMs stay on the calling thread, with a floor of 4 rows so a chunk
// amortizes the blocked-loop setup. Row-parallel chunking is bitwise-safe:
// every output row is produced by exactly one chunk with the same
// per-element accumulation order as the serial kernel.
inline int64_t row_grain(int64_t k, int64_t n) {
  constexpr int64_t kTargetFlops = 1 << 18;
  return std::max<int64_t>(4, kTargetFlops / std::max<int64_t>(1, k * n));
}

// Micro-panel GEMM over an m x n output panel. Per-variant semantics (the
// seed orders, preserved verbatim):
//  * (N, N): c += a @ b     -- blocked ikj; inner j loop is a contiguous
//            AXPY; per-element accumulation ascends in k.
//  * (T, N): c += a^T @ b   -- k outermost so both reads stream; same
//            ascending-k per-element order as (N, N).
//  * (N, T): c  = a @ b^T   -- per-element dot product with four split
//            accumulators combined as (a0+a1)+(a2+a3), then a scalar tail.
//            Overwrites c (callers pass zero-filled panels).
template <Trans TA, Trans TB>
inline void gemm_panel(const float* a, int64_t lda, const float* b,
                       int64_t ldb, float* c, int64_t ldc, int64_t m,
                       int64_t k, int64_t n) {
  if constexpr (TA == Trans::N && TB == Trans::N) {
    for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const int64_t k1 = std::min(k0 + kBlockK, k);
      for (int64_t n0 = 0; n0 < n; n0 += kBlockN) {
        const int64_t n1 = std::min(n0 + kBlockN, n);
        for (int64_t i = 0; i < m; ++i) {
          float* crow = c + i * ldc;
          const float* arow = a + i * lda;
          for (int64_t kk = k0; kk < k1; ++kk) {
            const float aval = arow[kk];
            if (aval == 0.0f) continue;
            const float* brow = b + kk * ldb;
            for (int64_t j = n0; j < n1; ++j) crow[j] += aval * brow[j];
          }
        }
      }
    }
  } else if constexpr (TA == Trans::T && TB == Trans::N) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* acol = a + kk * lda;
      const float* brow = b + kk * ldb;
      for (int64_t i = 0; i < m; ++i) {
        const float aval = acol[i];
        if (aval == 0.0f) continue;
        float* crow = c + i * ldc;
        for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
      }
    }
  } else {
    static_assert(TA == Trans::N && TB == Trans::T,
                  "gemm_panel: (T, T) panels are unused in this repo");
    // Four independent float accumulators keep the loop vectorizable (a
    // single double accumulator serializes the FMA chain and costs ~10x).
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = a + i * lda;
      float* crow = c + i * ldc;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * ldb;
        float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
        int64_t kk = 0;
        for (; kk + 4 <= k; kk += 4) {
          acc0 += arow[kk] * brow[kk];
          acc1 += arow[kk + 1] * brow[kk + 1];
          acc2 += arow[kk + 2] * brow[kk + 2];
          acc3 += arow[kk + 3] * brow[kk + 3];
        }
        float acc = (acc0 + acc1) + (acc2 + acc3);
        for (; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] = acc;
      }
    }
  }
}

}  // namespace pf::kernels
