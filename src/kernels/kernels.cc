#include "kernels/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "runtime/buffer_pool.h"
#include "runtime/thread_pool.h"
#include "trace/trace.h"

namespace pf::kernels {

namespace {

// Column rows per parallel chunk: each row is `spatial` floats, so target a
// few KB of writes per chunk to keep dispatch overhead off small convs.
int64_t col_row_grain(int64_t spatial) {
  return std::max<int64_t>(1, 8192 / std::max<int64_t>(1, spatial));
}

}  // namespace

// Default (scalar, seed-identical) convolution lowering. Moved verbatim from
// src/tensor/im2col.cc; the pf::im2col / pf::col2im wrappers keep the trace
// spans so per-op flop accounting is backend-independent.
void Backend::im2col(const float* img, const ConvGeom& g, float* col) const {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t spatial = oh * ow;
  const int64_t kk2 = g.kernel * g.kernel;
  // Column layout: row index = (c*k + ki)*k + kj, col index = oy*ow + ox.
  // Every column row is written by exactly one chunk, so the parallel split
  // over rows is race-free and bit-identical to the serial walk.
  runtime::parallel_for(
      0, g.c_in * kk2, col_row_grain(spatial), [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const int64_t c = r / kk2;
          const int64_t ki = (r % kk2) / g.kernel;
          const int64_t kj = r % g.kernel;
          const float* plane = img + c * g.h * g.w;
          float* crow = col + r * spatial;
          for (int64_t oy = 0; oy < oh; ++oy) {
            const int64_t iy = oy * g.stride - g.pad + ki;
            if (iy < 0 || iy >= g.h) {
              for (int64_t ox = 0; ox < ow; ++ox) crow[oy * ow + ox] = 0.0f;
              continue;
            }
            const float* srow = plane + iy * g.w;
            for (int64_t ox = 0; ox < ow; ++ox) {
              const int64_t ix = ox * g.stride - g.pad + kj;
              crow[oy * ow + ox] = (ix >= 0 && ix < g.w) ? srow[ix] : 0.0f;
            }
          }
        }
      });
}

void Backend::col2im(const float* col, const ConvGeom& g, float* img) const {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t spatial = oh * ow;
  // Scatter-add: all (ki, kj) rows of one channel accumulate into the same
  // image plane, so the parallel split is over channels only -- planes are
  // disjoint and each keeps the serial accumulation order.
  runtime::parallel_for(0, g.c_in, 1, [=](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      float* plane = img + c * g.h * g.w;
      for (int64_t ki = 0; ki < g.kernel; ++ki) {
        for (int64_t kj = 0; kj < g.kernel; ++kj) {
          const float* crow =
              col + ((c * g.kernel + ki) * g.kernel + kj) * spatial;
          for (int64_t oy = 0; oy < oh; ++oy) {
            const int64_t iy = oy * g.stride - g.pad + ki;
            if (iy < 0 || iy >= g.h) continue;
            float* srow = plane + iy * g.w;
            for (int64_t ox = 0; ox < ow; ++ox) {
              const int64_t ix = ox * g.stride - g.pad + kj;
              if (ix >= 0 && ix < g.w) srow[ix] += crow[oy * ow + ox];
            }
          }
        }
      }
    }
  });
}

namespace {

// Dequantize `rows x cols` of a quantized operand into `out` (row-major
// fp32). Elementwise and row-partitioned, so bitwise-stable across
// PF_THREADS.
void dequant_rows(const QView& v, int64_t rows, int64_t cols, float* out) {
  const int64_t grain = std::max<int64_t>(1, 16384 / std::max<int64_t>(1, cols));
  runtime::parallel_for(0, rows, grain, [=](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      float* d = out + r * cols;
      if (v.b16) {
        const uint16_t* src = v.b16 + r * cols;
        for (int64_t c = 0; c < cols; ++c) {
          const uint32_t u = static_cast<uint32_t>(src[c]) << 16;
          std::memcpy(d + c, &u, sizeof(float));
        }
      } else {
        const float scale = v.scales[r];
        const int8_t* src = v.q + r * cols;
        for (int64_t c = 0; c < cols; ++c)
          d[c] = scale * static_cast<float>(src[c]);
      }
    }
  });
}

}  // namespace

// Reference dequant-GEMM semantics: expand the quantized operand into pooled
// scratch, then run this backend's own float GEMM. Fused overrides
// (backend_avx2.cc) must match these bit-for-bit per backend.
void Backend::gemm_nt_q(const float* a, const QView& b, float* c, int64_t m,
                        int64_t k, int64_t n) const {
  int64_t cap = 0;
  float* w = runtime::BufferPool::instance().acquire(n * k, &cap);
  dequant_rows(b, n, k, w);
  gemm_nt(a, w, c, m, k, n);
  runtime::BufferPool::instance().release(w, cap);
}

void Backend::gemm_qa_nn(const QView& a, const float* b, float* c, int64_t m,
                         int64_t k, int64_t n) const {
  int64_t cap = 0;
  float* w = runtime::BufferPool::instance().acquire(m * k, &cap);
  dequant_rows(a, m, k, w);
  gemm_nn(w, b, c, m, k, n);
  runtime::BufferPool::instance().release(w, cap);
}

namespace {

std::atomic<const Backend*> g_active{nullptr};

const Backend* resolve(const std::string& req) {
  if (req == "scalar") return detail::scalar_backend_ptr();
  if (req == "avx2") return detail::avx2_backend_or_null();
  if (req == "auto" || req.empty()) {
    const Backend* v = detail::avx2_backend_or_null();
    return v ? v : detail::scalar_backend_ptr();
  }
  return nullptr;
}

const Backend* init_from_env() {
  const char* s = std::getenv("PF_BACKEND");
  const std::string req = s ? s : "auto";
  const Backend* b = resolve(req);
  if (!b) {
    std::fprintf(stderr,
                 "[pf::kernels] PF_BACKEND=%s unknown or unavailable on this "
                 "host; falling back to scalar\n",
                 req.c_str());
    b = detail::scalar_backend_ptr();
  }
  return b;
}

}  // namespace

const Backend& active() {
  const Backend* b = g_active.load(std::memory_order_acquire);
  if (!b) {
    // init_from_env() is idempotent, so a first-use race just stores the
    // same pointer twice.
    b = init_from_env();
    const Backend* expected = nullptr;
    if (!g_active.compare_exchange_strong(expected, b,
                                          std::memory_order_acq_rel))
      b = expected;
  }
  return *b;
}

const char* backend_name() { return active().name(); }

bool set_backend(const char* name) {
  const Backend* b = resolve(name ? name : "auto");
  if (!b) return false;
  g_active.store(b, std::memory_order_release);
  return true;
}

bool avx2_compiled() { return detail::avx2_compiled_in(); }
bool avx2_supported() { return detail::avx2_backend_or_null() != nullptr; }

Tensor lowrank_matmul(const Tensor& x, const Tensor& v, const Tensor& u,
                      Tensor* t_out) {
  if (x.dim() != 2 || v.dim() != 2 || u.dim() != 2)
    throw std::runtime_error("lowrank_matmul: 2-D tensors required");
  const int64_t m = x.size(0), in = x.size(1);
  const int64_t r = v.size(1), out = u.size(0);
  if (v.size(0) != in) throw std::runtime_error("lowrank_matmul: x/v mismatch");
  if (u.size(1) != r) throw std::runtime_error("lowrank_matmul: v/u mismatch");
  PF_TRACE_SCOPE_C("lowrank", m * r * (in + out));
  Tensor y(Shape{m, out});
  if (t_out) *t_out = Tensor(Shape{m, r});
  const Backend& be = active();
  const float* xd = x.data();
  const float* vd = v.data();
  const float* ud = u.data();
  float* yd = y.data();
  // Two whole-matrix backend calls sharing one rank-width scratch. An
  // earlier version row-blocked the chain to keep the (rows, r) slice
  // cache-resident, but that made the packed avx2 backend re-pack v and u
  // once per block, costing more than the locality bought (0.8x vs two-op
  // at m=512); whole-matrix calls pack each operand once and let the
  // backend's internal parallel_for do the partitioning. Per-element
  // accumulation order is row-partition-invariant in both backends, so
  // this is bitwise-identical to the row-blocked form and to the unfused
  // two-op sequence per backend.
  float* scratch = nullptr;
  int64_t cap = 0;
  float* t;
  if (t_out) {
    t = t_out->data();  // Tensor(Shape) zero-fills
  } else {
    scratch = runtime::BufferPool::instance().acquire(m * r, &cap);
    std::memset(scratch, 0, static_cast<size_t>(m * r) * sizeof(float));
    t = scratch;
  }
  be.gemm_nn(xd, vd, t, m, in, r);
  be.gemm_nt(t, ud, yd, m, r, out);
  if (scratch) runtime::BufferPool::instance().release(scratch, cap);
  return y;
}

}  // namespace pf::kernels
