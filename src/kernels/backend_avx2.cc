// AVX2+FMA packed GEMM backend.
//
// GotoBLAS-style blocking: B is packed once into L1-sized (KC x NR) column
// strips, A is packed per row-chunk per k-block into (KC x MR) row strips,
// and a 6x16 register-tiled microkernel (12 ymm accumulators, two B loads +
// six A broadcasts + twelve FMAs per k step) sweeps the tiles. Edge tiles
// (m % 6, n % 16, any k) are computed into a zero-padded local tile and
// added back, so no masked loads or scalar inner loops sit on the hot path.
//
// Parallelism rides the existing deterministic runtime::parallel_for row
// partitioning (grain MC): chunk boundaries depend only on (m, MC), never on
// PF_THREADS, and each output row belongs to exactly one chunk -- so results
// are bitwise identical across thread counts. Across backends the
// accumulation order differs from the scalar loops by design; that contract
// is tolerance-gated (see kernels_test.cc).
//
// Compile/runtime guard: every function touching intrinsics carries
// __attribute__((target("avx2,fma"))), so this file builds into targets
// that do NOT pass -mavx2 (the ASan/TSan library rebuilds under tests/)
// and the registry only hands the backend out after
// __builtin_cpu_supports("avx2")/("fma") both pass.
#include "kernels/kernels.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PF_KERNELS_HAVE_AVX2 1
#else
#define PF_KERNELS_HAVE_AVX2 0
#endif

#if PF_KERNELS_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "kernels/gemm_panels.h"
#include "runtime/buffer_pool.h"
#include "runtime/thread_pool.h"

#define PF_TARGET_AVX2 __attribute__((target("avx2,fma")))

namespace pf::kernels {

namespace {

constexpr int64_t MR = 6;    // microtile rows (A broadcasts)
constexpr int64_t NR = 16;   // microtile cols (two ymm lanes)
constexpr int64_t KC = 384;  // k block: one packed B strip = KC*NR*4 = 24 KB
constexpr int64_t MC = 96;   // rows per parallel chunk; A pack = MC*KC*4 = 96 KB

// Below this many multiply-adds the packing traffic dominates, so fall back
// to the scalar panels. The cutoff depends only on the shape, keeping
// backend output deterministic.
constexpr int64_t kPackedCutoff = 1 << 15;

inline int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Pool-backed scratch for packed panels.
struct Scratch {
  float* p = nullptr;
  int64_t cap = 0;
  explicit Scratch(int64_t numel) {
    p = runtime::BufferPool::instance().acquire(numel, &cap);
  }
  ~Scratch() { runtime::BufferPool::instance().release(p, cap); }
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;
};

// ---------------------------------------------------------------------------
// Packing. Packed B layout: strip (pc, js) is a contiguous KC*NR panel at
// bp + (pc*nstrips + js)*KC*NR with element (kk, j) at [kk*NR + j]; columns
// past n are zeroed so edge tiles can run the full-width kernel. Packed A
// layout per row chunk: strip `is` is a KC*MR panel at ap + is*KC*MR with
// element (r, kk) at [kk*MR + r]; rows past m are zeroed.
// ---------------------------------------------------------------------------

template <Trans TB>
PF_TARGET_AVX2 void pack_b(const float* b, int64_t ldb, int64_t k, int64_t n,
                           float* bp) {
  const int64_t npc = ceil_div(k, KC), nstr = ceil_div(n, NR);
  for (int64_t pc = 0; pc < npc; ++pc) {
    const int64_t k0 = pc * KC, kc = std::min(KC, k - k0);
    for (int64_t js = 0; js < nstr; ++js) {
      const int64_t j0 = js * NR, nr = std::min(NR, n - j0);
      float* dst = bp + (pc * nstr + js) * (KC * NR);
      if constexpr (TB == Trans::N) {
        // b is (k, n) row-major: each kk row copies NR contiguous floats.
        for (int64_t kk = 0; kk < kc; ++kk) {
          const float* src = b + (k0 + kk) * ldb + j0;
          float* d = dst + kk * NR;
          if (nr == NR) {
            std::memcpy(d, src, NR * sizeof(float));
          } else {
            for (int64_t j = 0; j < nr; ++j) d[j] = src[j];
            for (int64_t j = nr; j < NR; ++j) d[j] = 0.0f;
          }
        }
      } else {
        // b is stored (n, k): read each b row contiguously along k, write
        // with stride NR.
        for (int64_t j = 0; j < nr; ++j) {
          const float* src = b + (j0 + j) * ldb + k0;
          for (int64_t kk = 0; kk < kc; ++kk) dst[kk * NR + j] = src[kk];
        }
        for (int64_t j = nr; j < NR; ++j)
          for (int64_t kk = 0; kk < kc; ++kk) dst[kk * NR + j] = 0.0f;
      }
    }
  }
}

template <Trans TA>
PF_TARGET_AVX2 void pack_a(const float* a, int64_t lda, int64_t m, int64_t k0,
                           int64_t kc, float* ap) {
  // `a` already points at the chunk's first row (TA==N) / column (TA==T).
  const int64_t nstr = ceil_div(m, MR);
  for (int64_t is = 0; is < nstr; ++is) {
    const int64_t i0 = is * MR, mr = std::min(MR, m - i0);
    float* dst = ap + is * (KC * MR);
    if constexpr (TA == Trans::N) {
      // a is (m, k) row-major: interleave MR row streams so every packed
      // write is contiguous (kk-outer with one pointer per row). Deep-k
      // narrow-n GEMMs are pack-bound, so write locality matters here.
      if (mr == MR) {
        const float* s0 = a + (i0 + 0) * lda + k0;
        const float* s1 = a + (i0 + 1) * lda + k0;
        const float* s2 = a + (i0 + 2) * lda + k0;
        const float* s3 = a + (i0 + 3) * lda + k0;
        const float* s4 = a + (i0 + 4) * lda + k0;
        const float* s5 = a + (i0 + 5) * lda + k0;
        float* d = dst;
        for (int64_t kk = 0; kk < kc; ++kk, d += MR) {
          d[0] = s0[kk];
          d[1] = s1[kk];
          d[2] = s2[kk];
          d[3] = s3[kk];
          d[4] = s4[kk];
          d[5] = s5[kk];
        }
      } else {
        for (int64_t kk = 0; kk < kc; ++kk) {
          float* d = dst + kk * MR;
          for (int64_t r = 0; r < mr; ++r) d[r] = a[(i0 + r) * lda + k0 + kk];
          for (int64_t r = mr; r < MR; ++r) d[r] = 0.0f;
        }
      }
    } else {
      // a is stored (k, m): each kk row holds MR contiguous floats.
      for (int64_t kk = 0; kk < kc; ++kk) {
        const float* src = a + (k0 + kk) * lda + i0;
        float* d = dst + kk * MR;
        for (int64_t r = 0; r < mr; ++r) d[r] = src[r];
        for (int64_t r = mr; r < MR; ++r) d[r] = 0.0f;
      }
    }
  }
}

// Dequantizing packs for the quantized-weight GEMMs (Backend::gemm_nt_q /
// gemm_qa_nn). Identical panel layouts to pack_b / pack_a above, but the
// source elements are expanded from int8 (scale * code) or bf16 (bit shift)
// while they stream into the panel -- the dequantized matrix is never
// materialized. Element values are computed with the exact expressions the
// default dequant-then-GEMM path uses, so per backend the fused results are
// bitwise identical to the defaults.

// B stored quantized (n, k) feeding an NT GEMM (pack_b Trans::T layout).
PF_TARGET_AVX2 void pack_b_qt(const QView& b, int64_t ldb, int64_t k,
                              int64_t n, float* bp) {
  const int64_t npc = ceil_div(k, KC), nstr = ceil_div(n, NR);
  for (int64_t pc = 0; pc < npc; ++pc) {
    const int64_t k0 = pc * KC, kc = std::min(KC, k - k0);
    for (int64_t js = 0; js < nstr; ++js) {
      const int64_t j0 = js * NR, nr = std::min(NR, n - j0);
      float* dst = bp + (pc * nstr + js) * (KC * NR);
      for (int64_t j = 0; j < nr; ++j) {
        const int64_t row = j0 + j;
        if (b.b16) {
          const uint16_t* src = b.b16 + row * ldb + k0;
          for (int64_t kk = 0; kk < kc; ++kk) {
            const uint32_t u = static_cast<uint32_t>(src[kk]) << 16;
            std::memcpy(dst + kk * NR + j, &u, sizeof(float));
          }
        } else {
          const float scale = b.scales[row];
          const int8_t* src = b.q + row * ldb + k0;
          for (int64_t kk = 0; kk < kc; ++kk)
            dst[kk * NR + j] = scale * static_cast<float>(src[kk]);
        }
      }
      for (int64_t j = nr; j < NR; ++j)
        for (int64_t kk = 0; kk < kc; ++kk) dst[kk * NR + j] = 0.0f;
    }
  }
}

// A stored quantized (m, k) feeding an NN GEMM (pack_a Trans::N layout);
// `row0` is the parallel chunk's first output row.
PF_TARGET_AVX2 void pack_a_qn(const QView& a, int64_t lda, int64_t row0,
                              int64_t m, int64_t k0, int64_t kc, float* ap) {
  const int64_t nstr = ceil_div(m, MR);
  for (int64_t is = 0; is < nstr; ++is) {
    const int64_t i0 = is * MR, mr = std::min(MR, m - i0);
    float* dst = ap + is * (KC * MR);
    for (int64_t kk = 0; kk < kc; ++kk) {
      float* d = dst + kk * MR;
      for (int64_t r = 0; r < mr; ++r) {
        const int64_t row = row0 + i0 + r;
        const int64_t idx = row * lda + k0 + kk;
        if (a.b16) {
          const uint32_t u = static_cast<uint32_t>(a.b16[idx]) << 16;
          std::memcpy(d + r, &u, sizeof(float));
        } else {
          d[r] = a.scales[row] * static_cast<float>(a.q[idx]);
        }
      }
      for (int64_t r = mr; r < MR; ++r) d[r] = 0.0f;
    }
  }
}

// ---------------------------------------------------------------------------
// Microkernels.
// ---------------------------------------------------------------------------

// Full 6x16 tile: c[0..6)[0..16) += packed_a @ packed_b over kc steps.
PF_TARGET_AVX2 void kern_6x16(int64_t kc, const float* ap, const float* bp,
                              float* c, int64_t ldc) {
  __m256 c00 = _mm256_loadu_ps(c + 0 * ldc), c01 = _mm256_loadu_ps(c + 0 * ldc + 8);
  __m256 c10 = _mm256_loadu_ps(c + 1 * ldc), c11 = _mm256_loadu_ps(c + 1 * ldc + 8);
  __m256 c20 = _mm256_loadu_ps(c + 2 * ldc), c21 = _mm256_loadu_ps(c + 2 * ldc + 8);
  __m256 c30 = _mm256_loadu_ps(c + 3 * ldc), c31 = _mm256_loadu_ps(c + 3 * ldc + 8);
  __m256 c40 = _mm256_loadu_ps(c + 4 * ldc), c41 = _mm256_loadu_ps(c + 4 * ldc + 8);
  __m256 c50 = _mm256_loadu_ps(c + 5 * ldc), c51 = _mm256_loadu_ps(c + 5 * ldc + 8);
// One k step: two B loads, six A broadcasts, twelve FMAs. A macro (not a
// lambda) so the body stays inside this target("avx2,fma") function even in
// builds without -mavx2 -- lambdas do not inherit the target attribute.
#define PF_K_STEP(a6, b16)                 \
  do {                                     \
    const __m256 b0 = _mm256_loadu_ps(b16);      \
    const __m256 b1 = _mm256_loadu_ps((b16) + 8); \
    __m256 av;                             \
    av = _mm256_broadcast_ss((a6) + 0);    \
    c00 = _mm256_fmadd_ps(av, b0, c00);    \
    c01 = _mm256_fmadd_ps(av, b1, c01);    \
    av = _mm256_broadcast_ss((a6) + 1);    \
    c10 = _mm256_fmadd_ps(av, b0, c10);    \
    c11 = _mm256_fmadd_ps(av, b1, c11);    \
    av = _mm256_broadcast_ss((a6) + 2);    \
    c20 = _mm256_fmadd_ps(av, b0, c20);    \
    c21 = _mm256_fmadd_ps(av, b1, c21);    \
    av = _mm256_broadcast_ss((a6) + 3);    \
    c30 = _mm256_fmadd_ps(av, b0, c30);    \
    c31 = _mm256_fmadd_ps(av, b1, c31);    \
    av = _mm256_broadcast_ss((a6) + 4);    \
    c40 = _mm256_fmadd_ps(av, b0, c40);    \
    c41 = _mm256_fmadd_ps(av, b1, c41);    \
    av = _mm256_broadcast_ss((a6) + 5);    \
    c50 = _mm256_fmadd_ps(av, b0, c50);    \
    c51 = _mm256_fmadd_ps(av, b1, c51);    \
  } while (0)
  // Unroll by 4 to amortize loop overhead (the packed panels are read
  // strictly sequentially, so hardware prefetch covers them).
  int64_t kk = 0;
  for (; kk + 4 <= kc; kk += 4) {
    PF_K_STEP(ap + 0 * MR, bp + 0 * NR);
    PF_K_STEP(ap + 1 * MR, bp + 1 * NR);
    PF_K_STEP(ap + 2 * MR, bp + 2 * NR);
    PF_K_STEP(ap + 3 * MR, bp + 3 * NR);
    ap += 4 * MR;
    bp += 4 * NR;
  }
  for (; kk < kc; ++kk) {
    PF_K_STEP(ap, bp);
    ap += MR;
    bp += NR;
  }
#undef PF_K_STEP
  _mm256_storeu_ps(c + 0 * ldc, c00), _mm256_storeu_ps(c + 0 * ldc + 8, c01);
  _mm256_storeu_ps(c + 1 * ldc, c10), _mm256_storeu_ps(c + 1 * ldc + 8, c11);
  _mm256_storeu_ps(c + 2 * ldc, c20), _mm256_storeu_ps(c + 2 * ldc + 8, c21);
  _mm256_storeu_ps(c + 3 * ldc, c30), _mm256_storeu_ps(c + 3 * ldc + 8, c31);
  _mm256_storeu_ps(c + 4 * ldc, c40), _mm256_storeu_ps(c + 4 * ldc + 8, c41);
  _mm256_storeu_ps(c + 5 * ldc, c50), _mm256_storeu_ps(c + 5 * ldc + 8, c51);
}

// Edge tile (mr < MR and/or nr < NR): run the full-width kernel into a
// zeroed local tile (packed operands are zero-padded, so the extra lanes
// compute zeros) and add the valid region into c.
PF_TARGET_AVX2 void kern_edge(int64_t kc, const float* ap, const float* bp,
                              float* c, int64_t ldc, int64_t mr, int64_t nr) {
  alignas(32) float tmp[MR * NR];
  __m256 acc[MR][2];
  for (int64_t r = 0; r < MR; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bp);
    const __m256 b1 = _mm256_loadu_ps(bp + 8);
    bp += NR;
    for (int64_t r = 0; r < MR; ++r) {
      const __m256 av = _mm256_broadcast_ss(ap + r);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
    ap += MR;
  }
  for (int64_t r = 0; r < MR; ++r) {
    _mm256_store_ps(tmp + r * NR, acc[r][0]);
    _mm256_store_ps(tmp + r * NR + 8, acc[r][1]);
  }
  for (int64_t r = 0; r < mr; ++r)
    for (int64_t j = 0; j < nr; ++j) c[r * ldc + j] += tmp[r * NR + j];
}

// One row chunk [r0, r1) of the packed GEMM: pack A per k block, then sweep
// B strips x A strips. Kept out of the parallel_for lambda because lambdas
// do not reliably inherit __attribute__((target)) in GCC.
template <Trans TA>
PF_TARGET_AVX2 void gemm_chunk(const float* a, int64_t lda,
                               const float* bp_all, float* c, int64_t ldc,
                               int64_t r0, int64_t r1, int64_t k, int64_t n,
                               float* apack) {
  const int64_t mc = r1 - r0;
  const int64_t npc = ceil_div(k, KC);
  const int64_t nstr_n = ceil_div(n, NR);
  const int64_t nstr_m = ceil_div(mc, MR);
  const float* achunk = (TA == Trans::N) ? a + r0 * lda : a + r0;
  for (int64_t pc = 0; pc < npc; ++pc) {
    const int64_t k0 = pc * KC, kc = std::min(KC, k - k0);
    pack_a<TA>(achunk, lda, mc, k0, kc, apack);
    for (int64_t js = 0; js < nstr_n; ++js) {
      const int64_t j0 = js * NR, nr = std::min(NR, n - j0);
      const float* bp = bp_all + (pc * nstr_n + js) * (KC * NR);
      for (int64_t is = 0; is < nstr_m; ++is) {
        const int64_t i0 = is * MR, mr = std::min(MR, mc - i0);
        const float* ap = apack + is * (KC * MR);
        float* ct = c + (r0 + i0) * ldc + j0;
        if (mr == MR && nr == NR)
          kern_6x16(kc, ap, bp, ct, ldc);
        else
          kern_edge(kc, ap, bp, ct, ldc, mr, nr);
      }
    }
  }
}

// Packed GEMM driver: c[m,n] += op(a) @ op(b). B is packed once (its packed
// image is identical no matter how rows are later partitioned), then row
// chunks of MC proceed in parallel. Accumulation order per output element is
// (pc ascending, kk ascending) -- a function of shape only, so results are
// bitwise stable across PF_THREADS.
template <Trans TA, Trans TB>
void gemm_packed(const float* a, int64_t lda, const float* b, int64_t ldb,
                 float* c, int64_t ldc, int64_t m, int64_t k, int64_t n) {
  const int64_t npc = ceil_div(k, KC), nstr_n = ceil_div(n, NR);
  Scratch bpack(npc * nstr_n * KC * NR);
  pack_b<TB>(b, ldb, k, n, bpack.p);
  const float* bp_all = bpack.p;
  runtime::parallel_for(0, m, MC, [=](int64_t r0, int64_t r1) {
    Scratch apack(ceil_div(r1 - r0, MR) * KC * MR);
    gemm_chunk<TA>(a, lda, bp_all, c, ldc, r0, r1, k, n, apack.p);
  });
}

// Row chunk of the quantized-A packed GEMM: like gemm_chunk<Trans::N>, with
// pack_a_qn dequantizing the chunk's rows as they pack.
PF_TARGET_AVX2 void gemm_chunk_qa(const QView& a, int64_t lda,
                                  const float* bp_all, float* c, int64_t ldc,
                                  int64_t r0, int64_t r1, int64_t k, int64_t n,
                                  float* apack) {
  const int64_t mc = r1 - r0;
  const int64_t npc = ceil_div(k, KC);
  const int64_t nstr_n = ceil_div(n, NR);
  const int64_t nstr_m = ceil_div(mc, MR);
  for (int64_t pc = 0; pc < npc; ++pc) {
    const int64_t k0 = pc * KC, kc = std::min(KC, k - k0);
    pack_a_qn(a, lda, r0, mc, k0, kc, apack);
    for (int64_t js = 0; js < nstr_n; ++js) {
      const int64_t j0 = js * NR, nr = std::min(NR, n - j0);
      const float* bp = bp_all + (pc * nstr_n + js) * (KC * NR);
      for (int64_t is = 0; is < nstr_m; ++is) {
        const int64_t i0 = is * MR, mr = std::min(MR, mc - i0);
        const float* ap = apack + is * (KC * MR);
        float* ct = c + (r0 + i0) * ldc + j0;
        if (mr == MR && nr == NR)
          kern_6x16(kc, ap, bp, ct, ldc);
        else
          kern_edge(kc, ap, bp, ct, ldc, mr, nr);
      }
    }
  }
}

class Avx2Backend final : public Backend {
 public:
  const char* name() const override { return "avx2"; }

  void gemm_nn(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) const override {
    if (m * k * n < kPackedCutoff) {
      runtime::parallel_for(0, m, row_grain(k, n), [=](int64_t r0, int64_t r1) {
        gemm_panel<Trans::N, Trans::N>(a + r0 * k, k, b, n, c + r0 * n, n,
                                       r1 - r0, k, n);
      });
      return;
    }
    gemm_packed<Trans::N, Trans::N>(a, k, b, n, c, n, m, k, n);
  }

  void gemm_tn(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) const override {
    if (m * k * n < kPackedCutoff) {
      runtime::parallel_for(0, m, row_grain(k, n), [=](int64_t r0, int64_t r1) {
        gemm_panel<Trans::T, Trans::N>(a + r0, m, b, n, c + r0 * n, n, r1 - r0,
                                       k, n);
      });
      return;
    }
    gemm_packed<Trans::T, Trans::N>(a, m, b, n, c, n, m, k, n);
  }

  void gemm_nt(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) const override {
    // Accumulates into the caller-zeroed c (the scalar panel overwrites
    // instead; both observe the documented "c starts zeroed" contract).
    if (m * k * n < kPackedCutoff) {
      runtime::parallel_for(0, m, row_grain(k, n), [=](int64_t r0, int64_t r1) {
        gemm_panel<Trans::N, Trans::T>(a + r0 * k, k, b, k, c + r0 * n, n,
                                       r1 - r0, k, n);
      });
      return;
    }
    gemm_packed<Trans::N, Trans::T>(a, k, b, k, c, n, m, k, n);
  }

  // Fused dequant-GEMMs. Below the packed cutoff the defaults (dequant into
  // pooled scratch + this backend's own float GEMM) already win, so only the
  // packed path carries the fused variants.
  void gemm_nt_q(const float* a, const QView& b, float* c, int64_t m,
                 int64_t k, int64_t n) const override {
    if (m * k * n < kPackedCutoff) {
      Backend::gemm_nt_q(a, b, c, m, k, n);
      return;
    }
    const int64_t npc = ceil_div(k, KC), nstr_n = ceil_div(n, NR);
    Scratch bpack(npc * nstr_n * KC * NR);
    pack_b_qt(b, k, k, n, bpack.p);
    const float* bp_all = bpack.p;
    runtime::parallel_for(0, m, MC, [=](int64_t r0, int64_t r1) {
      Scratch apack(ceil_div(r1 - r0, MR) * KC * MR);
      gemm_chunk<Trans::N>(a, k, bp_all, c, n, r0, r1, k, n, apack.p);
    });
  }

  void gemm_qa_nn(const QView& a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n) const override {
    if (m * k * n < kPackedCutoff) {
      Backend::gemm_qa_nn(a, b, c, m, k, n);
      return;
    }
    const int64_t npc = ceil_div(k, KC), nstr_n = ceil_div(n, NR);
    Scratch bpack(npc * nstr_n * KC * NR);
    pack_b<Trans::N>(b, n, k, n, bpack.p);
    const float* bp_all = bpack.p;
    runtime::parallel_for(0, m, MC, [=](int64_t r0, int64_t r1) {
      Scratch apack(ceil_div(r1 - r0, MR) * KC * MR);
      gemm_chunk_qa(a, k, bp_all, c, n, r0, r1, k, n, apack.p);
    });
  }
};

}  // namespace

namespace detail {

const Backend* avx2_backend_or_null() {
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  if (!supported) return nullptr;
  static Avx2Backend backend;
  return &backend;
}

bool avx2_compiled_in() { return true; }

}  // namespace detail

}  // namespace pf::kernels

#else  // !PF_KERNELS_HAVE_AVX2

namespace pf::kernels::detail {

const Backend* avx2_backend_or_null() { return nullptr; }
bool avx2_compiled_in() { return false; }

}  // namespace pf::kernels::detail

#endif  // PF_KERNELS_HAVE_AVX2
