// Quantized weight matrices for the serving path.
//
// Post-training, weights-only quantization (DESIGN.md §14): a frozen
// engine's large weight tensors are stored either as per-row symmetric int8
// (scale_r = max|W[r,:]| / 127, one fp32 scale per output row) or as bf16
// (the upper 16 bits of the fp32 pattern, round-to-nearest-even). Rows are
// always the *non-contracted* axis of the serving GEMM the matrix feeds, so
// the per-row scale factors out of every dot product and the dequantized
// product is exactly `scale[r] * (int accumulation)` -- which is why the
// two Backend entry points below are the only quantized GEMM shapes the
// whole engine zoo needs:
//
//  * gemm_nt_q : c[m,n] (+)= a[m,k] @ qb[n,k]^T  -- every matmul_nt-shaped
//    layer GEMM (Linear W, low-rank U, and V stored transposed as (r, in)).
//  * gemm_qa_nn: c[m,n]  += qa[m,k] @ b[k,n]     -- every im2col conv GEMM
//    (dense conv W as (c_out, patch), low-rank conv U (r, patch) and
//    V (c_out, r)).
//
// The defaults (kernels.cc) dequantize the quantized operand into pooled
// scratch and call the backend's own float GEMM -- the scalar reference
// semantics. The AVX2 backend overrides both with fused variants that
// dequantize inside the operand packing (backend_avx2.cc), producing
// bitwise-identical results to its own dequantize-then-GEMM at zero extra
// memory traffic.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "kernels/kernels.h"
#include "tensor/tensor.h"

namespace pf::kernels {

// One quantized 2-D weight: `rows` is the per-scale (non-contracted) axis.
struct QuantizedMat {
  QMode mode = QMode::kInt8;
  int64_t rows = 0, cols = 0;
  std::vector<int8_t> q;        // int8 codes, rows*cols (mode kInt8)
  std::vector<uint16_t> b16;    // bf16 patterns, rows*cols (mode kBf16)
  std::vector<float> scales;    // per-row scales, size rows (mode kInt8)

  // Resident bytes of the quantized representation (codes + scales).
  int64_t bytes() const;
  QView view() const {
    return QView{q.empty() ? nullptr : q.data(),
                 b16.empty() ? nullptr : b16.data(),
                 scales.empty() ? nullptr : scales.data()};
  }
};

// Round a float to the nearest-even bf16 bit pattern / expand it back.
inline uint16_t bf16_from_float(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  // Round to nearest, ties to even on the truncated mantissa half.
  u += 0x7FFFu + ((u >> 16) & 1u);
  return static_cast<uint16_t>(u >> 16);
}
inline float bf16_to_float(uint16_t h) {
  const uint32_t u = static_cast<uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

// Quantize `rows x cols` floats at `w` (row-major). Int8 is per-row
// symmetric: scale_r = max|row| / 127 (scale 0 for an all-zero row), code =
// round(w / scale) clamped to [-127, 127].
QuantizedMat quantize_rows(const float* w, int64_t rows, int64_t cols,
                           QMode mode);
// Tensor convenience: any shape, viewed as (size(0), numel/size(0)).
QuantizedMat quantize_tensor(const Tensor& t, QMode mode);

// Exact dequantized value of element (r, c) -- the reference the fused
// paths must reproduce bit-for-bit.
float dequant_at(const QuantizedMat& m, int64_t r, int64_t c);
// Materialize the full fp32 matrix (rows, cols).
Tensor dequantize(const QuantizedMat& m);

// ---- Tensor-level quantized forwards (serving fast paths) ----

// y[m, rows] = x[m, k] @ W^T with W quantized as (rows, k).
Tensor qmatmul_nt(const Tensor& x, const QuantizedMat& w);

// Fused low-rank forward with both factors quantized: vt is V^T stored
// (r, in) with per-r scales, u is U stored (out, r) with per-out scales.
// y = (x @ vt^T) @ u^T, one pooled (m, r) scratch between the two GEMMs.
Tensor qlowrank_matmul(const Tensor& x, const QuantizedMat& vt,
                       const QuantizedMat& u);

// Dense conv with the weight quantized as (c_out, c_in*k*k): per-sample
// im2col + gemm_qa_nn, mirroring ag::conv2d's eval loop.
Tensor qconv2d(const Tensor& x, const QuantizedMat& w, int64_t c_out,
               int64_t kernel, int64_t stride, int64_t pad);

// Fused low-rank conv: u quantized as (r, c_in*k*k), v as (c_out, r);
// per-sample im2col, U @ col into a one-sample `mid`, then V @ mid.
Tensor qlowrank_conv2d(const Tensor& x, const QuantizedMat& u,
                       const QuantizedMat& v, int64_t kernel, int64_t stride,
                       int64_t pad);

}  // namespace pf::kernels
