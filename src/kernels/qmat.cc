#include "kernels/qmat.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "runtime/buffer_pool.h"
#include "trace/trace.h"

namespace pf::kernels {

int64_t QuantizedMat::bytes() const {
  int64_t b = static_cast<int64_t>(q.size()) * sizeof(int8_t);
  b += static_cast<int64_t>(b16.size()) * sizeof(uint16_t);
  b += static_cast<int64_t>(scales.size()) * sizeof(float);
  return b;
}

QuantizedMat quantize_rows(const float* w, int64_t rows, int64_t cols,
                           QMode mode) {
  if (rows < 1 || cols < 1)
    throw std::runtime_error("quantize_rows: empty matrix");
  QuantizedMat m;
  m.mode = mode;
  m.rows = rows;
  m.cols = cols;
  if (mode == QMode::kBf16) {
    m.b16.resize(static_cast<size_t>(rows * cols));
    for (int64_t i = 0; i < rows * cols; ++i)
      m.b16[static_cast<size_t>(i)] = bf16_from_float(w[i]);
    return m;
  }
  m.q.resize(static_cast<size_t>(rows * cols));
  m.scales.resize(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = w + r * cols;
    float amax = 0.0f;
    for (int64_t c = 0; c < cols; ++c) amax = std::max(amax, std::fabs(row[c]));
    const float scale = amax / 127.0f;
    m.scales[static_cast<size_t>(r)] = scale;
    int8_t* code = m.q.data() + r * cols;
    if (scale == 0.0f) {
      std::memset(code, 0, static_cast<size_t>(cols));
      continue;
    }
    const float inv = 1.0f / scale;
    for (int64_t c = 0; c < cols; ++c) {
      const float v = std::nearbyintf(row[c] * inv);
      code[c] = static_cast<int8_t>(std::clamp(v, -127.0f, 127.0f));
    }
  }
  return m;
}

QuantizedMat quantize_tensor(const Tensor& t, QMode mode) {
  if (t.dim() < 1 || t.numel() < 1)
    throw std::runtime_error("quantize_tensor: empty tensor");
  const int64_t rows = t.size(0);
  return quantize_rows(t.data(), rows, t.numel() / rows, mode);
}

float dequant_at(const QuantizedMat& m, int64_t r, int64_t c) {
  const size_t idx = static_cast<size_t>(r * m.cols + c);
  if (m.mode == QMode::kBf16) return bf16_to_float(m.b16[idx]);
  return m.scales[static_cast<size_t>(r)] * static_cast<float>(m.q[idx]);
}

Tensor dequantize(const QuantizedMat& m) {
  Tensor out = Tensor::uninit(Shape{m.rows, m.cols});
  float* d = out.data();
  for (int64_t r = 0; r < m.rows; ++r)
    for (int64_t c = 0; c < m.cols; ++c) d[r * m.cols + c] = dequant_at(m, r, c);
  return out;
}

namespace {

void check_view(const QuantizedMat& m, const char* who) {
  const bool i8 = m.mode == QMode::kInt8;
  if ((i8 && (m.q.empty() || m.scales.empty())) || (!i8 && m.b16.empty()))
    throw std::runtime_error(std::string(who) + ": malformed QuantizedMat");
}

}  // namespace

Tensor qmatmul_nt(const Tensor& x, const QuantizedMat& w) {
  if (x.dim() != 2) throw std::runtime_error("qmatmul_nt: 2-D x required");
  if (x.size(1) != w.cols)
    throw std::runtime_error("qmatmul_nt: x/w inner-dim mismatch");
  check_view(w, "qmatmul_nt");
  const int64_t m = x.size(0), k = x.size(1), n = w.rows;
  PF_TRACE_SCOPE_C("qmatmul_nt", m * k * n);
  Tensor y(Shape{m, n});  // zero-filled: gemm_nt_q contract
  active().gemm_nt_q(x.data(), w.view(), y.data(), m, k, n);
  return y;
}

Tensor qlowrank_matmul(const Tensor& x, const QuantizedMat& vt,
                       const QuantizedMat& u) {
  if (x.dim() != 2) throw std::runtime_error("qlowrank_matmul: 2-D x");
  if (x.size(1) != vt.cols)
    throw std::runtime_error("qlowrank_matmul: x/v mismatch");
  if (u.cols != vt.rows)
    throw std::runtime_error("qlowrank_matmul: v/u rank mismatch");
  check_view(vt, "qlowrank_matmul");
  check_view(u, "qlowrank_matmul");
  const int64_t m = x.size(0), in = x.size(1), r = vt.rows, out = u.rows;
  PF_TRACE_SCOPE_C("qlowrank", m * r * (in + out));
  const Backend& be = active();
  Tensor y(Shape{m, out});
  int64_t cap = 0;
  float* t = runtime::BufferPool::instance().acquire(m * r, &cap);
  std::memset(t, 0, static_cast<size_t>(m * r) * sizeof(float));
  be.gemm_nt_q(x.data(), vt.view(), t, m, in, r);
  be.gemm_nt_q(t, u.view(), y.data(), m, r, out);
  runtime::BufferPool::instance().release(t, cap);
  return y;
}

Tensor qconv2d(const Tensor& x, const QuantizedMat& w, int64_t c_out,
               int64_t kernel, int64_t stride, int64_t pad) {
  if (x.dim() != 4) throw std::runtime_error("qconv2d: 4-D input required");
  const int64_t n = x.size(0), c_in = x.size(1), h = x.size(2), wd = x.size(3);
  const ConvGeom g{c_in, h, wd, kernel, stride, pad};
  if (w.rows != c_out || w.cols != g.patch())
    throw std::runtime_error("qconv2d: weight shape mismatch");
  check_view(w, "qconv2d");
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t spatial = oh * ow, patch = g.patch();
  PF_TRACE_SCOPE_C("qconv", n * c_out * patch * spatial);
  const Backend& be = active();
  const QView wv = w.view();
  Tensor out(Shape{n, c_out, oh, ow});  // zero-filled: gemm_qa_nn does +=
  Tensor col = Tensor::uninit(Shape{patch, spatial});
  float* colp = col.data();
  float* outp = out.data();
  for (int64_t i = 0; i < n; ++i) {
    be.im2col(x.data() + i * c_in * h * wd, g, colp);
    be.gemm_qa_nn(wv, colp, outp + i * c_out * spatial, c_out, patch, spatial);
  }
  return out;
}

Tensor qlowrank_conv2d(const Tensor& x, const QuantizedMat& u,
                       const QuantizedMat& v, int64_t kernel, int64_t stride,
                       int64_t pad) {
  if (x.dim() != 4)
    throw std::runtime_error("qlowrank_conv2d: 4-D input required");
  const int64_t n = x.size(0), c_in = x.size(1), h = x.size(2), wd = x.size(3);
  const ConvGeom g{c_in, h, wd, kernel, stride, pad};
  const int64_t r = u.rows, c_out = v.rows;
  if (u.cols != g.patch())
    throw std::runtime_error("qlowrank_conv2d: u shape mismatch");
  if (v.cols != r) throw std::runtime_error("qlowrank_conv2d: v/u mismatch");
  check_view(u, "qlowrank_conv2d");
  check_view(v, "qlowrank_conv2d");
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t spatial = oh * ow, patch = g.patch();
  PF_TRACE_SCOPE_C("qlowrank_conv", n * spatial * r * (patch + c_out));
  const Backend& be = active();
  const QView uv = u.view();
  const QView vv = v.view();
  Tensor out(Shape{n, c_out, oh, ow});
  Tensor col = Tensor::uninit(Shape{patch, spatial});
  Tensor mid(Shape{r, spatial});
  float* colp = col.data();
  float* midp = mid.data();
  float* outp = out.data();
  for (int64_t i = 0; i < n; ++i) {
    be.im2col(x.data() + i * c_in * h * wd, g, colp);
    std::fill(midp, midp + r * spatial, 0.0f);
    be.gemm_qa_nn(uv, colp, midp, r, patch, spatial);
    be.gemm_qa_nn(vv, midp, outp + i * c_out * spatial, c_out, r, spatial);
  }
  return out;
}

}  // namespace pf::kernels
