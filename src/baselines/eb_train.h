// Early-Bird Ticket baseline (You et al., "EB Train", paper Table 7):
// structured channel pruning drawn *early* in training.
//
// The BN scale factors rank channel importance; after every epoch the
// would-be channel mask at prune ratio `pr` is computed, and when the mask's
// normalized Hamming distance to the previous epoch's mask falls below the
// threshold, the "early-bird ticket is drawn": pruned channels are zeroed
// and frozen, and the slim network is fine-tuned for the remaining budget.
// Parameters/MACs are reported for the *effective* slim network (the dense
// model You et al. would rebuild); see DESIGN.md on this soft-pruning
// substitution.
#pragma once

#include "core/trainer.h"
#include "models/vgg.h"

namespace pf::baselines {

struct EbConfig {
  double prune_ratio = 0.3;      // fraction of BN channels removed
  double mask_distance_threshold = 0.1;
  int max_search_epochs = 4;     // epoch budget for finding the ticket
  core::VisionTrainConfig inner; // total epochs and recipe
};

struct EbResult {
  int ticket_epoch = -1;          // epoch the mask stabilized
  int64_t effective_params = 0;   // params of the implied slim network
  int64_t effective_macs = 0;     // forward MACs of the slim network (32x32)
  double test_acc = 0, test_top5 = 0;
  double seconds = 0;
};

// Runs EB Train on a (possibly width-scaled) Vgg19. VGG's plain
// conv-BN-ReLU chain is the architecture channel pruning composes cleanly
// with (residual nets need channel-matching logic You et al. special-case).
EbResult run_eb_train(const models::VggConfig& model_cfg,
                      const data::SyntheticImages& ds, const EbConfig& cfg);

}  // namespace pf::baselines
