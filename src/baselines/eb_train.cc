#include "baselines/eb_train.h"

#include <algorithm>
#include <cmath>

#include "metrics/metrics.h"
#include "optim/optim.h"

namespace pf::baselines {

namespace {

struct ConvBn {
  nn::Conv2d* conv = nullptr;
  nn::BatchNorm2d* bn = nullptr;
  bool pool_after = false;
};

// Walk the VGG feature stack collecting (conv, bn) pairs in order.
std::vector<ConvBn> collect_conv_bn(models::Vgg19& model) {
  std::vector<ConvBn> out;
  nn::Module* features = model.children()[0];
  ConvBn cur;
  for (nn::Module* child : features->children()) {
    const std::string t = child->type_name();
    if (t == "Conv2d") {
      cur = ConvBn{};
      cur.conv = static_cast<nn::Conv2d*>(child);
    } else if (t == "BatchNorm2d") {
      cur.bn = static_cast<nn::BatchNorm2d*>(child);
      out.push_back(cur);
    } else if (t == "MaxPool2d" && !out.empty()) {
      out.back().pool_after = true;
    }
  }
  return out;
}

// Channel mask at prune ratio `pr` from global |gamma| ranking; at least one
// channel per layer survives.
std::vector<std::vector<uint8_t>> compute_mask(
    const std::vector<ConvBn>& layers, double pr) {
  std::vector<float> all;
  for (const ConvBn& l : layers)
    for (int64_t c = 0; c < l.bn->channels(); ++c)
      all.push_back(std::fabs(l.bn->gamma->value[c]));
  const int64_t cut = static_cast<int64_t>(all.size() * pr);
  float threshold = -1.0f;
  if (cut > 0 && cut < static_cast<int64_t>(all.size())) {
    std::nth_element(all.begin(), all.begin() + cut, all.end());
    threshold = all[static_cast<size_t>(cut)];
  }
  std::vector<std::vector<uint8_t>> masks;
  for (const ConvBn& l : layers) {
    std::vector<uint8_t> m(static_cast<size_t>(l.bn->channels()), 0);
    int64_t kept = 0;
    int64_t best = 0;
    for (int64_t c = 0; c < l.bn->channels(); ++c) {
      const float g = std::fabs(l.bn->gamma->value[c]);
      if (g >= threshold) {
        m[static_cast<size_t>(c)] = 1;
        ++kept;
      }
      if (g > std::fabs(l.bn->gamma->value[best])) best = c;
    }
    if (kept == 0) m[static_cast<size_t>(best)] = 1;
    masks.push_back(std::move(m));
  }
  return masks;
}

double mask_distance(const std::vector<std::vector<uint8_t>>& a,
                     const std::vector<std::vector<uint8_t>>& b) {
  int64_t diff = 0, total = 0;
  for (size_t l = 0; l < a.size(); ++l)
    for (size_t c = 0; c < a[l].size(); ++c) {
      diff += a[l][c] != b[l][c];
      ++total;
    }
  return static_cast<double>(diff) / std::max<int64_t>(1, total);
}

void freeze_pruned(const std::vector<ConvBn>& layers,
                   const std::vector<std::vector<uint8_t>>& masks) {
  for (size_t l = 0; l < layers.size(); ++l)
    for (size_t c = 0; c < masks[l].size(); ++c)
      if (!masks[l][c]) {
        layers[l].bn->gamma->value[static_cast<int64_t>(c)] = 0.0f;
        layers[l].bn->beta->value[static_cast<int64_t>(c)] = 0.0f;
      }
}

}  // namespace

EbResult run_eb_train(const models::VggConfig& model_cfg,
                      const data::SyntheticImages& ds, const EbConfig& cfg) {
  metrics::Timer total;
  Rng rng(cfg.inner.seed * 0x9E3779B9u + 211);
  models::Vgg19 model(model_cfg, rng);
  auto layers = collect_conv_bn(model);
  auto params = model.parameters();

  optim::SGD opt(params, cfg.inner.lr, cfg.inner.momentum,
                 cfg.inner.weight_decay);
  const optim::StepDecay sched(cfg.inner.lr, cfg.inner.lr_milestones,
                               cfg.inner.lr_factor);

  EbResult result;
  std::vector<std::vector<uint8_t>> prev_mask, final_mask;
  bool ticket_drawn = false;

  for (int epoch = 0; epoch < cfg.inner.epochs; ++epoch) {
    opt.set_lr(sched.at_epoch(epoch));
    model.train(true);
    for (const data::ImageBatch& b :
         ds.train_batches(cfg.inner.batch, epoch)) {
      model.zero_grad();
      ag::Var logits = model.forward(ag::leaf(b.images));
      ag::Var loss =
          ag::cross_entropy(logits, b.labels, cfg.inner.label_smoothing);
      ag::backward(loss);
      opt.step();
      if (ticket_drawn) freeze_pruned(layers, final_mask);
    }
    if (!ticket_drawn) {
      auto mask = compute_mask(layers, cfg.prune_ratio);
      const bool stable =
          !prev_mask.empty() &&
          mask_distance(mask, prev_mask) < cfg.mask_distance_threshold;
      if (stable || epoch + 1 >= cfg.max_search_epochs) {
        result.ticket_epoch = epoch;
        final_mask = mask;
        ticket_drawn = true;
        freeze_pruned(layers, final_mask);
      }
      prev_mask = std::move(mask);
    }
  }

  const core::EvalResult ev =
      core::evaluate_vision(model, ds, cfg.inner.batch);
  result.test_acc = ev.acc;
  result.test_top5 = ev.top5;

  // Effective slim-network parameters and MACs implied by the channel mask.
  int64_t in_ch = 3;  // network input channels
  int64_t hw = 32;
  int64_t p = 0, macs = 0;
  for (size_t l = 0; l < layers.size(); ++l) {
    int64_t out_ch = 0;
    for (uint8_t m : final_mask[l]) out_ch += m;
    p += in_ch * out_ch * 9 + 2 * out_ch;        // conv + BN
    macs += in_ch * out_ch * 9 * hw * hw;
    if (layers[l].pool_after) hw /= 2;
    in_ch = out_ch;
  }
  // Classifier: first FC consumes the surviving channels.
  nn::Module* classifier = model.children()[1];
  int64_t fc_in = in_ch;
  for (nn::Module* child : classifier->children()) {
    if (child->type_name() != "Linear") continue;
    auto* fc = static_cast<nn::Linear*>(child);
    p += fc_in * fc->out_features() + fc->out_features();
    macs += fc_in * fc->out_features();
    fc_in = fc->out_features();
  }
  result.effective_params = p;
  result.effective_macs = macs;
  result.seconds = total.seconds();
  return result;
}

}  // namespace pf::baselines
