// Lottery Ticket Hypothesis baseline (Frankle & Carbin): iterative magnitude
// pruning with weight rewinding. Each round trains the masked network to
// completion, prunes the smallest-magnitude fraction of the surviving
// weights globally, and rewinds the survivors to their initial values --
// so reaching sparsity s costs roughly log(1-s)/log(1-p) full training runs,
// the 5.67x end-to-end cost Figure 5 charges LTH relative to Pufferfish.
#pragma once

#include "core/trainer.h"

namespace pf::baselines {

struct LthConfig {
  int rounds = 4;                   // prune-retrain iterations
  double prune_frac_per_round = 0.5;  // fraction of surviving weights cut
  core::VisionTrainConfig inner;    // per-round training recipe
};

struct LthRoundRecord {
  int round = 0;                 // 0 = dense baseline
  double sparsity = 0;           // fraction of prunable weights removed
  int64_t remaining_params = 0;  // surviving prunable + always-kept params
  double test_acc = 0;
  double cumulative_seconds = 0;  // wall-clock including all earlier rounds
};

// Runs LTH on the model produced by `make_model` (same factory contract as
// core::train_vision). Only conv / linear *weights* are prunable; BN and
// biases are always kept, matching open_lth.
std::vector<LthRoundRecord> run_lth(const core::VisionModelFactory& make_model,
                                    const data::SyntheticImages& ds,
                                    const LthConfig& cfg);

}  // namespace pf::baselines
