#include "baselines/lth.h"

#include <algorithm>
#include <cmath>

#include "metrics/metrics.h"
#include "optim/optim.h"

namespace pf::baselines {

namespace {

// A parameter is prunable if it is a weight matrix/filter (dim >= 2);
// BN scales and biases are 1-D and always survive.
bool prunable(const nn::Param& p) { return p.var->value.dim() >= 2; }

void apply_mask(const std::vector<nn::Param*>& params,
                const std::vector<Tensor>& masks) {
  for (size_t i = 0; i < params.size(); ++i) {
    if (masks[i].empty()) continue;
    Tensor& w = params[i]->var->value;
    for (int64_t j = 0; j < w.numel(); ++j) w[j] *= masks[i][j];
  }
}

}  // namespace

std::vector<LthRoundRecord> run_lth(const core::VisionModelFactory& make_model,
                                    const data::SyntheticImages& ds,
                                    const LthConfig& cfg) {
  metrics::Timer total;
  Rng rng(cfg.inner.seed * 0x9E3779B9u + 101);
  std::unique_ptr<nn::UnaryModule> model = make_model(rng);
  auto params = model->parameters();

  // Snapshot winning-ticket initialization.
  std::vector<Tensor> init;
  init.reserve(params.size());
  for (nn::Param* p : params) init.push_back(p->var->value);

  // Masks: empty tensor = unmasked (non-prunable param).
  std::vector<Tensor> masks(params.size());
  int64_t prunable_total = 0, kept_total = 0;
  for (size_t i = 0; i < params.size(); ++i) {
    if (prunable(*params[i])) {
      masks[i] = Tensor::ones(params[i]->var->value.shape());
      prunable_total += params[i]->var->numel();
    } else {
      kept_total += params[i]->var->numel();
    }
  }

  std::vector<LthRoundRecord> records;
  const optim::StepDecay sched(cfg.inner.lr, cfg.inner.lr_milestones,
                               cfg.inner.lr_factor);
  for (int round = 0; round <= cfg.rounds; ++round) {
    // Train the masked network.
    optim::SGD opt(params, cfg.inner.lr, cfg.inner.momentum,
                   cfg.inner.weight_decay);
    for (int epoch = 0; epoch < cfg.inner.epochs; ++epoch) {
      opt.set_lr(sched.at_epoch(epoch));
      model->train(true);
      for (const data::ImageBatch& b :
           ds.train_batches(cfg.inner.batch, epoch + round * 1000)) {
        model->zero_grad();
        ag::Var logits = model->forward(ag::leaf(b.images));
        ag::Var loss =
            ag::cross_entropy(logits, b.labels, cfg.inner.label_smoothing);
        ag::backward(loss);
        opt.step();
        apply_mask(params, masks);  // keep pruned weights at zero
      }
    }
    const core::EvalResult ev =
        core::evaluate_vision(*model, ds, cfg.inner.batch);

    int64_t surviving = 0;
    for (size_t i = 0; i < params.size(); ++i)
      if (!masks[i].empty())
        for (int64_t j = 0; j < masks[i].numel(); ++j)
          surviving += masks[i][j] > 0 ? 1 : 0;

    records.push_back(LthRoundRecord{
        round,
        1.0 - static_cast<double>(surviving) / prunable_total,
        surviving + kept_total, ev.acc, total.seconds()});

    if (round == cfg.rounds) break;

    // Global magnitude pruning of the surviving weights.
    std::vector<float> magnitudes;
    magnitudes.reserve(static_cast<size_t>(surviving));
    for (size_t i = 0; i < params.size(); ++i) {
      if (masks[i].empty()) continue;
      const Tensor& w = params[i]->var->value;
      for (int64_t j = 0; j < w.numel(); ++j)
        if (masks[i][j] > 0) magnitudes.push_back(std::fabs(w[j]));
    }
    const int64_t cut = static_cast<int64_t>(
        static_cast<double>(magnitudes.size()) * cfg.prune_frac_per_round);
    if (cut > 0 && cut < static_cast<int64_t>(magnitudes.size())) {
      std::nth_element(magnitudes.begin(), magnitudes.begin() + cut,
                       magnitudes.end());
      const float threshold = magnitudes[static_cast<size_t>(cut)];
      for (size_t i = 0; i < params.size(); ++i) {
        if (masks[i].empty()) continue;
        const Tensor& w = params[i]->var->value;
        for (int64_t j = 0; j < w.numel(); ++j)
          if (masks[i][j] > 0 && std::fabs(w[j]) < threshold)
            masks[i][j] = 0.0f;
      }
    }

    // Rewind survivors to their initial values.
    for (size_t i = 0; i < params.size(); ++i)
      params[i]->var->value = init[i];
    apply_mask(params, masks);
  }
  return records;
}

}  // namespace pf::baselines
