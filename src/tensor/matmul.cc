#include "tensor/matmul.h"

#include <stdexcept>

#include "runtime/thread_pool.h"
#include "trace/trace.h"

namespace pf {

namespace {

void check(bool cond, const char* msg) {
  if (!cond) throw std::runtime_error(msg);
}

constexpr int64_t kBlockK = 128;
constexpr int64_t kBlockN = 256;

// Rows per parallel chunk: target ~256k multiply-adds per chunk so small
// GEMMs stay on the calling thread, with a floor of 4 rows so a chunk
// amortizes the blocked-loop setup. Row-parallel chunking is bitwise-safe:
// every output row is produced by exactly one chunk with the same
// per-element accumulation order as the serial kernel.
int64_t row_grain(int64_t k, int64_t n) {
  constexpr int64_t kTargetFlops = 1 << 18;
  return std::max<int64_t>(4, kTargetFlops / std::max<int64_t>(1, k * n));
}

}  // namespace

void matmul_accum(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n) {
  // Blocked ikj: for each (i, kk-block, nn-block), the inner loop over j is
  // contiguous in both b and c.
  for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
    const int64_t k1 = std::min(k0 + kBlockK, k);
    for (int64_t n0 = 0; n0 < n; n0 += kBlockN) {
      const int64_t n1 = std::min(n0 + kBlockN, n);
      for (int64_t i = 0; i < m; ++i) {
        float* crow = c + i * n;
        const float* arow = a + i * k;
        for (int64_t kk = k0; kk < k1; ++kk) {
          const float aval = arow[kk];
          if (aval == 0.0f) continue;
          const float* brow = b + kk * n;
          for (int64_t j = n0; j < n1; ++j) crow[j] += aval * brow[j];
        }
      }
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  check(a.dim() == 2 && b.dim() == 2, "matmul: 2-D tensors required");
  check(a.size(1) == b.size(0), "matmul: inner dim mismatch");
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  PF_TRACE_SCOPE_C("matmul", m * k * n);
  Tensor c(Shape{m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  runtime::parallel_for(0, m, row_grain(k, n),
                        [=](int64_t r0, int64_t r1) {
                          matmul_accum(ad + r0 * k, bd, cd + r0 * n, r1 - r0,
                                       k, n);
                        });
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check(a.dim() == 2 && b.dim() == 2, "matmul_tn: 2-D tensors required");
  check(a.size(0) == b.size(0), "matmul_tn: inner dim mismatch");
  const int64_t k = a.size(0), m = a.size(1), n = b.size(1);
  PF_TRACE_SCOPE_C("matmul_tn", m * k * n);
  Tensor c(Shape{m, n});
  float* cd = c.data();
  const float* ad = a.data();
  const float* bd = b.data();
  // c[i,j] = sum_kk a[kk,i] * b[kk,j]; iterate kk outermost so both reads
  // stream contiguously. Parallel over output-row ranges: each chunk keeps
  // the kk-ascending accumulation order of the serial kernel.
  runtime::parallel_for(0, m, row_grain(k, n), [=](int64_t r0, int64_t r1) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* arow = ad + kk * m;
      const float* brow = bd + kk * n;
      for (int64_t i = r0; i < r1; ++i) {
        const float aval = arow[i];
        if (aval == 0.0f) continue;
        float* crow = cd + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
      }
    }
  });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check(a.dim() == 2 && b.dim() == 2, "matmul_nt: 2-D tensors required");
  check(a.size(1) == b.size(1), "matmul_nt: inner dim mismatch");
  const int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  PF_TRACE_SCOPE_C("matmul_nt", m * k * n);
  Tensor c(Shape{m, n});
  float* cd = c.data();
  const float* ad = a.data();
  const float* bd = b.data();
  // c[i,j] = dot(a_row_i, b_row_j): both rows contiguous. Four independent
  // float accumulators keep the loop vectorizable (a single double
  // accumulator serializes the FMA chain and costs ~10x). Rows are fully
  // independent, so the parallel split is trivially bitwise-stable.
  runtime::parallel_for(0, m, row_grain(k, n), [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* arow = ad + i * k;
      float* crow = cd + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = bd + j * k;
        float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
        int64_t kk = 0;
        for (; kk + 4 <= k; kk += 4) {
          acc0 += arow[kk] * brow[kk];
          acc1 += arow[kk + 1] * brow[kk + 1];
          acc2 += arow[kk + 2] * brow[kk + 2];
          acc3 += arow[kk + 3] * brow[kk + 3];
        }
        float acc = (acc0 + acc1) + (acc2 + acc3);
        for (; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] = acc;
      }
    }
  });
  return c;
}

Tensor bmm(const Tensor& a, const Tensor& b) {
  check(a.dim() == 3 && b.dim() == 3, "bmm: 3-D tensors required");
  check(a.size(0) == b.size(0) && a.size(2) == b.size(1), "bmm: dim mismatch");
  const int64_t bt = a.size(0), m = a.size(1), k = a.size(2), n = b.size(2);
  PF_TRACE_SCOPE_C("bmm", bt * m * k * n);
  Tensor c(Shape{bt, m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  runtime::parallel_for(0, bt, 1, [=](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i)
      matmul_accum(ad + i * m * k, bd + i * k * n, cd + i * m * n, m, k, n);
  });
  return c;
}

Tensor bmm_nt(const Tensor& a, const Tensor& b) {
  check(a.dim() == 3 && b.dim() == 3, "bmm_nt: 3-D tensors required");
  check(a.size(0) == b.size(0) && a.size(2) == b.size(2),
        "bmm_nt: dim mismatch");
  const int64_t bt = a.size(0), m = a.size(1), k = a.size(2), n = b.size(1);
  PF_TRACE_SCOPE_C("bmm_nt", bt * m * k * n);
  Tensor c(Shape{bt, m, n});
  const float* abase = a.data();
  const float* bbase = b.data();
  float* cbase = c.data();
  runtime::parallel_for(0, bt, 1, [=](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* ad = abase + i * m * k;
      const float* bd = bbase + i * n * k;
      float* cd = cbase + i * m * n;
      for (int64_t r = 0; r < m; ++r)
        for (int64_t cc = 0; cc < n; ++cc) {
          const float* arow = ad + r * k;
          const float* brow = bd + cc * k;
          float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
          int64_t kk = 0;
          for (; kk + 4 <= k; kk += 4) {
            acc0 += arow[kk] * brow[kk];
            acc1 += arow[kk + 1] * brow[kk + 1];
            acc2 += arow[kk + 2] * brow[kk + 2];
            acc3 += arow[kk + 3] * brow[kk + 3];
          }
          float acc = (acc0 + acc1) + (acc2 + acc3);
          for (; kk < k; ++kk) acc += arow[kk] * brow[kk];
          cd[r * n + cc] = acc;
        }
    }
  });
  return c;
}

Tensor bmm_tn(const Tensor& a, const Tensor& b) {
  check(a.dim() == 3 && b.dim() == 3, "bmm_tn: 3-D tensors required");
  check(a.size(0) == b.size(0) && a.size(1) == b.size(1),
        "bmm_tn: dim mismatch");
  const int64_t bt = a.size(0), k = a.size(1), m = a.size(2), n = b.size(2);
  PF_TRACE_SCOPE_C("bmm_tn", bt * m * k * n);
  Tensor c(Shape{bt, m, n});
  const float* abase = a.data();
  const float* bbase = b.data();
  float* cbase = c.data();
  runtime::parallel_for(0, bt, 1, [=](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* ad = abase + i * k * m;
      const float* bd = bbase + i * k * n;
      float* cd = cbase + i * m * n;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float* arow = ad + kk * m;
        const float* brow = bd + kk * n;
        for (int64_t r = 0; r < m; ++r) {
          const float aval = arow[r];
          if (aval == 0.0f) continue;
          float* crow = cd + r * n;
          for (int64_t cc = 0; cc < n; ++cc) crow[cc] += aval * brow[cc];
        }
      }
    }
  });
  return c;
}

}  // namespace pf
