#include "tensor/matmul.h"

#include <stdexcept>

#include "kernels/kernels.h"
#include "runtime/thread_pool.h"
#include "trace/trace.h"

namespace pf {

namespace {

void check(bool cond, const char* msg) {
  if (!cond) throw std::runtime_error(msg);
}

}  // namespace

// Raw accumulate kernel, preserved for external callers (conv lowering).
// Traced as "gemm" so conv-internal GEMMs show up in the flop accounting
// alongside the tensor-level matmul spans.
void matmul_accum(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n) {
  PF_TRACE_SCOPE_C("gemm", m * k * n);
  kernels::active().gemm_nn(a, b, c, m, k, n);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  check(a.dim() == 2 && b.dim() == 2, "matmul: 2-D tensors required");
  check(a.size(1) == b.size(0), "matmul: inner dim mismatch");
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  PF_TRACE_SCOPE_C("matmul", m * k * n);
  Tensor c(Shape{m, n});
  kernels::active().gemm_nn(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check(a.dim() == 2 && b.dim() == 2, "matmul_tn: 2-D tensors required");
  check(a.size(0) == b.size(0), "matmul_tn: inner dim mismatch");
  const int64_t k = a.size(0), m = a.size(1), n = b.size(1);
  PF_TRACE_SCOPE_C("matmul_tn", m * k * n);
  Tensor c(Shape{m, n});
  kernels::active().gemm_tn(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check(a.dim() == 2 && b.dim() == 2, "matmul_nt: 2-D tensors required");
  check(a.size(1) == b.size(1), "matmul_nt: inner dim mismatch");
  const int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  PF_TRACE_SCOPE_C("matmul_nt", m * k * n);
  Tensor c(Shape{m, n});  // zero-filled, per the gemm_nt contract
  kernels::active().gemm_nt(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

// Batched variants parallelize over batch items (grain 1, the seed split);
// the per-item backend GEMM's internal parallel_for then degrades to a
// serial walk of the same chunks, so per-item bits match the 2-D kernels.
Tensor bmm(const Tensor& a, const Tensor& b) {
  check(a.dim() == 3 && b.dim() == 3, "bmm: 3-D tensors required");
  check(a.size(0) == b.size(0) && a.size(2) == b.size(1), "bmm: dim mismatch");
  const int64_t bt = a.size(0), m = a.size(1), k = a.size(2), n = b.size(2);
  PF_TRACE_SCOPE_C("bmm", bt * m * k * n);
  Tensor c(Shape{bt, m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  const kernels::Backend& be = kernels::active();
  runtime::parallel_for(0, bt, 1, [=, &be](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i)
      be.gemm_nn(ad + i * m * k, bd + i * k * n, cd + i * m * n, m, k, n);
  });
  return c;
}

Tensor bmm_nt(const Tensor& a, const Tensor& b) {
  check(a.dim() == 3 && b.dim() == 3, "bmm_nt: 3-D tensors required");
  check(a.size(0) == b.size(0) && a.size(2) == b.size(2),
        "bmm_nt: dim mismatch");
  const int64_t bt = a.size(0), m = a.size(1), k = a.size(2), n = b.size(1);
  PF_TRACE_SCOPE_C("bmm_nt", bt * m * k * n);
  Tensor c(Shape{bt, m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  const kernels::Backend& be = kernels::active();
  runtime::parallel_for(0, bt, 1, [=, &be](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i)
      be.gemm_nt(ad + i * m * k, bd + i * n * k, cd + i * m * n, m, k, n);
  });
  return c;
}

Tensor bmm_tn(const Tensor& a, const Tensor& b) {
  check(a.dim() == 3 && b.dim() == 3, "bmm_tn: 3-D tensors required");
  check(a.size(0) == b.size(0) && a.size(1) == b.size(1),
        "bmm_tn: dim mismatch");
  const int64_t bt = a.size(0), k = a.size(1), m = a.size(2), n = b.size(2);
  PF_TRACE_SCOPE_C("bmm_tn", bt * m * k * n);
  Tensor c(Shape{bt, m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  const kernels::Backend& be = kernels::active();
  runtime::parallel_for(0, bt, 1, [=, &be](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i)
      be.gemm_tn(ad + i * k * m, bd + i * k * n, cd + i * m * n, m, k, n);
  });
  return c;
}

}  // namespace pf
