#include "tensor/rng.h"

#include <cmath>
#include <numbers>

namespace pf {

namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_ = r * std::sin(theta);
  has_cached_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

int64_t Rng::uniform_int(int64_t n) {
  return static_cast<int64_t>(uniform() * static_cast<double>(n)) % n;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Tensor Rng::rand(Shape shape, float lo, float hi) {
  Tensor t = Tensor::uninit(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i)
    p[i] = static_cast<float>(uniform(lo, hi));
  return t;
}

Tensor Rng::randn(Shape shape, float mean, float stddev) {
  Tensor t = Tensor::uninit(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i)
    p[i] = static_cast<float>(normal(mean, stddev));
  return t;
}

std::vector<int64_t> Rng::permutation(int64_t n) {
  std::vector<int64_t> p(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) p[static_cast<size_t>(i)] = i;
  for (int64_t i = n - 1; i > 0; --i) {
    const int64_t j = uniform_int(i + 1);
    std::swap(p[static_cast<size_t>(i)], p[static_cast<size_t>(j)]);
  }
  return p;
}

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.has_cached = has_cached_;
  st.cached = cached_;
  return st;
}

void Rng::set_state(const State& st) {
  for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  has_cached_ = st.has_cached;
  cached_ = st.cached;
}

Rng Rng::stream(uint64_t seed, uint64_t stream_id) {
  // splitmix64 is a bijection on the counter sequence, so hashing the seed
  // first and then folding in the (offset) stream id guarantees distinct
  // (seed, id) pairs land on distinct internal states.
  uint64_t x = seed;
  const uint64_t a = splitmix64(x);
  x = a ^ (stream_id + 0x9E3779B97F4A7C15ull);
  const uint64_t b = splitmix64(x);
  return Rng(b);
}

Rng Rng::split(uint64_t stream_id) const {
  // Hash the current state with the stream id to get an independent stream.
  uint64_t seed = s_[0] ^ (stream_id * 0xD1B54A32D192ED03ull) ^ s_[3];
  return Rng(seed);
}

}  // namespace pf
