// Deterministic, seedable RNG used everywhere in the repo.
//
// Reproducibility matters for the paper's experiments (3-seed averages), so
// all randomness flows through this xoshiro256** generator rather than
// std::mt19937 (whose distributions are implementation-defined).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace pf {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Uniform in [0, 2^64).
  uint64_t next_u64();
  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Standard normal via Box-Muller (cached pair).
  double normal();
  double normal(double mean, double stddev);
  // Uniform integer in [0, n).
  int64_t uniform_int(int64_t n);
  // Bernoulli(p).
  bool bernoulli(double p);

  // Tensor factories.
  Tensor rand(Shape shape, float lo = 0.0f, float hi = 1.0f);
  Tensor randn(Shape shape, float mean = 0.0f, float stddev = 1.0f);
  // Fisher-Yates permutation of 0..n-1.
  std::vector<int64_t> permutation(int64_t n);

  // Derive an independent stream (for per-worker / per-layer seeding).
  Rng split(uint64_t stream_id) const;

  // Exact generator state, snapshot/restore. A restored Rng continues the
  // stream bitwise-identically -- including the cached Box-Muller pair --
  // which is what lets a resumed training run replay the exact randomness
  // an uninterrupted run would have drawn (core/checkpoint.h).
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached = false;
    double cached = 0.0;
  };
  State state() const;
  void set_state(const State& st);

  // Independent stream for (seed, stream_id) without an intermediate Rng:
  // both words are pushed through splitmix64, so distinct worker ids map to
  // distinct, decorrelated streams even for adjacent seeds. This is what
  // the shm-cluster workers use (seed hygiene for concurrent workers).
  static Rng stream(uint64_t seed, uint64_t stream_id);

 private:
  uint64_t s_[4];
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace pf
