// Matrix multiplication kernels.
//
// All heavy math in the repo (FC layers, im2col convolution, attention,
// SVD back-projection, PowerSGD) bottoms out here. The implementation is a
// cache-blocked triple loop with an ikj inner order so the innermost loop is
// a contiguous AXPY the compiler can vectorize; no external BLAS is assumed.
#pragma once

#include "tensor/tensor.h"

namespace pf {

// C = A @ B for 2-D tensors: (m,k) x (k,n) -> (m,n).
Tensor matmul(const Tensor& a, const Tensor& b);

// C = A^T @ B: (k,m) x (k,n) -> (m,n), without materializing A^T.
Tensor matmul_tn(const Tensor& a, const Tensor& b);

// C = A @ B^T: (m,k) x (n,k) -> (m,n), without materializing B^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// Batched matmul for 3-D tensors: (b,m,k) x (b,k,n) -> (b,m,n).
Tensor bmm(const Tensor& a, const Tensor& b);
// Batched (b,m,k) x (b,n,k)^T -> (b,m,n).
Tensor bmm_nt(const Tensor& a, const Tensor& b);
// Batched (b,k,m)^T x (b,k,n) -> (b,m,n).
Tensor bmm_tn(const Tensor& a, const Tensor& b);

// Raw kernel: c[m,n] += a[m,k] @ b[k,n]. Caller guarantees the extents.
void matmul_accum(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n);

}  // namespace pf
