// Dense row-major float32 n-dimensional tensor.
//
// This is the numeric substrate for the whole repository: the autograd tape,
// the NN layers, the SVD routines, and the gradient compressors all operate
// on `pf::Tensor`. The design follows value semantics (copies are deep,
// moves are cheap); views are not exposed -- reshape/transpose materialize.
// That costs some memory traffic but keeps aliasing out of the picture,
// which matters for correctness of the tape-based autograd built on top.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace pf {

using Shape = std::vector<int64_t>;

// Number of elements implied by a shape (product of dims; 1 for rank-0).
int64_t shape_numel(const Shape& shape);

// Human-readable "[2, 3, 4]" form, used in error messages.
std::string shape_str(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  static Tensor scalar(float v) { return Tensor(Shape{}, {v}); }
  // 0, 1, ..., n-1 as a 1-D tensor.
  static Tensor arange(int64_t n);
  static Tensor from_vector(std::vector<float> v);

  const Shape& shape() const { return shape_; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t size(int64_t d) const;
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  // Multi-index access (bounds unchecked in release; asserted in debug).
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  // Returns a tensor with the same data and a new shape; numel must match.
  // One dimension may be -1 (inferred).
  Tensor reshape(Shape new_shape) const;

  // Permute dimensions; materializes the result.
  Tensor transpose(const std::vector<int64_t>& perm) const;
  // 2-D transpose convenience.
  Tensor t() const;

  // Elementwise in-place helpers.
  Tensor& fill(float v);
  Tensor& add_(const Tensor& other, float alpha = 1.0f);  // this += alpha*other
  Tensor& mul_(float s);
  Tensor& zero_() { return fill(0.0f); }
  Tensor& apply_(const std::function<float(float)>& f);

  // Reductions over all elements.
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  float abs_max() const;
  // L2 norm of the flattened tensor.
  float norm() const;
  int64_t argmax() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  Shape shape_;
  std::vector<float> data_;
};

// ---- Elementwise binary ops with full numpy-style broadcasting. ----
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, const Tensor& b);
Tensor operator/(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, float s);
Tensor operator*(float s, const Tensor& a);
Tensor operator+(const Tensor& a, float s);
Tensor operator-(const Tensor& a);

// Elementwise unary.
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor pow(const Tensor& a, float p);
Tensor clamp(const Tensor& a, float lo, float hi);

// Broadcast shape of two shapes (throws on mismatch).
Shape broadcast_shape(const Shape& a, const Shape& b);

// Reduce `t` (which has shape broadcast-compatible with `target`) by summing
// over the broadcasted dimensions so the result has shape `target`.
// This is the adjoint of broadcasting and is what autograd uses.
Tensor reduce_to_shape(const Tensor& t, const Shape& target);

// ---- Axis reductions. ----
// Sum over one axis; if keepdim, that axis becomes 1, else it is removed.
Tensor sum_axis(const Tensor& t, int64_t axis, bool keepdim = false);
Tensor mean_axis(const Tensor& t, int64_t axis, bool keepdim = false);
Tensor max_axis(const Tensor& t, int64_t axis, bool keepdim = false);
// Row-wise argmax for a 2-D tensor: returns shape {rows} of class indices.
std::vector<int64_t> argmax_rows(const Tensor& t);

// ---- Shape manipulation. ----
// Concatenate along an axis; all inputs must agree on the other axes.
Tensor concat(const std::vector<Tensor>& parts, int64_t axis);
// Extract [start, start+len) along `axis`.
Tensor slice(const Tensor& t, int64_t axis, int64_t start, int64_t len);
// Scatter-add `piece` into a zero tensor of shape `full_shape` at offset
// `start` along `axis` (adjoint of slice).
Tensor pad_slice(const Tensor& piece, const Shape& full_shape, int64_t axis,
                 int64_t start);

// Approximate comparison (max abs diff <= atol + rtol*|b|), for tests.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace pf
