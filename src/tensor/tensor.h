// Dense row-major float32 n-dimensional tensor.
//
// This is the numeric substrate for the whole repository: the autograd tape,
// the NN layers, the SVD routines, and the gradient compressors all operate
// on `pf::Tensor`.
//
// Storage model: a Tensor is a (shared storage, offset, numel, shape) tuple
// with **copy-on-write value semantics**. Copies and axis-0 slices share the
// underlying ref-counted buffer; the first *mutating* access through any
// handle (non-const `data()` / `operator[]` / `flat()`, the in-place ops)
// copies the handle's window iff the buffer is shared. Observable behaviour
// is therefore identical to deep-copy value semantics -- writes through one
// handle are never visible through another -- but read-only copies (tape
// inputs, batch shards, flat gradient views) cost O(1).
//
//  * `reshape` / `flatten` / `squeeze` are zero-copy views (every Tensor is
//    a contiguous window, so any renumbering of the same numel aliases it).
//  * `narrow(start, len)` / free-function `slice(t, 0, ...)` return zero-
//    copy views along axis 0; slices along inner axes still materialize.
//  * `transpose` materializes (strided views are deliberately not exposed;
//    every Tensor stays contiguous, which keeps the kernels simple).
//
// Buffers come from `runtime::BufferPool`, a size-bucketed thread-safe
// free list, so tape temporaries recycle instead of hitting the system
// allocator every op (set the PF_POOL_DISABLE environment variable while
// debugging to get exact, unpooled allocations). Concurrency contract:
// concurrent const access to shared storage is safe, as is mutation of a
// uniquely-owned tensor from one thread; mutating the *same* Tensor object
// from several threads requires hoisting `data()` once (see
// runtime/shm_cluster.cc's ring reduce).
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace pf {

using Shape = std::vector<int64_t>;

// Number of elements implied by a shape (product of dims; 1 for rank-0).
int64_t shape_numel(const Shape& shape);

// Human-readable "[2, 3, 4]" form, used in error messages.
std::string shape_str(const Shape& shape);

namespace detail {

// Ref-counted flat buffer; the float data lives in runtime::BufferPool
// buckets and returns there on destruction.
struct Storage {
  float* data = nullptr;
  int64_t capacity = 0;  // floats actually allocated (bucket size)
  Storage(float* d, int64_t cap) : data(d), capacity(cap) {}
  ~Storage();
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;
};

// Allocates storage for `numel` floats (contents unspecified).
std::shared_ptr<Storage> alloc_storage(int64_t numel);

}  // namespace detail

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);            // zero-filled
  Tensor(Shape shape, float fill);
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  static Tensor scalar(float v) { return Tensor(Shape{}, {v}); }
  // Allocated but NOT initialized -- for kernels that overwrite every
  // element. Reading before writing is undefined (pool memory is recycled).
  static Tensor uninit(Shape shape);
  // 0, 1, ..., n-1 as a 1-D tensor.
  static Tensor arange(int64_t n);
  static Tensor from_vector(std::vector<float> v);

  const Shape& shape() const { return shape_; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t size(int64_t d) const;
  int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  // Const access never copies; mutable access unshares first (COW).
  const float* data() const {
    return storage_ ? storage_->data + offset_ : nullptr;
  }
  float* data() {
    ensure_unique();
    return storage_ ? storage_->data + offset_ : nullptr;
  }
  std::span<float> flat() {
    ensure_unique();
    return {data(), static_cast<size_t>(numel_)};
  }
  std::span<const float> flat() const {
    return {data(), static_cast<size_t>(numel_)};
  }

  float& operator[](int64_t i) {
    ensure_unique();
    return storage_->data[offset_ + i];
  }
  float operator[](int64_t i) const { return storage_->data[offset_ + i]; }

  // Multi-index access (bounds unchecked in release; asserted in debug).
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  // ---- Zero-copy views (share storage; writes still COW). ----
  // Same data, new shape; numel must match. One dimension may be -1
  // (inferred). O(1): no element is copied.
  Tensor reshape(Shape new_shape) const;
  // View as 1-D of `numel()` elements. O(1).
  Tensor flatten() const;
  // View with all size-1 dimensions removed (rank-0 if all were 1). O(1).
  Tensor squeeze() const;
  // Contiguous view of rows [start, start+len) along axis 0. O(1).
  Tensor narrow(int64_t start, int64_t len) const;

  // Permute dimensions; materializes the result.
  Tensor transpose(const std::vector<int64_t>& perm) const;
  // 2-D transpose convenience.
  Tensor t() const;

  // Elementwise in-place helpers (each unshares first).
  Tensor& fill(float v);
  Tensor& add_(const Tensor& other, float alpha = 1.0f);  // this += alpha*other
  Tensor& mul_(float s);
  Tensor& zero_() { return fill(0.0f); }
  Tensor& apply_(const std::function<float(float)>& f);
  // Becomes an element-wise copy of `src` (shape adopted). Reuses this
  // tensor's buffer when it is uniquely owned and the numel matches, so
  // steady-state gradient overwrites never allocate.
  Tensor& copy_from(const Tensor& src);

  // Reductions over all elements.
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  float abs_max() const;
  // L2 norm of the flattened tensor.
  float norm() const;
  int64_t argmax() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  // ---- Storage introspection (tests / instrumentation). ----
  bool shares_storage_with(const Tensor& o) const {
    return storage_ && storage_ == o.storage_;
  }
  // Handles (tensors/views) currently sharing this buffer; 0 when empty.
  int64_t storage_refcount() const {
    return storage_ ? static_cast<int64_t>(storage_.use_count()) : 0;
  }
  int64_t storage_offset() const { return offset_; }

 private:
  // Copies this handle's window into fresh storage iff the buffer is
  // shared; the slow path counts as a COW unshare in the pool stats.
  void ensure_unique() {
    if (storage_ && storage_.use_count() > 1) unshare();
  }
  void unshare();

  Shape shape_;
  std::shared_ptr<detail::Storage> storage_;
  int64_t offset_ = 0;  // start of this tensor's window, in floats
  int64_t numel_ = 0;
};

// ---- Elementwise binary ops with full numpy-style broadcasting. ----
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, const Tensor& b);
Tensor operator/(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, float s);
Tensor operator*(float s, const Tensor& a);
Tensor operator+(const Tensor& a, float s);
Tensor operator-(const Tensor& a);

// Elementwise unary.
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor pow(const Tensor& a, float p);
Tensor clamp(const Tensor& a, float lo, float hi);

// Broadcast shape of two shapes (throws on mismatch).
Shape broadcast_shape(const Shape& a, const Shape& b);

// Reduce `t` (which has shape broadcast-compatible with `target`) by summing
// over the broadcasted dimensions so the result has shape `target`.
// This is the adjoint of broadcasting and is what autograd uses.
Tensor reduce_to_shape(const Tensor& t, const Shape& target);

// ---- Axis reductions. ----
// Sum over one axis; if keepdim, that axis becomes 1, else it is removed.
Tensor sum_axis(const Tensor& t, int64_t axis, bool keepdim = false);
Tensor mean_axis(const Tensor& t, int64_t axis, bool keepdim = false);
Tensor max_axis(const Tensor& t, int64_t axis, bool keepdim = false);
// Row-wise argmax for a 2-D tensor: returns shape {rows} of class indices.
std::vector<int64_t> argmax_rows(const Tensor& t);

// ---- Shape manipulation. ----
// Concatenate along an axis; all inputs must agree on the other axes.
Tensor concat(const std::vector<Tensor>& parts, int64_t axis);
// Extract [start, start+len) along `axis`. Axis 0 returns a zero-copy view
// (`Tensor::narrow`); inner axes materialize a contiguous result.
Tensor slice(const Tensor& t, int64_t axis, int64_t start, int64_t len);
// Scatter-add `piece` into a zero tensor of shape `full_shape` at offset
// `start` along `axis` (adjoint of slice).
Tensor pad_slice(const Tensor& piece, const Shape& full_shape, int64_t axis,
                 int64_t start);

// Approximate comparison (max abs diff <= atol + rtol*|b|), for tests.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace pf
