#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "runtime/buffer_pool.h"

namespace pf {

namespace {

[[noreturn]] void fail(const std::string& msg) { throw std::runtime_error(msg); }

void check(bool cond, const std::string& msg) {
  if (!cond) fail(msg);
}

// Row-major strides for a shape.
std::vector<int64_t> strides_of(const Shape& shape) {
  std::vector<int64_t> s(shape.size());
  int64_t acc = 1;
  for (int64_t i = static_cast<int64_t>(shape.size()) - 1; i >= 0; --i) {
    s[static_cast<size_t>(i)] = acc;
    acc *= shape[static_cast<size_t>(i)];
  }
  return s;
}

}  // namespace

namespace detail {

Storage::~Storage() {
  runtime::BufferPool::instance().release(data, capacity);
}

std::shared_ptr<Storage> alloc_storage(int64_t numel) {
  if (numel <= 0) return nullptr;
  int64_t cap = 0;
  float* p = runtime::BufferPool::instance().acquire(numel, &cap);
  return std::make_shared<Storage>(p, cap);
}

}  // namespace detail

int64_t shape_numel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  numel_ = shape_numel(shape_);
  storage_ = detail::alloc_storage(numel_);
  if (storage_) std::memset(storage_->data, 0, static_cast<size_t>(numel_) * sizeof(float));
}

Tensor::Tensor(Shape shape, float fill) : shape_(std::move(shape)) {
  numel_ = shape_numel(shape_);
  storage_ = detail::alloc_storage(numel_);
  if (storage_) std::fill_n(storage_->data, numel_, fill);
}

Tensor::Tensor(Shape shape, std::vector<float> data) : shape_(std::move(shape)) {
  check(static_cast<int64_t>(data.size()) == shape_numel(shape_),
        "Tensor: data size does not match shape " + shape_str(shape_));
  numel_ = static_cast<int64_t>(data.size());
  storage_ = detail::alloc_storage(numel_);
  if (storage_)
    std::memcpy(storage_->data, data.data(),
                static_cast<size_t>(numel_) * sizeof(float));
}

Tensor Tensor::uninit(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = shape_numel(t.shape_);
  t.storage_ = detail::alloc_storage(t.numel_);
  return t;
}

Tensor Tensor::arange(int64_t n) {
  Tensor t = uninit(Shape{n});
  float* p = t.data();
  for (int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::from_vector(std::vector<float> v) {
  const int64_t n = static_cast<int64_t>(v.size());
  return Tensor(Shape{n}, std::move(v));
}

void Tensor::unshare() {
  auto fresh = detail::alloc_storage(numel_);
  if (fresh)
    std::memcpy(fresh->data, storage_->data + offset_,
                static_cast<size_t>(numel_) * sizeof(float));
  storage_ = std::move(fresh);
  offset_ = 0;
  runtime::BufferPool::instance().note_cow_unshare();
}

int64_t Tensor::size(int64_t d) const {
  if (d < 0) d += dim();
  check(d >= 0 && d < dim(), "Tensor::size: dim out of range");
  return shape_[static_cast<size_t>(d)];
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  const auto s = strides_of(shape_);
  int64_t off = 0;
  size_t k = 0;
  for (int64_t i : idx) off += i * s[k++];
  return (*this)[off];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return const_cast<Tensor*>(this)->at(idx);
}

Tensor Tensor::reshape(Shape new_shape) const {
  int64_t known = 1;
  int64_t infer = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      check(infer == -1, "reshape: at most one -1 dim");
      infer = static_cast<int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer >= 0) {
    check(known != 0 && numel() % known == 0, "reshape: cannot infer dim");
    new_shape[static_cast<size_t>(infer)] = numel() / known;
  }
  check(shape_numel(new_shape) == numel(),
        "reshape: numel mismatch " + shape_str(shape_) + " -> " +
            shape_str(new_shape));
  // Zero-copy: every Tensor is a contiguous window, so a renumbering of the
  // same elements aliases the same storage.
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.storage_ = storage_;
  out.offset_ = offset_;
  out.numel_ = numel_;
  return out;
}

Tensor Tensor::flatten() const { return reshape(Shape{numel()}); }

Tensor Tensor::squeeze() const {
  Shape s;
  for (int64_t d : shape_)
    if (d != 1) s.push_back(d);
  return reshape(std::move(s));
}

Tensor Tensor::narrow(int64_t start, int64_t len) const {
  check(dim() >= 1, "narrow: rank-0 tensor");
  check(start >= 0 && len >= 0 && start + len <= shape_[0],
        "narrow: out of range");
  const int64_t row = shape_[0] == 0 ? 0 : numel_ / shape_[0];
  Tensor out;
  out.shape_ = shape_;
  out.shape_[0] = len;
  out.numel_ = len * row;
  out.offset_ = offset_ + start * row;
  out.storage_ = out.numel_ > 0 ? storage_ : nullptr;
  if (out.numel_ == 0) out.offset_ = 0;
  return out;
}

Tensor Tensor::transpose(const std::vector<int64_t>& perm) const {
  check(static_cast<int64_t>(perm.size()) == dim(),
        "transpose: perm size mismatch");
  Shape new_shape(perm.size());
  for (size_t i = 0; i < perm.size(); ++i)
    new_shape[i] = shape_[static_cast<size_t>(perm[i])];
  Tensor out = uninit(new_shape);
  const auto in_strides = strides_of(shape_);
  const auto out_strides = strides_of(new_shape);
  const int64_t n = numel();
  const int64_t nd = dim();
  const float* src = data();
  float* dst = out.data();
  std::vector<int64_t> idx(static_cast<size_t>(nd), 0);
  for (int64_t flat = 0; flat < n; ++flat) {
    // idx holds the multi-index in the *output* layout.
    int64_t s = 0;
    for (int64_t d = 0; d < nd; ++d)
      s += idx[static_cast<size_t>(d)] *
           in_strides[static_cast<size_t>(perm[static_cast<size_t>(d)])];
    dst[flat] = src[s];
    // Increment multi-index.
    for (int64_t d = nd - 1; d >= 0; --d) {
      if (++idx[static_cast<size_t>(d)] < new_shape[static_cast<size_t>(d)])
        break;
      idx[static_cast<size_t>(d)] = 0;
    }
  }
  return out;
}

Tensor Tensor::t() const {
  check(dim() == 2, "t(): tensor must be 2-D");
  const int64_t r = shape_[0], c = shape_[1];
  Tensor out = uninit(Shape{c, r});
  const float* src = data();
  float* dst = out.data();
  for (int64_t i = 0; i < r; ++i)
    for (int64_t j = 0; j < c; ++j) dst[j * r + i] = src[i * c + j];
  return out;
}

Tensor& Tensor::fill(float v) {
  if (empty()) return *this;
  // Every element is overwritten, so a shared buffer can be replaced by a
  // fresh one without copying the old contents.
  if (storage_ && storage_.use_count() > 1) {
    storage_ = detail::alloc_storage(numel_);
    offset_ = 0;
  }
  std::fill_n(storage_->data + offset_, numel_, v);
  return *this;
}

Tensor& Tensor::add_(const Tensor& other, float alpha) {
  check(same_shape(other), "add_: shape mismatch " + shape_str(shape_) +
                               " vs " + shape_str(other.shape_));
  const float* src = other.data();
  float* dst = data();  // COW before the loop, not per element
  for (int64_t i = 0; i < numel_; ++i) dst[i] += alpha * src[i];
  return *this;
}

Tensor& Tensor::mul_(float s) {
  float* dst = data();
  for (int64_t i = 0; i < numel_; ++i) dst[i] *= s;
  return *this;
}

Tensor& Tensor::apply_(const std::function<float(float)>& f) {
  float* dst = data();
  for (int64_t i = 0; i < numel_; ++i) dst[i] = f(dst[i]);
  return *this;
}

Tensor& Tensor::copy_from(const Tensor& src) {
  if (this == &src) return *this;
  if (src.empty()) {
    *this = src;
    return *this;
  }
  if (!storage_ || storage_.use_count() > 1 || numel_ != src.numel_) {
    storage_ = detail::alloc_storage(src.numel_);
    offset_ = 0;
    numel_ = src.numel_;
  }
  shape_ = src.shape_;
  std::memcpy(storage_->data + offset_, src.data(),
              static_cast<size_t>(numel_) * sizeof(float));
  return *this;
}

float Tensor::sum() const {
  const float* p = data();
  double acc = 0;
  for (int64_t i = 0; i < numel_; ++i) acc += p[i];
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  check(!empty(), "mean of empty tensor");
  return sum() / static_cast<float>(numel_);
}

float Tensor::min() const {
  check(!empty(), "min of empty tensor");
  const float* p = data();
  return *std::min_element(p, p + numel_);
}

float Tensor::max() const {
  check(!empty(), "max of empty tensor");
  const float* p = data();
  return *std::max_element(p, p + numel_);
}

float Tensor::abs_max() const {
  const float* p = data();
  float m = 0;
  for (int64_t i = 0; i < numel_; ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

float Tensor::norm() const {
  const float* p = data();
  double acc = 0;
  for (int64_t i = 0; i < numel_; ++i)
    acc += static_cast<double>(p[i]) * p[i];
  return static_cast<float>(std::sqrt(acc));
}

int64_t Tensor::argmax() const {
  check(!empty(), "argmax of empty tensor");
  const float* p = data();
  return static_cast<int64_t>(std::max_element(p, p + numel_) - p);
}

Shape broadcast_shape(const Shape& a, const Shape& b) {
  const size_t n = std::max(a.size(), b.size());
  Shape out(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t da = i < n - a.size() ? 1 : a[i - (n - a.size())];
    const int64_t db = i < n - b.size() ? 1 : b[i - (n - b.size())];
    check(da == db || da == 1 || db == 1,
          "broadcast: incompatible shapes " + shape_str(a) + " vs " +
              shape_str(b));
    out[i] = std::max(da, db);
  }
  return out;
}

namespace {

template <typename F>
Tensor binary_op(const Tensor& a, const Tensor& b, F f) {
  if (a.shape() == b.shape()) {  // fast path
    Tensor out = Tensor::uninit(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
    return out;
  }
  const Shape os = broadcast_shape(a.shape(), b.shape());
  Tensor out = Tensor::uninit(os);
  const size_t nd = os.size();
  // Pad shapes on the left with 1s, compute broadcast strides (0 on size-1).
  auto padded_strides = [&](const Shape& s) {
    std::vector<int64_t> st(nd, 0);
    int64_t acc = 1;
    for (int64_t i = static_cast<int64_t>(s.size()) - 1; i >= 0; --i) {
      const size_t oi = nd - s.size() + static_cast<size_t>(i);
      st[oi] = (s[static_cast<size_t>(i)] == 1) ? 0 : acc;
      acc *= s[static_cast<size_t>(i)];
    }
    return st;
  };
  const auto sa = padded_strides(a.shape());
  const auto sb = padded_strides(b.shape());
  std::vector<int64_t> idx(nd, 0);
  const int64_t n = out.numel();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t flat = 0; flat < n; ++flat) {
    int64_t ia = 0, ib = 0;
    for (size_t d = 0; d < nd; ++d) {
      ia += idx[d] * sa[d];
      ib += idx[d] * sb[d];
    }
    po[flat] = f(pa[ia], pb[ib]);
    for (int64_t d = static_cast<int64_t>(nd) - 1; d >= 0; --d) {
      if (++idx[static_cast<size_t>(d)] < os[static_cast<size_t>(d)]) break;
      idx[static_cast<size_t>(d)] = 0;
    }
  }
  return out;
}

// Out-of-place unary map: writes f(a[i]) into a fresh (uninitialized)
// tensor, avoiding the copy-then-overwrite a COW `Tensor out = a` would do.
template <typename F>
Tensor unary_op(const Tensor& a, F f) {
  Tensor out = Tensor::uninit(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i]);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x / y; });
}

Tensor operator+(const Tensor& a, const Tensor& b) { return add(a, b); }
Tensor operator-(const Tensor& a, const Tensor& b) { return sub(a, b); }
Tensor operator*(const Tensor& a, const Tensor& b) { return mul(a, b); }
Tensor operator/(const Tensor& a, const Tensor& b) { return div(a, b); }

Tensor operator*(const Tensor& a, float s) {
  return unary_op(a, [s](float v) { return v * s; });
}
Tensor operator*(float s, const Tensor& a) { return a * s; }
Tensor operator+(const Tensor& a, float s) {
  return unary_op(a, [s](float v) { return v + s; });
}
Tensor operator-(const Tensor& a) { return a * -1.0f; }

Tensor exp(const Tensor& a) {
  return unary_op(a, [](float v) { return std::exp(v); });
}
Tensor log(const Tensor& a) {
  return unary_op(a, [](float v) { return std::log(v); });
}
Tensor sqrt(const Tensor& a) {
  return unary_op(a, [](float v) { return std::sqrt(v); });
}
Tensor abs(const Tensor& a) {
  return unary_op(a, [](float v) { return std::fabs(v); });
}
Tensor pow(const Tensor& a, float p) {
  return unary_op(a, [p](float v) { return std::pow(v, p); });
}
Tensor clamp(const Tensor& a, float lo, float hi) {
  return unary_op(a, [lo, hi](float v) { return std::clamp(v, lo, hi); });
}

Tensor reduce_to_shape(const Tensor& t, const Shape& target) {
  if (t.shape() == target) return t;
  // Sum over leading extra dims first.
  Tensor cur = t;
  while (cur.dim() > static_cast<int64_t>(target.size()))
    cur = sum_axis(cur, 0, /*keepdim=*/false);
  // Then sum over broadcasted (size-1 in target) dims.
  for (int64_t d = 0; d < cur.dim(); ++d) {
    if (target[static_cast<size_t>(d)] == 1 && cur.size(d) != 1)
      cur = sum_axis(cur, d, /*keepdim=*/true);
  }
  check(cur.shape() == target, "reduce_to_shape: cannot reduce " +
                                   shape_str(t.shape()) + " to " +
                                   shape_str(target));
  return cur;
}

namespace {

// Decompose a shape around `axis` into (outer, n, inner) extents.
struct AxisSplit {
  int64_t outer, n, inner;
};

AxisSplit split_axis(const Shape& s, int64_t axis) {
  AxisSplit sp{1, s[static_cast<size_t>(axis)], 1};
  for (int64_t i = 0; i < axis; ++i) sp.outer *= s[static_cast<size_t>(i)];
  for (size_t i = static_cast<size_t>(axis) + 1; i < s.size(); ++i)
    sp.inner *= s[i];
  return sp;
}

Shape reduced_shape(const Shape& s, int64_t axis, bool keepdim) {
  Shape out = s;
  if (keepdim) {
    out[static_cast<size_t>(axis)] = 1;
  } else {
    out.erase(out.begin() + axis);
  }
  return out;
}

}  // namespace

Tensor sum_axis(const Tensor& t, int64_t axis, bool keepdim) {
  if (axis < 0) axis += t.dim();
  check(axis >= 0 && axis < t.dim(), "sum_axis: bad axis");
  const auto sp = split_axis(t.shape(), axis);
  Tensor out(reduced_shape(t.shape(), axis, keepdim));
  const float* src = t.data();
  float* dst = out.data();
  for (int64_t o = 0; o < sp.outer; ++o)
    for (int64_t k = 0; k < sp.n; ++k) {
      const float* row = src + (o * sp.n + k) * sp.inner;
      float* orow = dst + o * sp.inner;
      for (int64_t i = 0; i < sp.inner; ++i) orow[i] += row[i];
    }
  return out;
}

Tensor mean_axis(const Tensor& t, int64_t axis, bool keepdim) {
  if (axis < 0) axis += t.dim();
  Tensor out = sum_axis(t, axis, keepdim);
  out.mul_(1.0f / static_cast<float>(t.size(axis)));
  return out;
}

Tensor max_axis(const Tensor& t, int64_t axis, bool keepdim) {
  if (axis < 0) axis += t.dim();
  check(axis >= 0 && axis < t.dim(), "max_axis: bad axis");
  const auto sp = split_axis(t.shape(), axis);
  Tensor out(reduced_shape(t.shape(), axis, keepdim),
             -std::numeric_limits<float>::infinity());
  const float* src = t.data();
  float* dst = out.data();
  for (int64_t o = 0; o < sp.outer; ++o)
    for (int64_t k = 0; k < sp.n; ++k) {
      const float* row = src + (o * sp.n + k) * sp.inner;
      float* orow = dst + o * sp.inner;
      for (int64_t i = 0; i < sp.inner; ++i)
        orow[i] = std::max(orow[i], row[i]);
    }
  return out;
}

std::vector<int64_t> argmax_rows(const Tensor& t) {
  check(t.dim() == 2, "argmax_rows: 2-D tensor required");
  const int64_t rows = t.size(0), cols = t.size(1);
  std::vector<int64_t> out(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = t.data() + r * cols;
    out[static_cast<size_t>(r)] = static_cast<int64_t>(
        std::max_element(row, row + cols) - row);
  }
  return out;
}

Tensor concat(const std::vector<Tensor>& parts, int64_t axis) {
  check(!parts.empty(), "concat: no inputs");
  if (axis < 0) axis += parts[0].dim();
  Shape os = parts[0].shape();
  int64_t total = 0;
  for (const Tensor& p : parts) {
    check(p.dim() == parts[0].dim(), "concat: rank mismatch");
    for (int64_t d = 0; d < p.dim(); ++d)
      check(d == axis || p.size(d) == parts[0].size(d),
            "concat: shape mismatch on non-concat axis");
    total += p.size(axis);
  }
  os[static_cast<size_t>(axis)] = total;
  Tensor out = Tensor::uninit(os);
  const auto sp = split_axis(os, axis);
  float* base = out.data();
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    const int64_t pn = p.size(axis);
    const float* src = p.data();
    for (int64_t o = 0; o < sp.outer; ++o) {
      float* dst = base + (o * sp.n + offset) * sp.inner;
      const float* s = src + o * pn * sp.inner;
      std::copy(s, s + pn * sp.inner, dst);
    }
    offset += pn;
  }
  return out;
}

Tensor slice(const Tensor& t, int64_t axis, int64_t start, int64_t len) {
  if (axis < 0) axis += t.dim();
  check(axis >= 0 && axis < t.dim(), "slice: bad axis");
  check(start >= 0 && start + len <= t.size(axis), "slice: out of range");
  if (axis == 0) return t.narrow(start, len);  // zero-copy view
  const auto sp = split_axis(t.shape(), axis);
  Shape os = t.shape();
  os[static_cast<size_t>(axis)] = len;
  Tensor out = Tensor::uninit(os);
  const float* base = t.data();
  float* obase = out.data();
  for (int64_t o = 0; o < sp.outer; ++o) {
    const float* src = base + (o * sp.n + start) * sp.inner;
    float* dst = obase + o * len * sp.inner;
    std::copy(src, src + len * sp.inner, dst);
  }
  return out;
}

Tensor pad_slice(const Tensor& piece, const Shape& full_shape, int64_t axis,
                 int64_t start) {
  int64_t ax = axis < 0 ? axis + static_cast<int64_t>(full_shape.size()) : axis;
  Tensor out(full_shape);
  const auto sp = split_axis(full_shape, ax);
  const int64_t len = piece.size(ax);
  const float* base = piece.data();
  float* obase = out.data();
  for (int64_t o = 0; o < sp.outer; ++o) {
    const float* src = base + o * len * sp.inner;
    float* dst = obase + (o * sp.n + start) * sp.inner;
    std::copy(src, src + len * sp.inner, dst);
  }
  return out;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return std::numeric_limits<float>::infinity();
  float m = 0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float diff = std::fabs(pa[i] - pb[i]);
    if (diff > atol + rtol * std::fabs(pb[i])) return false;
  }
  return true;
}

}  // namespace pf
