// im2col / col2im lowering for convolution.
//
// Convolutions in this repo are computed by lowering each image to a column
// matrix of receptive-field patches and calling the matmul kernel -- the same
// strategy cuDNN's GEMM algorithm uses, and the one the paper's MAC
// accounting (Table 1) assumes.
#pragma once

#include "tensor/tensor.h"

namespace pf {

struct ConvGeom {
  int64_t c_in = 0, h = 0, w = 0;      // input geometry
  int64_t kernel = 1, stride = 1, pad = 0;
  int64_t out_h() const { return (h + 2 * pad - kernel) / stride + 1; }
  int64_t out_w() const { return (w + 2 * pad - kernel) / stride + 1; }
  int64_t patch() const { return c_in * kernel * kernel; }
};

// Lower one image (c_in, h, w) to a (c_in*k*k, out_h*out_w) column matrix.
// `img` points at c_in*h*w floats; `col` at patch()*out_h()*out_w() floats.
void im2col(const float* img, const ConvGeom& g, float* col);

// Adjoint of im2col: scatter-add columns back into the image gradient.
// `img` must be pre-zeroed by the caller.
void col2im(const float* col, const ConvGeom& g, float* img);

}  // namespace pf
