#include "tensor/im2col.h"

namespace pf {

void im2col(const float* img, const ConvGeom& g, float* col) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t spatial = oh * ow;
  // Column layout: row index = (c*k + ki)*k + kj, col index = oy*ow + ox.
  for (int64_t c = 0; c < g.c_in; ++c) {
    const float* plane = img + c * g.h * g.w;
    for (int64_t ki = 0; ki < g.kernel; ++ki) {
      for (int64_t kj = 0; kj < g.kernel; ++kj) {
        float* crow = col + ((c * g.kernel + ki) * g.kernel + kj) * spatial;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * g.stride - g.pad + ki;
          if (iy < 0 || iy >= g.h) {
            for (int64_t ox = 0; ox < ow; ++ox) crow[oy * ow + ox] = 0.0f;
            continue;
          }
          const float* srow = plane + iy * g.w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * g.stride - g.pad + kj;
            crow[oy * ow + ox] =
                (ix >= 0 && ix < g.w) ? srow[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* col, const ConvGeom& g, float* img) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t spatial = oh * ow;
  for (int64_t c = 0; c < g.c_in; ++c) {
    float* plane = img + c * g.h * g.w;
    for (int64_t ki = 0; ki < g.kernel; ++ki) {
      for (int64_t kj = 0; kj < g.kernel; ++kj) {
        const float* crow =
            col + ((c * g.kernel + ki) * g.kernel + kj) * spatial;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * g.stride - g.pad + ki;
          if (iy < 0 || iy >= g.h) continue;
          float* srow = plane + iy * g.w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * g.stride - g.pad + kj;
            if (ix >= 0 && ix < g.w) srow[ix] += crow[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace pf
