#include "tensor/im2col.h"

#include <algorithm>

#include "runtime/thread_pool.h"
#include "trace/trace.h"

namespace pf {

namespace {

// Column rows per parallel chunk: each row is `spatial` floats, so target a
// few KB of writes per chunk to keep dispatch overhead off small convs.
int64_t col_row_grain(int64_t spatial) {
  return std::max<int64_t>(1, 8192 / std::max<int64_t>(1, spatial));
}

}  // namespace

void im2col(const float* img, const ConvGeom& g, float* col) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t spatial = oh * ow;
  const int64_t kk2 = g.kernel * g.kernel;
  PF_TRACE_SCOPE_C("im2col", g.c_in * kk2 * spatial);
  // Column layout: row index = (c*k + ki)*k + kj, col index = oy*ow + ox.
  // Every column row is written by exactly one chunk, so the parallel split
  // over rows is race-free and bit-identical to the serial walk.
  runtime::parallel_for(
      0, g.c_in * kk2, col_row_grain(spatial), [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const int64_t c = r / kk2;
          const int64_t ki = (r % kk2) / g.kernel;
          const int64_t kj = r % g.kernel;
          const float* plane = img + c * g.h * g.w;
          float* crow = col + r * spatial;
          for (int64_t oy = 0; oy < oh; ++oy) {
            const int64_t iy = oy * g.stride - g.pad + ki;
            if (iy < 0 || iy >= g.h) {
              for (int64_t ox = 0; ox < ow; ++ox) crow[oy * ow + ox] = 0.0f;
              continue;
            }
            const float* srow = plane + iy * g.w;
            for (int64_t ox = 0; ox < ow; ++ox) {
              const int64_t ix = ox * g.stride - g.pad + kj;
              crow[oy * ow + ox] = (ix >= 0 && ix < g.w) ? srow[ix] : 0.0f;
            }
          }
        }
      });
}

void col2im(const float* col, const ConvGeom& g, float* img) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t spatial = oh * ow;
  PF_TRACE_SCOPE_C("col2im", g.c_in * g.kernel * g.kernel * spatial);
  // Scatter-add: all (ki, kj) rows of one channel accumulate into the same
  // image plane, so the parallel split is over channels only -- planes are
  // disjoint and each keeps the serial accumulation order.
  runtime::parallel_for(0, g.c_in, 1, [=](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      float* plane = img + c * g.h * g.w;
      for (int64_t ki = 0; ki < g.kernel; ++ki) {
        for (int64_t kj = 0; kj < g.kernel; ++kj) {
          const float* crow =
              col + ((c * g.kernel + ki) * g.kernel + kj) * spatial;
          for (int64_t oy = 0; oy < oh; ++oy) {
            const int64_t iy = oy * g.stride - g.pad + ki;
            if (iy < 0 || iy >= g.h) continue;
            float* srow = plane + iy * g.w;
            for (int64_t ox = 0; ox < ow; ++ox) {
              const int64_t ix = ox * g.stride - g.pad + kj;
              if (ix >= 0 && ix < g.w) srow[ix] += crow[oy * ow + ox];
            }
          }
        }
      }
    }
  });
}

}  // namespace pf
