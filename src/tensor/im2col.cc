#include "tensor/im2col.h"

#include "kernels/kernels.h"
#include "trace/trace.h"

namespace pf {

// Thin dispatching wrappers: the loop nests live in the kernel backend
// (pf::kernels::Backend::im2col / col2im defaults in src/kernels/kernels.cc).
// Trace spans stay here so flop accounting is identical for every backend.

void im2col(const float* img, const ConvGeom& g, float* col) {
  const int64_t spatial = g.out_h() * g.out_w();
  PF_TRACE_SCOPE_C("im2col", g.c_in * g.kernel * g.kernel * spatial);
  kernels::active().im2col(img, g, col);
}

void col2im(const float* col, const ConvGeom& g, float* img) {
  const int64_t spatial = g.out_h() * g.out_w();
  PF_TRACE_SCOPE_C("col2im", g.c_in * g.kernel * g.kernel * spatial);
  kernels::active().col2im(col, g, img);
}

}  // namespace pf
