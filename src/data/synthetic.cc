#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

namespace pf::data {

namespace {

// Smooth a (C, H, W) field in place with a separable 3-tap blur, `passes`
// times -- cheap way to get CIFAR-like low-frequency class prototypes.
void smooth(Tensor& t, int64_t c, int64_t h, int64_t w, int passes) {
  Tensor tmp(t.shape());
  for (int p = 0; p < passes; ++p) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* src = t.data() + ch * h * w;
      float* dst = tmp.data() + ch * h * w;
      for (int64_t y = 0; y < h; ++y)
        for (int64_t x = 0; x < w; ++x) {
          float acc = 0;
          int cnt = 0;
          for (int dy = -1; dy <= 1; ++dy)
            for (int dx = -1; dx <= 1; ++dx) {
              const int64_t yy = y + dy, xx = x + dx;
              if (yy < 0 || yy >= h || xx < 0 || xx >= w) continue;
              acc += src[yy * w + xx];
              ++cnt;
            }
          dst[y * w + x] = acc / static_cast<float>(cnt);
        }
    }
    std::swap(t, tmp);
  }
}

}  // namespace

SyntheticImages::SyntheticImages(const Config& cfg) : cfg_(cfg) {
  Rng rng(cfg.seed);
  const int64_t c = cfg.channels, hw = cfg.hw;
  prototypes_ = rng.randn(Shape{cfg.num_classes, c, hw, hw});
  for (int64_t k = 0; k < cfg.num_classes; ++k) {
    Tensor proto(Shape{c, hw, hw},
                 std::vector<float>(prototypes_.data() + k * c * hw * hw,
                                    prototypes_.data() + (k + 1) * c * hw * hw));
    smooth(proto, c, hw, hw, 3);
    // Re-normalize so prototypes keep unit-ish scale after blurring.
    const float nrm = proto.norm() /
                      std::sqrt(static_cast<float>(proto.numel()));
    proto.mul_(1.0f / std::max(1e-6f, nrm));
    std::copy(proto.data(), proto.data() + proto.numel(),
              prototypes_.data() + k * c * hw * hw);
  }

  Rng train_rng = rng.split(1);
  train_images_ = Tensor(Shape{cfg.train_size, c, hw, hw});
  train_labels_.resize(static_cast<size_t>(cfg.train_size));
  for (int64_t i = 0; i < cfg.train_size; ++i) {
    const int64_t cls = i % cfg.num_classes;
    train_labels_[static_cast<size_t>(i)] = cls;
    Tensor s = make_sample(cls, train_rng, /*augment=*/false);
    std::copy(s.data(), s.data() + s.numel(),
              train_images_.data() + i * c * hw * hw);
  }
  Rng test_rng = rng.split(2);
  test_images_ = Tensor(Shape{cfg.test_size, c, hw, hw});
  test_labels_.resize(static_cast<size_t>(cfg.test_size));
  for (int64_t i = 0; i < cfg.test_size; ++i) {
    const int64_t cls = i % cfg.num_classes;
    test_labels_[static_cast<size_t>(i)] = cls;
    Tensor s = make_sample(cls, test_rng, /*augment=*/false);
    std::copy(s.data(), s.data() + s.numel(),
              test_images_.data() + i * c * hw * hw);
  }
}

Tensor SyntheticImages::make_sample(int64_t cls, Rng& rng,
                                    bool augment) const {
  const int64_t c = cfg_.channels, hw = cfg_.hw;
  Tensor s(Shape{c, hw, hw});
  const float* proto = prototypes_.data() + cls * c * hw * hw;
  const int64_t dy = augment ? rng.uniform_int(5) - 2 : 0;
  const int64_t dx = augment ? rng.uniform_int(5) - 2 : 0;
  const bool flip = augment && rng.bernoulli(0.5);
  for (int64_t ch = 0; ch < c; ++ch)
    for (int64_t y = 0; y < hw; ++y)
      for (int64_t x = 0; x < hw; ++x) {
        int64_t sy = y + dy, sx = x + dx;
        sy = std::clamp<int64_t>(sy, 0, hw - 1);
        sx = std::clamp<int64_t>(sx, 0, hw - 1);
        if (flip) sx = hw - 1 - sx;
        s[(ch * hw + y) * hw + x] =
            proto[(ch * hw + sy) * hw + sx] +
            cfg_.noise * static_cast<float>(rng.normal());
      }
  return s;
}

std::vector<ImageBatch> SyntheticImages::train_batches(int64_t batch,
                                                       int epoch) const {
  Rng rng(cfg_.seed ^ (0x5bd1e995ull * static_cast<uint64_t>(epoch + 1)));
  const auto perm = rng.permutation(cfg_.train_size);
  const int64_t c = cfg_.channels, hw = cfg_.hw;
  std::vector<ImageBatch> out;
  for (int64_t start = 0; start + batch <= cfg_.train_size; start += batch) {
    ImageBatch b;
    b.images = Tensor(Shape{batch, c, hw, hw});
    b.labels.resize(static_cast<size_t>(batch));
    for (int64_t i = 0; i < batch; ++i) {
      const int64_t idx = perm[static_cast<size_t>(start + i)];
      b.labels[static_cast<size_t>(i)] = train_labels_[static_cast<size_t>(idx)];
      if (cfg_.augment) {
        Tensor s = make_sample(train_labels_[static_cast<size_t>(idx)], rng,
                               true);
        std::copy(s.data(), s.data() + s.numel(),
                  b.images.data() + i * c * hw * hw);
      } else {
        const float* src = train_images_.data() + idx * c * hw * hw;
        std::copy(src, src + c * hw * hw, b.images.data() + i * c * hw * hw);
      }
    }
    out.push_back(std::move(b));
  }
  return out;
}

ImageBatch SyntheticImages::test_batch(int64_t start, int64_t count) const {
  const int64_t c = cfg_.channels, hw = cfg_.hw;
  count = std::min(count, cfg_.test_size - start);
  ImageBatch b;
  b.images = Tensor(Shape{count, c, hw, hw});
  b.labels.assign(test_labels_.begin() + start,
                  test_labels_.begin() + start + count);
  std::copy(test_images_.data() + start * c * hw * hw,
            test_images_.data() + (start + count) * c * hw * hw,
            b.images.data());
  return b;
}

SyntheticCorpus::SyntheticCorpus(const Config& cfg) : cfg_(cfg) {
  Rng rng(cfg.seed);
  // Each token gets `branching` likely successors (prob mass 0.9 split
  // unevenly) plus uniform leakage.
  std::vector<std::vector<int64_t>> succ(static_cast<size_t>(cfg.vocab));
  for (auto& s : succ) {
    s.resize(static_cast<size_t>(cfg.branching));
    for (auto& t : s) t = rng.uniform_int(cfg.vocab);
  }
  auto gen = [&](int64_t n, Rng& r) {
    std::vector<int64_t> stream(static_cast<size_t>(n));
    int64_t cur = r.uniform_int(cfg.vocab);
    for (int64_t i = 0; i < n; ++i) {
      stream[static_cast<size_t>(i)] = cur;
      if (r.bernoulli(0.9)) {
        // Geometric-ish preference over the successor list.
        size_t j = 0;
        while (j + 1 < succ[static_cast<size_t>(cur)].size() &&
               r.bernoulli(0.5))
          ++j;
        cur = succ[static_cast<size_t>(cur)][j];
      } else {
        cur = r.uniform_int(cfg.vocab);
      }
    }
    return stream;
  };
  Rng r1 = rng.split(1), r2 = rng.split(2), r3 = rng.split(3);
  train_ = gen(cfg.train_tokens, r1);
  valid_ = gen(cfg.valid_tokens, r2);
  test_ = gen(cfg.test_tokens, r3);
}

std::vector<SyntheticCorpus::LmBatch> SyntheticCorpus::batchify(
    const std::vector<int64_t>& stream, int64_t b, int64_t bptt) {
  // Split the stream into b parallel columns, then cut bptt-length segments.
  const int64_t cols = static_cast<int64_t>(stream.size()) / b;
  std::vector<LmBatch> out;
  for (int64_t start = 0; start + bptt + 1 <= cols; start += bptt) {
    LmBatch lb;
    lb.t = bptt;
    lb.b = b;
    lb.input.resize(static_cast<size_t>(bptt * b));
    lb.target.resize(static_cast<size_t>(bptt * b));
    for (int64_t t = 0; t < bptt; ++t)
      for (int64_t col = 0; col < b; ++col) {
        lb.input[static_cast<size_t>(t * b + col)] =
            stream[static_cast<size_t>(col * cols + start + t)];
        lb.target[static_cast<size_t>(t * b + col)] =
            stream[static_cast<size_t>(col * cols + start + t + 1)];
      }
    out.push_back(std::move(lb));
  }
  return out;
}

SyntheticTranslation::SyntheticTranslation(const Config& cfg) : cfg_(cfg) {
  Rng rng(cfg.seed);
  Rng r1 = rng.split(1), r2 = rng.split(2);
  train_.reserve(static_cast<size_t>(cfg.train_pairs));
  for (int64_t i = 0; i < cfg.train_pairs; ++i) train_.push_back(make_pair(r1));
  test_.reserve(static_cast<size_t>(cfg.test_pairs));
  for (int64_t i = 0; i < cfg.test_pairs; ++i) test_.push_back(make_pair(r2));
}

SyntheticTranslation::Pair SyntheticTranslation::make_pair(Rng& rng) const {
  const int64_t content = cfg_.vocab - 3;
  const int64_t len =
      cfg_.min_len + rng.uniform_int(cfg_.max_len - cfg_.min_len + 1);
  Pair p;
  std::vector<int64_t> words(static_cast<size_t>(len));
  for (auto& w : words) w = 3 + rng.uniform_int(content);
  p.src = words;
  p.src.push_back(kEos);
  // Deterministic transduction: remap each token and reverse pairs of
  // adjacent tokens -- local structure a seq2seq model must learn.
  std::vector<int64_t> tgt_words = words;
  for (auto& w : tgt_words) w = 3 + ((w - 3) * 7 + 3) % content;
  for (size_t i = 0; i + 1 < tgt_words.size(); i += 2)
    std::swap(tgt_words[i], tgt_words[i + 1]);
  p.tgt.push_back(kBos);
  p.tgt.insert(p.tgt.end(), tgt_words.begin(), tgt_words.end());
  p.tgt.push_back(kEos);
  return p;
}

std::vector<SyntheticTranslation::MtBatch> SyntheticTranslation::batches(
    const std::vector<Pair>& pairs, int64_t batch, int epoch) const {
  Rng rng(cfg_.seed ^ (0x2545F4914F6CDD1Dull * static_cast<uint64_t>(epoch + 1)));
  const auto perm = rng.permutation(static_cast<int64_t>(pairs.size()));
  std::vector<MtBatch> out;
  for (size_t start = 0; start + static_cast<size_t>(batch) <= pairs.size();
       start += static_cast<size_t>(batch)) {
    MtBatch mb;
    mb.b = batch;
    mb.src_len = 0;
    mb.tgt_len = 0;
    for (int64_t i = 0; i < batch; ++i) {
      const Pair& p = pairs[static_cast<size_t>(perm[start + static_cast<size_t>(i)])];
      mb.src_len = std::max<int64_t>(mb.src_len,
                                     static_cast<int64_t>(p.src.size()));
      mb.tgt_len = std::max<int64_t>(
          mb.tgt_len, static_cast<int64_t>(p.tgt.size()) - 1);
    }
    mb.src.assign(static_cast<size_t>(batch * mb.src_len), kPad);
    mb.tgt_in.assign(static_cast<size_t>(batch * mb.tgt_len), kPad);
    mb.tgt_out.assign(static_cast<size_t>(batch * mb.tgt_len), -100);
    for (int64_t i = 0; i < batch; ++i) {
      const Pair& p = pairs[static_cast<size_t>(perm[start + static_cast<size_t>(i)])];
      for (size_t t = 0; t < p.src.size(); ++t)
        mb.src[static_cast<size_t>(i * mb.src_len) + t] = p.src[t];
      // tgt_in = tgt[:-1], tgt_out = tgt[1:].
      for (size_t t = 0; t + 1 < p.tgt.size(); ++t) {
        mb.tgt_in[static_cast<size_t>(i * mb.tgt_len) + t] = p.tgt[t];
        mb.tgt_out[static_cast<size_t>(i * mb.tgt_len) + t] = p.tgt[t + 1];
      }
    }
    out.push_back(std::move(mb));
  }
  return out;
}

}  // namespace pf::data
