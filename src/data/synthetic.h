// Synthetic, learnable stand-ins for the paper's datasets (see DESIGN.md
// substitution table). Each generator is deterministic given its seed.
//
// Images:   class-conditional smooth Gaussian prototypes + per-sample noise
//           and augmentation-like jitter (shift / horizontal flip), giving a
//           task where model capacity and optimization quality show up in
//           test accuracy the way CIFAR does at small scale.
// Text:     an order-1 Markov chain with sparse structured transitions, so
//           the LM task has real sequential structure and a perplexity floor
//           well below vocab size.
// Translation: source sentences from the Markov chain; the target is a
//           deterministic transduction (token remap + local reversal), so a
//           seq2seq model can in principle reach near-zero loss / high BLEU.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace pf::data {

struct ImageBatch {
  Tensor images;                 // (N, C, H, W)
  std::vector<int64_t> labels;   // (N)
};

class SyntheticImages {
 public:
  struct Config {
    int64_t num_classes = 10;
    int64_t channels = 3;
    int64_t hw = 32;
    int64_t train_size = 512;
    int64_t test_size = 256;
    float noise = 0.35f;    // per-pixel sample noise (relative to prototypes)
    bool augment = true;    // random shift + flip on training samples
    uint64_t seed = 7;
  };

  explicit SyntheticImages(const Config& cfg);

  int64_t train_size() const { return cfg_.train_size; }
  int64_t test_size() const { return cfg_.test_size; }
  const Config& config() const { return cfg_; }

  // Shuffled mini-batches over the training set; `epoch` seeds the shuffle
  // and augmentation so runs are reproducible.
  std::vector<ImageBatch> train_batches(int64_t batch, int epoch) const;
  ImageBatch test_batch(int64_t start, int64_t count) const;

 private:
  Tensor make_sample(int64_t cls, Rng& rng, bool augment) const;

  Config cfg_;
  Tensor prototypes_;  // (classes, C, H, W) smooth class templates
  Tensor train_images_;
  std::vector<int64_t> train_labels_;
  Tensor test_images_;
  std::vector<int64_t> test_labels_;
};

// Order-1 Markov chain token stream.
class SyntheticCorpus {
 public:
  struct Config {
    int64_t vocab = 200;
    int64_t train_tokens = 20000;
    int64_t valid_tokens = 4000;
    int64_t test_tokens = 4000;
    int64_t branching = 4;  // out-degree of each state's likely successors
    uint64_t seed = 11;
  };

  explicit SyntheticCorpus(const Config& cfg);

  const std::vector<int64_t>& train() const { return train_; }
  const std::vector<int64_t>& valid() const { return valid_; }
  const std::vector<int64_t>& test() const { return test_; }
  const Config& config() const { return cfg_; }

  // Time-major (T, B) LM batching like the PyTorch word_language_model
  // example: returns contiguous (input, target) id pairs per segment.
  struct LmBatch {
    std::vector<int64_t> input;   // (T*B) time-major
    std::vector<int64_t> target;  // (T*B)
    int64_t t, b;
  };
  static std::vector<LmBatch> batchify(const std::vector<int64_t>& stream,
                                       int64_t b, int64_t bptt);

 private:
  Config cfg_;
  std::vector<int64_t> train_, valid_, test_;
};

// Synthetic translation pairs. Token ids: 0 = pad, 1 = BOS, 2 = EOS,
// content tokens start at 3.
class SyntheticTranslation {
 public:
  struct Config {
    int64_t vocab = 64;          // includes pad/bos/eos
    int64_t min_len = 4, max_len = 10;
    int64_t train_pairs = 512;
    int64_t test_pairs = 128;
    uint64_t seed = 13;
  };
  static constexpr int64_t kPad = 0, kBos = 1, kEos = 2;

  explicit SyntheticTranslation(const Config& cfg);

  struct Pair {
    std::vector<int64_t> src;  // content + EOS
    std::vector<int64_t> tgt;  // BOS + content + EOS
  };
  const std::vector<Pair>& train() const { return train_; }
  const std::vector<Pair>& test() const { return test_; }
  const Config& config() const { return cfg_; }

  struct MtBatch {
    std::vector<int64_t> src;        // (B * src_len), padded
    std::vector<int64_t> tgt_in;     // (B * tgt_len): BOS + content
    std::vector<int64_t> tgt_out;    // (B * tgt_len): content + EOS, pad = -100
    int64_t src_len, tgt_len, b;
  };
  // Batches of `batch` pairs, padded to the longest member.
  std::vector<MtBatch> batches(const std::vector<Pair>& pairs, int64_t batch,
                               int epoch) const;

 private:
  Pair make_pair(Rng& rng) const;
  Config cfg_;
  std::vector<Pair> train_, test_;
};

}  // namespace pf::data
