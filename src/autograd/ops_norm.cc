// BatchNorm2d and LayerNorm.
//
// Both use the fused training-mode adjoint
//   dx = (gamma / sigma) * (dy - mean(dy) - xhat * mean(dy * xhat))
// which is exact for the batch statistics actually used in the forward pass.
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "autograd/ops.h"

namespace pf::ag {

namespace {

void check(bool cond, const char* msg) {
  if (!cond) throw std::runtime_error(msg);
}

}  // namespace

Var batchnorm2d(const Var& x, const Var& gamma, const Var& beta,
                Tensor* running_mean, Tensor* running_var, bool training,
                float momentum, float eps) {
  check(x->value.dim() == 4, "batchnorm2d: 4-D input");
  const int64_t n = x->value.size(0), c = x->value.size(1),
                h = x->value.size(2), w = x->value.size(3);
  check(gamma->value.numel() == c && beta->value.numel() == c,
        "batchnorm2d: gamma/beta size");
  const int64_t hw = h * w;
  const int64_t m = n * hw;  // elements per channel

  auto xhat = std::make_shared<Tensor>(Tensor::uninit(x->shape()));
  auto inv_sigma = std::make_shared<Tensor>(Tensor::uninit(Shape{c}));

  const Tensor& xv = x->value;  // const reads: no COW unshare of shard views
  const float* xp = xv.data();
  float* xhp = xhat->data();
  float* isp = inv_sigma->data();
  if (training) {
    for (int64_t ch = 0; ch < c; ++ch) {
      double mu = 0;
      for (int64_t i = 0; i < n; ++i) {
        const float* plane = xp + (i * c + ch) * hw;
        for (int64_t j = 0; j < hw; ++j) mu += plane[j];
      }
      mu /= static_cast<double>(m);
      double var = 0;
      for (int64_t i = 0; i < n; ++i) {
        const float* plane = xp + (i * c + ch) * hw;
        for (int64_t j = 0; j < hw; ++j) {
          const double d = plane[j] - mu;
          var += d * d;
        }
      }
      var /= static_cast<double>(m);
      const float is = static_cast<float>(1.0 / std::sqrt(var + eps));
      isp[ch] = is;
      for (int64_t i = 0; i < n; ++i) {
        const float* plane = xp + (i * c + ch) * hw;
        float* xh = xhp + (i * c + ch) * hw;
        for (int64_t j = 0; j < hw; ++j)
          xh[j] = (plane[j] - static_cast<float>(mu)) * is;
      }
      if (running_mean && running_var) {
        // PyTorch uses the unbiased variance for the running buffer.
        const double unbiased =
            var * static_cast<double>(m) / std::max<int64_t>(1, m - 1);
        (*running_mean)[ch] = (1 - momentum) * (*running_mean)[ch] +
                              momentum * static_cast<float>(mu);
        (*running_var)[ch] = (1 - momentum) * (*running_var)[ch] +
                             momentum * static_cast<float>(unbiased);
      }
    }
  } else {
    check(running_mean && running_var, "batchnorm2d eval: running stats");
    for (int64_t ch = 0; ch < c; ++ch) {
      const float mu = (*running_mean)[ch];
      const float is =
          1.0f / std::sqrt((*running_var)[ch] + eps);
      isp[ch] = is;
      for (int64_t i = 0; i < n; ++i) {
        const float* plane = xp + (i * c + ch) * hw;
        float* xh = xhp + (i * c + ch) * hw;
        for (int64_t j = 0; j < hw; ++j) xh[j] = (plane[j] - mu) * is;
      }
    }
  }

  Tensor out = Tensor::uninit(x->shape());
  const Tensor& gv = gamma->value;
  const Tensor& bv = beta->value;
  float* outp = out.data();
  for (int64_t i = 0; i < n; ++i)
    for (int64_t ch = 0; ch < c; ++ch) {
      const float g = gv[ch], b = bv[ch];
      const float* xh = xhp + (i * c + ch) * hw;
      float* o = outp + (i * c + ch) * hw;
      for (int64_t j = 0; j < hw; ++j) o[j] = g * xh[j] + b;
    }

  return make_node(
      std::move(out), {x, gamma, beta},
      [xhat, inv_sigma, n, c, hw, m, training](Node& nd) {
        const Var& x = nd.inputs[0];
        const Var& gamma = nd.inputs[1];
        const Var& beta = nd.inputs[2];
        const Tensor& gr = nd.grad;
        const float* gp = gr.data();
        const float* xhp = std::as_const(*xhat).data();
        Tensor dgamma = Tensor::uninit(Shape{c});
        Tensor dbeta = Tensor::uninit(Shape{c});
        float* dgp = dgamma.data();
        float* dbp = dbeta.data();
        for (int64_t ch = 0; ch < c; ++ch) {
          double dg = 0, db = 0;
          for (int64_t i = 0; i < n; ++i) {
            const float* dy = gp + (i * c + ch) * hw;
            const float* xh = xhp + (i * c + ch) * hw;
            for (int64_t j = 0; j < hw; ++j) {
              dg += static_cast<double>(dy[j]) * xh[j];
              db += dy[j];
            }
          }
          dgp[ch] = static_cast<float>(dg);
          dbp[ch] = static_cast<float>(db);
        }
        if (gamma->requires_grad) gamma->accumulate(dgamma);
        if (beta->requires_grad) beta->accumulate(dbeta);
        if (!x->requires_grad) return;
        Tensor dx = Tensor::uninit(x->shape());
        float* dxp = dx.data();
        const Tensor& gv = gamma->value;
        const float* isp = std::as_const(*inv_sigma).data();
        const float invm = 1.0f / static_cast<float>(m);
        for (int64_t ch = 0; ch < c; ++ch) {
          const float gis = gv[ch] * isp[ch];
          const float mean_dy = dbp[ch] * invm;
          const float mean_dyxh = dgp[ch] * invm;
          for (int64_t i = 0; i < n; ++i) {
            const float* dy = gp + (i * c + ch) * hw;
            const float* xh = xhp + (i * c + ch) * hw;
            float* d = dxp + (i * c + ch) * hw;
            if (training) {
              for (int64_t j = 0; j < hw; ++j)
                d[j] = gis * (dy[j] - mean_dy - xh[j] * mean_dyxh);
            } else {
              // Eval mode: statistics are constants.
              for (int64_t j = 0; j < hw; ++j) d[j] = gis * dy[j];
            }
          }
        }
        x->accumulate(dx);
      });
}

Var layernorm(const Var& x, const Var& gamma, const Var& beta, float eps) {
  const int64_t d = x->value.size(-1);
  check(gamma->value.numel() == d && beta->value.numel() == d,
        "layernorm: gamma/beta size");
  const int64_t rows = x->value.numel() / d;

  auto xhat = std::make_shared<Tensor>(Tensor::uninit(x->shape()));
  auto inv_sigma = std::make_shared<Tensor>(Tensor::uninit(Shape{rows}));

  Tensor out = Tensor::uninit(x->shape());
  const Tensor& xv = x->value;  // const reads: no COW unshare of shard views
  const float* xp = xv.data();
  const Tensor& gv = gamma->value;
  const Tensor& bv = beta->value;
  const float* gvp = gv.data();
  const float* bvp = bv.data();
  float* xhatp = xhat->data();
  float* isp = inv_sigma->data();
  float* outp = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = xp + r * d;
    float* xh = xhatp + r * d;
    float* o = outp + r * d;
    double mu = 0;
    for (int64_t j = 0; j < d; ++j) mu += row[j];
    mu /= static_cast<double>(d);
    double var = 0;
    for (int64_t j = 0; j < d; ++j) {
      const double diff = row[j] - mu;
      var += diff * diff;
    }
    var /= static_cast<double>(d);
    const float is = static_cast<float>(1.0 / std::sqrt(var + eps));
    isp[r] = is;
    for (int64_t j = 0; j < d; ++j) {
      xh[j] = (row[j] - static_cast<float>(mu)) * is;
      o[j] = gvp[j] * xh[j] + bvp[j];
    }
  }

  return make_node(
      std::move(out), {x, gamma, beta}, [xhat, inv_sigma, rows, d](Node& nd) {
        const Var& x = nd.inputs[0];
        const Var& gamma = nd.inputs[1];
        const Var& beta = nd.inputs[2];
        const Tensor& gr = nd.grad;
        const float* gp = gr.data();
        const float* xhp = std::as_const(*xhat).data();
        const Tensor& gv = gamma->value;
        const float* gvp = gv.data();
        Tensor dgamma(Shape{d});
        Tensor dbeta(Shape{d});
        float* dgp = dgamma.data();
        float* dbp = dbeta.data();
        for (int64_t r = 0; r < rows; ++r) {
          const float* dy = gp + r * d;
          const float* xh = xhp + r * d;
          for (int64_t j = 0; j < d; ++j) {
            dgp[j] += dy[j] * xh[j];
            dbp[j] += dy[j];
          }
        }
        if (gamma->requires_grad) gamma->accumulate(dgamma);
        if (beta->requires_grad) beta->accumulate(dbeta);
        if (!x->requires_grad) return;
        Tensor dx = Tensor::uninit(x->shape());
        float* dxp = dx.data();
        const float* isp = std::as_const(*inv_sigma).data();
        const float invd = 1.0f / static_cast<float>(d);
        for (int64_t r = 0; r < rows; ++r) {
          const float* dy = gp + r * d;
          const float* xh = xhp + r * d;
          float* dd = dxp + r * d;
          double mean_gdy = 0, mean_gdyxh = 0;
          for (int64_t j = 0; j < d; ++j) {
            const double gdy = static_cast<double>(gvp[j]) * dy[j];
            mean_gdy += gdy;
            mean_gdyxh += gdy * xh[j];
          }
          mean_gdy *= invd;
          mean_gdyxh *= invd;
          const float is = isp[r];
          for (int64_t j = 0; j < d; ++j) {
            const float gdy = gvp[j] * dy[j];
            dd[j] = is * (gdy - static_cast<float>(mean_gdy) -
                          xh[j] * static_cast<float>(mean_gdyxh));
          }
        }
        x->accumulate(dx);
      });
}

}  // namespace pf::ag
