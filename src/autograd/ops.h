// Differentiable operations over `ag::Var`.
//
// Every op builds a tape node whose backward closure implements the exact
// adjoint; all of them are covered by finite-difference gradient checks in
// tests/autograd_test.cc. Broadcasting ops reduce gradients back to the
// operand shape with `reduce_to_shape` (the adjoint of broadcasting).
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "tensor/im2col.h"
#include "tensor/rng.h"

namespace pf::ag {

// ---- Arithmetic (numpy-style broadcasting). ----
Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);
Var div(const Var& a, const Var& b);
Var add_scalar(const Var& a, float s);
Var mul_scalar(const Var& a, float s);
Var neg(const Var& a);

// ---- Matrix products (2-D and batched 3-D). ----
Var matmul(const Var& a, const Var& b);     // (m,k)x(k,n)
Var matmul_nt(const Var& a, const Var& b);  // (m,k)x(n,k)^T
Var bmm(const Var& a, const Var& b);        // (b,m,k)x(b,k,n)
Var bmm_nt(const Var& a, const Var& b);     // (b,m,k)x(b,n,k)^T

// ---- Fused low-rank products (Pufferfish factorized layers). ----
// y = (x @ v) @ u^T for x (N, in), v (in, r), u (out, r): one kernel launch
// computing both factors in row blocks, so the (N, r) intermediate is only
// materialized when the node is taped (it is needed by the backward pass).
// Identical gradients -- and, on the scalar backend, identical bits -- to
// matmul(x, v) followed by matmul_nt(t, u).
Var lowrank_linear(const Var& x, const Var& v, const Var& u);

// Fused factorized convolution, tape-free forward only (throws if grad
// taping is active and any input requires grad): x (N, C_in, H, W),
// u (r, C_in, k, k), v (C_out, r, 1, 1). Computes conv(x, u) -> 1x1
// conv(., v) per sample without materializing the full (N, r, oh, ow)
// intermediate or re-running im2col on it. Training uses the two-conv
// composition (see nn::LowRankConv2d).
Var lowrank_conv2d(const Var& x, const Var& u, const Var& v, int64_t stride,
                   int64_t pad);

// ---- Activations / elementwise. ----
Var relu(const Var& a);
Var sigmoid(const Var& a);
Var tanh(const Var& a);
Var exp(const Var& a);
Var log(const Var& a);

// ---- Shape. ----
Var reshape(const Var& a, Shape shape);
Var transpose(const Var& a, std::vector<int64_t> perm);
Var concat(const std::vector<Var>& parts, int64_t axis);
Var slice(const Var& a, int64_t axis, int64_t start, int64_t len);

// ---- Reductions. ----
Var sum_all(const Var& a);
Var mean_all(const Var& a);

// ---- Softmax / losses. ----
// Softmax over the last dimension.
Var softmax(const Var& a);
// Mean cross-entropy over rows of (N, C) logits. `targets` holds class ids;
// rows whose target equals `ignore_index` contribute nothing (used for
// padding in the translation task). `label_smoothing` implements the paper's
// ImageNet recipe (smoothing 0.1).
Var cross_entropy(const Var& logits, const std::vector<int64_t>& targets,
                  float label_smoothing = 0.0f, int64_t ignore_index = -100);

// ---- Convolution / pooling (NCHW). ----
// x: (N, C_in, H, W); w: (C_out, C_in, k, k). Bias-free (paper's conv nets
// use BatchNorm after every conv, so conv biases are omitted -- this is what
// makes the VGG-19 parameter count land exactly on 20,560,330).
Var conv2d(const Var& x, const Var& w, int64_t stride, int64_t pad);
Var maxpool2d(const Var& x, int64_t kernel, int64_t stride);
// Global average pooling: (N, C, H, W) -> (N, C).
Var global_avgpool(const Var& x);
// Average pooling with kernel/stride (used by ResNet variants on CIFAR).
Var avgpool2d(const Var& x, int64_t kernel, int64_t stride);

// ---- Normalization. ----
// 2-D batchnorm over (N, C, H, W); gamma/beta are (C). `running_*` are
// module-owned buffers updated in place during training.
Var batchnorm2d(const Var& x, const Var& gamma, const Var& beta,
                Tensor* running_mean, Tensor* running_var, bool training,
                float momentum = 0.1f, float eps = 1e-5f);
// Layer norm over the last dimension; gamma/beta are (last_dim).
Var layernorm(const Var& x, const Var& gamma, const Var& beta,
              float eps = 1e-6f);

// ---- Regularization / lookup. ----
// Inverted dropout; identity when !training or p == 0.
Var dropout(const Var& x, float p, bool training, Rng& rng);
// Embedding lookup: ids (flat, any length) into table (V, D) -> (len, D).
Var embedding(const std::vector<int64_t>& ids, const Var& table);
// x + mask where mask is a constant tensor broadcastable to x (attention
// masking: 0 for keep, -1e9 for masked positions).
Var add_constant(const Var& x, Tensor mask);

}  // namespace pf::ag
