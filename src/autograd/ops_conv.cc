// Convolution and pooling. Convolution is computed with im2col + GEMM;
// the backward pass recomputes the column matrix per sample instead of
// caching it (it is cheap relative to the GEMMs and keeps peak memory at
// one column buffer).
#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "autograd/ops.h"
#include "tensor/matmul.h"
#include "trace/trace.h"

namespace pf::ag {

namespace {

void check(bool cond, const char* msg) {
  if (!cond) throw std::runtime_error(msg);
}

}  // namespace

Var conv2d(const Var& x, const Var& w, int64_t stride, int64_t pad) {
  check(x->value.dim() == 4 && w->value.dim() == 4, "conv2d: 4-D x and w");
  const int64_t n = x->value.size(0), c_in = x->value.size(1),
                h = x->value.size(2), wd = x->value.size(3);
  const int64_t c_out = w->value.size(0), k = w->value.size(2);
  check(w->value.size(1) == c_in, "conv2d: channel mismatch");
  check(w->value.size(3) == k, "conv2d: square kernels only");

  const ConvGeom g{c_in, h, wd, k, stride, pad};
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t spatial = oh * ow, patch = g.patch();

  Tensor out(Shape{n, c_out, oh, ow});  // zero-filled: matmul_accum does +=
  // Weight viewed as (c_out, patch): PyTorch layout (c_out, c_in, k, k)
  // flattens to exactly that row-major 2-D view.
  const Tensor& xv = x->value;  // const reads: no COW unshare of shard views
  const Tensor& wv = w->value;
  Tensor col = Tensor::uninit(Shape{patch, spatial});
  float* colp = col.data();
  float* outp = out.data();
  for (int64_t i = 0; i < n; ++i) {
    im2col(xv.data() + i * c_in * h * wd, g, colp);
    matmul_accum(wv.data(), colp, outp + i * c_out * spatial, c_out, patch,
                 spatial);
  }

  return make_node(std::move(out), {x, w}, [g, stride, pad](Node& nd) {
    const Var& x = nd.inputs[0];
    const Var& w = nd.inputs[1];
    const Tensor& xv = x->value;
    const Tensor& gr = nd.grad;
    const int64_t n = xv.size(0);
    const int64_t c_in = g.c_in, h = g.h, wd = g.w;
    const int64_t c_out = w->value.size(0);
    const int64_t oh = g.out_h(), ow = g.out_w();
    const int64_t spatial = oh * ow, patch = g.patch();
    (void)stride;
    (void)pad;

    Tensor dw(w->shape());
    Tensor dx(x->shape());
    float* dxp = dx.data();
    Tensor col = Tensor::uninit(Shape{patch, spatial});
    for (int64_t i = 0; i < n; ++i) {
      // Per-sample dY as a zero-copy window of the incoming grad.
      Tensor dy_t = gr.narrow(i, 1).reshape(Shape{c_out, spatial});
      if (w->requires_grad) {
        im2col(xv.data() + i * c_in * h * wd, g, col.data());
        // dW (c_out, patch) += dY (c_out, spatial) @ col^T (spatial, patch).
        Tensor dwi = pf::matmul_nt(dy_t, col);  // (c_out, patch)
        dw.add_(dwi.reshape(w->shape()));
      }
      if (x->requires_grad) {
        // dcol = W^T (patch, c_out) @ dY (c_out, spatial).
        Tensor w2d = w->value.reshape(Shape{c_out, patch});
        Tensor dcol_t = pf::matmul_tn(w2d, dy_t);  // (patch, spatial)
        col2im(std::as_const(dcol_t).data(), g, dxp + i * c_in * h * wd);
      }
    }
    if (w->requires_grad) w->accumulate(dw);
    if (x->requires_grad) x->accumulate(dx);
  });
}

Var lowrank_conv2d(const Var& x, const Var& u, const Var& v, int64_t stride,
                   int64_t pad) {
  check(!(grad_enabled() &&
          (x->requires_grad || u->requires_grad || v->requires_grad)),
        "lowrank_conv2d: tape-free forward only (train via two conv2d nodes)");
  check(x->value.dim() == 4 && u->value.dim() == 4 && v->value.dim() == 4,
        "lowrank_conv2d: 4-D x, u, v");
  const int64_t n = x->value.size(0), c_in = x->value.size(1),
                h = x->value.size(2), wd = x->value.size(3);
  const int64_t r = u->value.size(0), k = u->value.size(2);
  const int64_t c_out = v->value.size(0);
  check(u->value.size(1) == c_in, "lowrank_conv2d: channel mismatch");
  check(u->value.size(3) == k, "lowrank_conv2d: square kernels only");
  check(v->value.size(1) == r && v->value.size(2) == 1 && v->value.size(3) == 1,
        "lowrank_conv2d: v must be (c_out, r, 1, 1)");

  const ConvGeom g{c_in, h, wd, k, stride, pad};
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t spatial = oh * ow, patch = g.patch();
  PF_TRACE_SCOPE_C("lowrank_conv", n * spatial * r * (patch + c_out));

  Tensor out(Shape{n, c_out, oh, ow});  // zero-filled: matmul_accum does +=
  const Tensor& xv = x->value;  // const reads: no COW unshare
  const Tensor& uv = u->value;
  const Tensor& vv = v->value;
  Tensor col = Tensor::uninit(Shape{patch, spatial});
  Tensor mid(Shape{r, spatial});
  float* colp = col.data();
  float* midp = mid.data();
  float* outp = out.data();
  // Per sample: im2col once, then U (r, patch) @ col and V (c_out, r) @ mid.
  // The unfused path ran a second conv2d whose 1x1 im2col is an identity
  // copy of the whole (n, r, oh, ow) intermediate; here `mid` is one sample
  // wide and feeds the second GEMM directly, so bits match the two-conv
  // composition per backend while skipping the copy and the big allocation.
  for (int64_t i = 0; i < n; ++i) {
    im2col(xv.data() + i * c_in * h * wd, g, colp);
    std::fill(midp, midp + r * spatial, 0.0f);
    matmul_accum(uv.data(), colp, midp, r, patch, spatial);
    matmul_accum(vv.data(), midp, outp + i * c_out * spatial, c_out, r,
                 spatial);
  }
  return make_node(std::move(out), {x, u, v}, nullptr);
}

Var maxpool2d(const Var& x, int64_t kernel, int64_t stride) {
  check(x->value.dim() == 4, "maxpool2d: 4-D input");
  const int64_t n = x->value.size(0), c = x->value.size(1),
                h = x->value.size(2), w = x->value.size(3);
  const int64_t oh = (h - kernel) / stride + 1, ow = (w - kernel) / stride + 1;
  Tensor out(Shape{n, c, oh, ow});
  // Flat index of each selected max, for the backward scatter.
  auto argmax = std::make_shared<std::vector<int64_t>>(
      static_cast<size_t>(n * c * oh * ow));
  const Tensor& xv = x->value;  // const read: no COW unshare
  const float* src = xv.data();
  float* dst = out.data();
  int64_t oi = 0;
  for (int64_t i = 0; i < n; ++i)
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = src + (i * c + ch) * h * w;
      const int64_t base = (i * c + ch) * h * w;
      for (int64_t oy = 0; oy < oh; ++oy)
        for (int64_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = -1;
          for (int64_t ky = 0; ky < kernel; ++ky)
            for (int64_t kx = 0; kx < kernel; ++kx) {
              const int64_t iy = oy * stride + ky, ix = ox * stride + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = base + iy * w + ix;
              }
            }
          dst[oi] = best;
          (*argmax)[static_cast<size_t>(oi)] = best_idx;
        }
    }

  return make_node(std::move(out), {x}, [argmax](Node& nd) {
    const Var& x = nd.inputs[0];
    if (!x->requires_grad) return;
    Tensor dx(x->shape());
    float* dxp = dx.data();
    const Tensor& gr = nd.grad;
    const float* gp = gr.data();
    for (int64_t i = 0; i < gr.numel(); ++i)
      dxp[(*argmax)[static_cast<size_t>(i)]] += gp[i];
    x->accumulate(dx);
  });
}

Var global_avgpool(const Var& x) {
  check(x->value.dim() == 4, "global_avgpool: 4-D input");
  const int64_t n = x->value.size(0), c = x->value.size(1),
                h = x->value.size(2), w = x->value.size(3);
  const int64_t hw = h * w;
  Tensor out = Tensor::uninit(Shape{n, c});
  const Tensor& xv = x->value;  // const read: no COW unshare
  const float* src = xv.data();
  float* dst = out.data();
  for (int64_t i = 0; i < n * c; ++i) {
    const float* plane = src + i * hw;
    double acc = 0;
    for (int64_t j = 0; j < hw; ++j) acc += plane[j];
    dst[i] = static_cast<float>(acc / static_cast<double>(hw));
  }
  return make_node(std::move(out), {x}, [hw](Node& nd) {
    const Var& x = nd.inputs[0];
    if (!x->requires_grad) return;
    Tensor dx = Tensor::uninit(x->shape());
    float* dxp = dx.data();
    const Tensor& gr = nd.grad;
    const float* gp = gr.data();
    const float inv = 1.0f / static_cast<float>(hw);
    for (int64_t i = 0; i < gr.numel(); ++i) {
      float* plane = dxp + i * hw;
      const float g = gp[i] * inv;
      for (int64_t j = 0; j < hw; ++j) plane[j] = g;
    }
    x->accumulate(dx);
  });
}

Var avgpool2d(const Var& x, int64_t kernel, int64_t stride) {
  check(x->value.dim() == 4, "avgpool2d: 4-D input");
  const int64_t n = x->value.size(0), c = x->value.size(1),
                h = x->value.size(2), w = x->value.size(3);
  const int64_t oh = (h - kernel) / stride + 1, ow = (w - kernel) / stride + 1;
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  Tensor out = Tensor::uninit(Shape{n, c, oh, ow});
  const Tensor& xv = x->value;  // const read: no COW unshare
  const float* src = xv.data();
  float* dst = out.data();
  int64_t oi = 0;
  for (int64_t i = 0; i < n * c; ++i) {
    const float* plane = src + i * h * w;
    for (int64_t oy = 0; oy < oh; ++oy)
      for (int64_t ox = 0; ox < ow; ++ox, ++oi) {
        double acc = 0;
        for (int64_t ky = 0; ky < kernel; ++ky)
          for (int64_t kx = 0; kx < kernel; ++kx)
            acc += plane[(oy * stride + ky) * w + ox * stride + kx];
        dst[oi] = static_cast<float>(acc) * inv;
      }
  }
  return make_node(std::move(out), {x}, [kernel, stride, inv](Node& nd) {
    const Var& x = nd.inputs[0];
    if (!x->requires_grad) return;
    const int64_t n = x->value.size(0), c = x->value.size(1),
                  h = x->value.size(2), w = x->value.size(3);
    const int64_t oh = nd.value.size(2), ow = nd.value.size(3);
    Tensor dx(x->shape());
    float* dxp = dx.data();
    const Tensor& gr = nd.grad;
    const float* gp = gr.data();
    int64_t oi = 0;
    for (int64_t i = 0; i < n * c; ++i) {
      float* plane = dxp + i * h * w;
      for (int64_t oy = 0; oy < oh; ++oy)
        for (int64_t ox = 0; ox < ow; ++ox, ++oi) {
          const float g = gp[oi] * inv;
          for (int64_t ky = 0; ky < kernel; ++ky)
            for (int64_t kx = 0; kx < kernel; ++kx)
              plane[(oy * stride + ky) * w + ox * stride + kx] += g;
        }
    }
    x->accumulate(dx);
  });
}

}  // namespace pf::ag
