// Tape-based reverse-mode automatic differentiation.
//
// A `Var` is a shared handle to a tape node holding a value tensor, an
// optional gradient, and a closure that propagates the node's gradient to
// its inputs. Building the LSTM and Transformer backward passes by hand is
// where reproductions usually go wrong; deriving them from a gradient-checked
// tape keeps every architecture in the paper on the same verified path.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace pf::ag {

class Node;
using Var = std::shared_ptr<Node>;

class Node {
 public:
  Tensor value;
  Tensor grad;  // empty until first accumulation
  bool requires_grad = false;
  std::vector<Var> inputs;
  // Propagates this->grad into inputs' grads. Null for leaves.
  std::function<void(Node&)> backward_fn;

  // Adds `g` (same shape as value) into this node's grad.
  void accumulate(const Tensor& g);
  bool has_grad() const { return !grad.empty(); }
  void zero_grad() { grad = Tensor(); }
  const Shape& shape() const { return value.shape(); }
  int64_t numel() const { return value.numel(); }
};

// Leaf variable (parameter or input).
Var leaf(Tensor value, bool requires_grad = false);

// Interior node. `requires_grad` is inferred from inputs; if no input
// requires grad (or grad mode is off), the tape edges are dropped so eval
// forward passes hold no graph.
Var make_node(Tensor value, std::vector<Var> inputs,
              std::function<void(Node&)> backward_fn);

// Run reverse-mode accumulation from `root`. If `seed` is empty the root
// must be scalar and is seeded with 1.
void backward(const Var& root, Tensor seed = {});

// Is gradient taping currently enabled (thread-local)?
bool grad_enabled();

// RAII guard that disables taping in its scope (eval / inference).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace pf::ag
