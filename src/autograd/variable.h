// Tape-based reverse-mode automatic differentiation.
//
// A `Var` is a shared handle to a tape node holding a value tensor, an
// optional gradient, and a closure that propagates the node's gradient to
// its inputs. Building the LSTM and Transformer backward passes by hand is
// where reproductions usually go wrong; deriving them from a gradient-checked
// tape keeps every architecture in the paper on the same verified path.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace pf::ag {

class Node;
using Var = std::shared_ptr<Node>;

class Node {
 public:
  Tensor value;
  Tensor grad;  // empty until first accumulation
  bool requires_grad = false;
  std::vector<Var> inputs;
  // Propagates this->grad into inputs' grads. Null for leaves.
  std::function<void(Node&)> backward_fn;

  // Adds `g` (same shape as value) into this node's grad.
  void accumulate(const Tensor& g);
  bool has_grad() const { return !grad.empty() && !grad_stale_; }
  // Marks the grad as consumed without freeing it: the buffer (and its pool
  // bucket) is kept, and the next accumulate() overwrites it in place, so
  // steady-state training steps never re-allocate gradient storage.
  void zero_grad() { grad_stale_ = !grad.empty(); }
  // Overwrites grad with `src` (reusing capacity) and marks it fresh; used
  // by the distributed executors to install aggregated gradients.
  void set_grad_from(const Tensor& src) {
    grad.copy_from(src);
    grad_stale_ = false;
  }
  const Shape& shape() const { return value.shape(); }
  int64_t numel() const { return value.numel(); }

 private:
  // True when grad holds last step's (already-consumed) values. Kept instead
  // of zero-filling so reuse stays bitwise identical to a fresh `grad = g`
  // (fill(0) + add_ would turn -0.0f into +0.0f).
  bool grad_stale_ = false;
};

// Leaf variable (parameter or input).
Var leaf(Tensor value, bool requires_grad = false);

// Interior node. `requires_grad` is inferred from inputs; if no input
// requires grad (or grad mode is off), the tape edges are dropped so eval
// forward passes hold no graph.
Var make_node(Tensor value, std::vector<Var> inputs,
              std::function<void(Node&)> backward_fn);

// Run reverse-mode accumulation from `root`. If `seed` is empty the root
// must be scalar and is seeded with 1.
void backward(const Var& root, Tensor seed = {});

// Is gradient taping currently enabled (thread-local)?
bool grad_enabled();

// RAII guard that disables taping in its scope (eval / inference).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace pf::ag
