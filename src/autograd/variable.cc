#include "autograd/variable.h"

#include <stdexcept>
#include <unordered_set>

namespace pf::ag {

namespace {
thread_local bool g_grad_enabled = true;
}

bool grad_enabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

void Node::accumulate(const Tensor& g) {
  if (g.shape() != value.shape())
    throw std::runtime_error("Node::accumulate: grad shape " +
                             shape_str(g.shape()) + " != value shape " +
                             shape_str(value.shape()));
  if (grad.empty()) {
    grad = g;  // O(1): shares storage until someone writes
  } else if (grad_stale_) {
    grad.copy_from(g);  // reuse last step's buffer, bitwise same as grad = g
  } else {
    grad.add_(g);
  }
  grad_stale_ = false;
}

Var leaf(Tensor value, bool requires_grad) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  n->requires_grad = requires_grad;
  return n;
}

Var make_node(Tensor value, std::vector<Var> inputs,
              std::function<void(Node&)> backward_fn) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  bool any = false;
  if (g_grad_enabled)
    for (const Var& in : inputs)
      if (in && in->requires_grad) {
        any = true;
        break;
      }
  if (any) {
    n->requires_grad = true;
    n->inputs = std::move(inputs);
    n->backward_fn = std::move(backward_fn);
  }
  return n;
}

void backward(const Var& root, Tensor seed) {
  if (!root) throw std::runtime_error("backward: null root");
  if (seed.empty()) {
    if (root->numel() != 1)
      throw std::runtime_error("backward: non-scalar root needs a seed grad");
    seed = Tensor(root->shape(), 1.0f);
  }
  root->accumulate(seed);

  // Iterative post-order topological sort (graphs can be deep: LSTM over
  // long sequences would overflow the stack with recursion).
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->inputs.size()) {
      Node* child = node->inputs[idx].get();
      ++idx;
      if (child && child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // Reverse topological: root last in post-order, so iterate backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->has_grad()) n->backward_fn(*n);
  }
}

}  // namespace pf::ag
