// Softmax and the fused softmax-cross-entropy loss (with label smoothing and
// ignore-index support). Fusing keeps the backward numerically simple:
//   dlogits = (softmax - smoothed_onehot) / n_valid.
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "autograd/ops.h"

namespace pf::ag {

namespace {

void check(bool cond, const char* msg) {
  if (!cond) throw std::runtime_error(msg);
}

// Numerically stable softmax of each length-d row of src into dst.
void softmax_rows(const float* src, float* dst, int64_t rows, int64_t d) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = src + r * d;
    float* y = dst + r * d;
    float mx = x[0];
    for (int64_t j = 1; j < d; ++j) mx = std::max(mx, x[j]);
    double sum = 0;
    for (int64_t j = 0; j < d; ++j) {
      y[j] = std::exp(x[j] - mx);
      sum += y[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t j = 0; j < d; ++j) y[j] *= inv;
  }
}

}  // namespace

Var softmax(const Var& a) {
  const int64_t d = a->value.size(-1);
  const int64_t rows = a->value.numel() / d;
  Tensor out = Tensor::uninit(a->shape());
  const Tensor& av = a->value;  // const read: no COW unshare
  softmax_rows(av.data(), out.data(), rows, d);
  return make_node(std::move(out), {a}, [rows, d](Node& n) {
    const Var& a = n.inputs[0];
    if (!a->requires_grad) return;
    // dx = y * (dy - sum_j(dy_j * y_j)) row-wise.
    Tensor dx = Tensor::uninit(a->shape());
    const Tensor& yv = n.value;
    const Tensor& gr = n.grad;
    const float* yp = yv.data();
    const float* gp = gr.data();
    float* dxp = dx.data();
    for (int64_t r = 0; r < rows; ++r) {
      const float* y = yp + r * d;
      const float* dy = gp + r * d;
      float* dd = dxp + r * d;
      double dot = 0;
      for (int64_t j = 0; j < d; ++j)
        dot += static_cast<double>(dy[j]) * y[j];
      for (int64_t j = 0; j < d; ++j)
        dd[j] = y[j] * (dy[j] - static_cast<float>(dot));
    }
    a->accumulate(dx);
  });
}

Var cross_entropy(const Var& logits, const std::vector<int64_t>& targets,
                  float label_smoothing, int64_t ignore_index) {
  check(logits->value.dim() == 2, "cross_entropy: (N, C) logits");
  const int64_t n = logits->value.size(0), c = logits->value.size(1);
  check(static_cast<int64_t>(targets.size()) == n,
        "cross_entropy: target count");

  auto probs = std::make_shared<Tensor>(Tensor::uninit(Shape{n, c}));
  const Tensor& lv = logits->value;  // const read: no COW unshare
  softmax_rows(lv.data(), probs->data(), n, c);

  int64_t n_valid = 0;
  double loss = 0;
  const float eps = label_smoothing;
  const float off = eps / static_cast<float>(c);
  const float on = 1.0f - eps + off;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t t = targets[static_cast<size_t>(i)];
    if (t == ignore_index) continue;
    check(t >= 0 && t < c, "cross_entropy: target out of range");
    ++n_valid;
    const float* p = std::as_const(*probs).data() + i * c;
    // loss_i = -sum_j q_j log p_j with q = smoothed one-hot.
    if (eps == 0.0f) {
      loss += -std::log(std::max(p[t], 1e-12f));
    } else {
      double li = 0;
      for (int64_t j = 0; j < c; ++j) {
        const float q = (j == t) ? on : off;
        li += -static_cast<double>(q) * std::log(std::max(p[j], 1e-12f));
      }
      loss += li;
    }
  }
  check(n_valid > 0, "cross_entropy: all targets ignored");
  Tensor out = Tensor::scalar(static_cast<float>(loss / n_valid));

  auto tg = std::make_shared<std::vector<int64_t>>(targets);
  return make_node(
      std::move(out), {logits},
      [probs, tg, n, c, on, off, eps, ignore_index, n_valid](Node& nd) {
        const Var& logits = nd.inputs[0];
        if (!logits->requires_grad) return;
        Tensor dx(Shape{n, c});  // zero-filled: ignored rows keep grad 0
        const Tensor& gr = nd.grad;
        const float scale = gr[0] / static_cast<float>(n_valid);
        const float* pp = std::as_const(*probs).data();
        float* dxp = dx.data();
        for (int64_t i = 0; i < n; ++i) {
          const int64_t t = (*tg)[static_cast<size_t>(i)];
          if (t == ignore_index) continue;
          const float* p = pp + i * c;
          float* d = dxp + i * c;
          for (int64_t j = 0; j < c; ++j) {
            const float q = (eps == 0.0f) ? (j == t ? 1.0f : 0.0f)
                                          : (j == t ? on : off);
            d[j] = scale * (p[j] - q);
          }
        }
        logits->accumulate(dx);
      });
}

}  // namespace pf::ag
