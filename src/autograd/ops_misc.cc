// Dropout and embedding lookup.
#include <memory>
#include <stdexcept>
#include <utility>

#include "autograd/ops.h"

namespace pf::ag {

Var dropout(const Var& x, float p, bool training, Rng& rng) {
  if (!training || p <= 0.0f) return x;
  if (p >= 1.0f) throw std::runtime_error("dropout: p must be < 1");
  const float scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<Tensor>(Tensor::uninit(x->shape()));
  Tensor out = Tensor::uninit(x->shape());
  const Tensor& xv = x->value;  // const read: no COW unshare
  const float* xp = xv.data();
  float* maskp = mask->data();
  float* outp = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) {
    const float m = rng.bernoulli(p) ? 0.0f : scale;
    maskp[i] = m;
    outp[i] = xp[i] * m;
  }
  return make_node(std::move(out), {x}, [mask](Node& n) {
    const Var& x = n.inputs[0];
    if (!x->requires_grad) return;
    Tensor dx = Tensor::uninit(x->shape());
    const Tensor& gr = n.grad;
    const float* gp = gr.data();
    const float* maskp = std::as_const(*mask).data();
    float* dxp = dx.data();
    for (int64_t i = 0; i < dx.numel(); ++i) dxp[i] = gp[i] * maskp[i];
    x->accumulate(dx);
  });
}

Var embedding(const std::vector<int64_t>& ids, const Var& table) {
  if (table->value.dim() != 2)
    throw std::runtime_error("embedding: (V, D) table");
  const int64_t v = table->value.size(0), d = table->value.size(1);
  const int64_t len = static_cast<int64_t>(ids.size());
  Tensor out = Tensor::uninit(Shape{len, d});
  const Tensor& tv = table->value;  // const read: no COW unshare
  const float* tp = tv.data();
  float* outp = out.data();
  for (int64_t i = 0; i < len; ++i) {
    const int64_t id = ids[static_cast<size_t>(i)];
    if (id < 0 || id >= v)
      throw std::runtime_error("embedding: id out of range");
    const float* row = tp + id * d;
    std::copy(row, row + d, outp + i * d);
  }
  auto idv = std::make_shared<std::vector<int64_t>>(ids);
  return make_node(std::move(out), {table}, [idv, d](Node& n) {
    const Var& table = n.inputs[0];
    if (!table->requires_grad) return;
    Tensor dt(table->shape());  // zero-filled: rows scatter-accumulate
    const Tensor& gr = n.grad;
    const float* gp = gr.data();
    float* dtp = dt.data();
    for (size_t i = 0; i < idv->size(); ++i) {
      const float* g = gp + static_cast<int64_t>(i) * d;
      float* row = dtp + (*idv)[i] * d;
      for (int64_t j = 0; j < d; ++j) row[j] += g[j];
    }
    table->accumulate(dt);
  });
}

}  // namespace pf::ag
