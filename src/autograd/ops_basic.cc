// Arithmetic, activations, shape ops, and reductions.
#include <cmath>

#include "autograd/ops.h"

namespace pf::ag {

namespace {

// Builds the standard broadcast-aware binary-op node.
template <typename Fwd, typename BwdA, typename BwdB>
Var binary(const Var& a, const Var& b, Fwd fwd, BwdA bwd_a, BwdB bwd_b) {
  Tensor out = fwd(a->value, b->value);
  return make_node(std::move(out), {a, b},
                   [bwd_a, bwd_b](Node& n) {
                     const Var& a = n.inputs[0];
                     const Var& b = n.inputs[1];
                     if (a->requires_grad)
                       a->accumulate(reduce_to_shape(
                           bwd_a(n.grad, a->value, b->value), a->shape()));
                     if (b->requires_grad)
                       b->accumulate(reduce_to_shape(
                           bwd_b(n.grad, a->value, b->value), b->shape()));
                   });
}

template <typename Fwd, typename Bwd>
Var unary(const Var& a, Fwd fwd, Bwd bwd) {
  Tensor out = fwd(a->value);
  return make_node(std::move(out), {a}, [bwd](Node& n) {
    const Var& a = n.inputs[0];
    if (a->requires_grad) a->accumulate(bwd(n.grad, a->value, n.value));
  });
}

}  // namespace

Var add(const Var& a, const Var& b) {
  return binary(
      a, b, [](const Tensor& x, const Tensor& y) { return x + y; },
      [](const Tensor& g, const Tensor&, const Tensor&) { return g; },
      [](const Tensor& g, const Tensor&, const Tensor&) { return g; });
}

Var sub(const Var& a, const Var& b) {
  return binary(
      a, b, [](const Tensor& x, const Tensor& y) { return x - y; },
      [](const Tensor& g, const Tensor&, const Tensor&) { return g; },
      [](const Tensor& g, const Tensor&, const Tensor&) { return -g; });
}

Var mul(const Var& a, const Var& b) {
  return binary(
      a, b, [](const Tensor& x, const Tensor& y) { return x * y; },
      [](const Tensor& g, const Tensor&, const Tensor& y) { return g * y; },
      [](const Tensor& g, const Tensor& x, const Tensor&) { return g * x; });
}

Var div(const Var& a, const Var& b) {
  return binary(
      a, b, [](const Tensor& x, const Tensor& y) { return x / y; },
      [](const Tensor& g, const Tensor&, const Tensor& y) { return g / y; },
      [](const Tensor& g, const Tensor& x, const Tensor& y) {
        return -(g * x) / (y * y);
      });
}

Var add_scalar(const Var& a, float s) {
  return unary(
      a, [s](const Tensor& x) { return x + s; },
      [](const Tensor& g, const Tensor&, const Tensor&) { return g; });
}

Var mul_scalar(const Var& a, float s) {
  return unary(
      a, [s](const Tensor& x) { return x * s; },
      [s](const Tensor& g, const Tensor&, const Tensor&) { return g * s; });
}

Var neg(const Var& a) { return mul_scalar(a, -1.0f); }

Var relu(const Var& a) {
  return unary(
      a,
      [](const Tensor& x) {
        Tensor o = Tensor::uninit(x.shape());
        const float* xp = x.data();
        float* op = o.data();
        for (int64_t i = 0; i < x.numel(); ++i)
          op[i] = xp[i] > 0 ? xp[i] : 0.0f;
        return o;
      },
      [](const Tensor& g, const Tensor& x, const Tensor&) {
        Tensor dx = Tensor::uninit(g.shape());
        const float* gp = g.data();
        const float* xp = x.data();
        float* dp = dx.data();
        for (int64_t i = 0; i < g.numel(); ++i)
          dp[i] = xp[i] <= 0.0f ? 0.0f : gp[i];
        return dx;
      });
}

Var sigmoid(const Var& a) {
  return unary(
      a,
      [](const Tensor& x) {
        Tensor o = Tensor::uninit(x.shape());
        const float* xp = x.data();
        float* op = o.data();
        for (int64_t i = 0; i < x.numel(); ++i)
          op[i] = 1.0f / (1.0f + std::exp(-xp[i]));
        return o;
      },
      [](const Tensor& g, const Tensor&, const Tensor& y) {
        Tensor dx = Tensor::uninit(g.shape());
        const float* gp = g.data();
        const float* yp = y.data();
        float* dp = dx.data();
        for (int64_t i = 0; i < g.numel(); ++i)
          dp[i] = gp[i] * (yp[i] * (1.0f - yp[i]));
        return dx;
      });
}

Var tanh(const Var& a) {
  return unary(
      a,
      [](const Tensor& x) {
        Tensor o = Tensor::uninit(x.shape());
        const float* xp = x.data();
        float* op = o.data();
        for (int64_t i = 0; i < x.numel(); ++i) op[i] = std::tanh(xp[i]);
        return o;
      },
      [](const Tensor& g, const Tensor&, const Tensor& y) {
        Tensor dx = Tensor::uninit(g.shape());
        const float* gp = g.data();
        const float* yp = y.data();
        float* dp = dx.data();
        for (int64_t i = 0; i < g.numel(); ++i)
          dp[i] = gp[i] * (1.0f - yp[i] * yp[i]);
        return dx;
      });
}

Var exp(const Var& a) {
  return unary(
      a, [](const Tensor& x) { return pf::exp(x); },
      [](const Tensor& g, const Tensor&, const Tensor& y) { return g * y; });
}

Var log(const Var& a) {
  return unary(
      a, [](const Tensor& x) { return pf::log(x); },
      [](const Tensor& g, const Tensor& x, const Tensor&) { return g / x; });
}

Var reshape(const Var& a, Shape shape) {
  Tensor out = a->value.reshape(std::move(shape));
  return make_node(std::move(out), {a}, [](Node& n) {
    const Var& a = n.inputs[0];
    if (a->requires_grad) a->accumulate(n.grad.reshape(a->shape()));
  });
}

Var transpose(const Var& a, std::vector<int64_t> perm) {
  Tensor out = a->value.transpose(perm);
  // Inverse permutation for the backward pass.
  std::vector<int64_t> inv(perm.size());
  for (size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<size_t>(perm[i])] = static_cast<int64_t>(i);
  return make_node(std::move(out), {a}, [inv](Node& n) {
    const Var& a = n.inputs[0];
    if (a->requires_grad) a->accumulate(n.grad.transpose(inv));
  });
}

Var concat(const std::vector<Var>& parts, int64_t axis) {
  std::vector<Tensor> vals;
  vals.reserve(parts.size());
  for (const Var& p : parts) vals.push_back(p->value);
  Tensor out = pf::concat(vals, axis);
  const int64_t ax = axis < 0 ? axis + out.dim() : axis;
  return make_node(std::move(out), parts, [ax](Node& n) {
    int64_t offset = 0;
    for (const Var& p : n.inputs) {
      const int64_t len = p->value.size(ax);
      if (p->requires_grad)
        p->accumulate(pf::slice(n.grad, ax, offset, len));
      offset += len;
    }
  });
}

Var slice(const Var& a, int64_t axis, int64_t start, int64_t len) {
  Tensor out = pf::slice(a->value, axis, start, len);
  const int64_t ax = axis < 0 ? axis + a->value.dim() : axis;
  return make_node(std::move(out), {a}, [ax, start](Node& n) {
    const Var& a = n.inputs[0];
    if (a->requires_grad)
      a->accumulate(pad_slice(n.grad, a->shape(), ax, start));
  });
}

Var sum_all(const Var& a) {
  Tensor out = Tensor::scalar(a->value.sum());
  return make_node(std::move(out), {a}, [](Node& n) {
    const Var& a = n.inputs[0];
    const Tensor& g = n.grad;  // const read: no COW unshare
    if (a->requires_grad) a->accumulate(Tensor(a->shape(), g[0]));
  });
}

Var mean_all(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a->numel());
  Tensor out = Tensor::scalar(a->value.sum() * inv);
  return make_node(std::move(out), {a}, [inv](Node& n) {
    const Var& a = n.inputs[0];
    const Tensor& g = n.grad;  // const read: no COW unshare
    if (a->requires_grad) a->accumulate(Tensor(a->shape(), g[0] * inv));
  });
}

Var add_constant(const Var& x, Tensor mask) {
  Tensor out = x->value + mask;
  return make_node(std::move(out), {x}, [](Node& n) {
    const Var& x = n.inputs[0];
    if (x->requires_grad)
      x->accumulate(reduce_to_shape(n.grad, x->shape()));
  });
}

}  // namespace pf::ag
