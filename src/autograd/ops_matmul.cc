// Matrix-product ops. Adjoints:
//   C = A B       => dA = dC B^T,  dB = A^T dC
//   C = A B^T     => dA = dC B,    dB = dC^T A
#include "autograd/ops.h"
#include "kernels/kernels.h"
#include "tensor/matmul.h"

namespace pf::ag {

Var matmul(const Var& a, const Var& b) {
  Tensor out = pf::matmul(a->value, b->value);
  return make_node(std::move(out), {a, b}, [](Node& n) {
    const Var& a = n.inputs[0];
    const Var& b = n.inputs[1];
    if (a->requires_grad) a->accumulate(pf::matmul_nt(n.grad, b->value));
    if (b->requires_grad) b->accumulate(pf::matmul_tn(a->value, n.grad));
  });
}

Var matmul_nt(const Var& a, const Var& b) {
  Tensor out = pf::matmul_nt(a->value, b->value);
  return make_node(std::move(out), {a, b}, [](Node& n) {
    const Var& a = n.inputs[0];
    const Var& b = n.inputs[1];
    if (a->requires_grad) a->accumulate(pf::matmul(n.grad, b->value));
    if (b->requires_grad) b->accumulate(pf::matmul_tn(n.grad, a->value));
  });
}

Var lowrank_linear(const Var& x, const Var& v, const Var& u) {
  const bool taped =
      grad_enabled() &&
      (x->requires_grad || v->requires_grad || u->requires_grad);
  if (!taped) {
    // Eval / frozen-serve path: no tape, no (N, r) intermediate tensor.
    return make_node(kernels::lowrank_matmul(x->value, v->value, u->value),
                     {x, v, u}, nullptr);
  }
  // Training path: the fused kernel also materializes t = x @ v, which the
  // adjoints below need. The closure reproduces, formula for formula, the
  // backward of the unfused matmul(x, v) + matmul_nt(t, u) pair, so training
  // stays bitwise identical to the two-node composition per backend.
  Tensor t;
  Tensor y = kernels::lowrank_matmul(x->value, v->value, u->value, &t);
  return make_node(std::move(y), {x, v, u}, [t](Node& n) {
    const Var& x = n.inputs[0];
    const Var& v = n.inputs[1];
    const Var& u = n.inputs[2];
    if (u->requires_grad) u->accumulate(pf::matmul_tn(n.grad, t));
    if (x->requires_grad || v->requires_grad) {
      const Tensor dt = pf::matmul(n.grad, u->value);  // (N, r)
      if (x->requires_grad) x->accumulate(pf::matmul_nt(dt, v->value));
      if (v->requires_grad) v->accumulate(pf::matmul_tn(x->value, dt));
    }
  });
}

Var bmm(const Var& a, const Var& b) {
  Tensor out = pf::bmm(a->value, b->value);
  return make_node(std::move(out), {a, b}, [](Node& n) {
    const Var& a = n.inputs[0];
    const Var& b = n.inputs[1];
    if (a->requires_grad) a->accumulate(pf::bmm_nt(n.grad, b->value));
    if (b->requires_grad) b->accumulate(pf::bmm_tn(a->value, n.grad));
  });
}

Var bmm_nt(const Var& a, const Var& b) {
  Tensor out = pf::bmm_nt(a->value, b->value);
  return make_node(std::move(out), {a, b}, [](Node& n) {
    const Var& a = n.inputs[0];
    const Var& b = n.inputs[1];
    if (a->requires_grad) a->accumulate(pf::bmm(n.grad, b->value));
    if (b->requires_grad) b->accumulate(pf::bmm_tn(n.grad, a->value));
  });
}

}  // namespace pf::ag
