// Matrix-product ops. Adjoints:
//   C = A B       => dA = dC B^T,  dB = A^T dC
//   C = A B^T     => dA = dC B,    dB = dC^T A
#include "autograd/ops.h"
#include "tensor/matmul.h"

namespace pf::ag {

Var matmul(const Var& a, const Var& b) {
  Tensor out = pf::matmul(a->value, b->value);
  return make_node(std::move(out), {a, b}, [](Node& n) {
    const Var& a = n.inputs[0];
    const Var& b = n.inputs[1];
    if (a->requires_grad) a->accumulate(pf::matmul_nt(n.grad, b->value));
    if (b->requires_grad) b->accumulate(pf::matmul_tn(a->value, n.grad));
  });
}

Var matmul_nt(const Var& a, const Var& b) {
  Tensor out = pf::matmul_nt(a->value, b->value);
  return make_node(std::move(out), {a, b}, [](Node& n) {
    const Var& a = n.inputs[0];
    const Var& b = n.inputs[1];
    if (a->requires_grad) a->accumulate(pf::matmul(n.grad, b->value));
    if (b->requires_grad) b->accumulate(pf::matmul_tn(n.grad, a->value));
  });
}

Var bmm(const Var& a, const Var& b) {
  Tensor out = pf::bmm(a->value, b->value);
  return make_node(std::move(out), {a, b}, [](Node& n) {
    const Var& a = n.inputs[0];
    const Var& b = n.inputs[1];
    if (a->requires_grad) a->accumulate(pf::bmm_nt(n.grad, b->value));
    if (b->requires_grad) b->accumulate(pf::bmm_tn(a->value, n.grad));
  });
}

Var bmm_nt(const Var& a, const Var& b) {
  Tensor out = pf::bmm_nt(a->value, b->value);
  return make_node(std::move(out), {a, b}, [](Node& n) {
    const Var& a = n.inputs[0];
    const Var& b = n.inputs[1];
    if (a->requires_grad) a->accumulate(pf::bmm(n.grad, b->value));
    if (b->requires_grad) b->accumulate(pf::bmm_tn(n.grad, a->value));
  });
}

}  // namespace pf::ag
