#include "fault/fault.h"

#include <algorithm>
#include <atomic>

#include "trace/trace.h"

namespace pf::fault {

namespace {

// splitmix64: the same bijective mixer tensor/rng.cc uses, duplicated here
// so fault stays a leaf dependency (nn/serialize links against it).
uint64_t mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Plan& Plan::kill_worker(int worker, int64_t step) {
  faults_.push_back({WorkerFault::Kind::kKill, worker, step, 0.0});
  return *this;
}

Plan& Plan::delay_worker(int worker, int64_t step, double delay_ms) {
  faults_.push_back({WorkerFault::Kind::kDelay, worker, step, delay_ms});
  return *this;
}

Plan& Plan::kill_worker_round(int worker, int64_t round) {
  round_faults_.push_back({WorkerFault::Kind::kKill, worker, round, 0.0});
  return *this;
}

Plan& Plan::delay_worker_round(int worker, int64_t round, double delay_ms) {
  round_faults_.push_back({WorkerFault::Kind::kDelay, worker, round, delay_ms});
  return *this;
}

Plan& Plan::drop_requests(double p) {
  drop_probability_ = std::clamp(p, 0.0, 1.0);
  return *this;
}

const WorkerFault* Plan::worker_fault(int worker, int64_t step) const {
  const WorkerFault* hit = nullptr;
  for (const WorkerFault& f : faults_) {
    if (f.worker != worker || f.step != step) continue;
    // Kills shadow delays scheduled on the same (worker, step).
    if (!hit || f.kind == WorkerFault::Kind::kKill) hit = &f;
  }
  return hit;
}

const WorkerFault* Plan::worker_round_fault(int worker, int64_t round) const {
  const WorkerFault* hit = nullptr;
  for (const WorkerFault& f : round_faults_) {
    if (f.worker != worker || f.step != round) continue;
    // Kills shadow delays scheduled on the same (worker, round).
    if (!hit || f.kind == WorkerFault::Kind::kKill) hit = &f;
  }
  return hit;
}

int Plan::kill_at(int64_t step) const {
  int lowest = -1;
  for (const WorkerFault& f : faults_)
    if (f.kind == WorkerFault::Kind::kKill && f.step == step &&
        (lowest < 0 || f.worker < lowest))
      lowest = f.worker;
  return lowest;
}

bool Plan::should_drop(uint64_t request_id, int attempt) const {
  if (drop_probability_ <= 0.0) return false;
  if (drop_probability_ >= 1.0) return true;
  const uint64_t h =
      mix64(mix64(seed_ ^ request_id) + static_cast<uint64_t>(attempt));
  // 53 mantissa bits -> uniform in [0, 1), the same construction Rng uses.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < drop_probability_;
}

double backoff_ms(int attempt, double base_ms, double cap_ms) {
  double ms = base_ms;
  for (int i = 0; i < attempt && ms < cap_ms; ++i) ms *= 2.0;
  return std::min(ms, cap_ms);
}

// ---- Write-crash hook. ----

namespace {
std::atomic<bool> g_write_crash_armed{false};
std::atomic<int64_t> g_write_budget{0};
}  // namespace

ScopedWriteCrash::ScopedWriteCrash(int64_t crash_after_bytes) {
  g_write_budget.store(crash_after_bytes, std::memory_order_relaxed);
  g_write_crash_armed.store(true, std::memory_order_release);
}

ScopedWriteCrash::~ScopedWriteCrash() {
  g_write_crash_armed.store(false, std::memory_order_release);
}

void on_write_bytes(int64_t n) {
  if (!g_write_crash_armed.load(std::memory_order_acquire)) return;
  if (g_write_budget.fetch_sub(n, std::memory_order_relaxed) - n < 0) {
    record_write_crash();
    throw InjectedCrash("fault: injected crash mid-checkpoint-write");
  }
}

// ---- Counters. ----

namespace {
std::atomic<uint64_t> g_kills{0}, g_delays{0}, g_drops{0}, g_write_crashes{0},
    g_retries{0}, g_recoveries{0};
}  // namespace

FaultStats stats() {
  FaultStats s;
  s.injected_kills = g_kills.load(std::memory_order_relaxed);
  s.injected_delays = g_delays.load(std::memory_order_relaxed);
  s.dropped_requests = g_drops.load(std::memory_order_relaxed);
  s.write_crashes = g_write_crashes.load(std::memory_order_relaxed);
  s.retries = g_retries.load(std::memory_order_relaxed);
  s.recoveries = g_recoveries.load(std::memory_order_relaxed);
  return s;
}

void reset_stats() {
  g_kills = g_delays = g_drops = g_write_crashes = g_retries = g_recoveries = 0;
}

namespace {

// Zero-duration marker in the trace timeline, so injected faults are
// visible between the spans they perturb (shm.recover, serve.reply, ...).
void mark(const char* name) {
  if (!trace::enabled()) return;
  const uint64_t t = trace::now_ns();
  trace::emit(name, t, t);
}

}  // namespace

void record_kill() {
  g_kills.fetch_add(1, std::memory_order_relaxed);
  mark("fault.kill");
}
void record_delay() {
  g_delays.fetch_add(1, std::memory_order_relaxed);
  mark("fault.delay");
}
void record_drop() {
  g_drops.fetch_add(1, std::memory_order_relaxed);
  mark("fault.drop");
}
void record_write_crash() {
  g_write_crashes.fetch_add(1, std::memory_order_relaxed);
  mark("fault.write_crash");
}
void record_retry() {
  g_retries.fetch_add(1, std::memory_order_relaxed);
  mark("fault.retry");
}
void record_recovery() {
  g_recoveries.fetch_add(1, std::memory_order_relaxed);
  mark("fault.recovery");
}

}  // namespace pf::fault
