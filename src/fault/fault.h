// Deterministic fault injection and recovery bookkeeping.
//
// Pufferfish's win is amortized over long runs (warm-up -> SVD -> fine-tune),
// so the expensive failure is the one late in training -- and in the paper's
// multi-node setting worker faults and stragglers are the common case, not
// the exception. This module provides the machinery the rest of the repo
// uses to make faults *reproducible*:
//
//  * fault::Plan -- a seeded schedule of injected faults. Every query is a
//    pure function of (seed, site, occurrence), so a faulty run is exactly
//    as deterministic as a fault-free one: the shm cluster kills/delays a
//    scheduled worker at a scheduled step, the serve::Server drops requests
//    with a seeded per-(id, attempt) coin, and tests replay the same faults
//    on every run at any PF_THREADS.
//  * ScopedWriteCrash -- arms a process-wide byte budget on checkpoint
//    writes; nn/serialize throws InjectedCrash once the budget is exhausted,
//    simulating kill -9 mid-write (the crash that used to corrupt the only
//    checkpoint in place before the temp-file + rename protocol).
//  * FaultStats -- process-wide injected/recovered counters, re-exported
//    through metrics:: so benches report recovery behaviour alongside
//    throughput.
//  * backoff_ms -- the deterministic exponential backoff schedule retry
//    paths share (no RNG, no wall-clock reads: attempt k always waits the
//    same bounded time).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace pf::fault {

// Thrown at an injected crash point. Distinct from std::runtime_error
// subclasses the I/O paths throw for real errors, so tests can assert the
// crash came from the plan and not from a genuine failure.
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(const std::string& what) : std::runtime_error(what) {}
};

// One scheduled worker fault inside a data-parallel run. `step` counts
// global training steps (mini-batches) from the start of the run, so a plan
// written for "kill late in training" stays meaningful across epochs. Round
// faults (scheduled via *_worker_round) reuse the same record with `step`
// holding the round index; they live in a separate schedule, so a step
// fault and a round fault on the same worker compose instead of shadowing
// each other (tests/fault_test.cc pins this).
struct WorkerFault {
  enum class Kind { kKill, kDelay };
  Kind kind = Kind::kKill;
  int worker = 0;
  int64_t step = 0;
  double delay_ms = 0;  // kDelay only
};

// A deterministic fault schedule. Copyable value type; an empty (default)
// plan injects nothing and costs one branch per query.
class Plan {
 public:
  Plan() = default;
  explicit Plan(uint64_t seed) : seed_(seed) {}

  // Schedule worker `worker` to die at the top of global step `step`
  // (the shm cluster reincarnates it from a surviving replica).
  Plan& kill_worker(int worker, int64_t step);
  // Schedule a straggler: worker sleeps `delay_ms` at the top of `step`.
  Plan& delay_worker(int worker, int64_t step, double delay_ms);
  // ---- Round-boundary membership faults (src/elastic). Rounds are the
  // elastic trainer's epoch-granularity membership boundaries; a round kill
  // reincarnates the worker before the round starts, a round delay marks it
  // a straggler for the whole round (mitigated by the configured
  // StragglerStrategy instead of a plain sleep). Round faults are a
  // separate schedule from step faults: a step delay and a round kill (or
  // any other cross-schedule pair) on the same worker both fire.
  Plan& kill_worker_round(int worker, int64_t round);
  Plan& delay_worker_round(int worker, int64_t round, double delay_ms);
  // Drop each serving request attempt with probability `p`, decided by a
  // seeded coin on (seed, request id, attempt) -- a retry of the same
  // request is a fresh draw, so retries converge.
  Plan& drop_requests(double p);

  bool empty() const {
    return faults_.empty() && round_faults_.empty() &&
           drop_probability_ <= 0.0;
  }

  // The fault scheduled for (worker, step), or nullptr. Kills shadow delays
  // when both are scheduled on the same (worker, step).
  const WorkerFault* worker_fault(int worker, int64_t step) const;
  // Worker scheduled to die at `step`, or -1. With several kills at one
  // step, returns the lowest worker id (callers iterate via worker_fault).
  int kill_at(int64_t step) const;
  bool any_kill_at(int64_t step) const { return kill_at(step) >= 0; }

  // The round fault scheduled for (worker, round), or nullptr. Same
  // same-slot semantics as worker_fault: a round kill shadows a round delay
  // scheduled on the same (worker, round), but never a step fault.
  const WorkerFault* worker_round_fault(int worker, int64_t round) const;
  bool any_round_fault() const { return !round_faults_.empty(); }

  // Seeded per-(id, attempt) drop coin (see drop_requests).
  bool should_drop(uint64_t request_id, int attempt) const;

  double drop_probability() const { return drop_probability_; }
  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_ = 0;
  std::vector<WorkerFault> faults_;
  std::vector<WorkerFault> round_faults_;  // `step` holds the round index
  double drop_probability_ = 0;
};

// Deterministic exponential backoff: base * 2^attempt, capped. Attempt 0
// waits base_ms. Pure function -- retry schedules are reproducible.
double backoff_ms(int attempt, double base_ms = 0.1, double cap_ms = 5.0);

// ---- Injected checkpoint-write crashes (see nn/serialize.cc). ----

// While an instance is alive, checkpoint writes throw InjectedCrash once
// `crash_after_bytes` have been written (process-wide; not nestable --
// meant for tests, which hold one at a time).
class ScopedWriteCrash {
 public:
  explicit ScopedWriteCrash(int64_t crash_after_bytes);
  ~ScopedWriteCrash();
  ScopedWriteCrash(const ScopedWriteCrash&) = delete;
  ScopedWriteCrash& operator=(const ScopedWriteCrash&) = delete;
};

// Called by serialize before writing `n` bytes; throws InjectedCrash when an
// armed budget runs out. No-op (one relaxed load) when disarmed.
void on_write_bytes(int64_t n);

// ---- Fault/recovery counters. ----

struct FaultStats {
  uint64_t injected_kills = 0;     // workers killed by a plan
  uint64_t injected_delays = 0;    // straggler delays injected
  uint64_t dropped_requests = 0;   // serving request attempts dropped
  uint64_t write_crashes = 0;      // checkpoint writes crashed mid-write
  uint64_t retries = 0;            // request resubmissions (drop or reject)
  uint64_t recoveries = 0;         // faults survived: reincarnations +
                                   // requests completed after retries
};

FaultStats stats();
void reset_stats();

void record_kill();
void record_delay();
void record_drop();
void record_write_crash();
void record_retry();
void record_recovery();

}  // namespace pf::fault
