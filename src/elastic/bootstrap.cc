#include "elastic/bootstrap.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "quant/registry.h"

namespace pf::elastic {

namespace {

Tensor clone_tensor(const Tensor& t) {
  Tensor out = Tensor::uninit(t.shape());
  std::memcpy(out.data(), t.data(),
              static_cast<size_t>(t.numel()) * sizeof(float));
  return out;
}

}  // namespace

const char* to_string(BootstrapMode mode) {
  switch (mode) {
    case BootstrapMode::kExact: return "exact";
    case BootstrapMode::kDelta: return "delta";
  }
  return "?";
}

BootstrapPayload make_bootstrap(nn::Module& src, optim::Optimizer& opt,
                                BootstrapMode mode, nn::Module* base,
                                const quant::DeltaSpec& spec) {
  BootstrapPayload p;
  p.mode = mode;
  if (mode == BootstrapMode::kExact) {
    for (const quant::detail::Entry& e : quant::detail::collect_entries(src)) {
      p.state.push_back(clone_tensor(*e.tensor));
      p.bytes += e.tensor->numel() * static_cast<int64_t>(sizeof(float));
    }
    for (Tensor* t : opt.state_tensors()) {
      p.opt_state.push_back(clone_tensor(*t));
      p.bytes += t->numel() * static_cast<int64_t>(sizeof(float));
    }
    return p;
  }
  if (base == nullptr)
    throw std::runtime_error(
        "elastic: delta bootstrap needs the shared base model");
  p.delta = quant::compute_delta(*base, src, spec);
  p.bytes = p.delta.bytes();  // momentum restarts at zero: no opt payload
  return p;
}

void apply_bootstrap(nn::Module& dst, optim::Optimizer& opt,
                     const BootstrapPayload& payload, nn::Module* base) {
  std::vector<quant::detail::Entry> entries =
      quant::detail::collect_entries(dst);
  if (payload.mode == BootstrapMode::kExact) {
    if (entries.size() != payload.state.size())
      throw std::runtime_error(
          "elastic: bootstrap payload does not match the joiner's module "
          "tree (entry count mismatch)");
    for (size_t i = 0; i < entries.size(); ++i) {
      Tensor* t = entries[i].tensor;
      if (t->numel() != payload.state[i].numel())
        throw std::runtime_error(
            "elastic: bootstrap payload tensor shape mismatch");
      std::memcpy(t->data(), payload.state[i].data(),
                  static_cast<size_t>(t->numel()) * sizeof(float));
    }
    std::vector<Tensor*> slots = opt.state_tensors();
    if (slots.size() != payload.opt_state.size())
      throw std::runtime_error(
          "elastic: bootstrap optimizer state count mismatch");
    for (size_t i = 0; i < slots.size(); ++i)
      std::memcpy(slots[i]->data(), payload.opt_state[i].data(),
                  static_cast<size_t>(slots[i]->numel()) * sizeof(float));
    return;
  }
  // kDelta: reset to the shared base (params AND buffers, so BN statistics
  // come from the base too), reconstruct base + UV^T in place, restart
  // momentum. The joiner matches the canonical replica up to the delta
  // spec's discarded spectral mass.
  if (base == nullptr)
    throw std::runtime_error(
        "elastic: delta bootstrap needs the shared base model");
  std::vector<quant::detail::Entry> base_entries =
      quant::detail::collect_entries(*base);
  if (entries.size() != base_entries.size())
    throw std::runtime_error(
        "elastic: joiner and shared base module trees differ");
  for (size_t i = 0; i < entries.size(); ++i) {
    Tensor* t = entries[i].tensor;
    const Tensor* b = base_entries[i].tensor;
    if (t->numel() != b->numel())
      throw std::runtime_error(
          "elastic: joiner and shared base tensor shapes differ");
    std::memcpy(t->data(), b->data(),
                static_cast<size_t>(t->numel()) * sizeof(float));
  }
  quant::apply_delta(dst, payload.delta);
  for (Tensor* t : opt.state_tensors())
    std::memset(t->data(), 0,
                static_cast<size_t>(t->numel()) * sizeof(float));
}

}  // namespace pf::elastic
