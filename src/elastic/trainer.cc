#include "elastic/trainer.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "metrics/metrics.h"

namespace pf::elastic {

namespace {

bool contains(const std::vector<int>& sorted, int w) {
  return std::binary_search(sorted.begin(), sorted.end(), w);
}

void insert_sorted(std::vector<int>& sorted, int w) {
  sorted.insert(std::lower_bound(sorted.begin(), sorted.end(), w), w);
}

void erase_sorted(std::vector<int>& sorted, int w) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), w);
  if (it != sorted.end() && *it == w) sorted.erase(it);
}

}  // namespace

const char* to_string(StragglerStrategy s) {
  switch (s) {
    case StragglerStrategy::kWaitAll: return "wait-all";
    case StragglerStrategy::kBackupWorker: return "backup-worker";
    case StragglerStrategy::kBoundedStaleness: return "bounded-staleness";
  }
  return "?";
}

ElasticTrainer::ElasticTrainer(const core::VisionModelFactory& make_model,
                               const ElasticConfig& cfg)
    : cfg_(cfg), trainer_(make_model, nullptr, cfg.cluster) {
  const int workers = trainer_.workers();
  if (cfg_.membership.max_workers() > 0 &&
      cfg_.membership.max_workers() != workers)
    throw std::runtime_error(
        "elastic: membership plan universe (" +
        std::to_string(cfg_.membership.max_workers()) +
        ") must match cluster.workers (" + std::to_string(workers) + ")");
  if (cfg_.staleness_bound < 0) cfg_.staleness_bound = 0;
  if (cfg_.bootstrap == BootstrapMode::kDelta) {
    // The shared base every joiner is assumed to hold: the common init,
    // rebuilt from the exact seeding discipline the cluster's replicas
    // used, so round-0 deltas are all-zero by construction.
    Rng rng(cfg_.cluster.train.seed * 0x9E3779B9u + 101);
    base_ = make_model(rng);
  }
  synced_.assign(static_cast<size_t>(workers), 1);
  stale_rounds_.assign(static_cast<size_t>(workers), 0);
  speed_seconds_.assign(static_cast<size_t>(workers), 0.0);
  speed_rounds_.assign(static_cast<size_t>(workers), 0);
}

RoundReport ElasticTrainer::train_round(const data::SyntheticImages& ds,
                                        int round) {
  const int workers = trainer_.workers();
  RoundReport rep;

  // 1. Membership entering this round.
  std::vector<int> active;
  std::vector<char> joined(static_cast<size_t>(workers), 0);
  if (cfg_.membership.max_workers() > 0) {
    active = cfg_.membership.active_at(round);
    for (const MembershipEvent& e : cfg_.membership.events_at(round)) {
      if (e.kind == MembershipEvent::Kind::kJoin) {
        joined[static_cast<size_t>(e.worker)] = 1;
        ++rep.joins;
      } else {
        ++rep.leaves;
      }
    }
  } else {
    active.resize(static_cast<size_t>(workers));
    std::iota(active.begin(), active.end(), 0);
  }

  // 2. Round-boundary faults against the ACTIVE slots.
  std::vector<double> delay_ms;  // wait-all injections, per slot
  std::vector<int> kills;
  struct Straggler {
    int worker;
    double delay_ms;
  };
  std::vector<Straggler> stragglers;
  const fault::Plan& fp = cfg_.cluster.fault;
  if (fp.any_round_fault()) {
    for (int w : active) {
      const fault::WorkerFault* f =
          fp.worker_round_fault(w, static_cast<int64_t>(round));
      if (!f) continue;
      if (f->kind == fault::WorkerFault::Kind::kKill)
        kills.push_back(w);
      else
        stragglers.push_back({w, f->delay_ms});
    }
  }

  auto wait_out = [&](const Straggler& s) {
    if (delay_ms.empty()) delay_ms.assign(static_cast<size_t>(workers), 0.0);
    delay_ms[static_cast<size_t>(s.worker)] = s.delay_ms;
    ++rep.stragglers_waited;
  };

  // 3. Straggler mitigation reshapes the active set BEFORE the round runs
  // (the schedule is deterministic, so "detecting" the straggler at the
  // boundary is free -- the same role the fault plan plays for kills).
  for (const Straggler& s : stragglers) {
    switch (cfg_.straggler) {
      case StragglerStrategy::kWaitAll:
        wait_out(s);
        break;
      case StragglerStrategy::kBackupWorker: {
        int spare = -1;
        for (int w = 0; w < workers; ++w)
          if (!contains(active, w)) {
            spare = w;
            break;
          }
        if (spare < 0) {
          wait_out(s);  // no spare capacity: degrade to wait-all
        } else {
          erase_sorted(active, s.worker);
          insert_sorted(active, spare);
          ++rep.stragglers_mitigated;
        }
        break;
      }
      case StragglerStrategy::kBoundedStaleness:
        // Drop the straggler while the bound allows; past it (or when it
        // is the whole cluster) the round must wait for it.
        if (stale_rounds_[static_cast<size_t>(s.worker)] <
                cfg_.staleness_bound &&
            active.size() > 1) {
          erase_sorted(active, s.worker);
          ++stale_rounds_[static_cast<size_t>(s.worker)];
          ++rep.stragglers_mitigated;
        } else {
          wait_out(s);
        }
        break;
    }
  }

  // 4. Round kills destroy replica state at the boundary. Recovery needs a
  // donor, so if the kills would wipe every up-to-date replica, the lowest
  // scheduled victim is spared (the step-fault semantics, lifted to
  // rounds). A kill beats the mitigation above: a dead worker cannot be
  // backed up mid-round, it must re-bootstrap.
  {
    bool survivor = false;
    for (int w = 0; w < workers; ++w)
      if (synced_[static_cast<size_t>(w)] &&
          std::find(kills.begin(), kills.end(), w) == kills.end()) {
        survivor = true;
        break;
      }
    if (!survivor && !kills.empty()) kills.erase(kills.begin());
    for (int w : kills) {
      if (!contains(active, w)) continue;  // mitigation already benched it
      fault::record_kill();
      nn::UnaryModule& dead = trainer_.replica(w);
      const float poison = std::numeric_limits<float>::quiet_NaN();
      for (nn::Param* p : dead.parameters()) {
        Tensor& v = p->var->value;
        std::fill(v.data(), v.data() + v.numel(), poison);
      }
      for (Tensor* t : trainer_.optimizer(w).state_tensors())
        std::fill(t->data(), t->data() + t->numel(), poison);
      synced_[static_cast<size_t>(w)] = 0;
      ++rep.kills;
    }
  }

  // 5. Bootstrap every active slot that does not hold the canonical state:
  // genuine joiners ship the configured payload (factorized state or delta
  // vs the shared base); kill recoveries and returning stale slots get the
  // exact intra-cluster copy. The donor is the lowest up-to-date replica
  // -- which may have just LEFT: leaving abandons the slot but not the
  // state it holds, exactly like a real node draining out.
  {
    int donor = -1;
    for (int w = 0; w < workers; ++w)
      if (synced_[static_cast<size_t>(w)]) {
        donor = w;
        break;
      }
    if (donor < 0)
      throw std::runtime_error(
          "elastic: no up-to-date replica to bootstrap from");
    metrics::Timer t_recover;
    BootstrapPayload exact, delta;
    bool have_exact = false, have_delta = false;
    for (int w : active) {
      if (synced_[static_cast<size_t>(w)]) continue;
      const bool is_join = joined[static_cast<size_t>(w)] != 0;
      const BootstrapMode mode =
          is_join ? cfg_.bootstrap : BootstrapMode::kExact;
      BootstrapPayload* p;
      if (mode == BootstrapMode::kDelta) {
        if (!have_delta) {
          delta = make_bootstrap(trainer_.replica(donor),
                                 trainer_.optimizer(donor), mode,
                                 base_.get(), cfg_.delta);
          have_delta = true;
        }
        p = &delta;
      } else {
        if (!have_exact) {
          exact = make_bootstrap(trainer_.replica(donor),
                                 trainer_.optimizer(donor), mode,
                                 base_.get(), cfg_.delta);
          have_exact = true;
        }
        p = &exact;
      }
      apply_bootstrap(trainer_.replica(w), trainer_.optimizer(w), *p,
                      base_.get());
      if (rep.kills > 0 &&
          std::find(kills.begin(), kills.end(), w) != kills.end())
        fault::record_recovery();
      synced_[static_cast<size_t>(w)] = 1;
      if (is_join)
        rep.bootstrap_bytes += p->bytes;
      else
        rep.resync_bytes += p->bytes;
    }
    rep.recover_s = t_recover.seconds();
  }

  // 6. Run the round on the resolved membership.
  runtime::EpochParticipants parts;
  parts.active = active;
  parts.canonical = active.front();
  parts.delay_ms = delay_ms;
  rep.record = trainer_.train_epoch(ds, round, parts);
  rep.active = active;
  canonical_ = parts.canonical;

  // 7. Post-round bookkeeping: exactly the participants hold the new
  // canonical state; everyone who trained resets its staleness clock; the
  // per-slot compute times feed the measured speed profile.
  for (int w = 0; w < workers; ++w)
    synced_[static_cast<size_t>(w)] =
        contains(active, w) ? 1 : 0;
  const std::vector<double>& cs = trainer_.last_epoch_compute_seconds();
  for (int w : active) {
    stale_rounds_[static_cast<size_t>(w)] = 0;
    if (cs[static_cast<size_t>(w)] > 0) {
      speed_seconds_[static_cast<size_t>(w)] += cs[static_cast<size_t>(w)];
      ++speed_rounds_[static_cast<size_t>(w)];
    }
  }

  stats_.joins += rep.joins;
  stats_.leaves += rep.leaves;
  stats_.kills += rep.kills;
  stats_.stragglers_waited += rep.stragglers_waited;
  stats_.stragglers_mitigated += rep.stragglers_mitigated;
  stats_.bootstrap_bytes += rep.bootstrap_bytes;
  stats_.resync_bytes += rep.resync_bytes;
  stats_.recover_s += rep.recover_s;
  return rep;
}

std::vector<RoundReport> ElasticTrainer::train(
    const data::SyntheticImages& ds) {
  std::vector<RoundReport> out;
  int start = 0;
  if (cfg_.cluster.resume && !cfg_.cluster.checkpoint_dir.empty() &&
      core::snapshot_exists(cfg_.cluster.checkpoint_dir))
    start = resume();
  for (int r = start; r < cfg_.cluster.train.epochs; ++r) {
    out.push_back(train_round(ds, r));
    if (!cfg_.cluster.checkpoint_dir.empty() &&
        ((r + 1) % std::max(1, cfg_.cluster.checkpoint_every) == 0 ||
         r + 1 == cfg_.cluster.train.epochs))
      save_snapshot(r + 1);
  }
  return out;
}

void ElasticTrainer::save_snapshot(int next_round) {
  trainer_.save_snapshot(next_round, canonical_);
}

int ElasticTrainer::resume() {
  const int round = trainer_.resume();
  // resume() broadcast the canonical snapshot state to every slot, so the
  // whole universe is up to date -- donors and joiner bootstraps behave
  // bitwise-identically to the uninterrupted run (the payload content is
  // the canonical state either way; elastic_test asserts this).
  std::fill(synced_.begin(), synced_.end(), 1);
  std::fill(stale_rounds_.begin(), stale_rounds_.end(), 0);
  canonical_ = 0;
  return round;
}

std::vector<double> ElasticTrainer::measured_speeds() const {
  const int workers = trainer_.workers();
  std::vector<double> mean(static_cast<size_t>(workers), 0.0);
  double fastest = std::numeric_limits<double>::infinity();
  bool any = false;
  for (int w = 0; w < workers; ++w) {
    if (speed_rounds_[static_cast<size_t>(w)] == 0) continue;
    mean[static_cast<size_t>(w)] =
        speed_seconds_[static_cast<size_t>(w)] /
        static_cast<double>(speed_rounds_[static_cast<size_t>(w)]);
    fastest = std::min(fastest, mean[static_cast<size_t>(w)]);
    any = true;
  }
  if (!any) return {};
  std::vector<double> speeds(static_cast<size_t>(workers), 1.0);
  for (int w = 0; w < workers; ++w)
    if (mean[static_cast<size_t>(w)] > 0)
      speeds[static_cast<size_t>(w)] = fastest / mean[static_cast<size_t>(w)];
  return speeds;
}

dist::HardwareProfile ElasticTrainer::speed_profile(
    dist::HardwareProfile hw) const {
  hw.worker_speeds = measured_speeds();
  return hw;
}

}  // namespace pf::elastic
