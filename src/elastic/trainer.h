// Elastic heterogeneous cluster executor (DESIGN.md §16).
//
// ElasticTrainer drives runtime::ShmDataParallelTrainer one ROUND (epoch)
// at a time, applying a deterministic MembershipPlan and the round-boundary
// schedule of a fault::Plan between rounds:
//
//  * joins/leaves -- the active slot set changes at the round boundary; the
//    executor reshards the data and re-buckets the ring over the new dense
//    lane set (bitwise-deterministic for any worker count). Joiners are
//    bootstrapped from the canonical replica with a BootstrapPayload --
//    the factorized (or delta-compressed) state, never a full-rank fp32
//    dump unless the model itself is full-rank.
//  * round kills -- the slot's state is lost (NaN-poisoned) at the
//    boundary; it recovers by the same bootstrap path. If every up-to-date
//    slot is scheduled to die at once, the lowest is spared (recovery
//    needs one survivor), mirroring the step-level fault semantics.
//  * round stragglers (delay faults) -- mitigated per the configured
//    StragglerStrategy: wait out the delay, activate a spare backup slot,
//    or drop the straggler for up to `staleness_bound` consecutive rounds.
//
// Invariant: every ACTIVE replica holds the canonical state when a round
// starts (exactly for kExact payloads; up to the delta spec's discarded
// energy for kDelta joiners), so the round's trajectory is a pure function
// of (seeds, schedules) and chaos runs replay bitwise
// (tests/elastic_test.cc).
#pragma once

#include <memory>
#include <vector>

#include "dist/hardware.h"
#include "elastic/bootstrap.h"
#include "elastic/membership.h"
#include "runtime/shm_cluster.h"

namespace pf::elastic {

enum class StragglerStrategy {
  kWaitAll,           // absorb the delay behind the barriers (baseline)
  kBackupWorker,      // swap in the lowest inactive spare slot, if any
  kBoundedStaleness,  // exclude the straggler <= staleness_bound rounds
};

const char* to_string(StragglerStrategy s);

struct ElasticConfig {
  // cluster.workers is the SLOT UNIVERSE: the max concurrent replicas. The
  // membership plan (same universe) decides who is live each round.
  runtime::ShmClusterConfig cluster;
  MembershipPlan membership;  // default = static cluster
  StragglerStrategy straggler = StragglerStrategy::kWaitAll;
  int staleness_bound = 2;
  // How genuine JOINERS are brought up to date. Intra-cluster re-syncs
  // (kill recovery, backup activation, staleness catch-up) always ship the
  // exact payload: they model cluster-internal copies, not wire joins.
  BootstrapMode bootstrap = BootstrapMode::kExact;
  quant::DeltaSpec delta;  // kDelta tuning
};

struct RoundReport {
  dist::DistEpochRecord record;
  std::vector<int> active;  // slots that actually trained this round
  int joins = 0, leaves = 0, kills = 0;
  int stragglers_waited = 0, stragglers_mitigated = 0;
  int64_t bootstrap_bytes = 0;  // join payloads (wire traffic)
  int64_t resync_bytes = 0;     // kill/backup/staleness exact re-syncs
  double recover_s = 0;  // time-to-recover: payload capture + install
};

struct ElasticStats {
  int joins = 0, leaves = 0, kills = 0;
  int stragglers_waited = 0, stragglers_mitigated = 0;
  int64_t bootstrap_bytes = 0, resync_bytes = 0;
  double recover_s = 0;
};

class ElasticTrainer {
 public:
  // Ring path only (elasticity is about re-bucketing the ring); the model
  // factory is the shm trainer's identically-seeded-replica contract.
  ElasticTrainer(const core::VisionModelFactory& make_model,
                 const ElasticConfig& cfg);

  RoundReport train_round(const data::SyntheticImages& ds, int round);
  // Runs cfg.cluster.train.epochs rounds, honoring
  // cfg.cluster.{checkpoint_dir, checkpoint_every, resume} exactly like
  // the static trainer -- snapshots may land on either side of a
  // membership change and resume stays bitwise (same slot universe only).
  std::vector<RoundReport> train(const data::SyntheticImages& ds);

  void save_snapshot(int next_round);
  int resume();  // returns the round to continue from

  // The canonical replica of the most recent round (lowest active slot).
  nn::UnaryModule& model() { return trainer_.replica(canonical_); }
  int canonical() const { return canonical_; }
  runtime::ShmDataParallelTrainer& cluster() { return trainer_; }
  const ElasticStats& stats() const { return stats_; }

  // Measured per-slot relative speeds (1.0 = fastest slot), from each
  // slot's mean fwd+bwd seconds over the rounds it participated in. Empty
  // until a round has run. speed_profile() stamps them into a
  // HardwareProfile so plan::make_plan prices this heterogeneous cluster.
  std::vector<double> measured_speeds() const;
  dist::HardwareProfile speed_profile(dist::HardwareProfile hw) const;

 private:
  ElasticConfig cfg_;
  runtime::ShmDataParallelTrainer trainer_;
  std::unique_ptr<nn::UnaryModule> base_;  // kDelta shared base (the init)
  // synced_[w]: replica w holds the canonical state of the last completed
  // round. All true at construction (identically seeded replicas) and
  // after resume (broadcast); after a round, exactly the participants.
  std::vector<char> synced_;
  std::vector<int> stale_rounds_;  // consecutive staleness exclusions
  int canonical_ = 0;
  ElasticStats stats_;
  std::vector<double> speed_seconds_;  // per-slot summed fwd+bwd time
  std::vector<int> speed_rounds_;      // rounds the slot participated in
};

}  // namespace pf::elastic
