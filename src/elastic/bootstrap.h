// Joiner bootstrap payloads for elastic membership (DESIGN.md §16).
//
// When a slot (re)joins the cluster its replica is stale, so it must be
// brought up to the canonical state before it may touch the ring. The
// payload it would ship over the wire comes in two flavors:
//
//  * kExact -- every serializable tensor of the canonical replica (params
//    AND buffers, in checkpoint order) plus the optimizer slot buffers,
//    verbatim fp32. Lossless: the joiner is bitwise in sync, including
//    BatchNorm running statistics. This is also what intra-cluster
//    re-syncs (backup-worker activation, staleness catch-up, kill
//    recovery) use. For a hybrid (factorized) model this is already the
//    paper's win: the factors U, V ship instead of the full-rank W.
//  * kDelta -- a low-rank-factorized residual of the canonical weights vs
//    a shared base model every joiner already holds (quant::compute_delta,
//    the §14 machinery), with optimizer momentum restarted at zero. Far
//    fewer bytes than even the factorized state; approximate, bounded by
//    the delta spec's retained energy, and still seed-deterministic so
//    chaos runs replay bitwise.
//
// The shm cluster moves these payloads by memcpy, but `bytes` accounts
// them as wire traffic so bench_elastic can price joins on a real network.
#pragma once

#include <cstdint>

#include "nn/module.h"
#include "optim/optim.h"
#include "quant/delta.h"

namespace pf::elastic {

enum class BootstrapMode {
  kExact,  // full serialized state, lossless
  kDelta,  // low-rank residual vs shared base + momentum restart, lossy
};

const char* to_string(BootstrapMode mode);

struct BootstrapPayload {
  BootstrapMode mode = BootstrapMode::kExact;
  // kExact: the canonical replica's tensors (checkpoint order) and
  // optimizer slot buffers, cloned so the payload is a stable snapshot.
  std::vector<Tensor> state;
  std::vector<Tensor> opt_state;
  // kDelta: low-rank residual of canonical weights vs the shared base.
  quant::DeltaModel delta;
  int64_t bytes = 0;  // modeled wire size of the payload (fp32)
};

// Capture the state a joiner needs from the canonical replica `src` /
// optimizer `opt`. `base` is the shared base model for kDelta (ignored,
// may be null, for kExact).
BootstrapPayload make_bootstrap(nn::Module& src, optim::Optimizer& opt,
                                BootstrapMode mode, nn::Module* base,
                                const quant::DeltaSpec& spec = {});

// Install a payload into joiner `dst` / its optimizer. kExact copies every
// tensor verbatim; kDelta resets dst to the shared base, reconstructs
// base + UV^T in place, and zeroes the optimizer slots.
void apply_bootstrap(nn::Module& dst, optim::Optimizer& opt,
                     const BootstrapPayload& payload, nn::Module* base);

}  // namespace pf::elastic
