// Deterministic membership schedules for elastic data-parallel training
// (DESIGN.md §16).
//
// A MembershipPlan is the elastic analogue of fault::Plan: a pure function
// of its construction inputs that says which replica slots are active in
// each training round. Membership only changes at ROUND boundaries (the
// shm executor's epoch boundaries), where all active replicas are
// bitwise-identical -- that is the one point where resharding the data and
// re-bucketing the ring-reduce groups cannot perturb the trajectory.
//
// Slots vs lanes: a plan is written against stable replica SLOTS in
// [0, max_workers). The executor densifies the active set into ring LANES
// each round, so a plan never needs to know how many workers are currently
// alive. `random()` derives every coin flip from (seed, round, slot) via
// splitmix-style mixing, so a chaos schedule replays bitwise from its seed
// alone (tests/elastic_test.cc prints the seed on failure).
#pragma once

#include <cstdint>
#include <vector>

namespace pf::elastic {

struct MembershipEvent {
  enum class Kind { kJoin, kLeave };
  Kind kind = Kind::kJoin;
  int worker = 0;  // replica slot in [0, max_workers)
  int round = 0;   // applied entering this round, before any step runs
};

class MembershipPlan {
 public:
  // Default: static cluster (every slot of whatever universe the executor
  // has stays active forever).
  MembershipPlan() = default;

  // Slots [0, initial_active) start active; slots up to max_workers may
  // join later. initial_active <= 0 means all slots start active.
  MembershipPlan(int max_workers, int initial_active);

  // Seeded random schedule over `rounds` rounds: each round, every active
  // slot leaves with probability p_leave (never below min_active live
  // slots) and every inactive slot joins with probability p_join. Round 0
  // is event-free so every run starts from the initial membership.
  static MembershipPlan random(uint64_t seed, int max_workers, int rounds,
                               double p_join = 0.35, double p_leave = 0.35,
                               int min_active = 1, int initial_active = 0);

  // Manual schedule building. Events are validated lazily by active_at():
  // joining an active slot or leaving an inactive one is rejected there,
  // so a malformed plan fails loudly instead of silently renumbering.
  MembershipPlan& join(int worker, int round);
  MembershipPlan& leave(int worker, int round);

  bool empty() const { return events_.empty(); }
  int max_workers() const { return max_workers_; }
  uint64_t seed() const { return seed_; }
  const std::vector<MembershipEvent>& events() const { return events_; }

  // Sorted active slots entering `round` (this round's events applied).
  // Throws if the plan ever empties the cluster or replays a contradictory
  // event; for round >= the last scheduled event the membership freezes.
  std::vector<int> active_at(int round) const;

  // The events applied entering `round`, in schedule order.
  std::vector<MembershipEvent> events_at(int round) const;

 private:
  int max_workers_ = 0;     // 0 = adopt the executor's slot universe
  int initial_active_ = 0;  // 0 = all slots
  uint64_t seed_ = 0;
  std::vector<MembershipEvent> events_;
};

}  // namespace pf::elastic
