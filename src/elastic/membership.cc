#include "elastic/membership.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace pf::elastic {

namespace {

// splitmix64 finalizer: the same mixing discipline fault::Plan and the
// per-worker Rng derivation use, so one seed pins the whole chaos run.
uint64_t mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Deterministic coin in [0, 1) from (seed, round, slot, salt).
double coin(uint64_t seed, int round, int slot, uint64_t salt) {
  uint64_t h = mix64(seed ^ salt);
  h = mix64(h ^ (static_cast<uint64_t>(round) << 32 |
                 static_cast<uint64_t>(static_cast<uint32_t>(slot))));
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

MembershipPlan::MembershipPlan(int max_workers, int initial_active) {
  if (max_workers < 1)
    throw std::runtime_error("elastic: max_workers must be >= 1");
  max_workers_ = max_workers;
  initial_active_ =
      initial_active <= 0 ? max_workers
                          : std::min(initial_active, max_workers);
}

MembershipPlan& MembershipPlan::join(int worker, int round) {
  events_.push_back({MembershipEvent::Kind::kJoin, worker, round});
  return *this;
}

MembershipPlan& MembershipPlan::leave(int worker, int round) {
  events_.push_back({MembershipEvent::Kind::kLeave, worker, round});
  return *this;
}

MembershipPlan MembershipPlan::random(uint64_t seed, int max_workers,
                                      int rounds, double p_join,
                                      double p_leave, int min_active,
                                      int initial_active) {
  MembershipPlan plan(max_workers, initial_active);
  plan.seed_ = seed;
  min_active = std::max(1, min_active);
  // Track the live set while generating so leave events can respect
  // min_active without ever needing runtime coordination.
  std::vector<char> live(static_cast<size_t>(max_workers), 0);
  for (int w = 0; w < plan.initial_active_; ++w) live[static_cast<size_t>(w)] = 1;
  int n_live = plan.initial_active_;
  for (int r = 1; r < rounds; ++r) {
    // Leaves first (lowest slot first), so a join in the same round can
    // backfill capacity the leave just freed.
    for (int w = 0; w < max_workers; ++w) {
      if (live[static_cast<size_t>(w)] && n_live > min_active &&
          coin(seed, r, w, 0x1EAFull) < p_leave) {
        plan.leave(w, r);
        live[static_cast<size_t>(w)] = 0;
        --n_live;
      }
    }
    for (int w = 0; w < max_workers; ++w) {
      if (!live[static_cast<size_t>(w)] &&
          coin(seed, r, w, 0x10Bull) < p_join) {
        plan.join(w, r);
        live[static_cast<size_t>(w)] = 1;
        ++n_live;
      }
    }
  }
  return plan;
}

std::vector<int> MembershipPlan::active_at(int round) const {
  if (max_workers_ < 1)
    throw std::runtime_error(
        "elastic: active_at on a default-constructed (universe-less) plan");
  std::vector<char> live(static_cast<size_t>(max_workers_), 0);
  for (int w = 0; w < initial_active_; ++w) live[static_cast<size_t>(w)] = 1;
  // Replay in round order regardless of insertion order (manual plans may
  // interleave builder calls); stable so same-round events keep call order.
  std::vector<MembershipEvent> ordered(events_);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const MembershipEvent& a, const MembershipEvent& b) {
                     return a.round < b.round;
                   });
  for (const MembershipEvent& e : ordered) {
    if (e.round > round) continue;
    if (e.worker < 0 || e.worker >= max_workers_)
      throw std::runtime_error("elastic: membership event slot " +
                               std::to_string(e.worker) +
                               " outside universe [0, " +
                               std::to_string(max_workers_) + ")");
    char& flag = live[static_cast<size_t>(e.worker)];
    const bool joining = e.kind == MembershipEvent::Kind::kJoin;
    if (joining == static_cast<bool>(flag))
      throw std::runtime_error(
          "elastic: contradictory membership event for slot " +
          std::to_string(e.worker) + " at round " + std::to_string(e.round) +
          (joining ? " (join while active)" : " (leave while inactive)"));
    flag = joining ? 1 : 0;
  }
  std::vector<int> active;
  for (int w = 0; w < max_workers_; ++w)
    if (live[static_cast<size_t>(w)]) active.push_back(w);
  if (active.empty())
    throw std::runtime_error("elastic: membership plan empties the cluster "
                             "at round " + std::to_string(round));
  return active;
}

std::vector<MembershipEvent> MembershipPlan::events_at(int round) const {
  std::vector<MembershipEvent> out;
  for (const MembershipEvent& e : events_)
    if (e.round == round) out.push_back(e);
  return out;
}

}  // namespace pf::elastic
