// Multi-model fleet serving: N engines x M workers on one runtime pool.
//
// A fleet hosts many serving artifacts -- fp32, quantized, delta-variant --
// behind one worker pool. Each model gets its own bounded request queue
// (per-model admission control, so one tenant's burst sheds that tenant's
// load instead of everyone's) and an SLO class {deadline_ms, weight}.
//
// Scheduling is weighted earliest-deadline-first over FLUSHABLE queues:
//  * a queue becomes flushable under the usual dynamic-batching rules
//    (max_batch queued, or its oldest request has waited the batcher
//    deadline);
//  * among flushable queues a worker picks the smallest *virtual* deadline
//      t_oldest + slo.deadline_ms / slo.weight
//    so a 2x-weight model tolerates half the slack before it preempts --
//    weighted admission across queues without starving anyone (every queue's
//    virtual deadline eventually becomes the minimum as it ages);
//  * ties break on the lowest model index, which (with the deterministic
//    arrival timeline below) keeps scheduling decisions reproducible.
//
// Engines materialize LAZILY: a model registers a factory, not an engine,
// and the factory runs at most once, at first dispatch (or an explicit
// materialize() call). N delta variants of one base therefore cost one base
// artifact plus N small deltas on disk, and only the variants that actually
// receive traffic ever occupy serving memory.
//
// The worker model is Server's: one dispatcher thread issues a single
// runtime::parallel_for over worker ids, so fleet workers are the pool's
// threads and kernels inside worker loops take the deterministic
// inline-serial path. Per-request outputs are batch-composition-invariant
// (row-partitioned GEMMs), so serve outputs are bitwise identical across
// PF_THREADS within a backend.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "metrics/serve_stats.h"
#include "serve/frozen.h"
#include "serve/server.h"

namespace pf::serve {

struct SloClass {
  double deadline_ms = 50.0;  // latency objective (virtual-deadline slack)
  double weight = 1.0;        // admission weight; higher preempts sooner
};

using EngineFactory = std::function<std::unique_ptr<Engine>()>;

struct FleetModelConfig {
  std::string name;
  EngineFactory factory;  // runs at most once (lazy materialization)
  BatcherConfig batcher;  // per-model flush rules + admission bound
  SloClass slo;
};

struct FleetConfig {
  int workers = 2;  // desired; clamped to runtime::threads() at start()
};

class Fleet {
 public:
  explicit Fleet(const FleetConfig& cfg,
                 metrics::FleetStats* stats = nullptr);
  ~Fleet();
  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // Registers a model; returns its index. Before start() only.
  int add_model(FleetModelConfig m);

  void start();
  void stop();  // idempotent: drain all queues, join

  // Enqueue a request for `model`. False = admission reject (that model's
  // queue full, or fleet stopped); rejected promises are never fulfilled.
  bool submit(int model, const RequestPtr& r);

  // Runs the factory now (idempotent, thread-safe). Useful to prime an
  // engine before traffic, and what the tests use to observe laziness.
  Engine& materialize(int model);
  bool materialized(int model) const;

  int models() const { return static_cast<int>(fleet_.size()); }
  int workers() const { return workers_running_; }
  int64_t queue_depth(int model) const;
  const std::string& model_name(int model) const;

 private:
  struct Model {
    FleetModelConfig cfg;
    std::deque<RequestPtr> q;
    std::once_flag once;
    std::unique_ptr<Engine> engine;
    std::atomic<bool> ready{false};
  };

  void worker_loop();
  // Pops the next batch under the weighted-EDF policy; empty batch = exit.
  std::vector<RequestPtr> next_batch(int* model_out);

  FleetConfig cfg_;
  metrics::FleetStats* stats_;
  std::vector<std::unique_ptr<Model>> fleet_;

  mutable std::mutex m_;
  std::condition_variable cv_;
  bool shutdown_ = false;

  std::thread dispatcher_;
  std::atomic<bool> started_{false};
  int workers_running_ = 0;
};

// ---------------- Trace-driven open-loop load generator ----------------

// One phase of a multi-tenant traffic trace: per-model Poisson arrival
// rates held for `duration_s`. Chaining phases models diurnal shape
// (ramp / peak / trough) and per-tenant bursts (one model's rate spiking
// while the others idle).
struct TracePhase {
  double duration_s = 0.5;
  std::vector<double> rate_rps;  // one per fleet model; 0 = idle this phase
};

struct TraceConfig {
  std::vector<TracePhase> phases;
  uint64_t seed = 0xF1EE7ull;  // arrival-timeline RNG seed
};

// Pre-generates the merged deterministic arrival timeline (per-model Poisson
// gaps per phase, merged and stably ordered), then replays it open-loop:
// arrivals fire at their scheduled time whether or not the fleet keeps up.
// make[i] builds requests for model i. Waits for every accepted request;
// returns per-model completed counts.
std::vector<int64_t> run_trace_open_loop(
    Fleet& fleet, const std::vector<RequestFactory>& make,
    const TraceConfig& cfg);

}  // namespace pf::serve
