// Dynamic batching queue for the inference server.
//
// Pufferfish's serving win is a *compute* win, and compute on a CPU (or any
// accelerator) is only cheap in batches -- a server that forwards every
// request alone leaves most of the factorized model's speedup on the table.
// The Batcher implements the standard dynamic-batching contract:
//
//  * flush on FULLNESS: as soon as max_batch requests are queued, a worker
//    gets a full batch immediately;
//  * flush on DEADLINE: otherwise the batch closes when the *oldest* queued
//    request has waited deadline_ms, so one straggler request never waits
//    more than the configured bound for peers that may never arrive
//    (deadline_ms = 0 degenerates to greedy "take whatever is there");
//  * BACKPRESSURE: the queue depth is bounded; submissions beyond max_depth
//    are rejected at admission (load shedding) instead of growing an
//    unbounded queue whose tail latency is unbounded too.
//
// Thread-safety: any number of submitting threads and any number of worker
// threads calling next_batch() concurrently; a request is handed to exactly
// one worker.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "tensor/tensor.h"

namespace pf::serve {

// One inference request. Exactly one of `input` (vision engines: one sample,
// e.g. (C, H, W)) or `tokens` (LM engines: a fixed-length prefix) is set.
// The server writes `output` (the logits row for this request) and then
// fulfils `done`; clients wait on the future and read `output`.
struct Request {
  uint64_t id = 0;
  Tensor input;
  std::vector<int64_t> tokens;
  // Retry generation (0 = first try). A retried request is a *fresh*
  // Request object -- std::promise is single-use -- carrying the same id
  // with attempt+1; fault injection draws a fresh coin per attempt.
  int attempt = 0;

  Tensor output;
  // Set by the server when an injected fault dropped this request instead
  // of serving it; `done` is still fulfilled so clients never hang. Check
  // after waiting (see submit_with_retry in serve/server.h).
  bool failed = false;
  std::promise<void> done;
  std::chrono::steady_clock::time_point t_submit{};
};
using RequestPtr = std::shared_ptr<Request>;

RequestPtr make_request(uint64_t id, Tensor input);
RequestPtr make_request(uint64_t id, std::vector<int64_t> tokens);

struct BatcherConfig {
  int64_t max_batch = 8;    // flush as soon as this many are queued
  double deadline_ms = 2.0; // max time the oldest request waits for peers
  int64_t max_depth = 256;  // admission bound; submissions beyond it reject
};

class Batcher {
 public:
  explicit Batcher(const BatcherConfig& cfg);

  // Stamps r->t_submit and enqueues. Returns false (without queuing) when
  // the queue is at max_depth or the batcher is shut down.
  bool submit(const RequestPtr& r);

  // Blocks until a batch is ready under the flush rules above. After
  // shutdown() drains the queue, returns an empty vector -- the worker's
  // signal to exit.
  std::vector<RequestPtr> next_batch();

  // Stops admission and wakes all workers. Queued requests are still
  // handed out (drain semantics) before workers see the empty vector.
  void shutdown();

  int64_t depth() const;
  bool accepting() const;

 private:
  BatcherConfig cfg_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<RequestPtr> q_;
  bool shutdown_ = false;
};

}  // namespace pf::serve
