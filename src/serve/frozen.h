// Immutable inference artifacts ("engines") for the serving subsystem.
//
// A FrozenModel is what Pufferfish actually ships: the factorized network is
// dense and *smaller*, so at inference time it is simply a cheaper model --
// no decompression, no sparse kernels, nothing to undo (unlike gradient
// compression, which vanishes at deploy time anyway). Freezing a trained
// module does three things:
//
//  1. PACKS the parameters: every parameter tensor is copied once into a
//     single contiguous arena and rebound as a zero-copy view into it, so
//     the whole artifact is one buffer (cache-friendly walks, one
//     allocation, trivially shareable across serving workers).
//     BatchNorm running statistics deliberately stay in their own unique
//     buffers: the eval kernel reads them through a mutable handle, and a
//     uniquely-owned tensor makes that access copy-free and race-free.
//  2. FREEZES the tape: eval mode forever, requires_grad dropped on every
//     parameter, and every forward runs under ag::NoGradGuard through the
//     same core::eval_forward path the trainer's eval loops use -- which is
//     why FrozenModel outputs are bitwise-identical to module eval outputs.
//  3. Reuses runtime::BufferPool for activations: after prime() (one warmup
//     forward per batch size), steady-state requests are served with ZERO
//     system allocations -- every activation buffer is recycled from the
//     pool's free lists.
//
// Engines are thread-safe for concurrent forward_batch calls once primed:
// the forward path takes only const reads of the shared weights.
#pragma once

#include <memory>
#include <string>

#include "core/eval.h"
#include "models/lstm_lm.h"
#include "nn/module.h"
#include "serve/batcher.h"

namespace pf::serve {

// What the Server drives: anything that can forward a batch of requests.
// Implementations write reqs[i]->output; the Server fulfils the promises
// (after stamping latency) so engines stay oblivious to queueing.
class Engine {
 public:
  virtual ~Engine() = default;
  virtual std::string name() const = 0;
  virtual void forward_batch(const std::vector<RequestPtr>& reqs) = 0;
};

namespace detail {
// Packs all parameters of `m` into one contiguous arena (returned), rebinds
// them as views, drops requires_grad, and puts the tree in eval mode.
Tensor freeze_and_pack(nn::Module& m);
}  // namespace detail

// Frozen image-classification engine over any nn::UnaryModule (vanilla or
// hybrid low-rank ResNet/VGG).
class FrozenModel : public Engine {
 public:
  // Takes ownership. If `checkpoint` is non-empty the weights are loaded
  // via nn::load_checkpoint (v1 artifacts fail loudly when corrupt) before
  // freezing.
  FrozenModel(std::unique_ptr<nn::UnaryModule> m, std::string name,
              const std::string& checkpoint = "");

  // Tape-free batched forward: (N, C, H, W) -> logits (N, classes).
  Tensor forward(const Tensor& nchw) const;

  // Stacks request inputs (each one sample (C, H, W)) into a batch, runs one
  // forward, and hands each request a zero-copy view of its logits row.
  void forward_batch(const std::vector<RequestPtr>& reqs) override;

  // Runs warmup forwards at batch sizes 1..max_batch so every activation
  // bucket the serving path will ever need is already in the buffer pool
  // (and any one-time COW unshares happen here, single-threaded, instead of
  // racing under concurrent workers).
  void prime(const Shape& sample_shape, int64_t max_batch);

  std::string name() const override { return name_; }
  int64_t num_params() const { return params_; }
  int64_t packed_bytes() const {
    return arena_.numel() * static_cast<int64_t>(sizeof(float));
  }
  nn::UnaryModule& module() { return *model_; }

 private:
  std::unique_ptr<nn::UnaryModule> model_;
  std::string name_;
  Tensor arena_;  // the packed parameter block (params are views into it)
  int64_t params_ = 0;
};

// Frozen LSTM language-model engine: requests carry a fixed-length token
// prefix; the response is the next-token logits row (the last timestep of
// the tied decoder output).
class FrozenLstm : public Engine {
 public:
  FrozenLstm(std::unique_ptr<models::LstmLm> m, int64_t seq_len,
             std::string name, const std::string& checkpoint = "");

  // ids: (t_len * b) time-major -> full logits (t_len * b, vocab).
  Tensor forward(const std::vector<int64_t>& ids, int64_t t_len,
                 int64_t b) const;

  void forward_batch(const std::vector<RequestPtr>& reqs) override;
  void prime(int64_t max_batch);

  std::string name() const override { return name_; }
  int64_t num_params() const { return params_; }
  int64_t seq_len() const { return seq_len_; }
  models::LstmLm& module() { return *model_; }

 private:
  std::unique_ptr<models::LstmLm> model_;
  int64_t seq_len_;
  std::string name_;
  Tensor arena_;
  int64_t params_ = 0;
};

}  // namespace pf::serve
