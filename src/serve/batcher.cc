#include "serve/batcher.h"

#include <algorithm>

#include "trace/trace.h"

namespace pf::serve {

RequestPtr make_request(uint64_t id, Tensor input) {
  auto r = std::make_shared<Request>();
  r->id = id;
  r->input = std::move(input);
  return r;
}

RequestPtr make_request(uint64_t id, std::vector<int64_t> tokens) {
  auto r = std::make_shared<Request>();
  r->id = id;
  r->tokens = std::move(tokens);
  return r;
}

Batcher::Batcher(const BatcherConfig& cfg) : cfg_(cfg) {
  if (cfg_.max_batch < 1) cfg_.max_batch = 1;
  if (cfg_.max_depth < 1) cfg_.max_depth = 1;
  if (cfg_.deadline_ms < 0) cfg_.deadline_ms = 0;
}

bool Batcher::submit(const RequestPtr& r) {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (shutdown_ || static_cast<int64_t>(q_.size()) >= cfg_.max_depth)
      return false;
    r->t_submit = std::chrono::steady_clock::now();
    q_.push_back(r);
  }
  // notify_all, not notify_one: one worker may be parked in the
  // wait-for-peers loop below while another is idle; both must reassess.
  cv_.notify_all();
  return true;
}

std::vector<RequestPtr> Batcher::next_batch() {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    cv_.wait(lk, [&] { return shutdown_ || !q_.empty(); });
    if (q_.empty()) return {};  // shutdown and fully drained
    // Flush span: from first seeing work to handing the batch out. This is
    // the batching delay (waiting for peers / the deadline), as opposed to
    // idle time parked on an empty queue, which records no span.
    const std::uint64_t t_flush = trace::enabled() ? trace::now_ns() : 0;

    // The batch's deadline belongs to the *oldest* request: it bounds how
    // long that request waits for peers, not how long the batch builds.
    // Re-armed from the CURRENT front on every pass: another worker can pop
    // the request a deadline was computed from, and a deadline anchored to
    // a departed (older) request would flush the new front early --
    // harmless for the latency bound, but it shrinks batches under
    // multi-worker contention. With deadline_ms == 0 the armed deadline is
    // the front's own submit time, which has always passed, so the loop
    // degenerates to greedy "take whatever is there".
    const auto front_deadline = [&] {
      return q_.front()->t_submit +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double, std::milli>(cfg_.deadline_ms));
    };
    while (static_cast<int64_t>(q_.size()) < cfg_.max_batch && !shutdown_) {
      if (cv_.wait_until(lk, front_deadline()) == std::cv_status::timeout) {
        if (q_.empty()) break;  // another worker took everything; reassess
        // Only flush if the request now at the front has really expired;
        // a timeout against a stale anchor re-arms and keeps waiting.
        if (std::chrono::steady_clock::now() >= front_deadline()) break;
      }
      if (q_.empty()) break;  // spurious/steal wakeup with nothing left
    }
    if (q_.empty()) continue;

    const int64_t n =
        std::min<int64_t>(cfg_.max_batch, static_cast<int64_t>(q_.size()));
    std::vector<RequestPtr> batch;
    batch.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      batch.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    trace::emit("serve.flush", t_flush, trace::now_ns(), n);
    return batch;
  }
}

void Batcher::shutdown() {
  {
    std::lock_guard<std::mutex> lk(m_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

int64_t Batcher::depth() const {
  std::lock_guard<std::mutex> lk(m_);
  return static_cast<int64_t>(q_.size());
}

bool Batcher::accepting() const {
  std::lock_guard<std::mutex> lk(m_);
  return !shutdown_;
}

}  // namespace pf::serve
