#include "serve/frozen.h"

#include <algorithm>
#include <stdexcept>

#include "nn/serialize.h"

namespace pf::serve {

namespace detail {

Tensor freeze_and_pack(nn::Module& m) {
  m.train(false);
  std::vector<nn::Param*> params = m.parameters();
  int64_t total = 0;
  for (nn::Param* p : params) total += p->var->numel();

  Tensor arena = Tensor::uninit(Shape{std::max<int64_t>(1, total)});
  float* ap = arena.data();  // unique here: no COW, no sharing yet
  int64_t off = 0;
  for (nn::Param* p : params) {
    Tensor& v = p->var->value;
    const int64_t n = v.numel();
    // quant::commit releases fp32 weights entirely (the layer serves from
    // its quantized slot); an empty param has nothing to pack.
    if (n == 0) continue;
    std::copy(v.data(), v.data() + n, ap + off);
    // Rebind the parameter as a zero-copy window into the arena. Every
    // module member ag::Var is a handle to the same node, so the rebound
    // value is visible everywhere the layer reads its weight.
    p->var->value = arena.narrow(off, n).reshape(v.shape());
    p->var->requires_grad = false;
    off += n;
  }
  return arena;
}

}  // namespace detail

FrozenModel::FrozenModel(std::unique_ptr<nn::UnaryModule> m, std::string name,
                         const std::string& checkpoint)
    : model_(std::move(m)), name_(std::move(name)) {
  if (!model_) throw std::runtime_error("FrozenModel: null module");
  if (!checkpoint.empty()) nn::load_checkpoint(*model_, checkpoint);
  params_ = model_->num_params();
  arena_ = detail::freeze_and_pack(*model_);
}

Tensor FrozenModel::forward(const Tensor& nchw) const {
  return core::eval_forward(*model_, nchw);
}

void FrozenModel::forward_batch(const std::vector<RequestPtr>& reqs) {
  if (reqs.empty()) return;
  const Shape& sample = reqs[0]->input.shape();
  const int64_t n = static_cast<int64_t>(reqs.size());
  Shape batch_shape;
  batch_shape.reserve(sample.size() + 1);
  batch_shape.push_back(n);
  batch_shape.insert(batch_shape.end(), sample.begin(), sample.end());

  Tensor batch = Tensor::uninit(batch_shape);
  const int64_t stride = reqs[0]->input.numel();
  float* bp = batch.data();
  for (int64_t i = 0; i < n; ++i) {
    const Tensor& in = reqs[static_cast<size_t>(i)]->input;
    if (in.shape() != sample)
      throw std::runtime_error("FrozenModel: mixed sample shapes in batch");
    std::copy(in.data(), in.data() + stride, bp + i * stride);
  }

  Tensor out = forward(batch);  // (n, classes)
  for (int64_t i = 0; i < n; ++i)
    reqs[static_cast<size_t>(i)]->output =
        out.narrow(i, 1).reshape(Shape{out.size(1)});
}

void FrozenModel::prime(const Shape& sample_shape, int64_t max_batch) {
  for (int64_t b = 1; b <= std::max<int64_t>(1, max_batch); ++b) {
    Shape s;
    s.reserve(sample_shape.size() + 1);
    s.push_back(b);
    s.insert(s.end(), sample_shape.begin(), sample_shape.end());
    forward(Tensor::zeros(s));
  }
}

FrozenLstm::FrozenLstm(std::unique_ptr<models::LstmLm> m, int64_t seq_len,
                       std::string name, const std::string& checkpoint)
    : model_(std::move(m)), seq_len_(seq_len), name_(std::move(name)) {
  if (!model_) throw std::runtime_error("FrozenLstm: null module");
  if (seq_len_ < 1) throw std::runtime_error("FrozenLstm: seq_len >= 1");
  if (!checkpoint.empty()) nn::load_checkpoint(*model_, checkpoint);
  params_ = model_->num_params();
  arena_ = detail::freeze_and_pack(*model_);
}

Tensor FrozenLstm::forward(const std::vector<int64_t>& ids, int64_t t_len,
                           int64_t b) const {
  // Stateless scoring: every request is an independent prefix, so each
  // forward starts from the zero state (nullptr).
  return core::eval_forward_lm(*model_, ids, t_len, b, nullptr);
}

void FrozenLstm::forward_batch(const std::vector<RequestPtr>& reqs) {
  if (reqs.empty()) return;
  const int64_t b = static_cast<int64_t>(reqs.size());
  const int64_t t = seq_len_;
  std::vector<int64_t> ids(static_cast<size_t>(t * b));
  for (int64_t i = 0; i < b; ++i) {
    const std::vector<int64_t>& toks = reqs[static_cast<size_t>(i)]->tokens;
    if (static_cast<int64_t>(toks.size()) != t)
      throw std::runtime_error("FrozenLstm: request length != seq_len");
    // Time-major layout: token at time step j of request i sits at j*b + i.
    for (int64_t j = 0; j < t; ++j)
      ids[static_cast<size_t>(j * b + i)] = toks[static_cast<size_t>(j)];
  }
  Tensor logits = forward(ids, t, b);  // (t*b, vocab)
  // Next-token logits = the last timestep's rows, one per request.
  Tensor last = logits.narrow((t - 1) * b, b);
  for (int64_t i = 0; i < b; ++i)
    reqs[static_cast<size_t>(i)]->output =
        last.narrow(i, 1).reshape(Shape{last.size(1)});
}

void FrozenLstm::prime(int64_t max_batch) {
  for (int64_t b = 1; b <= std::max<int64_t>(1, max_batch); ++b) {
    std::vector<int64_t> ids(static_cast<size_t>(seq_len_ * b), 0);
    forward(ids, seq_len_, b);
  }
}

}  // namespace pf::serve
