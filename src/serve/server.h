// The inference server: N worker loops on the existing runtime thread pool
// pulling dynamic batches from a Batcher and driving one shared Engine,
// plus the closed-loop / open-loop load generators the serving benches use.
//
// Worker model: Server::start() launches one dispatcher std::thread whose
// only job is to issue a single runtime::parallel_for over the worker ids.
// Each chunk IS a worker loop, so the serving workers are literally the
// thread pool's threads (chunk i -> pool worker i; the dispatcher itself
// doubles as worker 0, exactly like every kernel dispatch). Consequences,
// all intentional:
//  * worker count is clamped to runtime::threads() -- a pool thread runs
//    its chunks sequentially, so a second blocking loop queued behind a
//    first would never start;
//  * while the server runs, the pool's dispatch slot is occupied, so GEMMs
//    inside worker loops (and any parallel_for from client threads) take
//    the deterministic inline-serial path: parallelism comes from
//    *requests*, not from splitting one request's kernels;
//  * runtime::set_threads() must not be called while a server is running
//    (it blocks on the dispatch slot until stop()).
//
// Lifecycle: submit() is safe from any thread; stop() stops admission,
// drains the queue, and joins. Rejected requests are never fulfilled --
// the submit() return value is the rejection signal.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "fault/fault.h"
#include "metrics/serve_stats.h"
#include "serve/batcher.h"
#include "serve/frozen.h"

namespace pf::serve {

struct ServerConfig {
  int workers = 2;  // desired; clamped to runtime::threads() at start()
  BatcherConfig batcher;
  // Deterministic fault schedule. With drop_requests(p) set, workers drop
  // each (id, attempt) pair with probability p instead of serving it; the
  // request's promise is still fulfilled with failed = true, so clients
  // observe the failure rather than hanging (see submit_with_retry).
  fault::Plan fault;
  // When non-empty, span tracing (trace/trace.h) is enabled at start() and
  // the merged timeline -- serve.queue / serve.flush / serve.forward /
  // serve.reply spans separating queueing delay from batch compute per
  // request -- is written here as chrome://tracing JSON at stop().
  std::string trace_path;
};

class Server {
 public:
  // `stats` may be null (no recording). The engine must outlive the server
  // and, for >1 worker, should be primed before traffic arrives.
  Server(Engine& engine, const ServerConfig& cfg,
         metrics::ServeStats* stats = nullptr);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void start();
  void stop();  // idempotent: drain, join, stop recording

  // Enqueue a request. Returns false when the admission policy rejects it
  // (bounded queue full, or server stopped); rejected requests' promises
  // are never fulfilled.
  bool submit(const RequestPtr& r);

  // Workers actually running (post-clamp); 0 before start().
  int workers() const { return workers_running_; }
  int64_t queue_depth() const { return batcher_.depth(); }

 private:
  void worker_loop();

  Engine& engine_;
  ServerConfig cfg_;
  metrics::ServeStats* stats_;
  Batcher batcher_;
  std::thread dispatcher_;
  std::atomic<bool> started_{false};
  int workers_running_ = 0;
  bool trace_prev_ = false;  // tracer state to restore at stop()
};

// ---------------- Load generators ----------------

// Builds the i-th request (deterministic in `id` so runs are reproducible).
using RequestFactory = std::function<RequestPtr(uint64_t id)>;

// Submit with retry + exponential backoff: survives admission rejects and
// injected drops. Each attempt is a FRESH request from `make` (promises are
// single-use) carrying the same id and attempt = 0, 1, ... so the fault
// plan's drop coin is redrawn per attempt. Sleeps fault::backoff_ms between
// attempts. Returns the completed request, or nullptr when all
// `max_attempts` failed (the caller's load-shedding signal).
RequestPtr submit_with_retry(Server& server, const RequestFactory& make,
                             uint64_t id, int max_attempts = 4);

struct ClosedLoopConfig {
  int clients = 4;              // concurrent clients, each with 0 think time
  int requests_per_client = 32;
  // > 1 routes each request through submit_with_retry, so injected drops
  // and admission rejects are retried instead of shed.
  int max_attempts = 1;
};

// Closed loop: each client submits one request, waits for the response,
// then immediately submits the next -- throughput is offered-load-limited
// by the service rate (the classic "N outstanding requests" benchmark).
// Returns the number of completed (non-rejected) requests.
int64_t run_closed_loop(Server& server, const RequestFactory& make,
                        const ClosedLoopConfig& cfg);

struct OpenLoopConfig {
  double rate_rps = 200;    // fixed arrival rate, independent of service
  int total_requests = 256;
};

// Open loop: arrivals at a fixed rate whether or not the server keeps up,
// so queueing delay and admission rejects become visible (this is the
// arrival model SLO percentiles are defined against). Waits for all
// accepted requests before returning; returns the number completed.
int64_t run_open_loop(Server& server, const RequestFactory& make,
                      const OpenLoopConfig& cfg);

}  // namespace pf::serve
