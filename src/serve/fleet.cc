#include "serve/fleet.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "runtime/thread_pool.h"
#include "tensor/rng.h"
#include "trace/trace.h"

namespace pf::serve {

using clock = std::chrono::steady_clock;

Fleet::Fleet(const FleetConfig& cfg, metrics::FleetStats* stats)
    : cfg_(cfg), stats_(stats) {}

Fleet::~Fleet() { stop(); }

int Fleet::add_model(FleetModelConfig m) {
  if (started_.load()) throw std::runtime_error("Fleet: add_model after start");
  if (!m.factory) throw std::runtime_error("Fleet: model needs a factory");
  auto state = std::make_unique<Model>();
  state->cfg = std::move(m);
  fleet_.push_back(std::move(state));
  return static_cast<int>(fleet_.size()) - 1;
}

void Fleet::start() {
  if (started_.exchange(true)) return;
  const int n = std::max(1, std::min(cfg_.workers, runtime::threads()));
  workers_running_ = n;
  dispatcher_ = std::thread([this, n] {
    runtime::parallel_for(0, n, 1, [this](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) worker_loop();
    });
  });
}

void Fleet::stop() {
  {
    std::lock_guard<std::mutex> lk(m_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

bool Fleet::submit(int model, const RequestPtr& r) {
  Model& s = *fleet_[static_cast<size_t>(model)];
  {
    std::lock_guard<std::mutex> lk(m_);
    if (shutdown_ ||
        static_cast<int64_t>(s.q.size()) >= s.cfg.batcher.max_depth) {
      if (stats_) stats_->record_reject(model);
      return false;
    }
    r->t_submit = clock::now();
    s.q.push_back(r);
  }
  cv_.notify_one();
  if (stats_) stats_->record_submit(model);
  return true;
}

Engine& Fleet::materialize(int model) {
  Model& s = *fleet_[static_cast<size_t>(model)];
  std::call_once(s.once, [&s] {
    s.engine = s.cfg.factory();
    if (!s.engine) throw std::runtime_error("Fleet: factory returned null");
    s.ready.store(true, std::memory_order_release);
  });
  return *s.engine;
}

bool Fleet::materialized(int model) const {
  return fleet_[static_cast<size_t>(model)]->ready.load(
      std::memory_order_acquire);
}

int64_t Fleet::queue_depth(int model) const {
  std::lock_guard<std::mutex> lk(m_);
  return static_cast<int64_t>(fleet_[static_cast<size_t>(model)]->q.size());
}

const std::string& Fleet::model_name(int model) const {
  return fleet_[static_cast<size_t>(model)]->cfg.name;
}

std::vector<RequestPtr> Fleet::next_batch(int* model_out) {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    const auto now = clock::now();
    // Scan the queues once: find the flushable queue with the smallest
    // virtual deadline, and the earliest wall-clock time a non-flushable
    // queue will become flushable (its oldest request's batch deadline).
    int best = -1;
    double best_vdl = 0;
    bool have_wait = false;
    clock::time_point earliest{};
    for (size_t i = 0; i < fleet_.size(); ++i) {
      const Model& s = *fleet_[i];
      if (s.q.empty()) continue;
      const auto& oldest = s.q.front()->t_submit;
      const bool full =
          static_cast<int64_t>(s.q.size()) >= s.cfg.batcher.max_batch;
      const auto flush_at =
          oldest + std::chrono::duration_cast<clock::duration>(
                       std::chrono::duration<double, std::milli>(
                           s.cfg.batcher.deadline_ms));
      // shutdown_ drains greedily: every non-empty queue is flushable.
      if (full || now >= flush_at || shutdown_) {
        const double vdl =
            std::chrono::duration<double, std::milli>(oldest - now).count() +
            s.cfg.slo.deadline_ms / std::max(1e-9, s.cfg.slo.weight);
        if (best < 0 || vdl < best_vdl) {  // tie: lowest index wins (scan order)
          best = static_cast<int>(i);
          best_vdl = vdl;
        }
      } else if (!have_wait || flush_at < earliest) {
        have_wait = true;
        earliest = flush_at;
      }
    }
    if (best >= 0) {
      Model& s = *fleet_[static_cast<size_t>(best)];
      const int64_t take = std::min<int64_t>(
          s.cfg.batcher.max_batch, static_cast<int64_t>(s.q.size()));
      std::vector<RequestPtr> batch;
      batch.reserve(static_cast<size_t>(take));
      for (int64_t k = 0; k < take; ++k) {
        batch.push_back(std::move(s.q.front()));
        s.q.pop_front();
      }
      *model_out = best;
      return batch;
    }
    if (shutdown_) return {};  // all queues drained
    if (have_wait)
      cv_.wait_until(lk, earliest);
    else
      cv_.wait(lk);
  }
}

void Fleet::worker_loop() {
  for (;;) {
    int model = -1;
    std::vector<RequestPtr> batch = next_batch(&model);
    if (batch.empty()) return;
    Engine& engine = materialize(model);
    {
      PF_TRACE_SCOPE_C("fleet.forward", static_cast<std::int64_t>(batch.size()));
      engine.forward_batch(batch);
    }
    const auto now = clock::now();
    if (stats_)
      stats_->record_batch(model, static_cast<int64_t>(batch.size()),
                           queue_depth(model));
    for (const RequestPtr& r : batch) {
      if (stats_)
        stats_->record_done(
            model, std::chrono::duration<double, std::milli>(now - r->t_submit)
                       .count());
      r->done.set_value();
    }
  }
}

// ---------------- Trace-driven open-loop load generator ----------------

std::vector<int64_t> run_trace_open_loop(
    Fleet& fleet, const std::vector<RequestFactory>& make,
    const TraceConfig& cfg) {
  const size_t n_models = static_cast<size_t>(fleet.models());
  if (make.size() != n_models)
    throw std::runtime_error("run_trace_open_loop: one factory per model");

  // Pre-generate the merged arrival timeline so replay jitter cannot change
  // WHICH requests arrive (only, slightly, when): per model per phase, draw
  // Poisson gaps from a stream seeded by (seed, model, phase), then sort by
  // (time, model, sequence) -- fully deterministic.
  struct Event {
    double t_s;
    int model;
    uint64_t seq;
  };
  std::vector<Event> events;
  double phase_start = 0;
  for (size_t p = 0; p < cfg.phases.size(); ++p) {
    const TracePhase& ph = cfg.phases[p];
    if (ph.rate_rps.size() != n_models)
      throw std::runtime_error("run_trace_open_loop: phase rate per model");
    for (size_t mdl = 0; mdl < n_models; ++mdl) {
      const double rate = ph.rate_rps[mdl];
      if (rate <= 0) continue;
      Rng rng(cfg.seed ^ (0x9E3779B97F4A7C15ull * (p * n_models + mdl + 1)));
      double t = phase_start;
      for (;;) {
        t += -std::log(1.0 - rng.uniform()) / rate;
        if (t >= phase_start + ph.duration_s) break;
        events.push_back({t, static_cast<int>(mdl), 0});
      }
    }
    phase_start += ph.duration_s;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.t_s != b.t_s ? a.t_s < b.t_s
                                           : a.model < b.model;
                   });
  std::vector<uint64_t> next_id(n_models, 0);
  for (Event& e : events) e.seq = next_id[static_cast<size_t>(e.model)]++;

  // Replay.
  std::vector<std::pair<RequestPtr, std::future<void>>> inflight;
  std::vector<int> inflight_model;
  inflight.reserve(events.size());
  inflight_model.reserve(events.size());
  const auto t0 = clock::now();
  for (const Event& e : events) {
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<clock::duration>(
                 std::chrono::duration<double>(e.t_s)));
    RequestPtr r = make[static_cast<size_t>(e.model)](e.seq);
    std::future<void> done = r->done.get_future();
    if (fleet.submit(e.model, r)) {
      inflight.emplace_back(r, std::move(done));
      inflight_model.push_back(e.model);
    }
  }
  std::vector<int64_t> completed(n_models, 0);
  for (size_t i = 0; i < inflight.size(); ++i) {
    inflight[i].second.wait();
    if (!inflight[i].first->failed)
      ++completed[static_cast<size_t>(inflight_model[i])];
  }
  return completed;
}

}  // namespace pf::serve
