#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"
#include "trace/trace.h"

namespace pf::serve {

Server::Server(Engine& engine, const ServerConfig& cfg,
               metrics::ServeStats* stats)
    : engine_(engine), cfg_(cfg), stats_(stats), batcher_(cfg.batcher) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_.exchange(true)) return;
  if (!cfg_.trace_path.empty()) {
    trace_prev_ = trace::enabled();
    trace::set_enabled(true);
    trace::drain();  // start the export from a clean timeline
  }
  const int n = std::max(1, std::min(cfg_.workers, runtime::threads()));
  workers_running_ = n;
  dispatcher_ = std::thread([this, n] {
    runtime::parallel_for(0, n, 1, [this](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) worker_loop();
    });
  });
}

void Server::stop() {
  batcher_.shutdown();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (!cfg_.trace_path.empty() && started_.load()) {
    trace::write_chrome_json(cfg_.trace_path);
    trace::set_enabled(trace_prev_);
    cfg_.trace_path.clear();  // stop() is idempotent; export once
  }
}

bool Server::submit(const RequestPtr& r) {
  if (batcher_.submit(r)) {
    if (stats_) stats_->record_submit();
    return true;
  }
  if (stats_) stats_->record_reject();
  return false;
}

void Server::worker_loop() {
  const bool dropping =
      !cfg_.fault.empty() && cfg_.fault.drop_probability() > 0;
  for (;;) {
    std::vector<RequestPtr> batch = batcher_.next_batch();
    if (batch.empty()) return;  // shutdown, queue drained
    // Injected drops: the deterministic coin for (id, attempt) decides
    // which requests this batch "loses". Survivors are still served as one
    // batch; dropped requests are marked failed and their promises
    // fulfilled, so a waiting client observes the failure immediately.
    std::vector<RequestPtr> live;
    if (dropping) {
      live.reserve(batch.size());
      for (const RequestPtr& r : batch) {
        if (cfg_.fault.should_drop(r->id, r->attempt)) {
          r->failed = true;
          fault::record_drop();
        } else {
          live.push_back(r);
        }
      }
    } else {
      live = batch;
    }
    if (trace::enabled()) {
      // Per-request queueing delay: submit -> this worker picking the batch
      // up. Together with serve.forward below this separates time-in-queue
      // from batch compute for every request in the timeline.
      const std::uint64_t t_dequeue = trace::now_ns();
      for (const RequestPtr& r : batch)
        trace::emit("serve.queue", trace::to_trace_ns(r->t_submit), t_dequeue,
                    static_cast<std::int64_t>(r->id));
    }
    if (!live.empty()) {
      PF_TRACE_SCOPE_C("serve.forward", static_cast<std::int64_t>(live.size()));
      engine_.forward_batch(live);
    }
    const auto now = std::chrono::steady_clock::now();
    if (stats_ && !live.empty())
      stats_->record_batch(static_cast<int64_t>(live.size()),
                           batcher_.depth());
    PF_TRACE_SCOPE_C("serve.reply", static_cast<std::int64_t>(batch.size()));
    for (const RequestPtr& r : batch) {
      if (stats_ && !r->failed)
        stats_->record_done(
            std::chrono::duration<double, std::milli>(now - r->t_submit)
                .count());
      r->done.set_value();
    }
  }
}

// ---------------- Load generators ----------------

RequestPtr submit_with_retry(Server& server, const RequestFactory& make,
                             uint64_t id, int max_attempts) {
  const int attempts = std::max(1, max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      fault::record_retry();
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          fault::backoff_ms(attempt)));
    }
    RequestPtr r = make(id);
    r->attempt = attempt;
    std::future<void> done = r->done.get_future();
    if (!server.submit(r)) continue;  // admission reject; back off, retry
    done.wait();
    if (r->failed) continue;  // injected drop; back off, retry
    if (attempt > 0) fault::record_recovery();
    return r;
  }
  return nullptr;
}

int64_t run_closed_loop(Server& server, const RequestFactory& make,
                        const ClosedLoopConfig& cfg) {
  std::atomic<int64_t> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(cfg.clients));
  for (int c = 0; c < cfg.clients; ++c) {
    clients.emplace_back([&, c] {
      for (int k = 0; k < cfg.requests_per_client; ++k) {
        const uint64_t id = static_cast<uint64_t>(c) *
                                static_cast<uint64_t>(
                                    cfg.requests_per_client) +
                            static_cast<uint64_t>(k);
        if (cfg.max_attempts > 1) {
          if (submit_with_retry(server, make, id, cfg.max_attempts))
            completed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        RequestPtr r = make(id);
        std::future<void> done = r->done.get_future();
        if (!server.submit(r)) continue;  // shed; keep offering load
        done.wait();
        if (!r->failed)
          completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  return completed.load();
}

int64_t run_open_loop(Server& server, const RequestFactory& make,
                      const OpenLoopConfig& cfg) {
  using clock = std::chrono::steady_clock;
  const auto interval = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(1.0 / std::max(1e-9, cfg.rate_rps)));
  std::vector<std::pair<RequestPtr, std::future<void>>> inflight;
  inflight.reserve(static_cast<size_t>(cfg.total_requests));
  auto next = clock::now();
  for (int i = 0; i < cfg.total_requests; ++i) {
    std::this_thread::sleep_until(next);
    next += interval;
    RequestPtr r = make(static_cast<uint64_t>(i));
    std::future<void> done = r->done.get_future();
    if (server.submit(r)) inflight.emplace_back(r, std::move(done));
  }
  int64_t completed = 0;
  for (auto& [r, f] : inflight) {
    f.wait();
    if (!r->failed) ++completed;  // injected drops don't count as served
  }
  return completed;
}

}  // namespace pf::serve
