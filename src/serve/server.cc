#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "runtime/thread_pool.h"

namespace pf::serve {

Server::Server(Engine& engine, const ServerConfig& cfg,
               metrics::ServeStats* stats)
    : engine_(engine), cfg_(cfg), stats_(stats), batcher_(cfg.batcher) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_.exchange(true)) return;
  const int n = std::max(1, std::min(cfg_.workers, runtime::threads()));
  workers_running_ = n;
  dispatcher_ = std::thread([this, n] {
    runtime::parallel_for(0, n, 1, [this](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) worker_loop();
    });
  });
}

void Server::stop() {
  batcher_.shutdown();
  if (dispatcher_.joinable()) dispatcher_.join();
}

bool Server::submit(const RequestPtr& r) {
  if (batcher_.submit(r)) {
    if (stats_) stats_->record_submit();
    return true;
  }
  if (stats_) stats_->record_reject();
  return false;
}

void Server::worker_loop() {
  for (;;) {
    std::vector<RequestPtr> batch = batcher_.next_batch();
    if (batch.empty()) return;  // shutdown, queue drained
    engine_.forward_batch(batch);
    const auto now = std::chrono::steady_clock::now();
    if (stats_)
      stats_->record_batch(static_cast<int64_t>(batch.size()),
                           batcher_.depth());
    for (const RequestPtr& r : batch) {
      if (stats_)
        stats_->record_done(
            std::chrono::duration<double, std::milli>(now - r->t_submit)
                .count());
      r->done.set_value();
    }
  }
}

// ---------------- Load generators ----------------

int64_t run_closed_loop(Server& server, const RequestFactory& make,
                        const ClosedLoopConfig& cfg) {
  std::atomic<int64_t> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(cfg.clients));
  for (int c = 0; c < cfg.clients; ++c) {
    clients.emplace_back([&, c] {
      for (int k = 0; k < cfg.requests_per_client; ++k) {
        const uint64_t id = static_cast<uint64_t>(c) *
                                static_cast<uint64_t>(
                                    cfg.requests_per_client) +
                            static_cast<uint64_t>(k);
        RequestPtr r = make(id);
        std::future<void> done = r->done.get_future();
        if (!server.submit(r)) continue;  // shed; keep offering load
        done.wait();
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  return completed.load();
}

int64_t run_open_loop(Server& server, const RequestFactory& make,
                      const OpenLoopConfig& cfg) {
  using clock = std::chrono::steady_clock;
  const auto interval = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(1.0 / std::max(1e-9, cfg.rate_rps)));
  std::vector<std::future<void>> inflight;
  inflight.reserve(static_cast<size_t>(cfg.total_requests));
  auto next = clock::now();
  for (int i = 0; i < cfg.total_requests; ++i) {
    std::this_thread::sleep_until(next);
    next += interval;
    RequestPtr r = make(static_cast<uint64_t>(i));
    std::future<void> done = r->done.get_future();
    if (server.submit(r)) inflight.push_back(std::move(done));
  }
  for (std::future<void>& f : inflight) f.wait();
  return static_cast<int64_t>(inflight.size());
}

}  // namespace pf::serve
