#include "trace/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "kernels/kernels.h"
#include "metrics/ascii_chart.h"

namespace pf::trace {
namespace {

bool env_enabled() {
  const char* s = std::getenv("PF_TRACE");
  return s != nullptr && s[0] != '\0' && !(s[0] == '0' && s[1] == '\0');
}

// Per-thread event ring. The owner thread is the only writer; it publishes
// events by storing `head` with release order after filling the slot, so a
// quiesced drain() (acquire load) sees fully written events.
struct ThreadBuffer {
  explicit ThreadBuffer(int id) : tid(id), ring(kRingCapacity) {}

  const int tid;
  std::vector<Event> ring;
  std::atomic<std::uint64_t> head{0};  // total events ever written
  std::uint64_t cleared = 0;           // events consumed by drain()/reset()
  int depth = 0;                       // owner-thread nesting depth
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;  // never freed
  std::uint64_t dropped = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: threads may outlive statics
  return *r;
}

thread_local ThreadBuffer* tl_buf = nullptr;

ThreadBuffer& local_buffer() {
  if (tl_buf == nullptr) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.buffers.push_back(
        std::make_unique<ThreadBuffer>(static_cast<int>(r.buffers.size())));
    tl_buf = r.buffers.back().get();
  }
  return *tl_buf;
}

std::chrono::steady_clock::time_point anchor() {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return t0;
}

void push_event(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
                int depth, std::int64_t counter) {
  ThreadBuffer& b = local_buffer();
  const std::uint64_t h = b.head.load(std::memory_order_relaxed);
  Event& e = b.ring[h % kRingCapacity];
  e.name = name;
  e.begin_ns = begin_ns;
  e.end_ns = end_ns;
  e.tid = b.tid;
  e.depth = depth;
  e.counter = counter;
  b.head.store(h + 1, std::memory_order_release);
}

}  // namespace

void json_escape(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

namespace detail {
std::atomic<bool> g_enabled{env_enabled()};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - anchor())
          .count());
}

std::uint64_t to_trace_ns(std::chrono::steady_clock::time_point tp) {
  const auto d = tp - anchor();
  return d.count() < 0 ? 0
                       : static_cast<std::uint64_t>(
                             std::chrono::duration_cast<std::chrono::nanoseconds>(d)
                                 .count());
}

void emit(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
          std::int64_t counter) {
  if (!enabled()) return;
  ThreadBuffer& b = local_buffer();
  push_event(name, begin_ns, std::max(begin_ns, end_ns), b.depth, counter);
}

void Scope::begin(const char* name, std::int64_t counter) {
  name_ = name;
  counter_ = counter;
  active_ = true;
  local_buffer().depth++;
  begin_ns_ = now_ns();
}

void Scope::end() {
  const std::uint64_t t = now_ns();
  ThreadBuffer& b = local_buffer();
  b.depth--;
  push_event(name_, begin_ns_, t, b.depth, counter_);
}

std::vector<Event> drain() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<Event> out;
  for (auto& bp : r.buffers) {
    ThreadBuffer& b = *bp;
    const std::uint64_t h = b.head.load(std::memory_order_acquire);
    std::uint64_t lo = h > kRingCapacity ? h - kRingCapacity : 0;
    if (lo > b.cleared) r.dropped += lo - b.cleared;
    lo = std::max(lo, b.cleared);
    for (std::uint64_t i = lo; i < h; ++i) out.push_back(b.ring[i % kRingCapacity]);
    b.cleared = h;
  }
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.depth < b.depth;
  });
  return out;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& bp : r.buffers)
    bp->cleared = bp->head.load(std::memory_order_acquire);
  r.dropped = 0;
}

std::uint64_t dropped() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t d = r.dropped;
  for (auto& bp : r.buffers) {
    const std::uint64_t h = bp->head.load(std::memory_order_acquire);
    const std::uint64_t lo = h > kRingCapacity ? h - kRingCapacity : 0;
    if (lo > bp->cleared) d += lo - bp->cleared;
  }
  return d;
}

std::string to_chrome_json(const std::vector<Event>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i != 0) out += ',';
    out += "{\"name\":\"";
    json_escape(out, e.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"pf\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,"
                  "\"ts\":%.3f,\"dur\":%.3f",
                  e.tid, e.begin_ns / 1e3, (e.end_ns - e.begin_ns) / 1e3);
    out += buf;
    if (e.counter >= 0) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"counter\":%lld}",
                    static_cast<long long>(e.counter));
      out += buf;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

bool write_chrome_json(const std::string& path) {
  const std::vector<Event> events = drain();
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string json = to_chrome_json(events);
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(f);
}

std::vector<FlameRow> aggregate(const std::vector<Event>& events) {
  // Self time = duration minus time spent in same-thread nested children.
  // Events are sorted by begin; a per-thread stack of open spans attributes
  // each span's duration to its parent's child-time.
  std::unordered_map<int, std::vector<size_t>> stacks;  // tid -> open event idx
  std::vector<double> child_ns(events.size(), 0.0);
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    auto& st = stacks[e.tid];
    while (!st.empty() && events[st.back()].end_ns <= e.begin_ns) st.pop_back();
    if (!st.empty() && e.end_ns <= events[st.back()].end_ns)
      child_ns[st.back()] += static_cast<double>(e.end_ns - e.begin_ns);
    st.push_back(i);
  }

  std::unordered_map<std::string, FlameRow> rows;
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    FlameRow& r = rows[e.name];
    r.name = e.name;
    r.count++;
    const double dur = static_cast<double>(e.end_ns - e.begin_ns);
    r.total_ms += dur / 1e6;
    r.self_ms += std::max(0.0, dur - child_ns[i]) / 1e6;
    if (e.counter > 0) r.counter_sum += e.counter;
  }
  std::vector<FlameRow> out;
  out.reserve(rows.size());
  for (auto& kv : rows) out.push_back(std::move(kv.second));
  for (FlameRow& r : out) {
    // Achieved throughput for GEMM-family spans: counters count multiply-
    // adds, so flops = 2 * counter. Total (not self) time is the right
    // denominator -- a span's nested children are part of executing it.
    if (is_gemm_span(r.name.c_str()) && r.counter_sum > 0 && r.total_ms > 0)
      r.gflops = 2.0 * static_cast<double>(r.counter_sum) / (r.total_ms * 1e6);
  }
  std::sort(out.begin(), out.end(), [](const FlameRow& a, const FlameRow& b) {
    return a.self_ms != b.self_ms ? a.self_ms > b.self_ms : a.name < b.name;
  });
  return out;
}

bool is_gemm_span(const char* name) {
  static constexpr const char* kGemmSpans[] = {
      "matmul", "matmul_tn", "matmul_nt", "bmm",          "bmm_nt",
      "bmm_tn", "gemm",      "lowrank",   "lowrank_conv",
  };
  for (const char* s : kGemmSpans)
    if (std::strcmp(s, name) == 0) return true;
  return false;
}

std::string flame_summary(const std::vector<Event>& events, int width) {
  if (events.empty()) return "(no trace events)";
  const std::vector<FlameRow> rows = aggregate(events);
  std::vector<metrics::Bar> bars;
  bars.reserve(rows.size());
  char buf[96];
  for (const FlameRow& r : rows) {
    if (r.gflops > 0)
      std::snprintf(buf, sizeof(buf), "x%llu total %.3f ms, %.1f GFLOP/s",
                    static_cast<unsigned long long>(r.count), r.total_ms,
                    r.gflops);
    else
      std::snprintf(buf, sizeof(buf), "x%llu total %.3f ms",
                    static_cast<unsigned long long>(r.count), r.total_ms);
    bars.push_back({r.name, r.self_ms, buf});
  }
  std::string out = "span self-time (ms, kernel backend: ";
  out += kernels::backend_name();
  out += "):\n";
  out += metrics::render_bars(bars, width);
  return out;
}

}  // namespace pf::trace
