#pragma once
// pf::trace — low-overhead structured span tracing.
//
// Each thread that records events owns a fixed-capacity ring buffer; writes
// are lock-free (owner-thread only, release-published head index). A global
// registry drains all rings into one merged timeline that can be exported as
// chrome://tracing JSON ("X" complete events) or summarised as an ASCII flame
// table. The tracer is off by default; when off, PF_TRACE_SCOPE costs one
// relaxed atomic load + branch, so instrumented hot paths stay effectively
// free (measured in bench/bench_trace.cc, recorded in EXPERIMENTS.md).
//
// Enabling: export PF_TRACE=1 (anything but "0"/empty), or call
// trace::set_enabled(true), or set VisionTrainConfig::trace_path /
// serve::ServerConfig::trace_path which enable for the run and export on exit.
//
// drain()/reset() must be called at quiesce points (no concurrent Scope
// writers mid-span); all call sites in the repo drain after joins.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace pf::trace {

// Capacity (events) of each per-thread ring. Oldest events are overwritten
// once a thread records more than this between drains; see dropped().
inline constexpr std::size_t kRingCapacity = 32768;

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

// Cheap global switch. Relaxed: flipping it mid-span is allowed and merely
// starts/stops recording; it never affects computed results.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on);

// One completed span. Timestamps are steady-clock nanoseconds relative to a
// process-wide anchor (first use), so they are comparable across threads.
struct Event {
  const char* name;   // static string supplied at the call site
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
  int tid;            // small sequential id in registration order
  int depth;          // nesting depth on the recording thread at begin
  std::int64_t counter;  // optional payload (batch size, flops, ...); -1 = none
};

// Nanoseconds since the process trace anchor (steady clock).
std::uint64_t now_ns();
// Convert an externally captured steady_clock time point (e.g. a request's
// submit time) into trace nanoseconds.
std::uint64_t to_trace_ns(std::chrono::steady_clock::time_point tp);

// Record an externally timed span on the calling thread's ring.
// No-op when tracing is disabled.
void emit(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
          std::int64_t counter = -1);

// RAII span. Construction samples the clock only when tracing is enabled;
// destruction records the event into the calling thread's ring buffer.
class Scope {
 public:
  explicit Scope(const char* name, std::int64_t counter = -1) {
    if (enabled()) begin(name, counter);
  }
  ~Scope() {
    if (active_) end();
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  void begin(const char* name, std::int64_t counter);  // out of line; sets active_
  void end();

  const char* name_ = nullptr;
  std::uint64_t begin_ns_ = 0;
  std::int64_t counter_ = -1;
  bool active_ = false;
};

// Merge every thread's buffered events into one timeline sorted by begin time
// (ties broken by tid, then depth so parents precede children) and clear the
// rings. Call at a quiesce point.
std::vector<Event> drain();

// Discard all buffered events and zero the dropped counter.
void reset();

// Cumulative count of events overwritten before they could be drained
// (ring wraparound), since process start or the last reset().
std::uint64_t dropped();

// chrome://tracing JSON (trace-event format, "X" complete events, ts/dur in
// microseconds). Load via chrome://tracing or https://ui.perfetto.dev.
std::string to_chrome_json(const std::vector<Event>& events);

// Appends `s` to `out` with JSON string escaping ("\ and control chars).
// Shared by the chrome JSON writer above and bench --json reports.
void json_escape(std::string& out, const char* s);

// drain() + write JSON to `path`. Returns false on I/O failure.
bool write_chrome_json(const std::string& path);

// Aggregated per-name totals for the flame summary.
struct FlameRow {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;  // sum of span durations
  double self_ms = 0.0;   // total minus time in same-thread nested children
  // Sum of non-negative counter payloads across this name's spans, and the
  // achieved GFLOP/s it implies (2 * counter / total time) when the name is
  // a known GEMM-family span whose counter counts multiply-adds; 0 when not.
  std::int64_t counter_sum = 0;
  double gflops = 0.0;
};

// True for span names whose counter payload is a multiply-add count
// ("matmul", "bmm_nt", "gemm", "lowrank", ...), i.e. the spans for which
// FlameRow::gflops is meaningful. The backend executing those kernels is
// pf::kernels::backend_name().
bool is_gemm_span(const char* name);

// Aggregate events by span name, sorted by self time descending.
std::vector<FlameRow> aggregate(const std::vector<Event>& events);

// ASCII flame table (horizontal bars over self time) rendered with
// metrics::render_bars. `width` is the bar width in characters.
std::string flame_summary(const std::vector<Event>& events, int width = 48);

}  // namespace pf::trace

#define PF_TRACE_CONCAT_INNER(a, b) a##b
#define PF_TRACE_CONCAT(a, b) PF_TRACE_CONCAT_INNER(a, b)
// Scoped span covering the rest of the enclosing block.
#define PF_TRACE_SCOPE(name) \
  ::pf::trace::Scope PF_TRACE_CONCAT(pf_trace_scope_, __LINE__)(name)
// Same, with an int64 counter payload shown in chrome://tracing args.
#define PF_TRACE_SCOPE_C(name, counter) \
  ::pf::trace::Scope PF_TRACE_CONCAT(pf_trace_scope_, __LINE__)((name), (counter))
