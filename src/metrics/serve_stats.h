// Serving-path observability: latency SLO metrics for src/serve.
//
// A serving benchmark lives or dies on its *tail*: mean latency hides the
// p99 that an SLO is written against, and storing every sample to sort at
// the end does not scale to open-loop runs. `Reservoir` keeps a fixed-size
// uniform sample of the latency stream (Vitter's Algorithm R, deterministic
// given its seed and the insertion order), so quantiles cost O(capacity)
// memory no matter how long the run. `ServeStats` aggregates the full
// serving picture -- throughput, admission rejects, queue depth, batch-size
// histogram, latency quantiles -- behind one mutex; the serve workers call
// the record_* hooks, the load generator snapshots a ServeReport at the end.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pf::metrics {

// Fixed-capacity uniform sample of a value stream (Algorithm R).
class Reservoir {
 public:
  explicit Reservoir(int64_t capacity = 4096,
                     uint64_t seed = 0x5EED5EED5EED5EEDull);

  void add(double v);
  int64_t count() const { return n_; }  // values offered, not kept

  // Empirical quantile (q in [0, 1]) of the kept sample; 0 when empty.
  double quantile(double q) const;
  double max_seen() const { return n_ ? max_ : 0.0; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }

 private:
  int64_t cap_;
  std::vector<double> sample_;
  int64_t n_ = 0;
  double sum_ = 0, max_ = 0;
  uint64_t state_;
};

// Snapshot of one serving run, produced by ServeStats::report().
struct ServeReport {
  uint64_t submitted = 0;  // accepted into the queue
  uint64_t rejected = 0;   // bounced by the admission policy (queue full)
  uint64_t completed = 0;  // responses delivered
  uint64_t batches = 0;    // engine invocations

  double elapsed_s = 0;        // begin() .. report()
  double throughput_rps = 0;   // completed / elapsed

  // Request latency (submit -> response ready), milliseconds.
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  double mean_ms = 0, max_ms = 0;

  double mean_batch = 0;       // requests per engine invocation
  double mean_depth = 0;       // queue depth sampled after each batch pull
  int64_t max_depth = 0;

  // batch_hist[s] = number of batches of exactly s requests (index 0 unused).
  std::vector<uint64_t> batch_hist;

  // One-line "rps 812.4 | p50 3.1 ms | p95 5.0 ms | ..." summary.
  std::string summary() const;
};

// Thread-safe accumulator for one serving run.
class ServeStats {
 public:
  explicit ServeStats(int64_t reservoir_capacity = 4096);

  // Resets all counters and marks the start of the measured window.
  void begin();

  void record_submit();
  void record_reject();
  // One engine invocation of `size` requests; `depth_after` is the queue
  // depth right after the batch was pulled.
  void record_batch(int64_t size, int64_t depth_after);
  // One finished request with its submit -> response latency.
  void record_done(double latency_ms);

  ServeReport report() const;

 private:
  mutable std::mutex m_;
  int64_t reservoir_capacity_;
  uint64_t submitted_ = 0, rejected_ = 0, completed_ = 0, batches_ = 0;
  double depth_sum_ = 0;
  int64_t max_depth_ = 0;
  std::vector<uint64_t> batch_hist_;
  Reservoir latency_;
  double t0_s_ = 0;  // steady-clock seconds at begin()
};

// Snapshot of one fleet run: the aggregate picture plus one ServeReport per
// hosted model (SLO compliance is judged per model, not on the blend).
struct FleetReport {
  std::vector<std::string> names;
  std::vector<ServeReport> models;
  ServeReport total;

  // Multi-line summary: one "name | rps ... | p99 ..." row per model plus
  // the aggregate.
  std::string summary() const;
};

// Per-model ServeStats plus an aggregate, behind the same record_* surface
// the fleet workers call (every event lands in both the model's stats and
// the total's, so aggregate quantiles come from one reservoir rather than
// an impossible merge).
class FleetStats {
 public:
  explicit FleetStats(int64_t reservoir_capacity = 4096);

  // Registers a model stream; returns its index. Call before begin().
  int add_model(const std::string& name);
  void begin();

  void record_submit(int model);
  void record_reject(int model);
  void record_batch(int model, int64_t size, int64_t depth_after);
  void record_done(int model, double latency_ms);

  int models() const { return static_cast<int>(per_model_.size()); }
  FleetReport report() const;

 private:
  int64_t reservoir_capacity_;
  std::vector<std::string> names_;
  // ServeStats is self-locking, so FleetStats needs no mutex of its own
  // (add_model is start-up only).
  std::vector<std::unique_ptr<ServeStats>> per_model_;
  ServeStats total_;
};

}  // namespace pf::metrics
