#include "metrics/ascii_chart.h"

#include <algorithm>
#include <cstdio>

namespace pf::metrics {

std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& opts) {
  // Determine x extent and y range.
  size_t max_len = 0;
  double lo = opts.y_min, hi = opts.y_max;
  const bool fit = std::isnan(lo) || std::isnan(hi);
  if (fit) {
    lo = 1e300;
    hi = -1e300;
  }
  for (const Series& s : series) {
    max_len = std::max(max_len, s.values.size());
    if (fit)
      for (double v : s.values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
  }
  if (max_len == 0) return "(empty chart)";
  if (hi <= lo) hi = lo + 1.0;

  const int w = std::max(8, opts.width);
  const int h = std::max(4, opts.height);
  std::vector<std::string> grid(static_cast<size_t>(h),
                                std::string(static_cast<size_t>(w), ' '));

  auto plot = [&](double x_frac, double y, char marker) {
    const int col = std::min<int>(
        w - 1, static_cast<int>(x_frac * (w - 1) + 0.5));
    double yf = (y - lo) / (hi - lo);
    yf = std::clamp(yf, 0.0, 1.0);
    const int row =
        h - 1 - std::min<int>(h - 1, static_cast<int>(yf * (h - 1) + 0.5));
    char& cell = grid[static_cast<size_t>(row)][static_cast<size_t>(col)];
    cell = cell == ' ' || cell == marker ? marker : '#';  // '#' = overlap
  };

  for (const Series& s : series) {
    const size_t n = s.values.size();
    if (n == 1) {
      plot(0.0, s.values[0], s.marker);
      continue;
    }
    // Plot each point plus linear interpolation between them so the line
    // reads as a line at chart resolution.
    for (size_t i = 0; i + 1 < n; ++i) {
      const double x0 = static_cast<double>(i) / (max_len - 1);
      const double x1 = static_cast<double>(i + 1) / (max_len - 1);
      for (int step = 0; step <= 8; ++step) {
        const double t = step / 8.0;
        plot(x0 + (x1 - x0) * t,
             s.values[i] + (s.values[i + 1] - s.values[i]) * t, s.marker);
      }
    }
  }

  // Assemble with a y-axis gutter and legend.
  std::string out;
  char buf[64];
  for (int row = 0; row < h; ++row) {
    const double y = hi - (hi - lo) * row / (h - 1);
    if (row == 0 || row == h - 1 || row == h / 2) {
      std::snprintf(buf, sizeof(buf), "%8.2f |", y);
    } else {
      std::snprintf(buf, sizeof(buf), "%8s |", "");
    }
    out += buf;
    out += grid[static_cast<size_t>(row)];
    out += '\n';
  }
  out += "         +";
  out += std::string(static_cast<size_t>(w), '-');
  out += "> " + opts.x_label + "\n";
  out += "         ";
  for (const Series& s : series) {
    out += " [";
    out += s.marker;
    out += "] " + s.name;
  }
  return out;
}

std::string render_bars(const std::vector<Bar>& bars, int width) {
  if (bars.empty()) return "(empty chart)";
  const int w = std::max(4, width);
  size_t label_w = 0;
  double max_v = 0.0;
  for (const Bar& b : bars) {
    label_w = std::max(label_w, b.label.size());
    max_v = std::max(max_v, b.value);
  }
  if (max_v <= 0.0) max_v = 1.0;

  std::string out;
  char buf[64];
  for (size_t i = 0; i < bars.size(); ++i) {
    const Bar& b = bars[i];
    const int fill = std::clamp(
        static_cast<int>(b.value / max_v * w + 0.5), b.value > 0.0 ? 1 : 0, w);
    out += b.label;
    out += std::string(label_w - b.label.size(), ' ');
    out += " |";
    out += std::string(static_cast<size_t>(fill), '#');
    out += std::string(static_cast<size_t>(w - fill), ' ');
    std::snprintf(buf, sizeof(buf), "| %10.3f", b.value);
    out += buf;
    if (!b.annotation.empty()) out += " " + b.annotation;
    if (i + 1 < bars.size()) out += '\n';
  }
  return out;
}

}  // namespace pf::metrics
