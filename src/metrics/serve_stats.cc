#include "metrics/serve_stats.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "metrics/metrics.h"

namespace pf::metrics {

namespace {

// splitmix64: tiny, seedable, and good enough for reservoir eviction picks.
uint64_t splitmix64(uint64_t& s) {
  uint64_t z = (s += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Reservoir::Reservoir(int64_t capacity, uint64_t seed)
    : cap_(std::max<int64_t>(1, capacity)), state_(seed) {
  sample_.reserve(static_cast<size_t>(cap_));
}

void Reservoir::add(double v) {
  ++n_;
  sum_ += v;
  max_ = n_ == 1 ? v : std::max(max_, v);
  if (static_cast<int64_t>(sample_.size()) < cap_) {
    sample_.push_back(v);
    return;
  }
  // Keep each of the n values with probability cap/n: replace a uniformly
  // chosen slot iff the chosen index lands inside the reservoir.
  const int64_t j =
      static_cast<int64_t>(splitmix64(state_) % static_cast<uint64_t>(n_));
  if (j < cap_) sample_[static_cast<size_t>(j)] = v;
}

double Reservoir::quantile(double q) const {
  if (sample_.empty()) return 0.0;
  std::vector<double> sorted = sample_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = std::clamp(q, 0.0, 1.0) *
                     static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<size_t>(std::llround(pos))];
}

ServeStats::ServeStats(int64_t reservoir_capacity)
    : reservoir_capacity_(reservoir_capacity),
      latency_(reservoir_capacity) {}

void ServeStats::begin() {
  std::lock_guard<std::mutex> lk(m_);
  submitted_ = rejected_ = completed_ = batches_ = 0;
  depth_sum_ = 0;
  max_depth_ = 0;
  batch_hist_.clear();
  latency_ = Reservoir(reservoir_capacity_);
  t0_s_ = steady_seconds();
}

void ServeStats::record_submit() {
  std::lock_guard<std::mutex> lk(m_);
  ++submitted_;
}

void ServeStats::record_reject() {
  std::lock_guard<std::mutex> lk(m_);
  ++rejected_;
}

void ServeStats::record_batch(int64_t size, int64_t depth_after) {
  std::lock_guard<std::mutex> lk(m_);
  ++batches_;
  depth_sum_ += static_cast<double>(depth_after);
  max_depth_ = std::max(max_depth_, depth_after);
  if (static_cast<int64_t>(batch_hist_.size()) <= size)
    batch_hist_.resize(static_cast<size_t>(size) + 1, 0);
  ++batch_hist_[static_cast<size_t>(size)];
}

void ServeStats::record_done(double latency_ms) {
  std::lock_guard<std::mutex> lk(m_);
  ++completed_;
  latency_.add(latency_ms);
}

ServeReport ServeStats::report() const {
  std::lock_guard<std::mutex> lk(m_);
  ServeReport r;
  r.submitted = submitted_;
  r.rejected = rejected_;
  r.completed = completed_;
  r.batches = batches_;
  r.elapsed_s = steady_seconds() - t0_s_;
  r.throughput_rps =
      r.elapsed_s > 0 ? static_cast<double>(completed_) / r.elapsed_s : 0;
  r.p50_ms = latency_.quantile(0.50);
  r.p95_ms = latency_.quantile(0.95);
  r.p99_ms = latency_.quantile(0.99);
  r.mean_ms = latency_.mean();
  r.max_ms = latency_.max_seen();
  r.mean_batch = batches_ ? static_cast<double>(completed_) /
                                static_cast<double>(batches_)
                          : 0;
  r.mean_depth = batches_ ? depth_sum_ / static_cast<double>(batches_) : 0;
  r.max_depth = max_depth_;
  r.batch_hist = batch_hist_;
  return r;
}

FleetStats::FleetStats(int64_t reservoir_capacity)
    : reservoir_capacity_(reservoir_capacity), total_(reservoir_capacity) {}

int FleetStats::add_model(const std::string& name) {
  names_.push_back(name);
  per_model_.push_back(std::make_unique<ServeStats>(reservoir_capacity_));
  return static_cast<int>(per_model_.size()) - 1;
}

void FleetStats::begin() {
  for (auto& s : per_model_) s->begin();
  total_.begin();
}

void FleetStats::record_submit(int model) {
  per_model_[static_cast<size_t>(model)]->record_submit();
  total_.record_submit();
}

void FleetStats::record_reject(int model) {
  per_model_[static_cast<size_t>(model)]->record_reject();
  total_.record_reject();
}

void FleetStats::record_batch(int model, int64_t size, int64_t depth_after) {
  per_model_[static_cast<size_t>(model)]->record_batch(size, depth_after);
  total_.record_batch(size, depth_after);
}

void FleetStats::record_done(int model, double latency_ms) {
  per_model_[static_cast<size_t>(model)]->record_done(latency_ms);
  total_.record_done(latency_ms);
}

FleetReport FleetStats::report() const {
  FleetReport r;
  r.names = names_;
  r.models.reserve(per_model_.size());
  for (const auto& s : per_model_) r.models.push_back(s->report());
  r.total = total_.report();
  return r;
}

std::string FleetReport::summary() const {
  std::ostringstream os;
  for (size_t i = 0; i < models.size(); ++i)
    os << names[i] << ": " << models[i].summary() << "\n";
  os << "total: " << total.summary();
  return os.str();
}

std::string ServeReport::summary() const {
  std::ostringstream os;
  os << "rps " << fmt(throughput_rps, 1) << " | p50 " << fmt(p50_ms, 2)
     << " ms | p95 " << fmt(p95_ms, 2) << " ms | p99 " << fmt(p99_ms, 2)
     << " ms | batch " << fmt(mean_batch, 2) << " | depth "
     << fmt(mean_depth, 1) << " (max " << max_depth << ") | rejected "
     << rejected;
  return os.str();
}

}  // namespace pf::metrics
