#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "runtime/buffer_pool.h"

namespace pf::metrics {

double topk_accuracy(const Tensor& logits, const std::vector<int64_t>& labels,
                     int64_t k) {
  const int64_t n = logits.size(0), c = logits.size(1);
  int64_t correct = 0;
  std::vector<int64_t> idx(static_cast<size_t>(c));
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    for (int64_t j = 0; j < c; ++j) idx[static_cast<size_t>(j)] = j;
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [row](int64_t a, int64_t b) { return row[a] > row[b]; });
    for (int64_t j = 0; j < k; ++j)
      if (idx[static_cast<size_t>(j)] == labels[static_cast<size_t>(i)]) {
        ++correct;
        break;
      }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double perplexity(double mean_ce_loss) { return std::exp(mean_ce_loss); }

namespace {

// Count n-grams of order `n` in `seq` (sequence assumed free of specials).
std::map<std::vector<int64_t>, int64_t> ngrams(const std::vector<int64_t>& seq,
                                               size_t n) {
  std::map<std::vector<int64_t>, int64_t> out;
  if (seq.size() < n) return out;
  for (size_t i = 0; i + n <= seq.size(); ++i)
    ++out[std::vector<int64_t>(seq.begin() + static_cast<int64_t>(i),
                               seq.begin() + static_cast<int64_t>(i + n))];
  return out;
}

}  // namespace

double bleu4(const std::vector<std::vector<int64_t>>& hypotheses,
             const std::vector<std::vector<int64_t>>& references) {
  double log_precision = 0;
  int64_t hyp_len = 0, ref_len = 0;
  for (size_t n = 1; n <= 4; ++n) {
    int64_t match = 0, total = 0;
    for (size_t s = 0; s < hypotheses.size(); ++s) {
      const auto h = ngrams(hypotheses[s], n);
      const auto r = ngrams(references[s], n);
      for (const auto& [g, cnt] : h) {
        total += cnt;
        auto it = r.find(g);
        if (it != r.end()) match += std::min(cnt, it->second);
      }
    }
    double p;
    if (n == 1) {
      p = total > 0 ? static_cast<double>(match) / total : 0.0;
    } else {
      // Add-one smoothing for higher orders (short sentences otherwise zero
      // out the geometric mean).
      p = static_cast<double>(match + 1) / static_cast<double>(total + 1);
    }
    if (p <= 0) return 0.0;
    log_precision += std::log(p) / 4.0;
  }
  for (size_t s = 0; s < hypotheses.size(); ++s) {
    hyp_len += static_cast<int64_t>(hypotheses[s].size());
    ref_len += static_cast<int64_t>(references[s].size());
  }
  const double bp =
      hyp_len >= ref_len
          ? 1.0
          : std::exp(1.0 - static_cast<double>(ref_len) /
                               std::max<int64_t>(1, hyp_len));
  return 100.0 * bp * std::exp(log_precision);
}

MeanStd mean_std(const std::vector<double>& xs) {
  MeanStd ms;
  if (xs.empty()) return ms;
  for (double x : xs) ms.mean += x;
  ms.mean /= static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double acc = 0;
    for (double x : xs) acc += (x - ms.mean) * (x - ms.mean);
    ms.std = std::sqrt(acc / static_cast<double>(xs.size() - 1));
  }
  return ms;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_mean_std(const MeanStd& ms, int precision) {
  return fmt(ms.mean, precision) + " +- " + fmt(ms.std, precision);
}

std::string fmt_int(int64_t v) {
  std::string s = std::to_string(v < 0 ? -v : v);
  std::string out;
  int cnt = 0;
  for (auto it = s.rbegin(); it != s.rend(); ++it) {
    if (cnt && cnt % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++cnt;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fmt_bytes(int64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 3) {
    v /= 1024.0;
    ++u;
  }
  return fmt(v, v < 10 ? 2 : 1) + " " + units[u];
}

std::string fmt_ratio(double v) { return fmt(v, 2) + "x"; }

Table::Table(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void Table::print() const {
  if (rows_.empty()) return;
  std::vector<size_t> width(rows_[0].size(), 0);
  for (const auto& row : rows_)
    for (size_t i = 0; i < row.size() && i < width.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      std::printf(" %-*s |", static_cast<int>(width[i]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(rows_[0]);
  std::printf("|");
  for (size_t i = 0; i < width.size(); ++i) {
    for (size_t j = 0; j < width[i] + 2; ++j) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (size_t r = 1; r < rows_.size(); ++r) print_row(rows_[r]);
}

AllocStats alloc_stats() {
  const runtime::PoolStats p = runtime::BufferPool::instance().stats();
  AllocStats s;
  s.allocations = p.allocations();
  s.pool_hits = p.hits;
  s.sys_allocs = p.misses;
  s.cow_unshares = p.cow_unshares;
  s.bytes_live = p.bytes_live;
  s.bytes_pooled = p.bytes_pooled;
  return s;
}

void reset_alloc_stats(bool clear_pool) {
  runtime::BufferPool& pool = runtime::BufferPool::instance();
  if (clear_pool) pool.clear();
  pool.reset_stats();
}

std::string fmt_alloc_stats(const AllocStats& s) {
  std::ostringstream os;
  os << "allocs " << fmt_int(static_cast<int64_t>(s.allocations)) << " (hits "
     << fmt_int(static_cast<int64_t>(s.pool_hits)) << " / sys "
     << fmt_int(static_cast<int64_t>(s.sys_allocs)) << "), cow-unshares "
     << fmt_int(static_cast<int64_t>(s.cow_unshares)) << ", live "
     << fmt_bytes(static_cast<int64_t>(s.bytes_live)) << ", pooled "
     << fmt_bytes(static_cast<int64_t>(s.bytes_pooled));
  return os.str();
}

fault::FaultStats fault_stats() { return fault::stats(); }

void reset_fault_stats() { fault::reset_stats(); }

std::string fmt_fault_stats(const fault::FaultStats& s) {
  std::ostringstream os;
  os << "kills " << fmt_int(static_cast<int64_t>(s.injected_kills))
     << " / delays " << fmt_int(static_cast<int64_t>(s.injected_delays))
     << " / drops " << fmt_int(static_cast<int64_t>(s.dropped_requests))
     << " / write-crashes " << fmt_int(static_cast<int64_t>(s.write_crashes))
     << " | retries " << fmt_int(static_cast<int64_t>(s.retries))
     << ", recoveries " << fmt_int(static_cast<int64_t>(s.recoveries));
  return os.str();
}

}  // namespace pf::metrics
