// Tiny ASCII line charts for bench output: renders one or more series
// (e.g. test-accuracy-vs-epoch convergence curves, the paper's Figures 2/4)
// into a fixed-size character grid so the "figures" are figures even in a
// terminal log.
#pragma once

#include <cmath>
#include <string>
#include <vector>

namespace pf::metrics {

struct Series {
  std::string name;
  std::vector<double> values;  // y per integer x (0, 1, 2, ...)
  char marker = '*';
};

struct ChartOptions {
  int width = 60;   // columns of plot area
  int height = 12;  // rows of plot area
  std::string x_label = "epoch";
  std::string y_label;
  // If both are NaN the y-range is fit to the data.
  double y_min = std::nan("");
  double y_max = std::nan("");
};

// Renders the chart into a multi-line string (no trailing newline).
std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& opts = {});

// One row of a horizontal bar chart (used by trace::flame_summary).
struct Bar {
  std::string label;
  double value = 0.0;
  std::string annotation;  // printed after the value, e.g. "x128"
};

// Renders labels, '#' bars scaled to the max value, and the numeric value:
//   matmul       |############################        | 45.21 x1203
// `width` is the bar width in characters. No trailing newline.
std::string render_bars(const std::vector<Bar>& bars, int width = 48);

}  // namespace pf::metrics
