// Evaluation metrics (top-k accuracy, perplexity, BLEU-4), a wall-clock
// timer, and the fixed-width table printer all benches share so their output
// lines up with the paper's tables.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "tensor/tensor.h"

namespace pf::metrics {

// Fraction of rows of (N, C) logits whose top-k set contains the label.
double topk_accuracy(const Tensor& logits, const std::vector<int64_t>& labels,
                     int64_t k = 1);

// exp(mean NLL); `loss` is a mean cross-entropy in nats.
double perplexity(double mean_ce_loss);

// Corpus BLEU-4 with brevity penalty and add-one smoothing on the
// higher-order n-gram precisions (standard smoothing-2).
double bleu4(const std::vector<std::vector<int64_t>>& hypotheses,
             const std::vector<std::vector<int64_t>>& references);

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Mean and sample standard deviation of a series (the paper reports
// "averaged across 3 independent trials").
struct MeanStd {
  double mean = 0, std = 0;
};
MeanStd mean_std(const std::vector<double>& xs);
std::string fmt_mean_std(const MeanStd& ms, int precision = 2);

// Markdown-ish fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting helpers.
std::string fmt(double v, int precision = 2);
std::string fmt_int(int64_t v);       // thousands separators
std::string fmt_bytes(int64_t bytes);
std::string fmt_ratio(double v);      // "1.64x"

// ---- Allocation/copy observability (runtime::BufferPool + Tensor COW). ----
// Snapshot of the pool counters, re-exported here so benches and reports
// depend on metrics only.
struct AllocStats {
  uint64_t allocations = 0;   // pool hits + system-allocator misses
  uint64_t pool_hits = 0;     // served from a free list
  uint64_t sys_allocs = 0;    // hit the system allocator
  uint64_t cow_unshares = 0;  // copy-on-write copies actually taken
  uint64_t bytes_live = 0;    // bytes currently handed out to tensors
  uint64_t bytes_pooled = 0;  // bytes cached in free lists
};
AllocStats alloc_stats();
// Zeroes the counters and (optionally) drops cached buffers, so benchmark
// sections start from a clean slate and cannot subsidize each other.
void reset_alloc_stats(bool clear_pool = false);
// One-line human-readable form: "allocs 1,234 (hits 1,200 / sys 34) ...".
std::string fmt_alloc_stats(const AllocStats& s);

// ---- Fault-injection observability (src/fault). ----
// Re-export of fault::stats() so benches and reports depend on metrics
// only, mirroring the AllocStats pattern above.
fault::FaultStats fault_stats();
void reset_fault_stats();
// "kills 2 / delays 1 / drops 17 / write-crashes 0 | retries 19,
//  recoveries 19".
std::string fmt_fault_stats(const fault::FaultStats& s);

}  // namespace pf::metrics
