#include "runtime/thread_pool.h"

#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "trace/trace.h"

namespace pf::runtime {

namespace {

// Marks threads that belong to the pool (or are executing a chunk job), so
// nested parallel calls run inline instead of deadlocking on the pool.
thread_local bool tl_in_pool_job = false;

int env_default_threads() {
  const char* s = std::getenv("PF_THREADS");
  if (!s) return 1;
  const int n = std::atoi(s);
  return n >= 1 ? n : 1;
}

// N-1 persistent workers; the dispatching thread acts as worker 0.
class Pool {
 public:
  explicit Pool(int n) : n_(n) {
    workers_.reserve(static_cast<size_t>(n - 1));
    for (int i = 1; i < n; ++i)
      workers_.emplace_back([this, i] { worker_main(i); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    cv_job_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  int size() const { return n_; }

  // Runs job(worker_id) on all n_ threads (callers thread included) and
  // returns when every worker finished. One job at a time.
  void run(const std::function<void(int)>& job) {
    {
      std::lock_guard<std::mutex> lk(m_);
      job_ = &job;
      ++generation_;
      running_ = n_ - 1;
    }
    cv_job_.notify_all();
    const bool prev = tl_in_pool_job;
    tl_in_pool_job = true;
    job(0);
    tl_in_pool_job = prev;
    std::unique_lock<std::mutex> lk(m_);
    cv_done_.wait(lk, [this] { return running_ == 0; });
    job_ = nullptr;
  }

 private:
  void worker_main(int idx) {
    tl_in_pool_job = true;
    uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* job;
      {
        std::unique_lock<std::mutex> lk(m_);
        cv_job_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;
      }
      (*job)(idx);
      {
        std::lock_guard<std::mutex> lk(m_);
        if (--running_ == 0) cv_done_.notify_all();
      }
    }
  }

  const int n_;
  std::vector<std::thread> workers_;
  std::mutex m_;
  std::condition_variable cv_job_, cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  uint64_t generation_ = 0;
  int running_ = 0;
  bool stop_ = false;
};

// Global pool state. `g_state_mutex` guards resizing; `g_dispatch_mutex`
// serializes dispatchers -- a contender that fails the try_lock (another
// thread mid-dispatch) just walks its chunks inline.
std::mutex g_state_mutex;
std::mutex g_dispatch_mutex;
std::unique_ptr<Pool> g_pool;
int g_threads = 0;  // 0 = not yet initialized from env

int ensure_threads_locked() {
  if (g_threads == 0) g_threads = env_default_threads();
  return g_threads;
}

}  // namespace

int threads() {
  std::lock_guard<std::mutex> lk(g_state_mutex);
  return ensure_threads_locked();
}

void set_threads(int n) {
  // Taking the dispatch mutex first guarantees no job is mid-flight on the
  // pool we are about to destroy.
  std::lock_guard<std::mutex> dlk(g_dispatch_mutex);
  std::lock_guard<std::mutex> lk(g_state_mutex);
  g_threads = n >= 1 ? n : env_default_threads();
  g_pool.reset();  // rebuilt lazily at the next dispatch
}

namespace detail {

int64_t chunk_width(int64_t grain) { return grain >= 1 ? grain : 1; }

void run_chunks(int64_t begin, int64_t end, int64_t grain,
                const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  const int64_t w = chunk_width(grain);
  const int64_t n_chunks = (end - begin + w - 1) / w;

  auto serial = [&] {
    for (int64_t c = 0; c < n_chunks; ++c) {
      const int64_t b = begin + c * w;
      fn(c, b, std::min(b + w, end));
    }
  };

  if (n_chunks == 1 || tl_in_pool_job) {
    serial();
    return;
  }

  // Another thread is mid-dispatch (concurrent shm-cluster workers): run
  // inline rather than queueing -- same chunks, same order, same result.
  // Acquiring the dispatch lock before touching the pool also keeps the
  // pool alive against a concurrent set_threads().
  if (!g_dispatch_mutex.try_lock()) {
    serial();
    return;
  }
  Pool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lk(g_state_mutex);
    const int n = ensure_threads_locked();
    if (n > 1) {
      if (!g_pool || g_pool->size() != n) g_pool = std::make_unique<Pool>(n);
      pool = g_pool.get();
    }
  }
  if (!pool) {
    g_dispatch_mutex.unlock();
    serial();
    return;
  }
  const int n_workers = pool->size();
  {
    PF_TRACE_SCOPE_C("pool.dispatch", n_chunks);
    pool->run([&](int worker) {
      PF_TRACE_SCOPE_C("pool.worker", worker);
      // Static round-robin assignment: worker t owns chunks t, t+T, t+2T, ...
      for (int64_t c = worker; c < n_chunks; c += n_workers) {
        const int64_t b = begin + c * w;
        fn(c, b, std::min(b + w, end));
      }
    });
  }
  g_dispatch_mutex.unlock();
}

}  // namespace detail

}  // namespace pf::runtime
