#include "runtime/shm_cluster.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>

#include "metrics/metrics.h"
#include "trace/trace.h"

namespace pf::runtime {

namespace {

// Reusable rendezvous point for the cluster's worker threads.
class Barrier {
 public:
  explicit Barrier(int n) : n_(n) {}
  void wait() {
    std::unique_lock<std::mutex> lk(m_);
    const uint64_t gen = gen_;
    if (++arrived_ == n_) {
      arrived_ = 0;
      ++gen_;
      cv_.notify_all();
    } else {
      cv_.wait(lk, [&] { return gen_ != gen; });
    }
  }

 private:
  const int n_;
  int arrived_ = 0;
  uint64_t gen_ = 0;
  std::mutex m_;
  std::condition_variable cv_;
};

// One bucketed ring all-reduce pass as executed by worker `w`. Buckets are
// walked from the tail of the flat buffer -- the order backward produces
// gradients -- so a real ring would overlap early buckets with the head of
// the next step's compute. Each bucket: rendezvous, then a reduce-scatter
// where worker w owns segment w and sums it across replicas in ascending
// replica order (bitwise identical to the sequential mean); the allgather
// collapses to shared-memory reads of `agg`. Shared verbatim by train_epoch
// and the calibration microbenchmark timed_ring_allreduce, so measured
// alpha/beta describe the exact production code path.
void ring_reduce_pass(int w, int n_active, int64_t total_params,
                      int64_t bucket_elems, int64_t n_buckets,
                      const std::vector<Tensor>& arena,
                      std::vector<const float*>& grad_p, float* agg,
                      Barrier& barrier) {
  const float inv = 1.0f / static_cast<float>(n_active);
  for (int64_t k = n_buckets - 1; k >= 0; --k) {
    barrier.wait();
    if (k == n_buckets - 1)  // first rendezvous published all arenas
      for (int j = 0; j < n_active; ++j)
        grad_p[static_cast<size_t>(j)] =
            std::as_const(arena[static_cast<size_t>(j)]).data();
    const int64_t b0 = k * bucket_elems;
    const int64_t b1 = std::min(b0 + bucket_elems, total_params);
    const int64_t seg = (b1 - b0 + n_active - 1) / n_active;
    if (w < n_active) {
      const int64_t s0 = b0 + w * seg;
      const int64_t s1 = std::min(s0 + seg, b1);
      for (int64_t i = s0; i < s1; ++i) {
        float acc = grad_p[0][i];
        for (int j = 1; j < n_active; ++j)
          acc += grad_p[static_cast<size_t>(j)][i];
        agg[i] = acc * inv;
      }
    }
  }
  barrier.wait();
}

}  // namespace

double timed_ring_allreduce(int workers, int64_t elems, int64_t bucket_bytes,
                            int reps) {
  workers = std::max(1, workers);
  elems = std::max<int64_t>(1, elems);
  reps = std::max(1, reps);
  const int64_t bucket_elems = std::max<int64_t>(
      1, bucket_bytes / static_cast<int64_t>(sizeof(float)));
  const int64_t n_buckets = (elems + bucket_elems - 1) / bucket_elems;

  std::vector<Tensor> arena;
  for (int w = 0; w < workers; ++w) {
    Tensor t(Shape{elems});
    // Deterministic non-trivial payload; values are irrelevant to timing.
    float* d = t.data();
    for (int64_t i = 0; i < elems; ++i)
      d[i] = static_cast<float>((i + w) % 17) * 0.25f;
    arena.push_back(std::move(t));
  }
  Tensor agg(Shape{elems});
  float* const agg_p = agg.data();
  Barrier barrier(workers);
  double seconds = 0;

  auto worker_fn = [&](int w) {
    std::vector<const float*> grad_p(static_cast<size_t>(workers), nullptr);
    // Untimed warm-up pass (faults in the first pass: page-in, cold caches).
    ring_reduce_pass(w, workers, elems, bucket_elems, n_buckets, arena,
                     grad_p, agg_p, barrier);
    metrics::Timer t;  // every worker starts after the same barrier
    for (int r = 0; r < reps; ++r)
      ring_reduce_pass(w, workers, elems, bucket_elems, n_buckets, arena,
                       grad_p, agg_p, barrier);
    if (w == 0) seconds = t.seconds();
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) pool.emplace_back(worker_fn, w);
  worker_fn(0);
  for (std::thread& t : pool) t.join();
  return seconds / reps;
}

Tensor ring_allreduce(const std::vector<Tensor>& grads, int64_t bucket_bytes) {
  const int lanes = static_cast<int>(grads.size());
  if (lanes < 1) throw std::runtime_error("ring_allreduce: no lanes");
  const int64_t elems = grads[0].numel();
  for (const Tensor& g : grads)
    if (g.numel() != elems)
      throw std::runtime_error("ring_allreduce: lane length mismatch");
  const int64_t bucket_elems = std::max<int64_t>(
      1, bucket_bytes / static_cast<int64_t>(sizeof(float)));
  const int64_t n_buckets = (elems + bucket_elems - 1) / bucket_elems;

  std::vector<Tensor> arena(grads.begin(), grads.end());
  Tensor agg(Shape{elems});
  float* const agg_p = agg.data();
  Barrier barrier(lanes);
  auto worker_fn = [&](int w) {
    std::vector<const float*> grad_p(static_cast<size_t>(lanes), nullptr);
    ring_reduce_pass(w, lanes, elems, bucket_elems, n_buckets, arena, grad_p,
                     agg_p, barrier);
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(lanes - 1));
  for (int w = 1; w < lanes; ++w) pool.emplace_back(worker_fn, w);
  worker_fn(0);
  for (std::thread& t : pool) t.join();
  return agg;
}

ShmDataParallelTrainer::ShmDataParallelTrainer(
    const core::VisionModelFactory& make_model,
    std::unique_ptr<compress::Reducer> reducer, const ShmClusterConfig& cfg)
    : cfg_(cfg), reducer_(std::move(reducer)) {
  if (cfg_.workers < 1) cfg_.workers = 1;
  // A missing or plain-allreduce reducer means the payload sums, so the
  // worker threads can execute the bucketed reduction themselves.
  ring_path_ = !reducer_ || reducer_->name() == "allreduce";
  const dist::DistTrainConfig& tc = cfg_.train;
  for (int w = 0; w < cfg_.workers; ++w) {
    // Every replica is built from an identically seeded Rng: replicas start
    // bitwise equal, and stay equal because each step applies the same
    // aggregated gradient.
    Rng rng(tc.seed * 0x9E3779B9u + 101);
    replicas_.push_back(make_model(rng));
    opts_.push_back(std::make_unique<optim::SGD>(
        replicas_.back()->parameters(), tc.lr, tc.momentum, tc.weight_decay));
    worker_rngs_.push_back(Rng::stream(tc.seed, static_cast<uint64_t>(w)));
  }
  for (nn::Param* p : replicas_[0]->parameters())
    param_shapes_.push_back(p->var->value.shape());
}

dist::DistEpochRecord ShmDataParallelTrainer::train_epoch(
    const data::SyntheticImages& ds, int epoch) {
  return train_epoch(ds, epoch, EpochParticipants{});
}

dist::DistEpochRecord ShmDataParallelTrainer::train_epoch(
    const data::SyntheticImages& ds, int epoch,
    const EpochParticipants& parts) {
  PF_TRACE_SCOPE_C("shm.epoch", epoch);
  // Resolve the participating slots. `lane` below is a dense index into the
  // active set (ring position); `slot` is the stable replica identity fault
  // plans and membership schedules are written against.
  std::vector<int> active = parts.active;
  if (active.empty()) {
    active.resize(static_cast<size_t>(cfg_.workers));
    std::iota(active.begin(), active.end(), 0);
  }
  for (size_t i = 0; i < active.size(); ++i) {
    if (active[i] < 0 || active[i] >= cfg_.workers ||
        (i > 0 && active[i] <= active[i - 1]))
      throw std::runtime_error(
          "shm_cluster: active slots must be sorted, unique, and within "
          "[0, workers)");
  }
  const int lanes = static_cast<int>(active.size());
  const int canonical = parts.canonical >= 0 ? parts.canonical : active[0];
  if (!std::binary_search(active.begin(), active.end(), canonical))
    throw std::runtime_error("shm_cluster: canonical slot must be active");
  if (!parts.delay_ms.empty() &&
      parts.delay_ms.size() != static_cast<size_t>(cfg_.workers))
    throw std::runtime_error(
        "shm_cluster: delay_ms must be empty or sized `workers`");

  const dist::DistTrainConfig& tc = cfg_.train;
  const float lr = dist::lr_at_epoch(tc, epoch);
  for (auto& o : opts_) o->set_lr(lr);
  for (auto& r : replicas_) r->train(true);

  int64_t total_params = 0;
  for (const Shape& s : param_shapes_) total_params += shape_numel(s);
  const int64_t bucket_elems =
      std::max<int64_t>(1, cfg_.bucket_bytes / static_cast<int64_t>(sizeof(float)));
  const int64_t n_buckets = (total_params + bucket_elems - 1) / bucket_elems;

  metrics::Timer wall;
  const auto batches = ds.train_batches(tc.global_batch, epoch);
  // Global step index of this epoch's first batch; faults are scheduled
  // against global steps so a plan survives multi-epoch runs.
  const int64_t step_base = global_step_;

  // Shared step state, one cell per active LANE. Workers only write their
  // own arena slot / loss cell; all cross-worker reads are separated from
  // the writes by a rendezvous.
  std::vector<Tensor> arena(static_cast<size_t>(lanes));
  Tensor agg(Shape{total_params});
  // Ring path: every worker writes its own disjoint segment of `agg`.
  // Hoist the pointer once, before the threads spawn -- concurrent mutable
  // data() calls on one shared Tensor handle would race in the COW check.
  // (`agg` is only reassigned on the reducer path, by lane 0 alone.)
  float* const agg_ring = ring_path_ ? agg.data() : nullptr;
  std::vector<double> losses(static_cast<size_t>(lanes), 0.0);
  std::vector<double> compute_acc(static_cast<size_t>(lanes), 0.0);
  std::vector<double> comm_acc(static_cast<size_t>(lanes), 0.0);
  std::vector<double> fault_acc(static_cast<size_t>(lanes), 0.0);
  // Worker 0's time spent inside reducer_->reduce (reducer path only). It is
  // subtracted from worker 0's comm window after the join and re-attributed
  // as encode_s/decode_s (averaged per worker like every other component),
  // so no interval is counted twice and the components sum to the wall.
  double reduce_excl_s = 0;
  double encode_s = 0, decode_s = 0, loss_sum = 0;
  int64_t bytes_per_worker =
      ring_path_ ? total_params * static_cast<int64_t>(sizeof(float)) : 0;
  int64_t steps = 0;
  Barrier barrier(lanes);

  auto worker_fn = [&](int lane) {
    const int w = active[static_cast<size_t>(lane)];
    // Per-step snapshot of every active replica's flat-grad pointer (const
    // reads: the Tensor handles themselves are written only by their owner).
    std::vector<const float*> grad_p(static_cast<size_t>(lanes), nullptr);
    for (size_t bi = 0; bi < batches.size(); ++bi) {
      const data::ImageBatch& gb = batches[bi];
      const int64_t step = step_base + static_cast<int64_t>(bi);

      // Round-boundary straggler delay (wait-all strategy): injected once,
      // at the top of the epoch's first step; the barriers make every other
      // worker absorb it.
      if (bi == 0 && !parts.delay_ms.empty() &&
          parts.delay_ms[static_cast<size_t>(w)] > 0) {
        metrics::Timer t_fault;
        fault::record_delay();
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            parts.delay_ms[static_cast<size_t>(w)]));
        fault_acc[static_cast<size_t>(lane)] += t_fault.seconds();
      }

      // Fault injection happens at the top of the step, before any barrier:
      // the one point where every replica's params and optimizer velocity
      // are stable (they only mutate in opt.step(), after the last barrier
      // of the previous step) and bitwise-identical across workers. That
      // makes a kill recoverable in place with plain const reads of a
      // surviving replica, no extra synchronization.
      if (!cfg_.fault.empty()) {
        if (const fault::WorkerFault* f = cfg_.fault.worker_fault(w, step)) {
          PF_TRACE_SCOPE_C("shm.recover", step);
          metrics::Timer t_fault;
          if (f->kind == fault::WorkerFault::Kind::kDelay) {
            // Straggler: this worker stalls, the barriers make everyone
            // else absorb the delay -- exactly how a slow node taxes
            // synchronous data-parallel training.
            fault::record_delay();
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(f->delay_ms));
          } else {
            // Donor = lowest ACTIVE replica with no kill scheduled this
            // step (inactive replicas are stale by the membership
            // contract). If every active worker is scheduled to die
            // simultaneously, the lowest active slot is spared: in-place
            // recovery needs at least one survivor.
            int donor = active[0];
            for (int j : active) {
              const fault::WorkerFault* jf = cfg_.fault.worker_fault(j, step);
              if (!jf || jf->kind != fault::WorkerFault::Kind::kKill) {
                donor = j;
                break;
              }
            }
            if (donor != w) {
              // Kill: the replica's live state is lost. NaN-poison params
              // and velocity first so an incomplete recovery cannot pass
              // silently, then reincarnate from the donor. Running BN
              // buffers are replica-local scratch (train mode uses batch
              // stats) and are outside the recovery contract.
              fault::record_kill();
              nn::UnaryModule& dead = *replicas_[static_cast<size_t>(w)];
              const float poison = std::numeric_limits<float>::quiet_NaN();
              for (nn::Param* p : dead.parameters()) {
                Tensor& v = p->var->value;
                std::fill(v.data(), v.data() + v.numel(), poison);
              }
              for (Tensor* t : opts_[static_cast<size_t>(w)]->state_tensors())
                std::fill(t->data(), t->data() + t->numel(), poison);
              dead.set_flat_params(
                  replicas_[static_cast<size_t>(donor)]->flat_params());
              std::vector<Tensor*> src =
                  opts_[static_cast<size_t>(donor)]->state_tensors();
              std::vector<Tensor*> dst =
                  opts_[static_cast<size_t>(w)]->state_tensors();
              for (size_t i = 0; i < dst.size(); ++i)
                std::memcpy(dst[i]->data(), std::as_const(*src[i]).data(),
                            static_cast<size_t>(dst[i]->numel()) *
                                sizeof(float));
              fault::record_recovery();
            }
          }
          fault_acc[static_cast<size_t>(lane)] += t_fault.seconds();
        }
      }

      // Reshard this batch over the active lanes (balanced contiguous
      // partition; every sample lands in exactly one lane). Lanes past the
      // sample count contribute nothing but still keep the rendezvous.
      const int64_t bsz = gb.images.size(0);
      const int n_active = static_cast<int>(std::min<int64_t>(lanes, bsz));

      metrics::Timer t_compute;
      const dist::ShardRange sr = dist::shard_range(bsz, lanes, lane);
      if (sr.count > 0) {
        PF_TRACE_SCOPE_C("shm.compute", step);
        Tensor imgs = slice(gb.images, 0, sr.start, sr.count);
        std::vector<int64_t> labels(gb.labels.begin() + sr.start,
                                    gb.labels.begin() + sr.start + sr.count);
        nn::UnaryModule& m = *replicas_[static_cast<size_t>(w)];
        m.zero_grad();
        ag::Var logits = m.forward(ag::leaf(std::move(imgs)));
        ag::Var loss = ag::cross_entropy(logits, labels, tc.label_smoothing);
        ag::backward(loss);
        arena[static_cast<size_t>(lane)] = m.flat_grads();
        const Tensor& lv = loss->value;
        losses[static_cast<size_t>(lane)] = lv[0];
      }
      compute_acc[static_cast<size_t>(lane)] += t_compute.seconds();

      metrics::Timer t_comm;
      {
      PF_TRACE_SCOPE_C("shm.reduce", step);
      if (ring_path_) {
        // Bucketed all-reduce run by the workers themselves; see
        // ring_reduce_pass (also the calibration target of
        // timed_ring_allreduce, so plan profiles price this exact loop).
        ring_reduce_pass(lane, n_active, total_params, bucket_elems,
                         n_buckets, arena, grad_p, agg_ring, barrier);
      } else {
        // Non-summing payloads go through the Reducer exactly as the
        // modeled cluster runs it, centralized on lane 0. Lane 0 times
        // the reduce separately: that interval is excluded from its comm
        // window (see reduce_excl_s) and surfaces as encode_s/decode_s
        // instead, keeping the breakdown components disjoint. The other
        // workers' barrier wait while lane 0 reduces genuinely is
        // synchronization time, so it stays in their comm windows.
        barrier.wait();
        if (lane == 0) {
          std::vector<Tensor> grads(arena.begin(), arena.begin() + n_active);
          compress::ReduceStats stats;
          metrics::Timer t_reduce;
          agg = reducer_->reduce(grads, param_shapes_, &stats);
          reduce_excl_s += t_reduce.seconds();
          encode_s += stats.encode_seconds / lanes;
          decode_s += stats.decode_seconds / lanes;
          bytes_per_worker = stats.payload_bytes_per_worker;
        }
        barrier.wait();
      }
      }
      comm_acc[static_cast<size_t>(lane)] += t_comm.seconds();

      replicas_[static_cast<size_t>(w)]->set_flat_grads(agg);
      opts_[static_cast<size_t>(w)]->step();
      if (lane == 0) {
        for (int j = 0; j < n_active; ++j) {
          loss_sum += losses[static_cast<size_t>(j)];
          ++steps;
        }
      }
      // Keeps arena and agg stable until every worker has stepped.
      barrier.wait();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(lanes - 1));
  for (int lane = 1; lane < lanes; ++lane) pool.emplace_back(worker_fn, lane);
  worker_fn(0);
  for (std::thread& t : pool) t.join();

  // Every component below is a per-worker average of disjoint sub-intervals
  // of the epoch (worker 0's reduce time was pulled out of its comm window),
  // so their sum cannot exceed the measured wall and other_s -- the true
  // remainder: fault recovery, optimizer step, data slicing, thread spawn --
  // is nonnegative by construction, not by clamping. trainer_test.cc asserts
  // total() == wall_s to timer resolution.
  comm_acc[0] -= reduce_excl_s;
  last_compute_s_.assign(static_cast<size_t>(cfg_.workers), 0.0);
  for (int lane = 0; lane < lanes; ++lane)
    last_compute_s_[static_cast<size_t>(active[static_cast<size_t>(lane)])] =
        compute_acc[static_cast<size_t>(lane)];
  const double wall_s = wall.seconds();
  dist::DistEpochRecord rec;
  rec.epoch = epoch;
  rec.breakdown.compute_s =
      std::accumulate(compute_acc.begin(), compute_acc.end(), 0.0) / lanes;
  rec.breakdown.comm_s =
      std::accumulate(comm_acc.begin(), comm_acc.end(), 0.0) / lanes;
  rec.breakdown.encode_s = encode_s;
  rec.breakdown.decode_s = decode_s;
  rec.breakdown.bytes_per_worker = bytes_per_worker;
  rec.breakdown.wall_s = wall_s;
  rec.breakdown.other_s = std::max(
      0.0, wall_s - rec.breakdown.compute_s - rec.breakdown.comm_s -
               rec.breakdown.encode_s - rec.breakdown.decode_s);
  rec.train_loss = loss_sum / std::max<int64_t>(1, steps);
  const core::EvalResult ev = core::evaluate_vision(
      *replicas_[static_cast<size_t>(canonical)], ds, tc.global_batch);
  rec.test_acc = ev.acc;
  wall_seconds_ += rec.breakdown.total();
  rec.cumulative_sim_seconds = wall_seconds_;
  global_step_ = step_base + static_cast<int64_t>(batches.size());
  fault_seconds_ +=
      std::accumulate(fault_acc.begin(), fault_acc.end(), 0.0);
  return rec;
}

std::vector<dist::DistEpochRecord> ShmDataParallelTrainer::train(
    const data::SyntheticImages& ds) {
  std::vector<dist::DistEpochRecord> out;
  int start = 0;
  if (cfg_.resume && !cfg_.checkpoint_dir.empty() &&
      core::snapshot_exists(cfg_.checkpoint_dir))
    start = resume();
  for (int e = start; e < cfg_.train.epochs; ++e) {
    out.push_back(train_epoch(ds, e));
    if (!cfg_.checkpoint_dir.empty() &&
        ((e + 1) % std::max(1, cfg_.checkpoint_every) == 0 ||
         e + 1 == cfg_.train.epochs))
      save_snapshot(e + 1);
  }
  return out;
}

void ShmDataParallelTrainer::save_snapshot(int next_epoch, int canonical) {
  core::TrainState st;
  st.next_epoch = next_epoch;
  st.global_step = global_step_;
  st.cumulative_seconds = wall_seconds_;
  for (Rng& r : worker_rngs_) st.worker_rngs.push_back(r.state());
  // Active replicas are bitwise-identical at epoch boundaries, so the
  // canonical slot's weights and optimizer state stand in for the cluster
  // (slot 0 for a static cluster; the elastic trainer passes the lowest
  // active slot of the round it snapshots at).
  core::capture_optimizer(*opts_[static_cast<size_t>(canonical)], st);
  // Stateful reducers (error-feedback residuals, sign momentum,
  // variance-gate moments) evolve across steps too: dropping them on
  // resume would silently re-lose the deferred gradient mass.
  if (reducer_) st.reducer = reducer_->state();
  core::save_snapshot(*replicas_[static_cast<size_t>(canonical)], st,
                      cfg_.checkpoint_dir);
}

int ShmDataParallelTrainer::resume() {
  core::TrainState st =
      core::load_snapshot(*replicas_[0], cfg_.checkpoint_dir);
  if (st.worker_rngs.size() != worker_rngs_.size())
    throw std::runtime_error(
        "shm_cluster: snapshot has " + std::to_string(st.worker_rngs.size()) +
        " worker Rng streams but the cluster has " +
        std::to_string(worker_rngs_.size()) +
        " worker slots -- a snapshot survives any membership change within "
        "its slot universe, but resuming under a different universe is "
        "rejected; resume with the slot count that wrote the snapshot");
  // Broadcast restored weights and optimizer state to every replica: the
  // invariant that active replicas are bitwise-identical at step boundaries
  // must hold from the very first resumed step, and slots inactive at the
  // snapshot round are re-bootstrapped by the membership layer on join
  // anyway, so overwriting their (stale) state is harmless.
  const Tensor flat = replicas_[0]->flat_params();
  for (int w = 1; w < cfg_.workers; ++w)
    replicas_[static_cast<size_t>(w)]->set_flat_params(flat);
  for (auto& o : opts_) core::restore_optimizer(*o, st);
  if (reducer_)
    reducer_->set_state(st.reducer);
  else if (!st.reducer.empty())
    throw std::runtime_error(
        "shm_cluster: snapshot carries reducer state but this cluster runs "
        "the plain ring path -- resume with the reducer that wrote it");
  for (size_t w = 0; w < worker_rngs_.size(); ++w)
    worker_rngs_[w].set_state(st.worker_rngs[w]);
  global_step_ = st.global_step;
  wall_seconds_ = st.cumulative_seconds;
  return static_cast<int>(st.next_epoch);
}

}  // namespace pf::runtime
