// Size-bucketed, thread-safe free-list allocator backing `pf::Tensor`
// storage.
//
// Training steps allocate thousands of short-lived buffers (tape
// temporaries, gradients, im2col scratch); hitting the system allocator for
// each one dominates the non-GEMM cost once the kernels are parallel. The
// pool rounds requests up to the next power-of-two bucket and recycles
// returned buffers, so a steady-state train loop allocates from the OS only
// on the first step. Buckets are shared by every thread (one mutex -- the
// critical section is a vector push/pop, far cheaper than malloc), and all
// counters are relaxed atomics so stats cost nothing on the hot path.
//
// Observability: `stats()` exposes hit/miss/bytes counters plus the
// copy-on-write unshare count (incremented by Tensor when a shared buffer
// is actually copied), surfaced through src/metrics and printed by the
// benches. `clear()` drops cached buffers between benchmark sections so one
// section's working set cannot subsidize the next.
//
// Escape hatch: setting the PF_POOL_DISABLE environment variable (to
// anything but "0") routes every request straight to new[]/delete[], which
// keeps ASan/valgrind precise when debugging aliasing bugs. Tests can also
// toggle `set_enabled()` programmatically.
#pragma once

#include <cstdint>

namespace pf::runtime {

struct PoolStats {
  uint64_t hits = 0;          // acquisitions served from a free list
  uint64_t misses = 0;        // acquisitions that hit the system allocator
  uint64_t releases = 0;      // buffers returned (cached or freed)
  uint64_t cow_unshares = 0;  // Tensor copy-on-write copies actually taken
  uint64_t bytes_live = 0;    // bytes currently handed out to tensors
  uint64_t bytes_pooled = 0;  // bytes currently cached in free lists
  uint64_t allocations() const { return hits + misses; }
};

class BufferPool {
 public:
  // Global pool instance; safe to call from any thread.
  static BufferPool& instance();

  // Returns a buffer of at least `numel` floats; `*capacity` receives the
  // actual bucket capacity (pass it back to release()). numel == 0 returns
  // nullptr with capacity 0.
  float* acquire(int64_t numel, int64_t* capacity);
  void release(float* p, int64_t capacity);

  // Frees every cached buffer (bytes_pooled -> 0). Live buffers are
  // untouched; they re-enter the free lists as they are released.
  void clear();

  PoolStats stats() const;
  // Zeroes the counters (bytes_live/bytes_pooled are gauges and are kept).
  void reset_stats();

  // Pooling on/off. Off = straight new[]/delete[], every acquire a miss.
  // The PF_POOL_DISABLE environment variable sets the initial value.
  bool enabled() const;
  void set_enabled(bool on);

  // Called by Tensor when a copy-on-write access actually copies.
  void note_cow_unshare();

  ~BufferPool();

 private:
  BufferPool();
  struct Impl;
  Impl* impl_;
};

}  // namespace pf::runtime
