#include "runtime/buffer_pool.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace pf::runtime {

namespace {

// Smallest bucket: 32 floats (128 B). Anything smaller still gets a 32-float
// buffer; the waste is bounded and tiny tensors (biases, BN vectors) are the
// ones that churn the most.
constexpr int64_t kMinBucket = 32;
// Buffers above this size are never cached: one 2 GiB activation must not
// pin 2 GiB of freed memory. They are still counted as misses/releases.
constexpr int64_t kMaxCachedBytes = int64_t{1} << 28;  // 256 MiB
// Total cached bytes cap; past it, released buffers are freed not cached.
constexpr int64_t kMaxPoolBytes = int64_t{1} << 30;  // 1 GiB

int bucket_index(int64_t numel) {
  const uint64_t n =
      static_cast<uint64_t>(numel < kMinBucket ? kMinBucket : numel);
  return std::bit_width(n - 1);  // ceil(log2(n))
}

int64_t bucket_capacity(int index) { return int64_t{1} << index; }

}  // namespace

struct BufferPool::Impl {
  std::mutex mu;
  std::vector<std::vector<float*>> free_lists;  // by bucket index
  std::atomic<bool> enabled{true};
  std::atomic<uint64_t> hits{0}, misses{0}, releases{0}, cow{0};
  std::atomic<uint64_t> bytes_live{0}, bytes_pooled{0};
};

BufferPool::BufferPool() : impl_(new Impl) {
  impl_->free_lists.resize(48);
  const char* env = std::getenv("PF_POOL_DISABLE");
  if (env && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
    impl_->enabled.store(false, std::memory_order_relaxed);
}

BufferPool::~BufferPool() {
  clear();
  delete impl_;
}

BufferPool& BufferPool::instance() {
  // Leaked on purpose: tensors with static storage duration (test fixtures,
  // globals) may release into the pool after main() returns.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

float* BufferPool::acquire(int64_t numel, int64_t* capacity) {
  if (numel <= 0) {
    *capacity = 0;
    return nullptr;
  }
  if (!impl_->enabled.load(std::memory_order_relaxed)) {
    *capacity = numel;
    impl_->misses.fetch_add(1, std::memory_order_relaxed);
    impl_->bytes_live.fetch_add(static_cast<uint64_t>(numel) * sizeof(float),
                                std::memory_order_relaxed);
    return new float[static_cast<size_t>(numel)];
  }
  const int idx = bucket_index(numel);
  const int64_t cap = bucket_capacity(idx);
  *capacity = cap;
  const uint64_t bytes = static_cast<uint64_t>(cap) * sizeof(float);
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    auto& list = impl_->free_lists[static_cast<size_t>(idx)];
    if (!list.empty()) {
      float* p = list.back();
      list.pop_back();
      impl_->hits.fetch_add(1, std::memory_order_relaxed);
      impl_->bytes_pooled.fetch_sub(bytes, std::memory_order_relaxed);
      impl_->bytes_live.fetch_add(bytes, std::memory_order_relaxed);
      return p;
    }
  }
  impl_->misses.fetch_add(1, std::memory_order_relaxed);
  impl_->bytes_live.fetch_add(bytes, std::memory_order_relaxed);
  return new float[static_cast<size_t>(cap)];
}

void BufferPool::release(float* p, int64_t capacity) {
  if (!p) return;
  const uint64_t bytes = static_cast<uint64_t>(capacity) * sizeof(float);
  impl_->releases.fetch_add(1, std::memory_order_relaxed);
  impl_->bytes_live.fetch_sub(bytes, std::memory_order_relaxed);
  if (impl_->enabled.load(std::memory_order_relaxed) &&
      bytes <= static_cast<uint64_t>(kMaxCachedBytes) &&
      impl_->bytes_pooled.load(std::memory_order_relaxed) + bytes <=
          static_cast<uint64_t>(kMaxPoolBytes)) {
    // Pooled buffers always have power-of-two capacity; a buffer acquired
    // while pooling was disabled has exact capacity and must not be cached
    // under the wrong bucket.
    if ((capacity & (capacity - 1)) == 0 && capacity >= kMinBucket) {
      std::lock_guard<std::mutex> lk(impl_->mu);
      impl_->free_lists[static_cast<size_t>(bucket_index(capacity))].push_back(
          p);
      impl_->bytes_pooled.fetch_add(bytes, std::memory_order_relaxed);
      return;
    }
  }
  delete[] p;
}

void BufferPool::clear() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (auto& list : impl_->free_lists) {
    for (float* p : list) delete[] p;
    list.clear();
  }
  impl_->bytes_pooled.store(0, std::memory_order_relaxed);
}

PoolStats BufferPool::stats() const {
  PoolStats s;
  s.hits = impl_->hits.load(std::memory_order_relaxed);
  s.misses = impl_->misses.load(std::memory_order_relaxed);
  s.releases = impl_->releases.load(std::memory_order_relaxed);
  s.cow_unshares = impl_->cow.load(std::memory_order_relaxed);
  s.bytes_live = impl_->bytes_live.load(std::memory_order_relaxed);
  s.bytes_pooled = impl_->bytes_pooled.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::reset_stats() {
  impl_->hits.store(0, std::memory_order_relaxed);
  impl_->misses.store(0, std::memory_order_relaxed);
  impl_->releases.store(0, std::memory_order_relaxed);
  impl_->cow.store(0, std::memory_order_relaxed);
}

bool BufferPool::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void BufferPool::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

void BufferPool::note_cow_unshare() {
  impl_->cow.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace pf::runtime
