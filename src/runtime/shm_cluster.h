// Real shared-memory data-parallel executor: the measured counterpart to
// the modeled `dist::DataParallelTrainer`.
//
// N worker threads each own a full model replica built from identically
// seeded factories (replicas start bitwise equal and stay equal, because
// every worker applies the same aggregated gradient with its own optimizer).
// Each step the global batch is sharded exactly like dist/cluster.cc;
// workers compute real gradients on their shard concurrently and aggregate
// through one of two paths:
//
//  * ring path (allreduce-compatible payloads, i.e. the paper's vanilla /
//    Pufferfish flat buffers): a bucketed all-reduce executed by the worker
//    threads themselves. The flat gradient is split into buckets walked from
//    the tail of the buffer (the order backward produces gradients, DDP's
//    overlap trick); each bucket is a rendezvous followed by a
//    reduce-scatter over the shared arena -- worker w sums segment w of the
//    bucket across all replicas in fixed replica order, so the result is
//    bitwise identical to the sequential mean -- with the allgather
//    collapsing to shared-memory reads of the aggregated buffer.
//  * reducer path (PowerSGD / SIGNUM / top-k / ATOMO payloads whose
//    encodings do not sum): workers rendezvous, then worker 0 runs the
//    `compress::Reducer` over all shards -- the identical code path the
//    modeled cluster uses, so stateful reducers behave the same.
//
// The epoch report reuses `dist::EpochBreakdown`, but every field is
// MEASURED wall-clock (compute = per-worker fwd+bwd average, comm = time in
// rendezvous + reduction), so bench_fig4_distributed can print modeled and
// measured columns side by side.
// Fault tolerance (src/fault): a seeded fault::Plan can kill or delay a
// worker at the top of a scheduled global step. Because replicas are
// bitwise-identical at step boundaries, a killed worker is *reincarnated*
// in place -- its (NaN-poisoned) parameters and optimizer velocity are
// restored from the lowest surviving replica -- and the run continues
// bitwise-identical to a fault-free one. The plan doubles as the failure
// detector: it is deterministic and visible to every worker, which mirrors
// a real step-boundary failure detector at zero coordination cost.
// Checkpoint/resume: with checkpoint_dir set, train() writes an atomic
// weights + TrainState snapshot per epoch and resume() restores replicas,
// optimizers, and per-worker Rng streams from it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "core/checkpoint.h"
#include "core/trainer.h"
#include "dist/cluster.h"
#include "fault/fault.h"
#include "optim/optim.h"

namespace pf::runtime {

// Times the exact bucketed ring all-reduce the trainer's ring path executes
// (rendezvous per bucket, tail-first bucket walk, per-segment reduce-scatter
// over a shared arena): `workers` threads each contribute a flat gradient of
// `elems` floats. Returns mean seconds per reduce over `reps` repetitions
// after one untimed warm-up pass. The plan calibration
// (src/plan/calibrate.h) fits effective alpha/beta to this at several
// payload sizes, so modeled communication describes this machine.
double timed_ring_allreduce(int workers, int64_t elems, int64_t bucket_bytes,
                            int reps);

// Executes one real threaded bucketed ring all-reduce over `grads` (one
// equal-length flat tensor per lane) and returns the aggregated mean. This
// is the production reduction run by grads.size() actual threads -- the
// elastic property test compares it bitwise against the sequential
// ascending-lane mean for any lane count and bucket size, which is the
// "re-bucketing preserves the all-reduced sum" contract membership changes
// rely on.
Tensor ring_allreduce(const std::vector<Tensor>& grads, int64_t bucket_bytes);

// Which replica slots participate in one epoch (src/elastic membership).
// Defaults reproduce the static cluster: every slot active, slot 0
// canonical.
struct EpochParticipants {
  // Sorted, unique replica slots in [0, workers). Empty = all slots.
  std::vector<int> active;
  // Slot evaluated and reported for the epoch; -1 = lowest active slot.
  // Must be active.
  int canonical = -1;
  // Per-SLOT straggler delay injected once at the top of the epoch's first
  // step (round-boundary delays the wait-all strategy passes through).
  // Empty = none; otherwise sized `workers`.
  std::vector<double> delay_ms;
};

struct ShmClusterConfig {
  int workers = 4;
  // Ring-path bucket granularity in bytes (DDP-style gradient buckets).
  int64_t bucket_bytes = 256 << 10;
  dist::DistTrainConfig train;
  // Deterministic fault schedule (empty = no injection).
  fault::Plan fault;
  // When non-empty, train() snapshots after every `checkpoint_every`-th
  // epoch; with `resume` set it continues from the existing snapshot.
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  bool resume = false;
};

class ShmDataParallelTrainer {
 public:
  // `make_model` is called once per worker with identically seeded Rngs, so
  // all replicas start with the same weights. A null `reducer` (or an
  // AllreduceReducer) selects the threaded ring path; any other reducer is
  // run centralized on worker 0 over the shared arena.
  ShmDataParallelTrainer(const core::VisionModelFactory& make_model,
                         std::unique_ptr<compress::Reducer> reducer,
                         const ShmClusterConfig& cfg);

  dist::DistEpochRecord train_epoch(const data::SyntheticImages& ds,
                                    int epoch);
  // Membership-aware epoch: only `parts.active` replica slots spawn worker
  // threads; the global batch is resharded over them (dist::shard_range,
  // every sample to exactly one active lane) and the ring reduce regroups
  // to |active| dense lanes -- bitwise identical to the sequential
  // ascending-lane mean at any active count. Inactive replicas are left
  // untouched (stale); src/elastic bootstraps them on re-join.
  dist::DistEpochRecord train_epoch(const data::SyntheticImages& ds,
                                    int epoch,
                                    const EpochParticipants& parts);
  std::vector<dist::DistEpochRecord> train(const data::SyntheticImages& ds);

  // Write an atomic snapshot (canonical-replica weights + TrainState with
  // every worker slot's Rng stream) into cfg.checkpoint_dir; `next_epoch`
  // is the epoch a resumed run should start from. `canonical` is the slot
  // whose weights and optimizer state stand in for the cluster (slot 0 for
  // the static cluster; the elastic trainer passes its current canonical).
  void save_snapshot(int next_epoch, int canonical = 0);
  // Restore replicas, optimizers, Rng streams, and step/time counters from
  // cfg.checkpoint_dir, broadcasting the snapshot state to every slot.
  // Returns the epoch to continue from. The resumed run is
  // bitwise-identical to an uninterrupted one. Throws when the snapshot's
  // worker-slot count differs from this cluster's: membership can change
  // *within* a fixed slot universe, but resuming under a different universe
  // is rejected loudly (tests/elastic_test.cc asserts both directions).
  int resume();

  // Canonical replica (worker 0); evaluation runs against it.
  nn::UnaryModule& model() { return *replicas_[0]; }
  // Per-slot replica / optimizer access for the elastic membership layer
  // (bootstrap payload capture and joiner reincarnation). The replicas of
  // slots inactive in the current round are stale by contract.
  nn::UnaryModule& replica(int w) { return *replicas_[static_cast<size_t>(w)]; }
  optim::SGD& optimizer(int w) { return *opts_[static_cast<size_t>(w)]; }
  int workers() const { return cfg_.workers; }
  double cumulative_seconds() const { return wall_seconds_; }
  int64_t global_step() const { return global_step_; }
  // Wall-clock spent inside injected faults and their recovery (summed over
  // workers); already included in the epoch records' measured time.
  double fault_seconds() const { return fault_seconds_; }

  // Per-worker RNG stream, derived from (train.seed, worker_id) via
  // splitmix so concurrent workers never share a stream (seed hygiene for
  // stochastic compressors and future per-worker augmentation).
  Rng& worker_rng(int w) { return worker_rngs_[static_cast<size_t>(w)]; }

  // Per-SLOT fwd+bwd seconds of the most recent epoch (0 for slots that sat
  // the epoch out). The elastic trainer folds these into measured relative
  // speeds (ElasticTrainer::measured_speeds) that feed
  // dist::HardwareProfile::worker_speeds for heterogeneous planning.
  const std::vector<double>& last_epoch_compute_seconds() const {
    return last_compute_s_;
  }

 private:
  ShmClusterConfig cfg_;
  std::unique_ptr<compress::Reducer> reducer_;
  bool ring_path_ = true;
  std::vector<std::unique_ptr<nn::UnaryModule>> replicas_;
  std::vector<std::unique_ptr<optim::SGD>> opts_;
  std::vector<Rng> worker_rngs_;
  std::vector<Shape> param_shapes_;
  double wall_seconds_ = 0;
  int64_t global_step_ = 0;
  double fault_seconds_ = 0;
  std::vector<double> last_compute_s_;
};

}  // namespace pf::runtime
