// Real shared-memory data-parallel executor: the measured counterpart to
// the modeled `dist::DataParallelTrainer`.
//
// N worker threads each own a full model replica built from identically
// seeded factories (replicas start bitwise equal and stay equal, because
// every worker applies the same aggregated gradient with its own optimizer).
// Each step the global batch is sharded exactly like dist/cluster.cc;
// workers compute real gradients on their shard concurrently and aggregate
// through one of two paths:
//
//  * ring path (allreduce-compatible payloads, i.e. the paper's vanilla /
//    Pufferfish flat buffers): a bucketed all-reduce executed by the worker
//    threads themselves. The flat gradient is split into buckets walked from
//    the tail of the buffer (the order backward produces gradients, DDP's
//    overlap trick); each bucket is a rendezvous followed by a
//    reduce-scatter over the shared arena -- worker w sums segment w of the
//    bucket across all replicas in fixed replica order, so the result is
//    bitwise identical to the sequential mean -- with the allgather
//    collapsing to shared-memory reads of the aggregated buffer.
//  * reducer path (PowerSGD / SIGNUM / top-k / ATOMO payloads whose
//    encodings do not sum): workers rendezvous, then worker 0 runs the
//    `compress::Reducer` over all shards -- the identical code path the
//    modeled cluster uses, so stateful reducers behave the same.
//
// The epoch report reuses `dist::EpochBreakdown`, but every field is
// MEASURED wall-clock (compute = per-worker fwd+bwd average, comm = time in
// rendezvous + reduction), so bench_fig4_distributed can print modeled and
// measured columns side by side.
#pragma once

#include <memory>
#include <vector>

#include "compress/compressor.h"
#include "core/trainer.h"
#include "dist/cluster.h"
#include "optim/optim.h"

namespace pf::runtime {

struct ShmClusterConfig {
  int workers = 4;
  // Ring-path bucket granularity in bytes (DDP-style gradient buckets).
  int64_t bucket_bytes = 256 << 10;
  dist::DistTrainConfig train;
};

class ShmDataParallelTrainer {
 public:
  // `make_model` is called once per worker with identically seeded Rngs, so
  // all replicas start with the same weights. A null `reducer` (or an
  // AllreduceReducer) selects the threaded ring path; any other reducer is
  // run centralized on worker 0 over the shared arena.
  ShmDataParallelTrainer(const core::VisionModelFactory& make_model,
                         std::unique_ptr<compress::Reducer> reducer,
                         const ShmClusterConfig& cfg);

  dist::DistEpochRecord train_epoch(const data::SyntheticImages& ds,
                                    int epoch);
  std::vector<dist::DistEpochRecord> train(const data::SyntheticImages& ds);

  // Canonical replica (worker 0); evaluation runs against it.
  nn::UnaryModule& model() { return *replicas_[0]; }
  int workers() const { return cfg_.workers; }
  double cumulative_seconds() const { return wall_seconds_; }

  // Per-worker RNG stream, derived from (train.seed, worker_id) via
  // splitmix so concurrent workers never share a stream (seed hygiene for
  // stochastic compressors and future per-worker augmentation).
  Rng& worker_rng(int w) { return worker_rngs_[static_cast<size_t>(w)]; }

 private:
  ShmClusterConfig cfg_;
  std::unique_ptr<compress::Reducer> reducer_;
  bool ring_path_ = true;
  std::vector<std::unique_ptr<nn::UnaryModule>> replicas_;
  std::vector<std::unique_ptr<optim::SGD>> opts_;
  std::vector<Rng> worker_rngs_;
  std::vector<Shape> param_shapes_;
  double wall_seconds_ = 0;
};

}  // namespace pf::runtime
