// Fixed-size thread-pool parallel runtime.
//
// The contract is determinism first: work is split into chunks whose
// boundaries depend ONLY on (begin, end, grain) -- never on the thread
// count -- and chunks are assigned to workers statically (round-robin, no
// atomic work-stealing). Because every chunk writes disjoint state and
// `parallel_reduce` combines per-chunk partials in ascending chunk order,
// results are bitwise identical at 1, 2, or 64 threads. Pool size comes
// from the PF_THREADS environment variable (default 1, so single-threaded
// behaviour -- and every seed test -- is unchanged) or `set_threads()`.
//
// Re-entrancy: a `parallel_for` issued from inside a pool worker, or while
// another thread is already dispatching (e.g. N shm-cluster workers all
// hitting GEMMs at once), degrades to an inline serial walk of the same
// chunk list. Same chunks, same order, same bits -- just one thread.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace pf::runtime {

// Active thread count (>= 1).
int threads();

// Resizes the global pool; n <= 0 resets to the PF_THREADS env default.
void set_threads(int n);

namespace detail {
// Chunk width implied by `grain` (clamped to >= 1); boundaries are
// begin, begin+w, begin+2w, ... independent of the thread count.
int64_t chunk_width(int64_t grain);
// Runs fn(chunk_index, chunk_begin, chunk_end) over every chunk of
// [begin, end), concurrently when the pool is available.
void run_chunks(int64_t begin, int64_t end, int64_t grain,
                const std::function<void(int64_t, int64_t, int64_t)>& fn);
}  // namespace detail

// Applies fn(chunk_begin, chunk_end) over disjoint chunks covering
// [begin, end) exactly once. fn must not write outside its chunk's state.
inline void parallel_for(int64_t begin, int64_t end, int64_t grain,
                         const std::function<void(int64_t, int64_t)>& fn) {
  detail::run_chunks(begin, end, grain,
                     [&fn](int64_t, int64_t b, int64_t e) { fn(b, e); });
}

// Maps each chunk to a partial with `map(chunk_begin, chunk_end)` and folds
// the partials with `combine` in ascending chunk order, so floating-point
// results are bitwise reproducible at any thread count.
template <typename T, typename Map, typename Combine>
T parallel_reduce(int64_t begin, int64_t end, int64_t grain, T identity,
                  const Map& map, const Combine& combine) {
  if (end <= begin) return identity;
  const int64_t w = detail::chunk_width(grain);
  const int64_t n_chunks = (end - begin + w - 1) / w;
  std::vector<T> partials(static_cast<size_t>(n_chunks), identity);
  detail::run_chunks(begin, end, grain,
                     [&](int64_t c, int64_t b, int64_t e) {
                       partials[static_cast<size_t>(c)] = map(b, e);
                     });
  T acc = identity;
  for (const T& p : partials) acc = combine(acc, p);
  return acc;
}

}  // namespace pf::runtime
