#include "plan/calibrate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>

#include "autograd/ops.h"
#include "kernels/kernels.h"
#include "metrics/metrics.h"
#include "optim/optim.h"
#include "runtime/shm_cluster.h"
#include "tensor/matmul.h"
#include "tensor/rng.h"

namespace pf::plan {

LinkCalibration fit_alpha_beta(
    const std::vector<std::pair<int64_t, double>>& samples, int p) {
  if (samples.size() < 2)
    throw std::runtime_error("fit_alpha_beta: need >= 2 samples");
  if (p < 2) throw std::runtime_error("fit_alpha_beta: need p >= 2");
  // Ordinary least squares on t = a + b n, then invert the closed form:
  //   a = 2(p-1) alpha          => alpha = a / (2(p-1))
  //   b = 2(p-1)/(p B)          => B     = 2(p-1) / (p b)
  const double N = static_cast<double>(samples.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [bytes, secs] : samples) {
    const double x = static_cast<double>(bytes);
    sx += x;
    sy += secs;
    sxx += x * x;
    sxy += x * secs;
  }
  const double denom = N * sxx - sx * sx;
  if (denom <= 0) throw std::runtime_error("fit_alpha_beta: degenerate xs");
  const double b = (N * sxy - sx * sy) / denom;
  const double a = (sy - b * sx) / N;
  const double pd = p;

  LinkCalibration out;
  out.workers = p;
  // Clamp to physical values: a noisy in-memory measurement can produce a
  // (slightly) negative intercept.
  out.alpha_s = std::max(a / (2.0 * (pd - 1)), 1e-9);
  out.bandwidth_bytes_per_s =
      b > 0 ? 2.0 * (pd - 1) / (pd * b) : 1e15;  // "free" link if flat fit
  for (const auto& [bytes, secs] : samples) {
    const double fit = a + b * static_cast<double>(bytes);
    if (secs > 0)
      out.max_residual =
          std::max(out.max_residual, std::abs(fit - secs) / secs);
  }
  return out;
}

LinkCalibration calibrate_link(int workers, int reps) {
  workers = std::max(2, workers);
  // Geometric payload ladder, 256 KB .. 16 MB: small enough to stay fast,
  // wide enough that the bandwidth term dominates the top end.
  const int64_t bucket_bytes = 256 << 10;  // ShmClusterConfig default
  std::vector<std::pair<int64_t, double>> samples;
  for (int64_t bytes : {int64_t{256} << 10, int64_t{1} << 20, int64_t{4} << 20,
                        int64_t{16} << 20}) {
    const int64_t elems = bytes / static_cast<int64_t>(sizeof(float));
    samples.emplace_back(
        bytes, runtime::timed_ring_allreduce(workers, elems, bucket_bytes,
                                             reps));
  }
  return fit_alpha_beta(samples, workers);
}

double calibrate_gemm_flops(int reps) {
  reps = std::max(1, reps);
  const int64_t n = 256;
  Rng rng(29);
  const Tensor a = rng.randn(Shape{n, n});
  const Tensor b = rng.randn(Shape{n, n});
  Tensor c = matmul(a, b);  // warm-up (also faults in backend dispatch)
  metrics::Timer t;
  for (int r = 0; r < reps; ++r) c = matmul(a, b);
  const double secs = t.seconds() / reps;
  return 2.0 * static_cast<double>(n) * n * n / std::max(secs, 1e-12);
}

double calibrate_gemm_flops_backend(const char* backend, int reps) {
  const std::string prev = kernels::backend_name();
  if (!kernels::set_backend(backend)) return 0.0;
  const double flops = calibrate_gemm_flops(reps);
  kernels::set_backend(prev.c_str());
  return flops;
}

double measure_step_seconds(const core::VisionModelFactory& make_model,
                            int64_t batch, int64_t hw, int reps) {
  reps = std::max(1, reps);
  Rng rng(31);
  std::unique_ptr<nn::UnaryModule> model = make_model(rng);
  model->train(true);
  optim::SGD opt(model->parameters(), /*lr=*/0.05f, /*momentum=*/0.9f,
                 /*weight_decay=*/1e-4f);
  Rng data_rng(37);
  const Tensor images = data_rng.randn(Shape{batch, 3, hw, hw});
  std::vector<int64_t> labels(static_cast<size_t>(batch));
  for (int64_t i = 0; i < batch; ++i)
    labels[static_cast<size_t>(i)] = i % 10;
  // One full training step -- the optimizer update is part of what the shm
  // trainer's measured epoch contains, so it belongs in the calibration.
  auto step = [&] {
    model->zero_grad();
    ag::Var loss =
        ag::cross_entropy(model->forward(ag::leaf(images)), labels, 0.0f);
    ag::backward(loss);
    opt.step();
  };
  step();  // warm-up
  metrics::Timer t;
  for (int r = 0; r < reps; ++r) step();
  return t.seconds() / reps;
}

dist::HardwareProfile calibrated_profile(int workers, int reps) {
  const LinkCalibration link = calibrate_link(workers, reps);
  dist::HardwareProfile p;
  p.name = "calibrated";
  p.alpha_s = link.alpha_s;
  p.bandwidth_bytes_per_s = link.bandwidth_bytes_per_s;
  p.workers_per_node = 1;  // shared-memory ring is one flat level
  p.flops_per_s = calibrate_gemm_flops(reps);
  // shm workers are threads on THIS host: they share its cores, unlike
  // cluster ranks with dedicated compute.
  p.compute_slots = std::max(1u, std::thread::hardware_concurrency());
  return p;
}

}  // namespace pf::plan
