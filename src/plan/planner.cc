#include "plan/planner.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <tuple>

#include "plan/comm_sim.h"

namespace pf::plan {

namespace {

std::string fmt(const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

}  // namespace

double modeled_epoch_seconds(const ModelCosts& costs, const MethodCosts& mc,
                             int workers, int64_t bucket_bytes,
                             int64_t per_worker_batch,
                             double images_per_epoch,
                             const dist::HardwareProfile& hw, bool overlap,
                             double compute_override_s) {
  const double steps =
      images_per_epoch /
      (static_cast<double>(workers) * static_cast<double>(per_worker_batch));
  // Ranks sharing compute (shm workers on one host) serialize: p ranks on
  // `compute_slots` slots step ceil(p/slots) x slower than a lone replica.
  const double oversub =
      hw.compute_slots > 0
          ? static_cast<double>((workers + hw.compute_slots - 1) /
                                hw.compute_slots)
          : 1.0;
  // A synchronous step finishes when the slowest participating rank does:
  // heterogeneous profiles (hw.worker_speeds) stretch compute by the
  // slowest of the first `workers` ranks, which is what lets the planner
  // answer "is the slow node worth keeping" (bench_elastic's hetero table).
  const double compute =
      (compute_override_s > 0
           ? compute_override_s
           : costs.step_flops(per_worker_batch) / hw.flops_per_s) *
      oversub / hw.slowest_speed(workers);
  const int64_t bytes = costs.grad_bytes();
  if (mc.collective == Coll::kAllreduce && mc.encode_s_per_byte == 0 &&
      overlap) {
    // Plain flat-buffer allreduce under DDP bucketed overlap: the
    // bench_fig4_distributed model, generalized to hierarchical profiles.
    return steps *
           overlap_epoch_seconds(compute, bytes, workers, hw, bucket_bytes);
  }
  // Synchronous step accounting (the shm executor's schedule, and the one
  // encode/decode passes force anyway): compute, encode, collective,
  // decode back to back. The whole payload is priced as one collective --
  // calibration fits (alpha, B) over total payload at the production
  // bucket size, so per-bucket overheads live in the fitted coefficients.
  const int64_t payload = static_cast<int64_t>(
      mc.payload_factor * static_cast<double>(bytes));
  const double comm =
      static_cast<double>(mc.n_messages) *
      collective_seconds(mc.collective, payload, workers, hw);
  const double encode = mc.encode_s_per_byte * static_cast<double>(bytes);
  const double decode =
      mc.decode_s_per_byte * static_cast<double>(payload) *
      (mc.decode_scales_with_workers ? static_cast<double>(workers - 1)
                                     : 1.0);
  return steps * (compute + encode + comm + decode);
}

std::string CandidateEval::config_string() const {
  if (rank_ratio >= 1.0 || hybrid_k <= 0) return "vanilla";
  if (reproject_every > 0)
    return fmt("hybrid r=%.3g K=%d wu=%d R=%d", rank_ratio, hybrid_k,
               warmup_epochs, reproject_every);
  return fmt("hybrid r=%.3g K=%d wu=%d", rank_ratio, hybrid_k,
             warmup_epochs);
}

bool Plan::has_feasible() const {
  for (const CandidateEval& c : candidates)
    if (c.feasible) return true;
  return false;
}

const CandidateEval& Plan::best() const {
  for (const CandidateEval& c : candidates)
    if (c.feasible) return c;
  throw std::runtime_error("plan: no candidate meets the accuracy floor");
}

std::string Plan::summary(int top_n) const {
  std::string s;
  s += fmt("plan: %s width=%.3g classes=%lld batch=%lld epochs=%d "
           "images=%.6g floor=%.4f\n",
           request.model.c_str(), request.width,
           static_cast<long long>(request.classes),
           static_cast<long long>(request.per_worker_batch), request.epochs,
           request.images_per_epoch, request.accuracy_floor);
  s += fmt("profile: %s alpha=%.6g s B=%.6g B/s intra_alpha=%.6g s "
           "intra_B=%.6g B/s wpn=%d flops=%.6g/s overlap=%d\n",
           request.hw.name.c_str(), request.hw.alpha_s,
           request.hw.bandwidth_bytes_per_s, request.hw.intra_alpha_s,
           request.hw.intra_bandwidth_bytes_per_s,
           request.hw.workers_per_node, request.hw.flops_per_s,
           request.overlap ? 1 : 0);
  if (request.hw.heterogeneous())
    s += fmt("hetero: %d rank speeds, slowest=%.4g\n",
             static_cast<int>(request.hw.worker_speeds.size()),
             request.hw.slowest_speed(
                 static_cast<int>(request.hw.worker_speeds.size())));
  if (request.measured_step_seconds > 0)
    s += fmt("calibrated step: %.6g s (vanilla fwd+bwd+opt)\n",
             request.measured_step_seconds);
  s += fmt("%-22s %-12s %3s %6s %7s %9s %9s %8s %10s %4s\n", "config",
           "method", "p", "bkt_MB", "acc", "wu_ep_s", "ep_s", "svd_s",
           "total_s", "ok");
  const int n = std::min<int>(top_n, static_cast<int>(candidates.size()));
  for (int i = 0; i < n; ++i) {
    const CandidateEval& c = candidates[static_cast<size_t>(i)];
    s += fmt("%-22s %-12s %3d %6.1f %7.4f %9.4g %9.4g %8.4g %10.4g %4s\n",
             c.config_string().c_str(), c.method.c_str(), c.workers,
             static_cast<double>(c.bucket_bytes) / (1 << 20),
             c.predicted_acc, c.warmup_epoch_s, c.final_epoch_s, c.svd_s,
             c.total_s, c.feasible ? "yes" : "no");
  }
  if (has_feasible()) {
    const CandidateEval& b = best();
    s += fmt("best: %s method=%s p=%d bucket=%lldB total=%.4g s "
             "acc=%.4f\n",
             b.config_string().c_str(), b.method.c_str(), b.workers,
             static_cast<long long>(b.bucket_bytes), b.total_s,
             b.predicted_acc);
  } else {
    s += "best: none feasible (accuracy floor too high for the recorded "
         "frontier)\n";
  }
  return s;
}

Plan make_plan(const PlannerRequest& req) {
  Plan plan;
  plan.request = req;
  const MethodCosts& plain = method_costs("allreduce");
  const ModelCosts vanilla_costs = describe_model(
      req.model, req.width, req.classes, req.input_hw, 1.0, 0);

  // Introspect each hybrid shape once, not per (workers, bucket, method).
  struct HybridShape {
    double ratio;
    int k;
    ModelCosts costs;
  };
  std::vector<HybridShape> shapes;
  for (double r : req.rank_ratios) {
    if (r >= 1.0) continue;  // rank ratio 1.0 IS the vanilla candidate
    for (int k : req.hybrid_ks)
      shapes.push_back({r, k,
                        describe_model(req.model, req.width, req.classes,
                                       req.input_hw, r, k)});
  }

  // Calibrated compute: one measured vanilla step anchors every config via
  // its introspected FLOP ratio.
  auto compute_override = [&](const ModelCosts& costs) {
    if (req.measured_step_seconds <= 0) return 0.0;
    return req.measured_step_seconds * costs.fwd_flops /
           vanilla_costs.fwd_flops;
  };

  auto epoch_s = [&](const ModelCosts& costs, const MethodCosts& mc,
                     int workers, int64_t bucket) {
    return modeled_epoch_seconds(costs, mc, workers, bucket,
                                 req.per_worker_batch, req.images_per_epoch,
                                 req.hw, req.overlap,
                                 compute_override(costs));
  };

  for (int workers : req.workers) {
    for (int64_t bucket : req.bucket_bytes) {
      for (const std::string& method : req.methods) {
        const MethodCosts& mc = method_costs(method);
        {  // vanilla: `method` reduces the dense gradient every step
          CandidateEval e;
          e.rank_ratio = 1.0;
          e.hybrid_k = 0;
          e.warmup_epochs = 0;
          e.bucket_bytes = bucket;
          e.workers = workers;
          e.method = method;
          e.grad_bytes = vanilla_costs.grad_bytes();
          e.predicted_acc = predicted_accuracy(1.0, 0, 0) * mc.acc_factor;
          e.feasible = e.predicted_acc >= req.accuracy_floor;
          e.final_epoch_s = epoch_s(vanilla_costs, mc, workers, bucket);
          e.total_s = static_cast<double>(req.epochs) * e.final_epoch_s;
          plan.candidates.push_back(e);
        }
        for (const HybridShape& h : shapes) {
          for (int wu : req.warmup_epochs) {
            if (wu >= req.epochs) continue;
            // With no warm-up phase the reducer choice is moot; keep one
            // canonical (allreduce-labelled) candidate instead of clones.
            if (wu == 0 && method != "allreduce") continue;
            for (int reproj : req.reproject_every) {
              // Refresh rounds fire at low-rank epochs wu+R, wu+2R, ...
              // strictly before the last epoch index (core/trainer.cc).
              const int n_refresh =
                  reproj > 0 ? (req.epochs - 1 - wu) / reproj : 0;
              // R too large to ever fire degenerates to the R=0 candidate;
              // keep the canonical one instead of clones.
              if (reproj > 0 && n_refresh == 0) continue;
              CandidateEval e;
              e.rank_ratio = h.ratio;
              e.hybrid_k = h.k;
              e.warmup_epochs = wu;
              e.bucket_bytes = bucket;
              e.workers = workers;
              e.method = method;
              e.reproject_every = reproj;
              e.grad_bytes = h.costs.grad_bytes();
              // The warm-up reducer's accuracy cost applies on top of the
              // recorded (ratio, K, wu) frontier point.
              e.predicted_acc =
                  predicted_accuracy(h.ratio, h.k, wu) * mc.acc_factor;
              e.feasible = e.predicted_acc >= req.accuracy_floor;
              e.warmup_epoch_s = epoch_s(vanilla_costs, mc, workers, bucket);
              // Factorized phase always ships plain allreduce: low-rank
              // factor gradients sum, no encoding needed (the paper's core
              // "no extra cost" claim).
              e.final_epoch_s = epoch_s(h.costs, plain, workers, bucket);
              e.svd_s = h.costs.svd_seconds(req.hw.flops_per_s);
              // Each refresh round replaces a low-rank epoch with a dense
              // one (dense compute + dense allreduce) and pays a fresh SVD.
              const double refresh_epoch_s =
                  epoch_s(vanilla_costs, plain, workers, bucket);
              e.total_s = static_cast<double>(wu) * e.warmup_epoch_s +
                          e.svd_s +
                          static_cast<double>(req.epochs - wu - n_refresh) *
                              e.final_epoch_s +
                          static_cast<double>(n_refresh) *
                              (refresh_epoch_s + e.svd_s);
              plan.candidates.push_back(e);
            }
          }
        }
      }
    }
  }

  std::stable_sort(
      plan.candidates.begin(), plan.candidates.end(),
      [](const CandidateEval& a, const CandidateEval& b) {
        if (a.feasible != b.feasible) return a.feasible;
        if (a.total_s != b.total_s) return a.total_s < b.total_s;
        return std::tie(a.rank_ratio, a.hybrid_k, a.warmup_epochs,
                        a.reproject_every, a.bucket_bytes, a.workers,
                        a.method) <
               std::tie(b.rank_ratio, b.hybrid_k, b.warmup_epochs,
                        b.reproject_every, b.bucket_bytes, b.workers,
                        b.method);
      });
  return plan;
}

}  // namespace pf::plan
