#include "plan/comm_sim.h"

#include <algorithm>
#include <cmath>

namespace pf::plan {

namespace {

double ceil_log2(int p) {
  int bits = 0;
  int v = p - 1;
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return static_cast<double>(bits);  // ceil(log2 p) for p >= 1
}

}  // namespace

const char* coll_name(Coll c) {
  switch (c) {
    case Coll::kAllreduce:
      return "allreduce";
    case Coll::kReduceScatter:
      return "reduce-scatter";
    case Coll::kAllgather:
      return "allgather";
    case Coll::kBroadcast:
      return "broadcast";
    case Coll::kAllToAll:
      return "all-to-all";
  }
  return "?";
}

double collective_seconds_flat(Coll c, int64_t bytes, int p, double alpha_s,
                               double bandwidth_bytes_per_s) {
  if (p <= 1 || bytes <= 0) return 0;
  const double pd = p;
  const double n = static_cast<double>(bytes);
  const double B = bandwidth_bytes_per_s;
  switch (c) {
    case Coll::kAllreduce:
      // Must stay expression-identical to dist::CostModel::allreduce_seconds
      // so rank-ratio-1.0 plans reproduce the DDP prediction bitwise.
      return 2.0 * (pd - 1) * alpha_s + 2.0 * n * (pd - 1) / pd / B;
    case Coll::kReduceScatter:
      return (pd - 1) * alpha_s + n * (pd - 1) / pd / B;
    case Coll::kAllgather:
      // Expression-identical to dist::CostModel::allgather_seconds.
      return (pd - 1) * alpha_s + n * (pd - 1) / B;
    case Coll::kBroadcast:
      return ceil_log2(p) * (alpha_s + n / B);
    case Coll::kAllToAll:
      return (pd - 1) * alpha_s + n * (pd - 1) / pd / B;
  }
  return 0;
}

double collective_seconds(Coll c, int64_t bytes, int p,
                          const dist::HardwareProfile& hw) {
  if (p <= 1 || bytes <= 0) return 0;
  const int m = std::max(1, hw.workers_per_node);
  // Flat regimes: single-level profile, or the whole job inside one node.
  if (m == 1) {
    return collective_seconds_flat(c, bytes, p, hw.alpha_s,
                                   hw.bandwidth_bytes_per_s);
  }
  if (p <= m) {
    return collective_seconds_flat(c, bytes, p, hw.intra_alpha_s,
                                   hw.intra_bandwidth_bytes_per_s);
  }

  // Two-level decomposition: g node groups of m ranks. Ranks inside a node
  // use the fast link; the m concurrent inter-node shard-rings share each
  // node's single slow NIC, so their bandwidth terms add up to the full
  // payload while the latency term is paid once per inter round.
  const int g = std::max(2, (p + m - 1) / m);
  const double gd = g, md = m;
  const double n = static_cast<double>(bytes);
  const double Bf = hw.intra_bandwidth_bytes_per_s;
  const double Bs = hw.bandwidth_bytes_per_s;
  const double af = hw.intra_alpha_s;
  const double as = hw.alpha_s;
  auto flat = [&](Coll cc, double nn, int pp, double a, double B) {
    return collective_seconds_flat(cc, static_cast<int64_t>(nn), pp, a, B);
  };
  switch (c) {
    case Coll::kAllreduce:
      // intra reduce-scatter -> each rank owns n/m; m shard allreduces
      // across g nodes (NIC carries 2 n (g-1)/g total); intra allgather.
      return flat(Coll::kReduceScatter, n, m, af, Bf) +
             2.0 * (gd - 1) * as + 2.0 * n * (gd - 1) / gd / Bs +
             flat(Coll::kAllgather, n / md, m, af, Bf);
    case Coll::kReduceScatter:
      return flat(Coll::kReduceScatter, n, m, af, Bf) +
             (gd - 1) * as + n * (gd - 1) / gd / Bs;
    case Coll::kAllgather:
      // intra allgather (n per rank -> n*m per node), then the node's NIC
      // rings the aggregated n*m across g nodes.
      return flat(Coll::kAllgather, n, m, af, Bf) +
             (gd - 1) * as + n * md * (gd - 1) / Bs;
    case Coll::kBroadcast:
      // inter-node tree among node leaders, then intra-node tree.
      return ceil_log2(g) * (as + n / Bs) + ceil_log2(m) * (af + n / Bf);
    case Coll::kAllToAll:
      // Intra-peers exchange over the fast link; the (p-m) remote peers'
      // slices cross the slow NIC.
      return (md - 1) * af + n * (md - 1) / static_cast<double>(p) / Bf +
             (static_cast<double>(p) - md) * as +
             n * (static_cast<double>(p) - md) / static_cast<double>(p) / Bs;
  }
  return 0;
}

double overlap_epoch_seconds(double compute_s, int64_t grad_bytes, int p,
                             const dist::HardwareProfile& hw,
                             int64_t bucket_bytes) {
  // Mirrors dist::ddp_epoch_seconds step for step; the only difference is
  // the per-bucket price, which here understands hierarchical profiles.
  const double fwd = compute_s / 3.0;
  const double bwd = compute_s - fwd;
  const int n_buckets = static_cast<int>(std::max<int64_t>(
      1, (grad_bytes + bucket_bytes - 1) / bucket_bytes));
  const int64_t per_bucket = grad_bytes / n_buckets;
  double channel_free = fwd;
  for (int i = 0; i < n_buckets; ++i) {
    const double ready = fwd + bwd * static_cast<double>(i + 1) / n_buckets;
    const double start = std::max(ready, channel_free);
    channel_free =
        start + collective_seconds(Coll::kAllreduce, per_bucket, p, hw);
  }
  return std::max(fwd + bwd, channel_free);
}

}  // namespace pf::plan
