// Per-model cost descriptors for the planner: gradient bytes, per-sample
// FLOPs, and parameter-tensor counts as functions of (rank ratio, hybrid-K),
// INTROSPECTED from freshly built models (num_params / forward_macs) rather
// than retyped -- if a model's factorization policy changes, the planner's
// numbers follow automatically.
#pragma once

#include <cstdint>
#include <string>

#include "core/trainer.h"

namespace pf::plan {

struct ModelCosts {
  std::string model;  // "resnet18" | "vgg19" | "resnet50" | "wrn50"
  double width = 1.0;
  int64_t classes = 10;
  int64_t input_hw = 32;
  double rank_ratio = 1.0;  // 1.0 = vanilla (dense)
  int hybrid_k = 0;         // model-specific factorization start index

  int64_t params = 0;
  int64_t dense_params = 0;  // the vanilla counterpart (SVD input size)
  int64_t n_param_tensors = 0;
  double fwd_flops = 0;  // per-sample forward FLOPs (2 x MACs)

  bool vanilla() const { return rank_ratio >= 1.0 || hybrid_k <= 0; }
  int64_t grad_bytes() const {
    return params * static_cast<int64_t>(sizeof(float));
  }
  // Forward+backward FLOPs for one step of `batch` samples (the standard
  // bwd ~ 2x fwd accounting used by bench_fig4_distributed).
  double step_flops(int64_t batch) const {
    return 3.0 * fwd_flops * static_cast<double>(batch);
  }
  // One-time warm-start SVD cost. kSvdFlopsPerDenseParam is calibrated
  // against the measured Table 19 numbers (bench_table19_svd_cost: ~2.4 s
  // for the 11.2M-param ResNet-18 on one core); it prices the truncated
  // factorization of every dense tensor the hybrid replaces.
  double svd_seconds(double flops_per_s) const;
};

inline constexpr double kSvdFlopsPerDenseParam = 1e4;

// Builds the model once and reads its counts. `hybrid_k` follows each
// model family's own knob: first_lowrank_block (resnet18), k_first_lowrank
// (vgg19), factorize-stage4-if-nonzero (resnet50/wrn50). rank_ratio >= 1 or
// hybrid_k == 0 describes the vanilla model.
ModelCosts describe_model(const std::string& model, double width,
                          int64_t classes, int64_t input_hw,
                          double rank_ratio, int hybrid_k);

// The matching trainer factory (shared with examples/pufferfish_cli).
core::VisionModelFactory vision_factory(const std::string& model,
                                        double width, int64_t classes,
                                        double rank_ratio, int hybrid_k);

}  // namespace pf::plan
