// Serving-density planning: how many resident engines of a model fit a
// HardwareProfile's serving memory under each artifact format (fp32 /
// int8 / bf16), and what a delta-compressed variant fleet costs on top of
// one shared base. The byte counts are INTROSPECTED -- the model is built
// and quantized through src/quant, not estimated from parameter counts --
// so the planner's models-per-GB numbers track the real freeze path.
#pragma once

#include <string>

#include "dist/hardware.h"
#include "plan/model_costs.h"

namespace pf::plan {

struct ServeDensity {
  std::string model;
  double rank_ratio = 1.0;
  int hybrid_k = 0;

  // Resident bytes of ONE engine (weights + buffers) per format. Quantized
  // formats keep biases/norms/small tensors fp32, exactly like
  // quant::commit.
  int64_t fp32_bytes = 0;
  int64_t int8_bytes = 0;
  int64_t bf16_bytes = 0;

  double fp32_per_gb = 0;  // models per GB of serving memory
  double int8_per_gb = 0;
  double bf16_per_gb = 0;

  int64_t fp32_models = 0;  // engines fitting hw.serve_mem_bytes
  int64_t int8_models = 0;
  int64_t bf16_models = 0;

  // One-line "fp32 42.9 MB (23.3/GB, 186 fit) | int8 ..." rendering.
  std::string summary() const;
};

// Builds the model (vision_factory), quantizes it at each mode, and divides
// the resulting serving footprints into hw.serve_mem_bytes.
ServeDensity serve_density(const std::string& model, double width,
                           int64_t classes, double rank_ratio, int hybrid_k,
                           const dist::HardwareProfile& hw);

}  // namespace pf::plan
