// Alpha-beta simulator for the named collectives over flat and two-level
// topologies -- the generalization of dist::CostModel's two ring formulas
// that the planner (src/plan/planner.h) prices every candidate config with.
//
// Flat (single-level) closed forms, p ranks on one link (alpha per message,
// bandwidth B), all byte counts n as seen by ONE rank:
//
//   allreduce(n)       ring reduce-scatter + allgather:
//                        2(p-1) alpha + 2 n (p-1)/p / B
//   reduce_scatter(n)  half a ring allreduce:
//                        (p-1) alpha + n (p-1)/p / B
//   allgather(n)       n contributed per rank, ring:
//                        (p-1) alpha + n (p-1) / B
//   broadcast(n)       binomial tree:
//                        ceil(log2 p) (alpha + n / B)
//   all_to_all(n)      n split evenly across peers, serialized on the NIC:
//                        (p-1) alpha + n (p-1)/p / B
//
// The flat allreduce/allgather forms are IDENTICAL (same expression, same
// evaluation order) to dist::CostModel's, so plans degenerate bitwise to the
// vanilla DDP prediction bench_fig4_distributed prints; both are validated
// against the discrete-event ring simulation to <1% in tests/plan_test.cc.
//
// Two-level topologies (hw.workers_per_node = m > 1, g = p/m nodes) use the
// standard hierarchical decompositions (intra-node phase on the fast link,
// inter-node phase on the slow link, m concurrent shard-rings sharing each
// node's one NIC); see the per-function comments in comm_sim.cc and
// DESIGN.md section 12 for the exact terms.
#pragma once

#include <cstdint>

#include "dist/hardware.h"

namespace pf::plan {

enum class Coll {
  kAllreduce,
  kReduceScatter,
  kAllgather,
  kBroadcast,
  kAllToAll,
};

const char* coll_name(Coll c);

// Flat single-link closed form (p ranks, one alpha/B link).
double collective_seconds_flat(Coll c, int64_t bytes, int p, double alpha_s,
                               double bandwidth_bytes_per_s);

// Profile-aware cost: flat when the profile is single-level or the job fits
// inside one node (p <= workers_per_node, priced on the intra link);
// hierarchical two-level otherwise. `p` is the total rank count.
double collective_seconds(Coll c, int64_t bytes, int p,
                          const dist::HardwareProfile& hw);

// DDP bucketed-overlap epoch model over an arbitrary profile: the exact
// schedule of dist::ddp_epoch_seconds (buckets ready uniformly across the
// backward 2/3 of compute, one serial comm channel) but with each bucket
// priced by collective_seconds(kAllreduce, ...), so it prices hierarchical
// profiles too. On a flat profile it equals dist::ddp_epoch_seconds exactly
// (asserted in tests/plan_test.cc).
double overlap_epoch_seconds(double compute_s, int64_t grad_bytes, int p,
                             const dist::HardwareProfile& hw,
                             int64_t bucket_bytes = 25 << 20);

}  // namespace pf::plan
