#include "plan/serve_density.h"

#include <sstream>

#include "metrics/metrics.h"
#include "quant/quantize.h"
#include "tensor/rng.h"

namespace pf::plan {

namespace {

// Serving bytes if commit() ran: current footprint minus the fp32 masters
// every set slot would release.
int64_t committed_bytes(nn::Module& m) {
  int64_t total = quant::serving_bytes(m);
  for (const quant::detail::Entry& e : quant::detail::collect_entries(m))
    if (e.slot && *e.slot)
      total -= e.tensor->numel() * static_cast<int64_t>(sizeof(float));
  return total;
}

int64_t quantized_footprint(nn::Module& m, kernels::QMode mode) {
  quant::QuantSpec spec;
  spec.mode = mode;
  quant::quantize_module(m, spec);
  const int64_t bytes = committed_bytes(m);
  quant::rollback(m);
  return bytes;
}

double per_gb(int64_t bytes) {
  return bytes > 0 ? static_cast<double>(1ll << 30) /
                         static_cast<double>(bytes)
                   : 0;
}

}  // namespace

ServeDensity serve_density(const std::string& model, double width,
                           int64_t classes, double rank_ratio, int hybrid_k,
                           const dist::HardwareProfile& hw) {
  Rng rng(0xDE5517ull);
  std::unique_ptr<nn::UnaryModule> m =
      vision_factory(model, width, classes, rank_ratio, hybrid_k)(rng);

  ServeDensity d;
  d.model = model;
  d.rank_ratio = rank_ratio;
  d.hybrid_k = hybrid_k;
  d.fp32_bytes = quant::serving_bytes(*m);
  d.int8_bytes = quantized_footprint(*m, kernels::QMode::kInt8);
  d.bf16_bytes = quantized_footprint(*m, kernels::QMode::kBf16);
  d.fp32_per_gb = per_gb(d.fp32_bytes);
  d.int8_per_gb = per_gb(d.int8_bytes);
  d.bf16_per_gb = per_gb(d.bf16_bytes);
  if (hw.serve_mem_bytes > 0) {
    d.fp32_models = d.fp32_bytes > 0 ? hw.serve_mem_bytes / d.fp32_bytes : 0;
    d.int8_models = d.int8_bytes > 0 ? hw.serve_mem_bytes / d.int8_bytes : 0;
    d.bf16_models = d.bf16_bytes > 0 ? hw.serve_mem_bytes / d.bf16_bytes : 0;
  }
  return d;
}

std::string ServeDensity::summary() const {
  const double mb = 1.0 / (1 << 20);
  std::ostringstream os;
  os << "fp32 " << metrics::fmt(static_cast<double>(fp32_bytes) * mb, 1)
     << " MB (" << metrics::fmt(fp32_per_gb, 1) << "/GB, " << fp32_models
     << " fit) | int8 "
     << metrics::fmt(static_cast<double>(int8_bytes) * mb, 1) << " MB ("
     << metrics::fmt(int8_per_gb, 1) << "/GB, " << int8_models
     << " fit) | bf16 "
     << metrics::fmt(static_cast<double>(bf16_bytes) * mb, 1) << " MB ("
     << metrics::fmt(bf16_per_gb, 1) << "/GB, " << bf16_models << " fit)";
  return os.str();
}

}  // namespace pf::plan
