#include "plan/model_costs.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "models/resnet.h"
#include "models/vgg.h"

namespace pf::plan {

double ModelCosts::svd_seconds(double flops_per_s) const {
  if (vanilla()) return 0;
  return kSvdFlopsPerDenseParam * static_cast<double>(dense_params) /
         std::max(flops_per_s, 1.0);
}

core::VisionModelFactory vision_factory(const std::string& model,
                                        double width, int64_t classes,
                                        double rank_ratio, int hybrid_k) {
  const bool hybrid = rank_ratio > 0 && rank_ratio < 1.0 && hybrid_k > 0;
  if (model == "vgg19") {
    return [=](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
      models::VggConfig cfg;
      cfg.width_mult = width;
      cfg.num_classes = classes;
      if (hybrid) {
        cfg.k_first_lowrank = hybrid_k;
        cfg.rank_ratio = rank_ratio;
      }
      return std::make_unique<models::Vgg19>(cfg, rng);
    };
  }
  if (model == "resnet18") {
    return [=](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
      models::ResNetCifarConfig cfg;
      cfg.width_mult = width;
      cfg.num_classes = classes;
      if (hybrid) {
        cfg.first_lowrank_block = hybrid_k;
        cfg.rank_ratio = rank_ratio;
      }
      return std::make_unique<models::ResNet18Cifar>(cfg, rng);
    };
  }
  if (model == "resnet50" || model == "wrn50") {
    return [=](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
      models::ResNetImageNetConfig cfg;
      cfg.width_mult = width;
      cfg.num_classes = classes;
      cfg.wide = model == "wrn50";
      if (hybrid) {
        cfg.factorize_stage4 = true;
        cfg.rank_ratio = rank_ratio;
      }
      cfg.input_hw = 32;
      return std::make_unique<models::ResNet50>(cfg, rng);
    };
  }
  return nullptr;
}

ModelCosts describe_model(const std::string& model, double width,
                          int64_t classes, int64_t input_hw,
                          double rank_ratio, int hybrid_k) {
  ModelCosts mc;
  mc.model = model;
  mc.width = width;
  mc.classes = classes;
  mc.input_hw = input_hw;
  mc.rank_ratio = rank_ratio;
  mc.hybrid_k = hybrid_k;
  const bool hybrid = rank_ratio > 0 && rank_ratio < 1.0 && hybrid_k > 0;

  Rng rng(1);  // counts do not depend on the seed
  auto fill = [&](auto& m, auto& dense) {
    mc.params = m.num_params();
    mc.dense_params = dense.num_params();
    mc.n_param_tensors = static_cast<int64_t>(m.parameters().size());
    mc.fwd_flops = 2.0 * static_cast<double>(m.forward_macs(input_hw,
                                                            input_hw));
  };
  if (model == "vgg19") {
    models::VggConfig cfg;
    cfg.width_mult = width;
    cfg.num_classes = classes;
    if (hybrid) {
      cfg.k_first_lowrank = hybrid_k;
      cfg.rank_ratio = rank_ratio;
    }
    models::VggConfig dense_cfg = cfg;
    dense_cfg.k_first_lowrank = 0;
    models::Vgg19 m(cfg, rng), dense(dense_cfg, rng);
    fill(m, dense);
  } else if (model == "resnet18") {
    models::ResNetCifarConfig cfg;
    cfg.width_mult = width;
    cfg.num_classes = classes;
    if (hybrid) {
      cfg.first_lowrank_block = hybrid_k;
      cfg.rank_ratio = rank_ratio;
    }
    models::ResNetCifarConfig dense_cfg = cfg;
    dense_cfg.first_lowrank_block = 0;
    models::ResNet18Cifar m(cfg, rng), dense(dense_cfg, rng);
    fill(m, dense);
  } else if (model == "resnet50" || model == "wrn50") {
    models::ResNetImageNetConfig cfg;
    cfg.width_mult = width;
    cfg.num_classes = classes;
    cfg.wide = model == "wrn50";
    cfg.input_hw = input_hw;
    if (hybrid) {
      cfg.factorize_stage4 = true;
      cfg.rank_ratio = rank_ratio;
    }
    models::ResNetImageNetConfig dense_cfg = cfg;
    dense_cfg.factorize_stage4 = false;
    models::ResNet50 m(cfg, rng), dense(dense_cfg, rng);
    fill(m, dense);
  } else {
    throw std::runtime_error("describe_model: unknown model " + model);
  }
  if (!hybrid) mc.dense_params = mc.params;
  return mc;
}

}  // namespace pf::plan
