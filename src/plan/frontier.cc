#include "plan/frontier.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace pf::plan {

const std::vector<FrontierPoint>& recorded_frontier() {
  // 3-seed means from the recorded ResNet-18-class runs (EXPERIMENTS.md:
  // Table 8 ablation, Figure 3(b) E_wu sweep, rank-policy knee sweep).
  // Shape, not folklore: hybrid-with-warm-up sits at the vanilla level,
  // low-rank-from-scratch clearly below it, accuracy saturates at rank
  // ratio 0.25, and over-long warm-up gives the SVD too little fine-tuning
  // room (the Fig 3(b) mid-range peak).
  static const std::vector<FrontierPoint> table = {
      {1.0, 0, 0, 0.993},    // vanilla baseline
      {0.50, 2, 2, 0.993},   // ratio sweep: saturated at and above 0.25
      {0.25, 2, 2, 0.993},
      {0.125, 2, 2, 0.983},  // below the knee: measurable drop
      {0.25, 2, 0, 0.933},   // low-rank from scratch (Table 8 contrast)
      {0.25, 2, 1, 0.967},
      {0.25, 2, 4, 0.975},   // over-warm-up: Fig 3(b) falls past the peak
      {0.25, 4, 2, 0.995},   // larger K keeps more of the net dense
      {0.25, 1, 2, 0.978},   // fully factorized (K = 1) gives a little back
  };
  return table;
}

namespace {

// The recorded table is three 1-D sweeps around the anchor (0.25, 2, 2).
constexpr double kAnchorRatio = 0.25;
constexpr int kAnchorK = 2;
constexpr int kAnchorWu = 2;

// Piecewise-linear interpolation over (x, acc) pairs, clamped outside the
// recorded range. `pts` need not be sorted (the table is small).
double interp(std::vector<std::pair<double, double>> pts, double x) {
  std::sort(pts.begin(), pts.end());
  if (x <= pts.front().first) return pts.front().second;
  if (x >= pts.back().first) return pts.back().second;
  for (size_t i = 1; i < pts.size(); ++i) {
    if (x <= pts[i].first) {
      const double t =
          (x - pts[i - 1].first) / (pts[i].first - pts[i - 1].first);
      return pts[i - 1].second + t * (pts[i].second - pts[i - 1].second);
    }
  }
  return pts.back().second;
}

}  // namespace

double predicted_accuracy(double rank_ratio, int hybrid_k,
                          int warmup_epochs) {
  double vanilla_acc = 0, anchor_acc = 0;
  std::vector<std::pair<double, double>> ratio_axis, k_axis, wu_axis;
  for (const FrontierPoint& f : recorded_frontier()) {
    if (f.rank_ratio >= 1.0) {
      vanilla_acc = f.final_acc;
      // The barely-compressed limit of the ratio sweep is the dense model.
      ratio_axis.emplace_back(1.0, f.final_acc);
      continue;
    }
    if (f.hybrid_k == kAnchorK && f.warmup_epochs == kAnchorWu)
      ratio_axis.emplace_back(f.rank_ratio, f.final_acc);
    if (f.rank_ratio == kAnchorRatio && f.warmup_epochs == kAnchorWu)
      k_axis.emplace_back(f.hybrid_k, f.final_acc);
    if (f.rank_ratio == kAnchorRatio && f.hybrid_k == kAnchorK)
      wu_axis.emplace_back(f.warmup_epochs, f.final_acc);
    if (f.rank_ratio == kAnchorRatio && f.hybrid_k == kAnchorK &&
        f.warmup_epochs == kAnchorWu)
      anchor_acc = f.final_acc;
  }
  if (rank_ratio >= 1.0 || hybrid_k <= 0) return vanilla_acc;
  // Additive deviation from the anchor, one term per recorded sweep: the
  // sweeps vary one knob at a time, so their deviations compose additively
  // to first order (a config extreme on two axes pays both penalties --
  // something nearest-neighbor lookup cannot express).
  const double acc = anchor_acc +
                     (interp(ratio_axis, rank_ratio) - anchor_acc) +
                     (interp(k_axis, hybrid_k) - anchor_acc) +
                     (interp(wu_axis, warmup_epochs) - anchor_acc);
  return std::min(1.0, std::max(0.0, acc));
}

const std::vector<MethodCosts>& recorded_methods() {
  // Payload factors follow from each encoding's definition; the per-byte
  // encode/decode rates are recorded from bench_fig4_distributed /
  // bench_fig7_binary_quant on this substrate (order-of-magnitude numbers:
  // what matters to the planner is that PowerSGD pays encode, and the
  // allgather family pays decode that grows with the worker count --
  // exactly the paper's Figure 4 / appendix F structure).
  static const std::vector<MethodCosts> table = {
      // Uncompressed flat-buffer allreduce: the optimized vanilla baseline
      // and what Pufferfish itself runs on the factorized model.
      {"allreduce", Coll::kAllreduce, 1.0, 1, 0.0, 0.0, false, 1.0},
      // PowerSGD rank 4: P and Q rounds (2 messages), tiny payload, but a
      // Gram-Schmidt + two GEMMs encode pass over every matrix gradient.
      {"powersgd-r4", Coll::kAllreduce, 0.15, 2, 4.0e-9, 1.0e-9, false,
       0.995},
      // SIGNUM: 1 bit/coordinate, majority vote decoded per peer.
      {"signum", Coll::kAllgather, 1.0 / 32.0, 1, 0.3e-9, 8.0e-9, true,
       0.95},
      // Top-k 1%: (index, value) pairs = 8 bytes per kept coordinate.
      {"topk-1pct", Coll::kAllgather, 0.02, 1, 1.5e-9, 2.0e-9, true, 0.99},
      // Variance-gated transmission (Tsuzuku et al.,
      // compress::VarianceGateReducer): per-layer mean/variance gating with
      // error feedback skips ambiguous layers, so the average payload is a
      // fraction of the dense gradient (0.6 recorded from
      // bench_adaptive_frontier on this substrate); sent layers are dense
      // floats, so the collective stays allreduce and decode is free. Error
      // feedback keeps the accuracy cost marginal.
      {"variance-gate", Coll::kAllreduce, 0.6, 1, 0.5e-9, 0.2e-9, false,
       0.998},
  };
  return table;
}

const MethodCosts& method_costs(const std::string& method) {
  for (const MethodCosts& m : recorded_methods())
    if (m.method == method) return m;
  throw std::runtime_error("plan: unknown method " + method);
}

}  // namespace pf::plan
