// The `pf plan` auto-tuner: searches (rank ratio, hybrid-K, warm-up epochs,
// DDP bucket size, worker count, compression method) for the fastest
// modeled time-to-accuracy meeting an accuracy floor -- the paper's Table
// 19/20 trade-off study turned into a decision procedure.
//
// Deterministic by construction: model costs are introspected from built
// models (model_costs.h), accuracy comes from the recorded frontier
// (frontier.h), and communication from the alpha-beta simulator
// (comm_sim.h). Same request -> bitwise-identical plan (tests/plan_test.cc
// asserts it); measurement only enters through the HardwareProfile the
// caller passes (e.g. plan::calibrated_profile) and the optional
// measured_step_seconds override.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/hardware.h"
#include "plan/frontier.h"
#include "plan/model_costs.h"

namespace pf::plan {

struct PlannerRequest {
  std::string model = "resnet18";
  double width = 1.0;
  int64_t classes = 10;
  int64_t input_hw = 32;
  int64_t per_worker_batch = 32;
  int epochs = 8;                    // recipe length (frontier scale)
  double images_per_epoch = 50000;   // CIFAR-sized default
  double accuracy_floor = 0.96;      // fraction, vs the recorded frontier
  dist::HardwareProfile hw = dist::HardwareProfile::cloud_10g();
  // true: DDP bucketed overlap hides plain-allreduce comm behind backward
  // (the bench_fig4 model). false: synchronous step accounting, matching
  // the shm executor's barrier-per-bucket schedule -- use for calibrated
  // verification against ShmDataParallelTrainer.
  bool overlap = true;
  // Measured seconds of one real vanilla fwd+bwd+step at per_worker_batch
  // (calibrate.h: measure_step_seconds). > 0 replaces the flops-derived
  // compute estimate; other configs scale it by their introspected FLOP
  // ratio, so one measurement calibrates the whole search space.
  double measured_step_seconds = 0;

  // Search grids (defaults mirror the paper's Table 19/20 knobs).
  std::vector<double> rank_ratios = {0.125, 0.25, 0.5};
  std::vector<int> hybrid_ks = {1, 2, 4};
  std::vector<int> warmup_epochs = {0, 1, 2, 4};
  std::vector<int64_t> bucket_bytes = {1 << 20, 25 << 20};
  std::vector<int> workers = {4, 8, 16};
  std::vector<std::string> methods = {"allreduce", "powersgd-r4", "signum",
                                      "topk-1pct"};
  // AB-style re-projection cadence grid (core::RankPolicy::reproject_every).
  // Each R > 0 prices the periodic full-rank refresh rounds: a dense epoch
  // (vanilla compute + dense allreduce) plus a fresh SVD, every R low-rank
  // epochs. The default {0} (never refresh) keeps existing plans unchanged.
  std::vector<int> reproject_every = {0};
};

struct CandidateEval {
  // Knobs. rank_ratio 1.0 / hybrid_k 0 = vanilla; `method` is the gradient
  // reducer (for hybrids: during warm-up -- the factorized phase always
  // runs plain allreduce, its payloads sum).
  double rank_ratio = 1.0;
  int hybrid_k = 0;
  int warmup_epochs = 0;
  int64_t bucket_bytes = 25 << 20;
  int workers = 16;
  std::string method = "allreduce";
  int reproject_every = 0;  // R > 0: refresh round every R low-rank epochs

  int64_t grad_bytes = 0;   // final-phase flat gradient
  double predicted_acc = 0; // recorded-frontier prediction
  double warmup_epoch_s = 0;
  double final_epoch_s = 0;
  double svd_s = 0;
  double total_s = 0;       // full-recipe modeled time
  bool feasible = false;    // predicted_acc >= floor

  std::string config_string() const;  // "hybrid r=0.25 K=2 wu=2 ..." label
};

struct Plan {
  PlannerRequest request;
  // Every evaluated candidate, best-first (feasible before infeasible,
  // then ascending total_s, ties broken on the knob tuple).
  std::vector<CandidateEval> candidates;

  bool has_feasible() const;
  const CandidateEval& best() const;  // throws when none feasible
  // Deterministic rendering (fixed precision): the determinism test
  // compares plans bitwise through this.
  std::string summary(int top_n = 8) const;
};

// Modeled epoch seconds for one configuration point -- exposed so tests can
// pin the degeneracy (vanilla + allreduce + flat profile == steps *
// dist::ddp_epoch_seconds, the prediction bench_fig4_distributed prints)
// and monotonicity properties. `compute_override_s` > 0 replaces the
// flops-derived per-step compute.
double modeled_epoch_seconds(const ModelCosts& costs, const MethodCosts& mc,
                             int workers, int64_t bucket_bytes,
                             int64_t per_worker_batch,
                             double images_per_epoch,
                             const dist::HardwareProfile& hw, bool overlap,
                             double compute_override_s = 0);

Plan make_plan(const PlannerRequest& req);

}  // namespace pf::plan
