// Recorded accuracy/cost data the planner's feasibility check reads.
//
// The paper's Tables 8/19/20 and Figure 3(b) are trade-off studies: rank
// ratio, hybrid-K, and warm-up epochs against final accuracy. This repo has
// re-measured them at bench scale (bench_table8_ablation_resnet18,
// bench_fig3_mitigation, bench_ablation_rank_policy; 3-seed means recorded
// in EXPERIMENTS.md); the planner treats those RECORDED numbers as the
// accuracy surface. Keeping them as data -- not re-running training inside
// the planner -- is what makes `pf plan` deterministic and instant; re-run
// the benches to refresh the table when the training recipes change.
//
// The same applies to the gradient compressors: payload factors follow from
// each encoding's definition, and the per-byte encode/decode rates are
// recorded from bench_fig4_distributed / bench_fig7_binary_quant runs on
// this substrate. bench_plan's calibrated section re-measures them with
// compress::Reducer to show the recorded rates are current.
#pragma once

#include <string>
#include <vector>

#include "plan/comm_sim.h"

namespace pf::plan {

struct FrontierPoint {
  double rank_ratio;
  int hybrid_k;
  int warmup_epochs;
  double final_acc;  // recorded mean test accuracy (fraction) at bench scale
};

// Recorded ResNet-18-class frontier (the repo's most-measured family); other
// families reuse it as a relative penalty surface, consistent with the
// paper's observation that the mitigation orderings transfer across models.
const std::vector<FrontierPoint>& recorded_frontier();

// Accuracy predicted for a candidate. The recorded table is three 1-D
// sweeps around the anchor (0.25, K=2, wu=2); the prediction composes the
// per-axis deviations additively (piecewise-linear along each sweep,
// clamped outside it), so a config extreme on two axes pays both
// penalties. Deterministic, pure function of the recorded table.
double predicted_accuracy(double rank_ratio, int hybrid_k, int warmup_epochs);

struct MethodCosts {
  std::string method;    // "allreduce" | "powersgd-r4" | "signum" | "topk-1pct"
  Coll collective;       // what the encoding is compatible with
  double payload_factor; // payload bytes per message = factor * grad bytes
  int n_messages;        // collective invocations per step
  double encode_s_per_byte;  // per worker, per byte of the DENSE gradient
  double decode_s_per_byte;  // per byte of ONE peer payload
  bool decode_scales_with_workers;  // allgather pathology (appendix F)
  double acc_factor;     // recorded accuracy multiplier vs plain allreduce
};

// The src/compress methods the planner searches over, with recorded rates.
const std::vector<MethodCosts>& recorded_methods();
const MethodCosts& method_costs(const std::string& method);

}  // namespace pf::plan
