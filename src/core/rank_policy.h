// First-class rank-allocation policies.
//
// The paper uses one global rule -- rank = 0.25 * initial rank -- and cites
// per-layer allocation (Idelbayev & Carreira-Perpinan) as future work.
// RankPolicy packages that rule plus three adaptive relatives:
//
//   * kFixedRatio    -- the paper's global rule (shape-only).
//   * kEnergy        -- per-layer spectral-energy allocation: inspect each
//                       (warm-up trained) layer's spectrum and spend rank
//                       where the energy is.
//   * kVarianceGated -- variance-based gradient compression (Tsuzuku et
//                       al.): ranks follow the fixed-ratio rule, but the
//                       warm-up phase gates per-layer gradient transmission
//                       on a mean/variance ambiguity criterion with error
//                       feedback (compress::VarianceGateReducer).
//   * kAbReproject   -- AB-Training-style periodic re-projection: every
//                       `reproject_every` epochs the trainer runs one
//                       full-rank refresh round, re-SVDs each factorized
//                       layer, and lets its rank shrink or grow under the
//                       energy criterion (nn/reproject.h).
//
// `plan(model)` walks a module tree and reports, per factorizable layer,
// the rank each policy would assign and the resulting parameter counts --
// the analysis the rank-policy ablation bench prints.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/layers.h"

namespace pf::core {

struct RankPolicy {
  enum class Kind { kFixedRatio, kEnergy, kVarianceGated, kAbReproject };
  Kind kind = Kind::kFixedRatio;
  double ratio = 0.25;    // kFixedRatio / kVarianceGated: fraction of the
                          // initial rank
  double energy = 0.9;    // kEnergy / kAbReproject: squared-spectral-mass
                          // to retain
  int64_t min_rank = 1;

  // kVarianceGated knobs: a layer's mean gradient is transmitted when its
  // squared mass exceeds vg_threshold^2 times its variance estimate; the
  // first vg_warmup_steps steps always send (moments are still warming).
  double vg_threshold = 2.0;
  int64_t vg_warmup_steps = 8;

  // kAbReproject knob: epochs between full-rank refresh rounds (0 = never,
  // which degenerates to kEnergy behaviour).
  int64_t reproject_every = 0;

  static RankPolicy fixed(double ratio) {
    RankPolicy p;
    p.kind = Kind::kFixedRatio;
    p.ratio = ratio;
    return p;
  }
  static RankPolicy energy_based(double energy, int64_t min_rank = 1) {
    RankPolicy p;
    p.kind = Kind::kEnergy;
    p.energy = energy;
    p.min_rank = min_rank;
    return p;
  }
  static RankPolicy variance_gated(double threshold,
                                   int64_t warmup_steps = 8,
                                   double ratio = 0.25) {
    RankPolicy p;
    p.kind = Kind::kVarianceGated;
    p.vg_threshold = threshold;
    p.vg_warmup_steps = warmup_steps;
    p.ratio = ratio;
    return p;
  }
  static RankPolicy ab_reproject(double energy, int64_t every,
                                 int64_t min_rank = 1) {
    RankPolicy p;
    p.kind = Kind::kAbReproject;
    p.energy = energy;
    p.reproject_every = every;
    p.min_rank = min_rank;
    return p;
  }

  // Rank for a dense (out, in)-style layer whose unrolled weight is `w`.
  // kFixedRatio / kVarianceGated ignore the values and use only the shape;
  // kEnergy / kAbReproject inspect the spectrum. The result is always
  // clamped to [1, min(rows, cols)] -- a min_rank larger than the layer's
  // full rank cannot request an over-complete factorization.
  int64_t rank_for(const Tensor& unrolled_weight) const;

  // Stable on-disk encoding (kind word + three knob words, layout per
  // kind), used by TrainState snapshots (core/checkpoint.h): a resumed run
  // verifies it was handed the policy that produced the snapshot, because
  // silently continuing a 0.25-ratio run under an energy policy would
  // fine-tune a different hybrid than the one the snapshot's phase was
  // planned for. The first three words of the kFixedRatio / kEnergy
  // layouts are identical to the legacy 3-word encoding, so v1 snapshots
  // decode by zero-extending. decode() rejects unknown kind words with a
  // clear error instead of silently treating them as kFixedRatio.
  std::array<uint64_t, 4> encode() const;
  static RankPolicy decode(const std::array<uint64_t, 4>& words);
};

// Equality compares the encoded representation: two policies are equal
// exactly when they would produce interchangeable snapshots (only the
// knobs active for the kind participate).
bool operator==(const RankPolicy& a, const RankPolicy& b);
inline bool operator!=(const RankPolicy& a, const RankPolicy& b) {
  return !(a == b);
}

// One factorizable layer's planning entry.
struct RankPlanEntry {
  std::string layer;        // type + unrolled shape, e.g. "Conv2d 576x64"
  int64_t full_rank = 0;    // min(rows, cols) of the unrolled weight
  int64_t rank = 0;         // what the policy assigns
  int64_t dense_params = 0;
  int64_t factored_params = 0;
  double retained_energy = 0;  // spectral mass the assigned rank keeps
};

struct RankPlan {
  std::vector<RankPlanEntry> entries;
  int64_t dense_params_total = 0;
  int64_t factored_params_total = 0;
  double compression() const {
    return factored_params_total > 0
               ? static_cast<double>(dense_params_total) /
                     factored_params_total
               : 1.0;
  }
};

// Walks `model` and plans ranks for every dense Conv2d / Linear layer
// (the layers warm_start would factorize). Does not modify the model.
RankPlan plan_ranks(nn::Module& model, const RankPolicy& policy);

}  // namespace pf::core
