// First-class rank-allocation policies.
//
// The paper uses one global rule -- rank = 0.25 * initial rank -- and cites
// per-layer allocation (Idelbayev & Carreira-Perpinan) as future work.
// RankPolicy packages both: the fixed-ratio rule the paper ships, and an
// energy-based rule that inspects each (warm-up trained) layer's spectrum
// and spends rank where the energy is. `plan(model)` walks a module tree
// and reports, per factorizable layer, the rank each policy would assign
// and the resulting parameter counts -- the analysis the rank-policy
// ablation bench prints.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/layers.h"

namespace pf::core {

struct RankPolicy {
  enum class Kind { kFixedRatio, kEnergy };
  Kind kind = Kind::kFixedRatio;
  double ratio = 0.25;    // kFixedRatio: fraction of the initial rank
  double energy = 0.9;    // kEnergy: squared-spectral-mass to retain
  int64_t min_rank = 1;

  static RankPolicy fixed(double ratio) {
    RankPolicy p;
    p.kind = Kind::kFixedRatio;
    p.ratio = ratio;
    return p;
  }
  static RankPolicy energy_based(double energy, int64_t min_rank = 1) {
    RankPolicy p;
    p.kind = Kind::kEnergy;
    p.energy = energy;
    p.min_rank = min_rank;
    return p;
  }

  // Rank for a dense (out, in)-style layer whose unrolled weight is `w`.
  // kFixedRatio ignores the values and uses only the shape; kEnergy
  // inspects the spectrum.
  int64_t rank_for(const Tensor& unrolled_weight) const;

  // Stable on-disk encoding (kind word, knob double-bits, min_rank), used
  // by TrainState snapshots (core/checkpoint.h): a resumed run verifies it
  // was handed the policy that produced the snapshot, because silently
  // continuing a 0.25-ratio run under an energy policy would fine-tune a
  // different hybrid than the one the snapshot's phase was planned for.
  std::array<uint64_t, 3> encode() const;
  static RankPolicy decode(const std::array<uint64_t, 3>& words);
};

bool operator==(const RankPolicy& a, const RankPolicy& b);
inline bool operator!=(const RankPolicy& a, const RankPolicy& b) {
  return !(a == b);
}

// One factorizable layer's planning entry.
struct RankPlanEntry {
  std::string layer;        // type + unrolled shape, e.g. "Conv2d 576x64"
  int64_t full_rank = 0;    // min(rows, cols) of the unrolled weight
  int64_t rank = 0;         // what the policy assigns
  int64_t dense_params = 0;
  int64_t factored_params = 0;
  double retained_energy = 0;  // spectral mass the assigned rank keeps
};

struct RankPlan {
  std::vector<RankPlanEntry> entries;
  int64_t dense_params_total = 0;
  int64_t factored_params_total = 0;
  double compression() const {
    return factored_params_total > 0
               ? static_cast<double>(dense_params_total) /
                     factored_params_total
               : 1.0;
  }
};

// Walks `model` and plans ranks for every dense Conv2d / Linear layer
// (the layers warm_start would factorize). Does not modify the model.
RankPlan plan_ranks(nn::Module& model, const RankPolicy& policy);

}  // namespace pf::core
