// Emulated mixed-precision ("AMP") support for the Table 4/5 AMP rows.
//
// Real AMP keeps fp32 master weights and runs compute in fp16. On a CPU
// float32 substrate we emulate the numerically relevant part: parameters
// are rounded to the fp16 grid for the forward/backward pass and restored
// afterwards, so training sees exactly the quantization noise AMP injects
// while the optimizer updates full-precision masters.
#pragma once

#include <cstdint>

#include "nn/module.h"

namespace pf::core {

// Round-to-nearest-even float32 -> float16 -> float32.
float to_fp16(float v);

// Quantize every element of t to the fp16 grid, in place.
void quantize_fp16(Tensor& t);

// RAII: on construction saves all parameter values of `m` and replaces them
// with their fp16-rounded versions; on destruction restores the masters.
class AmpForwardGuard {
 public:
  explicit AmpForwardGuard(nn::Module& m);
  ~AmpForwardGuard();
  AmpForwardGuard(const AmpForwardGuard&) = delete;
  AmpForwardGuard& operator=(const AmpForwardGuard&) = delete;

 private:
  std::vector<nn::Param*> params_;
  std::vector<Tensor> saved_;
};

}  // namespace pf::core
