// The heart of Pufferfish (paper Section 3, Algorithm 1): truncated-SVD
// factorization of trained full-rank weights into low-rank (U, V) pairs, and
// the "vanilla warm-up" transfer that initializes a hybrid network from a
// partially trained vanilla network.
//
// Splitting rule (Algorithm 1): W = U~ S V~^T  =>  U = U~ S^{1/2},
// V^T = S^{1/2} V~^T, truncated at the layer's rank. Convolutions are
// factorized through their unrolled (c_in k^2, c_out) matrix; BatchNorm
// weights *and running statistics* carry over unchanged, as do biases.
#pragma once

#include "nn/layers.h"
#include "nn/lstm.h"
#include "tensor/rng.h"

namespace pf::core {

struct FactorPair {
  Tensor u;  // (out, r)
  Tensor v;  // (in, r)
};

// Factorize a dense (out, in) matrix at `rank` with the S^{1/2} split.
FactorPair factorize_matrix(const Tensor& w, int64_t rank, Rng& rng);

// Relative Frobenius reconstruction error |W - U V^T| / |W|.
float reconstruction_error(const Tensor& w, const FactorPair& f);

// Dense layer -> low-rank layer weight transfer (shapes must agree).
void factorize_linear(const nn::Linear& src, nn::LowRankLinear& dst, Rng& rng);
void factorize_conv(const nn::Conv2d& src, nn::LowRankConv2d& dst, Rng& rng);
void factorize_lstm(const nn::LSTMLayer& src, nn::LowRankLSTMLayer& dst,
                    Rng& rng);

// Recursively transfers a partially trained vanilla model into a structurally
// parallel hybrid model: identical module types are copied (params and
// buffers, so BN running stats survive); (Conv2d -> LowRankConv2d),
// (Linear -> LowRankLinear) and (LSTMLayer -> LowRankLSTMLayer) pairs are
// SVD-initialized. Throws if the trees are not parallel.
void warm_start(nn::Module& vanilla, nn::Module& hybrid, Rng& rng);

// Wall-clock seconds spent in SVD during the last warm_start call
// (appendix G measures this; it is the one-time cost Pufferfish pays).
double last_warm_start_svd_seconds();

// Smallest rank whose leading singular values retain `energy` of the
// squared spectral mass of `w` (sum s_i^2). The paper fixes a global rank
// ratio of 0.25 and cites per-layer rank allocation (Idelbayev et al.) as
// future work; this utility implements the energy-based allocation so the
// rank-policy ablation bench can compare the two.
int64_t choose_rank_for_energy(const Tensor& w, double energy,
                               int64_t min_rank = 1);

// Fraction of squared spectral mass the top `rank` singular values of `w`
// retain (the inverse question: what does rank ratio 0.25 keep?).
double retained_energy(const Tensor& w, int64_t rank);

}  // namespace pf::core
