// Tape-free batched forwards shared by the trainer evaluation loops and the
// serving engines (serve::FrozenModel / serve::FrozenLstm).
//
// Before this existed, evaluate_vision / evaluate_lm / mt_eval_ppl each
// open-coded the same NoGradGuard + train(false) + forward dance; a serving
// path that re-implemented it a fourth time could silently drift (e.g. one
// caller forgetting the guard and taping an eval forward). Everything that
// runs a model without a tape now goes through these three functions, so
// eval and serving are the same code path by construction -- which is also
// what makes the "FrozenModel forward is bitwise-identical to module eval
// forward" serving guarantee trivially true.
//
// Contract: the model must already be in eval mode (dropout off, BatchNorm
// reading running stats). These functions do NOT toggle train mode -- a
// frozen serving engine is permanently in eval mode and toggling it per
// batch would be a data race under concurrent serving workers. Training
//-loop callers use EvalModeGuard to flip and restore the mode around the
// whole eval sweep.
#pragma once

#include <vector>

#include "models/lstm_lm.h"
#include "models/transformer_mt.h"
#include "nn/module.h"

namespace pf::core {

// RAII: puts a module in eval mode, restores the previous mode on exit.
class EvalModeGuard {
 public:
  explicit EvalModeGuard(nn::Module& m) : m_(m), prev_(m.is_training()) {
    m_.train(false);
  }
  ~EvalModeGuard() { m_.train(prev_); }
  EvalModeGuard(const EvalModeGuard&) = delete;
  EvalModeGuard& operator=(const EvalModeGuard&) = delete;

 private:
  nn::Module& m_;
  bool prev_;
};

// One tape-free forward of an image batch (N, C, H, W) -> logits (N, classes).
Tensor eval_forward(nn::UnaryModule& model, const Tensor& nchw);

// One tape-free LM forward: time-major ids (T*B) -> logits (T*B, vocab).
// `state` (may be null) carries hidden state across truncated-BPTT segments;
// the caller detaches it between segments exactly as in training eval.
Tensor eval_forward_lm(models::LstmLm& model, const std::vector<int64_t>& ids,
                       int64_t t_len, int64_t b,
                       std::vector<nn::LstmState>* state);

// One tape-free translation forward -> logits (B*tgt_len, vocab).
Tensor eval_forward_mt(models::TransformerMT& model,
                       const std::vector<int64_t>& src, int64_t src_len,
                       const std::vector<int64_t>& tgt_in, int64_t tgt_len,
                       int64_t b);

}  // namespace pf::core
