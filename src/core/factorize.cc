#include "core/factorize.h"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "linalg/svd.h"
#include "tensor/matmul.h"
#include "trace/trace.h"

namespace pf::core {

namespace {

double g_svd_seconds = 0;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void check(bool cond, const std::string& msg) {
  if (!cond) throw std::runtime_error("warm_start: " + msg);
}

}  // namespace

double last_warm_start_svd_seconds() { return g_svd_seconds; }

FactorPair factorize_matrix(const Tensor& w, int64_t rank, Rng& rng) {
  PF_TRACE_SCOPE_C("svd.factorize", rank);
  const double t0 = now_s();
  linalg::SvdResult svd = linalg::truncated_svd(w, rank, rng);
  g_svd_seconds += now_s() - t0;
  FactorPair f;
  f.u = svd.u;  // (out, r)
  f.v = svd.v;  // (in, r)
  const Tensor& s = svd.s;
  float* up = f.u.data();  // unshares from svd.u/v once, not per element
  float* vp = f.v.data();
  const int64_t un = f.u.size(0), vn = f.v.size(0);
  for (int64_t j = 0; j < rank; ++j) {
    const float rs = std::sqrt(std::max(0.0f, s[j]));
    for (int64_t i = 0; i < un; ++i) up[i * rank + j] *= rs;
    for (int64_t i = 0; i < vn; ++i) vp[i * rank + j] *= rs;
  }
  return f;
}

float reconstruction_error(const Tensor& w, const FactorPair& f) {
  Tensor rec = pf::matmul_nt(f.u, f.v);
  return linalg::frobenius_diff(w, rec) / std::max(1e-12f, w.norm());
}

void factorize_linear(const nn::Linear& src, nn::LowRankLinear& dst,
                      Rng& rng) {
  check(src.in_features() == dst.in_features() &&
            src.out_features() == dst.out_features(),
        "linear shape mismatch");
  FactorPair f = factorize_matrix(src.weight->value, dst.rank(), rng);
  dst.u->value = std::move(f.u);
  dst.v->value = std::move(f.v);
  if (src.bias && dst.bias) dst.bias->value = src.bias->value;
}

void factorize_conv(const nn::Conv2d& src, nn::LowRankConv2d& dst, Rng& rng) {
  check(src.c_in() == dst.c_in() && src.c_out() == dst.c_out() &&
            src.kernel() == dst.kernel(),
        "conv shape mismatch");
  const int64_t c_in = src.c_in(), c_out = src.c_out(), k = src.kernel();
  const int64_t r = dst.rank();
  // Unroll (c_out, c_in, k, k) -> (c_in*k*k, c_out): column j is the
  // vectorized j-th filter (paper Section 2.2).
  Tensor unrolled = Tensor::uninit(Shape{c_in * k * k, c_out});
  const Tensor& w = src.weight->value;
  const float* wp = w.data();
  float* unp = unrolled.data();
  for (int64_t co = 0; co < c_out; ++co)
    for (int64_t ci = 0; ci < c_in; ++ci)
      for (int64_t ki = 0; ki < k; ++ki)
        for (int64_t kj = 0; kj < k; ++kj)
          unp[((ci * k + ki) * k + kj) * c_out + co] =
              wp[((co * c_in + ci) * k + ki) * k + kj];

  FactorPair f = factorize_matrix(unrolled, r, rng);  // u (cin k^2, r), v (c_out, r)
  const Tensor& fu = f.u;
  const Tensor& fv = f.v;
  // U reshapes to the thin convolution (r, c_in, k, k).
  Tensor u4 = Tensor::uninit(Shape{r, c_in, k, k});
  const float* fup = fu.data();
  float* u4p = u4.data();
  for (int64_t rr = 0; rr < r; ++rr)
    for (int64_t ci = 0; ci < c_in; ++ci)
      for (int64_t ki = 0; ki < k; ++ki)
        for (int64_t kj = 0; kj < k; ++kj)
          u4p[((rr * c_in + ci) * k + ki) * k + kj] =
              fup[((ci * k + ki) * k + kj) * r + rr];
  // V^T becomes the 1x1 up-projection (c_out, r, 1, 1).
  Tensor v4 = Tensor::uninit(Shape{c_out, r, 1, 1});
  const float* fvp = fv.data();
  float* v4p = v4.data();
  for (int64_t co = 0; co < c_out; ++co)
    for (int64_t rr = 0; rr < r; ++rr) v4p[co * r + rr] = fvp[co * r + rr];

  dst.u->value = std::move(u4);
  dst.v->value = std::move(v4);
}

void factorize_lstm(const nn::LSTMLayer& src, nn::LowRankLSTMLayer& dst,
                    Rng& rng) {
  check(src.hidden() == dst.hidden() && src.input_dim() == dst.input_dim(),
        "lstm shape mismatch");
  const int64_t h = src.hidden(), r = dst.rank();
  // Per-gate factorization (paper Table 12): slice the fused (4h, *) weights.
  for (int gate = 0; gate < 4; ++gate) {
    Tensor wg = slice(src.w_ih->value, 0, gate * h, h);  // (h, d)
    FactorPair f = factorize_matrix(wg, r, rng);
    dst.u_ih[static_cast<size_t>(gate)]->value = std::move(f.u);
    dst.v_ih[static_cast<size_t>(gate)]->value = std::move(f.v);
    Tensor hg = slice(src.w_hh->value, 0, gate * h, h);  // (h, h)
    FactorPair fh = factorize_matrix(hg, r, rng);
    dst.u_hh[static_cast<size_t>(gate)]->value = std::move(fh.u);
    dst.v_hh[static_cast<size_t>(gate)]->value = std::move(fh.v);
  }
  dst.bias->value = src.bias->value;
}

int64_t choose_rank_for_energy(const Tensor& w, double energy,
                               int64_t min_rank) {
  linalg::SvdResult svd = linalg::gram_svd(w);
  double total = 0;
  for (int64_t i = 0; i < svd.s.numel(); ++i)
    total += static_cast<double>(svd.s[i]) * svd.s[i];
  if (total <= 0) return min_rank;
  double acc = 0;
  for (int64_t i = 0; i < svd.s.numel(); ++i) {
    acc += static_cast<double>(svd.s[i]) * svd.s[i];
    if (acc / total >= energy) return std::max(min_rank, i + 1);
  }
  return std::max(min_rank, svd.s.numel());
}

double retained_energy(const Tensor& w, int64_t rank) {
  linalg::SvdResult svd = linalg::gram_svd(w);
  double total = 0, kept = 0;
  for (int64_t i = 0; i < svd.s.numel(); ++i) {
    const double e = static_cast<double>(svd.s[i]) * svd.s[i];
    total += e;
    if (i < rank) kept += e;
  }
  return total > 0 ? kept / total : 1.0;
}

void warm_start(nn::Module& vanilla, nn::Module& hybrid, Rng& rng) {
  g_svd_seconds = 0;

  // Recursive structural pairing.
  struct Walker {
    Rng& rng;
    void walk(nn::Module& src, nn::Module& dst) {
      const std::string st = src.type_name(), dt = dst.type_name();
      if (st == dt) {
        // Copy local params and buffers positionally, recurse.
        auto& sp = src.local_params();
        auto& dp = dst.local_params();
        check(sp.size() == dp.size(),
              "param count mismatch in " + st);
        for (size_t i = 0; i < sp.size(); ++i) {
          check(sp[i].var->value.shape() == dp[i].var->value.shape(),
                "param shape mismatch in " + st + "." + sp[i].name);
          dp[i].var->value = sp[i].var->value;
        }
        auto& sb = src.local_buffers();
        auto& db = dst.local_buffers();
        check(sb.size() == db.size(), "buffer count mismatch in " + st);
        for (size_t i = 0; i < sb.size(); ++i) db[i].value = sb[i].value;
        const auto& sc = src.children();
        const auto& dc = dst.children();
        check(sc.size() == dc.size(), "child count mismatch in " + st);
        for (size_t i = 0; i < sc.size(); ++i) walk(*sc[i], *dc[i]);
        return;
      }
      if (st == "Conv2d" && dt == "LowRankConv2d") {
        factorize_conv(static_cast<nn::Conv2d&>(src),
                       static_cast<nn::LowRankConv2d&>(dst), rng);
        return;
      }
      if (st == "Linear" && dt == "LowRankLinear") {
        factorize_linear(static_cast<nn::Linear&>(src),
                         static_cast<nn::LowRankLinear&>(dst), rng);
        return;
      }
      if (st == "LSTMLayer" && dt == "LowRankLSTMLayer") {
        factorize_lstm(static_cast<nn::LSTMLayer&>(src),
                       static_cast<nn::LowRankLSTMLayer&>(dst), rng);
        return;
      }
      check(false, "unsupported pair " + st + " -> " + dt);
    }
  } walker{rng};
  walker.walk(vanilla, hybrid);
}

}  // namespace pf::core
