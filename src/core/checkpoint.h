// Full training-state snapshots: everything beyond the weights that a
// resumed run needs to continue bitwise-identically to an uninterrupted one.
//
// A Pufferfish run is deterministic given (seed, config): data order is a
// pure function of the epoch index, kernels are bitwise-reproducible at any
// PF_THREADS, and all randomness flows through Rng. So a snapshot taken at
// an epoch boundary only needs to capture the state that *evolves* across
// the boundary:
//
//   * schedule position (next epoch, global step),
//   * the factorization phase (vanilla pre-SVD vs hybrid post-SVD) plus the
//     encoded rank policy, so resuming under a different policy fails
//     loudly instead of fine-tuning the wrong hybrid,
//   * optimizer slot buffers (SGD velocity / Adam moments + step count),
//   * the exact Rng stream state(s) -- including the cached Box-Muller pair
//     -- so the warm-up -> SVD switch draws the same randomness whether or
//     not the run was interrupted.
//
// Snapshots are written with the same guarantees as weight checkpoints:
// FNV-1a checksummed payload, temp-file + rename (nn/serialize's
// atomic_write), so a crash mid-snapshot never destroys the previous one.
#pragma once

#include <string>
#include <vector>

#include "compress/compressor.h"
#include "core/rank_policy.h"
#include "nn/module.h"
#include "optim/optim.h"
#include "tensor/rng.h"

namespace pf::core {

struct TrainState {
  int64_t next_epoch = 0;   // first epoch the resumed run must execute
  int64_t global_step = 0;  // mini-batches completed (shm cluster fault plans)
  bool low_rank_phase = false;  // vanilla (pre-SVD) vs hybrid (post-SVD)
  double svd_seconds = 0;       // one-time factorization cost already paid
  double cumulative_seconds = 0;  // wall/sim clock carried across the crash
  std::array<uint64_t, 4> policy = {0, 0, 0, 0};  // RankPolicy::encode()

  Rng::State rng{};  // the harness's primary stream at the epoch boundary
  std::vector<Rng::State> worker_rngs;  // per-worker streams (shm cluster)

  std::vector<int64_t> opt_scalars;  // optimizer integer state (Adam's t)
  std::vector<Tensor> opt_tensors;   // optimizer slot buffers, stable order

  // v2 ("PUFFTST2") additions. layer_ranks: each low-rank layer's rank in
  // nn::collect_ranks order -- under kAbReproject the ranks move during
  // training, and a resumed run must re-shape its hybrid (nn::apply_ranks)
  // before loading weights. reducer: a stateful gradient reducer's evolving
  // buffers (error-feedback residuals, sign momentum, variance-gate
  // moments); dropping them on resume would silently re-lose the deferred
  // gradient mass. Both empty for v1-era configurations, and v1 snapshots
  // load with both empty (the legacy policy kinds never populate them).
  std::vector<int64_t> layer_ranks;
  compress::ReducerState reducer;

  // FNV-1a over the model's parameter and buffer bytes at snapshot time.
  // Stamped by save_snapshot, verified by load_snapshot: a crash between
  // the model write and the state write leaves a detectably "torn" pair
  // (new weights, old state) instead of a silently wrong resume.
  uint64_t model_hash = 0;
};

// FNV-1a over every parameter and buffer tensor of `model` (depth-first,
// the checkpoint order).
uint64_t hash_model(nn::Module& model);

// Snapshot / restore the optimizer part of the state. restore throws when
// the snapshot's slot count or shapes do not match `opt` (resuming with a
// different optimizer configuration than the one that produced it).
void capture_optimizer(optim::Optimizer& opt, TrainState& st);
void restore_optimizer(optim::Optimizer& opt, const TrainState& st);

// Atomic, checksummed TrainState file. Writes the v2 format ("PUFFTST2":
// 4-word policy + layer_ranks + reducer state); load also accepts v1
// files ("PUFFTST1", written by older builds) by zero-extending the
// 3-word policy -- but rejects a v1 file whose policy kind word claims an
// adaptive kind, which a v1 writer could never have produced. load throws
// on I/O failure, bad magic, truncation, or checksum mismatch.
void save_train_state(const TrainState& st, const std::string& path);
TrainState load_train_state(const std::string& path);

// One training snapshot = weights + state under one directory.
struct SnapshotPaths {
  std::string model;  // <dir>/model.ckpt   (nn::save_checkpoint v1)
  std::string state;  // <dir>/state.ckpt   (save_train_state)
};
SnapshotPaths snapshot_paths(const std::string& dir);
bool snapshot_exists(const std::string& dir);

// Writes both files (creating `dir` if needed), stamping st.model_hash so
// the pair is verifiable. Each file individually is crash-safe (atomic
// rename); a crash *between* the two writes is caught at load time by the
// hash check.
void save_snapshot(nn::Module& model, TrainState st, const std::string& dir);

// Loads the weights into `model` and returns the verified TrainState.
// Throws on any corruption, including a torn pair (model_hash mismatch).
TrainState load_snapshot(nn::Module& model, const std::string& dir);

}  // namespace pf::core
