#include "core/amp.h"

#include <bit>
#include <cmath>
#include <cstring>

namespace pf::core {

float to_fp16(float v) {
  const uint32_t bits = std::bit_cast<uint32_t>(v);
  const uint32_t sign = bits >> 31;
  int32_t exp = static_cast<int32_t>((bits >> 23) & 0xFF) - 127;
  uint32_t mant = bits & 0x7FFFFF;

  if (exp == 128) return v;  // inf/nan pass through
  if (exp > 15) {            // overflow -> inf
    return sign ? -std::numeric_limits<float>::infinity()
                : std::numeric_limits<float>::infinity();
  }
  if (exp < -24) return sign ? -0.0f : 0.0f;  // underflows to zero

  uint32_t half_mant;
  int32_t half_exp;
  if (exp < -14) {
    // Subnormal half: shift mantissa (with implicit 1) right.
    const int shift = -14 - exp;
    const uint32_t full = mant | 0x800000;
    const int total_shift = 13 + shift;
    uint32_t rounded = full >> total_shift;
    const uint32_t rem = full & ((1u << total_shift) - 1);
    const uint32_t half_ulp = 1u << (total_shift - 1);
    if (rem > half_ulp || (rem == half_ulp && (rounded & 1))) ++rounded;
    half_mant = rounded;
    half_exp = -15;  // subnormal marker
    if (half_mant == 0x400) {  // rounded up into normal range
      half_mant = 0;
      half_exp = -14;
    }
  } else {
    uint32_t rounded = mant >> 13;
    const uint32_t rem = mant & 0x1FFF;
    if (rem > 0x1000 || (rem == 0x1000 && (rounded & 1))) ++rounded;
    if (rounded == 0x400) {  // mantissa overflow
      rounded = 0;
      ++exp;
      if (exp > 15)
        return sign ? -std::numeric_limits<float>::infinity()
                    : std::numeric_limits<float>::infinity();
    }
    half_mant = rounded;
    half_exp = exp;
  }

  // Reconstruct the float value the half represents.
  float result;
  if (half_exp == -15) {
    result = std::ldexp(static_cast<float>(half_mant), -24);
  } else {
    result = std::ldexp(1.0f + static_cast<float>(half_mant) / 1024.0f,
                        half_exp);
  }
  return sign ? -result : result;
}

void quantize_fp16(Tensor& t) {
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = to_fp16(t[i]);
}

AmpForwardGuard::AmpForwardGuard(nn::Module& m) : params_(m.parameters()) {
  saved_.reserve(params_.size());
  for (nn::Param* p : params_) {
    saved_.push_back(p->var->value);
    quantize_fp16(p->var->value);
  }
}

AmpForwardGuard::~AmpForwardGuard() {
  for (size_t i = 0; i < params_.size(); ++i)
    params_[i]->var->value = std::move(saved_[i]);
}

}  // namespace pf::core
