#include "core/trainer.h"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/amp.h"
#include "core/checkpoint.h"
#include "core/eval.h"
#include "metrics/metrics.h"
#include "nn/reproject.h"
#include "optim/optim.h"
#include "runtime/thread_pool.h"
#include "trace/trace.h"

namespace pf::core {

namespace {

// One SGD epoch over the image dataset; returns mean train loss.
double vision_epoch(nn::UnaryModule& model, optim::SGD& opt,
                    const data::SyntheticImages& ds,
                    const VisionTrainConfig& cfg, int epoch) {
  model.train(true);
  double loss_sum = 0;
  int64_t batches = 0;
  for (const data::ImageBatch& b : ds.train_batches(cfg.batch, epoch)) {
    model.zero_grad();
    ag::Var loss;
    {
      std::optional<AmpForwardGuard> amp;
      if (cfg.amp) amp.emplace(model);
      ag::Var logits = model.forward(ag::leaf(b.images));
      loss = ag::cross_entropy(logits, b.labels, cfg.label_smoothing);
      ag::backward(loss);
    }  // masters restored before the step
    opt.step();
    loss_sum += loss->value[0];
    ++batches;
  }
  return loss_sum / std::max<int64_t>(1, batches);
}

}  // namespace

EvalResult evaluate_vision(nn::UnaryModule& model,
                           const data::SyntheticImages& ds, int64_t batch,
                           float label_smoothing) {
  PF_TRACE_SCOPE("train.eval");
  EvalModeGuard eval_mode(model);
  ag::NoGradGuard ng;
  EvalResult r;
  int64_t total = 0;
  for (int64_t start = 0; start < ds.test_size(); start += batch) {
    data::ImageBatch b = ds.test_batch(start, batch);
    const int64_t n = b.images.size(0);
    Tensor logits = eval_forward(model, b.images);
    ag::Var loss =
        ag::cross_entropy(ag::leaf(logits), b.labels, label_smoothing);
    r.acc += metrics::topk_accuracy(logits, b.labels, 1) * n;
    const int64_t k5 = std::min<int64_t>(5, logits.size(1));
    r.top5 += metrics::topk_accuracy(logits, b.labels, k5) * n;
    r.loss += loss->value[0] * n;
    total += n;
  }
  r.acc /= total;
  r.top5 /= total;
  r.loss /= total;
  return r;
}

VisionResult train_vision(const VisionModelFactory& make_vanilla,
                          const VisionModelFactory& make_hybrid,
                          const data::SyntheticImages& ds,
                          const VisionTrainConfig& cfg) {
  metrics::Timer total_timer;
  // cfg.trace_path turns the global tracer on for this run and exports the
  // merged timeline when training returns. The tracer records into rings
  // that any concurrently traced code shares; runs that export should not
  // overlap other traced work.
  const bool tracing = !cfg.trace_path.empty();
  const bool trace_prev = trace::enabled();
  if (tracing) {
    trace::set_enabled(true);
    trace::drain();  // start the export from a clean timeline
  }
  if (cfg.threads > 0) runtime::set_threads(cfg.threads);
  Rng rng(cfg.seed * 0x9E3779B9u + 17);
  VisionResult out;

  const int warmup = make_hybrid ? cfg.warmup_epochs : cfg.epochs;
  optim::StepDecay sched(cfg.lr, cfg.lr_milestones, cfg.lr_factor);

  std::unique_ptr<nn::UnaryModule> model = make_vanilla(rng);
  auto opt = std::make_unique<optim::SGD>(model->parameters(), cfg.lr,
                                          cfg.momentum, cfg.weight_decay);
  bool low_rank_phase = false;
  int start_epoch = 0;
  double carried_seconds = 0;

  const bool resuming = cfg.resume && !cfg.checkpoint_dir.empty() &&
                        snapshot_exists(cfg.checkpoint_dir);
  if (resuming) {
    // The snapshot owns every piece of evolving state. The factory calls
    // here only donate the module tree's *shapes*; whatever they consumed
    // from `rng` is undone when the snapshot's stream state is restored.
    TrainState st =
        load_train_state(snapshot_paths(cfg.checkpoint_dir).state);
    if (RankPolicy::decode(st.policy) != cfg.rank_policy)
      throw std::runtime_error(
          "resume: snapshot was produced under a different rank policy; "
          "continuing would fine-tune a different hybrid");
    if (st.low_rank_phase) {
      if (!make_hybrid)
        throw std::runtime_error(
            "resume: snapshot is in the low-rank phase but no hybrid "
            "factory was given");
      model = make_hybrid(rng);
      // Under kAbReproject the per-layer ranks drift away from what the
      // factory bakes in; re-shape to the snapshot's ranks BEFORE building
      // the optimizer (velocity shapes) and loading weights (shape check).
      if (!st.layer_ranks.empty())
        nn::apply_ranks(*model, st.layer_ranks);
      opt = std::make_unique<optim::SGD>(model->parameters(), cfg.lr,
                                         cfg.momentum, cfg.weight_decay);
    }
    st = load_snapshot(*model, cfg.checkpoint_dir);  // weights + torn check
    restore_optimizer(*opt, st);
    rng.set_state(st.rng);
    low_rank_phase = st.low_rank_phase;
    start_epoch = static_cast<int>(st.next_epoch);
    out.svd_seconds = st.svd_seconds;
    carried_seconds = st.cumulative_seconds;
  } else if (make_hybrid && warmup == 0) {
    // Low-rank from scratch: no warm-up, fresh hybrid.
    model = make_hybrid(rng);
    opt = std::make_unique<optim::SGD>(model->parameters(), cfg.lr,
                                       cfg.momentum, cfg.weight_decay);
    low_rank_phase = true;
    out.svd_seconds = 0;
  }

  for (int epoch = start_epoch; epoch < cfg.epochs; ++epoch) {
    if (make_hybrid && !low_rank_phase && epoch == warmup) {
      // Algorithm 1: factorize the partially trained vanilla weights.
      std::unique_ptr<nn::UnaryModule> hybrid = make_hybrid(rng);
      {
        // The Table-19 one-shot factorization cost, visible as one span.
        PF_TRACE_SCOPE_C("train.svd_warm_start", epoch);
        warm_start(*model, *hybrid, rng);
      }
      out.svd_seconds = last_warm_start_svd_seconds();
      model = std::move(hybrid);
      opt = std::make_unique<optim::SGD>(model->parameters(), sched.at_epoch(epoch),
                                         cfg.momentum, cfg.weight_decay);
      low_rank_phase = true;
    }
    // AB-style refresh round (nn/reproject.h): every reproject_every
    // epochs of the low-rank phase, densify, train the dense model for one
    // epoch so the spectrum can move, then re-SVD at policy-chosen ranks.
    const bool refresh =
        cfg.rank_policy.kind == RankPolicy::Kind::kAbReproject &&
        cfg.rank_policy.reproject_every > 0 && low_rank_phase &&
        make_hybrid && epoch > warmup &&
        (epoch - warmup) % cfg.rank_policy.reproject_every == 0;

    opt->set_lr(sched.at_epoch(epoch));
    metrics::Timer t;
    double train_loss;
    if (refresh) {
      PF_TRACE_SCOPE_C("train.epoch.refresh", epoch);
      std::unique_ptr<nn::UnaryModule> vanilla = make_vanilla(rng);
      nn::defactorize(*model, *vanilla);
      optim::SGD refresh_opt(vanilla->parameters(), sched.at_epoch(epoch),
                             cfg.momentum, cfg.weight_decay);
      train_loss = vision_epoch(*vanilla, refresh_opt, ds, cfg, epoch);
      nn::ReprojectReport rep;
      {
        PF_TRACE_SCOPE_C("train.svd_reproject", epoch);
        rep = nn::reproject(*vanilla, *model, cfg.rank_policy, rng);
      }
      out.svd_seconds += rep.svd_seconds;
      // Ranks may have moved: re-derive the velocity slots (changed shapes
      // restart from zero -- the re-SVD re-based those factors).
      opt->rebind_slots();
    } else {
      PF_TRACE_SCOPE_C(
          low_rank_phase ? "train.epoch.finetune" : "train.epoch.warmup",
          epoch);
      train_loss = vision_epoch(*model, *opt, ds, cfg, epoch);
    }
    const double secs = t.seconds();
    const EvalResult ev = evaluate_vision(*model, ds, cfg.batch,
                                          cfg.label_smoothing);
    out.epochs.push_back(EpochRecord{epoch, train_loss, ev.acc, ev.top5, secs,
                                     low_rank_phase, refresh});
    out.final_acc = ev.acc;
    out.final_top5 = ev.top5;
    out.final_loss = ev.loss;

    if (!cfg.checkpoint_dir.empty() &&
        ((epoch + 1) % std::max(1, cfg.checkpoint_every) == 0 ||
         epoch + 1 == cfg.epochs)) {
      TrainState st;
      st.next_epoch = epoch + 1;
      st.low_rank_phase = low_rank_phase;
      st.svd_seconds = out.svd_seconds;
      st.cumulative_seconds = carried_seconds + total_timer.seconds();
      st.policy = cfg.rank_policy.encode();
      st.rng = rng.state();
      st.layer_ranks = nn::collect_ranks(*model);
      capture_optimizer(*opt, st);
      save_snapshot(*model, st, cfg.checkpoint_dir);
    }
  }
  if (out.epochs.empty() && start_epoch >= cfg.epochs) {
    // Resumed from a snapshot of an already-finished run: report its final
    // quality instead of zeros.
    const EvalResult ev =
        evaluate_vision(*model, ds, cfg.batch, cfg.label_smoothing);
    out.final_acc = ev.acc;
    out.final_top5 = ev.top5;
    out.final_loss = ev.loss;
  }
  out.params = model->num_params();
  out.total_seconds = carried_seconds + total_timer.seconds();
  if (tracing) {
    trace::write_chrome_json(cfg.trace_path);
    trace::set_enabled(trace_prev);
  }
  return out;
}

// ---------------- LSTM LM ----------------

double evaluate_lm(models::LstmLm& model, const std::vector<int64_t>& stream,
                   int64_t batch, int64_t bptt) {
  EvalModeGuard eval_mode(model);
  ag::NoGradGuard ng;
  double loss_sum = 0;
  int64_t tokens = 0;
  std::vector<nn::LstmState> state;
  for (const auto& b : data::SyntheticCorpus::batchify(stream, batch, bptt)) {
    Tensor logits = eval_forward_lm(model, b.input, b.t, b.b, &state);
    models::LstmLm::detach(state);
    ag::Var loss = ag::cross_entropy(ag::leaf(logits), b.target);
    loss_sum += loss->value[0] * static_cast<double>(b.t * b.b);
    tokens += b.t * b.b;
  }
  return metrics::perplexity(loss_sum / std::max<int64_t>(1, tokens));
}

namespace {

double lm_epoch(models::LstmLm& model, const data::SyntheticCorpus& corpus,
                const LmTrainConfig& cfg, float lr) {
  model.train(true);
  auto params = model.parameters();
  optim::SGD opt(params, lr);
  double loss_sum = 0;
  int64_t batches = 0;
  std::vector<nn::LstmState> state;
  for (const auto& b :
       data::SyntheticCorpus::batchify(corpus.train(), cfg.batch, cfg.bptt)) {
    model.zero_grad();
    ag::Var logits = model.forward(b.input, b.t, b.b, &state);
    models::LstmLm::detach(state);
    ag::Var loss = ag::cross_entropy(logits, b.target);
    ag::backward(loss);
    optim::clip_grad_norm(params, cfg.clip);
    opt.step();
    loss_sum += loss->value[0];
    ++batches;
  }
  return loss_sum / std::max<int64_t>(1, batches);
}

}  // namespace

LmResult train_lm(const LmModelFactory& make_vanilla,
                  const LmModelFactory& make_lowrank,
                  const data::SyntheticCorpus& corpus,
                  const LmTrainConfig& cfg) {
  metrics::Timer total_timer;
  Rng rng(cfg.seed * 0x9E3779B9u + 31);
  LmResult out;

  const int warmup = make_lowrank ? cfg.warmup_epochs : cfg.epochs;
  std::unique_ptr<models::LstmLm> model = make_vanilla(rng);
  bool low_rank_phase = false;
  if (make_lowrank && warmup == 0) {
    model = make_lowrank(rng);
    low_rank_phase = true;
  }

  optim::ReduceOnPlateau plateau(cfg.lr, cfg.plateau_factor);
  double last_train_loss = 0;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    if (make_lowrank && !low_rank_phase && epoch == warmup) {
      std::unique_ptr<models::LstmLm> lowrank = make_lowrank(rng);
      {
        PF_TRACE_SCOPE_C("train.svd_warm_start", epoch);
        warm_start(*model, *lowrank, rng);
      }
      out.svd_seconds = last_warm_start_svd_seconds();
      model = std::move(lowrank);
      low_rank_phase = true;
    }
    PF_TRACE_SCOPE_C(
        low_rank_phase ? "train.epoch.finetune" : "train.epoch.warmup", epoch);
    last_train_loss = lm_epoch(*model, corpus, cfg, plateau.lr());
    const double val_ppl =
        evaluate_lm(*model, corpus.valid(), cfg.batch, cfg.bptt);
    out.val_ppl_series.push_back(val_ppl);
    plateau.observe(static_cast<float>(val_ppl));
  }
  out.train_ppl = metrics::perplexity(last_train_loss);
  out.val_ppl = out.val_ppl_series.back();
  out.test_ppl = evaluate_lm(*model, corpus.test(), cfg.batch, cfg.bptt);
  out.params = model->num_params();
  out.total_seconds = total_timer.seconds();
  return out;
}

// ---------------- Transformer MT ----------------

namespace {

double mt_epoch(models::TransformerMT& model, optim::Adam& opt,
                const data::SyntheticTranslation& ds,
                const MtTrainConfig& cfg, int epoch) {
  model.train(true);
  auto params = model.parameters();
  double loss_sum = 0;
  int64_t batches = 0;
  for (const auto& b : ds.batches(ds.train(), cfg.batch, epoch)) {
    model.zero_grad();
    ag::Var logits =
        model.forward(b.src, b.src_len, b.tgt_in, b.tgt_len, b.b);
    ag::Var loss =
        ag::cross_entropy(logits, b.tgt_out, cfg.label_smoothing, -100);
    ag::backward(loss);
    optim::clip_grad_norm(params, cfg.clip);
    opt.step();
    loss_sum += loss->value[0];
    ++batches;
  }
  return loss_sum / std::max<int64_t>(1, batches);
}

double mt_eval_ppl(models::TransformerMT& model,
                   const data::SyntheticTranslation& ds, int64_t batch) {
  EvalModeGuard eval_mode(model);
  ag::NoGradGuard ng;
  double loss_sum = 0;
  int64_t batches = 0;
  for (const auto& b : ds.batches(ds.test(), batch, /*epoch=*/0)) {
    Tensor logits =
        eval_forward_mt(model, b.src, b.src_len, b.tgt_in, b.tgt_len, b.b);
    // No label smoothing in eval perplexity.
    ag::Var loss = ag::cross_entropy(ag::leaf(logits), b.tgt_out, 0.0f, -100);
    loss_sum += loss->value[0];
    ++batches;
  }
  return metrics::perplexity(loss_sum / std::max<int64_t>(1, batches));
}

double mt_eval_bleu(models::TransformerMT& model,
                    const data::SyntheticTranslation& ds, int64_t batch) {
  EvalModeGuard eval_mode(model);
  std::vector<std::vector<int64_t>> hyps, refs;
  for (const auto& b : ds.batches(ds.test(), batch, /*epoch=*/0)) {
    auto decoded = model.greedy_decode(
        b.src, b.src_len, b.b, data::SyntheticTranslation::kBos,
        data::SyntheticTranslation::kEos, b.tgt_len + 4);
    for (int64_t i = 0; i < b.b; ++i) {
      // Strip specials from hypothesis and reference.
      std::vector<int64_t> h;
      for (int64_t tok : decoded[static_cast<size_t>(i)])
        if (tok > data::SyntheticTranslation::kEos) h.push_back(tok);
      std::vector<int64_t> r;
      for (int64_t t = 0; t < b.tgt_len; ++t) {
        const int64_t tok = b.tgt_out[static_cast<size_t>(i * b.tgt_len + t)];
        if (tok > data::SyntheticTranslation::kEos) r.push_back(tok);
      }
      hyps.push_back(std::move(h));
      refs.push_back(std::move(r));
    }
  }
  return metrics::bleu4(hyps, refs);
}

}  // namespace

MtResult train_mt(const MtModelFactory& make_vanilla,
                  const MtModelFactory& make_lowrank,
                  const data::SyntheticTranslation& ds,
                  const MtTrainConfig& cfg) {
  metrics::Timer total_timer;
  Rng rng(cfg.seed * 0x9E3779B9u + 47);
  MtResult out;

  const int warmup = make_lowrank ? cfg.warmup_epochs : cfg.epochs;
  std::unique_ptr<models::TransformerMT> model = make_vanilla(rng);
  auto opt = std::make_unique<optim::Adam>(model->parameters(), cfg.lr, 0.9f,
                                           0.98f);
  bool low_rank_phase = false;
  if (make_lowrank && warmup == 0) {
    model = make_lowrank(rng);
    opt = std::make_unique<optim::Adam>(model->parameters(), cfg.lr, 0.9f,
                                        0.98f);
    low_rank_phase = true;
  }

  double last_train_loss = 0;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    if (make_lowrank && !low_rank_phase && epoch == warmup) {
      std::unique_ptr<models::TransformerMT> lowrank = make_lowrank(rng);
      {
        PF_TRACE_SCOPE_C("train.svd_warm_start", epoch);
        warm_start(*model, *lowrank, rng);
      }
      out.svd_seconds = last_warm_start_svd_seconds();
      model = std::move(lowrank);
      opt = std::make_unique<optim::Adam>(model->parameters(), cfg.lr, 0.9f,
                                          0.98f);
      low_rank_phase = true;
    }
    PF_TRACE_SCOPE_C(
        low_rank_phase ? "train.epoch.finetune" : "train.epoch.warmup", epoch);
    last_train_loss = mt_epoch(*model, *opt, ds, cfg, epoch);
  }
  out.train_ppl = metrics::perplexity(last_train_loss);
  out.val_ppl = mt_eval_ppl(*model, ds, cfg.batch);
  out.bleu = mt_eval_bleu(*model, ds, cfg.batch);
  out.params = model->num_params();
  out.total_seconds = total_timer.seconds();
  return out;
}

}  // namespace pf::core
