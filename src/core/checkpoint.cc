#include "core/checkpoint.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "fault/fault.h"
#include "nn/serialize.h"
#include "trace/trace.h"

namespace pf::core {

namespace {

// On-disk magics for TrainState files: v1 ("PUFFTST1", 3-word policy, no
// layer_ranks / reducer state) is read-only legacy; v2 ("PUFFTST2") is
// what save_train_state writes.
constexpr uint64_t kTrainStateMagicV1 = 0x5055464654535431ull;
constexpr uint64_t kTrainStateMagicV2 = 0x5055464654535432ull;

void put_u64(std::vector<char>& buf, uint64_t v) {
  const char* p = reinterpret_cast<const char*>(&v);
  buf.insert(buf.end(), p, p + sizeof(v));
}

void put_f64(std::vector<char>& buf, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(buf, bits);
}

void put_rng(std::vector<char>& buf, const Rng::State& st) {
  for (uint64_t w : st.s) put_u64(buf, w);
  put_u64(buf, st.has_cached ? 1 : 0);
  put_f64(buf, st.cached);
}

struct Reader {
  const char* p;
  size_t left;
  uint64_t u64() {
    if (left < sizeof(uint64_t))
      throw std::runtime_error("train state: truncated payload");
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    p += sizeof(v);
    left -= sizeof(v);
    return v;
  }
  double f64() {
    const uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  Rng::State rng() {
    Rng::State st;
    for (uint64_t& w : st.s) w = u64();
    st.has_cached = u64() != 0;
    st.cached = f64();
    return st;
  }
  void floats(float* dst, size_t n) {
    const size_t bytes = n * sizeof(float);
    if (left < bytes)
      throw std::runtime_error("train state: truncated tensor data");
    std::memcpy(dst, p, bytes);
    p += bytes;
    left -= bytes;
  }
};

void hash_tensors(nn::Module& m, uint64_t& h) {
  auto mix = [&h](const Tensor& t) {
    // Chain FNV over each tensor's bytes; seeding with the running hash
    // keeps tensor boundaries significant.
    const char* p = reinterpret_cast<const char*>(
        std::as_const(t).data());
    const size_t n = static_cast<size_t>(t.numel()) * sizeof(float);
    h ^= nn::fnv1a(p, n);
    h *= 0x100000001B3ull;
  };
  for (nn::Param& p : m.local_params()) mix(p.var->value);
  for (nn::Buffer& b : m.local_buffers()) mix(b.value);
  for (nn::Module* c : m.children()) hash_tensors(*c, h);
}

}  // namespace

uint64_t hash_model(nn::Module& model) {
  uint64_t h = 0xCBF29CE484222325ull;
  hash_tensors(model, h);
  return h;
}

void capture_optimizer(optim::Optimizer& opt, TrainState& st) {
  st.opt_scalars = opt.state_scalars();
  st.opt_tensors.clear();
  for (Tensor* t : opt.state_tensors()) {
    // Deep copy: the optimizer keeps mutating its buffers after the
    // snapshot is taken.
    Tensor copy = Tensor::uninit(t->shape());
    std::memcpy(copy.data(), std::as_const(*t).data(),
                static_cast<size_t>(t->numel()) * sizeof(float));
    st.opt_tensors.push_back(std::move(copy));
  }
}

void restore_optimizer(optim::Optimizer& opt, const TrainState& st) {
  std::vector<Tensor*> slots = opt.state_tensors();
  if (slots.size() != st.opt_tensors.size())
    throw std::runtime_error(
        "train state: optimizer slot count mismatch (snapshot " +
        std::to_string(st.opt_tensors.size()) + ", optimizer " +
        std::to_string(slots.size()) + ") -- resuming with a different "
        "optimizer configuration than the one that produced the snapshot");
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i]->shape() != st.opt_tensors[i].shape())
      throw std::runtime_error("train state: optimizer slot shape mismatch");
    std::memcpy(slots[i]->data(), std::as_const(st.opt_tensors[i]).data(),
                static_cast<size_t>(slots[i]->numel()) * sizeof(float));
  }
  opt.set_state_scalars(st.opt_scalars);
}

namespace {

void put_tensor(std::vector<char>& payload, const Tensor& t) {
  put_u64(payload, static_cast<uint64_t>(t.dim()));
  for (int64_t d = 0; d < t.dim(); ++d)
    put_u64(payload, static_cast<uint64_t>(t.size(d)));
  const char* data = reinterpret_cast<const char*>(std::as_const(t).data());
  payload.insert(payload.end(), data,
                 data + static_cast<size_t>(t.numel()) * sizeof(float));
}

Tensor read_tensor(Reader& r) {
  const uint64_t dim = r.u64();
  Shape shape(dim);
  for (uint64_t d = 0; d < dim; ++d)
    shape[d] = static_cast<int64_t>(r.u64());
  Tensor t = Tensor::uninit(std::move(shape));
  r.floats(t.data(), static_cast<size_t>(t.numel()));
  return t;
}

}  // namespace

void save_train_state(const TrainState& st, const std::string& path) {
  std::vector<char> payload;
  put_u64(payload, static_cast<uint64_t>(st.next_epoch));
  put_u64(payload, static_cast<uint64_t>(st.global_step));
  put_u64(payload, st.low_rank_phase ? 1 : 0);
  put_f64(payload, st.svd_seconds);
  put_f64(payload, st.cumulative_seconds);
  for (uint64_t w : st.policy) put_u64(payload, w);
  put_u64(payload, st.model_hash);
  put_rng(payload, st.rng);
  put_u64(payload, st.worker_rngs.size());
  for (const Rng::State& r : st.worker_rngs) put_rng(payload, r);
  put_u64(payload, st.opt_scalars.size());
  for (int64_t s : st.opt_scalars) put_u64(payload, static_cast<uint64_t>(s));
  put_u64(payload, st.opt_tensors.size());
  for (const Tensor& t : st.opt_tensors) put_tensor(payload, t);
  // v2 tail: moving per-layer ranks + stateful-reducer buffers.
  put_u64(payload, st.layer_ranks.size());
  for (int64_t r : st.layer_ranks) put_u64(payload, static_cast<uint64_t>(r));
  put_u64(payload, st.reducer.scalars.size());
  for (int64_t s : st.reducer.scalars)
    put_u64(payload, static_cast<uint64_t>(s));
  put_u64(payload, st.reducer.tensors.size());
  for (const Tensor& t : st.reducer.tensors) put_tensor(payload, t);

  nn::atomic_write(path, [&](std::ofstream& os) {
    auto write_u64 = [&os](uint64_t v) {
      fault::on_write_bytes(sizeof(v));
      os.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    write_u64(kTrainStateMagicV2);
    write_u64(nn::fnv1a(payload.data(), payload.size()));
    write_u64(payload.size());
    fault::on_write_bytes(static_cast<int64_t>(payload.size()));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  });
}

TrainState load_train_state(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("train state: cannot open " + path);
  auto read_u64 = [&is, &path]() {
    uint64_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!is) throw std::runtime_error("train state: truncated file " + path);
    return v;
  };
  const uint64_t magic = read_u64();
  if (magic != kTrainStateMagicV1 && magic != kTrainStateMagicV2)
    throw std::runtime_error("train state: bad magic in " + path);
  const bool v1 = magic == kTrainStateMagicV1;
  const uint64_t checksum = read_u64();
  const uint64_t payload_bytes = read_u64();
  std::vector<char> payload(payload_bytes);
  is.read(payload.data(), static_cast<std::streamsize>(payload_bytes));
  if (!is || static_cast<uint64_t>(is.gcount()) != payload_bytes)
    throw std::runtime_error("train state: truncated payload in " + path);
  if (nn::fnv1a(payload.data(), payload.size()) != checksum)
    throw std::runtime_error("train state: checksum mismatch in " + path +
                             " (corrupt or truncated snapshot)");

  Reader r{payload.data(), payload.size()};
  TrainState st;
  st.next_epoch = static_cast<int64_t>(r.u64());
  st.global_step = static_cast<int64_t>(r.u64());
  st.low_rank_phase = r.u64() != 0;
  st.svd_seconds = r.f64();
  st.cumulative_seconds = r.f64();
  // v1 wrote 3 policy words; the 4-word layouts of the legacy kinds are
  // their 3-word layouts zero-extended, so reading 3 + leaving word 3 at 0
  // decodes identically.
  const size_t n_policy_words = v1 ? 3 : 4;
  for (size_t i = 0; i < n_policy_words; ++i) st.policy[i] = r.u64();
  if (v1 && st.policy[0] >= 2)
    throw std::runtime_error(
        "train state: v1 snapshot " + path + " carries policy kind word " +
        std::to_string(st.policy[0]) +
        ", which no v1 writer could produce (corrupt file)");
  st.model_hash = r.u64();
  st.rng = r.rng();
  const uint64_t n_workers = r.u64();
  st.worker_rngs.reserve(n_workers);
  for (uint64_t i = 0; i < n_workers; ++i) st.worker_rngs.push_back(r.rng());
  const uint64_t n_scalars = r.u64();
  st.opt_scalars.reserve(n_scalars);
  for (uint64_t i = 0; i < n_scalars; ++i)
    st.opt_scalars.push_back(static_cast<int64_t>(r.u64()));
  const uint64_t n_tensors = r.u64();
  st.opt_tensors.reserve(n_tensors);
  for (uint64_t i = 0; i < n_tensors; ++i)
    st.opt_tensors.push_back(read_tensor(r));
  if (!v1) {
    const uint64_t n_ranks = r.u64();
    st.layer_ranks.reserve(n_ranks);
    for (uint64_t i = 0; i < n_ranks; ++i)
      st.layer_ranks.push_back(static_cast<int64_t>(r.u64()));
    const uint64_t n_red_scalars = r.u64();
    st.reducer.scalars.reserve(n_red_scalars);
    for (uint64_t i = 0; i < n_red_scalars; ++i)
      st.reducer.scalars.push_back(static_cast<int64_t>(r.u64()));
    const uint64_t n_red_tensors = r.u64();
    st.reducer.tensors.reserve(n_red_tensors);
    for (uint64_t i = 0; i < n_red_tensors; ++i)
      st.reducer.tensors.push_back(read_tensor(r));
  }
  return st;
}

SnapshotPaths snapshot_paths(const std::string& dir) {
  return {dir + "/model.ckpt", dir + "/state.ckpt"};
}

bool snapshot_exists(const std::string& dir) {
  const SnapshotPaths p = snapshot_paths(dir);
  return std::filesystem::exists(p.model) && std::filesystem::exists(p.state);
}

void save_snapshot(nn::Module& model, TrainState st, const std::string& dir) {
  PF_TRACE_SCOPE_C("ckpt.save", st.next_epoch);
  std::filesystem::create_directories(dir);
  const SnapshotPaths p = snapshot_paths(dir);
  st.model_hash = hash_model(model);
  nn::save_checkpoint(model, p.model);
  save_train_state(st, p.state);
}

TrainState load_snapshot(nn::Module& model, const std::string& dir) {
  PF_TRACE_SCOPE("ckpt.load");
  const SnapshotPaths p = snapshot_paths(dir);
  TrainState st = load_train_state(p.state);
  nn::load_checkpoint(model, p.model);
  if (hash_model(model) != st.model_hash)
    throw std::runtime_error(
        "train state: torn snapshot in " + dir +
        " (weights and state are from different epochs -- the writer "
        "crashed between the two files); restart from scratch or an older "
        "snapshot");
  return st;
}

}  // namespace pf::core
