#include "core/rank_policy.h"

#include <algorithm>
#include <bit>

#include "core/factorize.h"

namespace pf::core {

std::array<uint64_t, 3> RankPolicy::encode() const {
  const double knob = kind == Kind::kFixedRatio ? ratio : energy;
  return {static_cast<uint64_t>(kind), std::bit_cast<uint64_t>(knob),
          static_cast<uint64_t>(min_rank)};
}

RankPolicy RankPolicy::decode(const std::array<uint64_t, 3>& words) {
  RankPolicy p;
  p.kind = static_cast<Kind>(words[0]);
  const double knob = std::bit_cast<double>(words[1]);
  if (p.kind == Kind::kFixedRatio)
    p.ratio = knob;
  else
    p.energy = knob;
  p.min_rank = static_cast<int64_t>(words[2]);
  return p;
}

bool operator==(const RankPolicy& a, const RankPolicy& b) {
  if (a.kind != b.kind || a.min_rank != b.min_rank) return false;
  // Only the active knob matters: fixed(0.25) with a stale energy field is
  // still fixed(0.25).
  return a.kind == RankPolicy::Kind::kFixedRatio ? a.ratio == b.ratio
                                                 : a.energy == b.energy;
}

int64_t RankPolicy::rank_for(const Tensor& unrolled_weight) const {
  const int64_t full =
      std::min(unrolled_weight.size(0), unrolled_weight.size(1));
  if (kind == Kind::kFixedRatio) {
    return std::max<int64_t>(
        min_rank, static_cast<int64_t>(full * ratio));
  }
  return std::min(full, choose_rank_for_energy(unrolled_weight, energy,
                                               min_rank));
}

namespace {

// Unroll a conv weight (c_out, c_in, k, k) to (c_in*k*k, c_out), matching
// factorize_conv's convention.
Tensor unroll_conv(const nn::Conv2d& conv) {
  const int64_t c_in = conv.c_in(), c_out = conv.c_out(), k = conv.kernel();
  Tensor unrolled(Shape{c_in * k * k, c_out});
  const Tensor& w = conv.weight->value;
  for (int64_t co = 0; co < c_out; ++co)
    for (int64_t ci = 0; ci < c_in; ++ci)
      for (int64_t ky = 0; ky < k; ++ky)
        for (int64_t kx = 0; kx < k; ++kx)
          unrolled[((ci * k + ky) * k + kx) * c_out + co] =
              w[((co * c_in + ci) * k + ky) * k + kx];
  return unrolled;
}

void visit(nn::Module& m, const RankPolicy& policy, RankPlan& plan) {
  const std::string t = m.type_name();
  if (t == "Conv2d") {
    auto& conv = static_cast<nn::Conv2d&>(m);
    Tensor unrolled = unroll_conv(conv);
    RankPlanEntry e;
    e.layer = "Conv2d " + std::to_string(unrolled.size(0)) + "x" +
              std::to_string(unrolled.size(1));
    e.full_rank = std::min(unrolled.size(0), unrolled.size(1));
    e.rank = policy.rank_for(unrolled);
    e.dense_params = unrolled.numel();
    e.factored_params = e.rank * (unrolled.size(0) + unrolled.size(1));
    e.retained_energy = retained_energy(unrolled, e.rank);
    plan.entries.push_back(std::move(e));
  } else if (t == "Linear") {
    auto& fc = static_cast<nn::Linear&>(m);
    const Tensor& w = fc.weight->value;  // (out, in)
    RankPlanEntry e;
    e.layer = "Linear " + std::to_string(w.size(0)) + "x" +
              std::to_string(w.size(1));
    e.full_rank = std::min(w.size(0), w.size(1));
    e.rank = policy.rank_for(w);
    e.dense_params = w.numel();
    e.factored_params = e.rank * (w.size(0) + w.size(1));
    e.retained_energy = retained_energy(w, e.rank);
    plan.entries.push_back(std::move(e));
  }
  for (nn::Module* c : m.children()) visit(*c, policy, plan);
}

}  // namespace

RankPlan plan_ranks(nn::Module& model, const RankPolicy& policy) {
  RankPlan plan;
  visit(model, policy, plan);
  for (const RankPlanEntry& e : plan.entries) {
    plan.dense_params_total += e.dense_params;
    plan.factored_params_total += e.factored_params;
  }
  return plan;
}

}  // namespace pf::core
