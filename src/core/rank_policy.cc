#include "core/rank_policy.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "core/factorize.h"

namespace pf::core {

std::array<uint64_t, 4> RankPolicy::encode() const {
  switch (kind) {
    case Kind::kFixedRatio:
      return {0, std::bit_cast<uint64_t>(ratio),
              static_cast<uint64_t>(min_rank), 0};
    case Kind::kEnergy:
      return {1, std::bit_cast<uint64_t>(energy),
              static_cast<uint64_t>(min_rank), 0};
    case Kind::kVarianceGated:
      return {2, std::bit_cast<uint64_t>(vg_threshold),
              static_cast<uint64_t>(vg_warmup_steps),
              std::bit_cast<uint64_t>(ratio)};
    case Kind::kAbReproject:
      return {3, std::bit_cast<uint64_t>(energy),
              static_cast<uint64_t>(min_rank),
              static_cast<uint64_t>(reproject_every)};
  }
  throw std::runtime_error("rank policy: unencodable kind");
}

RankPolicy RankPolicy::decode(const std::array<uint64_t, 4>& words) {
  RankPolicy p;
  switch (words[0]) {
    case 0:
      p.kind = Kind::kFixedRatio;
      p.ratio = std::bit_cast<double>(words[1]);
      p.min_rank = static_cast<int64_t>(words[2]);
      break;
    case 1:
      p.kind = Kind::kEnergy;
      p.energy = std::bit_cast<double>(words[1]);
      p.min_rank = static_cast<int64_t>(words[2]);
      break;
    case 2:
      p.kind = Kind::kVarianceGated;
      p.vg_threshold = std::bit_cast<double>(words[1]);
      p.vg_warmup_steps = static_cast<int64_t>(words[2]);
      p.ratio = std::bit_cast<double>(words[3]);
      break;
    case 3:
      p.kind = Kind::kAbReproject;
      p.energy = std::bit_cast<double>(words[1]);
      p.min_rank = static_cast<int64_t>(words[2]);
      p.reproject_every = static_cast<int64_t>(words[3]);
      break;
    default:
      throw std::runtime_error(
          "rank policy: unknown kind word " + std::to_string(words[0]) +
          " (snapshot from a newer build, or corrupt); refusing to treat "
          "it as fixed-ratio");
  }
  return p;
}

bool operator==(const RankPolicy& a, const RankPolicy& b) {
  // The encoding carries exactly the knobs active for the kind: fixed(0.25)
  // with a stale energy field is still fixed(0.25).
  return a.encode() == b.encode();
}

int64_t RankPolicy::rank_for(const Tensor& unrolled_weight) const {
  const int64_t full = std::max<int64_t>(
      1, std::min(unrolled_weight.size(0), unrolled_weight.size(1)));
  int64_t r;
  if (kind == Kind::kFixedRatio || kind == Kind::kVarianceGated) {
    r = std::max<int64_t>(min_rank, static_cast<int64_t>(full * ratio));
  } else {
    r = choose_rank_for_energy(unrolled_weight, energy, min_rank);
  }
  // Clamp like randomized_svd/gram_svd: a rank above min(m, n) cannot be
  // factorized (the old fixed-ratio path let min_rank exceed `full`), and
  // rank 0 is never a valid factorization.
  return std::clamp<int64_t>(r, 1, full);
}

namespace {

// Unroll a conv weight (c_out, c_in, k, k) to (c_in*k*k, c_out), matching
// factorize_conv's convention.
Tensor unroll_conv(const nn::Conv2d& conv) {
  const int64_t c_in = conv.c_in(), c_out = conv.c_out(), k = conv.kernel();
  Tensor unrolled(Shape{c_in * k * k, c_out});
  const Tensor& w = conv.weight->value;
  for (int64_t co = 0; co < c_out; ++co)
    for (int64_t ci = 0; ci < c_in; ++ci)
      for (int64_t ky = 0; ky < k; ++ky)
        for (int64_t kx = 0; kx < k; ++kx)
          unrolled[((ci * k + ky) * k + kx) * c_out + co] =
              w[((co * c_in + ci) * k + ky) * k + kx];
  return unrolled;
}

void visit(nn::Module& m, const RankPolicy& policy, RankPlan& plan) {
  const std::string t = m.type_name();
  if (t == "Conv2d") {
    auto& conv = static_cast<nn::Conv2d&>(m);
    Tensor unrolled = unroll_conv(conv);
    RankPlanEntry e;
    e.layer = "Conv2d " + std::to_string(unrolled.size(0)) + "x" +
              std::to_string(unrolled.size(1));
    e.full_rank = std::min(unrolled.size(0), unrolled.size(1));
    e.rank = policy.rank_for(unrolled);
    e.dense_params = unrolled.numel();
    e.factored_params = e.rank * (unrolled.size(0) + unrolled.size(1));
    e.retained_energy = retained_energy(unrolled, e.rank);
    plan.entries.push_back(std::move(e));
  } else if (t == "Linear") {
    auto& fc = static_cast<nn::Linear&>(m);
    const Tensor& w = fc.weight->value;  // (out, in)
    RankPlanEntry e;
    e.layer = "Linear " + std::to_string(w.size(0)) + "x" +
              std::to_string(w.size(1));
    e.full_rank = std::min(w.size(0), w.size(1));
    e.rank = policy.rank_for(w);
    e.dense_params = w.numel();
    e.factored_params = e.rank * (w.size(0) + w.size(1));
    e.retained_energy = retained_energy(w, e.rank);
    plan.entries.push_back(std::move(e));
  }
  for (nn::Module* c : m.children()) visit(*c, policy, plan);
}

}  // namespace

RankPlan plan_ranks(nn::Module& model, const RankPolicy& policy) {
  RankPlan plan;
  visit(model, policy, plan);
  for (const RankPlanEntry& e : plan.entries) {
    plan.dense_params_total += e.dense_params;
    plan.factored_params_total += e.factored_params;
  }
  return plan;
}

}  // namespace pf::core
