// Algorithm 1 training harnesses for the three task families the paper
// evaluates: image classification (SGD + momentum + step decay, optional
// label smoothing / AMP), LSTM language modeling (plain SGD, grad clipping,
// decay-on-plateau), and Transformer translation (Adam, label smoothing).
//
// Each harness implements the full Pufferfish procedure: train the vanilla
// model for E_wu epochs, warm-start the hybrid via truncated SVD, fine-tune
// the hybrid for the remaining epochs. Setting warmup_epochs == epochs (or
// passing a null hybrid factory) degenerates to plain vanilla training;
// warmup_epochs == 0 trains the low-rank model from scratch -- the three
// arms of the paper's ablations (Tables 8/9/21/22).
#pragma once

#include <functional>
#include <memory>

#include "core/factorize.h"
#include "core/rank_policy.h"
#include "data/synthetic.h"
#include "models/lstm_lm.h"
#include "models/transformer_mt.h"

namespace pf::core {

// ---------------- Vision ----------------

using VisionModelFactory =
    std::function<std::unique_ptr<nn::UnaryModule>(Rng&)>;

struct VisionTrainConfig {
  int epochs = 12;
  int warmup_epochs = 3;  // E_wu
  int64_t batch = 32;
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  std::vector<int> lr_milestones = {8, 11};
  float lr_factor = 0.1f;
  float label_smoothing = 0.0f;
  bool amp = false;  // emulated fp16 compute (core/amp.h)
  uint64_t seed = 0;
  // Compute-kernel threads for this run; 0 keeps the PF_THREADS env default
  // (see runtime/thread_pool.h).
  int threads = 0;

  // Crash-safe checkpointing. When `checkpoint_dir` is non-empty the
  // harness writes an atomic snapshot (weights + TrainState, see
  // core/checkpoint.h) after every `checkpoint_every`-th epoch and after
  // the final one. With `resume` also set, training continues from the
  // snapshot in `checkpoint_dir` -- bitwise-identical to the uninterrupted
  // run, at any PF_THREADS, across the warm-up -> SVD boundary -- and
  // starts from scratch when no snapshot exists yet.
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  bool resume = false;
  // Recorded into snapshots and verified on resume: continuing a run under
  // a different rank policy than the one that shaped its hybrid fails
  // loudly. Purely metadata for the vanilla phase.
  RankPolicy rank_policy;

  // When non-empty, span tracing (trace/trace.h) is enabled for the run and
  // the merged timeline is written here as chrome://tracing JSON when
  // training finishes. Spans never perturb results: trace-on training is
  // bitwise-identical to trace-off (asserted in tests/trace_test.cc).
  std::string trace_path;
};

struct EpochRecord {
  int epoch = 0;
  double train_loss = 0;
  double test_acc = 0;   // top-1
  double test_top5 = 0;
  double seconds = 0;    // measured wall-clock for the epoch
  bool low_rank_phase = false;
  // AB-style full-rank refresh round: this epoch trained the densified
  // model and re-SVD-ed it afterwards (kAbReproject only).
  bool refresh_round = false;
};

struct VisionResult {
  std::vector<EpochRecord> epochs;
  double final_acc = 0, final_top5 = 0, final_loss = 0;
  double total_seconds = 0;
  double svd_seconds = 0;
  int64_t params = 0;
};

// Full Pufferfish run. If `make_hybrid` is null, trains the vanilla model
// for all `epochs` (the vanilla baseline). With cfg.checkpoint_dir set this
// is also `Trainer::resume`: cfg.resume continues from the directory's
// snapshot, and the continuation is bitwise-identical to an uninterrupted
// run (the resume-exact contract; see core/checkpoint.h).
VisionResult train_vision(const VisionModelFactory& make_vanilla,
                          const VisionModelFactory& make_hybrid,
                          const data::SyntheticImages& ds,
                          const VisionTrainConfig& cfg);

// Evaluate top-1/top-5 accuracy and mean loss over the test set.
struct EvalResult {
  double acc = 0, top5 = 0, loss = 0;
};
EvalResult evaluate_vision(nn::UnaryModule& model,
                           const data::SyntheticImages& ds, int64_t batch,
                           float label_smoothing = 0.0f);

// ---------------- Language modeling (LSTM) ----------------

using LmModelFactory = std::function<std::unique_ptr<models::LstmLm>(Rng&)>;

struct LmTrainConfig {
  int epochs = 8;
  int warmup_epochs = 2;
  int64_t batch = 10;
  int64_t bptt = 16;
  float lr = 5.0f;          // plain SGD, like the PyTorch LM example
  float clip = 0.25f;
  float plateau_factor = 0.25f;
  uint64_t seed = 0;
};

struct LmResult {
  double train_ppl = 0, val_ppl = 0, test_ppl = 0;
  std::vector<double> val_ppl_series;
  double total_seconds = 0, svd_seconds = 0;
  int64_t params = 0;
};

LmResult train_lm(const LmModelFactory& make_vanilla,
                  const LmModelFactory& make_lowrank,
                  const data::SyntheticCorpus& corpus,
                  const LmTrainConfig& cfg);

double evaluate_lm(models::LstmLm& model, const std::vector<int64_t>& stream,
                   int64_t batch, int64_t bptt);  // returns perplexity

// ---------------- Translation (Transformer) ----------------

using MtModelFactory =
    std::function<std::unique_ptr<models::TransformerMT>(Rng&)>;

struct MtTrainConfig {
  int epochs = 10;
  int warmup_epochs = 2;
  int64_t batch = 16;
  float lr = 1e-3f;  // Adam(0.9, 0.98)
  float label_smoothing = 0.1f;
  float clip = 0.25f;
  uint64_t seed = 0;
};

struct MtResult {
  double train_ppl = 0, val_ppl = 0, bleu = 0;
  double total_seconds = 0, svd_seconds = 0;
  int64_t params = 0;
};

MtResult train_mt(const MtModelFactory& make_vanilla,
                  const MtModelFactory& make_lowrank,
                  const data::SyntheticTranslation& ds,
                  const MtTrainConfig& cfg);

}  // namespace pf::core
