#include "core/eval.h"

#include "autograd/variable.h"

namespace pf::core {

Tensor eval_forward(nn::UnaryModule& model, const Tensor& nchw) {
  ag::NoGradGuard ng;
  return model.forward(ag::leaf(nchw))->value;
}

Tensor eval_forward_lm(models::LstmLm& model, const std::vector<int64_t>& ids,
                       int64_t t_len, int64_t b,
                       std::vector<nn::LstmState>* state) {
  ag::NoGradGuard ng;
  return model.forward(ids, t_len, b, state)->value;
}

Tensor eval_forward_mt(models::TransformerMT& model,
                       const std::vector<int64_t>& src, int64_t src_len,
                       const std::vector<int64_t>& tgt_in, int64_t tgt_len,
                       int64_t b) {
  ag::NoGradGuard ng;
  return model.forward(src, src_len, tgt_in, tgt_len, b)->value;
}

}  // namespace pf::core
