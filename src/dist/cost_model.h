// Alpha-beta communication cost model for ring allreduce and allgather
// (Thakur, Rabenseifner & Gropp 2005 -- the model the paper's Section 4.1
// latency argument is built on).
//
//   ring allreduce of n bytes over p nodes:
//       t = 2 (p-1) alpha_step + 2 n (p-1)/p / B
//   allgather where each node contributes n bytes:
//       t = (p-1) alpha_step + n (p-1) / B
//
// The per-call latency term scales with p, which is why the paper packs all
// gradients into ONE flat buffer per iteration instead of one allreduce per
// layer -- `packed` toggles that optimization so benches can ablate it.
#pragma once

#include <cstdint>

#include "dist/hardware.h"

namespace pf::dist {

struct CostModel {
  int nodes = 16;
  // Defaults derive from the shared HardwareProfile constants (hardware.h),
  // so calibration updates one place instead of every model independently.
  double bandwidth_bytes_per_s = kDefaultLinkBandwidthBytesPerS;
  double latency_s = kDefaultLinkLatencyS;  // per ring step

  double allreduce_seconds(int64_t bytes, int n_calls = 1) const {
    const double p = nodes;
    const double alpha = 2.0 * (p - 1) * latency_s;
    const double beta =
        2.0 * static_cast<double>(bytes) * (p - 1) / p / bandwidth_bytes_per_s;
    return n_calls * alpha + beta;
  }

  double allgather_seconds(int64_t bytes_per_node, int n_calls = 1) const {
    const double p = nodes;
    const double alpha = (p - 1) * latency_s;
    const double beta = static_cast<double>(bytes_per_node) * (p - 1) /
                        bandwidth_bytes_per_s;
    return n_calls * alpha + beta;
  }
};

// Projects a HardwareProfile's inter-node link onto the closed-form model.
CostModel cost_model_from(const HardwareProfile& hw, int nodes);

// PyTorch-DDP-style bucketed overlap: backward produces gradient buckets of
// `bucket_bytes` which are allreduced while later layers still compute.
// Returns the modeled epoch time given the measured per-epoch compute time
// (forward+backward) and the total gradient bytes.
double ddp_epoch_seconds(double compute_s, int64_t grad_bytes,
                         const CostModel& cm,
                         int64_t bucket_bytes = 25 << 20);

}  // namespace pf::dist
