#include "dist/hardware.h"

#include <algorithm>

namespace pf::dist {

double HardwareProfile::slowest_speed(int workers) const {
  double slowest = 1.0;
  const int n = std::min<int>(workers, static_cast<int>(worker_speeds.size()));
  for (int i = 0; i < n; ++i) slowest = std::min(slowest, worker_speeds[i]);
  return std::max(slowest, 1e-6);
}

HardwareProfile HardwareProfile::cloud_10g() {
  HardwareProfile p;
  p.name = "cloud-10g";
  return p;  // the repo-wide defaults ARE this profile
}

HardwareProfile HardwareProfile::rdma_100g() {
  HardwareProfile p;
  p.name = "rdma-100g";
  p.alpha_s = 5e-6;
  p.bandwidth_bytes_per_s = 100e9 / 8;
  p.intra_alpha_s = 2e-6;
  p.intra_bandwidth_bytes_per_s = 300e9 / 8;
  p.workers_per_node = 8;
  p.flops_per_s = 50e9;
  p.serve_mem_bytes = 32ll << 30;
  return p;
}

HardwareProfile HardwareProfile::commodity_1g() {
  HardwareProfile p;
  p.name = "commodity-1g";
  p.alpha_s = 200e-6;
  p.bandwidth_bytes_per_s = 1e9 / 8;
  p.flops_per_s = 50e9;
  p.serve_mem_bytes = 4ll << 30;
  return p;
}

}  // namespace pf::dist
