#include "dist/cost_model.h"

#include <algorithm>
#include <vector>

namespace pf::dist {

CostModel cost_model_from(const HardwareProfile& hw, int nodes) {
  CostModel cm;
  cm.nodes = nodes;
  cm.bandwidth_bytes_per_s = hw.bandwidth_bytes_per_s;
  cm.latency_s = hw.alpha_s;
  return cm;
}

double ddp_epoch_seconds(double compute_s, int64_t grad_bytes,
                         const CostModel& cm, int64_t bucket_bytes) {
  // Split compute into forward (~1/3) and backward (~2/3, producing
  // gradients last-layer-first). Buckets become ready uniformly across the
  // backward pass and are communicated on a single serial channel.
  const double fwd = compute_s / 3.0;
  const double bwd = compute_s - fwd;
  const int n_buckets = std::max<int64_t>(
      1, (grad_bytes + bucket_bytes - 1) / bucket_bytes);
  const int64_t per_bucket = grad_bytes / n_buckets;
  double channel_free = fwd;  // comm can start once the first bucket is ready
  for (int i = 0; i < n_buckets; ++i) {
    const double ready = fwd + bwd * static_cast<double>(i + 1) / n_buckets;
    const double start = std::max(ready, channel_free);
    channel_free = start + cm.allreduce_seconds(per_bucket, 1);
  }
  // Epoch ends when both compute and the last bucket's comm are done.
  return std::max(fwd + bwd, channel_free);
}

}  // namespace pf::dist
