#include "dist/ring_sim.h"

#include <algorithm>
#include <stdexcept>

namespace pf::dist {

namespace {

const RingLink& link_at(const std::vector<RingLink>& links, int i) {
  if (links.empty()) throw std::runtime_error("ring_sim: no links");
  return links[static_cast<size_t>(i) % links.size()];
}

double transfer_time(const RingLink& l, int64_t bytes) {
  return l.latency_s + static_cast<double>(bytes) / l.bandwidth_bytes_per_s;
}

}  // namespace

RingLink link_from(const HardwareProfile& hw) {
  RingLink l;
  l.latency_s = hw.alpha_s;
  l.bandwidth_bytes_per_s = hw.bandwidth_bytes_per_s;
  return l;
}

RingSimResult simulate_ring_allreduce(int64_t bytes, int p,
                                      const std::vector<RingLink>& links) {
  RingSimResult r;
  if (p <= 1) return r;
  const int64_t chunk = (bytes + p - 1) / p;
  // Bulk-synchronous: each of the 2(p-1) rounds lasts as long as the
  // slowest link's chunk transfer.
  const int rounds = 2 * (p - 1);
  for (int round = 0; round < rounds; ++round) {
    double slowest = 0;
    for (int i = 0; i < p; ++i)
      slowest = std::max(slowest, transfer_time(link_at(links, i), chunk));
    r.makespan_s += slowest;
  }
  r.steps = rounds;
  r.bytes_per_link = chunk * rounds;
  return r;
}

RingSimResult simulate_ring_allgather(int64_t bytes_per_node, int p,
                                      const std::vector<RingLink>& links) {
  RingSimResult r;
  if (p <= 1) return r;
  const int rounds = p - 1;
  for (int round = 0; round < rounds; ++round) {
    double slowest = 0;
    for (int i = 0; i < p; ++i)
      slowest = std::max(slowest,
                         transfer_time(link_at(links, i), bytes_per_node));
    r.makespan_s += slowest;
  }
  r.steps = rounds;
  r.bytes_per_link = bytes_per_node * rounds;
  return r;
}

RingSimResult simulate_ring_allreduce_pipelined(
    int64_t bytes, int p, const std::vector<RingLink>& links) {
  RingSimResult r;
  if (p <= 1) return r;
  const int64_t chunk = (bytes + p - 1) / p;
  const int rounds = 2 * (p - 1);

  // In round t, node i forwards the chunk it received in round t-1 to node
  // i+1. Its send can start once (a) that chunk has arrived -- avail[i]
  // for this round -- and (b) its NIC is free from its previous send.
  std::vector<double> send_free(static_cast<size_t>(p), 0.0);
  std::vector<double> avail(static_cast<size_t>(p), 0.0);  // for round t
  double makespan = 0;
  for (int round = 0; round < rounds; ++round) {
    std::vector<double> next_avail(static_cast<size_t>(p), 0.0);
    for (int i = 0; i < p; ++i) {
      const int dst = (i + 1) % p;
      const double start = std::max(send_free[static_cast<size_t>(i)],
                                    avail[static_cast<size_t>(i)]);
      const double done = start + transfer_time(link_at(links, i), chunk);
      send_free[static_cast<size_t>(i)] = done;
      next_avail[static_cast<size_t>(dst)] = done;  // enables dst next round
      makespan = std::max(makespan, done);
    }
    avail = std::move(next_avail);
  }
  r.makespan_s = makespan;
  r.steps = rounds;
  r.bytes_per_link = chunk * rounds;
  return r;
}

}  // namespace pf::dist
