#include "dist/cluster.h"

#include <algorithm>

#include "metrics/metrics.h"
#include "runtime/thread_pool.h"
#include "trace/trace.h"

namespace pf::dist {

float lr_at_epoch(const DistTrainConfig& cfg, int epoch) {
  if (epoch < cfg.lr_warmup_epochs) {
    const float frac = static_cast<float>(epoch + 1) / cfg.lr_warmup_epochs;
    return cfg.lr_warmup_start + (cfg.lr - cfg.lr_warmup_start) * frac;
  }
  return optim::StepDecay(cfg.lr, cfg.lr_milestones, cfg.lr_factor)
      .at_epoch(epoch);
}

ShardRange shard_range(int64_t batch, int lanes, int lane) {
  ShardRange r;
  if (batch <= 0 || lanes <= 0 || lane < 0 || lane >= lanes) return r;
  const int64_t base = batch / lanes;
  const int64_t rem = batch % lanes;
  r.start = lane * base + std::min<int64_t>(lane, rem);
  r.count = base + (lane < rem ? 1 : 0);
  return r;
}

DataParallelTrainer::DataParallelTrainer(
    std::unique_ptr<nn::UnaryModule> model,
    std::unique_ptr<compress::Reducer> reducer, CostModel cost_model,
    const DistTrainConfig& cfg)
    : model_(std::move(model)),
      reducer_(std::move(reducer)),
      cm_(cost_model),
      cfg_(cfg) {
  if (cfg.threads > 0) runtime::set_threads(cfg.threads);
  opt_ = std::make_unique<optim::SGD>(model_->parameters(), cfg.lr,
                                      cfg.momentum, cfg.weight_decay);
  for (nn::Param* p : model_->parameters())
    param_shapes_.push_back(p->var->value.shape());
}

void DataParallelTrainer::replace_model(
    std::unique_ptr<nn::UnaryModule> model,
    std::unique_ptr<compress::Reducer> reducer) {
  model_ = std::move(model);
  if (reducer) reducer_ = std::move(reducer);
  opt_ = std::make_unique<optim::SGD>(model_->parameters(), cfg_.lr,
                                      cfg_.momentum, cfg_.weight_decay);
  param_shapes_.clear();
  for (nn::Param* p : model_->parameters())
    param_shapes_.push_back(p->var->value.shape());
}

DistEpochRecord DataParallelTrainer::train_epoch(
    const data::SyntheticImages& ds, int epoch) {
  PF_TRACE_SCOPE_C("dist.epoch", epoch);
  const int nodes = cm_.nodes;

  opt_->set_lr(lr_at_epoch(cfg_, epoch));

  DistEpochRecord rec;
  rec.epoch = epoch;
  model_->train(true);
  double loss_sum = 0;
  int64_t steps = 0;

  metrics::Timer other_timer;
  const auto batches = ds.train_batches(cfg_.global_batch, epoch);
  rec.breakdown.other_s += other_timer.seconds();

  for (const data::ImageBatch& gb : batches) {
    // Shard the global batch across workers; compute real per-worker grads.
    std::vector<Tensor> grads;
    grads.reserve(static_cast<size_t>(nodes));
    PF_TRACE_SCOPE_C("dist.round", steps);
    metrics::Timer tc;
    for (int w = 0; w < nodes; ++w) {
      const ShardRange sr = shard_range(gb.images.size(0), nodes, w);
      if (sr.count == 0) break;
      const int64_t start = sr.start, count = sr.count;
      Tensor imgs = slice(gb.images, 0, start, count);
      std::vector<int64_t> labels(
          gb.labels.begin() + start, gb.labels.begin() + start + count);
      model_->zero_grad();
      ag::Var logits = model_->forward(ag::leaf(std::move(imgs)));
      ag::Var loss =
          ag::cross_entropy(logits, labels, cfg_.label_smoothing);
      ag::backward(loss);
      grads.push_back(model_->flat_grads());
      loss_sum += loss->value[0];
      ++steps;
    }
    rec.breakdown.compute_s += tc.seconds() / nodes;

    compress::ReduceStats stats;
    Tensor agg;
    {
      PF_TRACE_SCOPE_C("dist.reduce", rec.breakdown.bytes_per_worker);
      agg = reducer_->reduce(grads, param_shapes_, &stats);
    }
    rec.breakdown.encode_s += stats.encode_seconds / nodes;
    rec.breakdown.decode_s += stats.decode_seconds;
    rec.breakdown.comm_s +=
        stats.collective == compress::Collective::kAllreduce
            ? cm_.allreduce_seconds(stats.payload_bytes_per_worker,
                                    stats.n_messages)
            : cm_.allgather_seconds(stats.payload_bytes_per_worker,
                                    stats.n_messages);
    rec.breakdown.bytes_per_worker = stats.payload_bytes_per_worker;
    cumulative_bytes_ += stats.payload_bytes_per_worker;

    metrics::Timer ts;
    model_->set_flat_grads(agg);
    opt_->step();
    rec.breakdown.other_s += ts.seconds();
  }

  rec.train_loss = loss_sum / std::max<int64_t>(1, steps);
  const core::EvalResult ev =
      core::evaluate_vision(*model_, ds, cfg_.global_batch);
  rec.test_acc = ev.acc;
  sim_seconds_ += rec.breakdown.total();
  rec.cumulative_sim_seconds = sim_seconds_;
  return rec;
}

std::vector<DistEpochRecord> DataParallelTrainer::train(
    const data::SyntheticImages& ds) {
  std::vector<DistEpochRecord> out;
  for (int e = 0; e < cfg_.epochs; ++e) out.push_back(train_epoch(ds, e));
  return out;
}

}  // namespace pf::dist
