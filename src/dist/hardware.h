// HardwareProfile: one description of a cluster's links and compute that
// every communication model in the repo derives its constants from.
//
// Before this header existed, dist::CostModel and dist::RingLink each
// hardcoded "10 Gbps / 50 us" independently; calibration (src/plan) would
// have had to update both. Now the shared defaults live here once:
// CostModel and RingLink default-construct from kDefaultLink*, and
// cost_model_from / link_from project a full profile onto them.
//
// A profile describes a two-level topology: `workers_per_node` ranks share
// a fast intra-node link; nodes talk over the slower inter-node link.
// workers_per_node == 1 degenerates to the flat single-level ring every
// pre-existing model assumed. `flops_per_s` is the effective training
// throughput used to convert model FLOP counts into modeled compute time
// (src/plan/model_costs.h); it is a measured, achieved rate -- not peak --
// and the calibration in src/plan/calibrate.h overwrites it per machine.
#pragma once

#include <string>
#include <vector>

namespace pf::dist {

// The single source of the repo-wide default link constants (EC2
// p3.2xlarge-class: 10 Gbps ethernet, 50 us per ring step).
inline constexpr double kDefaultLinkLatencyS = 50e-6;
inline constexpr double kDefaultLinkBandwidthBytesPerS = 10e9 / 8;

struct HardwareProfile {
  std::string name = "cloud-10g";

  // Inter-node link (the only link of a flat topology).
  double alpha_s = kDefaultLinkLatencyS;
  double bandwidth_bytes_per_s = kDefaultLinkBandwidthBytesPerS;

  // Intra-node link for two-level topologies (NVLink/shm class). Unused
  // while workers_per_node == 1.
  double intra_alpha_s = 5e-6;
  double intra_bandwidth_bytes_per_s = 100e9 / 8;
  int workers_per_node = 1;

  // Effective (achieved) training compute throughput per worker.
  double flops_per_s = 50e9;

  // Heterogeneous clusters: per-worker relative speed multipliers (1.0 =
  // nominal flops_per_s; 0.5 = half speed). Empty = homogeneous. A
  // synchronous data-parallel step runs at the SLOWEST participating
  // worker's pace, so pricing a p-worker job divides compute by
  // slowest_speed(p). Workers beyond the vector's length are nominal; the
  // elastic executor fills this from measured per-slot step times
  // (elastic::speed_profile) so plan::make_plan can decide whether adding a
  // slow node is worth it.
  std::vector<double> worker_speeds;

  // Concurrent compute slots the whole job shares. 0 (the cluster default)
  // means every rank has its own dedicated compute; a positive value means
  // ranks beyond it time-share -- the shm executor's reality on this host,
  // where p worker threads on c cores compute at ceil(p/c) x the
  // single-replica step time. Calibration sets this to the host core count.
  int compute_slots = 0;

  // Serving memory per node available for resident model weights (the
  // fleet-density budget plan::serve_density divides by). Activations and
  // request queues are budgeted separately; this bounds how many engines a
  // multi-model fleet can keep materialized.
  int64_t serve_mem_bytes = 8ll << 30;

  bool hierarchical() const { return workers_per_node > 1; }
  bool heterogeneous() const { return !worker_speeds.empty(); }

  // Relative speed of the slowest of the first `workers` ranks (clamped to
  // a tiny positive floor so a zero entry cannot divide compute by zero).
  double slowest_speed(int workers) const;

  // The profile grid bench_plan sweeps (Table 19/20 style trade-off study
  // across link generations).
  static HardwareProfile cloud_10g();      // the paper's EC2 setup
  static HardwareProfile rdma_100g();      // RDMA-class fabric, 8 ranks/node
  static HardwareProfile commodity_1g();   // commodity gigabit lab
};

}  // namespace pf::dist
