// Data-parallel cluster simulator: real gradient math over N logical
// workers, modeled wall-clock.
//
// Each step the global batch is sharded across `nodes` workers; every worker
// computes a real gradient on its shard (executed sequentially here, timed,
// then divided by `nodes` since real workers run in parallel); the chosen
// Reducer produces real encoded payloads whose byte counts feed the
// alpha-beta CostModel. The result is the per-epoch compute / encode /
// communicate / decode breakdown of the paper's Figure 4, plus a faithful
// training trajectory (the aggregated gradient actually updates the model).
#pragma once

#include <functional>
#include <memory>

#include "compress/compressor.h"
#include "core/trainer.h"
#include "dist/cost_model.h"
#include "optim/optim.h"

namespace pf::dist {

struct EpochBreakdown {
  double compute_s = 0;   // fwd+bwd per node (modeled parallel)
  double encode_s = 0;    // compression per node
  double comm_s = 0;      // modeled collective time
  double decode_s = 0;    // per-node decode / aggregation post-processing
  double other_s = 0;     // optimizer step, data, bookkeeping
  // Independently measured epoch wall time, when the executor has one
  // (runtime::ShmDataParallelTrainer). 0 for purely modeled breakdowns.
  // When set, the components are disjoint per-worker averages, so
  // total() == wall_s up to the other_s >= 0 clamp (asserted in
  // trainer_test.cc).
  double wall_s = 0;
  int64_t bytes_per_worker = 0;
  double total() const {
    return compute_s + encode_s + comm_s + decode_s + other_s;
  }
};

struct DistEpochRecord {
  int epoch = 0;
  double train_loss = 0;
  double test_acc = 0;
  EpochBreakdown breakdown;
  double cumulative_sim_seconds = 0;  // simulated wall-clock since start
};

struct DistTrainConfig {
  int epochs = 8;
  int64_t global_batch = 64;  // sharded evenly over cm.nodes
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  std::vector<int> lr_milestones = {6};
  float lr_factor = 0.1f;
  // Linear lr warm-up epochs (the large-batch recipe used in Fig. 4(b)).
  int lr_warmup_epochs = 0;
  float lr_warmup_start = 0.01f;
  float label_smoothing = 0.0f;
  uint64_t seed = 0;
  // Compute-kernel threads for this run; 0 keeps the PF_THREADS env default
  // (see runtime/thread_pool.h).
  int threads = 0;
};

// Learning rate at `epoch` under cfg's linear warm-up + step-decay schedule.
// Shared by the modeled cluster and the shm executor (runtime/shm_cluster).
float lr_at_epoch(const DistTrainConfig& cfg, int epoch);

// Balanced contiguous partition of [0, batch) over `lanes` workers: lane i
// gets floor(batch/lanes) samples plus one of the first batch%lanes
// remainders. Every sample lands in exactly one lane (the old floor-based
// shard could drop the tail when lanes did not divide the batch), lanes are
// contiguous and ascending, and the partition is a pure function of
// (batch, lanes) -- the resharding contract elastic membership relies on
// (tests/elastic_test.cc asserts the exactly-once property for random
// worker-count sequences).
struct ShardRange {
  int64_t start = 0;
  int64_t count = 0;
};
ShardRange shard_range(int64_t batch, int lanes, int lane);

class DataParallelTrainer {
 public:
  DataParallelTrainer(std::unique_ptr<nn::UnaryModule> model,
                      std::unique_ptr<compress::Reducer> reducer,
                      CostModel cost_model, const DistTrainConfig& cfg);

  // Runs one epoch over the dataset; returns loss/accuracy/breakdown.
  DistEpochRecord train_epoch(const data::SyntheticImages& ds, int epoch);

  // Full run.
  std::vector<DistEpochRecord> train(const data::SyntheticImages& ds);

  nn::UnaryModule& model() { return *model_; }
  // Swap in a new model mid-run (Pufferfish's vanilla -> hybrid switch);
  // optimizer state is rebuilt, reducer state reset.
  void replace_model(std::unique_ptr<nn::UnaryModule> model,
                     std::unique_ptr<compress::Reducer> reducer);

  // The active reducer (null = none was given). Lets harnesses poke
  // reducer-specific counters (e.g. VarianceGateReducer's gate decisions).
  compress::Reducer* reducer() { return reducer_.get(); }

  double cumulative_sim_seconds() const { return sim_seconds_; }
  // Total payload bytes one worker transmitted since construction, summed
  // over every step (breakdown.bytes_per_worker only records the LAST
  // step's payload, which misses step-to-step variation -- exactly what a
  // gating reducer produces). Survives replace_model.
  int64_t cumulative_bytes_per_worker() const { return cumulative_bytes_; }

 private:
  std::unique_ptr<nn::UnaryModule> model_;
  std::unique_ptr<compress::Reducer> reducer_;
  CostModel cm_;
  DistTrainConfig cfg_;
  std::unique_ptr<optim::SGD> opt_;
  std::vector<Shape> param_shapes_;
  double sim_seconds_ = 0;
  int64_t cumulative_bytes_ = 0;
};

}  // namespace pf::dist
