// Discrete-event simulation of the ring collectives.
//
// The cluster trainer prices communication with the closed-form alpha-beta
// expressions in cost_model.h. This module validates those formulas from
// first principles: it simulates the actual ring schedule -- reduce-scatter
// then allgather, 2(p-1) steps of one chunk each over point-to-point links
// with latency alpha and bandwidth B, allowing heterogeneous (straggler)
// links -- and reports the makespan. bench_ablation_ring_sim checks the
// closed form against the event simulation and quantifies what stragglers
// do to it (something the closed form cannot express).
#pragma once

#include <cstdint>
#include <vector>

#include "dist/hardware.h"

namespace pf::dist {

struct RingLink {
  // Defaults derive from the shared HardwareProfile constants (hardware.h);
  // they must stay in lockstep with CostModel's for the closed-form vs
  // event-sim cross-check (tests/plan_test.cc) to be meaningful.
  double latency_s = kDefaultLinkLatencyS;
  double bandwidth_bytes_per_s = kDefaultLinkBandwidthBytesPerS;
};

// Projects a HardwareProfile's inter-node link onto a homogeneous ring link.
RingLink link_from(const HardwareProfile& hw);

struct RingSimResult {
  double makespan_s = 0;       // total collective time
  int steps = 0;               // point-to-point rounds executed
  int64_t bytes_per_link = 0;  // total bytes each link carried
};

// Simulates a ring allreduce of `bytes` over p nodes. links[i] is the link
// node i -> node (i+1) % p; pass a single-element vector for homogeneous
// links. Each of the 2(p-1) rounds moves one chunk (bytes/p) across every
// link; a round completes when the SLOWEST link finishes (bulk-synchronous,
// like NCCL's ring with a barrier per step).
RingSimResult simulate_ring_allreduce(int64_t bytes, int p,
                                      const std::vector<RingLink>& links);

// Simulates a ring allgather where each node contributes `bytes_per_node`:
// (p-1) rounds, each moving one node's full contribution per link.
RingSimResult simulate_ring_allgather(int64_t bytes_per_node, int p,
                                      const std::vector<RingLink>& links);

// Pipelined variant: rounds are NOT barrier-synchronized; each node
// forwards a chunk as soon as it has received and reduced it. With
// homogeneous links this matches the bulk-synchronous makespan; with one
// slow link it shows how the pipeline drains behind the straggler.
RingSimResult simulate_ring_allreduce_pipelined(
    int64_t bytes, int p, const std::vector<RingLink>& links);

}  // namespace pf::dist
