// Distributed data-parallel training with the cluster simulator: vanilla
// SGD vs Pufferfish vs SIGNUM vs PowerSGD on a 16-node (simulated) cluster,
// reporting the per-epoch compute/encode/communicate/decode breakdown the
// paper's Figure 4 charts.
//
// Build & run:  ./build/examples/distributed_lowrank
#include <cstdio>

#include "dist/cluster.h"
#include "metrics/metrics.h"
#include "models/resnet.h"

using namespace pf;

namespace {

std::unique_ptr<nn::UnaryModule> make_model(bool pufferfish) {
  Rng rng(7);
  models::ResNetCifarConfig cfg =
      pufferfish ? models::ResNetCifarConfig::pufferfish()
                 : models::ResNetCifarConfig::vanilla();
  cfg.width_mult = 0.125;
  cfg.num_classes = 8;
  return std::make_unique<models::ResNet18Cifar>(cfg, rng);
}

}  // namespace

int main() {
  data::SyntheticImages::Config dc;
  dc.num_classes = 8;
  dc.hw = 16;
  dc.train_size = 128;
  dc.test_size = 64;
  data::SyntheticImages dataset(dc);

  dist::CostModel cm;
  cm.nodes = 16;  // p3.2xlarge-style cluster, 10 Gbps links

  dist::DistTrainConfig cfg;
  cfg.epochs = 2;
  cfg.global_batch = 64;
  cfg.lr = 0.05f;

  struct Arm {
    const char* name;
    bool pufferfish;
    std::unique_ptr<compress::Reducer> reducer;
  };
  std::vector<Arm> arms;
  arms.push_back({"vanilla SGD (allreduce)", false,
                  std::make_unique<compress::AllreduceReducer>()});
  arms.push_back({"Pufferfish (allreduce)", true,
                  std::make_unique<compress::AllreduceReducer>()});
  arms.push_back({"SIGNUM (allgather)", false,
                  std::make_unique<compress::SignumReducer>()});
  arms.push_back({"PowerSGD rank 2", false,
                  std::make_unique<compress::PowerSgdReducer>(2, 3)});

  metrics::Table table({"method", "comp (s)", "encode (s)", "comm (s)",
                        "decode (s)", "epoch total (s)", "payload/worker"});
  std::printf("== simulated 16-node cluster, per-epoch breakdown ==\n");
  std::printf("(compute/encode/decode: measured CPU; comm: alpha-beta ring"
              " model @10 Gbps)\n\n");
  for (Arm& arm : arms) {
    dist::DataParallelTrainer trainer(make_model(arm.pufferfish),
                                      std::move(arm.reducer), cm, cfg);
    dist::DistEpochRecord rec = trainer.train_epoch(dataset, 0);
    const dist::EpochBreakdown& b = rec.breakdown;
    table.add_row({arm.name, metrics::fmt(b.compute_s, 3),
                   metrics::fmt(b.encode_s, 3), metrics::fmt(b.comm_s, 3),
                   metrics::fmt(b.decode_s, 3), metrics::fmt(b.total(), 3),
                   metrics::fmt_bytes(b.bytes_per_worker)});
  }
  table.print();
  std::printf(
      "\nPufferfish shrinks BOTH compute and communication without any "
      "per-step encode/decode -- the paper's core claim.\n");
  return 0;
}
