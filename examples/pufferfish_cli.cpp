// pufferfish_cli: a small command-line front end over the library, the way
// a downstream user would actually drive it.
//
//   pufferfish_cli train  --model resnet18 --rank-ratio 0.25 \
//                         --epochs 8 --warmup 2 --width 0.125 \
//                         --checkpoint out.ckpt
//   pufferfish_cli eval   --model resnet18 --width 0.125 \
//                         --rank-ratio 0.25 --checkpoint out.ckpt
//   pufferfish_cli inspect --model vgg19          (params/MACs, paper scale)
//   pufferfish_cli plan   --model resnet18 --floor 0.96 --profile 10g
//                                          (cost-model auto-tuner, src/plan)
//
// Models: vgg19 | resnet18 | resnet50 | wrn50. `--rank-ratio 0` trains the
// vanilla model; anything > 0 runs the full Pufferfish pipeline (Algorithm
// 1) with the hybrid configuration from the paper.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/trainer.h"
#include "metrics/metrics.h"
#include "models/resnet.h"
#include "models/vgg.h"
#include "nn/serialize.h"
#include "plan/calibrate.h"
#include "plan/planner.h"
#include "runtime/thread_pool.h"

using namespace pf;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = flags.find(key);
    return it == flags.end() ? dflt : it->second;
  }
  double get_d(const std::string& key, double dflt) const {
    auto it = flags.find(key);
    return it == flags.end() ? dflt : std::atof(it->second.c_str());
  }
  int get_i(const std::string& key, int dflt) const {
    auto it = flags.find(key);
    return it == flags.end() ? dflt : std::atoi(it->second.c_str());
  }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc >= 2) a.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    a.flags[key] = argv[i + 1];
  }
  return a;
}

int usage() {
  std::printf(
      "usage:\n"
      "  pufferfish_cli train   --model <vgg19|resnet18|resnet50|wrn50>\n"
      "                         [--rank-ratio R=0.25] [--epochs N=8]\n"
      "                         [--warmup N=2] [--width W=0.125]\n"
      "                         [--classes C=10] [--seed S=0]\n"
      "                         [--threads T=PF_THREADS] [--checkpoint PATH]\n"
      "  pufferfish_cli eval    --model M --checkpoint PATH [--width W]\n"
      "                         [--rank-ratio R] [--classes C]\n"
      "  pufferfish_cli inspect --model M   (paper-scale params & MACs)\n"
      "  pufferfish_cli plan    --model M [--floor A=0.96] [--width W=1.0]\n"
      "                         [--profile 10g|100g|1g|calibrated]\n"
      "                         [--workers P] [--batch B=32] [--epochs N=8]\n"
      "                         [--classes C=10] [--top N=8]\n"
      "          picks (rank ratio, hybrid-K, warm-up, bucket, workers,\n"
      "          reducer) minimizing modeled time-to-accuracy; 'calibrated'\n"
      "          measures this machine's ring + step time first\n");
  return 2;
}

// Builds a model factory for (model, width, classes, rank_ratio>0?hybrid).
core::VisionModelFactory make_factory(const std::string& model, double width,
                                      int64_t classes, double rank_ratio) {
  const bool hybrid = rank_ratio > 0;
  if (model == "vgg19") {
    return [=](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
      models::VggConfig cfg;
      cfg.width_mult = width;
      cfg.num_classes = classes;
      if (hybrid) {
        cfg.k_first_lowrank = 10;
        cfg.rank_ratio = rank_ratio;
      }
      return std::make_unique<models::Vgg19>(cfg, rng);
    };
  }
  if (model == "resnet18") {
    return [=](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
      models::ResNetCifarConfig cfg;
      cfg.width_mult = width;
      cfg.num_classes = classes;
      if (hybrid) {
        cfg.first_lowrank_block = 2;
        cfg.rank_ratio = rank_ratio;
      }
      return std::make_unique<models::ResNet18Cifar>(cfg, rng);
    };
  }
  if (model == "resnet50" || model == "wrn50") {
    return [=](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
      models::ResNetImageNetConfig cfg;
      cfg.width_mult = width;
      cfg.num_classes = classes;
      cfg.wide = model == "wrn50";
      if (hybrid) {
        cfg.factorize_stage4 = true;
        cfg.rank_ratio = rank_ratio;
      }
      cfg.input_hw = 32;
      return std::make_unique<models::ResNet50>(cfg, rng);
    };
  }
  return nullptr;
}

data::SyntheticImages make_data(int64_t classes, int64_t hw) {
  data::SyntheticImages::Config dc;
  dc.num_classes = classes;
  dc.hw = hw;
  dc.train_size = 160;
  dc.test_size = 80;
  return data::SyntheticImages(dc);
}

int cmd_train(const Args& a) {
  const std::string model = a.get("model", "resnet18");
  const double width = a.get_d("width", 0.125);
  const double ratio = a.get_d("rank-ratio", 0.25);
  const int64_t classes = a.get_i("classes", 10);
  const int64_t hw = model == "vgg19" ? 32 : 16;

  core::VisionModelFactory vanilla = make_factory(model, width, classes, 0);
  core::VisionModelFactory hybrid =
      ratio > 0 ? make_factory(model, width, classes, ratio)
                : core::VisionModelFactory{};
  if (!vanilla) return usage();

  core::VisionTrainConfig cfg;
  cfg.epochs = a.get_i("epochs", 8);
  cfg.warmup_epochs = a.get_i("warmup", 2);
  cfg.batch = a.get_i("batch", 32);
  cfg.lr = static_cast<float>(a.get_d("lr", 0.05));
  cfg.lr_milestones = {(3 * cfg.epochs) / 4};
  cfg.seed = static_cast<uint64_t>(a.get_i("seed", 0));
  cfg.threads = a.get_i("threads", 0);  // 0 = PF_THREADS env default
  if (cfg.threads > 0) runtime::set_threads(cfg.threads);

  data::SyntheticImages ds = make_data(classes, hw);
  std::printf(
      "training %s (width %.3f, rank ratio %.3f) for %d epochs on %d "
      "thread(s)...\n",
      model.c_str(), width, ratio, cfg.epochs, runtime::threads());
  core::VisionResult r = core::train_vision(vanilla, hybrid, ds, cfg);
  for (const core::EpochRecord& e : r.epochs)
    std::printf("  epoch %2d [%s] loss %.3f acc %.1f%% (%.1fs)\n", e.epoch,
                e.low_rank_phase ? "low-rank" : "vanilla ", e.train_loss,
                100 * e.test_acc, e.seconds);
  std::printf("final acc %.2f%%, %s params, SVD %.3fs\n", 100 * r.final_acc,
              metrics::fmt_int(r.params).c_str(), r.svd_seconds);

  const std::string ckpt = a.get("checkpoint", "");
  if (!ckpt.empty()) {
    // Re-train the final model once more to hold an instance we can save:
    // train_vision owns its model, so the CLI keeps its own copy by
    // rebuilding and warm-starting from scratch at the same seed.
    Rng rng(cfg.seed * 0x9E3779B9u + 17);
    auto final_model = (ratio > 0 ? hybrid : vanilla)(rng);
    std::printf("note: --checkpoint stores the architecture-matched "
                "initialization; integrate save into your training loop "
                "for trained weights (see examples/quickstart.cpp).\n");
    nn::save_checkpoint(*final_model, ckpt);
    std::printf("wrote %s\n", ckpt.c_str());
  }
  return 0;
}

int cmd_eval(const Args& a) {
  const std::string model = a.get("model", "resnet18");
  const double width = a.get_d("width", 0.125);
  const double ratio = a.get_d("rank-ratio", 0.25);
  const int64_t classes = a.get_i("classes", 10);
  const std::string ckpt = a.get("checkpoint", "");
  if (ckpt.empty()) return usage();
  const int64_t hw = model == "vgg19" ? 32 : 16;

  core::VisionModelFactory factory =
      make_factory(model, width, classes, ratio);
  if (!factory) return usage();
  Rng rng(1);
  auto m = factory(rng);
  nn::load_checkpoint(*m, ckpt);
  data::SyntheticImages ds = make_data(classes, hw);
  core::EvalResult ev = core::evaluate_vision(*m, ds, 32);
  std::printf("%s: top-1 %.2f%%, top-5 %.2f%%, loss %.4f (%s params)\n",
              model.c_str(), 100 * ev.acc, 100 * ev.top5, ev.loss,
              metrics::fmt_int(m->num_params()).c_str());
  return 0;
}

int cmd_inspect(const Args& a) {
  const std::string model = a.get("model", "resnet18");
  Rng rng(1);
  metrics::Table t({"variant", "# params", "fwd MACs (G)"});
  if (model == "vgg19") {
    models::Vgg19 v(models::VggConfig::vanilla(), rng);
    models::Vgg19 p(models::VggConfig::pufferfish(10), rng);
    t.add_row({"vanilla", metrics::fmt_int(v.num_params()),
               metrics::fmt(v.forward_macs(32, 32) / 1e9, 3)});
    t.add_row({"pufferfish", metrics::fmt_int(p.num_params()),
               metrics::fmt(p.forward_macs(32, 32) / 1e9, 3)});
  } else if (model == "resnet18") {
    models::ResNet18Cifar v(models::ResNetCifarConfig::vanilla(), rng);
    models::ResNet18Cifar p(models::ResNetCifarConfig::pufferfish(), rng);
    t.add_row({"vanilla", metrics::fmt_int(v.num_params()),
               metrics::fmt(v.forward_macs(32, 32) / 1e9, 3)});
    t.add_row({"pufferfish", metrics::fmt_int(p.num_params()),
               metrics::fmt(p.forward_macs(32, 32) / 1e9, 3)});
  } else if (model == "resnet50" || model == "wrn50") {
    const bool wide = model == "wrn50";
    auto vc = wide ? models::ResNetImageNetConfig::wrn50_vanilla()
                   : models::ResNetImageNetConfig::resnet50_vanilla();
    auto pc = wide ? models::ResNetImageNetConfig::wrn50_pufferfish()
                   : models::ResNetImageNetConfig::resnet50_pufferfish();
    models::ResNet50 v(vc, rng);
    models::ResNet50 p(pc, rng);
    t.add_row({"vanilla", metrics::fmt_int(v.num_params()),
               metrics::fmt(v.forward_macs(224, 224) / 1e9, 3)});
    t.add_row({"pufferfish", metrics::fmt_int(p.num_params()),
               metrics::fmt(p.forward_macs(224, 224) / 1e9, 3)});
  } else {
    return usage();
  }
  t.print();
  return 0;
}

int cmd_plan(const Args& a) {
  plan::PlannerRequest req;
  req.model = a.get("model", "resnet18");
  req.width = a.get_d("width", 1.0);
  req.classes = a.get_i("classes", 10);
  req.input_hw = a.get_i("input-hw", 32);
  req.per_worker_batch = a.get_i("batch", 32);
  req.epochs = a.get_i("epochs", 8);
  req.images_per_epoch = a.get_d("images", 50000);
  req.accuracy_floor = a.get_d("floor", 0.96);

  const std::string profile = a.get("profile", "10g");
  if (profile == "10g") {
    req.hw = dist::HardwareProfile::cloud_10g();
  } else if (profile == "100g") {
    req.hw = dist::HardwareProfile::rdma_100g();
  } else if (profile == "1g") {
    req.hw = dist::HardwareProfile::commodity_1g();
  } else if (profile == "calibrated") {
    // Measure this machine: the trainer's shm ring for alpha/beta, the GEMM
    // kernel for flops, one real training step for compute. Plans from a
    // calibrated profile describe THIS host, not the EC2 presets.
    const int cal_workers = a.get_i("workers", 4);
    std::printf("calibrating (p=%d)...\n", cal_workers);
    req.hw = plan::calibrated_profile(cal_workers, 3);
    req.overlap = false;  // the shm executor reduces synchronously
    const int64_t step_hw = req.model == "vgg19" ? 32 : 16;
    req.input_hw = a.get_i("input-hw", static_cast<int>(step_hw));
    req.measured_step_seconds = plan::measure_step_seconds(
        plan::vision_factory(req.model, req.width, req.classes, 1.0, 0),
        req.per_worker_batch, req.input_hw, 3);
    req.workers = {cal_workers};
    std::printf(
        "calibrated: alpha=%.3g s B=%.3g GB/s gemm=%.2f GFLOP/s "
        "step=%.4f s\n",
        req.hw.alpha_s, req.hw.bandwidth_bytes_per_s / 1e9,
        req.hw.flops_per_s / 1e9, req.measured_step_seconds);
  } else {
    return usage();
  }
  if (a.flags.count("workers") != 0u)
    req.workers = {a.get_i("workers", 16)};

  const plan::Plan p = plan::make_plan(req);
  std::printf("%s", p.summary(a.get_i("top", 8)).c_str());
  return p.has_feasible() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  try {
    if (a.command == "train") return cmd_train(a);
    if (a.command == "eval") return cmd_eval(a);
    if (a.command == "inspect") return cmd_inspect(a);
    if (a.command == "plan") return cmd_plan(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
