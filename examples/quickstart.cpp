// Quickstart: the full Pufferfish workflow (Algorithm 1) on a small image
// classification task, in ~60 lines of user code.
//
//   1. Define a vanilla model and its hybrid (partially factorized) twin.
//   2. Train the vanilla model for a few warm-up epochs.
//   3. warm_start() factorizes the trained weights via truncated SVD.
//   4. Fine-tune the smaller, faster hybrid for the remaining epochs.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/trainer.h"
#include "metrics/metrics.h"
#include "models/resnet.h"

using namespace pf;

int main() {
  // A CIFAR-like synthetic dataset (32x32x3, 10 classes).
  data::SyntheticImages::Config dc;
  dc.num_classes = 10;
  dc.hw = 16;
  dc.train_size = 200;
  dc.test_size = 100;
  data::SyntheticImages dataset(dc);

  // Model factories: the trainer instantiates them when needed. The hybrid
  // ResNet-18 factorizes everything from the second basic block on at rank
  // ratio 0.25, exactly like the paper's CIFAR-10 configuration.
  auto make_vanilla = [](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::ResNetCifarConfig cfg;          // vanilla
    cfg.width_mult = 0.125;                 // CPU-friendly width
    return std::make_unique<models::ResNet18Cifar>(cfg, rng);
  };
  auto make_hybrid = [](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::ResNetCifarConfig cfg = models::ResNetCifarConfig::pufferfish();
    cfg.width_mult = 0.125;
    return std::make_unique<models::ResNet18Cifar>(cfg, rng);
  };

  core::VisionTrainConfig cfg;
  cfg.epochs = 8;
  cfg.warmup_epochs = 2;  // E_wu: vanilla warm-up epochs
  cfg.batch = 20;
  cfg.lr = 0.05f;
  cfg.lr_milestones = {6};

  std::printf("== Pufferfish quickstart: ResNet-18 (scaled) ==\n\n");
  core::VisionResult r =
      core::train_vision(make_vanilla, make_hybrid, dataset, cfg);

  metrics::Table table({"epoch", "phase", "train loss", "test acc"});
  for (const core::EpochRecord& e : r.epochs)
    table.add_row({std::to_string(e.epoch),
                   e.low_rank_phase ? "low-rank" : "vanilla",
                   metrics::fmt(e.train_loss, 3),
                   metrics::fmt(100 * e.test_acc, 1) + "%"});
  table.print();

  Rng rng(0);
  models::ResNetCifarConfig vcfg;
  vcfg.width_mult = 0.125;
  models::ResNet18Cifar vanilla(vcfg, rng);
  std::printf(
      "\nfinal accuracy %.1f%%; model %s params (vanilla twin: %s, %.2fx "
      "smaller); one-time SVD cost %.3f s\n",
      100 * r.final_acc, metrics::fmt_int(r.params).c_str(),
      metrics::fmt_int(vanilla.num_params()).c_str(),
      static_cast<double>(vanilla.num_params()) / r.params, r.svd_seconds);
  return 0;
}
