// A tour of the gradient-compression baselines: what each reducer sends,
// which collective it is compatible with, and what its approximation error
// looks like on a real model gradient -- the tradeoff space the paper's
// Section 4 and appendix F analyze.
//
// Build & run:  ./build/examples/compression_zoo
#include <cstdio>

#include "compress/compressor.h"
#include "dist/cost_model.h"
#include "metrics/metrics.h"
#include "models/resnet.h"

using namespace pf;

int main() {
  // A real gradient from a scaled ResNet-18 on random data.
  Rng rng(11);
  models::ResNetCifarConfig mcfg;
  mcfg.width_mult = 0.25;
  models::ResNet18Cifar model(mcfg, rng);
  ag::Var logits = model.forward(ag::leaf(rng.randn(Shape{8, 3, 16, 16})));
  std::vector<int64_t> labels(8);
  for (size_t i = 0; i < 8; ++i) labels[i] = static_cast<int64_t>(i % 10);
  ag::backward(ag::cross_entropy(logits, labels));
  Tensor grad = model.flat_grads();
  std::vector<Shape> shapes;
  for (nn::Param* p : model.parameters())
    shapes.push_back(p->var->value.shape());

  // Simulate 4 workers with slightly different gradients.
  std::vector<Tensor> grads;
  for (int w = 0; w < 4; ++w) {
    Tensor g = grad;
    Tensor noise = rng.randn(g.shape(), 0.0f, 0.05f * g.abs_max());
    g.add_(noise);
    grads.push_back(std::move(g));
  }
  Tensor exact(grad.shape());
  for (const Tensor& g : grads) exact.add_(g, 0.25f);

  dist::CostModel cm;
  cm.nodes = 16;

  std::vector<std::unique_ptr<compress::Reducer>> reducers;
  reducers.push_back(std::make_unique<compress::AllreduceReducer>());
  reducers.push_back(std::make_unique<compress::PowerSgdReducer>(2, 5));
  reducers.push_back(std::make_unique<compress::PowerSgdReducer>(8, 5));
  reducers.push_back(std::make_unique<compress::SignumReducer>());
  reducers.push_back(std::make_unique<compress::TopKReducer>(0.01));
  reducers.push_back(std::make_unique<compress::BinaryQuantReducer>(9));
  reducers.push_back(std::make_unique<compress::AtomoReducer>(4, 13));

  std::printf("== gradient compression zoo (%s gradient, 4 workers) ==\n\n",
              metrics::fmt_int(grad.numel()).c_str());
  metrics::Table table({"reducer", "payload/worker", "collective",
                        "rel. error", "modeled comm @16 nodes"});
  for (auto& r : reducers) {
    compress::ReduceStats stats;
    Tensor agg = r->reduce(grads, shapes, &stats);
    Tensor diff = agg - exact;
    const double rel = diff.norm() / exact.norm();
    const double comm =
        stats.collective == compress::Collective::kAllreduce
            ? cm.allreduce_seconds(stats.payload_bytes_per_worker,
                                   stats.n_messages)
            : cm.allgather_seconds(stats.payload_bytes_per_worker,
                                   stats.n_messages);
    table.add_row(
        {r->name(), metrics::fmt_bytes(stats.payload_bytes_per_worker),
         stats.collective == compress::Collective::kAllreduce ? "allreduce"
                                                              : "allgather",
         metrics::fmt(rel, 3), metrics::fmt(comm * 1e3, 3) + " ms"});
  }
  table.print();
  std::printf(
      "\nNote: SIGNUM's sign vector is NOT exactly the mean gradient (its "
      "relative error is high by design -- it is a different optimizer), "
      "and allgather-based encodings pay a (p-1) bandwidth factor that "
      "erodes their compression at scale.\n");
  return 0;
}
