// Seq2seq translation with a factorized Transformer (the paper's WMT16
// task, Table 3, at synthetic scale): vanilla 2-layer encoder-decoder vs a
// Pufferfish hybrid that keeps the first encoder/decoder layers dense.
//
// Build & run:  ./build/examples/translation_factorized
#include <cstdio>

#include "core/trainer.h"
#include "metrics/metrics.h"

using namespace pf;

int main() {
  data::SyntheticTranslation::Config tc;
  tc.train_pairs = 160;
  tc.test_pairs = 32;
  tc.min_len = 3;
  tc.max_len = 5;
  tc.vocab = 32;
  data::SyntheticTranslation dataset(tc);

  auto make = [](int first_lowrank) {
    return [first_lowrank](Rng& rng) {
      models::TransformerConfig c =
          models::TransformerConfig::tiny(first_lowrank);
      c.vocab = 32;
      c.dm = 48;
      c.heads = 4;
      return std::make_unique<models::TransformerMT>(c, rng);
    };
  };

  core::MtTrainConfig cfg;
  cfg.epochs = 32;
  cfg.warmup_epochs = 3;
  cfg.batch = 16;

  std::printf("== Transformer translation: vanilla vs Pufferfish ==\n\n");
  core::MtResult vanilla = core::train_mt(make(0), nullptr, dataset, cfg);
  core::MtResult pf = core::train_mt(make(0), make(2), dataset, cfg);

  metrics::Table table(
      {"model", "# params", "train ppl", "val ppl", "val BLEU"});
  table.add_row({"vanilla Transformer", metrics::fmt_int(vanilla.params),
                 metrics::fmt(vanilla.train_ppl, 2),
                 metrics::fmt(vanilla.val_ppl, 2),
                 metrics::fmt(vanilla.bleu, 2)});
  table.add_row({"Pufferfish Transformer", metrics::fmt_int(pf.params),
                 metrics::fmt(pf.train_ppl, 2), metrics::fmt(pf.val_ppl, 2),
                 metrics::fmt(pf.bleu, 2)});
  table.print();
  std::printf("\n(the paper's Table 3 finds the factorized Transformer "
              "generalizes as well or better -- implicit regularization)\n");
  return 0;
}
