// Language modeling with a factorized LSTM (the paper's WikiText-2 task,
// Table 2, at synthetic-corpus scale): vanilla 2-layer LSTM vs Pufferfish
// low-rank LSTM with vanilla warm-up.
//
// Build & run:  ./build/examples/lm_factorized
#include <cstdio>

#include "core/trainer.h"
#include "metrics/metrics.h"

using namespace pf;

int main() {
  data::SyntheticCorpus::Config cc;
  cc.vocab = 100;
  cc.train_tokens = 8000;
  cc.valid_tokens = 1500;
  cc.test_tokens = 1500;
  data::SyntheticCorpus corpus(cc);

  auto make = [&](int64_t rank) {
    return [rank](Rng& rng) {
      models::LstmLmConfig cfg = models::LstmLmConfig::tiny(rank);
      cfg.vocab = 100;
      cfg.hidden = 48;
      return std::make_unique<models::LstmLm>(cfg, rng);
    };
  };

  core::LmTrainConfig cfg;
  cfg.epochs = 6;
  cfg.warmup_epochs = 2;
  cfg.batch = 8;
  cfg.bptt = 12;
  cfg.lr = 2.0f;

  std::printf("== LSTM language modeling: vanilla vs Pufferfish ==\n\n");
  core::LmResult vanilla = core::train_lm(make(0), nullptr, corpus, cfg);
  core::LmResult pf = core::train_lm(make(0), make(12), corpus, cfg);

  metrics::Table table(
      {"model", "# params", "train ppl", "val ppl", "test ppl"});
  table.add_row({"vanilla LSTM", metrics::fmt_int(vanilla.params),
                 metrics::fmt(vanilla.train_ppl, 2),
                 metrics::fmt(vanilla.val_ppl, 2),
                 metrics::fmt(vanilla.test_ppl, 2)});
  table.add_row({"Pufferfish LSTM", metrics::fmt_int(pf.params),
                 metrics::fmt(pf.train_ppl, 2), metrics::fmt(pf.val_ppl, 2),
                 metrics::fmt(pf.test_ppl, 2)});
  table.print();
  std::printf("\n(uniform-model perplexity would be %d; both models learn "
              "the Markov structure; the factorized one is %.2fx smaller)\n",
              100, static_cast<double>(vanilla.params) / pf.params);
  return 0;
}
