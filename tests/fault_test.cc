// Deterministic fault injection: plan queries are pure functions of the
// seed, injected shm-cluster kills/delays are survived with bitwise-exact
// recovery, injected serving drops are retried to completion, and the
// write-crash hook fires on an armed byte budget. The whole file also runs
// under PF_THREADS=4 (ctest pf_tests_threads4) and ASan (pf_tests_fault).
#include "fault/fault.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "compress/compressor.h"
#include "metrics/metrics.h"
#include "models/resnet.h"
#include "runtime/shm_cluster.h"
#include "serve/frozen.h"
#include "serve/server.h"

namespace pf {
namespace {

// ---------------- Plan / backoff / stats primitives ----------------

TEST(Fault, EmptyPlanInjectsNothing) {
  fault::Plan p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.worker_fault(0, 0), nullptr);
  EXPECT_EQ(p.kill_at(0), -1);
  EXPECT_FALSE(p.any_kill_at(7));
  EXPECT_FALSE(p.should_drop(1, 0));
  EXPECT_EQ(p.drop_probability(), 0.0);
}

TEST(Fault, WorkerFaultLookupAndKillShadowsDelay) {
  fault::Plan p(42);
  p.kill_worker(1, 5).delay_worker(2, 5, 3.0).delay_worker(1, 5, 9.0);
  EXPECT_FALSE(p.empty());

  const fault::WorkerFault* k = p.worker_fault(1, 5);
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->kind, fault::WorkerFault::Kind::kKill);  // kill shadows delay

  const fault::WorkerFault* d = p.worker_fault(2, 5);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, fault::WorkerFault::Kind::kDelay);
  EXPECT_DOUBLE_EQ(d->delay_ms, 3.0);

  EXPECT_EQ(p.worker_fault(0, 5), nullptr);
  EXPECT_EQ(p.worker_fault(1, 4), nullptr);
  EXPECT_EQ(p.kill_at(5), 1);
  EXPECT_TRUE(p.any_kill_at(5));
  EXPECT_EQ(p.kill_at(6), -1);
}

// Round faults are a SEPARATE schedule from step faults: a step delay and
// a round kill on the same worker both fire (the old plan had no round
// schedule at all, so membership events could not be faulted). Within the
// round schedule, a kill shadows a delay on the same (worker, round).
TEST(Fault, RoundFaultsComposeWithStepFaultsOnSameWorker) {
  fault::Plan p(43);
  EXPECT_FALSE(p.any_round_fault());
  p.delay_worker(1, 5, 3.0).kill_worker_round(1, 2).delay_worker_round(
      1, 2, 9.0);
  EXPECT_TRUE(p.any_round_fault());
  EXPECT_FALSE(p.empty());

  // Cross-schedule: both the step delay and the round kill fire.
  const fault::WorkerFault* step = p.worker_fault(1, 5);
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->kind, fault::WorkerFault::Kind::kDelay);
  const fault::WorkerFault* round = p.worker_round_fault(1, 2);
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->kind, fault::WorkerFault::Kind::kKill);  // shadows delay

  // The schedules do not leak into each other: the round index is not a
  // step, and vice versa.
  EXPECT_EQ(p.worker_fault(1, 2), nullptr);
  EXPECT_EQ(p.worker_round_fault(1, 5), nullptr);
  EXPECT_EQ(p.worker_round_fault(0, 2), nullptr);

  fault::Plan delays_only(44);
  delays_only.delay_worker_round(2, 1, 4.0);
  const fault::WorkerFault* d = delays_only.worker_round_fault(2, 1);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, fault::WorkerFault::Kind::kDelay);
  EXPECT_DOUBLE_EQ(d->delay_ms, 4.0);
}

TEST(Fault, DropCoinIsDeterministicAndFreshPerAttempt) {
  fault::Plan p(7);
  p.drop_requests(0.5);
  int dropped = 0, attempt_flips = 0;
  for (uint64_t id = 0; id < 4000; ++id) {
    const bool first = p.should_drop(id, 0);
    EXPECT_EQ(first, p.should_drop(id, 0));  // pure in (seed, id, attempt)
    if (first) ++dropped;
    if (first != p.should_drop(id, 1)) ++attempt_flips;
  }
  // A fair coin over 4000 ids; loose 5-sigma bounds.
  EXPECT_GT(dropped, 1700);
  EXPECT_LT(dropped, 2300);
  // Retries draw fresh coins: attempt 1 disagrees with attempt 0 often.
  EXPECT_GT(attempt_flips, 1700);

  fault::Plan sure(7);
  sure.drop_requests(1.0);
  fault::Plan never(7);
  never.drop_requests(0.0);
  for (uint64_t id = 0; id < 64; ++id) {
    EXPECT_TRUE(sure.should_drop(id, 0));
    EXPECT_FALSE(never.should_drop(id, 0));
  }
}

TEST(Fault, BackoffDoublesAndCaps) {
  EXPECT_DOUBLE_EQ(fault::backoff_ms(0), 0.1);
  EXPECT_DOUBLE_EQ(fault::backoff_ms(1), 0.2);
  EXPECT_DOUBLE_EQ(fault::backoff_ms(2), 0.4);
  EXPECT_DOUBLE_EQ(fault::backoff_ms(30), 5.0);  // capped
  EXPECT_DOUBLE_EQ(fault::backoff_ms(2, 1.0, 100.0), 4.0);
}

TEST(Fault, ScopedWriteCrashArmsAByteBudget) {
  fault::on_write_bytes(1 << 20);  // disarmed: no-op
  {
    fault::ScopedWriteCrash crash(8);
    fault::on_write_bytes(4);  // 4 of 8 used
    fault::on_write_bytes(4);  // exactly exhausts the budget; still alive
    EXPECT_THROW(fault::on_write_bytes(1), fault::InjectedCrash);
  }
  fault::on_write_bytes(1 << 20);  // disarmed again on scope exit
}

TEST(Fault, StatsCountersRecordThroughMetrics) {
  metrics::reset_fault_stats();
  fault::record_kill();
  fault::record_delay();
  fault::record_drop();
  fault::record_retry();
  fault::record_retry();
  fault::record_recovery();
  const fault::FaultStats s = metrics::fault_stats();
  EXPECT_EQ(s.injected_kills, 1u);
  EXPECT_EQ(s.injected_delays, 1u);
  EXPECT_EQ(s.dropped_requests, 1u);
  EXPECT_EQ(s.write_crashes, 0u);
  EXPECT_EQ(s.retries, 2u);
  EXPECT_EQ(s.recoveries, 1u);
  EXPECT_NE(metrics::fmt_fault_stats(s).find("retries 2"), std::string::npos);
  metrics::reset_fault_stats();
  EXPECT_EQ(metrics::fault_stats().injected_kills, 0u);
}

// ---------------- Shm-cluster kill/delay recovery ----------------

data::SyntheticImages tiny_data() {
  data::SyntheticImages::Config dc;
  dc.num_classes = 4;
  dc.hw = 8;
  dc.train_size = 32;
  dc.test_size = 16;
  dc.augment = false;
  return data::SyntheticImages(dc);
}

core::VisionModelFactory tiny_resnet_factory() {
  return [](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::ResNetCifarConfig cfg;
    cfg.width_mult = 0.0625;
    cfg.num_classes = 4;
    return std::make_unique<models::ResNet18Cifar>(cfg, rng);
  };
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(std::as_const(a).data(), std::as_const(b).data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

runtime::ShmClusterConfig shm_config() {
  runtime::ShmClusterConfig scfg;
  scfg.workers = 4;
  scfg.bucket_bytes = 16 << 10;
  scfg.train.epochs = 2;
  scfg.train.global_batch = 16;
  scfg.train.lr = 0.05f;
  scfg.train.seed = 3;
  return scfg;
}

// A run with injected kills and a straggler delay must match a fault-free
// run bitwise: reincarnation from a surviving replica is exact, and delays
// only cost time.
TEST(Fault, ShmKillAndDelayRecoveryIsBitwiseExact) {
  auto ds = tiny_data();

  runtime::ShmDataParallelTrainer clean(tiny_resnet_factory(), nullptr,
                                        shm_config());
  const auto clean_recs = clean.train(ds);

  metrics::reset_fault_stats();
  runtime::ShmClusterConfig scfg = shm_config();
  scfg.fault = fault::Plan(13);
  scfg.fault.kill_worker(1, 1)      // donor is worker 0
      .kill_worker(0, 2)            // kills worker 0: donor is worker 1
      .delay_worker(2, 0, 2.0);     // straggler at the very first step
  runtime::ShmDataParallelTrainer faulty(tiny_resnet_factory(), nullptr,
                                         scfg);
  const auto faulty_recs = faulty.train(ds);

  ASSERT_EQ(clean_recs.size(), faulty_recs.size());
  for (size_t e = 0; e < clean_recs.size(); ++e)
    EXPECT_EQ(clean_recs[e].train_loss, faulty_recs[e].train_loss)
        << "epoch " << e;
  EXPECT_TRUE(bitwise_equal(clean.model().flat_params(),
                            faulty.model().flat_params()));

  const fault::FaultStats s = metrics::fault_stats();
  EXPECT_EQ(s.injected_kills, 2u);
  EXPECT_EQ(s.injected_delays, 1u);
  EXPECT_GE(s.recoveries, 2u);
  EXPECT_GT(faulty.fault_seconds(), 0.0);
  EXPECT_EQ(clean.fault_seconds(), 0.0);
}

TEST(Fault, ShmSimultaneousKillsSpareOneSurvivor) {
  auto ds = tiny_data();
  runtime::ShmDataParallelTrainer clean(tiny_resnet_factory(), nullptr,
                                        shm_config());
  (void)clean.train(ds);

  // Every worker scheduled to die at once: worker 0 is spared (recovery
  // needs a survivor) and the rest reincarnate from it.
  runtime::ShmClusterConfig scfg = shm_config();
  scfg.fault = fault::Plan(5);
  for (int w = 0; w < scfg.workers; ++w) scfg.fault.kill_worker(w, 1);
  runtime::ShmDataParallelTrainer faulty(tiny_resnet_factory(), nullptr,
                                         scfg);
  (void)faulty.train(ds);
  EXPECT_TRUE(bitwise_equal(clean.model().flat_params(),
                            faulty.model().flat_params()));
}

// ---------------- Serving drops + retry ----------------

std::unique_ptr<nn::UnaryModule> tiny_resnet(uint64_t seed) {
  Rng rng(seed);
  models::ResNetCifarConfig cfg;
  cfg.width_mult = 0.0625;
  return std::make_unique<models::ResNet18Cifar>(cfg, rng);
}

TEST(Fault, ServeDropsAreRetriedToCompletion) {
  serve::FrozenModel frozen(tiny_resnet(6), "fault-serve");
  frozen.prime(Shape{3, 8, 8}, 4);

  metrics::reset_fault_stats();
  serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.batcher.max_batch = 4;
  cfg.batcher.deadline_ms = 0.5;
  cfg.fault = fault::Plan(21);
  cfg.fault.drop_requests(0.4);
  serve::Server server(frozen, cfg);
  server.start();

  serve::ClosedLoopConfig lg;
  lg.clients = 3;
  lg.requests_per_client = 8;
  lg.max_attempts = 16;  // enough that P(all dropped) is negligible
  const int64_t done = serve::run_closed_loop(
      server,
      [](uint64_t id) {
        Rng rng(id + 100);
        return serve::make_request(id, rng.randn(Shape{3, 8, 8}));
      },
      lg);
  server.stop();

  EXPECT_EQ(done, 24);  // every request eventually served
  const fault::FaultStats s = metrics::fault_stats();
  EXPECT_GT(s.dropped_requests, 0u);
  EXPECT_GT(s.retries, 0u);
  EXPECT_GT(s.recoveries, 0u);
  metrics::reset_fault_stats();
}

TEST(Fault, ServeDroppedRequestFailsFastWithoutRetry) {
  serve::FrozenModel frozen(tiny_resnet(7), "fault-serve-norestry");
  frozen.prime(Shape{3, 8, 8}, 2);

  metrics::reset_fault_stats();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batcher.max_batch = 2;
  cfg.batcher.deadline_ms = 0;
  cfg.fault = fault::Plan(9);
  cfg.fault.drop_requests(1.0);  // every attempt dropped
  serve::Server server(frozen, cfg);
  server.start();

  Rng rng(1);
  serve::RequestPtr r = serve::make_request(0, rng.randn(Shape{3, 8, 8}));
  std::future<void> done = r->done.get_future();
  ASSERT_TRUE(server.submit(r));
  done.wait();  // promise fulfilled even for dropped requests: no hang
  EXPECT_TRUE(r->failed);

  // submit_with_retry gives up after max_attempts and reports nullptr.
  const serve::RequestPtr got = serve::submit_with_retry(
      server,
      [](uint64_t id) {
        Rng rng2(id + 1);
        return serve::make_request(id, rng2.randn(Shape{3, 8, 8}));
      },
      1, /*max_attempts=*/3);
  EXPECT_EQ(got, nullptr);
  server.stop();
  const fault::FaultStats s = metrics::fault_stats();
  EXPECT_GE(s.dropped_requests, 4u);  // 1 fail-fast + 3 retried attempts
  EXPECT_EQ(s.retries, 2u);           // attempts 1 and 2 were retries
  EXPECT_EQ(s.recoveries, 0u);
  metrics::reset_fault_stats();
}

}  // namespace
}  // namespace pf
