// Cross-module integration and property tests:
//  - autograd conv2d against a direct nested-loop reference (TEST_P sweep),
//  - distributed training convergence under every compressor,
//  - the full Pufferfish pipeline (warm-up -> SVD -> fine-tune -> checkpoint
//    -> reload -> evaluate) end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "compress/compressor.h"
#include "core/trainer.h"
#include "dist/cluster.h"
#include "models/resnet.h"
#include "nn/serialize.h"

namespace pf {
namespace {

// ---- conv2d (autograd op) vs direct reference. ----

struct ConvCase {
  int64_t n, c_in, c_out, hw, k, stride, pad;
};

class ConvRefP : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvRefP, ForwardMatchesDirectConvolution) {
  const auto [n, c_in, c_out, hw, k, stride, pad] = GetParam();
  Rng rng(n * 100 + c_in * 10 + k);
  Tensor x = rng.randn(Shape{n, c_in, hw, hw});
  Tensor w = rng.randn(Shape{c_out, c_in, k, k});
  ag::Var y = ag::conv2d(ag::leaf(x), ag::leaf(w), stride, pad);

  const int64_t oh = (hw + 2 * pad - k) / stride + 1;
  ASSERT_EQ(y->shape(), (Shape{n, c_out, oh, oh}));
  for (int64_t img = 0; img < n; ++img)
    for (int64_t co = 0; co < c_out; ++co)
      for (int64_t oy = 0; oy < oh; ++oy)
        for (int64_t ox = 0; ox < oh; ++ox) {
          double acc = 0;
          for (int64_t ci = 0; ci < c_in; ++ci)
            for (int64_t ky = 0; ky < k; ++ky)
              for (int64_t kx = 0; kx < k; ++kx) {
                const int64_t iy = oy * stride - pad + ky;
                const int64_t ix = ox * stride - pad + kx;
                if (iy < 0 || iy >= hw || ix < 0 || ix >= hw) continue;
                acc += static_cast<double>(
                           x.at({img, ci, iy, ix})) *
                       w.at({co, ci, ky, kx});
              }
          EXPECT_NEAR(y->value.at({img, co, oy, ox}), acc,
                      1e-3 + 1e-3 * std::fabs(acc));
        }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvRefP,
    ::testing::Values(ConvCase{1, 1, 1, 5, 3, 1, 1},
                      ConvCase{2, 3, 4, 6, 3, 1, 1},
                      ConvCase{1, 2, 3, 7, 3, 2, 1},
                      ConvCase{2, 4, 2, 8, 1, 1, 0},
                      ConvCase{1, 2, 2, 9, 5, 2, 2},
                      ConvCase{1, 3, 5, 4, 3, 1, 0}));

// ---- Distributed convergence under each compressor. ----

data::SyntheticImages easy_data() {
  data::SyntheticImages::Config dc;
  dc.num_classes = 4;
  dc.hw = 8;
  dc.train_size = 64;
  dc.test_size = 32;
  dc.noise = 0.3f;
  dc.augment = false;
  return data::SyntheticImages(dc);
}

std::unique_ptr<nn::UnaryModule> small_resnet(uint64_t seed) {
  Rng rng(seed);
  models::ResNetCifarConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 4;
  return std::make_unique<models::ResNet18Cifar>(cfg, rng);
}

class ReducerConvergenceP
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ReducerConvergenceP, TrainsAboveChance) {
  const std::string which = GetParam();
  std::unique_ptr<compress::Reducer> reducer;
  float lr = 0.05f;
  float momentum = 0.9f;
  if (which == "allreduce")
    reducer = std::make_unique<compress::AllreduceReducer>();
  if (which == "powersgd")
    reducer = std::make_unique<compress::PowerSgdReducer>(4, 7);
  if (which == "topk")
    reducer = std::make_unique<compress::TopKReducer>(0.05);
  if (which == "binary-quant") {
    // Whole-gradient binary quantization is very coarse: a smaller step
    // plus momentum averages the (zero-mean) quantization noise.
    reducer = std::make_unique<compress::BinaryQuantReducer>(7);
    lr = 0.01f;
  }
  if (which == "signum") {
    reducer = std::make_unique<compress::SignumReducer>();
    lr = 0.005f;  // sign updates are unit-magnitude
    momentum = 0.0f;
  }
  ASSERT_NE(reducer, nullptr);

  auto ds = easy_data();
  dist::CostModel cm;
  cm.nodes = 4;
  dist::DistTrainConfig cfg;
  cfg.epochs = 10;
  cfg.global_batch = 16;
  cfg.lr = lr;
  cfg.momentum = momentum;
  cfg.lr_milestones = {8};
  dist::DataParallelTrainer trainer(small_resnet(5), std::move(reducer), cm,
                                    cfg);
  auto recs = trainer.train(ds);
  EXPECT_GT(recs.back().test_acc, 0.4) << which;  // chance = 0.25
}

INSTANTIATE_TEST_SUITE_P(Compressors, ReducerConvergenceP,
                         ::testing::Values("allreduce", "powersgd", "topk",
                                           "binary-quant", "signum"));

// ---- Full pipeline: Algorithm 1 + checkpoint round trip. ----

TEST(Pipeline, WarmupFactorizeFinetuneCheckpointReload) {
  auto ds = easy_data();
  // width 0.125: at 0.0625 the first stage's factorized blocks collapse to
  // rank 1 and the hybrid cannot learn -- a real pitfall worth documenting.
  auto vanilla = [](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::ResNetCifarConfig cfg;
    cfg.width_mult = 0.125;
    cfg.num_classes = 4;
    return std::make_unique<models::ResNet18Cifar>(cfg, rng);
  };
  auto hybrid = [](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::ResNetCifarConfig cfg = models::ResNetCifarConfig::pufferfish();
    cfg.width_mult = 0.125;
    cfg.num_classes = 4;
    return std::make_unique<models::ResNet18Cifar>(cfg, rng);
  };

  core::VisionTrainConfig cfg;
  cfg.epochs = 8;
  cfg.warmup_epochs = 2;
  cfg.batch = 16;
  cfg.lr_milestones = {6};
  core::VisionResult r = core::train_vision(vanilla, hybrid, ds, cfg);
  EXPECT_GT(r.final_acc, 0.4);

  // Train a fresh hybrid the same way, checkpoint, reload elsewhere, and
  // verify evaluation reproduces bit-for-bit.
  Rng rng(1);
  models::ResNetCifarConfig hcfg = models::ResNetCifarConfig::pufferfish();
  hcfg.width_mult = 0.125;
  hcfg.num_classes = 4;
  models::ResNet18Cifar trained(hcfg, rng);
  // (Reuse warm-start machinery to give it meaningful weights quickly.)
  Rng rng2(2);
  models::ResNetCifarConfig vcfg;
  vcfg.width_mult = 0.125;
  vcfg.num_classes = 4;
  models::ResNet18Cifar donor(vcfg, rng2);
  Rng svd_rng(3);
  core::warm_start(donor, trained, svd_rng);

  const std::string path =
      std::string(::testing::TempDir()) + "pipeline_ckpt.bin";
  nn::save_checkpoint(trained, path);
  models::ResNet18Cifar reloaded(hcfg, rng2);
  nn::load_checkpoint(reloaded, path);
  const core::EvalResult e1 = core::evaluate_vision(trained, ds, 16);
  const core::EvalResult e2 = core::evaluate_vision(reloaded, ds, 16);
  EXPECT_DOUBLE_EQ(e1.acc, e2.acc);
  EXPECT_DOUBLE_EQ(e1.loss, e2.loss);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pf
