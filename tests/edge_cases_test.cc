// Edge cases and failure-injection across modules: degenerate sizes, rank
// clamping, single-worker clusters, length-1 sequences, and invalid inputs
// that must throw rather than corrupt state.
#include <gtest/gtest.h>

#include "compress/compressor.h"
#include "core/factorize.h"
#include "dist/cluster.h"
#include "models/lstm_lm.h"
#include "models/resnet.h"
#include "models/transformer_mt.h"
#include "nn/lstm.h"
#include "tensor/matmul.h"

namespace pf {
namespace {

TEST(EdgePowerSgd, RankLargerThanMatrixIsClamped) {
  Rng rng(1);
  Tensor g = rng.randn(Shape{3 * 5});
  compress::PowerSgdReducer r(64, 2);  // rank 64 >> min(3, 5)
  compress::ReduceStats stats;
  Tensor agg = r.reduce({g}, {Shape{3, 5}}, &stats);
  EXPECT_EQ(agg.numel(), 15);
  // Clamped to full rank: exact after warm-up rounds.
  agg = r.reduce({g}, {Shape{3, 5}}, &stats);
  EXPECT_TRUE(allclose(agg, g, 1e-2f, 1e-3f));
}

TEST(EdgeReducers, SingleWorkerIsIdentityLike) {
  Rng rng(2);
  Tensor g = rng.randn(Shape{16});
  compress::AllreduceReducer ar;
  compress::ReduceStats stats;
  EXPECT_TRUE(allclose(ar.reduce({g}, {Shape{16}}, &stats), g));
  compress::TopKReducer tk(1.0);  // keep everything
  EXPECT_TRUE(allclose(tk.reduce({g}, {Shape{16}}, &stats), g, 1e-5f));
}

TEST(EdgeReducers, MixedShapesLayoutRespected) {
  // A 1-D bias segment between two matrices must be aggregated exactly.
  Rng rng(3);
  Tensor g1 = rng.randn(Shape{4 + 6 + 4});
  Tensor g2 = rng.randn(Shape{4 + 6 + 4});
  std::vector<Shape> shapes = {Shape{2, 2}, Shape{6}, Shape{2, 2}};
  compress::PowerSgdReducer r(2, 5);
  compress::ReduceStats stats;
  Tensor agg = r.reduce({g1, g2}, shapes, &stats);
  for (int64_t j = 4; j < 10; ++j)
    EXPECT_NEAR(agg[j], 0.5f * (g1[j] + g2[j]), 1e-5f) << j;
}

TEST(EdgeLstm, SingleTimestepAndSingleBatch) {
  Rng rng(4);
  nn::LSTMLayer lstm(3, 4, rng);
  ag::Var y = lstm.forward(ag::leaf(rng.randn(Shape{1, 1, 3})), nullptr);
  EXPECT_EQ(y->shape(), (Shape{1, 1, 4}));
}

TEST(EdgeLstm, LowRankRankOne) {
  Rng rng(5);
  nn::LowRankLSTMLayer lstm(4, 4, 1, rng);
  ag::Var y = lstm.forward(ag::leaf(rng.randn(Shape{2, 2, 4})), nullptr);
  EXPECT_EQ(y->shape(), (Shape{2, 2, 4}));
  ag::backward(ag::sum_all(y));
  EXPECT_TRUE(lstm.u_ih[0]->has_grad());
}

TEST(EdgeTransformer, LengthOneSequences) {
  Rng rng(6);
  models::TransformerMT m(models::TransformerConfig::tiny(), rng);
  m.train(false);
  std::vector<int64_t> src = {3};  // one token, batch 1
  std::vector<int64_t> tgt = {1};
  ag::Var logits = m.forward(src, 1, tgt, 1, 1);
  EXPECT_EQ(logits->shape(), (Shape{1, 64}));
}

TEST(EdgeDist, MoreNodesThanSamplesStillRuns) {
  data::SyntheticImages::Config dc;
  dc.num_classes = 2;
  dc.hw = 8;
  dc.train_size = 8;
  dc.test_size = 8;
  data::SyntheticImages ds(dc);
  Rng rng(7);
  models::ResNetCifarConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 2;
  dist::CostModel cm;
  cm.nodes = 16;  // > samples per batch
  dist::DistTrainConfig tcfg;
  tcfg.epochs = 1;
  tcfg.global_batch = 8;
  dist::DataParallelTrainer t(
      std::make_unique<models::ResNet18Cifar>(cfg, rng),
      std::make_unique<compress::AllreduceReducer>(), cm, tcfg);
  dist::DistEpochRecord rec = t.train_epoch(ds, 0);
  EXPECT_GT(rec.breakdown.compute_s, 0.0);
}

TEST(EdgeFactorize, RankOneMatrixFactorization) {
  Rng rng(8);
  Tensor w = rng.randn(Shape{6, 4});
  Rng svd_rng(1);
  core::FactorPair f = core::factorize_matrix(w, 1, svd_rng);
  EXPECT_EQ(f.u.shape(), (Shape{6, 1}));
  EXPECT_EQ(f.v.shape(), (Shape{4, 1}));
  // Best rank-1 approximation is never worse than the zero matrix.
  EXPECT_LT(core::reconstruction_error(w, f), 1.0f);
}

TEST(EdgeFactorize, ZeroMatrixDoesNotCrash) {
  Tensor w = Tensor::zeros(Shape{5, 5});
  Rng svd_rng(2);
  core::FactorPair f = core::factorize_matrix(w, 2, svd_rng);
  Tensor rec = pf::matmul_nt(f.u, f.v);
  EXPECT_LT(rec.abs_max(), 1e-3f);
}

TEST(EdgeLstmLm, EmptyStateVectorIsPopulated) {
  Rng rng(9);
  models::LstmLm m(models::LstmLmConfig::tiny(), rng);
  std::vector<nn::LstmState> state;
  std::vector<int64_t> ids(4, 2);
  m.forward(ids, 2, 2, &state);
  ASSERT_EQ(state.size(), 2u);
  EXPECT_TRUE(state[0].h);
  EXPECT_TRUE(state[0].c);
}

TEST(EdgeData, BatchLargerThanDatasetYieldsNothing) {
  data::SyntheticImages::Config dc;
  dc.num_classes = 2;
  dc.hw = 8;
  dc.train_size = 8;
  dc.test_size = 4;
  data::SyntheticImages ds(dc);
  EXPECT_TRUE(ds.train_batches(16, 0).empty());
  // Test batch clamps to the remaining samples.
  data::ImageBatch b = ds.test_batch(2, 100);
  EXPECT_EQ(b.images.size(0), 2);
}

TEST(EdgeCostModel, SingleNodeRingIsFree) {
  dist::CostModel cm;
  cm.nodes = 1;
  EXPECT_NEAR(cm.allreduce_seconds(1 << 20), 0.0, 1e-12);
  EXPECT_NEAR(cm.allgather_seconds(1 << 20), 0.0, 1e-12);
}

TEST(EdgeEmbedding, OutOfRangeIdThrows) {
  Rng rng(10);
  nn::Embedding e(4, 3, rng);
  EXPECT_THROW(e.forward({0, 4}), std::runtime_error);
  EXPECT_THROW(e.forward({-1}), std::runtime_error);
}

TEST(EdgeCrossEntropy, AllIgnoredThrows) {
  Rng rng(11);
  ag::Var logits = ag::leaf(rng.randn(Shape{2, 3}));
  EXPECT_THROW(ag::cross_entropy(logits, {-100, -100}, 0.0f, -100),
               std::runtime_error);
}

TEST(EdgeDropout, POneThrows) {
  Rng rng(12);
  Rng drop(1);
  ag::Var x = ag::leaf(rng.randn(Shape{4}));
  EXPECT_THROW(ag::dropout(x, 1.0f, true, drop), std::runtime_error);
}

}  // namespace
}  // namespace pf
