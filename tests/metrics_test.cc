#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pf::metrics {
namespace {

TEST(TopkAccuracy, Top1) {
  Tensor logits = Tensor::from_vector({1, 5, 2,   // argmax 1
                                       9, 0, 0,   // argmax 0
                                       0, 1, 7})  // argmax 2
                      .reshape(Shape{3, 3});
  EXPECT_NEAR(topk_accuracy(logits, {1, 0, 2}, 1), 1.0, 1e-9);
  EXPECT_NEAR(topk_accuracy(logits, {0, 0, 2}, 1), 2.0 / 3, 1e-9);
  EXPECT_NEAR(topk_accuracy(logits, {2, 1, 0}, 1), 0.0, 1e-9);
}

TEST(TopkAccuracy, Top2CatchesRunnerUp) {
  Tensor logits =
      Tensor::from_vector({3, 2, 1, 0}).reshape(Shape{1, 4});
  EXPECT_NEAR(topk_accuracy(logits, {1}, 1), 0.0, 1e-9);
  EXPECT_NEAR(topk_accuracy(logits, {1}, 2), 1.0, 1e-9);
}

TEST(Perplexity, ExpOfLoss) {
  EXPECT_NEAR(perplexity(0.0), 1.0, 1e-9);
  EXPECT_NEAR(perplexity(std::log(50.0)), 50.0, 1e-6);
}

TEST(Bleu4, PerfectMatchIs100) {
  std::vector<std::vector<int64_t>> hyp = {{1, 2, 3, 4, 5, 6}};
  EXPECT_NEAR(bleu4(hyp, hyp), 100.0, 1e-6);
}

TEST(Bleu4, DisjointIsZero) {
  std::vector<std::vector<int64_t>> hyp = {{1, 2, 3, 4}};
  std::vector<std::vector<int64_t>> ref = {{5, 6, 7, 8}};
  EXPECT_NEAR(bleu4(hyp, ref), 0.0, 1e-6);
}

TEST(Bleu4, PartialMatchBetween) {
  std::vector<std::vector<int64_t>> ref = {{1, 2, 3, 4, 5, 6, 7, 8}};
  std::vector<std::vector<int64_t>> hyp = {{1, 2, 3, 4, 9, 10, 11, 12}};
  const double b = bleu4(hyp, ref);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 100.0);
}

TEST(Bleu4, BrevityPenaltyPunishesShortHyps) {
  std::vector<std::vector<int64_t>> ref = {{1, 2, 3, 4, 5, 6, 7, 8}};
  std::vector<std::vector<int64_t>> full = {{1, 2, 3, 4, 5, 6, 7, 8}};
  std::vector<std::vector<int64_t>> half = {{1, 2, 3, 4}};
  EXPECT_GT(bleu4(full, ref), bleu4(half, ref));
}

TEST(Bleu4, OrderMatters) {
  std::vector<std::vector<int64_t>> ref = {{1, 2, 3, 4, 5, 6}};
  std::vector<std::vector<int64_t>> shuffled = {{6, 5, 4, 3, 2, 1}};
  EXPECT_LT(bleu4(shuffled, ref), 50.0);
}

TEST(MeanStd, KnownValues) {
  MeanStd ms = mean_std({1.0, 2.0, 3.0});
  EXPECT_NEAR(ms.mean, 2.0, 1e-9);
  EXPECT_NEAR(ms.std, 1.0, 1e-9);
  MeanStd single = mean_std({5.0});
  EXPECT_NEAR(single.mean, 5.0, 1e-9);
  EXPECT_NEAR(single.std, 0.0, 1e-9);
  MeanStd empty = mean_std({});
  EXPECT_EQ(empty.mean, 0.0);
}

TEST(Format, Numbers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_int(1234567), "1,234,567");
  EXPECT_EQ(fmt_int(-1000), "-1,000");
  EXPECT_EQ(fmt_int(999), "999");
  EXPECT_EQ(fmt_ratio(1.637), "1.64x");
  EXPECT_EQ(fmt_bytes(512), "512.0 B");
  EXPECT_EQ(fmt_bytes(25 << 20), "25.0 MB");
}

TEST(Format, MeanStdString) {
  EXPECT_EQ(fmt_mean_std(MeanStd{93.89, 0.14}, 2), "93.89 +- 0.14");
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 2000000; ++i) x += i;
  EXPECT_GT(t.seconds(), 0.0);
  const double first = t.seconds();
  t.reset();
  EXPECT_LT(t.seconds(), first + 1.0);
}

TEST(Table, PrintsWithoutCrashing) {
  Table t({"model", "params", "acc"});
  t.add_row({"vanilla", "20,560,330", "93.91"});
  t.add_row({"pufferfish", "8,370,634", "93.89"});
  ::testing::internal::CaptureStdout();
  t.print();
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("vanilla"), std::string::npos);
  EXPECT_NE(out.find("8,370,634"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

}  // namespace
}  // namespace pf::metrics
