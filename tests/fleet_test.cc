// Fleet serving tests: lazy engine materialization, per-model bounded
// admission, weighted-EDF scheduling order, per-model stats breakdowns,
// trace determinism, and bitwise-identical serve outputs across thread
// counts (also run under ctest pf_tests_threads4 via the Fleet* filter).
#include "serve/fleet.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <utility>
#include <vector>

#include "models/resnet.h"
#include "quant/quantize.h"
#include "runtime/thread_pool.h"

namespace pf::serve {
namespace {

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(std::as_const(a).data(), std::as_const(b).data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

// Restores the env-default thread count when a test exits.
struct ThreadGuard {
  ~ThreadGuard() { runtime::set_threads(0); }
};

// Engine that records which (model tag, request id) it served, in order.
// The shared log has its own mutex: engines of one fleet run concurrently.
struct ServeLog {
  std::mutex m;
  std::vector<std::pair<int, uint64_t>> order;
};

class TaggingEngine : public Engine {
 public:
  TaggingEngine(int tag, ServeLog* log) : tag_(tag), log_(log) {}
  std::string name() const override { return "tag-" + std::to_string(tag_); }
  void forward_batch(const std::vector<RequestPtr>& reqs) override {
    std::lock_guard<std::mutex> lk(log_->m);
    for (const RequestPtr& r : reqs) {
      log_->order.emplace_back(tag_, r->id);
      r->output = r->input;  // echo
    }
  }

 private:
  int tag_;
  ServeLog* log_;
};

FleetModelConfig tagging_model(const std::string& name, int tag,
                               ServeLog* log, std::atomic<int>* built,
                               double deadline_ms = 10.0,
                               double weight = 1.0) {
  FleetModelConfig mc;
  mc.name = name;
  mc.factory = [tag, log, built]() -> std::unique_ptr<Engine> {
    if (built) built->fetch_add(1);
    return std::make_unique<TaggingEngine>(tag, log);
  };
  mc.batcher.max_batch = 4;
  mc.batcher.deadline_ms = 0.0;  // greedy flush: scheduling is all ordering
  mc.slo.deadline_ms = deadline_ms;
  mc.slo.weight = weight;
  return mc;
}

RequestPtr req(uint64_t id) {
  return make_request(id, Tensor(Shape{1}));
}

std::unique_ptr<nn::UnaryModule> tiny_resnet(uint64_t seed,
                                             int first_lowrank = 0) {
  Rng rng(seed);
  models::ResNetCifarConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.first_lowrank_block = first_lowrank;
  cfg.rank_ratio = 0.25;
  return std::make_unique<models::ResNet18Cifar>(cfg, rng);
}

TEST(Fleet, EnginesMaterializeLazilyAndOnce) {
  ServeLog log;
  std::atomic<int> built_a{0}, built_b{0};
  Fleet fleet(FleetConfig{});
  const int a = fleet.add_model(tagging_model("a", 0, &log, &built_a));
  const int b = fleet.add_model(tagging_model("b", 1, &log, &built_b));
  EXPECT_FALSE(fleet.materialized(a));
  EXPECT_FALSE(fleet.materialized(b));

  // Traffic only for model b: a's factory must never run.
  RequestPtr r = req(0);
  std::future<void> done = r->done.get_future();
  ASSERT_TRUE(fleet.submit(b, r));
  fleet.start();
  done.wait();
  fleet.stop();
  EXPECT_FALSE(fleet.materialized(a));
  EXPECT_TRUE(fleet.materialized(b));
  EXPECT_EQ(built_a.load(), 0);
  EXPECT_EQ(built_b.load(), 1);

  // Explicit materialize is idempotent.
  fleet.materialize(a);
  fleet.materialize(a);
  EXPECT_TRUE(fleet.materialized(a));
  EXPECT_EQ(built_a.load(), 1);
}

TEST(Fleet, AdmissionBoundsArePerModelQueue) {
  ServeLog log;
  metrics::FleetStats stats;
  stats.add_model("a");
  stats.add_model("b");
  Fleet fleet(FleetConfig{}, &stats);
  FleetModelConfig small = tagging_model("a", 0, &log, nullptr);
  small.batcher.max_depth = 2;
  const int a = fleet.add_model(std::move(small));
  const int b = fleet.add_model(tagging_model("b", 1, &log, nullptr));

  // Fill a's bounded queue before workers run; b is unaffected.
  std::vector<std::future<void>> futs;
  for (uint64_t i = 0; i < 2; ++i) {
    RequestPtr r = req(i);
    futs.push_back(r->done.get_future());
    ASSERT_TRUE(fleet.submit(a, r));
  }
  EXPECT_FALSE(fleet.submit(a, req(2)));  // a's queue full -> shed a only
  RequestPtr rb = req(3);
  futs.push_back(rb->done.get_future());
  EXPECT_TRUE(fleet.submit(b, rb));
  EXPECT_EQ(fleet.queue_depth(a), 2);
  EXPECT_EQ(fleet.queue_depth(b), 1);

  fleet.start();
  for (auto& f : futs) f.wait();
  fleet.stop();
  metrics::FleetReport rep = stats.report();
  EXPECT_EQ(rep.models[static_cast<size_t>(a)].rejected, 1);
  EXPECT_EQ(rep.models[static_cast<size_t>(a)].completed, 2);
  EXPECT_EQ(rep.models[static_cast<size_t>(b)].rejected, 0);
  EXPECT_EQ(rep.models[static_cast<size_t>(b)].completed, 1);
  EXPECT_EQ(rep.total.completed, 3);

  // Stopped fleets reject everything.
  EXPECT_FALSE(fleet.submit(b, req(9)));
}

TEST(Fleet, WeightedEdfDrainsHigherWeightClassFirst) {
  ThreadGuard guard;
  runtime::set_threads(1);  // one worker -> a strict serve order exists
  ServeLog log;
  Fleet fleet(FleetConfig{});
  // Same SLO deadline; "hot" preempts at half the slack via weight 2.
  const int hot =
      fleet.add_model(tagging_model("hot", 0, &log, nullptr, 10.0, 2.0));
  const int cold =
      fleet.add_model(tagging_model("cold", 1, &log, nullptr, 10.0, 1.0));

  // Interleave arrivals BEFORE starting workers, so both queues are aged
  // and flushable the moment the worker scans.
  std::vector<std::future<void>> futs;
  for (uint64_t i = 0; i < 8; ++i) {
    RequestPtr r = req(i);
    futs.push_back(r->done.get_future());
    ASSERT_TRUE(fleet.submit(i % 2 == 0 ? cold : hot, r));
  }
  fleet.start();
  for (auto& f : futs) f.wait();
  fleet.stop();

  // Virtual deadlines: hot = t_oldest + 5ms, cold = t_oldest + 10ms, and
  // the submissions are microseconds apart -- every hot batch outranks
  // every cold batch until hot is drained.
  ASSERT_EQ(log.order.size(), 8u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(log.order[i].first, 0) << i;
  for (size_t i = 4; i < 8; ++i) EXPECT_EQ(log.order[i].first, 1) << i;
}

TEST(Fleet, TraceTimelineIsDeterministic) {
  // The arrival timeline is pre-generated from (seed, phase, model), so two
  // identical runs offer the identical request sequence -- same per-model
  // totals regardless of replay jitter or thread count.
  TraceConfig trace;
  trace.phases = {{0.05, {400, 200}}, {0.05, {100, 800}}};
  std::vector<int64_t> counts[2];
  for (int run = 0; run < 2; ++run) {
    ServeLog log;
    Fleet fleet(FleetConfig{});
    fleet.add_model(tagging_model("a", 0, &log, nullptr));
    fleet.add_model(tagging_model("b", 1, &log, nullptr));
    fleet.start();
    std::vector<RequestFactory> make = {[](uint64_t id) { return req(id); },
                                        [](uint64_t id) { return req(id); }};
    counts[run] = run_trace_open_loop(fleet, make, trace);
    fleet.stop();
    ASSERT_EQ(counts[run].size(), 2u);
    EXPECT_GT(counts[run][0], 0);
    EXPECT_GT(counts[run][1], 0);
  }
  EXPECT_EQ(counts[0], counts[1]);
}

TEST(Fleet, ServeOutputsBitwiseIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  // Two real engines -- one fp32, one int8-committed -- served at
  // PF_THREADS=1 and PF_THREADS=4: every request's logits must be bitwise
  // identical (batch-composition-invariant forwards + per-model queues).
  constexpr int kReqs = 12;
  Rng xr(7);
  std::vector<Tensor> inputs;
  for (int i = 0; i < kReqs; ++i) inputs.push_back(xr.randn(Shape{3, 8, 8}));

  auto serve_all = [&](int threads) {
    runtime::set_threads(threads);
    Fleet fleet(FleetConfig{/*workers=*/threads});
    for (int mdl = 0; mdl < 2; ++mdl) {
      FleetModelConfig mc;
      mc.name = mdl == 0 ? "fp32" : "int8";
      mc.factory = [mdl]() -> std::unique_ptr<Engine> {
        auto m = tiny_resnet(100, /*first_lowrank=*/2);
        if (mdl == 1) {
          m->train(false);
          quant::quantize_module(*m, quant::QuantSpec{});
          quant::commit(*m);
        }
        auto f = std::make_unique<FrozenModel>(std::move(m), "m");
        f->prime(Shape{3, 8, 8}, 4);
        return f;
      };
      mc.batcher.max_batch = 4;
      mc.batcher.deadline_ms = 0.5;
      fleet.add_model(std::move(mc));
    }
    fleet.start();
    std::vector<RequestPtr> reqs;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < kReqs; ++i) {
      RequestPtr r = make_request(static_cast<uint64_t>(i),
                                  inputs[static_cast<size_t>(i)]);
      futs.push_back(r->done.get_future());
      EXPECT_TRUE(fleet.submit(i % 2, r));
      reqs.push_back(std::move(r));
    }
    for (auto& f : futs) f.wait();
    fleet.stop();
    std::vector<Tensor> outs;
    for (const RequestPtr& r : reqs) outs.push_back(r->output);
    return outs;
  };

  const std::vector<Tensor> out1 = serve_all(1);
  const std::vector<Tensor> out4 = serve_all(4);
  ASSERT_EQ(out1.size(), out4.size());
  for (size_t i = 0; i < out1.size(); ++i)
    EXPECT_TRUE(bitwise_equal(out1[i], out4[i])) << "request " << i;
}

TEST(Fleet, StatsBreakdownsPerModelAndAggregate) {
  metrics::FleetStats stats;
  EXPECT_EQ(stats.add_model("alpha"), 0);
  EXPECT_EQ(stats.add_model("beta"), 1);
  stats.begin();
  stats.record_submit(0);
  stats.record_submit(0);
  stats.record_submit(1);
  stats.record_reject(1);
  stats.record_batch(0, 2, 0);
  stats.record_batch(1, 1, 0);
  stats.record_done(0, 1.0);
  stats.record_done(0, 3.0);
  stats.record_done(1, 10.0);
  metrics::FleetReport rep = stats.report();
  ASSERT_EQ(rep.models.size(), 2u);
  EXPECT_EQ(rep.names[0], "alpha");
  EXPECT_EQ(rep.models[0].submitted, 2);
  EXPECT_EQ(rep.models[0].completed, 2);
  EXPECT_EQ(rep.models[1].rejected, 1);
  EXPECT_EQ(rep.total.submitted, 3);
  EXPECT_EQ(rep.total.completed, 3);
  EXPECT_EQ(rep.total.rejected, 1);
  // Aggregate percentiles come from one reservoir over all models.
  EXPECT_GE(rep.total.p99_ms, rep.models[0].p99_ms);
  EXPECT_EQ(rep.summary().empty(), false);
}

}  // namespace
}  // namespace pf::serve
