#include <gtest/gtest.h>

#include <cmath>
#include "gradcheck.h"
#include "tensor/rng.h"

namespace pf::ag {
namespace {

using pf::testing::gradcheck;

TEST(Autograd, LeafAndBackwardSeed) {
  Var x = leaf(Tensor::scalar(2.0f), true);
  Var y = mul_scalar(x, 3.0f);
  backward(y);
  EXPECT_FLOAT_EQ(x->grad[0], 3.0f);
}

TEST(Autograd, NonScalarBackwardNeedsSeed) {
  Var x = leaf(Tensor::ones(Shape{3}), true);
  Var y = mul_scalar(x, 2.0f);
  EXPECT_THROW(backward(y), std::runtime_error);
  backward(y, Tensor::from_vector({1, 2, 3}));
  EXPECT_FLOAT_EQ(x->grad[1], 4.0f);
}

TEST(Autograd, GradAccumulatesOnReuse) {
  Var x = leaf(Tensor::scalar(3.0f), true);
  Var y = add(x, x);  // dy/dx = 2
  backward(y);
  EXPECT_FLOAT_EQ(x->grad[0], 2.0f);
}

TEST(Autograd, DiamondGraph) {
  // z = (x*x) + (x*2): dz/dx = 2x + 2 = 8 at x=3.
  Var x = leaf(Tensor::scalar(3.0f), true);
  Var z = add(mul(x, x), mul_scalar(x, 2.0f));
  backward(z);
  EXPECT_FLOAT_EQ(x->grad[0], 8.0f);
}

TEST(Autograd, NoGradGuardDropsTape) {
  Var x = leaf(Tensor::scalar(1.0f), true);
  NoGradGuard ng;
  Var y = mul_scalar(x, 2.0f);
  EXPECT_FALSE(y->requires_grad);
  EXPECT_TRUE(y->inputs.empty());
}

TEST(Autograd, NoGradWhenInputsDontRequire) {
  Var x = leaf(Tensor::scalar(1.0f), false);
  Var y = mul_scalar(x, 2.0f);
  EXPECT_FALSE(y->requires_grad);
}

TEST(Autograd, DeepChainIterativeTopoSort) {
  // 3000-node chain: recursion would overflow; must complete and be exact.
  Var x = leaf(Tensor::scalar(1.0f), true);
  Var cur = x;
  for (int i = 0; i < 3000; ++i) cur = add_scalar(cur, 0.001f);
  backward(cur);
  EXPECT_FLOAT_EQ(x->grad[0], 1.0f);
}

// ---- Finite-difference checks per op. ----

TEST(GradCheck, AddBroadcast) {
  Rng rng(1);
  gradcheck([](const std::vector<Var>& v) {
    return sum_all(add(v[0], v[1]));
  }, {rng.randn(Shape{3, 4}), rng.randn(Shape{4})});
}

TEST(GradCheck, SubMulDiv) {
  Rng rng(2);
  gradcheck([](const std::vector<Var>& v) {
    return sum_all(div(mul(sub(v[0], v[1]), v[1]), add_scalar(v[0], 3.0f)));
  }, {rng.rand(Shape{2, 3}, 0.5f, 1.5f), rng.rand(Shape{2, 3}, 0.5f, 1.5f)});
}

TEST(GradCheck, Activations) {
  Rng rng(3);
  gradcheck([](const std::vector<Var>& v) {
    return sum_all(add(tanh(v[0]), sigmoid(v[0])));
  }, {rng.randn(Shape{2, 5})});
}

TEST(GradCheck, ReluAwayFromKink) {
  Rng rng(4);
  Tensor x = rng.randn(Shape{10});
  for (int64_t i = 0; i < x.numel(); ++i)
    if (std::fabs(x[i]) < 0.1f) x[i] = 0.5f;  // avoid the nondifferentiable point
  gradcheck([](const std::vector<Var>& v) { return sum_all(relu(v[0])); },
            {x});
}

TEST(GradCheck, ExpLog) {
  Rng rng(5);
  gradcheck([](const std::vector<Var>& v) {
    return sum_all(log(add_scalar(exp(v[0]), 1.0f)));
  }, {rng.randn(Shape{6})});
}

TEST(GradCheck, MatmulChain) {
  Rng rng(6);
  gradcheck([](const std::vector<Var>& v) {
    return sum_all(matmul(v[0], v[1]));
  }, {rng.randn(Shape{3, 4}), rng.randn(Shape{4, 2})});
}

TEST(GradCheck, MatmulNt) {
  Rng rng(7);
  gradcheck([](const std::vector<Var>& v) {
    return sum_all(matmul_nt(v[0], v[1]));
  }, {rng.randn(Shape{3, 4}), rng.randn(Shape{5, 4})});
}

TEST(GradCheck, Bmm) {
  Rng rng(8);
  gradcheck([](const std::vector<Var>& v) {
    return sum_all(bmm(v[0], v[1]));
  }, {rng.randn(Shape{2, 3, 4}), rng.randn(Shape{2, 4, 2})});
}

TEST(GradCheck, BmmNt) {
  Rng rng(9);
  gradcheck([](const std::vector<Var>& v) {
    return sum_all(bmm_nt(v[0], v[1]));
  }, {rng.randn(Shape{2, 3, 4}), rng.randn(Shape{2, 5, 4})});
}

TEST(GradCheck, ReshapeTransposeSliceConcat) {
  Rng rng(10);
  gradcheck([](const std::vector<Var>& v) {
    Var r = reshape(v[0], Shape{4, 3});
    Var t = transpose(r, {1, 0});             // (3, 4)
    Var s = slice(t, 1, 1, 2);                // (3, 2)
    Var c = concat({s, s}, 0);                // (6, 2)
    return sum_all(mul(c, c));
  }, {rng.randn(Shape{2, 6})});
}

TEST(GradCheck, MeanAll) {
  Rng rng(11);
  gradcheck([](const std::vector<Var>& v) {
    return mean_all(mul(v[0], v[0]));
  }, {rng.randn(Shape{3, 3})});
}

TEST(GradCheck, Softmax) {
  Rng rng(12);
  gradcheck([](const std::vector<Var>& v) {
    Var s = softmax(v[0]);
    return sum_all(mul(s, s));  // nontrivial downstream gradient
  }, {rng.randn(Shape{3, 5})});
}

TEST(GradCheck, CrossEntropyPlain) {
  Rng rng(13);
  gradcheck([](const std::vector<Var>& v) {
    return cross_entropy(v[0], {1, 0, 2});
  }, {rng.randn(Shape{3, 4})});
}

TEST(GradCheck, CrossEntropyLabelSmoothing) {
  Rng rng(14);
  gradcheck([](const std::vector<Var>& v) {
    return cross_entropy(v[0], {2, 3}, 0.1f);
  }, {rng.randn(Shape{2, 5})});
}

TEST(GradCheck, CrossEntropyIgnoreIndex) {
  Rng rng(15);
  gradcheck([](const std::vector<Var>& v) {
    return cross_entropy(v[0], {1, -100, 0}, 0.0f, -100);
  }, {rng.randn(Shape{3, 4})});
}

TEST(GradCheck, Conv2d) {
  Rng rng(16);
  gradcheck([](const std::vector<Var>& v) {
    return sum_all(mul(conv2d(v[0], v[1], 1, 1),
                       conv2d(v[0], v[1], 1, 1)));
  }, {rng.randn(Shape{2, 2, 4, 4}), rng.randn(Shape{3, 2, 3, 3})});
}

TEST(GradCheck, Conv2dStride2) {
  Rng rng(17);
  gradcheck([](const std::vector<Var>& v) {
    return sum_all(conv2d(v[0], v[1], 2, 1));
  }, {rng.randn(Shape{1, 2, 5, 5}), rng.randn(Shape{2, 2, 3, 3})});
}

TEST(GradCheck, Conv1x1) {
  Rng rng(18);
  gradcheck([](const std::vector<Var>& v) {
    return sum_all(conv2d(v[0], v[1], 1, 0));
  }, {rng.randn(Shape{2, 3, 3, 3}), rng.randn(Shape{4, 3, 1, 1})});
}

TEST(GradCheck, MaxPool) {
  Rng rng(19);
  // Perturbations must not flip the argmax: spread values.
  Tensor x = rng.rand(Shape{1, 2, 4, 4}, 0.0f, 10.0f);
  gradcheck([](const std::vector<Var>& v) {
    return sum_all(maxpool2d(v[0], 2, 2));
  }, {x}, 1e-3f);
}

TEST(GradCheck, AvgPools) {
  Rng rng(20);
  gradcheck([](const std::vector<Var>& v) {
    Var g = global_avgpool(v[0]);
    Var a = avgpool2d(v[0], 2, 2);
    return add(sum_all(mul(g, g)), sum_all(a));
  }, {rng.randn(Shape{2, 3, 4, 4})});
}

TEST(GradCheck, BatchNormTraining) {
  Rng rng(21);
  gradcheck([](const std::vector<Var>& v) {
    Var y = batchnorm2d(v[0], v[1], v[2], nullptr, nullptr, true);
    return sum_all(mul(y, y));
  }, {rng.randn(Shape{3, 2, 2, 2}), rng.rand(Shape{2}, 0.5f, 1.5f),
      rng.randn(Shape{2})});
}

TEST(GradCheck, BatchNormEval) {
  Rng rng(22);
  Tensor rm = Tensor::zeros(Shape{2});
  Tensor rv = Tensor::ones(Shape{2});
  gradcheck([&](const std::vector<Var>& v) {
    Var y = batchnorm2d(v[0], v[1], v[2], &rm, &rv, false);
    return sum_all(mul(y, y));
  }, {rng.randn(Shape{2, 2, 2, 2}), rng.rand(Shape{2}, 0.5f, 1.5f),
      rng.randn(Shape{2})});
}

TEST(GradCheck, LayerNorm) {
  Rng rng(23);
  gradcheck([](const std::vector<Var>& v) {
    Var y = layernorm(v[0], v[1], v[2]);
    return sum_all(mul(y, y));
  }, {rng.randn(Shape{3, 6}), rng.rand(Shape{6}, 0.5f, 1.5f),
      rng.randn(Shape{6})});
}

TEST(GradCheck, Embedding) {
  Rng rng(24);
  gradcheck([](const std::vector<Var>& v) {
    Var e = embedding({0, 2, 1, 2}, v[0]);
    return sum_all(mul(e, e));
  }, {rng.randn(Shape{3, 4})});
}

TEST(GradCheck, AddConstantMask) {
  Rng rng(25);
  Tensor mask(Shape{2, 3});
  mask[1] = -5.0f;
  gradcheck([&](const std::vector<Var>& v) {
    return sum_all(softmax(add_constant(v[0], mask)));
  }, {rng.randn(Shape{2, 3})});
}

TEST(Dropout, IdentityWhenEvalOrZeroP) {
  Rng rng(26);
  Rng drop_rng(1);
  Var x = leaf(rng.randn(Shape{100}), true);
  Var y = dropout(x, 0.5f, /*training=*/false, drop_rng);
  EXPECT_TRUE(allclose(y->value, x->value));
  Var z = dropout(x, 0.0f, true, drop_rng);
  EXPECT_TRUE(allclose(z->value, x->value));
}

TEST(Dropout, MaskAndScale) {
  Rng data_rng(27);
  Rng drop_rng(2);
  Var x = leaf(Tensor::ones(Shape{10000}), true);
  Var y = dropout(x, 0.3f, true, drop_rng);
  int64_t zeros = 0;
  for (int64_t i = 0; i < y->numel(); ++i) {
    if (y->value[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y->value[i], 1.0f / 0.7f, 1e-5);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y->numel(), 0.3, 0.02);
  // Backward reuses the same mask.
  backward(sum_all(y));
  for (int64_t i = 0; i < x->numel(); ++i)
    EXPECT_FLOAT_EQ(x->grad[i], y->value[i]);
}

TEST(CrossEntropy, MatchesManualValue) {
  // Uniform logits over 4 classes: loss = log(4).
  Var logits = leaf(Tensor::zeros(Shape{2, 4}), true);
  Var loss = cross_entropy(logits, {0, 3});
  EXPECT_NEAR(loss->value[0], std::log(4.0f), 1e-5);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(28);
  Var x = leaf(rng.randn(Shape{4, 7}) * 10.0f);
  Var s = softmax(x);
  for (int64_t r = 0; r < 4; ++r) {
    double sum = 0;
    for (int64_t c = 0; c < 7; ++c) sum += s->value[r * 7 + c];
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, NumericallyStableWithLargeLogits) {
  Tensor big(Shape{1, 3});
  big[0] = 1000.0f;
  big[1] = 999.0f;
  big[2] = -1000.0f;
  Var s = softmax(leaf(big));
  EXPECT_FALSE(std::isnan(s->value[0]));
  EXPECT_GT(s->value[0], s->value[1]);
  EXPECT_NEAR(s->value[2], 0.0f, 1e-6);
}

}  // namespace
}  // namespace pf::ag
