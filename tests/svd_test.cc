#include "linalg/svd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "tensor/matmul.h"

namespace pf::linalg {
namespace {

// Check that the columns of m are orthonormal.
void expect_orthonormal_columns(const Tensor& m, float tol = 1e-3f) {
  const int64_t rows = m.size(0), cols = m.size(1);
  for (int64_t j = 0; j < cols; ++j) {
    for (int64_t k = j; k < cols; ++k) {
      double dot = 0;
      for (int64_t i = 0; i < rows; ++i)
        dot += static_cast<double>(m[i * cols + j]) * m[i * cols + k];
      EXPECT_NEAR(dot, j == k ? 1.0 : 0.0, tol) << "cols " << j << "," << k;
    }
  }
}

TEST(JacobiEigh, DiagonalMatrix) {
  Tensor a(Shape{3, 3});
  a[0] = 3.0f;
  a[4] = 1.0f;
  a[8] = 2.0f;
  EigResult r = jacobi_eigh(a);
  EXPECT_NEAR(r.values[0], 3.0f, 1e-5);
  EXPECT_NEAR(r.values[1], 2.0f, 1e-5);
  EXPECT_NEAR(r.values[2], 1.0f, 1e-5);
}

TEST(JacobiEigh, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Tensor a = Tensor::from_vector({2, 1, 1, 2}).reshape(Shape{2, 2});
  EigResult r = jacobi_eigh(a);
  EXPECT_NEAR(r.values[0], 3.0f, 1e-5);
  EXPECT_NEAR(r.values[1], 1.0f, 1e-5);
  // Eigenvector for lambda=3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(r.vectors[0]), std::sqrt(0.5f), 1e-4);
}

TEST(JacobiEigh, ReconstructsMatrix) {
  Rng rng(3);
  Tensor m = rng.randn(Shape{6, 6});
  Tensor a = matmul_tn(m, m);  // symmetric PSD
  EigResult r = jacobi_eigh(a);
  // A == V diag(lambda) V^T.
  Tensor vl = r.vectors;
  for (int64_t i = 0; i < 6; ++i)
    for (int64_t j = 0; j < 6; ++j) vl[i * 6 + j] *= r.values[j];
  Tensor rec = matmul_nt(vl, r.vectors);
  EXPECT_TRUE(allclose(rec, a, 1e-3f, 1e-3f));
  expect_orthonormal_columns(r.vectors);
}

TEST(GramSvd, ExactRankRecovery) {
  // Build an exactly rank-2 matrix; full SVD must reconstruct it and the
  // trailing singular values must be ~0.
  Rng rng(5);
  Tensor u = rng.randn(Shape{8, 2});
  Tensor v = rng.randn(Shape{6, 2});
  Tensor a = matmul_nt(u, v);
  SvdResult s = gram_svd(a);
  EXPECT_GT(s.s[0], s.s[1]);
  EXPECT_NEAR(s.s[2], 0.0f, 1e-3f * s.s[0]);
  EXPECT_LT(frobenius_diff(svd_reconstruct(s), a), 1e-3f * a.norm());
}

TEST(GramSvd, TruncationIsBestApproximation) {
  Rng rng(7);
  Tensor a = rng.randn(Shape{10, 7});
  SvdResult full = gram_svd(a);
  SvdResult r3 = gram_svd(a, 3);
  // Eckart-Young: truncation error^2 == sum of discarded sigma^2.
  double expected = 0;
  for (int64_t i = 3; i < full.s.numel(); ++i)
    expected += static_cast<double>(full.s[i]) * full.s[i];
  const float err = frobenius_diff(svd_reconstruct(r3), a);
  EXPECT_NEAR(err * err, expected, 0.02 * expected + 1e-4);
}

TEST(GramSvd, WideMatrix) {
  Rng rng(11);
  Tensor a = rng.randn(Shape{4, 12});
  SvdResult s = gram_svd(a);
  EXPECT_EQ(s.u.shape(), (Shape{4, 4}));
  EXPECT_EQ(s.v.shape(), (Shape{12, 4}));
  EXPECT_LT(frobenius_diff(svd_reconstruct(s), a), 1e-3f * a.norm());
  expect_orthonormal_columns(s.u);
  expect_orthonormal_columns(s.v);
}

TEST(GramSvd, SingularValuesMatchFrobenius) {
  Rng rng(13);
  Tensor a = rng.randn(Shape{9, 9});
  SvdResult s = gram_svd(a);
  double sum_sq = 0;
  for (int64_t i = 0; i < s.s.numel(); ++i)
    sum_sq += static_cast<double>(s.s[i]) * s.s[i];
  EXPECT_NEAR(std::sqrt(sum_sq), a.norm(), 1e-2);
}

TEST(GramSvd, DescendingOrder) {
  Rng rng(17);
  Tensor a = rng.randn(Shape{12, 8});
  SvdResult s = gram_svd(a);
  for (int64_t i = 1; i < s.s.numel(); ++i)
    EXPECT_GE(s.s[i - 1], s.s[i] - 1e-5f);
}

struct SvdCase {
  int64_t m, n, rank;
};

class TruncSvdP : public ::testing::TestWithParam<SvdCase> {};

TEST_P(TruncSvdP, ErrorDecreasesWithRank) {
  const auto [m, n, rank] = GetParam();
  Rng rng(m * 37 + n);
  Tensor a = rng.randn(Shape{m, n});
  Rng r1(1), r2(2);
  const float e_lo = frobenius_diff(
      svd_reconstruct(truncated_svd(a, rank, r1)), a);
  const float e_hi = frobenius_diff(
      svd_reconstruct(truncated_svd(a, std::min(m, n), r2)), a);
  EXPECT_LE(e_hi, e_lo + 1e-4f);
  EXPECT_LT(e_lo, a.norm());  // better than the zero matrix
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TruncSvdP,
    ::testing::Values(SvdCase{16, 16, 4}, SvdCase{32, 8, 2},
                      SvdCase{8, 32, 2}, SvdCase{64, 16, 8},
                      SvdCase{27, 12, 3}));

TEST(RandomizedSvd, AgreesWithExactOnLowRank) {
  Rng rng(23);
  Tensor u = rng.randn(Shape{40, 5});
  Tensor v = rng.randn(Shape{30, 5});
  Tensor a = matmul_nt(u, v);  // exactly rank 5
  Rng seed(3);
  SvdResult rs = randomized_svd(a, 5, seed);
  EXPECT_LT(frobenius_diff(svd_reconstruct(rs), a), 1e-2f * a.norm());
  // Singular values close to exact.
  SvdResult ex = gram_svd(a, 5);
  for (int64_t i = 0; i < 5; ++i)
    EXPECT_NEAR(rs.s[i], ex.s[i], 1e-2f * ex.s[0]);
}

TEST(RandomizedSvd, NonPositiveRankClampsToFullLikeGramSvd) {
  // Regression: rank was only clamped from above, so rank <= 0 flowed into
  // the sketch width and asked for a zero/negative-column Omega instead of
  // meaning "full rank" as it does in gram_svd.
  Rng rng(31);
  Tensor u = rng.randn(Shape{12, 3});
  Tensor v = rng.randn(Shape{9, 3});
  Tensor a = matmul_nt(u, v);  // exactly rank 3
  for (const int64_t r : {int64_t{0}, int64_t{-4}}) {
    Rng seed(5);
    SvdResult rs = randomized_svd(a, r, seed);
    EXPECT_EQ(rs.s.numel(), std::min<int64_t>(12, 9)) << "rank " << r;
    EXPECT_LT(frobenius_diff(svd_reconstruct(rs), a), 1e-2f * a.norm())
        << "rank " << r;
  }
}

TEST(RandomizedSvd, HandlesTruncationOfFullRank) {
  Rng rng(29);
  Tensor a = rng.randn(Shape{50, 20});
  Rng seed(4);
  SvdResult rs = randomized_svd(a, 6, seed);
  SvdResult ex = gram_svd(a, 6);
  const float re = frobenius_diff(svd_reconstruct(rs), a);
  const float ee = frobenius_diff(svd_reconstruct(ex), a);
  EXPECT_LT(re, 1.1f * ee + 1e-3f);  // near-optimal
}

TEST(OrthonormalizeColumns, MakesOrthonormal) {
  Rng rng(31);
  Tensor m = rng.randn(Shape{20, 6});
  orthonormalize_columns(m);
  expect_orthonormal_columns(m);
}

TEST(OrthonormalizeColumns, HandlesDuplicateColumns) {
  Tensor m(Shape{5, 3});
  for (int64_t i = 0; i < 5; ++i) {
    m[i * 3 + 0] = static_cast<float>(i + 1);
    m[i * 3 + 1] = static_cast<float>(i + 1);  // duplicate of col 0
    m[i * 3 + 2] = static_cast<float>(i * i);
  }
  orthonormalize_columns(m);
  expect_orthonormal_columns(m, 2e-3f);
}

TEST(OrthonormalizeColumns, SpanIsPreserved) {
  Rng rng(37);
  Tensor m = rng.randn(Shape{12, 3});
  Tensor orig = m;
  orthonormalize_columns(m);
  // Each original column must be expressible in the new basis:
  // residual of projection ~ 0.
  for (int64_t j = 0; j < 3; ++j) {
    std::vector<float> col(12);
    for (int64_t i = 0; i < 12; ++i) col[static_cast<size_t>(i)] = orig[i * 3 + j];
    std::vector<float> res = col;
    for (int64_t b = 0; b < 3; ++b) {
      double dot = 0;
      for (int64_t i = 0; i < 12; ++i)
        dot += static_cast<double>(res[static_cast<size_t>(i)]) * m[i * 3 + b];
      for (int64_t i = 0; i < 12; ++i)
        res[static_cast<size_t>(i)] -= static_cast<float>(dot) * m[i * 3 + b];
    }
    double rn = 0;
    for (float v : res) rn += static_cast<double>(v) * v;
    EXPECT_NEAR(std::sqrt(rn), 0.0, 1e-2);
  }
}

TEST(FrobeniusDiff, Basics) {
  Tensor a = Tensor::ones(Shape{2, 2});
  Tensor b = Tensor::zeros(Shape{2, 2});
  EXPECT_NEAR(frobenius_diff(a, b), 2.0f, 1e-5);
  EXPECT_NEAR(frobenius_diff(a, a), 0.0f, 1e-6);
}

}  // namespace
}  // namespace pf::linalg

// (appended) tred2/tqli eigensolver checks against Jacobi.
namespace pf::linalg {
namespace {

TEST(TridiagEigh, MatchesJacobiOnRandomSymmetric) {
  Rng rng(41);
  for (int64_t n : {5, 17, 64, 150}) {
    Tensor m = rng.randn(Shape{n, n});
    Tensor a = matmul_tn(m, m);
    EigResult jr = jacobi_eigh(a);
    EigResult tr = tridiag_eigh(a);
    for (int64_t i = 0; i < n; ++i)
      EXPECT_NEAR(tr.values[i], jr.values[i],
                  1e-3f * std::max(1.0f, jr.values[0]))
          << "n=" << n << " i=" << i;
    // Eigenvectors reconstruct A.
    Tensor vl = tr.vectors;
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = 0; j < n; ++j) vl[i * n + j] *= tr.values[j];
    Tensor rec = matmul_nt(vl, tr.vectors);
    EXPECT_LT(frobenius_diff(rec, a), 1e-3f * a.norm()) << "n=" << n;
  }
}

TEST(TridiagEigh, DiagonalAndIdentity) {
  Tensor d(Shape{4, 4});
  d[0] = 4; d[5] = 1; d[10] = 3; d[15] = 2;
  EigResult r = tridiag_eigh(d);
  EXPECT_NEAR(r.values[0], 4.0f, 1e-5);
  EXPECT_NEAR(r.values[3], 1.0f, 1e-5);
  Tensor eye(Shape{3, 3});
  for (int64_t i = 0; i < 3; ++i) eye[i * 3 + i] = 1.0f;
  EigResult re = tridiag_eigh(eye);
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(re.values[i], 1.0f, 1e-6);
}

TEST(Eigh, DispatchesBySize) {
  Rng rng(43);
  Tensor m = rng.randn(Shape{120, 120});
  Tensor a = matmul_tn(m, m);
  EigResult r = eigh(a);  // tridiag path
  EigResult j = jacobi_eigh(a);
  EXPECT_NEAR(r.values[0], j.values[0], 1e-2f * j.values[0]);
}

}  // namespace
}  // namespace pf::linalg
