#include "dist/cluster.h"

#include <gtest/gtest.h>

#include "models/resnet.h"

namespace pf::dist {
namespace {

TEST(CostModel, AllreduceScalesWithBytes) {
  CostModel cm;
  cm.nodes = 8;
  EXPECT_LT(cm.allreduce_seconds(1 << 20), cm.allreduce_seconds(16 << 20));
}

TEST(CostModel, LatencyTermScalesWithCalls) {
  CostModel cm;
  cm.nodes = 16;
  // Packing 100 layers into 1 call (paper Section 4.1) beats 100 calls.
  const double packed = cm.allreduce_seconds(25 << 20, 1);
  const double unpacked = cm.allreduce_seconds(25 << 20, 100);
  EXPECT_LT(packed, unpacked);
  EXPECT_NEAR(unpacked - packed, 99 * 2 * 15 * cm.latency_s, 1e-9);
}

TEST(CostModel, AllgatherGrowsFasterWithNodes) {
  // Same payload: allgather's bandwidth term scales with (p-1), allreduce's
  // saturates at 2 -- the paper's argument for why SIGNUM underperforms.
  const int64_t bytes = 25 << 20;
  CostModel small;
  small.nodes = 2;
  CostModel big;
  big.nodes = 16;
  const double ar_ratio =
      big.allreduce_seconds(bytes) / small.allreduce_seconds(bytes);
  const double ag_ratio =
      big.allgather_seconds(bytes) / small.allgather_seconds(bytes);
  EXPECT_GT(ag_ratio, ar_ratio);
}

TEST(CostModel, CompressedAllgatherCanStillLose) {
  // 32x compressed allgather vs dense allreduce at 16 nodes: the (p-1)
  // factor eats much of the compression.
  CostModel cm;
  cm.nodes = 16;
  const int64_t dense = 100 << 20;
  const double t_dense_ar = cm.allreduce_seconds(dense);
  const double t_sign_ag = cm.allgather_seconds(dense / 32);
  EXPECT_LT(t_sign_ag, t_dense_ar);          // still wins on raw comm...
  EXPECT_GT(t_sign_ag, t_dense_ar / 32.0);   // ...but far less than 32x
}

TEST(DdpOverlap, BoundedBelowByComputeAndComm) {
  CostModel cm;
  cm.nodes = 8;
  const double compute = 1.0;
  const int64_t bytes = 100 << 20;
  const double t = ddp_epoch_seconds(compute, bytes, cm);
  EXPECT_GE(t, compute);
  // Total is at most compute + full comm (no overlap at all).
  EXPECT_LE(t, compute + cm.allreduce_seconds(bytes, 4) + 1e-6);
}

TEST(DdpOverlap, SmallGradsFullyHidden) {
  CostModel cm;
  cm.nodes = 4;
  const double t = ddp_epoch_seconds(10.0, 1 << 20, cm);
  EXPECT_NEAR(t, 10.0, 0.05);
}

TEST(DdpOverlap, SmallerModelNeverSlower) {
  CostModel cm;
  cm.nodes = 16;
  const double t_big = ddp_epoch_seconds(1.0, 100 << 20, cm);
  const double t_small = ddp_epoch_seconds(0.7, 60 << 20, cm);
  EXPECT_LT(t_small, t_big);
}

class NodesP : public ::testing::TestWithParam<int> {};

TEST_P(NodesP, AllreduceTimeIncreasesWithNodes) {
  CostModel cm;
  cm.nodes = GetParam();
  CostModel bigger = cm;
  bigger.nodes = GetParam() * 2;
  EXPECT_LT(cm.allreduce_seconds(25 << 20),
            bigger.allreduce_seconds(25 << 20));
}

INSTANTIATE_TEST_SUITE_P(Sweep, NodesP, ::testing::Values(2, 4, 8));

// ---- Cluster training semantics. ----

data::SyntheticImages tiny_data() {
  data::SyntheticImages::Config dc;
  dc.num_classes = 4;
  dc.hw = 8;
  dc.train_size = 32;
  dc.test_size = 16;
  dc.augment = false;
  return data::SyntheticImages(dc);
}

std::unique_ptr<nn::UnaryModule> tiny_model(uint64_t seed) {
  Rng rng(seed);
  models::ResNetCifarConfig cfg;
  cfg.width_mult = 0.0625;  // 4-16-... channels
  cfg.num_classes = 4;
  return std::make_unique<models::ResNet18Cifar>(cfg, rng);
}

// BN-free MLP: data-parallel equivalence holds exactly only without
// per-replica batch statistics (true of real DDP as well).
std::unique_ptr<nn::UnaryModule> mlp_model(uint64_t seed) {
  Rng rng(seed);
  auto s = std::make_unique<nn::Sequential>();
  s->emplace<nn::Flatten>();
  s->emplace<nn::Linear>(3 * 8 * 8, 16, rng);
  s->emplace<nn::ReLU>();
  s->emplace<nn::Linear>(16, 4, rng);
  return s;
}

TEST(DataParallelTrainer, AllreduceMatchesSingleNodeLargeBatch) {
  // Data-parallel SGD with exact-mean allreduce over k workers is
  // mathematically identical to single-process training with the global
  // batch (for models without per-replica batch statistics). This is the
  // core correctness property of the simulator.
  auto ds = tiny_data();
  DistTrainConfig cfg;
  cfg.epochs = 2;
  cfg.global_batch = 16;
  cfg.lr = 0.05f;

  CostModel cm1;
  cm1.nodes = 1;
  DataParallelTrainer single(mlp_model(3),
                             std::make_unique<compress::AllreduceReducer>(),
                             cm1, cfg);
  auto rec1 = single.train(ds);

  CostModel cm4;
  cm4.nodes = 4;
  DataParallelTrainer multi(mlp_model(3),
                            std::make_unique<compress::AllreduceReducer>(),
                            cm4, cfg);
  auto rec4 = multi.train(ds);

  EXPECT_TRUE(allclose(single.model().flat_params(),
                       multi.model().flat_params(), 1e-3f, 1e-4f));
  EXPECT_NEAR(rec1.back().train_loss, rec4.back().train_loss, 1e-3);
}

TEST(DataParallelTrainer, TrainsToAboveChance) {
  auto ds = tiny_data();
  DistTrainConfig cfg;
  cfg.epochs = 6;
  cfg.global_batch = 16;
  cfg.lr = 0.05f;
  CostModel cm;
  cm.nodes = 4;
  DataParallelTrainer t(tiny_model(5),
                        std::make_unique<compress::AllreduceReducer>(), cm,
                        cfg);
  auto recs = t.train(ds);
  EXPECT_GT(recs.back().test_acc, 0.3);  // chance = 0.25
  EXPECT_LT(recs.back().train_loss, recs.front().train_loss);
}

TEST(DataParallelTrainer, BreakdownIsPopulated) {
  auto ds = tiny_data();
  DistTrainConfig cfg;
  cfg.epochs = 1;
  cfg.global_batch = 16;
  CostModel cm;
  cm.nodes = 4;
  DataParallelTrainer t(tiny_model(7),
                        std::make_unique<compress::SignumReducer>(), cm, cfg);
  auto rec = t.train_epoch(ds, 0);
  EXPECT_GT(rec.breakdown.compute_s, 0.0);
  EXPECT_GT(rec.breakdown.comm_s, 0.0);
  EXPECT_GT(rec.breakdown.encode_s, 0.0);
  EXPECT_GT(rec.breakdown.decode_s, 0.0);
  EXPECT_GT(rec.breakdown.bytes_per_worker, 0);
  EXPECT_NEAR(rec.breakdown.total(),
              rec.breakdown.compute_s + rec.breakdown.encode_s +
                  rec.breakdown.comm_s + rec.breakdown.decode_s +
                  rec.breakdown.other_s,
              1e-9);
  EXPECT_GT(t.cumulative_sim_seconds(), 0.0);
}

TEST(DataParallelTrainer, SmallerModelCommunicatesLess) {
  auto ds = tiny_data();
  DistTrainConfig cfg;
  cfg.epochs = 1;
  cfg.global_batch = 16;
  CostModel cm;
  cm.nodes = 4;

  DataParallelTrainer vanilla(tiny_model(9),
                              std::make_unique<compress::AllreduceReducer>(),
                              cm, cfg);
  auto rv = vanilla.train_epoch(ds, 0);

  Rng rng(9);
  models::ResNetCifarConfig pcfg = models::ResNetCifarConfig::pufferfish();
  pcfg.width_mult = 0.0625;
  pcfg.num_classes = 4;
  DataParallelTrainer pf(std::make_unique<models::ResNet18Cifar>(pcfg, rng),
                         std::make_unique<compress::AllreduceReducer>(), cm,
                         cfg);
  auto rp = pf.train_epoch(ds, 0);

  EXPECT_LT(rp.breakdown.bytes_per_worker, rv.breakdown.bytes_per_worker);
  EXPECT_LT(rp.breakdown.comm_s, rv.breakdown.comm_s);
}

TEST(DataParallelTrainer, ReplaceModelMidRun) {
  auto ds = tiny_data();
  DistTrainConfig cfg;
  cfg.epochs = 1;
  cfg.global_batch = 16;
  CostModel cm;
  cm.nodes = 2;
  DataParallelTrainer t(tiny_model(11),
                        std::make_unique<compress::AllreduceReducer>(), cm,
                        cfg);
  t.train_epoch(ds, 0);
  const double before = t.cumulative_sim_seconds();
  t.replace_model(tiny_model(12), nullptr);
  auto rec = t.train_epoch(ds, 1);
  EXPECT_GT(rec.cumulative_sim_seconds, before);
}

}  // namespace
}  // namespace pf::dist
