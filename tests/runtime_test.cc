// Tests for the thread-pool parallel runtime and the shared-memory
// data-parallel executor: coverage (every index exactly once), bitwise
// determinism across thread counts, and measured-vs-modeled cluster
// equivalence.
#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <vector>

#include "compress/compressor.h"
#include "core/checkpoint.h"
#include "dist/cluster.h"
#include "models/resnet.h"
#include "runtime/shm_cluster.h"
#include "tensor/im2col.h"
#include "tensor/matmul.h"

namespace pf {
namespace {

// Restores the env-default thread count when a test exits.
struct ThreadGuard {
  ~ThreadGuard() { runtime::set_threads(0); }
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadGuard tg;
  const int64_t kRanges[] = {0, 1, 17, 1000};
  const int64_t kGrains[] = {-3, 0, 1, 3, 7, 64, 1 << 20};
  for (int threads : {1, 3, 8}) {
    runtime::set_threads(threads);
    for (int64_t n : kRanges) {
      for (int64_t grain : kGrains) {
        std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
        for (auto& h : hits) h.store(0);
        runtime::parallel_for(0, n, grain, [&](int64_t b, int64_t e) {
          EXPECT_LE(b, e);
          for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
        });
        for (int64_t i = 0; i < n; ++i)
          EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
              << "n=" << n << " grain=" << grain << " threads=" << threads
              << " i=" << i;
      }
    }
  }
}

TEST(ParallelFor, NonZeroBeginAndEmptyRange) {
  ThreadGuard tg;
  runtime::set_threads(4);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  runtime::parallel_for(40, 100, 9, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (int64_t i = 0; i < 100; ++i)
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), i >= 40 ? 1 : 0);
  bool ran = false;
  runtime::parallel_for(5, 5, 1, [&](int64_t, int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelReduce, BitwiseReproducibleAcrossThreadCounts) {
  ThreadGuard tg;
  // A float sum whose result depends on association order: identical chunk
  // decomposition + in-order combining must give the same bits regardless
  // of thread count.
  auto run = [](int threads) {
    runtime::set_threads(threads);
    return runtime::parallel_reduce<float>(
        0, 10000, 37, 0.0f,
        [](int64_t b, int64_t e) {
          float s = 0;
          for (int64_t i = b; i < e; ++i)
            s += 1.0f / static_cast<float>(i + 1);
          return s;
        },
        [](float a, float b) { return a + b; });
  };
  const float r1 = run(1);
  const float r2 = run(2);
  const float r8 = run(8);
  EXPECT_EQ(std::memcmp(&r1, &r2, sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(&r1, &r8, sizeof(float)), 0);
}

TEST(ParallelReduce, NestedCallsFromInsideChunksStaySerial) {
  ThreadGuard tg;
  runtime::set_threads(4);
  // A parallel_for issued from inside a pool job must complete inline
  // (no deadlock) and still cover its range.
  std::atomic<int64_t> total{0};
  runtime::parallel_for(0, 16, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      int64_t local = 0;
      runtime::parallel_for(0, 10, 3,
                            [&](int64_t bb, int64_t ee) { local += ee - bb; });
      total += local;
    }
  });
  EXPECT_EQ(total.load(), 160);
}

// ---- Kernel determinism across thread counts. ----

template <typename Fn>
void expect_bitwise_equal_across_threads(const Fn& compute) {
  ThreadGuard tg;
  runtime::set_threads(1);
  const Tensor t1 = compute();
  runtime::set_threads(2);
  const Tensor t2 = compute();
  runtime::set_threads(8);
  const Tensor t8 = compute();
  ASSERT_EQ(t1.numel(), t2.numel());
  ASSERT_EQ(t1.numel(), t8.numel());
  EXPECT_EQ(std::memcmp(t1.data(), t2.data(),
                        static_cast<size_t>(t1.numel()) * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(t1.data(), t8.data(),
                        static_cast<size_t>(t1.numel()) * sizeof(float)),
            0);
}

TEST(ThreadedKernels, MatmulBitwiseIdentical) {
  Rng rng(42);
  const Tensor a = rng.randn(Shape{67, 129});
  const Tensor b = rng.randn(Shape{129, 83});
  expect_bitwise_equal_across_threads([&] { return matmul(a, b); });
}

TEST(ThreadedKernels, MatmulTnNtBitwiseIdentical) {
  Rng rng(43);
  const Tensor a = rng.randn(Shape{96, 64});
  const Tensor b = rng.randn(Shape{96, 51});
  expect_bitwise_equal_across_threads([&] { return matmul_tn(a, b); });
  const Tensor c = rng.randn(Shape{64, 96});
  const Tensor d = rng.randn(Shape{51, 96});
  expect_bitwise_equal_across_threads([&] { return matmul_nt(c, d); });
}

TEST(ThreadedKernels, BmmBitwiseIdentical) {
  Rng rng(44);
  const Tensor a = rng.randn(Shape{5, 17, 23});
  const Tensor b = rng.randn(Shape{5, 23, 11});
  expect_bitwise_equal_across_threads([&] { return bmm(a, b); });
  const Tensor bn = rng.randn(Shape{5, 11, 23});
  expect_bitwise_equal_across_threads([&] { return bmm_nt(a, bn); });
  const Tensor at = rng.randn(Shape{5, 23, 17});
  const Tensor bt = rng.randn(Shape{5, 23, 11});
  expect_bitwise_equal_across_threads([&] { return bmm_tn(at, bt); });
}

TEST(ThreadedKernels, Im2colBitwiseIdentical) {
  Rng rng(45);
  const ConvGeom g{6, 13, 13, 3, 2, 1};
  const Tensor img = rng.randn(Shape{g.c_in, g.h, g.w});
  const int64_t cols = g.patch() * g.out_h() * g.out_w();
  expect_bitwise_equal_across_threads([&] {
    Tensor col(Shape{cols});
    im2col(img.data(), g, col.data());
    return col;
  });
  const Tensor col = rng.randn(Shape{cols});
  expect_bitwise_equal_across_threads([&] {
    Tensor out(Shape{g.c_in, g.h, g.w});
    col2im(col.data(), g, out.data());
    return out;
  });
}

// ---- Shared-memory cluster vs the modeled sequential cluster. ----

data::SyntheticImages tiny_data() {
  data::SyntheticImages::Config dc;
  dc.num_classes = 4;
  dc.hw = 8;
  dc.train_size = 32;
  dc.test_size = 16;
  dc.augment = false;
  return data::SyntheticImages(dc);
}

core::VisionModelFactory tiny_resnet_factory(bool factorized) {
  return [factorized](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::ResNetCifarConfig cfg;
    if (factorized) {
      cfg = models::ResNetCifarConfig::pufferfish();
    }
    cfg.width_mult = 0.0625;
    cfg.num_classes = 4;
    return std::make_unique<models::ResNet18Cifar>(cfg, rng);
  };
}

// Runs both executors over the same data/config and checks the per-epoch
// loss trajectories agree to float tolerance. The shm ring sums replicas in
// the same order as the sequential mean, so agreement is tight.
void expect_shm_matches_modeled(bool factorized) {
  auto ds = tiny_data();
  dist::DistTrainConfig tc;
  tc.epochs = 2;
  tc.global_batch = 16;
  tc.lr = 0.05f;
  tc.seed = 3;

  // Sequential modeled cluster, seeded like the shm replicas.
  Rng seq_rng(tc.seed * 0x9E3779B9u + 101);
  dist::CostModel cm;
  cm.nodes = 4;
  dist::DataParallelTrainer modeled(
      tiny_resnet_factory(factorized)(seq_rng),
      std::make_unique<compress::AllreduceReducer>(), cm, tc);
  const auto modeled_recs = modeled.train(ds);

  runtime::ShmClusterConfig scfg;
  scfg.workers = 4;
  scfg.bucket_bytes = 16 << 10;  // several buckets per step
  scfg.train = tc;
  runtime::ShmDataParallelTrainer shm(
      tiny_resnet_factory(factorized),
      std::make_unique<compress::AllreduceReducer>(), scfg);
  const auto shm_recs = shm.train(ds);

  ASSERT_EQ(modeled_recs.size(), shm_recs.size());
  for (size_t e = 0; e < shm_recs.size(); ++e)
    EXPECT_NEAR(shm_recs[e].train_loss, modeled_recs[e].train_loss, 2e-3)
        << "epoch " << e << (factorized ? " (factorized)" : " (vanilla)");
  EXPECT_TRUE(allclose(modeled.model().flat_params(),
                       shm.model().flat_params(), 1e-3f, 1e-4f));
}

TEST(ShmCluster, MatchesModeledClusterVanillaResNet) {
  expect_shm_matches_modeled(false);
}

TEST(ShmCluster, MatchesModeledClusterFactorizedResNet) {
  expect_shm_matches_modeled(true);
}

TEST(ShmCluster, ReducerPathRunsPowerSgd) {
  auto ds = tiny_data();
  dist::DistTrainConfig tc;
  tc.epochs = 1;
  tc.global_batch = 16;
  tc.seed = 5;
  runtime::ShmClusterConfig scfg;
  scfg.workers = 4;
  scfg.train = tc;
  runtime::ShmDataParallelTrainer shm(
      tiny_resnet_factory(false),
      std::make_unique<compress::PowerSgdReducer>(2, 7), scfg);
  const auto rec = shm.train_epoch(ds, 0);
  EXPECT_TRUE(std::isfinite(rec.train_loss));
  EXPECT_GT(rec.breakdown.compute_s, 0.0);
  EXPECT_GT(rec.breakdown.bytes_per_worker, 0);
  // Measured breakdown sums to the epoch total by construction.
  EXPECT_NEAR(rec.breakdown.total(),
              rec.breakdown.compute_s + rec.breakdown.encode_s +
                  rec.breakdown.comm_s + rec.breakdown.decode_s +
                  rec.breakdown.other_s,
              1e-9);
}

TEST(ShmCluster, WorkerRngStreamsAreDistinct) {
  auto ds = tiny_data();
  (void)ds;
  runtime::ShmClusterConfig scfg;
  scfg.workers = 4;
  scfg.train.seed = 9;
  runtime::ShmDataParallelTrainer shm(tiny_resnet_factory(false), nullptr,
                                      scfg);
  std::vector<uint64_t> firsts;
  for (int w = 0; w < scfg.workers; ++w)
    firsts.push_back(shm.worker_rng(w).next_u64());
  for (size_t i = 0; i < firsts.size(); ++i)
    for (size_t j = i + 1; j < firsts.size(); ++j)
      EXPECT_NE(firsts[i], firsts[j]);
}

// ---- End-to-end determinism sweep across kernel thread counts. ----
//
// The per-kernel memcmp checks above prove each primitive is stable; these
// sweep the full training paths (data sharding, autograd, ring reduce, SVD
// warm-start, optimizer) and assert the FINAL PARAMETERS are bitwise
// identical at PF_THREADS=1 and 4 -- the end-to-end contract PR 1 promised.

TEST(ShmCluster, FinalParamsBitwiseIdenticalAcrossThreadCounts) {
  ThreadGuard tg;
  auto run = [&](int threads) {
    runtime::set_threads(threads);
    auto ds = tiny_data();
    runtime::ShmClusterConfig scfg;
    scfg.workers = 2;
    scfg.bucket_bytes = 16 << 10;
    scfg.train.epochs = 2;
    scfg.train.global_batch = 16;
    scfg.train.seed = 11;
    runtime::ShmDataParallelTrainer shm(tiny_resnet_factory(true), nullptr,
                                        scfg);
    shm.train(ds);
    return shm.model().flat_params();
  };
  const Tensor p1 = run(1);
  const Tensor p4 = run(4);
  ASSERT_EQ(p1.numel(), p4.numel());
  EXPECT_EQ(std::memcmp(p1.data(), p4.data(),
                        static_cast<size_t>(p1.numel()) * sizeof(float)),
            0);
}

TEST(TrainDeterminism, TrainVisionBitwiseIdenticalAcrossThreadCounts) {
  ThreadGuard tg;
  // Full Algorithm 1 (warm-up -> SVD warm-start -> fine-tune). The final
  // weights come back through a snapshot because train_vision owns its
  // model; per-epoch losses are compared exactly as well.
  auto run = [&](int threads, const std::string& dir) {
    auto ds = tiny_data();
    core::VisionTrainConfig cfg;
    cfg.epochs = 2;
    cfg.warmup_epochs = 1;
    cfg.batch = 16;
    cfg.seed = 13;
    cfg.threads = threads;
    cfg.checkpoint_dir = dir;
    cfg.checkpoint_every = 100;  // final-epoch snapshot only
    return core::train_vision(tiny_resnet_factory(false),
                              tiny_resnet_factory(true), ds, cfg);
  };
  const std::string dir1 = testing::TempDir() + "pf_sweep_t1." + std::to_string(::getpid());
  const std::string dir4 = testing::TempDir() + "pf_sweep_t4." + std::to_string(::getpid());
  const core::VisionResult r1 = run(1, dir1);
  const core::VisionResult r4 = run(4, dir4);

  ASSERT_EQ(r1.epochs.size(), r4.epochs.size());
  for (size_t e = 0; e < r1.epochs.size(); ++e)
    EXPECT_EQ(r1.epochs[e].train_loss, r4.epochs[e].train_loss) << "epoch " << e;
  EXPECT_EQ(r1.final_acc, r4.final_acc);
  EXPECT_EQ(r1.final_loss, r4.final_loss);

  Rng rng(0);
  std::unique_ptr<nn::UnaryModule> m1 = tiny_resnet_factory(true)(rng);
  std::unique_ptr<nn::UnaryModule> m4 = tiny_resnet_factory(true)(rng);
  core::load_snapshot(*m1, dir1);
  core::load_snapshot(*m4, dir4);
  const Tensor p1 = m1->flat_params();
  const Tensor p4 = m4->flat_params();
  ASSERT_EQ(p1.numel(), p4.numel());
  EXPECT_EQ(std::memcmp(p1.data(), p4.data(),
                        static_cast<size_t>(p1.numel()) * sizeof(float)),
            0);
  std::filesystem::remove_all(dir1);
  std::filesystem::remove_all(dir4);
}

}  // namespace
}  // namespace pf
