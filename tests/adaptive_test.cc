// Adaptive-rank training (DESIGN.md §15): the variance-gated reducer, the
// AB-style re-projection subsystem, the rank-policy encode/decode hardening
// (unknown kinds now fail loudly), error-feedback residuals for the lossy
// reducers, and bitwise resume across a re-projection boundary -- including
// the stateful-reducer buffers in TrainState v2 snapshots.
//
// Every suite here is prefixed Adaptive* so the ctest partitions
// (pf_tests_threads4, pf_tests_adaptive) can select the whole file.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "compress/compressor.h"
#include "compress/variance_gate.h"
#include "core/checkpoint.h"
#include "core/rank_policy.h"
#include "core/trainer.h"
#include "dist/cluster.h"
#include "models/resnet.h"
#include "nn/layers.h"
#include "nn/reproject.h"
#include "nn/serialize.h"
#include "runtime/shm_cluster.h"
#include "tensor/matmul.h"

namespace pf {
namespace {

using core::RankPolicy;

// ---------------- rank-policy encode/decode ----------------

TEST(AdaptivePolicy, EncodeDecodeRoundTripsAllKinds) {
  const RankPolicy policies[] = {
      RankPolicy::fixed(0.125),
      RankPolicy::energy_based(0.85, 3),
      RankPolicy::variance_gated(1.5, 6, 0.5),
      RankPolicy::ab_reproject(0.92, 4, 2),
  };
  for (const RankPolicy& p : policies) {
    const RankPolicy back = RankPolicy::decode(p.encode());
    EXPECT_TRUE(back == p);
    EXPECT_EQ(back.encode(), p.encode());
  }
  // Distinct kinds (and distinct knobs within a kind) never compare equal.
  for (const RankPolicy& a : policies)
    for (const RankPolicy& b : policies)
      if (&a != &b) EXPECT_TRUE(a != b);
  EXPECT_TRUE(RankPolicy::variance_gated(1.5, 6, 0.5) !=
              RankPolicy::variance_gated(1.5, 7, 0.5));
  EXPECT_TRUE(RankPolicy::ab_reproject(0.92, 4, 2) !=
              RankPolicy::ab_reproject(0.92, 5, 2));
}

TEST(AdaptivePolicy, DecodeRejectsUnknownKind) {
  // The latent bug this PR fixes: decode used to treat ANY unknown kind
  // word as kFixedRatio, silently resuming snapshots from newer builds
  // under the wrong policy.
  std::array<uint64_t, 4> words = RankPolicy::fixed(0.25).encode();
  words[0] = 99;
  EXPECT_THROW((void)RankPolicy::decode(words), std::runtime_error);
}

TEST(AdaptivePolicy, RankForClampsToFullRankFuzz) {
  Rng rng(33);
  for (int iter = 0; iter < 60; ++iter) {
    const int64_t m = 1 + static_cast<int64_t>(rng.next_u64() % 12);
    const int64_t n = 1 + static_cast<int64_t>(rng.next_u64() % 12);
    const Tensor w = rng.randn(Shape{m, n});
    const int64_t full = std::min(m, n);
    const RankPolicy policies[] = {
        RankPolicy::fixed(0.01),
        RankPolicy::fixed(1.5),  // ratio > 1 must still clamp
        RankPolicy::energy_based(0.5, 1),
        RankPolicy::energy_based(0.999, 20),  // min_rank > full clamps
        RankPolicy::variance_gated(2.0, 8, 0.25),
        RankPolicy::ab_reproject(0.9, 2, 20),
    };
    for (const RankPolicy& p : policies) {
      const int64_t r = p.rank_for(w);
      EXPECT_GE(r, 1) << "iter " << iter << " m=" << m << " n=" << n;
      EXPECT_LE(r, full) << "iter " << iter << " m=" << m << " n=" << n;
    }
  }
}

// ---------------- variance-gated reducer ----------------

std::vector<Tensor> const_grads(int workers, int64_t n, float value) {
  std::vector<Tensor> out;
  for (int w = 0; w < workers; ++w) out.push_back(Tensor::full(Shape{n}, value));
  return out;
}

TEST(AdaptiveGate, WarmupStepsAlwaysSend) {
  compress::VarianceGateReducer r(/*threshold=*/1e6, /*warmup_steps=*/2);
  const std::vector<Shape> shapes = {Shape{4}, Shape{4}};
  compress::ReduceStats stats;
  for (int step = 0; step < 2; ++step) {
    Tensor agg = r.reduce(const_grads(2, 8, 1.0f + step), shapes, &stats);
    for (int64_t j = 0; j < 8; ++j) EXPECT_FLOAT_EQ(agg[j], 1.0f + step);
    // All floats ship, plus the 2-layer send mask rounded up to one byte.
    EXPECT_EQ(stats.payload_bytes_per_worker, 8 * 4 + 1);
    EXPECT_EQ(stats.collective, compress::Collective::kAllreduce);
  }
  EXPECT_EQ(r.layers_sent(), 4);
  EXPECT_EQ(r.layers_skipped(), 0);
}

TEST(AdaptiveGate, AmbiguousLayersSkipIntoResidual) {
  compress::VarianceGateReducer r(/*threshold=*/1e6, /*warmup_steps=*/1);
  const std::vector<Shape> shapes = {Shape{4}, Shape{4}};
  compress::ReduceStats stats;
  (void)r.reduce(const_grads(2, 8, 1.0f), shapes, &stats);  // warm-up: sends
  // Step 2 has nonzero variance; the huge threshold makes every layer
  // ambiguous, so nothing ships and the whole gradient defers.
  Tensor agg = r.reduce(const_grads(2, 8, 2.0f), shapes, &stats);
  for (int64_t j = 0; j < 8; ++j) EXPECT_FLOAT_EQ(agg[j], 0.0f);
  EXPECT_EQ(stats.payload_bytes_per_worker, 1);  // mask only
  EXPECT_EQ(r.layers_sent(), 2);
  EXPECT_EQ(r.layers_skipped(), 2);
  const compress::ReducerState st = r.state();
  ASSERT_EQ(st.tensors.size(), 3u);  // mean, m2, residual
  for (int64_t j = 0; j < 8; ++j)
    EXPECT_FLOAT_EQ(st.tensors[2][j], 2.0f);  // the skipped step's mass
}

TEST(AdaptiveGate, ResidualReplaysOnNextSend) {
  // Build up a residual with an always-skip reducer, hand its state to an
  // always-send one: the next aggregate must carry current + deferred mass
  // and clear the residual (total applied update is conserved).
  compress::VarianceGateReducer skip(/*threshold=*/1e6, /*warmup_steps=*/1);
  const std::vector<Shape> shapes = {Shape{8}};
  compress::ReduceStats stats;
  (void)skip.reduce(const_grads(2, 8, 1.0f), shapes, &stats);
  (void)skip.reduce(const_grads(2, 8, 2.0f), shapes, &stats);  // deferred

  compress::VarianceGateReducer send(/*threshold=*/0.0, /*warmup_steps=*/0);
  send.set_state(skip.state());
  Tensor agg = send.reduce(const_grads(2, 8, 3.0f), shapes, &stats);
  for (int64_t j = 0; j < 8; ++j) EXPECT_FLOAT_EQ(agg[j], 3.0f + 2.0f);
  for (int64_t j = 0; j < 8; ++j)
    EXPECT_FLOAT_EQ(send.state().tensors[2][j], 0.0f);
}

TEST(AdaptiveGate, StateRoundTripReplaysBitwise) {
  Rng rng(5);
  const std::vector<Shape> shapes = {Shape{6}, Shape{10}};
  auto step_grads = [&rng](int64_t n) {
    std::vector<Tensor> out;
    for (int w = 0; w < 3; ++w) out.push_back(rng.randn(Shape{n}));
    return out;
  };
  compress::VarianceGateReducer a(1.5, 1);
  std::vector<std::vector<Tensor>> history;
  for (int step = 0; step < 3; ++step) history.push_back(step_grads(16));
  compress::ReduceStats sa, sb;
  (void)a.reduce(history[0], shapes, &sa);
  (void)a.reduce(history[1], shapes, &sa);

  compress::VarianceGateReducer b(1.5, 1);
  b.set_state(a.state());
  Tensor out_a = a.reduce(history[2], shapes, &sa);
  Tensor out_b = b.reduce(history[2], shapes, &sb);
  EXPECT_EQ(std::memcmp(std::as_const(out_a).data(),
                        std::as_const(out_b).data(), 16 * sizeof(float)),
            0);
  EXPECT_EQ(sa.payload_bytes_per_worker, sb.payload_bytes_per_worker);
  EXPECT_EQ(a.layers_sent(), b.layers_sent());
  EXPECT_EQ(a.layers_skipped(), b.layers_skipped());
}

TEST(AdaptiveGate, SetStateValidates) {
  compress::VarianceGateReducer r(1.0, 2);
  compress::ReducerState bad;
  bad.scalars = {1, 2};  // wrong layout: needs 3 scalars + 3 tensors
  EXPECT_THROW(r.set_state(bad), std::runtime_error);

  // Empty state resets a used reducer back to its initial lazy state.
  compress::ReduceStats stats;
  (void)r.reduce(const_grads(2, 4, 1.0f), {Shape{4}}, &stats);
  EXPECT_FALSE(r.state().empty());
  r.set_state({});
  EXPECT_TRUE(r.state().empty());
  EXPECT_EQ(r.layers_sent(), 0);

  // Stateless reducers accept only an empty state: handing them a stateful
  // snapshot must fail loudly, not resume with silently reset buffers.
  compress::AllreduceReducer plain;
  compress::ReducerState stateful;
  stateful.scalars = {1};
  EXPECT_THROW(plain.set_state(stateful), std::runtime_error);
  plain.set_state({});  // no-op
}

TEST(AdaptiveGate, DeterministicAcrossRuns) {
  const std::vector<Shape> shapes = {Shape{5}, Shape{11}};
  auto run = [&shapes]() {
    Rng rng(9);
    compress::VarianceGateReducer r(1.2, 2);
    compress::ReduceStats stats;
    Tensor last;
    for (int step = 0; step < 5; ++step) {
      std::vector<Tensor> grads;
      for (int w = 0; w < 4; ++w) grads.push_back(rng.randn(Shape{16}));
      last = r.reduce(grads, shapes, &stats);
    }
    return last;
  };
  const Tensor x = run(), y = run();
  EXPECT_EQ(std::memcmp(std::as_const(x).data(), std::as_const(y).data(),
                        16 * sizeof(float)),
            0);
}

// ---------------- error feedback for signum / top-k ----------------

TEST(AdaptiveEF, SignumEFRecoversMagnitude) {
  // Feeding the SAME gradient repeatedly: with error feedback the mean
  // transmitted update approaches the true gradient (EF-signSGD), while
  // plain SIGNUM's bare sign forgets all magnitude.
  Rng rng(4);
  Tensor g = rng.randn(Shape{32});
  compress::SignumReducer ef(0.0f, /*error_feedback=*/true);
  EXPECT_EQ(ef.name(), "signum-ef");
  Tensor cum(Shape{32});
  compress::ReduceStats stats;
  const int iters = 60;
  for (int i = 0; i < iters; ++i)
    cum.add_(ef.reduce({g}, {Shape{32}}, &stats));
  cum.mul_(1.0f / iters);
  EXPECT_LT(max_abs_diff(cum, g), 0.35f * g.abs_max());

  // Plain SIGNUM transmits +-1 regardless of |g|.
  compress::SignumReducer plain(0.0f);
  EXPECT_EQ(plain.name(), "signum");
  Tensor agg = plain.reduce({g}, {Shape{32}}, &stats);
  for (int64_t j = 0; j < 32; ++j) EXPECT_FLOAT_EQ(std::abs(agg[j]), 1.0f);
}

TEST(AdaptiveEF, SignumSeedBehaviourUnchangedByDefault) {
  // The EF flag defaults off; the default-constructed reducer must still
  // produce the seed's bitwise majority-vote output and payload.
  Tensor pos = Tensor::full(Shape{4}, 2.0f);
  Tensor neg = Tensor::full(Shape{4}, -0.5f);
  compress::SignumReducer r(0.0f);
  compress::ReduceStats stats;
  Tensor agg = r.reduce({pos, pos, neg}, {Shape{4}}, &stats);
  for (int64_t j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(agg[j], 1.0f);
  EXPECT_EQ(stats.payload_bytes_per_worker, (4 + 7) / 8);
  EXPECT_EQ(stats.collective, compress::Collective::kAllgather);
}

TEST(AdaptiveEF, TopKWithoutEFDropsUnselectedMass) {
  // keep_ratio 0.5 of 4 coordinates: the two small ones are never in the
  // top-k. Without error feedback their mass is silently lost every step
  // (the latent bug); with it, residuals grow until they win a slot.
  Tensor g = Tensor::from_vector({1.0f, 0.9f, 0.4f, 0.3f});
  compress::ReduceStats stats;

  compress::TopKReducer noef(0.5, /*error_feedback=*/false);
  EXPECT_EQ(noef.name(), "topk-noef");
  Tensor cum_noef(Shape{4});
  for (int i = 0; i < 8; ++i)
    cum_noef.add_(noef.reduce({g}, {Shape{4}}, &stats));
  EXPECT_FLOAT_EQ(cum_noef[2], 0.0f);
  EXPECT_FLOAT_EQ(cum_noef[3], 0.0f);

  compress::TopKReducer ef(0.5);  // default: error feedback on (seed path)
  EXPECT_EQ(ef.name(), "topk");
  Tensor cum_ef(Shape{4});
  const int iters = 8;
  for (int i = 0; i < iters; ++i)
    cum_ef.add_(ef.reduce({g}, {Shape{4}}, &stats));
  for (int64_t j = 0; j < 4; ++j) EXPECT_GT(cum_ef[j], 0.0f);
  // Conservation: cumulative sent + current residual == iters * g.
  const compress::ReducerState st = ef.state();
  ASSERT_EQ(st.tensors.size(), 1u);
  for (int64_t j = 0; j < 4; ++j)
    EXPECT_NEAR(cum_ef[j] + st.tensors[0][j], iters * g[j], 1e-4f);
}

data::SyntheticImages tiny_images() {
  data::SyntheticImages::Config dc;
  dc.num_classes = 4;
  dc.hw = 8;
  dc.train_size = 48;
  dc.test_size = 24;
  dc.augment = false;
  return data::SyntheticImages(dc);
}

// BN-free MLP (dist_test.cc idiom): data-parallel equivalence and clean
// convergence comparisons need no per-replica batch statistics.
std::unique_ptr<nn::UnaryModule> mlp_model(uint64_t seed) {
  Rng rng(seed);
  auto s = std::make_unique<nn::Sequential>();
  s->emplace<nn::Flatten>();
  s->emplace<nn::Linear>(3 * 8 * 8, 16, rng);
  s->emplace<nn::ReLU>();
  s->emplace<nn::Linear>(16, 4, rng);
  return s;
}

double final_loss_with(std::unique_ptr<compress::Reducer> reducer, float lr,
                       float momentum) {
  auto ds = tiny_images();
  dist::DistTrainConfig cfg;
  cfg.epochs = 5;
  cfg.global_batch = 16;
  cfg.lr = lr;
  cfg.momentum = momentum;
  cfg.weight_decay = 0;
  dist::CostModel cm;
  cm.nodes = 4;
  dist::DataParallelTrainer t(mlp_model(3), std::move(reducer), cm, cfg);
  return t.train(ds).back().train_loss;
}

TEST(AdaptiveEF, TopKResidualClosesConvergenceGap) {
  // The satellite regression, end to end: dropping 95% of coordinates
  // without error feedback loses gradient mass for good; the residual
  // recovers (most of) it. Momentum 0 keeps the comparison clean.
  const double topk_noef = final_loss_with(
      std::make_unique<compress::TopKReducer>(0.05, false), 0.05f, 0.0f);
  const double topk_ef = final_loss_with(
      std::make_unique<compress::TopKReducer>(0.05, true), 0.05f, 0.0f);
  EXPECT_LT(topk_ef, topk_noef);
}

TEST(AdaptiveEF, SignumEFConvergesBelowPlainSignFloor) {
  // EF-signSGD's headline property (Karimireddy et al.): at a FIXED step
  // size, bare sign descent oscillates around the optimum at an lr-sized
  // floor, while the scaled + error-fed variant keeps contracting. An
  // ill-conditioned quadratic 0.5 * sum_j s_j (x_j - t_j)^2 exposes it
  // deterministically (classification on separable toy data does not:
  // there plain sign steps drive the loss to zero too).
  auto descend = [](bool ef, float lr, int iters) {
    Rng rng(7);
    const Tensor t = rng.randn(Shape{16});
    Tensor s = Tensor::uninit(Shape{16});
    for (int64_t j = 0; j < 16; ++j)  // condition number 1e2
      s.data()[j] = std::pow(10.0f, -2.0f + 2.0f * static_cast<float>(j) / 15.0f);
    Tensor x(Shape{16});
    compress::SignumReducer r(0.0f, ef);
    compress::ReduceStats stats;
    for (int i = 0; i < iters; ++i) {
      Tensor g = Tensor::uninit(Shape{16});
      for (int64_t j = 0; j < 16; ++j) g.data()[j] = s[j] * (x[j] - t[j]);
      const Tensor step = r.reduce({g}, {Shape{16}}, &stats);
      for (int64_t j = 0; j < 16; ++j) x.data()[j] -= lr * step[j];
    }
    double loss = 0;
    for (int64_t j = 0; j < 16; ++j) {
      const double d = x[j] - t[j];
      loss += 0.5 * s[j] * d * d;
    }
    return loss;
  };
  const double plain_early = descend(false, 0.2f, 300);
  const double plain = descend(false, 0.2f, 1000);
  const double ef = descend(true, 0.2f, 1000);
  // Plain sign descent is STUCK: 700 more iterations buy nothing.
  EXPECT_NEAR(plain, plain_early, 0.3 * plain_early);
  // (measured: plain ~2e-2 at its floor, ef ~2e-5 and still contracting)
  EXPECT_LT(ef, 0.01 * plain);
}

// ---------------- defactorize / reproject ----------------

TEST(AdaptiveReproject, DefactorizeThenFullRankReprojectReconstructs) {
  Rng rng(11);
  auto hybrid = std::make_unique<nn::Sequential>();
  auto* lr = hybrid->emplace<nn::LowRankLinear>(6, 4, 2, rng);
  auto vanilla = std::make_unique<nn::Sequential>();
  auto* fc = vanilla->emplace<nn::Linear>(6, 4, rng);

  nn::defactorize(*hybrid, *vanilla);
  const Tensor dense = matmul_nt(lr->u->value, lr->v->value);
  EXPECT_TRUE(allclose(fc->weight->value, dense, 0.0f, 0.0f));

  // Re-projecting at full rank (fixed ratio 1.0 -> rank min(4,6) = 4) must
  // reconstruct the dense weight exactly up to SVD round-off.
  Rng svd_rng(7);
  const nn::ReprojectReport rep =
      nn::reproject(*vanilla, *hybrid, RankPolicy::fixed(1.0), svd_rng);
  ASSERT_EQ(rep.entries.size(), 1u);
  EXPECT_EQ(rep.entries[0].old_rank, 2);
  EXPECT_EQ(rep.entries[0].new_rank, 4);
  EXPECT_TRUE(rep.any_rank_changed());
  EXPECT_EQ(lr->rank(), 4);
  EXPECT_EQ(lr->u->value.shape(), (Shape{4, 4}));
  EXPECT_EQ(lr->v->value.shape(), (Shape{6, 4}));
  const Tensor rec = matmul_nt(lr->u->value, lr->v->value);
  EXPECT_TRUE(allclose(rec, fc->weight->value, 1e-3f, 1e-4f));
}

TEST(AdaptiveReproject, ApplyRanksValidatesBounds) {
  Rng rng(12);
  auto hybrid = std::make_unique<nn::Sequential>();
  auto* lr = hybrid->emplace<nn::LowRankLinear>(6, 4, 2, rng);

  EXPECT_EQ(nn::collect_ranks(*hybrid), (std::vector<int64_t>{2}));
  EXPECT_THROW(nn::apply_ranks(*hybrid, {0}), std::runtime_error);
  EXPECT_THROW(nn::apply_ranks(*hybrid, {5}), std::runtime_error);  // > min(4,6)
  EXPECT_THROW(nn::apply_ranks(*hybrid, {2, 2}), std::runtime_error);
  EXPECT_THROW(nn::apply_ranks(*hybrid, {}), std::runtime_error);

  nn::apply_ranks(*hybrid, {3});
  EXPECT_EQ(lr->rank(), 3);
  EXPECT_EQ(lr->u->value.shape(), (Shape{4, 3}));
  EXPECT_EQ(lr->v->value.shape(), (Shape{6, 3}));
  EXPECT_EQ(nn::collect_ranks(*hybrid), (std::vector<int64_t>{3}));
}

// ---------------- trainer integration + resume-bitwise ----------------

std::string tmp_dir(const std::string& name) {
  const std::string d = std::string(::testing::TempDir()) + name + "_" +
                        std::to_string(::getpid());
  std::filesystem::remove_all(d);
  return d;
}

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(is)) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(is), {});
}

core::VisionModelFactory resnet_factory(bool hybrid) {
  return [hybrid](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::ResNetCifarConfig cfg =
        hybrid ? models::ResNetCifarConfig::pufferfish()
               : models::ResNetCifarConfig::vanilla();
    cfg.width_mult = 0.0625;
    cfg.num_classes = 4;
    return std::make_unique<models::ResNet18Cifar>(cfg, rng);
  };
}

TEST(AdaptiveReproject, TrainerRunsRefreshRounds) {
  auto ds = tiny_images();
  core::VisionTrainConfig cfg;
  cfg.epochs = 5;
  cfg.warmup_epochs = 1;
  cfg.batch = 16;
  cfg.seed = 11;
  cfg.rank_policy = RankPolicy::ab_reproject(0.9, 2, 1);
  const core::VisionResult res = core::train_vision(
      resnet_factory(false), resnet_factory(true), ds, cfg);
  ASSERT_EQ(res.epochs.size(), 5u);
  // warmup 1, R 2: the single refresh round of a 5-epoch run is epoch 3.
  for (int e = 0; e < 5; ++e) {
    EXPECT_EQ(res.epochs[static_cast<size_t>(e)].refresh_round, e == 3)
        << "epoch " << e;
    EXPECT_EQ(res.epochs[static_cast<size_t>(e)].low_rank_phase, e >= 1);
  }
  EXPECT_TRUE(std::isfinite(res.final_loss));
  EXPECT_GT(res.params, 0);
}

TEST(AdaptiveResume, VisionBitwiseAcrossReprojectBoundary) {
  // Straight 6-epoch AB-reproject run (refresh rounds at epochs 3 and 5)
  // vs crash-after-epoch-4 + resume: the continuation replays epoch 5's
  // refresh round from the snapshot's layer ranks, optimizer slots, and
  // rng stream -- final weights must be byte-identical.
  auto ds = tiny_images();
  core::VisionTrainConfig base;
  base.epochs = 6;
  base.warmup_epochs = 1;
  base.batch = 16;
  base.seed = 11;
  base.checkpoint_every = 1;
  base.rank_policy = RankPolicy::ab_reproject(0.9, 2, 1);

  const std::string dir_a = tmp_dir("adaptive_straight");
  const std::string dir_b = tmp_dir("adaptive_resumed");

  core::VisionTrainConfig straight = base;
  straight.checkpoint_dir = dir_a;
  const core::VisionResult full = core::train_vision(
      resnet_factory(false), resnet_factory(true), ds, straight);

  core::VisionTrainConfig partial = base;
  partial.epochs = 4;  // the "crash": snapshot of epoch 3's refresh survives
  partial.checkpoint_dir = dir_b;
  (void)core::train_vision(resnet_factory(false), resnet_factory(true), ds,
                           partial);

  core::VisionTrainConfig cont = base;
  cont.checkpoint_dir = dir_b;
  cont.resume = true;
  const core::VisionResult resumed = core::train_vision(
      resnet_factory(false), resnet_factory(true), ds, cont);

  ASSERT_EQ(full.epochs.size(), 6u);
  EXPECT_TRUE(full.epochs[3].refresh_round);
  EXPECT_TRUE(full.epochs[5].refresh_round);
  ASSERT_EQ(resumed.epochs.size(), 2u);
  for (size_t i = 0; i < resumed.epochs.size(); ++i) {
    EXPECT_EQ(full.epochs[4 + i].train_loss, resumed.epochs[i].train_loss)
        << "continued epoch " << i;
    EXPECT_EQ(full.epochs[4 + i].refresh_round,
              resumed.epochs[i].refresh_round);
  }
  EXPECT_EQ(full.final_loss, resumed.final_loss);
  EXPECT_EQ(full.final_acc, resumed.final_acc);
  EXPECT_EQ(full.params, resumed.params);
  EXPECT_EQ(file_bytes(core::snapshot_paths(dir_a).model),
            file_bytes(core::snapshot_paths(dir_b).model));

  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

// ---------------- shm cluster: reducer state in snapshots ----------------

runtime::ShmClusterConfig shm_config() {
  runtime::ShmClusterConfig scfg;
  scfg.workers = 4;
  scfg.bucket_bytes = 16 << 10;
  scfg.train.epochs = 2;
  scfg.train.global_batch = 16;
  scfg.train.lr = 0.05f;
  scfg.train.seed = 3;
  return scfg;
}

core::VisionModelFactory shm_factory() {
  return [](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::ResNetCifarConfig cfg;
    cfg.width_mult = 0.0625;
    cfg.num_classes = 4;
    return std::make_unique<models::ResNet18Cifar>(cfg, rng);
  };
}

TEST(AdaptiveResume, ShmClusterReducerStateRoundTrips) {
  // A stateful reducer's moments and residual are part of the trajectory:
  // resuming without them would diverge from the uninterrupted run.
  auto ds = tiny_images();
  auto make_reducer = [] {
    return std::make_unique<compress::VarianceGateReducer>(1.0, 2);
  };
  runtime::ShmDataParallelTrainer straight(shm_factory(), make_reducer(),
                                           shm_config());
  (void)straight.train(ds);

  const std::string dir = tmp_dir("shm_gate_resume");
  runtime::ShmClusterConfig part = shm_config();
  part.train.epochs = 1;
  part.checkpoint_dir = dir;
  runtime::ShmDataParallelTrainer crashed(shm_factory(), make_reducer(),
                                          part);
  (void)crashed.train(ds);

  runtime::ShmClusterConfig cont = shm_config();
  cont.checkpoint_dir = dir;
  cont.resume = true;
  runtime::ShmDataParallelTrainer resumed(shm_factory(), make_reducer(),
                                          cont);
  const auto recs = resumed.train(ds);
  ASSERT_EQ(recs.size(), 1u);

  const Tensor a = straight.model().flat_params();
  const Tensor b = resumed.model().flat_params();
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(std::as_const(a).data(), std::as_const(b).data(),
                        static_cast<size_t>(a.numel()) * sizeof(float)),
            0);
  EXPECT_EQ(resumed.global_step(), straight.global_step());

  // Resuming that snapshot WITHOUT a reducer must fail loudly: the plain
  // ring path cannot replay the gate's moments and residual.
  runtime::ShmClusterConfig wrong = shm_config();
  wrong.checkpoint_dir = dir;
  wrong.resume = true;
  runtime::ShmDataParallelTrainer mismatched(shm_factory(), nullptr, wrong);
  EXPECT_THROW(mismatched.train(ds), std::runtime_error);
  std::filesystem::remove_all(dir);
}

// ---------------- TrainState v2 on-disk format ----------------

TEST(AdaptiveState, TrainStateV2FieldsRoundTrip) {
  core::TrainState st;
  st.next_epoch = 4;
  st.low_rank_phase = true;
  st.policy = RankPolicy::ab_reproject(0.9, 2, 1).encode();
  st.layer_ranks = {4, 7, 1};
  st.reducer.scalars = {6, 9, 3};
  Tensor t = Tensor::uninit(Shape{2, 3});
  for (int64_t i = 0; i < t.numel(); ++i) t.data()[i] = 0.25f * i;
  st.reducer.tensors.push_back(std::move(t));
  st.rng = Rng(5).state();

  const std::string path = std::string(::testing::TempDir()) +
                           "adaptive_state_v2.bin." +
                           std::to_string(::getpid());
  core::save_train_state(st, path);
  const core::TrainState got = core::load_train_state(path);
  EXPECT_EQ(got.layer_ranks, st.layer_ranks);
  EXPECT_EQ(got.reducer.scalars, st.reducer.scalars);
  ASSERT_EQ(got.reducer.tensors.size(), 1u);
  EXPECT_EQ(got.reducer.tensors[0].shape(), (Shape{2, 3}));
  EXPECT_EQ(std::memcmp(std::as_const(got.reducer.tensors[0]).data(),
                        std::as_const(st.reducer.tensors[0]).data(),
                        6 * sizeof(float)),
            0);
  EXPECT_TRUE(RankPolicy::decode(got.policy) ==
              RankPolicy::ab_reproject(0.9, 2, 1));
  std::remove(path.c_str());
}

// Hand-writes a v1 ("PUFFTST1") train-state file: 3 policy words, no
// layer_ranks / reducer tail. Returns the path.
std::string write_v1_state(uint64_t kind_word, const std::string& name) {
  std::vector<char> payload;
  auto put_u64 = [&payload](uint64_t v) {
    const char* p = reinterpret_cast<const char*>(&v);
    payload.insert(payload.end(), p, p + sizeof(v));
  };
  auto put_f64 = [&put_u64](double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  };
  put_u64(2);  // next_epoch
  put_u64(9);  // global_step
  put_u64(0);  // low_rank_phase
  put_f64(0.5);
  put_f64(1.5);
  std::array<uint64_t, 4> policy = RankPolicy::fixed(0.25).encode();
  policy[0] = kind_word;
  for (size_t i = 0; i < 3; ++i) put_u64(policy[i]);  // v1: 3 words only
  put_u64(0);  // model_hash
  const Rng::State rs = Rng(4).state();
  for (uint64_t w : rs.s) put_u64(w);
  put_u64(rs.has_cached ? 1 : 0);
  put_f64(rs.cached);
  put_u64(0);  // worker_rngs
  put_u64(0);  // opt_scalars
  put_u64(0);  // opt_tensors

  const std::string path = std::string(::testing::TempDir()) + name + "." +
                           std::to_string(::getpid());
  std::ofstream os(path, std::ios::binary);
  auto write_u64 = [&os](uint64_t v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  write_u64(0x5055464654535431ull);  // "PUFFTST1"
  write_u64(nn::fnv1a(payload.data(), payload.size()));
  write_u64(payload.size());
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  return path;
}

TEST(AdaptiveState, V1SnapshotsStillLoad) {
  const std::string path = write_v1_state(0, "adaptive_state_v1_ok.bin");
  const core::TrainState st = core::load_train_state(path);
  EXPECT_EQ(st.next_epoch, 2);
  EXPECT_EQ(st.global_step, 9);
  EXPECT_TRUE(RankPolicy::decode(st.policy) == RankPolicy::fixed(0.25));
  EXPECT_TRUE(st.layer_ranks.empty());
  EXPECT_TRUE(st.reducer.empty());
  std::remove(path.c_str());
}

TEST(AdaptiveState, V1SnapshotWithNewKindIsRejected) {
  // Kind words >= 2 (variance-gated, ab-reproject) postdate the v1 writer:
  // a v1 file carrying one is corrupt, not merely old.
  const std::string path = write_v1_state(2, "adaptive_state_v1_bad.bin");
  EXPECT_THROW((void)core::load_train_state(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pf
