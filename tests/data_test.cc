#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <set>

namespace pf::data {
namespace {

SyntheticImages::Config img_cfg() {
  SyntheticImages::Config c;
  c.num_classes = 4;
  c.hw = 8;
  c.train_size = 64;
  c.test_size = 32;
  return c;
}

TEST(SyntheticImages, ShapesAndSizes) {
  SyntheticImages ds(img_cfg());
  EXPECT_EQ(ds.train_size(), 64);
  EXPECT_EQ(ds.test_size(), 32);
  ImageBatch b = ds.test_batch(0, 16);
  EXPECT_EQ(b.images.shape(), (Shape{16, 3, 8, 8}));
  EXPECT_EQ(b.labels.size(), 16u);
}

TEST(SyntheticImages, LabelsAreBalancedAndInRange) {
  SyntheticImages ds(img_cfg());
  std::vector<int64_t> counts(4, 0);
  for (int64_t start = 0; start < 32; start += 8) {
    ImageBatch b = ds.test_batch(start, 8);
    for (int64_t l : b.labels) {
      ASSERT_GE(l, 0);
      ASSERT_LT(l, 4);
      ++counts[static_cast<size_t>(l)];
    }
  }
  for (int64_t c : counts) EXPECT_EQ(c, 8);
}

TEST(SyntheticImages, DeterministicAcrossInstances) {
  SyntheticImages a(img_cfg()), b(img_cfg());
  EXPECT_TRUE(allclose(a.test_batch(0, 8).images, b.test_batch(0, 8).images));
  auto ba = a.train_batches(16, 0);
  auto bb = b.train_batches(16, 0);
  ASSERT_EQ(ba.size(), bb.size());
  EXPECT_TRUE(allclose(ba[0].images, bb[0].images));
  EXPECT_EQ(ba[0].labels, bb[0].labels);
}

TEST(SyntheticImages, EpochsShuffleDifferently) {
  SyntheticImages ds(img_cfg());
  auto e0 = ds.train_batches(16, 0);
  auto e1 = ds.train_batches(16, 1);
  EXPECT_NE(e0[0].labels, e1[0].labels);
}

TEST(SyntheticImages, ClassesAreSeparable) {
  // Same-class test samples must be closer (on average) than cross-class
  // ones: the task is learnable.
  SyntheticImages ds(img_cfg());
  ImageBatch b = ds.test_batch(0, 32);
  const int64_t dim = 3 * 8 * 8;
  double same = 0, cross = 0;
  int64_t ns = 0, nc = 0;
  for (int64_t i = 0; i < 32; ++i)
    for (int64_t j = i + 1; j < 32; ++j) {
      double d = 0;
      for (int64_t k = 0; k < dim; ++k) {
        const double diff = b.images[i * dim + k] - b.images[j * dim + k];
        d += diff * diff;
      }
      if (b.labels[static_cast<size_t>(i)] ==
          b.labels[static_cast<size_t>(j)]) {
        same += d;
        ++ns;
      } else {
        cross += d;
        ++nc;
      }
    }
  EXPECT_LT(same / ns, cross / nc);
}

TEST(SyntheticImages, BatchCountMatches) {
  SyntheticImages ds(img_cfg());
  EXPECT_EQ(ds.train_batches(16, 0).size(), 4u);
  EXPECT_EQ(ds.train_batches(64, 0).size(), 1u);
}

TEST(SyntheticCorpus, StreamsHaveRequestedLengthAndRange) {
  SyntheticCorpus::Config c;
  c.vocab = 50;
  c.train_tokens = 1000;
  c.valid_tokens = 200;
  c.test_tokens = 200;
  SyntheticCorpus corpus(c);
  EXPECT_EQ(corpus.train().size(), 1000u);
  EXPECT_EQ(corpus.valid().size(), 200u);
  for (int64_t t : corpus.train()) {
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 50);
  }
}

TEST(SyntheticCorpus, HasMarkovStructure) {
  // Successor entropy must be far below uniform: the chain is learnable.
  SyntheticCorpus::Config c;
  c.vocab = 32;
  c.train_tokens = 20000;
  SyntheticCorpus corpus(c);
  const auto& s = corpus.train();
  // Successor histogram of a frequent token: the top-4 successors must
  // carry most of the transition mass (branching 4 + 10% uniform leakage).
  std::vector<int64_t> hist(32, 0);
  int64_t occurrences = 0;
  for (size_t i = 0; i + 1 < s.size(); ++i)
    if (s[i] == s[2]) {  // pick a token that certainly occurs
      ++hist[static_cast<size_t>(s[i + 1])];
      ++occurrences;
    }
  ASSERT_GT(occurrences, 20);
  std::sort(hist.rbegin(), hist.rend());
  const double top4 =
      static_cast<double>(hist[0] + hist[1] + hist[2] + hist[3]);
  EXPECT_GT(top4 / occurrences, 0.5);  // uniform chain would give 0.125
}

TEST(SyntheticCorpus, BatchifyShiftsTargetsByOne) {
  std::vector<int64_t> stream;
  for (int64_t i = 0; i < 40; ++i) stream.push_back(i);
  auto batches = SyntheticCorpus::batchify(stream, /*b=*/2, /*bptt=*/4);
  ASSERT_FALSE(batches.empty());
  const auto& b0 = batches[0];
  EXPECT_EQ(b0.t, 4);
  EXPECT_EQ(b0.b, 2);
  // Column 0 reads stream[0..], column 1 reads stream[20..].
  EXPECT_EQ(b0.input[0], 0);
  EXPECT_EQ(b0.input[1], 20);
  EXPECT_EQ(b0.target[0], 1);
  EXPECT_EQ(b0.target[1], 21);
  // Next segment continues where the previous ended.
  EXPECT_EQ(batches[1].input[0], 4);
}

TEST(SyntheticTranslation, PairStructure) {
  SyntheticTranslation::Config c;
  c.train_pairs = 32;
  c.test_pairs = 8;
  SyntheticTranslation ds(c);
  EXPECT_EQ(ds.train().size(), 32u);
  for (const auto& p : ds.train()) {
    EXPECT_EQ(p.src.back(), SyntheticTranslation::kEos);
    EXPECT_EQ(p.tgt.front(), SyntheticTranslation::kBos);
    EXPECT_EQ(p.tgt.back(), SyntheticTranslation::kEos);
    // Content tokens in [3, vocab).
    for (size_t i = 0; i + 1 < p.src.size(); ++i) EXPECT_GE(p.src[i], 3);
  }
}

TEST(SyntheticTranslation, TransductionIsDeterministic) {
  SyntheticTranslation::Config c;
  SyntheticTranslation a(c), b(c);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.train()[i].src, b.train()[i].src);
    EXPECT_EQ(a.train()[i].tgt, b.train()[i].tgt);
  }
  // Same source length => target length = source content + bos + eos.
  for (const auto& p : a.train())
    EXPECT_EQ(p.tgt.size(), p.src.size() + 1);
}

TEST(SyntheticTranslation, BatchPaddingAndTargets) {
  SyntheticTranslation::Config c;
  c.train_pairs = 16;
  c.min_len = 3;
  c.max_len = 7;
  SyntheticTranslation ds(c);
  auto batches = ds.batches(ds.train(), 4, 0);
  ASSERT_FALSE(batches.empty());
  for (const auto& mb : batches) {
    EXPECT_EQ(mb.src.size(), static_cast<size_t>(mb.b * mb.src_len));
    EXPECT_EQ(mb.tgt_in.size(), static_cast<size_t>(mb.b * mb.tgt_len));
    for (int64_t i = 0; i < mb.b; ++i) {
      // tgt_in starts with BOS; tgt_out's valid positions end with EOS
      // followed by ignore (-100) padding.
      EXPECT_EQ(mb.tgt_in[static_cast<size_t>(i * mb.tgt_len)],
                SyntheticTranslation::kBos);
      bool saw_eos = false;
      for (int64_t t = 0; t < mb.tgt_len; ++t) {
        const int64_t y = mb.tgt_out[static_cast<size_t>(i * mb.tgt_len + t)];
        if (y == SyntheticTranslation::kEos) saw_eos = true;
        if (saw_eos && y != SyntheticTranslation::kEos) EXPECT_EQ(y, -100);
      }
      EXPECT_TRUE(saw_eos);
    }
  }
}

TEST(SyntheticTranslation, TgtInOutAreShiftedViews) {
  SyntheticTranslation::Config c;
  c.train_pairs = 8;
  SyntheticTranslation ds(c);
  auto batches = ds.batches(ds.train(), 2, 0);
  const auto& mb = batches[0];
  for (int64_t i = 0; i < mb.b; ++i)
    for (int64_t t = 0; t + 1 < mb.tgt_len; ++t) {
      const int64_t next_in =
          mb.tgt_in[static_cast<size_t>(i * mb.tgt_len + t + 1)];
      const int64_t out =
          mb.tgt_out[static_cast<size_t>(i * mb.tgt_len + t)];
      if (next_in != SyntheticTranslation::kPad && out != -100)
        EXPECT_EQ(next_in, out);
    }
}

}  // namespace
}  // namespace pf::data
