#include "core/rank_policy.h"

#include <gtest/gtest.h>

#include "metrics/ascii_chart.h"
#include "tensor/matmul.h"
#include "models/resnet.h"

namespace pf::core {
namespace {

TEST(RankPolicy, FixedRatioUsesShapeOnly) {
  Rng rng(1);
  Tensor w = rng.randn(Shape{64, 16});
  RankPolicy p = RankPolicy::fixed(0.25);
  EXPECT_EQ(p.rank_for(w), 4);  // 0.25 * min(64, 16)
  // Same shape, different values: same rank.
  Tensor w2 = rng.randn(Shape{64, 16}) * 100.0f;
  EXPECT_EQ(p.rank_for(w2), 4);
}

TEST(RankPolicy, EnergyAdaptsToSpectrum) {
  Rng rng(2);
  // Exactly rank-2 matrix: 99% energy needs only 2.
  Tensor u = rng.randn(Shape{16, 2});
  Tensor v = rng.randn(Shape{16, 2});
  Tensor low = pf::matmul_nt(u, v);
  RankPolicy p = RankPolicy::energy_based(0.99);
  EXPECT_LE(p.rank_for(low), 2);
  // White matrix: 99% energy needs nearly full rank.
  Tensor white = rng.randn(Shape{16, 16});
  EXPECT_GT(p.rank_for(white), 10);
}

TEST(RankPolicy, MinRankEnforced) {
  Rng rng(3);
  Tensor u = rng.randn(Shape{8, 1});
  Tensor v = rng.randn(Shape{8, 1});
  Tensor w = pf::matmul_nt(u, v);
  RankPolicy p = RankPolicy::energy_based(0.5, /*min_rank=*/3);
  EXPECT_EQ(p.rank_for(w), 3);
}

TEST(PlanRanks, CoversAllDenseLayersOfResNet) {
  Rng rng(4);
  models::ResNetCifarConfig cfg;
  cfg.width_mult = 0.125;
  models::ResNet18Cifar model(cfg, rng);
  RankPlan plan = plan_ranks(model, RankPolicy::fixed(0.25));
  // conv1 + 16 block convs + 3 downsample convs + fc = 21 dense layers.
  EXPECT_EQ(plan.entries.size(), 21u);
  EXPECT_GT(plan.dense_params_total, plan.factored_params_total);
  EXPECT_GT(plan.compression(), 1.0);
  for (const RankPlanEntry& e : plan.entries) {
    EXPECT_GE(e.rank, 1);
    EXPECT_LE(e.rank, e.full_rank);
    EXPECT_GE(e.retained_energy, 0.0);
    EXPECT_LE(e.retained_energy, 1.0 + 1e-6);
  }
}

TEST(PlanRanks, EnergyPolicySpendsMoreOnWhiteSpectra) {
  // Random-init weights have flat spectra: a 90%-energy policy must assign
  // higher ranks than ratio-0.25 almost everywhere.
  Rng rng(5);
  models::ResNetCifarConfig cfg;
  cfg.width_mult = 0.0625;
  models::ResNet18Cifar model(cfg, rng);
  RankPlan fixed = plan_ranks(model, RankPolicy::fixed(0.25));
  RankPlan energy = plan_ranks(model, RankPolicy::energy_based(0.9));
  EXPECT_GT(energy.factored_params_total, fixed.factored_params_total);
}

TEST(AsciiChart, RendersSeriesAndLegend) {
  metrics::Series a{"vanilla", {0.1, 0.3, 0.6, 0.9}, '*'};
  metrics::Series b{"low-rank", {0.1, 0.2, 0.3, 0.5}, 'o'};
  metrics::ChartOptions opts;
  opts.width = 30;
  opts.height = 8;
  const std::string chart = metrics::render_chart({a, b}, opts);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find("vanilla"), std::string::npos);
  EXPECT_NE(chart.find("low-rank"), std::string::npos);
  EXPECT_NE(chart.find("epoch"), std::string::npos);
  // 8 plot rows + axis + legend lines.
  EXPECT_GE(std::count(chart.begin(), chart.end(), '\n'), 9);
}

TEST(AsciiChart, HandlesDegenerateInputs) {
  EXPECT_EQ(metrics::render_chart({}), "(empty chart)");
  metrics::Series flat{"flat", {1.0, 1.0, 1.0}, '*'};
  const std::string chart = metrics::render_chart({flat});
  EXPECT_NE(chart.find('*'), std::string::npos);  // constant series plots
  metrics::Series single{"one", {2.0}, 'x'};
  EXPECT_NE(metrics::render_chart({single}).find('x'), std::string::npos);
}

}  // namespace
}  // namespace pf::core
