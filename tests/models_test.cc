// Fidelity anchors: instantiating the appendix architectures must reproduce
// the paper's parameter counts and MAC figures. These are the strongest
// end-to-end checks that the reproduced models match the paper.
#include <gtest/gtest.h>

#include "models/lstm_lm.h"
#include "models/resnet.h"
#include "models/transformer_mt.h"
#include "core/factorize.h"
#include "models/vgg.h"

namespace pf::models {
namespace {

TEST(PaperCounts, Vgg19Vanilla) {
  Rng rng(1);
  Vgg19 m(VggConfig::vanilla(), rng);
  EXPECT_EQ(m.num_params(), 20560330);  // Table 4
}

TEST(PaperCounts, Vgg19Pufferfish) {
  Rng rng(2);
  Vgg19 m(VggConfig::pufferfish(10), rng);
  EXPECT_EQ(m.num_params(), 8370634);  // Table 4
}

TEST(PaperCounts, ResNet18) {
  Rng rng(3);
  ResNet18Cifar vanilla(ResNetCifarConfig::vanilla(), rng);
  ResNet18Cifar pf(ResNetCifarConfig::pufferfish(), rng);
  // The paper's printed counts are 11,173,834 / 3,336,138 -- exactly 128
  // (one 64-channel BN pair) below the architecture in its own appendix
  // Table 13, in BOTH columns. We match the architecture; the constant
  // offset is documented in EXPERIMENTS.md.
  EXPECT_EQ(vanilla.num_params(), 11173834 + 128);
  EXPECT_EQ(pf.num_params(), 3336138 + 128);
}

TEST(PaperCounts, ResNet50) {
  Rng rng(4);
  ResNet50 vanilla(ResNetImageNetConfig::resnet50_vanilla(), rng);
  ResNet50 pf(ResNetImageNetConfig::resnet50_pufferfish(), rng);
  EXPECT_EQ(vanilla.num_params(), 25557032);  // torchvision's ResNet-50
  EXPECT_EQ(pf.num_params(), 15202344);       // exactly the paper's Table 7
}

TEST(PaperCounts, WideResNet50) {
  Rng rng(5);
  ResNet50 vanilla(ResNetImageNetConfig::wrn50_vanilla(), rng);
  ResNet50 pf(ResNetImageNetConfig::wrn50_pufferfish(), rng);
  EXPECT_EQ(vanilla.num_params(), 68883240);  // torchvision wide_resnet50_2
  // Paper says Pufferfish finds a 1.72x smaller WRN-50-2 (limitations
  // paragraph); 68883240 / 40047400 = 1.72.
  EXPECT_EQ(pf.num_params(), 40047400);
  EXPECT_NEAR(static_cast<double>(vanilla.num_params()) / pf.num_params(),
              1.72, 0.01);
}

TEST(PaperCounts, ResNet50CompressionRatioMatchesLimitations) {
  Rng rng(6);
  ResNet50 vanilla(ResNetImageNetConfig::resnet50_vanilla(), rng);
  ResNet50 pf(ResNetImageNetConfig::resnet50_pufferfish(), rng);
  // "it only finds 1.68x ... smaller models for ResNet-50".
  EXPECT_NEAR(static_cast<double>(vanilla.num_params()) / pf.num_params(),
              1.68, 0.01);
}

TEST(PaperCounts, LstmWikiText2) {
  Rng rng(7);
  LstmLm vanilla(LstmLmConfig::paper_vanilla(), rng);
  LstmLm pf(LstmLmConfig::paper_pufferfish(), rng);
  EXPECT_EQ(vanilla.num_params(), 85962278);  // Table 2, exactly
  EXPECT_EQ(pf.num_params(), 67962278);       // Table 2, exactly
}

TEST(PaperCounts, LstmMacsPerLayerPerToken) {
  Rng rng(8);
  LstmLm vanilla(LstmLmConfig::paper_vanilla(), rng);
  LstmLm pf(LstmLmConfig::paper_pufferfish(), rng);
  EXPECT_EQ(vanilla.macs_per_token_per_layer(), 18000000);  // Table 2: 18M
  EXPECT_EQ(pf.macs_per_token_per_layer(), 9000000);        // Table 2: 9M
}

TEST(PaperCounts, TransformerWmt16) {
  Rng rng(9);
  TransformerMT vanilla(TransformerConfig::paper_vanilla(), rng);
  TransformerMT pf(TransformerConfig::paper_pufferfish(), rng);
  EXPECT_EQ(vanilla.num_params(), 48978432);  // Table 3, exactly
  EXPECT_EQ(pf.num_params(), 26696192);       // Table 3, exactly
}

TEST(PaperMacs, Vgg19OnCifar) {
  Rng rng(10);
  Vgg19 vanilla(VggConfig::vanilla(), rng);
  Vgg19 pf(VggConfig::pufferfish(10), rng);
  // Table 4: 0.4 G vs 0.29 G.
  EXPECT_NEAR(vanilla.forward_macs(32, 32) / 1e9, 0.40, 0.01);
  EXPECT_NEAR(pf.forward_macs(32, 32) / 1e9, 0.29, 0.01);
}

TEST(PaperMacs, ResNet18OnCifar) {
  Rng rng(11);
  ResNet18Cifar vanilla(ResNetCifarConfig::vanilla(), rng);
  ResNet18Cifar pf(ResNetCifarConfig::pufferfish(), rng);
  // Table 4: 0.56 G vs 0.22 G ("reduces MACs up to 2.55x").
  EXPECT_NEAR(vanilla.forward_macs(32, 32) / 1e9, 0.56, 0.01);
  EXPECT_NEAR(pf.forward_macs(32, 32) / 1e9, 0.22, 0.01);
  EXPECT_NEAR(static_cast<double>(vanilla.forward_macs(32, 32)) /
                  pf.forward_macs(32, 32),
              2.55, 0.05);
}

TEST(PaperMacs, ResNet50OnImageNet) {
  Rng rng(12);
  ResNet50 vanilla(ResNetImageNetConfig::resnet50_vanilla(), rng);
  ResNet50 pf(ResNetImageNetConfig::resnet50_pufferfish(), rng);
  // Table 7: 4.12 G vs 3.6 G. Our unpadded max-pool gives 55x55 (vs 56x56)
  // after the stem, so we land ~1% low; shape preserved.
  EXPECT_NEAR(vanilla.forward_macs(224, 224) / 1e9, 4.12, 0.08);
  EXPECT_NEAR(pf.forward_macs(224, 224) / 1e9, 3.6, 0.12);
}

// ---- Structural checks on scaled-down (trainable) variants. ----

TEST(Vgg19, ScaledForwardShape) {
  Rng rng(13);
  VggConfig cfg;
  cfg.width_mult = 0.125;
  Vgg19 m(cfg, rng);
  m.train(false);
  ag::Var y = m.forward(ag::leaf(rng.randn(Shape{2, 3, 32, 32})));
  EXPECT_EQ(y->shape(), (Shape{2, 10}));
}

TEST(Vgg19, ScaledHybridSmaller) {
  Rng rng(14);
  VggConfig v;
  v.width_mult = 0.25;
  VggConfig h = v;
  h.k_first_lowrank = 10;
  Vgg19 mv(v, rng), mh(h, rng);
  EXPECT_LT(mh.num_params(), mv.num_params());
  EXPECT_LT(mh.forward_macs(32, 32), mv.forward_macs(32, 32));
}

TEST(Vgg19, LthVariantSingleFc) {
  Rng rng(15);
  VggConfig cfg;
  cfg.lth_classifier = true;
  Vgg19 m(cfg, rng);
  // Table 18: conv stack identical, classifier is one 512 -> 10 FC.
  // Relative to the 3-FC vanilla: remove 2x(512*512+512), keep 512*10+10.
  EXPECT_EQ(m.num_params(), 20560330 - 2 * (512 * 512 + 512));
}

TEST(ResNet18, ScaledForwardShape) {
  Rng rng(16);
  ResNetCifarConfig cfg;
  cfg.width_mult = 0.25;
  ResNet18Cifar m(cfg, rng);
  m.train(false);
  ag::Var y = m.forward(ag::leaf(rng.randn(Shape{2, 3, 16, 16})));
  EXPECT_EQ(y->shape(), (Shape{2, 10}));
}

TEST(ResNet18, HybridKeepsFirstBlockDense) {
  Rng rng(17);
  ResNetCifarConfig cfg = ResNetCifarConfig::pufferfish();
  cfg.width_mult = 0.25;
  ResNet18Cifar m(cfg, rng);
  // Walk the tree: the first BasicBlock's convs are Conv2d, later are
  // LowRankConv2d.
  int dense_blocks = 0, lr_blocks = 0;
  for (nn::Module* child : m.children()) {
    if (child->type_name() != "BasicBlock") continue;
    const std::string t = child->children()[0]->type_name();
    if (t == "Conv2d") ++dense_blocks;
    if (t == "LowRankConv2d") ++lr_blocks;
  }
  EXPECT_EQ(dense_blocks, 1);
  EXPECT_EQ(lr_blocks, 7);
}

TEST(ResNet50, ScaledForwardShape) {
  Rng rng(18);
  ResNetImageNetConfig cfg;
  cfg.width_mult = 0.125;
  cfg.num_classes = 10;
  ResNet50 m(cfg, rng);
  m.train(false);
  ag::Var y = m.forward(ag::leaf(rng.randn(Shape{1, 3, 32, 32})));
  EXPECT_EQ(y->shape(), (Shape{1, 10}));
}

TEST(LstmLm, TinyForwardShape) {
  Rng rng(19);
  LstmLm m(LstmLmConfig::tiny(), rng);
  m.train(false);
  std::vector<int64_t> ids(3 * 2, 5);
  ag::Var logits = m.forward(ids, 3, 2, nullptr);
  EXPECT_EQ(logits->shape(), (Shape{6, 200}));
}

TEST(LstmLm, TiedEmbeddingSharesStorage) {
  Rng rng(20);
  LstmLm m(LstmLmConfig::tiny(), rng);
  // Embedding weight gets gradient from both lookup and decoder matmul.
  std::vector<int64_t> ids(4, 1);
  ag::Var logits = m.forward(ids, 2, 2, nullptr);
  ag::Var loss = ag::cross_entropy(logits, {1, 2, 3, 4});
  ag::backward(loss);
  nn::Param* emb = nullptr;
  for (nn::Param* p : m.parameters())
    if (p->var->value.shape() == (Shape{200, 64})) emb = p;
  ASSERT_NE(emb, nullptr);
  EXPECT_GT(emb->var->grad.norm(), 0.0f);
}

TEST(LstmLm, LowRankVariantSmaller) {
  Rng rng(21);
  LstmLm v(LstmLmConfig::tiny(0), rng);
  LstmLm lr(LstmLmConfig::tiny(16), rng);
  EXPECT_LT(lr.num_params(), v.num_params());
  EXPECT_LT(lr.macs_per_token(), v.macs_per_token());
}

TEST(HybridStructure, Vgg19TreesAreParallel) {
  // The warm-start walk requires structurally parallel trees.
  Rng rng(22);
  Vgg19 v(VggConfig::vanilla(), rng);
  Vgg19 h(VggConfig::pufferfish(10), rng);
  std::function<void(nn::Module&, nn::Module&)> walk =
      [&](nn::Module& a, nn::Module& b) {
        ASSERT_EQ(a.children().size(), b.children().size());
        for (size_t i = 0; i < a.children().size(); ++i)
          walk(*a.children()[i], *b.children()[i]);
      };
  walk(v, h);
}

}  // namespace
}  // namespace pf::models

// (appended) VGG-11 variant (Figure 2(a) model).
namespace pf::models {
namespace {

TEST(Vgg11, StructureAndCounts) {
  Rng rng(30);
  Vgg19 v(VggConfig::vgg11(), rng);
  // 8 convs: 3->64, 64->128, 128->256, 256->256, 256->512, 512->512 (x3).
  const int64_t convs = 3 * 64 * 9 + 64 * 128 * 9 + 128 * 256 * 9 +
                        256 * 256 * 9 + 256 * 512 * 9 + 3 * (512 * 512 * 9);
  const int64_t bn = 2 * (64 + 128 + 256 + 256 + 512 + 512 + 512 + 512);
  const int64_t fc = 2 * (512 * 512 + 512) + 512 * 10 + 10;
  EXPECT_EQ(v.num_params(), convs + bn + fc);
}

TEST(Vgg11, ForwardShapeAndLowRankVariant) {
  Rng rng(31);
  VggConfig cfg = VggConfig::vgg11(2);
  cfg.width_mult = 0.125;
  Vgg19 lr(cfg, rng);
  VggConfig vcfg = VggConfig::vgg11();
  vcfg.width_mult = 0.125;
  Vgg19 vanilla(vcfg, rng);
  EXPECT_LT(lr.num_params(), vanilla.num_params());
  lr.train(false);
  ag::Var y = lr.forward(ag::leaf(rng.randn(Shape{2, 3, 32, 32})));
  EXPECT_EQ(y->shape(), (Shape{2, 10}));
  EXPECT_LT(lr.forward_macs(32, 32), vanilla.forward_macs(32, 32));
}

TEST(Vgg11, WarmStartParallelTrees) {
  Rng rng(32);
  VggConfig v = VggConfig::vgg11();
  v.width_mult = 0.125;
  VggConfig h = VggConfig::vgg11(2);
  h.width_mult = 0.125;
  Vgg19 vanilla(v, rng);
  Vgg19 hybrid(h, rng);
  Rng svd_rng(1);
  core::warm_start(vanilla, hybrid, svd_rng);  // must not throw
  EXPECT_GT(core::last_warm_start_svd_seconds(), 0.0);
}

}  // namespace
}  // namespace pf::models

// (appended) fully-factorized ResNet-50 (appendix L arm).
namespace pf::models {
namespace {

TEST(ResNet50, FactorizeAllShrinksBeyondHybrid) {
  Rng rng(33);
  ResNetImageNetConfig v;          // vanilla
  ResNetImageNetConfig h = ResNetImageNetConfig::resnet50_pufferfish();
  ResNetImageNetConfig a;
  a.factorize_all = true;
  ResNet50 mv(v, rng), mh(h, rng), ma(a, rng);
  EXPECT_LT(ma.num_params(), mh.num_params());
  EXPECT_LT(mh.num_params(), mv.num_params());
  EXPECT_LT(ma.forward_macs(224, 224), mh.forward_macs(224, 224));
}

}  // namespace
}  // namespace pf::models
