#include "nn/layers.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.h"
#include "tensor/matmul.h"

namespace pf::nn {
namespace {

TEST(Linear, ShapeAndParamCount) {
  Rng rng(1);
  Linear l(8, 4, rng);
  EXPECT_EQ(l.num_params(), 8 * 4 + 4);
  ag::Var y = l.forward(ag::leaf(rng.randn(Shape{3, 8})));
  EXPECT_EQ(y->shape(), (Shape{3, 4}));
}

TEST(Linear, NoBias) {
  Rng rng(2);
  Linear l(8, 4, rng, /*bias=*/false);
  EXPECT_EQ(l.num_params(), 32);
  EXPECT_FALSE(l.bias);
}

TEST(Linear, MatchesManualMatmul) {
  Rng rng(3);
  Linear l(5, 3, rng);
  Tensor x = rng.randn(Shape{2, 5});
  ag::Var y = l.forward(ag::leaf(x));
  Tensor expect = matmul_nt(x, l.weight->value);
  for (int64_t i = 0; i < 2; ++i)
    for (int64_t j = 0; j < 3; ++j)
      EXPECT_NEAR(y->value[i * 3 + j],
                  expect[i * 3 + j] + l.bias->value[j], 1e-5);
}

// Table 1 check: factorized FC has r(m+n) weight params.
struct LrCase {
  int64_t in, out, rank;
};

class LowRankLinearP : public ::testing::TestWithParam<LrCase> {};

TEST_P(LowRankLinearP, ParamCountMatchesTable1) {
  const auto [in, out, rank] = GetParam();
  Rng rng(7);
  LowRankLinear l(in, out, rank, rng, /*bias=*/false);
  EXPECT_EQ(l.num_params(), rank * (in + out));
  Linear dense(in, out, rng, false);
  EXPECT_EQ(dense.num_params(), in * out);
}

TEST_P(LowRankLinearP, ForwardEqualsExplicitProduct) {
  const auto [in, out, rank] = GetParam();
  Rng rng(9);
  LowRankLinear l(in, out, rank, rng, false);
  Tensor x = rng.randn(Shape{4, in});
  ag::Var y = l.forward(ag::leaf(x));
  // y == x (V U^T).
  Tensor w = matmul_nt(l.u->value, l.v->value);  // (out, in)
  Tensor expect = matmul_nt(x, w);
  EXPECT_TRUE(allclose(y->value, expect, 1e-3f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, LowRankLinearP,
                         ::testing::Values(LrCase{8, 8, 2}, LrCase{16, 4, 3},
                                           LrCase{4, 16, 2},
                                           LrCase{512, 512, 128}));

TEST(Conv2d, ShapeAndCount) {
  Rng rng(11);
  Conv2d c(3, 8, 3, 1, 1, rng);
  EXPECT_EQ(c.num_params(), 8 * 3 * 9);  // bias-free
  ag::Var y = c.forward(ag::leaf(rng.randn(Shape{2, 3, 8, 8})));
  EXPECT_EQ(y->shape(), (Shape{2, 8, 8, 8}));
}

TEST(Conv2d, StridedShape) {
  Rng rng(12);
  Conv2d c(4, 6, 3, 2, 1, rng);
  ag::Var y = c.forward(ag::leaf(rng.randn(Shape{1, 4, 9, 9})));
  EXPECT_EQ(y->shape(), (Shape{1, 6, 5, 5}));
}

// Table 1 check: factorized conv has c_in r k^2 + r c_out params.
TEST(LowRankConv2d, ParamCountMatchesTable1) {
  Rng rng(13);
  const int64_t c_in = 16, c_out = 32, k = 3, r = 8;
  LowRankConv2d c(c_in, c_out, k, 1, 1, r, rng);
  EXPECT_EQ(c.num_params(), c_in * r * k * k + r * c_out);
}

TEST(LowRankConv2d, ForwardEqualsComposedConvs) {
  Rng rng(14);
  LowRankConv2d lr(4, 6, 3, 1, 1, 2, rng);
  Tensor x = rng.randn(Shape{2, 4, 5, 5});
  ag::Var y = lr.forward(ag::leaf(x));
  // Reference: conv with U then 1x1 conv with V via the raw ops.
  ag::Var mid = ag::conv2d(ag::leaf(x), ag::leaf(lr.u->value), 1, 1);
  ag::Var ref = ag::conv2d(mid, ag::leaf(lr.v->value), 1, 0);
  EXPECT_TRUE(allclose(y->value, ref->value, 1e-4f, 1e-5f));
}

TEST(BatchNorm2d, NormalizesTrainingBatch) {
  Rng rng(15);
  BatchNorm2d bn(3);
  bn.train(true);
  ag::Var x = ag::leaf(rng.randn(Shape{4, 3, 5, 5}, 2.0f, 3.0f));
  ag::Var y = bn.forward(x);
  // Per-channel output mean ~0, var ~1 (gamma=1, beta=0 at init).
  for (int64_t c = 0; c < 3; ++c) {
    double sum = 0, sq = 0;
    int64_t cnt = 0;
    for (int64_t n = 0; n < 4; ++n)
      for (int64_t i = 0; i < 25; ++i) {
        const float v = y->value[(n * 3 + c) * 25 + i];
        sum += v;
        sq += v * v;
        ++cnt;
      }
    EXPECT_NEAR(sum / cnt, 0.0, 1e-4);
    EXPECT_NEAR(sq / cnt, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, RunningStatsConvergeToDataStats) {
  Rng rng(16);
  BatchNorm2d bn(2);
  bn.train(true);
  for (int step = 0; step < 200; ++step) {
    Tensor x = rng.randn(Shape{8, 2, 3, 3}, 1.5f, 2.0f);
    bn.forward(ag::leaf(x));
  }
  EXPECT_NEAR((*bn.running_mean)[0], 1.5f, 0.15f);
  EXPECT_NEAR((*bn.running_var)[0], 4.0f, 0.5f);
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  (*bn.running_mean)[0] = 2.0f;
  (*bn.running_var)[0] = 4.0f;
  bn.train(false);
  Tensor x = Tensor::full(Shape{1, 1, 1, 2}, 4.0f);
  ag::Var y = bn.forward(ag::leaf(x));
  // (4 - 2)/2 = 1.
  EXPECT_NEAR(y->value[0], 1.0f, 1e-3);
}

TEST(BatchNorm2d, ParamsAreNoDecay) {
  Rng rng(17);
  BatchNorm2d bn(4);
  for (Param* p : bn.parameters()) EXPECT_TRUE(p->no_decay);
}

TEST(LayerNorm, NormalizesLastDim) {
  Rng rng(18);
  LayerNorm ln(6);
  ag::Var y = ln.forward(ag::leaf(rng.randn(Shape{4, 6}, 3.0f, 2.0f)));
  for (int64_t r = 0; r < 4; ++r) {
    double sum = 0;
    for (int64_t c = 0; c < 6; ++c) sum += y->value[r * 6 + c];
    EXPECT_NEAR(sum / 6, 0.0, 1e-4);
  }
}

TEST(Embedding, LookupAndTying) {
  Rng rng(19);
  Embedding e(10, 4, rng);
  ag::Var out = e.forward({3, 3, 7});
  EXPECT_EQ(out->shape(), (Shape{3, 4}));
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out->value[j], e.weight->value[3 * 4 + j]);
    EXPECT_FLOAT_EQ(out->value[4 + j], e.weight->value[3 * 4 + j]);
  }
}

TEST(Sequential, ComposesAndCollectsParams) {
  Rng rng(20);
  Sequential s;
  s.emplace<Linear>(6, 5, rng);
  s.emplace<ReLU>();
  s.emplace<Linear>(5, 2, rng);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.num_params(), 6 * 5 + 5 + 5 * 2 + 2);
  ag::Var y = s.forward(ag::leaf(rng.randn(Shape{3, 6})));
  EXPECT_EQ(y->shape(), (Shape{3, 2}));
}

TEST(Module, TrainModePropagates) {
  Rng rng(21);
  Sequential s;
  auto* bn = s.emplace<BatchNorm2d>(2);
  s.train(false);
  EXPECT_FALSE(bn->is_training());
  s.train(true);
  EXPECT_TRUE(bn->is_training());
}

TEST(Module, FlatParamsRoundTrip) {
  Rng rng(22);
  Linear l(4, 3, rng);
  Tensor flat = l.flat_params();
  EXPECT_EQ(flat.numel(), l.num_params());
  Tensor doubled = flat * 2.0f;
  l.set_flat_params(doubled);
  EXPECT_TRUE(allclose(l.flat_params(), doubled));
  EXPECT_THROW(l.set_flat_params(Tensor::ones(Shape{3})),
               std::runtime_error);
}

TEST(Module, FlatGradsRoundTrip) {
  Rng rng(23);
  Linear l(4, 3, rng);
  ag::Var y = l.forward(ag::leaf(rng.randn(Shape{2, 4})));
  ag::backward(ag::sum_all(y));
  Tensor g = l.flat_grads();
  EXPECT_EQ(g.numel(), l.num_params());
  EXPECT_GT(g.norm(), 0.0f);
  l.zero_grad();
  EXPECT_FLOAT_EQ(l.flat_grads().norm(), 0.0f);
  l.set_flat_grads(g);
  EXPECT_TRUE(allclose(l.flat_grads(), g));
}

TEST(GradCheck, LinearForwardFormula) {
  // The layer computes x W^T + b; check gradients of that exact composition.
  Rng rng(24);
  pf::testing::gradcheck(
      [](const std::vector<ag::Var>& v) {
        ag::Var y = ag::add(ag::matmul_nt(v[1], v[0]), v[2]);
        return ag::sum_all(ag::mul(y, y));
      },
      {rng.randn(Shape{3, 4}), rng.randn(Shape{2, 4}), rng.randn(Shape{3})});
}

TEST(LowRankConv2d, GradFlowsThroughBothFactors) {
  Rng rng(25);
  LowRankConv2d lr(2, 3, 3, 1, 1, 2, rng);
  ag::Var y = lr.forward(ag::leaf(rng.randn(Shape{1, 2, 4, 4})));
  ag::backward(ag::sum_all(ag::mul(y, y)));
  EXPECT_TRUE(lr.u->has_grad());
  EXPECT_TRUE(lr.v->has_grad());
  EXPECT_GT(lr.u->grad.norm(), 0.0f);
  EXPECT_GT(lr.v->grad.norm(), 0.0f);
}

TEST(MaxPool2dModule, Forward) {
  Rng rng(26);
  MaxPool2d mp(2, 2);
  Tensor x = Tensor::arange(16).reshape(Shape{1, 1, 4, 4});
  ag::Var y = mp.forward(ag::leaf(x));
  EXPECT_EQ(y->shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y->value[0], 5.0f);
  EXPECT_FLOAT_EQ(y->value[3], 15.0f);
}

TEST(Flatten, Shape) {
  Flatten f;
  Rng rng(27);
  ag::Var y = f.forward(ag::leaf(rng.randn(Shape{2, 3, 4, 4})));
  EXPECT_EQ(y->shape(), (Shape{2, 48}));
}

}  // namespace
}  // namespace pf::nn
