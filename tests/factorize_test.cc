#include "core/factorize.h"

#include <gtest/gtest.h>

#include <cmath>
#include "core/amp.h"
#include "models/vgg.h"
#include "tensor/matmul.h"

namespace pf::core {
namespace {

TEST(FactorizeMatrix, FullRankIsExact) {
  Rng rng(1);
  Tensor w = rng.randn(Shape{10, 6});
  Rng svd_rng(1);
  FactorPair f = factorize_matrix(w, 6, svd_rng);
  EXPECT_LT(reconstruction_error(w, f), 1e-3f);
}

TEST(FactorizeMatrix, SqrtSigmaSplitBalancesFactors) {
  // Algorithm 1 splits S^{1/2} into both factors, so |U| ~ |V| for a
  // symmetric-ish spectrum (instead of all mass in one factor).
  Rng rng(2);
  Tensor w = rng.randn(Shape{12, 12});
  Rng svd_rng(2);
  FactorPair f = factorize_matrix(w, 4, svd_rng);
  const float ru = f.u.norm(), rv = f.v.norm();
  EXPECT_LT(std::max(ru, rv) / std::min(ru, rv), 3.0f);
}

class FactorizeRankP : public ::testing::TestWithParam<int64_t> {};

TEST_P(FactorizeRankP, ErrorDecreasesWithRank) {
  Rng rng(3);
  Tensor w = rng.randn(Shape{16, 16});
  Rng r1(1), r2(2);
  const int64_t rank = GetParam();
  FactorPair lo = factorize_matrix(w, rank, r1);
  FactorPair hi = factorize_matrix(w, std::min<int64_t>(16, rank * 2), r2);
  EXPECT_LE(reconstruction_error(w, hi),
            reconstruction_error(w, lo) + 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Ranks, FactorizeRankP,
                         ::testing::Values(1, 2, 4, 8));

TEST(FactorizeLinear, FullRankForwardEquivalence) {
  Rng rng(4);
  nn::Linear dense(8, 8, rng);
  nn::LowRankLinear lr(8, 8, 8, rng);
  Rng svd_rng(3);
  factorize_linear(dense, lr, svd_rng);
  Tensor x = rng.randn(Shape{3, 8});
  ag::Var yd = dense.forward(ag::leaf(x));
  ag::Var yl = lr.forward(ag::leaf(x));
  EXPECT_TRUE(allclose(yl->value, yd->value, 1e-3f, 1e-3f));
}

TEST(FactorizeLinear, BiasCarriesOver) {
  Rng rng(5);
  nn::Linear dense(6, 4, rng);
  nn::LowRankLinear lr(6, 4, 2, rng);
  Rng svd_rng(4);
  factorize_linear(dense, lr, svd_rng);
  EXPECT_TRUE(allclose(lr.bias->value, dense.bias->value));
}

TEST(FactorizeConv, FullRankForwardEquivalence) {
  Rng rng(6);
  // Unrolled matrix is (c_in*9, c_out) = (18, 4): full rank is 4.
  nn::Conv2d dense(2, 4, 3, 1, 1, rng);
  nn::LowRankConv2d lr(2, 4, 3, 1, 1, 4, rng);
  Rng svd_rng(5);
  factorize_conv(dense, lr, svd_rng);
  Tensor x = rng.randn(Shape{2, 2, 5, 5});
  ag::Var yd = dense.forward(ag::leaf(x));
  ag::Var yl = lr.forward(ag::leaf(x));
  EXPECT_TRUE(allclose(yl->value, yd->value, 1e-3f, 1e-3f));
}

TEST(FactorizeConv, UnrollReconstructsWeight) {
  // At full rank, composing the factorized convs reproduces the dense
  // kernel: check via the composite weight sum_r v[o,r] * u[r,i,ky,kx].
  Rng rng(7);
  nn::Conv2d dense(3, 5, 3, 1, 1, rng);
  nn::LowRankConv2d lr(3, 5, 3, 1, 1, 5, rng);
  Rng svd_rng(6);
  factorize_conv(dense, lr, svd_rng);
  const int64_t c_in = 3, c_out = 5, k = 3, r = 5;
  Tensor composite(Shape{c_out, c_in, k, k});
  for (int64_t o = 0; o < c_out; ++o)
    for (int64_t i = 0; i < c_in; ++i)
      for (int64_t ky = 0; ky < k; ++ky)
        for (int64_t kx = 0; kx < k; ++kx) {
          double acc = 0;
          for (int64_t rr = 0; rr < r; ++rr)
            acc += static_cast<double>(lr.v->value[o * r + rr]) *
                   lr.u->value[((rr * c_in + i) * k + ky) * k + kx];
          composite[((o * c_in + i) * k + ky) * k + kx] =
              static_cast<float>(acc);
        }
  EXPECT_TRUE(allclose(composite, dense.weight->value, 1e-3f, 1e-3f));
}

TEST(FactorizeConv, StridedLayerEquivalence) {
  Rng rng(8);
  nn::Conv2d dense(2, 4, 3, 2, 1, rng);
  nn::LowRankConv2d lr(2, 4, 3, 2, 1, 4, rng);
  Rng svd_rng(7);
  factorize_conv(dense, lr, svd_rng);
  Tensor x = rng.randn(Shape{1, 2, 7, 7});
  EXPECT_TRUE(allclose(lr.forward(ag::leaf(x))->value,
                       dense.forward(ag::leaf(x))->value, 1e-3f, 1e-3f));
}

TEST(WarmStart, Vgg19FullModelTransfer) {
  // Factorize a (scaled) vanilla VGG into its hybrid: eval-mode forward
  // outputs should be close (truncation error only in the factorized
  // layers).
  Rng rng(9);
  models::VggConfig vcfg;
  vcfg.width_mult = 0.25;
  models::VggConfig hcfg = vcfg;
  hcfg.k_first_lowrank = 10;
  models::Vgg19 vanilla(vcfg, rng);
  models::Vgg19 hybrid(hcfg, rng);

  // Give BN buffers some nontrivial statistics first.
  vanilla.train(true);
  Rng data_rng(10);
  for (int i = 0; i < 3; ++i)
    vanilla.forward(ag::leaf(data_rng.randn(Shape{4, 3, 32, 32})));

  Rng svd_rng(8);
  warm_start(vanilla, hybrid, svd_rng);
  EXPECT_GT(last_warm_start_svd_seconds(), 0.0);

  // BN buffers copied exactly.
  auto vb = vanilla.children()[0]->children()[1]->local_buffers();
  auto hb = hybrid.children()[0]->children()[1]->local_buffers();
  EXPECT_TRUE(allclose(vb[0].value, hb[0].value));
  EXPECT_TRUE(allclose(vb[1].value, hb[1].value));

  vanilla.train(false);
  hybrid.train(false);
  Tensor x = data_rng.randn(Shape{2, 3, 32, 32});
  ag::Var yv = vanilla.forward(ag::leaf(x));
  ag::Var yh = hybrid.forward(ag::leaf(x));
  // Not exact (rank truncation), but highly correlated: same top-1 on
  // most inputs; check bounded deviation relative to logit scale.
  EXPECT_LT(max_abs_diff(yv->value, yh->value),
            2.0f * yv->value.abs_max() + 1.0f);
}

TEST(WarmStart, IdenticalModelsCopyExactly) {
  Rng rng(11);
  models::VggConfig cfg;
  cfg.width_mult = 0.125;
  models::Vgg19 a(cfg, rng);
  models::Vgg19 b(cfg, rng);
  Rng svd_rng(9);
  warm_start(a, b, svd_rng);
  EXPECT_TRUE(allclose(a.flat_params(), b.flat_params()));
}

TEST(WarmStart, MismatchedTreesThrow) {
  Rng rng(12);
  nn::Linear a(4, 4, rng);
  nn::Conv2d b(1, 1, 3, 1, 1, rng);
  Rng svd_rng(10);
  EXPECT_THROW(warm_start(a, b, svd_rng), std::runtime_error);
}

// ---- AMP emulation. ----

TEST(Amp, Fp16RoundTripExactValues) {
  // Values exactly representable in fp16 pass through.
  for (float v : {0.0f, 1.0f, -2.0f, 0.5f, 1024.0f, 0.25f})
    EXPECT_FLOAT_EQ(to_fp16(v), v);
}

TEST(Amp, Fp16Rounds) {
  // 1 + 2^-11 is halfway; nearest-even rounds to 1.0.
  const float v = 1.0f + 1.0f / 2048.0f;
  EXPECT_FLOAT_EQ(to_fp16(v), 1.0f);
  // 1 + 2^-10 is representable.
  EXPECT_FLOAT_EQ(to_fp16(1.0f + 1.0f / 1024.0f), 1.0f + 1.0f / 1024.0f);
}

TEST(Amp, Fp16OverflowAndUnderflow) {
  EXPECT_TRUE(std::isinf(to_fp16(1e6f)));
  EXPECT_FLOAT_EQ(to_fp16(1e-12f), 0.0f);
  // Subnormal range survives approximately.
  const float sub = 3e-6f;
  EXPECT_NEAR(to_fp16(sub), sub, 1e-6f);
}

TEST(Amp, RelativeErrorBounded) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const float v = static_cast<float>(rng.normal(0, 10));
    const float q = to_fp16(v);
    EXPECT_NEAR(q, v, std::fabs(v) * 1e-3f + 1e-6f);
  }
}

TEST(Amp, GuardQuantizesAndRestores) {
  Rng rng(14);
  nn::Linear l(8, 8, rng);
  const Tensor masters = l.weight->value;
  {
    AmpForwardGuard guard(l);
    // Inside the guard weights sit on the fp16 grid.
    for (int64_t i = 0; i < l.weight->value.numel(); ++i)
      EXPECT_FLOAT_EQ(l.weight->value[i], to_fp16(l.weight->value[i]));
  }
  EXPECT_TRUE(allclose(l.weight->value, masters, 0.0f, 0.0f));
}

}  // namespace
}  // namespace pf::core

// (appended) energy-based rank allocation utilities.
namespace pf::core {
namespace {

TEST(EnergyRank, FullEnergyNeedsFullRankOnWhiteMatrix) {
  Rng rng(61);
  Tensor w = rng.randn(Shape{12, 12});
  EXPECT_EQ(choose_rank_for_energy(w, 1.0), 12);
  EXPECT_EQ(choose_rank_for_energy(w, 0.0), 1);
}

TEST(EnergyRank, LowRankMatrixNeedsItsRank) {
  Rng rng(62);
  Tensor u = rng.randn(Shape{16, 3});
  Tensor v = rng.randn(Shape{10, 3});
  Tensor w = matmul_nt(u, v);  // exactly rank 3
  EXPECT_LE(choose_rank_for_energy(w, 0.999), 3);
  EXPECT_NEAR(retained_energy(w, 3), 1.0, 1e-4);
}

TEST(EnergyRank, RetainedEnergyMonotone) {
  Rng rng(63);
  Tensor w = rng.randn(Shape{10, 8});
  double prev = 0;
  for (int64_t r = 1; r <= 8; ++r) {
    const double e = retained_energy(w, r);
    EXPECT_GE(e, prev - 1e-9);
    prev = e;
  }
  EXPECT_NEAR(prev, 1.0, 1e-5);
}

TEST(EnergyRank, MinRankRespected) {
  Rng rng(64);
  Tensor u = rng.randn(Shape{8, 1});
  Tensor v = rng.randn(Shape{8, 1});
  Tensor w = matmul_nt(u, v);  // rank 1
  EXPECT_EQ(choose_rank_for_energy(w, 0.5, /*min_rank=*/4), 4);
}

TEST(EnergyRank, ConsistentWithEckartYoung) {
  // retained_energy(r) == 1 - truncation_error^2 / |W|^2.
  Rng rng(65);
  Tensor w = rng.randn(Shape{14, 9});
  Rng svd_rng(1);
  for (int64_t r : {2, 5, 9}) {
    FactorPair f = factorize_matrix(w, r, svd_rng);
    const double rel_err = reconstruction_error(w, f);
    EXPECT_NEAR(retained_energy(w, r), 1.0 - rel_err * rel_err, 5e-3);
  }
}

}  // namespace
}  // namespace pf::core
