#include "optim/optim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"

namespace pf::optim {
namespace {

// Minimal module exposing one decayed and one no-decay parameter.
class Probe : public nn::Module {
 public:
  Probe() {
    w = add_param("w", Tensor::full(Shape{2}, 1.0f));
    b = add_param("b", Tensor::full(Shape{2}, 1.0f), /*no_decay=*/true);
  }
  std::string type_name() const override { return "Probe"; }
  ag::Var w, b;
};

void set_grad(const ag::Var& v, float g) {
  v->grad = Tensor::full(v->value.shape(), g);
}

TEST(SGD, PlainStep) {
  Probe p;
  SGD opt(p.parameters(), /*lr=*/0.1f);
  set_grad(p.w, 2.0f);
  set_grad(p.b, 2.0f);
  opt.step();
  EXPECT_FLOAT_EQ(p.w->value[0], 1.0f - 0.1f * 2.0f);
}

TEST(SGD, SkipsParamsWithoutGrad) {
  Probe p;
  SGD opt(p.parameters(), 0.1f);
  set_grad(p.w, 1.0f);  // b has no grad
  opt.step();
  EXPECT_FLOAT_EQ(p.b->value[0], 1.0f);
  EXPECT_LT(p.w->value[0], 1.0f);
}

TEST(SGD, MomentumAccumulates) {
  Probe p;
  SGD opt(p.parameters(), 0.1f, /*momentum=*/0.9f);
  // Two steps of constant gradient 1: v1 = 1, v2 = 1.9.
  set_grad(p.w, 1.0f);
  opt.step();
  EXPECT_NEAR(p.w->value[0], 1.0f - 0.1f, 1e-6);
  set_grad(p.w, 1.0f);
  opt.step();
  EXPECT_NEAR(p.w->value[0], 1.0f - 0.1f - 0.1f * 1.9f, 1e-6);
}

TEST(SGD, WeightDecayAppliedSelectively) {
  Probe p;
  SGD opt(p.parameters(), 0.1f, 0.0f, /*weight_decay=*/0.5f);
  set_grad(p.w, 0.0f);
  set_grad(p.b, 0.0f);
  opt.step();
  // w decays: w -= lr * wd * w; b (no_decay) untouched.
  EXPECT_NEAR(p.w->value[0], 1.0f - 0.1f * 0.5f, 1e-6);
  EXPECT_FLOAT_EQ(p.b->value[0], 1.0f);
}

TEST(SGD, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 by hand-fed gradients.
  Probe p;
  SGD opt(p.parameters(), 0.1f, 0.9f);
  for (int i = 0; i < 200; ++i) {
    set_grad(p.w, 2.0f * (p.w->value[0] - 3.0f));
    p.b->zero_grad();
    opt.step();
  }
  EXPECT_NEAR(p.w->value[0], 3.0f, 1e-3);
}

TEST(Adam, FirstStepIsLrSizedSignedStep) {
  Probe p;
  Adam opt(p.parameters(), 0.01f);
  set_grad(p.w, 5.0f);
  opt.step();
  // Bias-corrected first Adam step magnitude ~= lr regardless of grad scale.
  EXPECT_NEAR(p.w->value[0], 1.0f - 0.01f, 1e-4);
}

TEST(Adam, ConvergesOnQuadratic) {
  Probe p;
  Adam opt(p.parameters(), 0.05f);
  for (int i = 0; i < 500; ++i) {
    set_grad(p.w, 2.0f * (p.w->value[0] + 2.0f));
    opt.step();
  }
  EXPECT_NEAR(p.w->value[0], -2.0f, 1e-2);
}

TEST(ClipGradNorm, ScalesDownOnly) {
  Probe p;
  set_grad(p.w, 3.0f);
  set_grad(p.b, 4.0f);
  auto params = p.parameters();
  // Total norm = sqrt(2*(9+16)) = sqrt(50) ~ 7.07.
  const float pre = clip_grad_norm(params, 1.0f);
  EXPECT_NEAR(pre, std::sqrt(50.0f), 1e-4);
  double post = 0;
  for (nn::Param* q : params)
    for (int64_t i = 0; i < q->var->grad.numel(); ++i)
      post += static_cast<double>(q->var->grad[i]) * q->var->grad[i];
  EXPECT_NEAR(std::sqrt(post), 1.0, 1e-4);
  // No scaling when under the bound.
  const float pre2 = clip_grad_norm(params, 10.0f);
  EXPECT_NEAR(pre2, 1.0f, 1e-4);
}

TEST(StepDecay, Milestones) {
  StepDecay s(1.0f, {10, 20}, 0.1f);
  EXPECT_FLOAT_EQ(s.at_epoch(0), 1.0f);
  EXPECT_FLOAT_EQ(s.at_epoch(9), 1.0f);
  EXPECT_FLOAT_EQ(s.at_epoch(10), 0.1f);
  EXPECT_NEAR(s.at_epoch(25), 0.01f, 1e-7);
}

TEST(WarmupThenStep, LinearRampThenDecay) {
  WarmupThenStep s(0.1f, 1.6f, 5, {80}, 0.1f);
  EXPECT_NEAR(s.at_epoch(0), 0.1f + 1.5f / 5, 1e-5);
  EXPECT_NEAR(s.at_epoch(4), 1.6f, 1e-5);
  EXPECT_NEAR(s.at_epoch(10), 1.6f, 1e-5);
  EXPECT_NEAR(s.at_epoch(80), 0.16f, 1e-5);
}

TEST(ReduceOnPlateau, DecaysWhenNotImproving) {
  ReduceOnPlateau r(20.0f, 0.25f);
  EXPECT_FLOAT_EQ(r.observe(10.0f), 20.0f);  // improved
  EXPECT_FLOAT_EQ(r.observe(11.0f), 5.0f);   // worse -> decay
  EXPECT_FLOAT_EQ(r.observe(9.0f), 5.0f);    // improved again
  EXPECT_FLOAT_EQ(r.observe(9.5f), 1.25f);
}

TEST(Optimizer, ZeroGrad) {
  Probe p;
  set_grad(p.w, 1.0f);
  SGD opt(p.parameters(), 0.1f);
  opt.zero_grad();
  EXPECT_FALSE(p.w->has_grad());
}

}  // namespace
}  // namespace pf::optim
