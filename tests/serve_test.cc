// Serving subsystem tests: batcher flush/admission semantics, frozen-engine
// bitwise equivalence with module eval forwards, zero-allocation steady
// state, and end-to-end concurrent-client determinism. The whole file also
// runs under PF_THREADS=4 (ctest pf_tests_threads4) and ThreadSanitizer
// (ctest pf_tests_tsan), which is where the "engines are read-only after
// prime()" contract is actually enforced.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "core/eval.h"
#include "metrics/metrics.h"
#include "metrics/serve_stats.h"
#include "models/resnet.h"
#include "nn/serialize.h"
#include "runtime/buffer_pool.h"
#include "runtime/thread_pool.h"

namespace pf::serve {
namespace {

std::string tmp_path(const char* name) {
  // getpid(): the same test code runs concurrently in the plain binary and
  // the sanitizer ctest entries; a shared /tmp name lets one process
  // clobber the other's files mid-run.
  return std::string(::testing::TempDir()) + name + "." +
         std::to_string(::getpid());
}

std::unique_ptr<nn::UnaryModule> tiny_resnet(uint64_t seed,
                                             int first_lowrank = 0) {
  Rng rng(seed);
  models::ResNetCifarConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.first_lowrank_block = first_lowrank;
  return std::make_unique<models::ResNet18Cifar>(cfg, rng);
}

std::unique_ptr<models::LstmLm> tiny_lstm(uint64_t seed, int64_t rank = 0) {
  Rng rng(seed);
  models::LstmLmConfig cfg = models::LstmLmConfig::tiny(rank);
  cfg.vocab = 50;
  cfg.hidden = 16;
  return std::make_unique<models::LstmLm>(cfg, rng);
}

// Restores the env-default thread count when a test exits.
struct ThreadGuard {
  ~ThreadGuard() { runtime::set_threads(0); }
};

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

// ---------------- Batcher ----------------

TEST(Batcher, FlushesImmediatelyAtMaxBatch) {
  BatcherConfig cfg;
  cfg.max_batch = 4;
  cfg.deadline_ms = 10000;  // deadline must not be what flushes this
  Batcher b(cfg);
  for (uint64_t i = 0; i < 4; ++i)
    ASSERT_TRUE(b.submit(make_request(i, Tensor::ones(Shape{2}))));
  metrics::Timer t;
  std::vector<RequestPtr> batch = b.next_batch();
  EXPECT_LT(t.seconds(), 1.0);  // no deadline wait
  ASSERT_EQ(batch.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(batch[i]->id, i);
  EXPECT_EQ(b.depth(), 0);
}

TEST(Batcher, FlushesPartialBatchAtDeadline) {
  BatcherConfig cfg;
  cfg.max_batch = 8;
  cfg.deadline_ms = 30;
  Batcher b(cfg);
  ASSERT_TRUE(b.submit(make_request(0, Tensor::ones(Shape{2}))));
  ASSERT_TRUE(b.submit(make_request(1, Tensor::ones(Shape{2}))));
  metrics::Timer t;
  std::vector<RequestPtr> batch = b.next_batch();
  const double waited = t.seconds();
  ASSERT_EQ(batch.size(), 2u);
  // The oldest request's deadline bounds the wait: the worker must have
  // actually waited for peers (>= ~deadline, minus scheduling slop).
  EXPECT_GE(waited, 0.02);
}

TEST(Batcher, ZeroDeadlineIsGreedy) {
  BatcherConfig cfg;
  cfg.max_batch = 8;
  cfg.deadline_ms = 0;
  Batcher b(cfg);
  ASSERT_TRUE(b.submit(make_request(0, Tensor::ones(Shape{2}))));
  metrics::Timer t;
  EXPECT_EQ(b.next_batch().size(), 1u);
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(Batcher, RejectsBeyondBoundedDepth) {
  BatcherConfig cfg;
  cfg.max_batch = 4;
  cfg.deadline_ms = 10000;
  cfg.max_depth = 3;
  Batcher b(cfg);
  EXPECT_TRUE(b.submit(make_request(0, Tensor::ones(Shape{2}))));
  EXPECT_TRUE(b.submit(make_request(1, Tensor::ones(Shape{2}))));
  EXPECT_TRUE(b.submit(make_request(2, Tensor::ones(Shape{2}))));
  EXPECT_FALSE(b.submit(make_request(3, Tensor::ones(Shape{2}))));
  EXPECT_EQ(b.depth(), 3);
  b.shutdown();
  EXPECT_FALSE(b.submit(make_request(4, Tensor::ones(Shape{2}))));
  // Drain semantics: queued work is still handed out after shutdown...
  EXPECT_EQ(b.next_batch().size(), 3u);
  // ...and only then do workers see the exit signal.
  EXPECT_TRUE(b.next_batch().empty());
}

TEST(Batcher, DeadlineReArmsAfterAnotherWorkerFlushes) {
  // Regression for the flush-deadline re-arm path: worker A parks on a
  // deadline computed from the oldest request; another worker pops that
  // request. The deadline must then be re-anchored to the CURRENT front --
  // a stale anchor would flush a freshly submitted request immediately (as
  // a batch of one) instead of letting it wait its own deadline_ms for
  // peers.
  BatcherConfig cfg;
  cfg.max_batch = 3;
  cfg.deadline_ms = 80;
  Batcher b(cfg);

  ASSERT_TRUE(b.submit(make_request(0, Tensor::ones(Shape{2}))));
  // Worker A parks with the deadline anchored to request 0.
  std::vector<RequestPtr> got_a;
  std::thread worker_a([&] { got_a = b.next_batch(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Worker B arrives, and two more submissions complete a full batch that
  // B (or A) takes immediately -- either way request 0 leaves the queue.
  ASSERT_TRUE(b.submit(make_request(1, Tensor::ones(Shape{2}))));
  ASSERT_TRUE(b.submit(make_request(2, Tensor::ones(Shape{2}))));
  worker_a.join();
  ASSERT_EQ(got_a.size(), 3u);

  // A fresh request submitted now is anchored to its OWN submit time: a
  // second worker must hold it for ~deadline_ms waiting for peers, not
  // flush it instantly against request 0's long-gone deadline.
  ASSERT_TRUE(b.submit(make_request(3, Tensor::ones(Shape{2}))));
  metrics::Timer t;
  std::vector<RequestPtr> got_b = b.next_batch();
  const double waited = t.seconds();
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_b[0]->id, 3u);
  EXPECT_GE(waited, 0.05);  // ~deadline_ms minus scheduling slop
}

TEST(Batcher, ZeroDeadlineStaysGreedyUnderConcurrentWorkers) {
  // deadline_ms = 0 degenerate case: the armed deadline is the front's own
  // submit time (always in the past), so next_batch never parks -- even
  // when several workers race over the same queue.
  BatcherConfig cfg;
  cfg.max_batch = 4;
  cfg.deadline_ms = 0;
  Batcher b(cfg);
  constexpr int kRequests = 32;
  std::atomic<int> handed{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w)
    workers.emplace_back([&] {
      for (;;) {
        std::vector<RequestPtr> batch = b.next_batch();
        if (batch.empty()) return;  // shutdown + drained
        handed.fetch_add(static_cast<int>(batch.size()));
      }
    });
  metrics::Timer t;
  for (int i = 0; i < kRequests; ++i)
    ASSERT_TRUE(b.submit(make_request(static_cast<uint64_t>(i),
                                      Tensor::ones(Shape{2}))));
  b.shutdown();
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(handed.load(), kRequests);  // every request handed out once
  EXPECT_LT(t.seconds(), 5.0);          // greedy: nobody waited a deadline
}

TEST(Batcher, ShutdownWakesBlockedWorker) {
  BatcherConfig cfg;
  cfg.deadline_ms = 10000;
  Batcher b(cfg);
  std::thread worker([&] { EXPECT_TRUE(b.next_batch().empty()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  b.shutdown();
  worker.join();
}

// ---------------- Frozen engines ----------------

TEST(Frozen, VisionBitwiseIdenticalToModuleEvalForward) {
  // Reference module: perturb BN stats with a train-mode forward, then
  // checkpoint it.
  auto ref = tiny_resnet(1);
  Rng rng(7);
  ref->train(true);
  ref->forward(ag::leaf(rng.randn(Shape{2, 3, 8, 8})));
  const std::string path = tmp_path("frozen_vision.ckpt");
  nn::save_checkpoint(*ref, path);

  // Module eval forward (the trainer's path).
  Tensor x = rng.randn(Shape{3, 3, 8, 8});
  core::EvalModeGuard eg(*ref);
  Tensor want = core::eval_forward(*ref, x);

  // Frozen artifact: differently seeded module + checkpoint load + packing.
  FrozenModel frozen(tiny_resnet(999), "resnet18-test", path);
  Tensor got = frozen.forward(x);
  EXPECT_TRUE(bitwise_equal(want, got));
  EXPECT_EQ(frozen.num_params(), ref->num_params());
  std::remove(path.c_str());
}

TEST(Frozen, HybridLowRankBitwiseIdentical) {
  auto ref = tiny_resnet(2, /*first_lowrank=*/2);
  const std::string path = tmp_path("frozen_hybrid.ckpt");
  nn::save_checkpoint(*ref, path);
  Rng rng(11);
  Tensor x = rng.randn(Shape{2, 3, 8, 8});
  core::EvalModeGuard eg(*ref);
  Tensor want = core::eval_forward(*ref, x);
  FrozenModel frozen(tiny_resnet(998, 2), "hybrid-test", path);
  EXPECT_TRUE(bitwise_equal(want, frozen.forward(x)));
  std::remove(path.c_str());
}

TEST(Frozen, LstmBitwiseIdenticalToModuleEvalForward) {
  auto ref = tiny_lstm(3, /*rank=*/4);
  const std::string path = tmp_path("frozen_lstm.ckpt");
  nn::save_checkpoint(*ref, path);

  const int64_t t = 6, b = 3;
  std::vector<int64_t> ids(static_cast<size_t>(t * b));
  Rng rng(13);
  for (auto& id : ids) id = rng.uniform_int(50);

  core::EvalModeGuard eg(*ref);
  Tensor want = core::eval_forward_lm(*ref, ids, t, b, nullptr);
  FrozenLstm frozen(tiny_lstm(997, 4), t, "lstm-test", path);
  EXPECT_TRUE(bitwise_equal(want, frozen.forward(ids, t, b)));
  std::remove(path.c_str());
}

TEST(Frozen, PackedArenaBacksParameters) {
  FrozenModel frozen(tiny_resnet(4), "packed-test");
  // The packed artifact is one contiguous float block covering every param.
  EXPECT_EQ(frozen.packed_bytes(),
            frozen.num_params() * static_cast<int64_t>(sizeof(float)));
  auto params = frozen.module().parameters();
  int64_t shared = 0;
  for (nn::Param* p : params) {
    EXPECT_FALSE(p->var->requires_grad);
    if (p->var->value.storage_refcount() > 1) ++shared;
  }
  // Every parameter is a view into the shared arena.
  EXPECT_EQ(shared, static_cast<int64_t>(params.size()));
  EXPECT_FALSE(frozen.module().is_training());
}

TEST(Frozen, SteadyStateServesWithZeroSysAllocs) {
  if (!runtime::BufferPool::instance().enabled())
    GTEST_SKIP() << "buffer pool disabled (PF_POOL_DISABLE)";
  FrozenModel frozen(tiny_resnet(5), "alloc-test");
  frozen.prime(Shape{3, 8, 8}, 4);
  Rng rng(17);
  Tensor x = rng.randn(Shape{4, 3, 8, 8});
  frozen.forward(x);  // one more warm pass with the real input resident
  metrics::reset_alloc_stats(false);
  for (int i = 0; i < 20; ++i) frozen.forward(x);
  const metrics::AllocStats s = metrics::alloc_stats();
  EXPECT_EQ(s.sys_allocs, 0u) << "steady-state request hit the system "
                                 "allocator";
  EXPECT_EQ(s.cow_unshares, 0u) << "steady-state request paid a COW copy";
  EXPECT_GT(s.allocations, 0u);  // it did run, all from the free lists
}

// ---------------- Server ----------------

// Engine stub whose forward blocks on a gate; used to pin requests in the
// queue deterministically.
class GateEngine : public Engine {
 public:
  GateEngine() : gate_open_(gate_.get_future().share()) {}
  std::string name() const override { return "gate"; }
  void forward_batch(const std::vector<RequestPtr>& reqs) override {
    if (!started_flag_.exchange(true)) started_.set_value();
    gate_open_.wait();
    for (const RequestPtr& r : reqs) r->output = Tensor::ones(Shape{1});
  }
  std::future<void> started() { return started_.get_future(); }
  void open() { gate_.set_value(); }

 private:
  std::promise<void> started_;
  std::atomic<bool> started_flag_{false};
  std::promise<void> gate_;
  std::shared_future<void> gate_open_;
};

TEST(Server, AdmissionRejectsWhenQueueFull) {
  GateEngine engine;
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.batcher.max_batch = 1;
  cfg.batcher.deadline_ms = 0;
  cfg.batcher.max_depth = 2;
  metrics::ServeStats stats;
  stats.begin();
  Server server(engine, cfg, &stats);
  server.start();

  auto r1 = make_request(1, Tensor::ones(Shape{1}));
  ASSERT_TRUE(server.submit(r1));
  engine.started().wait();  // the single worker now holds r1, queue empty

  ASSERT_TRUE(server.submit(make_request(2, Tensor::ones(Shape{1}))));
  ASSERT_TRUE(server.submit(make_request(3, Tensor::ones(Shape{1}))));
  EXPECT_FALSE(server.submit(make_request(4, Tensor::ones(Shape{1}))));

  engine.open();
  server.stop();
  const metrics::ServeReport rep = stats.report();
  EXPECT_EQ(rep.submitted, 3u);
  EXPECT_EQ(rep.rejected, 1u);
  EXPECT_EQ(rep.completed, 3u);  // drain: queued work finished on stop()
}

TEST(Server, ConcurrentClientsGetBitwiseDeterministicResults) {
  // Per-request results must not depend on which batch a request landed in,
  // which worker served it, or what else was in flight. Serve a frozen
  // ResNet to 4 hammering clients, then check every response against the
  // solo single-request forward.
  FrozenModel frozen(tiny_resnet(6), "det-test");
  frozen.prime(Shape{3, 8, 8}, 4);

  ServerConfig cfg;
  cfg.workers = 2;
  cfg.batcher.max_batch = 4;
  cfg.batcher.deadline_ms = 1.0;
  metrics::ServeStats stats;
  stats.begin();
  Server server(frozen, cfg, &stats);
  server.start();

  constexpr int kClients = 4, kPerClient = 8;
  // Deterministic per-request inputs, generated up front.
  std::vector<Tensor> inputs;
  for (int i = 0; i < kClients * kPerClient; ++i) {
    Rng rng(1000 + static_cast<uint64_t>(i));
    inputs.push_back(rng.randn(Shape{3, 8, 8}));
  }
  std::vector<Tensor> outputs(inputs.size());
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int k = 0; k < kPerClient; ++k) {
        const size_t i = static_cast<size_t>(c * kPerClient + k);
        RequestPtr r = make_request(i, inputs[i]);
        std::future<void> done = r->done.get_future();
        ASSERT_TRUE(server.submit(r));
        done.wait();
        outputs[i] = r->output;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.stop();

  for (size_t i = 0; i < inputs.size(); ++i) {
    Tensor solo = frozen.forward(inputs[i].reshape(Shape{1, 3, 8, 8}))
                      .reshape(Shape{outputs[i].numel()});
    EXPECT_TRUE(bitwise_equal(solo, outputs[i])) << "request " << i;
  }
  const metrics::ServeReport rep = stats.report();
  EXPECT_EQ(rep.completed, static_cast<uint64_t>(inputs.size()));
  EXPECT_EQ(rep.rejected, 0u);
  EXPECT_GE(rep.mean_batch, 1.0);
}

TEST(Server, ResultsAndBatchHistogramIdenticalAcrossThreadCounts) {
  // PF_THREADS determinism sweep for the serving path: with one worker and
  // the whole workload queued before start(), batch assembly is a pure
  // function of the request order -- so the ServeStats batch histogram AND
  // every response must come out identical whether the kernel pool has 1 or
  // 4 threads (worker-loop GEMMs take the inline-serial path either way).
  ThreadGuard tg;
  constexpr int kRequests = 14;  // 3 full batches of 4 + one partial of 2
  std::vector<Tensor> inputs;
  for (int i = 0; i < kRequests; ++i) {
    Rng rng(2000 + static_cast<uint64_t>(i));
    inputs.push_back(rng.randn(Shape{3, 8, 8}));
  }
  auto run = [&](int threads) {
    runtime::set_threads(threads);
    FrozenModel frozen(tiny_resnet(21, 2), "sweep-test");
    frozen.prime(Shape{3, 8, 8}, 4);
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.batcher.max_batch = 4;
    cfg.batcher.deadline_ms = 0;  // greedy: take whatever is queued
    cfg.batcher.max_depth = kRequests;
    metrics::ServeStats stats;
    stats.begin();
    Server server(frozen, cfg, &stats);
    // Queue the complete workload before the worker exists.
    std::vector<RequestPtr> reqs;
    std::vector<std::future<void>> done;
    for (int i = 0; i < kRequests; ++i) {
      reqs.push_back(make_request(static_cast<uint64_t>(i),
                                  inputs[static_cast<size_t>(i)]));
      done.push_back(reqs.back()->done.get_future());
      EXPECT_TRUE(server.submit(reqs.back()));
    }
    server.start();
    for (auto& f : done) f.wait();
    server.stop();
    std::vector<Tensor> outputs;
    for (const RequestPtr& r : reqs) outputs.push_back(r->output);
    return std::make_pair(outputs, stats.report().batch_hist);
  };
  const auto [out1, hist1] = run(1);
  const auto [out4, hist4] = run(4);

  EXPECT_EQ(hist1, hist4);
  ASSERT_EQ(hist1.size(), 5u);  // max recorded batch size 4
  EXPECT_EQ(hist1[4], 3u);
  EXPECT_EQ(hist1[2], 1u);
  ASSERT_EQ(out1.size(), out4.size());
  for (size_t i = 0; i < out1.size(); ++i)
    EXPECT_TRUE(bitwise_equal(out1[i], out4[i])) << "request " << i;
}

TEST(Server, ClosedLoopLoadGenCompletesAll) {
  FrozenLstm frozen(tiny_lstm(8), 5, "lstm-serve");
  frozen.prime(4);
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.batcher.max_batch = 4;
  cfg.batcher.deadline_ms = 0.5;
  metrics::ServeStats stats;
  stats.begin();
  Server server(frozen, cfg, &stats);
  server.start();

  ClosedLoopConfig lg;
  lg.clients = 3;
  lg.requests_per_client = 6;
  const int64_t done = run_closed_loop(
      server,
      [](uint64_t id) {
        Rng rng(id);
        std::vector<int64_t> toks(5);
        for (auto& t : toks) t = rng.uniform_int(50);
        return make_request(id, std::move(toks));
      },
      lg);
  server.stop();
  EXPECT_EQ(done, 18);
  const metrics::ServeReport rep = stats.report();
  EXPECT_EQ(rep.completed, 18u);
  EXPECT_GT(rep.throughput_rps, 0.0);
  EXPECT_GT(rep.p99_ms, 0.0);
  EXPECT_GE(rep.p99_ms, rep.p50_ms);
  // Histogram accounts for every completed request.
  uint64_t hist_total = 0;
  for (size_t s = 0; s < rep.batch_hist.size(); ++s)
    hist_total += rep.batch_hist[s] * static_cast<uint64_t>(s);
  EXPECT_EQ(hist_total, rep.completed);
}

TEST(Server, OpenLoopLoadGenRespectsAdmission) {
  FrozenModel frozen(tiny_resnet(9), "open-loop");
  frozen.prime(Shape{3, 8, 8}, 8);
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.batcher.max_batch = 8;
  cfg.batcher.deadline_ms = 1.0;
  cfg.batcher.max_depth = 64;
  metrics::ServeStats stats;
  stats.begin();
  Server server(frozen, cfg, &stats);
  server.start();

  OpenLoopConfig lg;
  lg.rate_rps = 2000;  // deliberately above service rate at this size
  lg.total_requests = 64;
  const int64_t done = run_open_loop(
      server,
      [](uint64_t id) {
        Rng rng(id + 31);
        return make_request(id, rng.randn(Shape{3, 8, 8}));
      },
      lg);
  server.stop();
  const metrics::ServeReport rep = stats.report();
  EXPECT_EQ(static_cast<uint64_t>(done), rep.completed);
  EXPECT_EQ(rep.submitted + rep.rejected, 64u);
  EXPECT_GT(rep.mean_batch, 1.0);  // the backlog actually batched
}

// ---------------- ServeStats / Reservoir ----------------

TEST(ServeStats, ReservoirExactQuantilesBelowCapacity) {
  metrics::Reservoir res(4096);
  for (int i = 1; i <= 1000; ++i) res.add(i);
  EXPECT_EQ(res.count(), 1000);
  EXPECT_DOUBLE_EQ(res.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(res.quantile(1.0), 1000.0);
  EXPECT_NEAR(res.quantile(0.5), 500.0, 1.0);
  EXPECT_NEAR(res.quantile(0.99), 990.0, 1.0);
  EXPECT_DOUBLE_EQ(res.max_seen(), 1000.0);
  EXPECT_NEAR(res.mean(), 500.5, 1e-9);
}

TEST(ServeStats, ReservoirEvictionStaysInRange) {
  metrics::Reservoir res(64);
  for (int i = 1; i <= 10000; ++i) res.add(i);
  EXPECT_EQ(res.count(), 10000);
  const double p50 = res.quantile(0.5);
  EXPECT_GT(p50, 2000.0);  // a uniform sample cannot collapse to the head
  EXPECT_LT(p50, 8000.0);
  EXPECT_DOUBLE_EQ(res.max_seen(), 10000.0);
}

TEST(ServeStats, ReportAggregates) {
  metrics::ServeStats stats;
  stats.begin();
  for (int i = 0; i < 10; ++i) stats.record_submit();
  stats.record_reject();
  stats.record_batch(4, 2);
  stats.record_batch(6, 0);
  for (int i = 0; i < 10; ++i) stats.record_done(1.0 + i);
  const metrics::ServeReport r = stats.report();
  EXPECT_EQ(r.submitted, 10u);
  EXPECT_EQ(r.rejected, 1u);
  EXPECT_EQ(r.completed, 10u);
  EXPECT_EQ(r.batches, 2u);
  EXPECT_DOUBLE_EQ(r.mean_batch, 5.0);
  EXPECT_DOUBLE_EQ(r.mean_depth, 1.0);
  EXPECT_EQ(r.max_depth, 2);
  ASSERT_EQ(r.batch_hist.size(), 7u);
  EXPECT_EQ(r.batch_hist[4], 1u);
  EXPECT_EQ(r.batch_hist[6], 1u);
  EXPECT_GT(r.elapsed_s, 0.0);
  EXPECT_FALSE(r.summary().empty());
}

}  // namespace
}  // namespace pf::serve
