// Storage-model tests for the shared-buffer Tensor: copy-on-write
// semantics, zero-copy views, refcounts under copy/move, BufferPool reuse
// (including across threads), and bitwise-identical training with the pool
// on vs off. The Bitwise suite is also re-run with PF_THREADS=4 by the
// pf_tests_threads4 ctest entry.
#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "gradcheck.h"
#include "nn/layers.h"
#include "optim/optim.h"
#include "runtime/buffer_pool.h"
#include "tensor/rng.h"

namespace pf {
namespace {

// Forces pooling on for a test body and restores the previous mode (the
// suite must pass under PF_POOL_DISABLE=1 too, where the default is off).
class PoolOnGuard {
 public:
  PoolOnGuard() : was_(runtime::BufferPool::instance().enabled()) {
    runtime::BufferPool::instance().set_enabled(true);
  }
  ~PoolOnGuard() { runtime::BufferPool::instance().set_enabled(was_); }

 private:
  bool was_;
};

TEST(TensorStorage, CopyShares_WriteUnshares) {
  Tensor a = Tensor::arange(8);
  Tensor b = a;  // O(1): shares storage
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_EQ(a.storage_refcount(), 2);

  const uint64_t cow_before = runtime::BufferPool::instance().stats().cow_unshares;
  b[3] = 99.0f;  // first mutating access copies b's window
  EXPECT_FALSE(a.shares_storage_with(b));
  EXPECT_EQ(a.storage_refcount(), 1);
  EXPECT_EQ(b.storage_refcount(), 1);
  EXPECT_FLOAT_EQ(a[3], 3.0f);  // original untouched
  EXPECT_FLOAT_EQ(b[3], 99.0f);
  EXPECT_EQ(runtime::BufferPool::instance().stats().cow_unshares,
            cow_before + 1);
}

TEST(TensorStorage, ConstAccessNeverCopies) {
  Tensor a = Tensor::arange(16);
  Tensor b = a;
  const Tensor& cb = b;
  const uint64_t cow_before = runtime::BufferPool::instance().stats().cow_unshares;
  // Const reads through every accessor keep the buffer shared.
  EXPECT_FLOAT_EQ(cb[5], 5.0f);
  EXPECT_EQ(cb.data()[6], 6.0f);
  EXPECT_FLOAT_EQ(cb.flat()[7], 7.0f);
  EXPECT_FLOAT_EQ(cb.sum(), a.sum());
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_EQ(runtime::BufferPool::instance().stats().cow_unshares, cow_before);
}

TEST(TensorStorage, ReshapeFlattenSqueezeAreO1Views) {
  runtime::BufferPool& pool = runtime::BufferPool::instance();
  Tensor t = Tensor::arange(24).reshape(Shape{2, 3, 4});
  pool.reset_stats();
  Tensor r = t.reshape(Shape{4, 6});
  Tensor r2 = t.reshape(Shape{4, -1});  // inferred dim
  Tensor f = t.flatten();
  Tensor s = t.reshape(Shape{1, 24, 1}).squeeze();
  // O(1) asserted through the pool: no buffer was allocated for any view.
  EXPECT_EQ(pool.stats().allocations(), 0u);
  EXPECT_TRUE(r.shares_storage_with(t));
  EXPECT_TRUE(r2.shares_storage_with(t));
  EXPECT_TRUE(f.shares_storage_with(t));
  EXPECT_TRUE(s.shares_storage_with(t));
  EXPECT_EQ(r2.shape(), (Shape{4, 6}));
  EXPECT_EQ(s.shape(), (Shape{24}));
  EXPECT_FLOAT_EQ(r[23], 23.0f);
}

TEST(TensorStorage, NarrowIsZeroCopyAndIndependentOnWrite) {
  Tensor t = Tensor::arange(12).reshape(Shape{4, 3});
  Tensor v = t.narrow(1, 2);  // rows 1..2
  EXPECT_TRUE(v.shares_storage_with(t));
  EXPECT_EQ(v.storage_offset(), 3);
  EXPECT_EQ(v.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(v[0], 3.0f);
  EXPECT_FLOAT_EQ(v[5], 8.0f);

  // Writing through the view copies only the view's window.
  v[0] = -1.0f;
  EXPECT_FALSE(v.shares_storage_with(t));
  EXPECT_EQ(v.storage_offset(), 0);
  EXPECT_FLOAT_EQ(t[3], 3.0f);
  EXPECT_FLOAT_EQ(v[0], -1.0f);

  // Writing through the parent leaves an outstanding view intact.
  Tensor w = t.narrow(0, 1);
  t[0] = 42.0f;  // t unshares; w still reads the old buffer
  EXPECT_FLOAT_EQ(w[0], 0.0f);
  EXPECT_FLOAT_EQ(t[0], 42.0f);
}

TEST(TensorStorage, SliceAxis0ViewsInnerAxesMaterialize) {
  Tensor t = Tensor::arange(24).reshape(Shape{4, 6});
  Tensor s0 = slice(t, 0, 1, 2);
  EXPECT_TRUE(s0.shares_storage_with(t));  // axis 0: zero-copy
  Tensor s1 = slice(t, 1, 2, 3);
  EXPECT_FALSE(s1.shares_storage_with(t));  // inner axis: contiguous copy
  EXPECT_EQ(s1.shape(), (Shape{4, 3}));
  EXPECT_FLOAT_EQ(s1.at({2, 0}), t.at({2, 2}));
}

TEST(TensorStorage, RefcountUnderCopyAndMove) {
  Tensor a(Shape{5}, 1.0f);
  EXPECT_EQ(a.storage_refcount(), 1);
  Tensor b = a;
  Tensor c = b;
  EXPECT_EQ(a.storage_refcount(), 3);
  Tensor m = std::move(c);  // move transfers the handle, count unchanged
  EXPECT_EQ(a.storage_refcount(), 3);
  EXPECT_TRUE(m.shares_storage_with(a));
  b = Tensor();  // dropping a handle decrements
  EXPECT_EQ(a.storage_refcount(), 2);
  m = Tensor();
  EXPECT_EQ(a.storage_refcount(), 1);
}

TEST(TensorStorage, CopyFromReusesUniqueBuffer) {
  PoolOnGuard guard;
  runtime::BufferPool& pool = runtime::BufferPool::instance();
  Tensor dst(Shape{3, 4});
  Tensor src = Tensor::arange(12).reshape(Shape{3, 4});
  pool.reset_stats();
  dst.copy_from(src);  // unique + same numel: plain memcpy, no allocation
  EXPECT_EQ(pool.stats().allocations(), 0u);
  EXPECT_FALSE(dst.shares_storage_with(src));
  EXPECT_TRUE(allclose(dst, src));
}

TEST(TensorStorage, PoolReusesBufferAcrossThreads) {
  PoolOnGuard guard;
  runtime::BufferPool& pool = runtime::BufferPool::instance();
  pool.clear();
  pool.reset_stats();
  constexpr int64_t kN = 5000;  // odd size; lands in the 8192-float bucket
  std::thread producer([&] {
    Tensor t = Tensor::uninit(Shape{kN});
    t.fill(1.0f);
  });  // t destroyed on the producer thread -> buffer returns to the pool
  producer.join();
  const uint64_t misses_after_first = pool.stats().misses;
  uint64_t hits_in_consumer = 0;
  std::thread consumer([&] {
    Tensor t = Tensor::uninit(Shape{kN});
    t.fill(2.0f);
    hits_in_consumer = pool.stats().hits;
  });
  consumer.join();
  EXPECT_GE(hits_in_consumer, 1u);  // served from the free list
  EXPECT_EQ(pool.stats().misses, misses_after_first);  // no new sys alloc
}

TEST(TensorStorage, PoolDisableFallsThroughToSystemAllocator) {
  runtime::BufferPool& pool = runtime::BufferPool::instance();
  const bool was = pool.enabled();
  pool.set_enabled(false);
  pool.reset_stats();
  {
    Tensor a = Tensor::uninit(Shape{100});
    a.fill(0.5f);
  }
  {
    Tensor b = Tensor::uninit(Shape{100});
    b.fill(0.5f);
  }
  EXPECT_EQ(pool.stats().hits, 0u);  // never served from a free list
  EXPECT_EQ(pool.stats().misses, 2u);
  pool.set_enabled(was);
}

// ---- Fuzz: random view chains behave like materialized copies. ----

class ViewFuzzP : public ::testing::TestWithParam<int> {};

TEST_P(ViewFuzzP, ViewChainMatchesMaterializedReference) {
  Rng rng(static_cast<uint64_t>(100 + GetParam()));
  // Random 3-D shape, then a chain of reshape/flatten/narrow views.
  const int64_t d0 = 1 + static_cast<int64_t>(rng.uniform() * 4);
  const int64_t d1 = 1 + static_cast<int64_t>(rng.uniform() * 5);
  const int64_t d2 = 1 + static_cast<int64_t>(rng.uniform() * 6);
  Tensor t = rng.randn(Shape{d0, d1, d2});
  std::vector<float> ref(t.data(), t.data() + t.numel());

  Tensor v = t.reshape(Shape{d0 * d1, d2}).flatten();
  const int64_t start = static_cast<int64_t>(rng.uniform() * (v.numel() / 2));
  const int64_t len = 1 + static_cast<int64_t>(rng.uniform() *
                                               (v.numel() - start - 1));
  Tensor w = v.narrow(start, len);
  ASSERT_TRUE(w.shares_storage_with(t));
  for (int64_t i = 0; i < len; ++i)
    ASSERT_FLOAT_EQ(w[i], ref[static_cast<size_t>(start + i)]) << i;

  // Mutate the deepest view; the root and the reference must not move.
  Tensor w2 = w;  // extra share, so the write below must COW
  w2.mul_(2.0f);
  for (int64_t i = 0; i < t.numel(); ++i)
    ASSERT_FLOAT_EQ(t[i], ref[static_cast<size_t>(i)]) << i;
  for (int64_t i = 0; i < len; ++i)
    ASSERT_FLOAT_EQ(w2[i], 2.0f * ref[static_cast<size_t>(start + i)]) << i;
}

// Gradients flow unchanged through the zero-copy ag::reshape path.
TEST_P(ViewFuzzP, GradcheckThroughViewReshape) {
  Rng rng(static_cast<uint64_t>(200 + GetParam()));
  Tensor x = rng.randn(Shape{2, 6});
  pf::testing::gradcheck(
      [](const std::vector<ag::Var>& in) {
        ag::Var r = ag::reshape(in[0], Shape{3, 4});
        return ag::sum_all(ag::mul(r, r));
      },
      {x});
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewFuzzP, ::testing::Range(0, 8));

// ---- Bitwise: pool on vs off cannot change a single training bit. ----
// (Re-run with PF_THREADS=4 by the pf_tests_threads4 ctest entry.)

Tensor train_small_convnet(bool pool_on) {
  runtime::BufferPool& pool = runtime::BufferPool::instance();
  const bool was = pool.enabled();
  pool.set_enabled(pool_on);

  Rng rng(7);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(3, 4, 3, 1, 1, rng);
  model.emplace<nn::BatchNorm2d>(4);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Flatten>();
  model.emplace<nn::Linear>(4 * 6 * 6, 5, rng);
  optim::SGD sgd(model.parameters(), /*lr=*/0.05f, /*momentum=*/0.9f,
                 /*weight_decay=*/1e-4f);

  Rng data_rng(11);
  Tensor x = data_rng.randn(Shape{4, 3, 6, 6});
  std::vector<int64_t> labels = {0, 1, 2, 3};
  for (int step = 0; step < 3; ++step) {
    model.zero_grad();
    ag::Var loss = ag::cross_entropy(model.forward(ag::leaf(x)), labels);
    ag::backward(loss);
    sgd.step();
  }
  Tensor flat = model.flat_params();
  pool.set_enabled(was);
  return flat;
}

TEST(TensorStorageBitwise, TrainingIdenticalWithPoolOnAndOff) {
  Tensor with_pool = train_small_convnet(/*pool_on=*/true);
  Tensor without_pool = train_small_convnet(/*pool_on=*/false);
  ASSERT_EQ(with_pool.numel(), without_pool.numel());
  EXPECT_EQ(std::memcmp(with_pool.data(), without_pool.data(),
                        static_cast<size_t>(with_pool.numel()) * sizeof(float)),
            0);
}

}  // namespace
}  // namespace pf
