#include "tensor/matmul.h"

#include <gtest/gtest.h>

#include "tensor/rng.h"

namespace pf {
namespace {

// O(mnk) reference used to validate the blocked kernels.
Tensor ref_matmul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  Tensor c(Shape{m, n});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      c[i * n + j] = static_cast<float>(acc);
    }
  return c;
}

TEST(Matmul, SmallKnownValues) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}).reshape(Shape{2, 2});
  Tensor b = Tensor::from_vector({5, 6, 7, 8}).reshape(Shape{2, 2});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c[0], 19.0f);
  EXPECT_FLOAT_EQ(c[1], 22.0f);
  EXPECT_FLOAT_EQ(c[2], 43.0f);
  EXPECT_FLOAT_EQ(c[3], 50.0f);
}

TEST(Matmul, Identity) {
  Rng rng(1);
  Tensor a = rng.randn(Shape{5, 5});
  Tensor eye(Shape{5, 5});
  for (int64_t i = 0; i < 5; ++i) eye[i * 5 + i] = 1.0f;
  EXPECT_TRUE(allclose(matmul(a, eye), a, 1e-5f, 1e-6f));
  EXPECT_TRUE(allclose(matmul(eye, a), a, 1e-5f, 1e-6f));
}

TEST(Matmul, DimMismatchThrows) {
  Tensor a = Tensor::ones(Shape{2, 3});
  Tensor b = Tensor::ones(Shape{4, 2});
  EXPECT_THROW(matmul(a, b), std::runtime_error);
}

struct MmCase {
  int64_t m, k, n;
};

class MatmulP : public ::testing::TestWithParam<MmCase> {};

TEST_P(MatmulP, MatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 10 + n);
  Tensor a = rng.randn(Shape{m, k});
  Tensor b = rng.randn(Shape{k, n});
  EXPECT_TRUE(allclose(matmul(a, b), ref_matmul(a, b), 1e-3f, 1e-4f));
}

TEST_P(MatmulP, TnAgreesWithExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(m + k + n);
  Tensor at = rng.randn(Shape{k, m});  // A^T stored
  Tensor b = rng.randn(Shape{k, n});
  EXPECT_TRUE(allclose(matmul_tn(at, b), matmul(at.t(), b), 1e-3f, 1e-4f));
}

TEST_P(MatmulP, NtAgreesWithExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 7 + k * 3 + n);
  Tensor a = rng.randn(Shape{m, k});
  Tensor bt = rng.randn(Shape{n, k});  // B^T stored
  EXPECT_TRUE(allclose(matmul_nt(a, bt), matmul(a, bt.t()), 1e-3f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatmulP,
    ::testing::Values(MmCase{1, 1, 1}, MmCase{2, 3, 4}, MmCase{7, 5, 3},
                      MmCase{16, 16, 16}, MmCase{33, 65, 17},
                      MmCase{128, 130, 3}, MmCase{3, 300, 5},
                      MmCase{64, 1, 64}));

TEST(Bmm, MatchesPerBatchMatmul) {
  Rng rng(5);
  Tensor a = rng.randn(Shape{3, 4, 5});
  Tensor b = rng.randn(Shape{3, 5, 6});
  Tensor c = bmm(a, b);
  ASSERT_EQ(c.shape(), (Shape{3, 4, 6}));
  for (int64_t i = 0; i < 3; ++i) {
    Tensor ai = slice(a, 0, i, 1).reshape(Shape{4, 5});
    Tensor bi = slice(b, 0, i, 1).reshape(Shape{5, 6});
    Tensor ci = slice(c, 0, i, 1).reshape(Shape{4, 6});
    EXPECT_TRUE(allclose(ci, matmul(ai, bi), 1e-4f, 1e-5f));
  }
}

TEST(Bmm, NtMatchesTransposed) {
  Rng rng(6);
  Tensor a = rng.randn(Shape{2, 4, 5});
  Tensor b = rng.randn(Shape{2, 6, 5});
  Tensor c = bmm_nt(a, b);
  Tensor bt = b.transpose({0, 2, 1});
  EXPECT_TRUE(allclose(c, bmm(a, bt), 1e-4f, 1e-5f));
}

TEST(Bmm, TnMatchesTransposed) {
  Rng rng(7);
  Tensor a = rng.randn(Shape{2, 5, 4});
  Tensor b = rng.randn(Shape{2, 5, 6});
  Tensor c = bmm_tn(a, b);
  Tensor at = a.transpose({0, 2, 1});
  EXPECT_TRUE(allclose(c, bmm(at, b), 1e-4f, 1e-5f));
}

TEST(MatmulAccum, Accumulates) {
  Tensor a = Tensor::ones(Shape{2, 2});
  Tensor b = Tensor::ones(Shape{2, 2});
  Tensor c = Tensor::full(Shape{2, 2}, 10.0f);
  matmul_accum(a.data(), b.data(), c.data(), 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 12.0f);
}

}  // namespace
}  // namespace pf
