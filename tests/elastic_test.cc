// Chaos suite for elastic membership (DESIGN.md §16): seeded randomized
// join/leave/kill/straggler schedules replayed bitwise from the seed alone,
// the resharding and ring re-bucketing invariants behind them, and
// checkpoint/resume across membership-change boundaries. Every randomized
// assertion carries the seed in its failure message so a red run is
// reproducible verbatim.
#include "elastic/trainer.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <vector>

#include "dist/hardware.h"
#include "models/resnet.h"
#include "plan/planner.h"
#include "runtime/shm_cluster.h"

namespace pf {
namespace {

data::SyntheticImages tiny_data() {
  data::SyntheticImages::Config dc;
  dc.num_classes = 4;
  dc.hw = 8;
  dc.train_size = 32;
  dc.test_size = 16;
  dc.augment = false;
  return data::SyntheticImages(dc);
}

core::VisionModelFactory tiny_resnet_factory(bool factorized) {
  return [factorized](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::ResNetCifarConfig cfg;
    if (factorized) cfg = models::ResNetCifarConfig::pufferfish();
    cfg.width_mult = 0.0625;
    cfg.num_classes = 4;
    return std::make_unique<models::ResNet18Cifar>(cfg, rng);
  };
}

elastic::ElasticConfig tiny_elastic_config(int workers, int rounds,
                                           uint64_t seed) {
  elastic::ElasticConfig cfg;
  cfg.cluster.workers = workers;
  cfg.cluster.bucket_bytes = 16 << 10;
  cfg.cluster.train.epochs = rounds;
  cfg.cluster.train.global_batch = 16;
  cfg.cluster.train.seed = static_cast<uint32_t>(seed % 1000 + 3);
  return cfg;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

// ---- Property: resharding assigns every sample to exactly one lane. ----

TEST(ElasticShardRange, EverySampleExactlyOncePerRound) {
  for (int64_t batch : {1, 2, 7, 16, 33, 64}) {
    for (int lanes : {1, 2, 3, 4, 5, 8}) {
      std::vector<int> hits(static_cast<size_t>(batch), 0);
      int64_t prev_end = 0;
      for (int lane = 0; lane < lanes; ++lane) {
        const dist::ShardRange sr = dist::shard_range(batch, lanes, lane);
        EXPECT_EQ(sr.start, prev_end)
            << "batch=" << batch << " lanes=" << lanes << " lane=" << lane;
        prev_end = sr.start + sr.count;
        for (int64_t i = sr.start; i < sr.start + sr.count; ++i)
          ++hits[static_cast<size_t>(i)];
      }
      EXPECT_EQ(prev_end, batch) << "batch=" << batch << " lanes=" << lanes;
      for (int64_t i = 0; i < batch; ++i)
        EXPECT_EQ(hits[static_cast<size_t>(i)], 1)
            << "batch=" << batch << " lanes=" << lanes << " sample=" << i;
    }
  }
  // Degenerate inputs yield empty shards instead of UB.
  EXPECT_EQ(dist::shard_range(0, 4, 0).count, 0);
  EXPECT_EQ(dist::shard_range(16, 0, 0).count, 0);
  EXPECT_EQ(dist::shard_range(16, 4, -1).count, 0);
}

// Randomized membership schedules keep the exactly-once property for every
// round's live set (the sample -> lane map is over the DENSE lane set, so
// any active count works).
TEST(ElasticShardRange, ExactlyOnceUnderRandomMembership) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const elastic::MembershipPlan plan =
        elastic::MembershipPlan::random(seed, 5, 6);
    for (int round = 0; round < 6; ++round) {
      const std::vector<int> active = plan.active_at(round);
      ASSERT_GE(active.size(), 1u) << "seed=" << seed << " round=" << round;
      const int lanes = static_cast<int>(active.size());
      const int64_t batch = 16;
      std::vector<int> hits(static_cast<size_t>(batch), 0);
      for (int lane = 0; lane < lanes; ++lane) {
        const dist::ShardRange sr = dist::shard_range(batch, lanes, lane);
        for (int64_t i = sr.start; i < sr.start + sr.count; ++i)
          ++hits[static_cast<size_t>(i)];
      }
      for (int64_t i = 0; i < batch; ++i)
        EXPECT_EQ(hits[static_cast<size_t>(i)], 1)
            << "seed=" << seed << " round=" << round << " sample=" << i;
    }
  }
}

// ---- Property: ring re-bucketing preserves the all-reduced mean. ----

TEST(ElasticRingAllreduce, BitwiseMatchesSequentialMeanAnyLaneCount) {
  for (int lanes : {1, 2, 3, 5, 8}) {
    for (int64_t elems : {1, 257, 5000}) {
      Rng rng(static_cast<uint64_t>(lanes) * 1000 +
              static_cast<uint64_t>(elems));
      std::vector<Tensor> grads;
      for (int w = 0; w < lanes; ++w)
        grads.push_back(rng.randn(Shape{elems}));
      // The single-worker reference: sum in ascending lane order, then
      // scale -- the exact float sequence the executor's reduce-scatter
      // promises. Membership changes regroup buckets/segments, never this.
      Tensor ref(Shape{elems});
      const float inv = 1.0f / static_cast<float>(lanes);
      for (int64_t i = 0; i < elems; ++i) {
        float acc = grads[0].data()[i];
        for (int w = 1; w < lanes; ++w) acc += grads[static_cast<size_t>(w)].data()[i];
        ref.data()[i] = acc * inv;
      }
      for (int64_t bucket_bytes : {64, 4096, 1 << 20}) {
        const Tensor agg = runtime::ring_allreduce(grads, bucket_bytes);
        EXPECT_TRUE(bitwise_equal(ref, agg))
            << "lanes=" << lanes << " elems=" << elems
            << " bucket_bytes=" << bucket_bytes;
      }
    }
  }
}

// ---- MembershipPlan determinism and validation. ----

TEST(ElasticMembership, RandomPlanReplaysBitwiseFromSeed) {
  for (uint64_t seed : {1ull, 7ull, 99ull}) {
    const elastic::MembershipPlan a =
        elastic::MembershipPlan::random(seed, 4, 8);
    const elastic::MembershipPlan b =
        elastic::MembershipPlan::random(seed, 4, 8);
    ASSERT_EQ(a.events().size(), b.events().size()) << "seed=" << seed;
    for (size_t i = 0; i < a.events().size(); ++i) {
      EXPECT_EQ(a.events()[i].kind, b.events()[i].kind) << "seed=" << seed;
      EXPECT_EQ(a.events()[i].worker, b.events()[i].worker) << "seed=" << seed;
      EXPECT_EQ(a.events()[i].round, b.events()[i].round) << "seed=" << seed;
    }
    for (int round = 0; round < 8; ++round) {
      const std::vector<int> active = a.active_at(round);
      EXPECT_GE(active.size(), 1u) << "seed=" << seed << " round=" << round;
      for (int w : active) {
        EXPECT_GE(w, 0) << "seed=" << seed;
        EXPECT_LT(w, 4) << "seed=" << seed;
      }
      EXPECT_EQ(active, b.active_at(round)) << "seed=" << seed;
    }
  }
}

TEST(ElasticMembership, MalformedPlansAreRejectedLoudly) {
  elastic::MembershipPlan contradictory(3, 3);
  contradictory.join(0, 1);  // join while already active
  EXPECT_THROW(contradictory.active_at(1), std::runtime_error);

  elastic::MembershipPlan emptying(2, 2);
  emptying.leave(0, 1).leave(1, 1);
  EXPECT_THROW(emptying.active_at(1), std::runtime_error);

  elastic::MembershipPlan out_of_universe(2, 2);
  out_of_universe.join(5, 1);
  EXPECT_THROW(out_of_universe.active_at(1), std::runtime_error);

  EXPECT_THROW(elastic::MembershipPlan().active_at(0), std::runtime_error);
}

// ---- The elastic trainer vs the static cluster. ----

// With no membership events and no faults the elastic trainer IS the
// static cluster, bitwise.
TEST(ElasticTrainer, StaticScheduleMatchesStaticClusterBitwise) {
  auto ds = tiny_data();
  elastic::ElasticConfig cfg = tiny_elastic_config(3, 2, 0);
  elastic::ElasticTrainer et(tiny_resnet_factory(true), cfg);
  const auto reps = et.train(ds);
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(et.stats().joins, 0);
  EXPECT_EQ(et.stats().bootstrap_bytes, 0);

  runtime::ShmDataParallelTrainer shm(tiny_resnet_factory(true), nullptr,
                                      cfg.cluster);
  const auto recs = shm.train(ds);
  ASSERT_EQ(recs.size(), 2u);
  for (size_t e = 0; e < recs.size(); ++e)
    EXPECT_EQ(recs[e].train_loss, reps[e].record.train_loss) << "round " << e;
  EXPECT_TRUE(
      bitwise_equal(shm.model().flat_params(), et.model().flat_params()));
}

// A joiner bootstrapped with the exact payload is bitwise in sync: after
// its first round EVERY active replica equals the canonical one.
TEST(ElasticTrainer, ExactJoinerIsBitwiseInSync) {
  auto ds = tiny_data();
  elastic::ElasticConfig cfg = tiny_elastic_config(3, 3, 1);
  cfg.membership = elastic::MembershipPlan(3, 2);  // slot 2 joins later
  cfg.membership.join(2, 1).leave(0, 2);
  elastic::ElasticTrainer et(tiny_resnet_factory(true), cfg);
  const auto reps = et.train(ds);
  ASSERT_EQ(reps.size(), 3u);
  EXPECT_EQ(et.stats().joins, 1);
  EXPECT_EQ(et.stats().leaves, 1);
  EXPECT_GT(et.stats().bootstrap_bytes, 0);
  // Final round ran on slots {1, 2}; canonical is slot 1.
  EXPECT_EQ(et.canonical(), 1);
  ASSERT_EQ(reps[2].active, (std::vector<int>{1, 2}));
  EXPECT_TRUE(bitwise_equal(et.cluster().replica(1).flat_params(),
                            et.cluster().replica(2).flat_params()));
}

// ---- Chaos: >= 50 distinct seeds, green under randomized membership +
// kills + stragglers; a subset replays bitwise. ----

struct ChaosResult {
  Tensor params;
  std::vector<double> losses;
};

ChaosResult run_chaos(uint64_t seed, elastic::StragglerStrategy strategy) {
  auto ds = tiny_data();
  elastic::ElasticConfig cfg = tiny_elastic_config(4, 4, seed);
  cfg.straggler = strategy;
  cfg.staleness_bound = 1;
  cfg.membership = elastic::MembershipPlan::random(seed, 4, 4, 0.4, 0.4, 1, 3);
  // Seeded round faults on top of the membership churn: one kill and one
  // straggler, slots/rounds derived from the seed.
  fault::Plan fp(seed);
  fp.kill_worker_round(static_cast<int>(seed % 4),
                       1 + static_cast<int64_t>(seed % 3));
  fp.delay_worker_round(static_cast<int>((seed / 4) % 4),
                        1 + static_cast<int64_t>((seed / 3) % 3), 2.0);
  // And one step-level kill, to prove the schedules compose in production.
  fp.kill_worker(static_cast<int>((seed / 5) % 4), 3);
  cfg.cluster.fault = fp;

  elastic::ElasticTrainer et(tiny_resnet_factory(true), cfg);
  ChaosResult out;
  for (int r = 0; r < cfg.cluster.train.epochs; ++r) {
    const elastic::RoundReport rep = et.train_round(ds, r);
    out.losses.push_back(rep.record.train_loss);
    EXPECT_TRUE(std::isfinite(rep.record.train_loss))
        << "chaos seed=" << seed << " round=" << r;
    // Invariant: all replicas that trained this round hold the canonical
    // state (exact payloads everywhere in this suite).
    for (int w : rep.active)
      EXPECT_TRUE(
          bitwise_equal(et.cluster().replica(w).flat_params(),
                        et.model().flat_params()))
          << "chaos seed=" << seed << " round=" << r << " slot=" << w;
  }
  out.params = et.model().flat_params();
  return out;
}

TEST(ElasticChaos, FiftySeedsGreenAndSubsetReplaysBitwise) {
  const elastic::StragglerStrategy strategies[] = {
      elastic::StragglerStrategy::kWaitAll,
      elastic::StragglerStrategy::kBackupWorker,
      elastic::StragglerStrategy::kBoundedStaleness,
  };
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const elastic::StragglerStrategy strategy =
        strategies[seed % 3];
    const ChaosResult a = run_chaos(seed, strategy);
    for (int64_t i = 0; i < a.params.numel(); ++i)
      ASSERT_TRUE(std::isfinite(a.params.data()[i]))
          << "chaos seed=" << seed << " non-finite param " << i;
    if (seed % 10 == 0) {  // replay subset: the run is a function of seed
      const ChaosResult b = run_chaos(seed, strategy);
      EXPECT_EQ(a.losses, b.losses) << "chaos seed=" << seed;
      EXPECT_TRUE(bitwise_equal(a.params, b.params))
          << "chaos seed=" << seed << " replay diverged";
    }
  }
}

// ---- Straggler strategies. ----

TEST(ElasticTrainer, StragglerStrategiesMitigateOrWait) {
  auto ds = tiny_data();
  auto run = [&](elastic::StragglerStrategy s, int workers, int initial) {
    elastic::ElasticConfig cfg = tiny_elastic_config(workers, 2, 2);
    if (initial < workers)
      cfg.membership = elastic::MembershipPlan(workers, initial);
    cfg.straggler = s;
    cfg.staleness_bound = 1;
    cfg.cluster.fault.delay_worker_round(1, 1, 5.0);
    elastic::ElasticTrainer et(tiny_resnet_factory(false), cfg);
    et.train(ds);
    return et.stats();
  };
  const elastic::ElasticStats wait =
      run(elastic::StragglerStrategy::kWaitAll, 3, 3);
  EXPECT_EQ(wait.stragglers_waited, 1);
  EXPECT_EQ(wait.stragglers_mitigated, 0);

  // A spare slot exists: the backup strategy swaps it in; the spare was
  // never synced, so its activation ships one exact re-sync payload.
  const elastic::ElasticStats backup =
      run(elastic::StragglerStrategy::kBackupWorker, 3, 2);
  EXPECT_EQ(backup.stragglers_mitigated, 1);
  EXPECT_EQ(backup.stragglers_waited, 0);
  EXPECT_GT(backup.resync_bytes, 0);

  // No spare capacity: backup degrades to wait-all.
  const elastic::ElasticStats backup_full =
      run(elastic::StragglerStrategy::kBackupWorker, 3, 3);
  EXPECT_EQ(backup_full.stragglers_mitigated, 0);
  EXPECT_EQ(backup_full.stragglers_waited, 1);

  const elastic::ElasticStats stale =
      run(elastic::StragglerStrategy::kBoundedStaleness, 3, 3);
  EXPECT_EQ(stale.stragglers_mitigated, 1);
  EXPECT_EQ(stale.stragglers_waited, 0);
}

// Past the staleness bound the straggler must be waited for, and its
// return ships a catch-up re-sync.
TEST(ElasticTrainer, BoundedStalenessEnforcesBound) {
  auto ds = tiny_data();
  elastic::ElasticConfig cfg = tiny_elastic_config(2, 4, 3);
  cfg.straggler = elastic::StragglerStrategy::kBoundedStaleness;
  cfg.staleness_bound = 1;
  cfg.cluster.fault.delay_worker_round(1, 1, 2.0)
      .delay_worker_round(1, 2, 2.0);
  elastic::ElasticTrainer et(tiny_resnet_factory(false), cfg);
  const auto reps = et.train(ds);
  // Round 1: excluded (1 <= bound). Round 2: bound exhausted, waited.
  ASSERT_EQ(reps.size(), 4u);
  EXPECT_EQ(reps[1].active, (std::vector<int>{0}));
  EXPECT_EQ(reps[1].stragglers_mitigated, 1);
  EXPECT_EQ(reps[2].active, (std::vector<int>{0, 1}));
  EXPECT_EQ(reps[2].stragglers_waited, 1);
  EXPECT_GT(reps[2].resync_bytes, 0);  // the stale slot caught up
}

// ---- Bootstrap payloads. ----

// The delta payload for a joiner is strictly smaller than the exact one,
// and a delta joiner still trains to finite losses deterministically.
TEST(ElasticTrainer, DeltaBootstrapShipsFewerBytesThanExact) {
  auto ds = tiny_data();
  auto run = [&](elastic::BootstrapMode mode) {
    elastic::ElasticConfig cfg = tiny_elastic_config(3, 3, 4);
    cfg.membership = elastic::MembershipPlan(3, 2);
    cfg.membership.join(2, 1);
    cfg.bootstrap = mode;
    cfg.delta.min_numel = 256;  // tiny test model: let the factors engage
    elastic::ElasticTrainer et(tiny_resnet_factory(true), cfg);
    const auto reps = et.train(ds);
    for (const elastic::RoundReport& r : reps)
      EXPECT_TRUE(std::isfinite(r.record.train_loss))
          << elastic::to_string(mode);
    return et.stats().bootstrap_bytes;
  };
  const int64_t exact_bytes = run(elastic::BootstrapMode::kExact);
  const int64_t delta_bytes = run(elastic::BootstrapMode::kDelta);
  ASSERT_GT(exact_bytes, 0);
  ASSERT_GT(delta_bytes, 0);
  EXPECT_LT(delta_bytes, exact_bytes);
}

// ---- Resume across a membership-change boundary. ----

// Saved at one membership, resumed at another (same slot universe):
// bitwise-identical to the uninterrupted run.
TEST(ElasticResume, AcrossMembershipChangeBitwise) {
  auto ds = tiny_data();
  const std::string dir = testing::TempDir() + "pf_elastic_resume." +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  auto make_cfg = [&](bool with_dir) {
    elastic::ElasticConfig cfg = tiny_elastic_config(3, 4, 5);
    // Membership changes at round 2 -- exactly the snapshot boundary.
    cfg.membership = elastic::MembershipPlan(3, 2);
    cfg.membership.join(2, 2).leave(0, 3);
    cfg.cluster.fault.kill_worker_round(1, 1);
    if (with_dir) {
      cfg.cluster.checkpoint_dir = dir;
      cfg.cluster.checkpoint_every = 2;
    }
    return cfg;
  };

  elastic::ElasticTrainer uninterrupted(tiny_resnet_factory(true),
                                        make_cfg(false));
  const auto full = uninterrupted.train(ds);
  ASSERT_EQ(full.size(), 4u);

  {  // First half: rounds 0-1, snapshot at the round-2 boundary.
    elastic::ElasticConfig cfg = make_cfg(true);
    cfg.cluster.train.epochs = 2;
    elastic::ElasticTrainer first(tiny_resnet_factory(true), cfg);
    first.train(ds);
  }
  {  // Second half: a fresh process resumes at round 2, where the
    // membership flips to {1, 2} -- the joiner bootstraps as usual.
    elastic::ElasticConfig cfg = make_cfg(true);
    cfg.cluster.resume = true;
    elastic::ElasticTrainer second(tiny_resnet_factory(true), cfg);
    const auto rest = second.train(ds);
    ASSERT_EQ(rest.size(), 2u);
    EXPECT_EQ(rest[0].record.train_loss, full[2].record.train_loss);
    EXPECT_EQ(rest[1].record.train_loss, full[3].record.train_loss);
    EXPECT_TRUE(bitwise_equal(uninterrupted.model().flat_params(),
                              second.model().flat_params()));
  }
  std::filesystem::remove_all(dir);
}

// A snapshot only resumes under the slot universe that wrote it: same
// universe succeeds (asserted above and here), a different universe is
// rejected with a clear error -- silently renumbering slots would corrupt
// fault plans and membership schedules written against them.
TEST(ElasticResume, DifferentSlotUniverseRejected) {
  auto ds = tiny_data();
  const std::string dir = testing::TempDir() + "pf_elastic_universe." +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  {
    elastic::ElasticConfig cfg = tiny_elastic_config(3, 2, 6);
    cfg.cluster.checkpoint_dir = dir;
    elastic::ElasticTrainer et(tiny_resnet_factory(false), cfg);
    et.train(ds);
  }
  {  // Same universe: accepted.
    elastic::ElasticConfig cfg = tiny_elastic_config(3, 2, 6);
    cfg.cluster.checkpoint_dir = dir;
    cfg.cluster.resume = true;
    elastic::ElasticTrainer et(tiny_resnet_factory(false), cfg);
    EXPECT_EQ(et.resume(), 2);
  }
  {  // Different universe: rejected loudly.
    elastic::ElasticConfig cfg = tiny_elastic_config(2, 2, 6);
    cfg.cluster.checkpoint_dir = dir;
    cfg.cluster.resume = true;
    elastic::ElasticTrainer et(tiny_resnet_factory(false), cfg);
    try {
      et.resume();
      FAIL() << "resume under a different slot universe must throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("slot"), std::string::npos);
    }
  }
  std::filesystem::remove_all(dir);
}

// ---- Heterogeneous speed profiles feed the planner. ----

TEST(ElasticHetero, MeasuredSpeedsPriceTheCluster) {
  auto ds = tiny_data();
  elastic::ElasticConfig cfg = tiny_elastic_config(2, 1, 7);
  elastic::ElasticTrainer et(tiny_resnet_factory(false), cfg);
  et.train(ds);
  const std::vector<double> speeds = et.measured_speeds();
  ASSERT_EQ(speeds.size(), 2u);
  for (double s : speeds) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  const dist::HardwareProfile hw =
      et.speed_profile(dist::HardwareProfile::cloud_10g());
  EXPECT_TRUE(hw.heterogeneous());

  // Planner pricing: a cluster whose slowest rank runs at half speed takes
  // strictly longer per epoch, and slowest_speed ignores ranks beyond the
  // job size.
  dist::HardwareProfile slow = dist::HardwareProfile::cloud_10g();
  slow.worker_speeds = {1.0, 0.5, 0.25};
  EXPECT_EQ(slow.slowest_speed(1), 1.0);
  EXPECT_EQ(slow.slowest_speed(2), 0.5);
  EXPECT_EQ(slow.slowest_speed(3), 0.25);
  EXPECT_EQ(slow.slowest_speed(8), 0.25);

  const plan::ModelCosts costs =
      plan::describe_model("resnet18", 1.0, 10, 32, 1.0, 0);
  const plan::MethodCosts& mc = plan::method_costs("allreduce");
  const double homo_s = plan::modeled_epoch_seconds(
      costs, mc, 2, 1 << 20, 32, 1024, dist::HardwareProfile::cloud_10g(),
      false, 0.0);
  const double hetero_s = plan::modeled_epoch_seconds(
      costs, mc, 2, 1 << 20, 32, 1024, slow, false, 0.0);
  EXPECT_GT(hetero_s, homo_s);

  plan::PlannerRequest req;
  req.hw = slow;
  const plan::Plan p = plan::make_plan(req);
  EXPECT_NE(p.summary().find("hetero:"), std::string::npos);
}

}  // namespace
}  // namespace pf
