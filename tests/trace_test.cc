// Tests for pf::trace (src/trace): span nesting, cross-thread merge
// ordering, ring wraparound accounting, chrome://tracing JSON
// well-formedness for real training and serving runs, flame aggregation,
// and the contract that tracing never perturbs results (trace-on training
// is bitwise-identical to trace-off).
//
// These tests run both in the plain suite and under PF_TRACE=1 + ASan
// (ctest entry pf_tests_trace), so none of them assume the tracer starts
// disabled: every test pins the state it needs and restores the previous
// state on exit.
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/resnet.h"
#include "runtime/thread_pool.h"
#include "serve/frozen.h"
#include "serve/server.h"
#include "tensor/rng.h"

namespace pf {
namespace {

// Pins tracer state for a test: clears residue from earlier tests on entry
// and restores the ambient enabled flag (e.g. PF_TRACE=1) on exit.
struct TraceGuard {
  bool prev = trace::enabled();
  TraceGuard() { trace::reset(); }
  ~TraceGuard() {
    trace::set_enabled(prev);
    trace::reset();
  }
};

// Restores the env-default thread count when a test exits.
struct ThreadGuard {
  ~ThreadGuard() { runtime::set_threads(0); }
};

std::string tmp_path(const char* name) {
  // getpid(): the same test code runs concurrently in the plain binary and
  // the sanitizer ctest entries; a shared /tmp name lets one process
  // clobber the other's files mid-run.
  return std::string(::testing::TempDir()) + name + "." +
         std::to_string(::getpid());
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

// Minimal structural JSON validation: every brace/bracket outside string
// literals balances with the right partner and the document is one object.
void expect_well_formed_json(const std::string& s) {
  ASSERT_FALSE(s.empty());
  std::vector<char> stack;
  bool in_str = false, esc = false;
  for (char ch : s) {
    if (in_str) {
      if (esc) {
        esc = false;
      } else if (ch == '\\') {
        esc = true;
      } else if (ch == '"') {
        in_str = false;
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_str = true;
        break;
      case '{':
      case '[':
        stack.push_back(ch);
        break;
      case '}':
        ASSERT_FALSE(stack.empty()) << "unbalanced '}'";
        EXPECT_EQ(stack.back(), '{');
        stack.pop_back();
        break;
      case ']':
        ASSERT_FALSE(stack.empty()) << "unbalanced ']'";
        EXPECT_EQ(stack.back(), '[');
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  EXPECT_FALSE(in_str) << "unterminated string literal";
  EXPECT_TRUE(stack.empty()) << stack.size() << " unclosed scopes";
  EXPECT_EQ(s.front(), '{');
}

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

const trace::Event* find_event(const std::vector<trace::Event>& ev,
                               const char* name) {
  for (const trace::Event& e : ev)
    if (std::strcmp(e.name, name) == 0) return &e;
  return nullptr;
}

data::SyntheticImages tiny_data() {
  data::SyntheticImages::Config dc;
  dc.num_classes = 4;
  dc.hw = 8;
  dc.train_size = 32;
  dc.test_size = 16;
  dc.augment = false;
  return data::SyntheticImages(dc);
}

core::VisionModelFactory tiny_resnet_factory(bool factorized) {
  return [factorized](Rng& rng) -> std::unique_ptr<nn::UnaryModule> {
    models::ResNetCifarConfig cfg;
    if (factorized) {
      cfg = models::ResNetCifarConfig::pufferfish();
    }
    cfg.width_mult = 0.0625;
    cfg.num_classes = 4;
    return std::make_unique<models::ResNet18Cifar>(cfg, rng);
  };
}

// ---------------- Scope / ring semantics ----------------

TEST(TraceScope, RecordsNestingDepthAndContainment) {
  TraceGuard g;
  trace::set_enabled(true);
  {
    PF_TRACE_SCOPE("t.outer");
    {
      PF_TRACE_SCOPE_C("t.mid", 7);
      { PF_TRACE_SCOPE("t.inner"); }
    }
    { PF_TRACE_SCOPE("t.mid2"); }
  }
  const std::vector<trace::Event> ev = trace::drain();
  ASSERT_EQ(ev.size(), 4u);

  const trace::Event* outer = find_event(ev, "t.outer");
  const trace::Event* mid = find_event(ev, "t.mid");
  const trace::Event* inner = find_event(ev, "t.inner");
  const trace::Event* mid2 = find_event(ev, "t.mid2");
  ASSERT_TRUE(outer && mid && inner && mid2);

  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(mid->depth, 1);
  EXPECT_EQ(inner->depth, 2);
  EXPECT_EQ(mid2->depth, 1);
  EXPECT_EQ(mid->counter, 7);
  EXPECT_EQ(outer->counter, -1);

  // All on the recording thread, and children contained in their parents.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_LE(outer->begin_ns, mid->begin_ns);
  EXPECT_LE(mid->begin_ns, inner->begin_ns);
  EXPECT_LE(inner->end_ns, mid->end_ns);
  EXPECT_LE(mid->end_ns, outer->end_ns);
  EXPECT_LE(mid->end_ns, mid2->begin_ns);
  EXPECT_LE(mid2->end_ns, outer->end_ns);

  // Drain cleared the rings.
  EXPECT_TRUE(trace::drain().empty());
}

TEST(TraceScope, DisabledScopesRecordNothing) {
  TraceGuard g;
  trace::set_enabled(false);
  {
    PF_TRACE_SCOPE("t.ghost");
    PF_TRACE_SCOPE_C("t.ghost2", 1);
  }
  trace::emit("t.ghost3", 0, 1);
  trace::set_enabled(true);  // drain under "on" to prove nothing was buffered
  EXPECT_TRUE(trace::drain().empty());
}

TEST(TraceMerge, CrossThreadEventsMergeSortedByBeginTime) {
  TraceGuard g;
  trace::set_enabled(true);
  constexpr int kThreads = 3, kEach = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kEach; ++i) {
        PF_TRACE_SCOPE_C("t.span", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<trace::Event> ev = trace::drain();
  ASSERT_EQ(ev.size(), static_cast<size_t>(kThreads * kEach));

  std::set<int> tids;
  for (size_t i = 0; i < ev.size(); ++i) {
    tids.insert(ev[i].tid);
    EXPECT_LE(ev[i].begin_ns, ev[i].end_ns);
    if (i > 0) {
      // The merged timeline is globally sorted by begin time.
      EXPECT_LE(ev[i - 1].begin_ns, ev[i].begin_ns) << "index " << i;
    }
  }
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));

  // Within each thread, recording order survives the merge: the per-span
  // counters 0..kEach-1 appear in ascending order per tid.
  for (int tid : tids) {
    int64_t last = -1;
    for (const trace::Event& e : ev) {
      if (e.tid != tid) continue;
      EXPECT_EQ(e.counter, last + 1) << "tid " << tid;
      last = e.counter;
    }
    EXPECT_EQ(last, kEach - 1);
  }
}

TEST(TraceRing, WraparoundKeepsNewestEventsAndCountsDropped) {
  TraceGuard g;
  trace::set_enabled(true);
  constexpr std::uint64_t kExtra = 100;
  const std::uint64_t n = trace::kRingCapacity + kExtra;
  // Synthetic timestamps make survivorship checkable: event i spans [i, i+1).
  for (std::uint64_t i = 0; i < n; ++i)
    trace::emit("t.wrap", i, i + 1, static_cast<std::int64_t>(i));

  const std::vector<trace::Event> ev = trace::drain();
  ASSERT_EQ(ev.size(), trace::kRingCapacity);
  EXPECT_EQ(trace::dropped(), kExtra);
  // Oldest kExtra events were overwritten; the rest survive in order.
  for (size_t i = 0; i < ev.size(); ++i)
    EXPECT_EQ(ev[i].begin_ns, kExtra + i);

  trace::reset();
  EXPECT_EQ(trace::dropped(), 0u);
}

// ---------------- Aggregation / flame summary ----------------

TEST(TraceFlame, AggregateSeparatesSelfTimeFromChildren) {
  TraceGuard g;
  trace::set_enabled(true);
  // outer spans 100us; inner, nested on the same thread, spans 50us.
  trace::emit("t.outer", 1'000, 101'000);
  trace::emit("t.inner", 11'000, 61'000);
  const std::vector<trace::Event> ev = trace::drain();

  const std::vector<trace::FlameRow> rows = trace::aggregate(ev);
  ASSERT_EQ(rows.size(), 2u);
  const trace::FlameRow* outer = nullptr;
  const trace::FlameRow* inner = nullptr;
  for (const trace::FlameRow& r : rows) {
    if (r.name == "t.outer") outer = &r;
    if (r.name == "t.inner") inner = &r;
  }
  ASSERT_TRUE(outer && inner);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_NEAR(outer->total_ms, 0.1, 1e-9);
  EXPECT_NEAR(outer->self_ms, 0.05, 1e-9);  // child time subtracted
  EXPECT_NEAR(inner->total_ms, 0.05, 1e-9);
  EXPECT_NEAR(inner->self_ms, 0.05, 1e-9);

  const std::string flame = trace::flame_summary(ev);
  EXPECT_TRUE(contains(flame, "t.outer"));
  EXPECT_TRUE(contains(flame, "t.inner"));
  EXPECT_TRUE(contains(flame, "|"));
}

// ---------------- End-to-end JSON export ----------------

TEST(TraceJson, TrainingRunExportsChromeLoadableSpans) {
  TraceGuard g;
  ThreadGuard tg;
  const std::string path = tmp_path("pf_trace_train_test.json");
  auto ds = tiny_data();
  core::VisionTrainConfig cfg;
  cfg.epochs = 2;
  cfg.warmup_epochs = 1;  // crosses the SVD warm-start boundary
  cfg.batch = 16;
  cfg.seed = 3;
  cfg.threads = 2;  // pooled dispatch so pool.* spans are recorded
  cfg.trace_path = path;
  core::train_vision(tiny_resnet_factory(false), tiny_resnet_factory(true),
                     ds, cfg);

  const std::string json = read_file(path);
  expect_well_formed_json(json);
  EXPECT_TRUE(contains(json, "\"traceEvents\""));
  EXPECT_TRUE(contains(json, "\"ph\":\"X\""));
  // Every layer the issue calls out shows up in one training timeline:
  // runtime dispatch, kernels, phase boundaries, the Table-19 SVD cost.
  for (const char* span :
       {"pool.dispatch", "pool.worker", "matmul", "im2col",
        "train.epoch.warmup", "train.epoch.finetune", "train.svd_warm_start",
        "svd.factorize", "train.eval"}) {
    EXPECT_TRUE(contains(json, std::string("\"name\":\"") + span + "\""))
        << "missing span " << span;
  }
  EXPECT_TRUE(contains(json, "\"counter\""));  // PF_TRACE_SCOPE_C payloads
  std::filesystem::remove(path);
}

TEST(TraceJson, ServeRunExportsQueueFlushForwardReplySpans) {
  TraceGuard g;
  ThreadGuard tg;
  runtime::set_threads(2);
  const std::string path = tmp_path("pf_trace_serve_test.json");

  Rng rng(31);
  models::ResNetCifarConfig mc;
  mc.width_mult = 0.0625;
  serve::FrozenModel frozen(
      std::make_unique<models::ResNet18Cifar>(mc, rng), "trace-test");
  frozen.prime(Shape{3, 8, 8}, 4);

  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batcher.max_batch = 4;
  cfg.batcher.deadline_ms = 0;  // greedy flush
  cfg.trace_path = path;
  serve::Server server(frozen, cfg);

  constexpr int kRequests = 6;
  std::vector<serve::RequestPtr> reqs;
  std::vector<std::future<void>> done;
  for (int i = 0; i < kRequests; ++i) {
    Rng in(100 + static_cast<uint64_t>(i));
    reqs.push_back(serve::make_request(static_cast<uint64_t>(i),
                                       in.randn(Shape{3, 8, 8})));
    done.push_back(reqs.back()->done.get_future());
  }
  server.start();
  for (const serve::RequestPtr& r : reqs) ASSERT_TRUE(server.submit(r));
  for (std::future<void>& f : done) f.wait();
  server.stop();  // exports the timeline

  const std::string json = read_file(path);
  expect_well_formed_json(json);
  // Queueing delay and batch compute are separable per request: one
  // serve.queue span per request plus flush/forward/reply per batch.
  for (const char* span :
       {"serve.queue", "serve.flush", "serve.forward", "serve.reply"}) {
    EXPECT_TRUE(contains(json, std::string("\"name\":\"") + span + "\""))
        << "missing span " << span;
  }
  std::filesystem::remove(path);
}

// ---------------- Tracing never perturbs results ----------------

TEST(TraceDeterminism, TraceOnTrainingBitwiseIdenticalToTraceOff) {
  TraceGuard g;
  ThreadGuard tg;
  // Same full Algorithm 1 run twice -- tracer hard-off vs tracer exporting
  // a timeline -- must produce identical losses and identical final bits.
  auto run = [&](bool traced, const std::string& dir) {
    trace::set_enabled(false);
    auto ds = tiny_data();
    core::VisionTrainConfig cfg;
    cfg.epochs = 2;
    cfg.warmup_epochs = 1;
    cfg.batch = 16;
    cfg.seed = 13;
    cfg.threads = 2;
    cfg.checkpoint_dir = dir;
    cfg.checkpoint_every = 100;  // final-epoch snapshot only
    if (traced) cfg.trace_path = tmp_path("pf_trace_det_test.json");
    return core::train_vision(tiny_resnet_factory(false),
                              tiny_resnet_factory(true), ds, cfg);
  };
  const std::string dir_off = tmp_path("pf_trace_det_off");
  const std::string dir_on = tmp_path("pf_trace_det_on");
  const core::VisionResult off = run(false, dir_off);
  const core::VisionResult on = run(true, dir_on);

  ASSERT_EQ(off.epochs.size(), on.epochs.size());
  for (size_t e = 0; e < off.epochs.size(); ++e)
    EXPECT_EQ(off.epochs[e].train_loss, on.epochs[e].train_loss)
        << "epoch " << e;
  EXPECT_EQ(off.final_acc, on.final_acc);
  EXPECT_EQ(off.final_loss, on.final_loss);

  Rng rng(0);
  std::unique_ptr<nn::UnaryModule> m_off = tiny_resnet_factory(true)(rng);
  std::unique_ptr<nn::UnaryModule> m_on = tiny_resnet_factory(true)(rng);
  core::load_snapshot(*m_off, dir_off);
  core::load_snapshot(*m_on, dir_on);
  const Tensor p_off = m_off->flat_params();
  const Tensor p_on = m_on->flat_params();
  ASSERT_EQ(p_off.numel(), p_on.numel());
  EXPECT_EQ(std::memcmp(p_off.data(), p_on.data(),
                        static_cast<size_t>(p_off.numel()) * sizeof(float)),
            0);
  std::filesystem::remove_all(dir_off);
  std::filesystem::remove_all(dir_on);
  std::filesystem::remove(tmp_path("pf_trace_det_test.json"));
}

}  // namespace
}  // namespace pf
